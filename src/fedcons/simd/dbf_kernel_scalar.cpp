// Scalar reference backend for the DBF* classification kernel, plus the
// shared term builders and the public dispatch wrapper.
//
// This translation unit is compiled with -ffp-contract=off (see
// CMakeLists.txt): the canonical operation sequence separates every multiply
// from the adds around it, and a contracted fused multiply-add would round
// differently from the AVX2 backend's explicit vmulpd/vaddpd pairs.

#include "fedcons/simd/dbf_kernel.h"

#include <cmath>
#include <limits>

#include "fedcons/simd/dispatch.h"

namespace fedcons::simd {

DbfCand dbf_affine_term(long long wcet, long long deadline,
                        long long period) noexcept {
  DbfCand out;
  if (wcet < 0 || deadline < 0 || period <= 0 || wcet > kDbfMaxMagnitude ||
      deadline > kDbfMaxMagnitude || period > kDbfMaxMagnitude) {
    out.mag = std::numeric_limits<double>::infinity();
    return out;
  }
  const double c = static_cast<double>(wcet);      // exact: |wcet| ≤ 2^40
  const double d = static_cast<double>(deadline);  // exact
  const double t = static_cast<double>(period);    // exact
  const double q = c / t;  // one rounding
  const double p = q * d;  // one rounding (kept a separate statement: no FMA)
  out.a = c - p;
  out.b = q;
  out.mag = c + p;
  return out;
}

DbfCand dbf_constant_term(long long wcet) noexcept {
  DbfCand out;
  if (wcet < 0 || wcet > kDbfMaxMagnitude) {
    out.mag = std::numeric_limits<double>::infinity();
    return out;
  }
  out.a = static_cast<double>(wcet);  // exact
  out.b = 0.0;
  out.mag = out.a;
  return out;
}

double util_term(long long wcet, long long period) noexcept {
  if (wcet < 0 || period <= 0 || wcet > kDbfMaxMagnitude ||
      period > kDbfMaxMagnitude) {
    return std::numeric_limits<double>::infinity();
  }
  return static_cast<double>(wcet) / static_cast<double>(period);
}

namespace detail {

int dbf_scan_scalar(const double* bp, const double* A, const double* B,
                    const double* M, int begin, int end, DbfCand cand,
                    double eps_n, LaneClass* out_class) noexcept {
  for (int i = begin; i < end; ++i) {
    const double t1 = A[i] + cand.a;
    const double t2 = B[i] + cand.b;
    const double t3 = t2 * bp[i];
    const double dem = t1 + t3;
    const double mag = ((M[i] + cand.mag) + std::fabs(t1)) + std::fabs(t3);
    const double err = eps_n * mag;
    if (dem + err <= bp[i]) continue;  // certainly fits
    *out_class = (dem - err > bp[i]) ? LaneClass::kReject : LaneClass::kUncertain;
    return i;
  }
  return end;
}

}  // namespace detail

int dbf_scan(const double* bp, const double* A, const double* B,
             const double* M, int begin, int end, DbfCand cand, double eps_n,
             LaneClass* out_class) noexcept {
  if (active_backend() == SimdBackend::kAvx2) {
    return detail::dbf_scan_avx2(bp, A, B, M, begin, end, cand, eps_n,
                                 out_class);
  }
  return detail::dbf_scan_scalar(bp, A, B, M, begin, end, cand, eps_n,
                                 out_class);
}

}  // namespace fedcons::simd
