#include "fedcons/simd/dispatch.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "fedcons/util/check.h"
#include "fedcons/util/log.h"

namespace fedcons::simd {

namespace {

// -1 = unresolved; otherwise a SimdBackend value. Relaxed is enough: the
// resolution is idempotent (every thread computes the same value).
std::atomic<int> g_backend{-1};

bool cpu_has_avx2() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

SimdBackend resolve() noexcept {
  const char* forced = std::getenv("FEDCONS_FORCE_BACKEND");
  if (forced != nullptr) {
    if (std::strcmp(forced, "scalar") == 0) return SimdBackend::kScalar;
    if (std::strcmp(forced, "avx2") == 0) {
      if (cpu_has_avx2()) return SimdBackend::kAvx2;
      LOG_WARN(
          "FEDCONS_FORCE_BACKEND=avx2 but the CPU lacks AVX2; using scalar");
      return SimdBackend::kScalar;
    }
    LOG_WARN("unrecognized FEDCONS_FORCE_BACKEND value ignored");
  }
  return cpu_has_avx2() ? SimdBackend::kAvx2 : SimdBackend::kScalar;
}

}  // namespace

const char* to_string(SimdBackend b) noexcept {
  switch (b) {
    case SimdBackend::kScalar: return "scalar";
    case SimdBackend::kAvx2: return "avx2";
  }
  return "?";
}

SimdBackend active_backend() noexcept {
  int v = g_backend.load(std::memory_order_relaxed);
  if (v < 0) {
    v = static_cast<int>(resolve());
    g_backend.store(v, std::memory_order_relaxed);
  }
  return static_cast<SimdBackend>(v);
}

bool backend_supported(SimdBackend b) noexcept {
  switch (b) {
    case SimdBackend::kScalar: return true;
    case SimdBackend::kAvx2: return cpu_has_avx2();
  }
  return false;
}

void force_backend(std::optional<SimdBackend> b) {
  if (!b.has_value()) {
    g_backend.store(-1, std::memory_order_relaxed);
    return;
  }
  FEDCONS_EXPECTS_MSG(backend_supported(*b),
                      "force_backend: backend not supported on this CPU");
  g_backend.store(static_cast<int>(*b), std::memory_order_relaxed);
}

}  // namespace fedcons::simd
