// Dispatched integer fill/copy primitives for the LS per-probe reset.
//
// A blocked MINPROCS probe resets the run state of LsWorkspace (in-degree
// image, ready/free/wheel bitmaps) once per μ candidate; these primitives are
// that reset's data plane, routed through the module dispatcher so the AVX2
// build streams 256-bit stores. Pure integer writes: the output bytes are
// identical on every backend by construction.
#pragma once

#include <cstddef>
#include <cstdint>

namespace fedcons::simd {

/// dst[0..n) = v.
void fill_u32(std::uint32_t* dst, std::size_t n, std::uint32_t v) noexcept;
/// dst[0..n) = v.
void fill_u64(std::uint64_t* dst, std::size_t n, std::uint64_t v) noexcept;
/// dst[0..n) = src[0..n) (non-overlapping).
void copy_u32(std::uint32_t* dst, const std::uint32_t* src,
              std::size_t n) noexcept;

namespace detail {
void fill_u32_scalar(std::uint32_t* dst, std::size_t n,
                     std::uint32_t v) noexcept;
void fill_u64_scalar(std::uint64_t* dst, std::size_t n,
                     std::uint64_t v) noexcept;
void copy_u32_scalar(std::uint32_t* dst, const std::uint32_t* src,
                     std::size_t n) noexcept;
void fill_u32_avx2(std::uint32_t* dst, std::size_t n, std::uint32_t v) noexcept;
void fill_u64_avx2(std::uint64_t* dst, std::size_t n, std::uint64_t v) noexcept;
void copy_u32_avx2(std::uint32_t* dst, const std::uint32_t* src,
                   std::size_t n) noexcept;
}  // namespace detail

}  // namespace fedcons::simd
