#include "fedcons/simd/fill.h"

#include "fedcons/simd/dispatch.h"

namespace fedcons::simd {

namespace detail {

void fill_u32_scalar(std::uint32_t* dst, std::size_t n,
                     std::uint32_t v) noexcept {
  for (std::size_t i = 0; i < n; ++i) dst[i] = v;
}

void fill_u64_scalar(std::uint64_t* dst, std::size_t n,
                     std::uint64_t v) noexcept {
  for (std::size_t i = 0; i < n; ++i) dst[i] = v;
}

void copy_u32_scalar(std::uint32_t* dst, const std::uint32_t* src,
                     std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) dst[i] = src[i];
}

}  // namespace detail

void fill_u32(std::uint32_t* dst, std::size_t n, std::uint32_t v) noexcept {
  if (active_backend() == SimdBackend::kAvx2) {
    detail::fill_u32_avx2(dst, n, v);
  } else {
    detail::fill_u32_scalar(dst, n, v);
  }
}

void fill_u64(std::uint64_t* dst, std::size_t n, std::uint64_t v) noexcept {
  if (active_backend() == SimdBackend::kAvx2) {
    detail::fill_u64_avx2(dst, n, v);
  } else {
    detail::fill_u64_scalar(dst, n, v);
  }
}

void copy_u32(std::uint32_t* dst, const std::uint32_t* src,
              std::size_t n) noexcept {
  if (active_backend() == SimdBackend::kAvx2) {
    detail::copy_u32_avx2(dst, src, n);
  } else {
    detail::copy_u32_scalar(dst, src, n);
  }
}

}  // namespace fedcons::simd
