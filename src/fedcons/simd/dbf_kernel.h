// Certified-double DBF* demand classification over SoA breakpoint arrays.
//
// PARTITION's acceptance probe asks, at each slope breakpoint bp of the
// summed 1-point approximation over bin ∪ {candidate},
//
//     Σ_{D_j ≤ bp} DBF*(τ_j, bp) + DBF*(cand, bp)  ≤  bp.
//
// Per member the DBF* term is affine in bp once bp ≥ D_j:
//     C_j + (C_j/T_j)·(bp − D_j) = a_j + b_j·bp,
//     a_j = C_j − (C_j/T_j)·D_j,   b_j = C_j/T_j,
// so the whole prefix sum is A + B·bp with A = Σ a_j, B = Σ b_j over members
// with D_j ≤ bp. DbfStarAggregate maintains A/B/magnitude prefixes per
// distinct deadline as double mirrors of its exact rational prefixes
// (analysis/dbf.h); this kernel evaluates the affine form in IEEE doubles
// with a rigorous rounding-error margin and three-way classifies each lane:
//
//     kFit        demand + err ≤ bp      (certainly fits)
//     kReject     demand − err > bp      (certainly violates)
//     kUncertain  |demand − bp| ≤ err    (caller re-decides exactly)
//
// Certainty is what keeps verdicts exact and backend-invariant: a certain
// class agrees with the exact rational comparison by construction of the
// margin (derivation in DESIGN.md §13), and uncertain lanes fall back to the
// BigRational path, so the *decision* never depends on floating point.
//
// Canonical per-lane operation sequence (both backends, no FMA, no
// cross-lane ops — every lane is independent):
//     t1  = A[i] + cand.a
//     t2  = B[i] + cand.b
//     t3  = t2 * bp[i]
//     dem = t1 + t3
//     mag = ((M[i] + cand.mag) + |t1|) + |t3|
//     err = eps_n * mag
//     fit    ⇔ dem + err ≤ bp[i]
//     reject ⇔ dem − err > bp[i]
// Inputs outside the kernel's validated magnitude range are poisoned with
// M[i] = +inf by the aggregate (err becomes +inf ⇒ kUncertain ⇒ exact path).
#pragma once

namespace fedcons::simd {

/// Unit in the last place of a ≤53-bit double times 8 — the per-operation
/// error quantum the margin is built from (2^-50 = 8·2^-53).
inline constexpr double kDbfEps = 0x1p-50;

/// Per-lane classification (values are stable; tests pin them).
enum class LaneClass : signed char { kFit = 0, kReject = 1, kUncertain = 2 };

/// The candidate task's affine DBF* term at bp ≥ its deadline, plus its
/// error-magnitude scale. Build with dbf_affine_term / dbf_constant_term.
struct DbfCand {
  double a = 0.0;    ///< constant coefficient
  double b = 0.0;    ///< slope coefficient
  double mag = 0.0;  ///< magnitude bound for the rounding-error margin
};

/// The affine term (a, b, mag) of a task with the given parameters:
/// a = C − (C/T)·D, b = C/T, mag = C + (C/T)·D. Computed in one
/// -ffp-contract=off translation unit so the rounding sequence is identical
/// no matter which module asks (FMA contraction would change a's value).
/// Also used for the aggregate's member mirrors. Out-of-range parameters
/// (negative, or beyond kDbfMaxMagnitude) yield mag = +inf (poison).
[[nodiscard]] DbfCand dbf_affine_term(long long wcet, long long deadline,
                                      long long period) noexcept;

/// The paper-literal candidate term: the constant C (a = mag = C, b = 0).
[[nodiscard]] DbfCand dbf_constant_term(long long wcet) noexcept;

/// One utilization term C/T as a double, +inf when out of range (poison for
/// the per-bin utilization fold). Same contract-off TU as dbf_affine_term.
[[nodiscard]] double util_term(long long wcet, long long period) noexcept;

/// Largest |parameter| (C, D, T, breakpoint) the certified margin covers;
/// 2^40 keeps every intermediate far below the 2^53 exact-integer range.
inline constexpr long long kDbfMaxMagnitude = 1ll << 40;

/// Scan lanes [begin, end): classify each per the canonical sequence above
/// and return the index of the first lane that is not kFit (its class stored
/// in *out_class), or `end` when every lane fits. eps_n is the caller's
/// precomputed kDbfEps · (n + 16) margin scale (n = member count).
///
/// The scan direction (ascending i) mirrors the exact probe's
/// first-violation semantics; classification of lane i never depends on any
/// other lane, so early exit cannot change any lane's class.
[[nodiscard]] int dbf_scan(const double* bp, const double* A, const double* B,
                           const double* M, int begin, int end, DbfCand cand,
                           double eps_n, LaneClass* out_class) noexcept;

namespace detail {
// Backend entry points (dispatch.cpp picks; callers use dbf_scan).
[[nodiscard]] int dbf_scan_scalar(const double* bp, const double* A,
                                  const double* B, const double* M, int begin,
                                  int end, DbfCand cand, double eps_n,
                                  LaneClass* out_class) noexcept;
[[nodiscard]] int dbf_scan_avx2(const double* bp, const double* A,
                                const double* B, const double* M, int begin,
                                int end, DbfCand cand, double eps_n,
                                LaneClass* out_class) noexcept;
}  // namespace detail

}  // namespace fedcons::simd
