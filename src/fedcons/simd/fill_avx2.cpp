// AVX2 variants of the fill/copy primitives (-mavx2 on this TU only).

#include "fedcons/simd/fill.h"

#if defined(__AVX2__)
#include <immintrin.h>

namespace fedcons::simd::detail {

void fill_u32_avx2(std::uint32_t* dst, std::size_t n,
                   std::uint32_t v) noexcept {
  const __m256i vv = _mm256_set1_epi32(static_cast<int>(v));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), vv);
  }
  for (; i < n; ++i) dst[i] = v;
}

void fill_u64_avx2(std::uint64_t* dst, std::size_t n,
                   std::uint64_t v) noexcept {
  const __m256i vv = _mm256_set1_epi64x(static_cast<long long>(v));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), vv);
  }
  for (; i < n; ++i) dst[i] = v;
}

void copy_u32_avx2(std::uint32_t* dst, const std::uint32_t* src,
                   std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(dst + i),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i)));
  }
  for (; i < n; ++i) dst[i] = src[i];
}

}  // namespace fedcons::simd::detail

#else

namespace fedcons::simd::detail {

void fill_u32_avx2(std::uint32_t* dst, std::size_t n,
                   std::uint32_t v) noexcept {
  fill_u32_scalar(dst, n, v);
}
void fill_u64_avx2(std::uint64_t* dst, std::size_t n,
                   std::uint64_t v) noexcept {
  fill_u64_scalar(dst, n, v);
}
void copy_u32_avx2(std::uint32_t* dst, const std::uint32_t* src,
                   std::size_t n) noexcept {
  copy_u32_scalar(dst, src, n);
}

}  // namespace fedcons::simd::detail

#endif
