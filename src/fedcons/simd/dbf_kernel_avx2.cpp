// AVX2 backend for the DBF* classification kernel. Compiled with -mavx2 (and
// -ffp-contract=off) in this translation unit only; the dispatcher never
// routes here unless CPUID reports AVX2.
//
// Lane math is the canonical sequence from dbf_kernel.h executed four lanes
// at a time with explicit vaddpd/vmulpd intrinsics — each lane performs
// exactly the scalar backend's IEEE-754 operations in the same order, so
// per-lane results (and therefore classifications) are bit-identical. The
// sub-4 tail runs the same sequence in scalar form, which rounds identically.

#include "fedcons/simd/dbf_kernel.h"

#if defined(__AVX2__)
#include <immintrin.h>

#include <bit>
#include <cmath>

namespace fedcons::simd::detail {

namespace {

// |x| as a bit-clear of the sign — exact, matching std::fabs.
inline __m256d abs_pd(__m256d x) noexcept {
  return _mm256_andnot_pd(_mm256_set1_pd(-0.0), x);
}

}  // namespace

int dbf_scan_avx2(const double* bp, const double* A, const double* B,
                  const double* M, int begin, int end, DbfCand cand,
                  double eps_n, LaneClass* out_class) noexcept {
  const __m256d va = _mm256_set1_pd(cand.a);
  const __m256d vb = _mm256_set1_pd(cand.b);
  const __m256d vm = _mm256_set1_pd(cand.mag);
  const __m256d veps = _mm256_set1_pd(eps_n);

  int i = begin;
  for (; i + 4 <= end; i += 4) {
    const __m256d vbp = _mm256_loadu_pd(bp + i);
    const __m256d t1 = _mm256_add_pd(_mm256_loadu_pd(A + i), va);
    const __m256d t2 = _mm256_add_pd(_mm256_loadu_pd(B + i), vb);
    const __m256d t3 = _mm256_mul_pd(t2, vbp);
    const __m256d dem = _mm256_add_pd(t1, t3);
    const __m256d mag = _mm256_add_pd(
        _mm256_add_pd(_mm256_add_pd(_mm256_loadu_pd(M + i), vm), abs_pd(t1)),
        abs_pd(t3));
    const __m256d err = _mm256_mul_pd(veps, mag);
    const __m256d fit =
        _mm256_cmp_pd(_mm256_add_pd(dem, err), vbp, _CMP_LE_OQ);
    const int fit_bits = _mm256_movemask_pd(fit);
    if (fit_bits == 0xF) continue;
    const int lane = std::countr_zero(static_cast<unsigned>(~fit_bits & 0xF));
    const __m256d rej =
        _mm256_cmp_pd(_mm256_sub_pd(dem, err), vbp, _CMP_GT_OQ);
    const bool reject = (_mm256_movemask_pd(rej) >> lane) & 1;
    *out_class = reject ? LaneClass::kReject : LaneClass::kUncertain;
    return i + lane;
  }
  for (; i < end; ++i) {  // tail: same sequence, scalar
    const double t1 = A[i] + cand.a;
    const double t2 = B[i] + cand.b;
    const double t3 = t2 * bp[i];
    const double dem = t1 + t3;
    const double mag = ((M[i] + cand.mag) + std::fabs(t1)) + std::fabs(t3);
    const double err = eps_n * mag;
    if (dem + err <= bp[i]) continue;
    *out_class = (dem - err > bp[i]) ? LaneClass::kReject : LaneClass::kUncertain;
    return i;
  }
  return end;
}

}  // namespace fedcons::simd::detail

#else  // !__AVX2__ — e.g. a non-x86 target: keep the symbol linkable.

namespace fedcons::simd::detail {

int dbf_scan_avx2(const double* bp, const double* A, const double* B,
                  const double* M, int begin, int end, DbfCand cand,
                  double eps_n, LaneClass* out_class) noexcept {
  return dbf_scan_scalar(bp, A, B, M, begin, end, cand, eps_n, out_class);
}

}  // namespace fedcons::simd::detail

#endif
