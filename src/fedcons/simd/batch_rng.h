// Batched random-number generation: four independent xoshiro256** streams
// advanced lane-parallel.
//
// A generation campaign consumes one RNG stream per trial. The streams are
// independent by construction (per-trial seeds), so their state recurrences —
// the only sequential dependency in generation's numeric core — can run four
// abreast: Xoshiro4 keeps the states in structure-of-arrays form and the AVX2
// backend advances all four with 256-bit integer ops. Lane l's output is
// bit-identical to Rng(seeds[l])'s next_u64() sequence on every backend
// (pinned by tests/simd_kernel_test.cpp).
//
// Divergence (different trials consuming different draw counts) is absorbed
// by buffering, not masking: BatchRng block-fills all four lanes together and
// each LaneRng replays its own buffer through the shared RngDistributions
// algorithms — so a lane's uniform_int/uniform01/... sequence equals the
// scalar generator's exactly, regardless of how the other lanes consume.
// Memory holds the slowest lane's unconsumed tail (lanes in one batch draw
// within a small factor of each other in practice).
#pragma once

#include <cstdint>
#include <vector>

#include "fedcons/util/rng.h"

namespace fedcons::simd {

/// Four xoshiro256** states advanced in lockstep (SoA layout).
class Xoshiro4 {
 public:
  static constexpr int kLanes = 4;

  /// Lane l is seeded exactly like Rng(seeds[l]) (shared seeding rule).
  explicit Xoshiro4(const std::uint64_t seeds[kLanes]);

  /// Append the next n values of every lane's stream: out[l][i] receives the
  /// i-th of lane l's next n draws. Dispatched (scalar / AVX2), bit-identical
  /// per lane either way.
  void fill(std::uint64_t* out[kLanes], int n) noexcept;

 private:
  // s_[k][l] = word k of lane l's state — one 4-lane vector per state word.
  std::uint64_t s_[4][kLanes];
};

namespace detail {
void xo4_fill_scalar(std::uint64_t s[4][Xoshiro4::kLanes],
                     std::uint64_t* out[Xoshiro4::kLanes], int n) noexcept;
void xo4_fill_avx2(std::uint64_t s[4][Xoshiro4::kLanes],
                   std::uint64_t* out[Xoshiro4::kLanes], int n) noexcept;
}  // namespace detail

/// Four buffered lane streams over one Xoshiro4 core.
class BatchRng {
 public:
  static constexpr int kLanes = Xoshiro4::kLanes;

  explicit BatchRng(const std::uint64_t seeds[kLanes], int block = 256);

  /// The next value of lane `lane`'s stream (== Rng(seeds[lane]) sequence).
  std::uint64_t draw(int lane);

 private:
  void refill();

  Xoshiro4 core_;
  int block_;
  std::vector<std::uint64_t> buf_[kLanes];
  std::size_t pos_[kLanes] = {};
};

/// One lane of a BatchRng, with the full distribution surface of Rng.
/// Drop-in RngT for the templated generators (gen/batch_gen.h).
class LaneRng : public fedcons::RngDistributions<LaneRng> {
 public:
  LaneRng(BatchRng& parent, int lane) noexcept
      : parent_(&parent), lane_(lane) {}

  std::uint64_t next_u64() { return parent_->draw(lane_); }

 private:
  BatchRng* parent_;
  int lane_;
};

}  // namespace fedcons::simd
