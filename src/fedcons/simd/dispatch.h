// Runtime SIMD backend selection for the data-parallel analysis kernels.
//
// Every kernel in this module ships in (at least) two variants: a scalar
// fallback compiled for the baseline ISA, and an AVX2 variant compiled in its
// own translation unit with -mavx2. Which variant runs is decided once at
// startup from CPUID (__builtin_cpu_supports), overridable via the
// FEDCONS_FORCE_BACKEND environment variable ("scalar" or "avx2") or
// programmatically via force_backend() (tests and per-kernel benchmarks).
//
// The dispatch contract (DESIGN.md §13): a kernel's output is a pure function
// of its inputs, independent of the backend that computed it. Integer kernels
// are trivially so; the floating-point DBF* kernel specifies one canonical
// per-lane IEEE-754 operation sequence (no FMA contraction, no cross-lane
// reduction) that the scalar variant executes literally and the AVX2 variant
// executes lane-parallel with the same ops — vaddpd/vmulpd/vandpd round
// identically to their scalar counterparts, so classifications are
// bit-identical. Verdicts additionally never depend on rounding at all: the
// FP kernels only *classify* with a certified error margin, and every
// uncertain lane is re-decided in exact rational arithmetic (dbf_kernel.h).
#pragma once

#include <optional>

namespace fedcons::simd {

enum class SimdBackend {
  kScalar,  ///< always available; the canonical op-sequence reference
  kAvx2,    ///< AVX2 lane-parallel variants (x86-64 with AVX2 only)
};

[[nodiscard]] const char* to_string(SimdBackend b) noexcept;

/// The backend all kernels currently dispatch to. Resolved on first use:
/// FEDCONS_FORCE_BACKEND if set (an unsupported forced "avx2" logs a warning
/// and falls back to scalar; unrecognized values are ignored), else the best
/// CPUID-supported backend. Cached; O(1) afterwards.
[[nodiscard]] SimdBackend active_backend() noexcept;

/// True when the running CPU can execute the given backend's kernels.
[[nodiscard]] bool backend_supported(SimdBackend b) noexcept;

/// Test/benchmark hook: pin the active backend (ignoring env + CPUID), or
/// pass nullopt to drop the pin and re-resolve from env + CPUID on next use.
/// Forcing an unsupported backend is a contract violation.
void force_backend(std::optional<SimdBackend> b);

}  // namespace fedcons::simd
