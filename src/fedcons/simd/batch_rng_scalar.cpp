#include "fedcons/simd/batch_rng.h"

#include "fedcons/simd/dispatch.h"
#include "fedcons/util/check.h"

namespace fedcons::simd {

namespace detail {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

void xo4_fill_scalar(std::uint64_t s[4][Xoshiro4::kLanes],
                     std::uint64_t* out[Xoshiro4::kLanes], int n) noexcept {
  for (int i = 0; i < n; ++i) {
    for (int l = 0; l < Xoshiro4::kLanes; ++l) {
      // The Rng::next_u64 recurrence, verbatim, on lane l's state column.
      const std::uint64_t result = rotl(s[1][l] * 5, 7) * 9;
      const std::uint64_t t = s[1][l] << 17;
      s[2][l] ^= s[0][l];
      s[3][l] ^= s[1][l];
      s[1][l] ^= s[2][l];
      s[0][l] ^= s[3][l];
      s[2][l] ^= t;
      s[3][l] = rotl(s[3][l], 45);
      out[l][i] = result;
    }
  }
}

}  // namespace detail

Xoshiro4::Xoshiro4(const std::uint64_t seeds[kLanes]) {
  for (int l = 0; l < kLanes; ++l) {
    std::uint64_t st[4];
    fedcons::detail::xoshiro_seed(seeds[l], st);
    for (int k = 0; k < 4; ++k) s_[k][l] = st[k];
  }
}

void Xoshiro4::fill(std::uint64_t* out[kLanes], int n) noexcept {
  if (active_backend() == SimdBackend::kAvx2) {
    detail::xo4_fill_avx2(s_, out, n);
  } else {
    detail::xo4_fill_scalar(s_, out, n);
  }
}

BatchRng::BatchRng(const std::uint64_t seeds[kLanes], int block)
    : core_(seeds), block_(block) {
  FEDCONS_EXPECTS(block >= 1);
}

void BatchRng::refill() {
  std::uint64_t* dst[kLanes];
  for (int l = 0; l < kLanes; ++l) {
    auto& buf = buf_[l];
    // Compact the consumed prefix, then append one block to every lane —
    // the lanes advance together so the core stays a pure 4-wide fill.
    buf.erase(buf.begin(),
              buf.begin() + static_cast<std::ptrdiff_t>(pos_[l]));
    pos_[l] = 0;
    const std::size_t old = buf.size();
    buf.resize(old + static_cast<std::size_t>(block_));
    dst[l] = buf.data() + old;
  }
  core_.fill(dst, block_);
}

std::uint64_t BatchRng::draw(int lane) {
  FEDCONS_EXPECTS(lane >= 0 && lane < kLanes);
  if (pos_[lane] == buf_[lane].size()) refill();
  return buf_[lane][pos_[lane]++];
}

}  // namespace fedcons::simd
