// AVX2 backend of the 4-lane xoshiro256** fill (-mavx2 on this TU only).
//
// Pure 64-bit integer ops, so lane outputs are trivially identical to the
// scalar recurrence: *5 and *9 become shift-and-add (x + (x<<2), x + (x<<3)),
// rotl becomes shift/shift/or — all exact.

#include "fedcons/simd/batch_rng.h"

#if defined(__AVX2__)
#include <immintrin.h>

namespace fedcons::simd::detail {

namespace {

inline __m256i rotl64(__m256i x, int k) noexcept {
  return _mm256_or_si256(_mm256_slli_epi64(x, k), _mm256_srli_epi64(x, 64 - k));
}

}  // namespace

void xo4_fill_avx2(std::uint64_t s[4][Xoshiro4::kLanes],
                   std::uint64_t* out[Xoshiro4::kLanes], int n) noexcept {
  __m256i s0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s[0]));
  __m256i s1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s[1]));
  __m256i s2 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s[2]));
  __m256i s3 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s[3]));

  alignas(32) std::uint64_t lanes[Xoshiro4::kLanes];
  for (int i = 0; i < n; ++i) {
    // result = rotl(s1 * 5, 7) * 9
    const __m256i x5 = _mm256_add_epi64(s1, _mm256_slli_epi64(s1, 2));
    const __m256i rot = rotl64(x5, 7);
    const __m256i result = _mm256_add_epi64(rot, _mm256_slli_epi64(rot, 3));
    const __m256i t = _mm256_slli_epi64(s1, 17);
    s2 = _mm256_xor_si256(s2, s0);
    s3 = _mm256_xor_si256(s3, s1);
    s1 = _mm256_xor_si256(s1, s2);
    s0 = _mm256_xor_si256(s0, s3);
    s2 = _mm256_xor_si256(s2, t);
    s3 = rotl64(s3, 45);
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), result);
    out[0][i] = lanes[0];
    out[1][i] = lanes[1];
    out[2][i] = lanes[2];
    out[3][i] = lanes[3];
  }

  _mm256_storeu_si256(reinterpret_cast<__m256i*>(s[0]), s0);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(s[1]), s1);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(s[2]), s2);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(s[3]), s3);
}

}  // namespace fedcons::simd::detail

#else

namespace fedcons::simd::detail {

void xo4_fill_avx2(std::uint64_t s[4][Xoshiro4::kLanes],
                   std::uint64_t* out[Xoshiro4::kLanes], int n) noexcept {
  xo4_fill_scalar(s, out, n);
}

}  // namespace fedcons::simd::detail

#endif
