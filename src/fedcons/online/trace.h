// OnlineReplay — a line-oriented trace format for admission-event sequences,
// plus the driver that feeds a trace through an AdmissionSession.
//
// A trace is JSON-lines in the mini_json dialect (util/mini_json.h): one
// flat object per line, byte-deterministic when written by us. Task payloads
// are embedded as the core/io.h textual task-system format (escaped), so a
// trace is self-contained and diffable:
//
//   {"format": "fedcons-online-trace", "version": 1, "processors": 8}
//   {"event": "admit", "system": "task a\n  deadline 10\n..."}
//   {"event": "release", "id": 0}
//   {"event": "swap", "releases": "1 3", "system": "..."}
//
// Session ids referenced by release/swap lines are the deterministic
// sequential ids AdmissionSession assigns in admit order (rejected admits and
// rolled-back swap admits consume ids too), so a trace replays identically
// everywhere. The same format backs the `fedcons_cli --online=FILE` driver,
// the `fedcons_conform --online` fuzzer's pinned repro artifacts, and
// bench_online's generated workloads.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fedcons/online/admission_session.h"

namespace fedcons {

/// One trace event. kAdmit uses admits[0]; kSwap uses both lists.
struct OnlineEvent {
  enum class Kind { kAdmit, kRelease, kSwap };
  Kind kind = Kind::kAdmit;
  std::vector<DagTask> admits;
  std::vector<SessionTaskId> release_ids;
};

[[nodiscard]] const char* to_string(OnlineEvent::Kind k) noexcept;

struct OnlineTrace {
  int processors = 1;
  std::vector<OnlineEvent> events;
};

/// Serialize (byte-deterministic for given inputs).
[[nodiscard]] std::string write_online_trace(const OnlineTrace& trace);

/// Parse; throws ParseError on malformed input (bad header, unknown event,
/// malformed embedded task systems).
[[nodiscard]] OnlineTrace parse_online_trace(const std::string& text);

/// Per-event replay record.
struct OnlineEventReport {
  std::size_t index = 0;
  OnlineEvent::Kind kind = OnlineEvent::Kind::kAdmit;
  EventOutcome outcome;
  std::uint64_t latency_us = 0;  ///< wall-clock time of the session call
  std::size_t residents_after = 0;
};

/// Replay summary.
struct OnlineReplayResult {
  std::size_t events = 0;
  std::size_t applied = 0;
  std::size_t rejected = 0;  ///< admission-controlled rejections + failed swaps
  std::uint64_t total_latency_us = 0;
  std::uint64_t max_latency_us = 0;
  std::uint64_t bins_revalidated = 0;
  bool final_schedulable = true;
};

/// Feed every event of `trace` through `session` (which must have been built
/// with trace.processors), timing each call; `on_event`, when set, observes
/// each report as it happens.
OnlineReplayResult replay_online_trace(
    const OnlineTrace& trace, AdmissionSession& session,
    const std::function<void(const OnlineEventReport&)>& on_event = {});

}  // namespace fedcons
