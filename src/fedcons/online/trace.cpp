#include "fedcons/online/trace.h"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "fedcons/core/io.h"
#include "fedcons/util/check.h"
#include "fedcons/util/mini_json.h"

namespace fedcons {

const char* to_string(OnlineEvent::Kind k) noexcept {
  switch (k) {
    case OnlineEvent::Kind::kAdmit: return "admit";
    case OnlineEvent::Kind::kRelease: return "release";
    case OnlineEvent::Kind::kSwap: return "swap";
  }
  return "?";
}

namespace {

std::string serialize_tasks(const std::vector<DagTask>& tasks) {
  return serialize_task_system(TaskSystem(tasks));
}

std::vector<DagTask> parse_tasks(const std::string& text, int line) {
  const ParseResult parsed = try_parse_task_system(text);
  if (!parsed.ok) {
    throw ParseError(line, "online trace: embedded system: " + parsed.error);
  }
  std::vector<DagTask> out;
  out.reserve(parsed.system.size());
  for (const DagTask& t : parsed.system) out.push_back(t);
  return out;
}

std::string join_ids(const std::vector<SessionTaskId>& ids) {
  std::string out;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i != 0) out += ' ';
    out += std::to_string(ids[i]);
  }
  return out;
}

// mini_json_uint is strict (digits only, full token, range-checked) so a
// mistyped id is a parse error, not id 0; rewrap to carry the trace line.
SessionTaskId parse_id(const std::string& token, int line) {
  try {
    return static_cast<SessionTaskId>(mini_json_uint(token));
  } catch (const ParseError&) {
    throw ParseError(line, "online trace: bad id '" + token + "'");
  }
}

std::vector<SessionTaskId> split_ids(const std::string& raw, int line) {
  std::vector<SessionTaskId> out;
  std::istringstream in(raw);
  std::string token;
  while (in >> token) out.push_back(parse_id(token, line));
  return out;
}

}  // namespace

std::string write_online_trace(const OnlineTrace& trace) {
  std::string out = "{\"format\": \"fedcons-online-trace\", \"version\": 1, "
                    "\"processors\": " +
                    std::to_string(trace.processors) + "}\n";
  for (const OnlineEvent& e : trace.events) {
    switch (e.kind) {
      case OnlineEvent::Kind::kAdmit:
        FEDCONS_EXPECTS(e.admits.size() == 1 && e.release_ids.empty());
        out += "{\"event\": \"admit\", \"system\": \"" +
               json_escape(serialize_tasks(e.admits)) + "\"}\n";
        break;
      case OnlineEvent::Kind::kRelease:
        FEDCONS_EXPECTS(e.admits.empty() && e.release_ids.size() == 1);
        out += "{\"event\": \"release\", \"id\": " +
               std::to_string(e.release_ids[0]) + "}\n";
        break;
      case OnlineEvent::Kind::kSwap:
        out += "{\"event\": \"swap\", \"releases\": \"" +
               json_escape(join_ids(e.release_ids)) + "\", \"system\": \"" +
               json_escape(serialize_tasks(e.admits)) + "\"}\n";
        break;
    }
  }
  return out;
}

OnlineTrace parse_online_trace(const std::string& text) {
  OnlineTrace trace;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  bool saw_header = false;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    const auto fields = parse_mini_json(line);
    if (!saw_header) {
      if (require_field(fields, "format") != "fedcons-online-trace") {
        throw ParseError(lineno, "online trace: unrecognized format");
      }
      if (mini_json_int(require_field(fields, "version")) != 1) {
        throw ParseError(lineno, "online trace: unsupported version");
      }
      const std::int64_t m = mini_json_int(require_field(fields, "processors"));
      if (m < 1) throw ParseError(lineno, "online trace: processors < 1");
      trace.processors = static_cast<int>(m);
      saw_header = true;
      continue;
    }
    const std::string& kind = require_field(fields, "event");
    OnlineEvent event;
    if (kind == "admit") {
      event.kind = OnlineEvent::Kind::kAdmit;
      event.admits = parse_tasks(require_field(fields, "system"), lineno);
      if (event.admits.size() != 1) {
        throw ParseError(lineno, "online trace: admit needs exactly one task");
      }
    } else if (kind == "release") {
      event.kind = OnlineEvent::Kind::kRelease;
      event.release_ids.push_back(
          parse_id(require_field(fields, "id"), lineno));
    } else if (kind == "swap") {
      event.kind = OnlineEvent::Kind::kSwap;
      event.release_ids = split_ids(require_field(fields, "releases"), lineno);
      event.admits = parse_tasks(require_field(fields, "system"), lineno);
    } else {
      throw ParseError(lineno, "online trace: unknown event '" + kind + "'");
    }
    trace.events.push_back(std::move(event));
  }
  if (!saw_header) throw ParseError(1, "online trace: missing header line");
  return trace;
}

OnlineReplayResult replay_online_trace(
    const OnlineTrace& trace, AdmissionSession& session,
    const std::function<void(const OnlineEventReport&)>& on_event) {
  using Clock = std::chrono::steady_clock;
  OnlineReplayResult result;
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    const OnlineEvent& e = trace.events[i];
    OnlineEventReport report;
    report.index = i;
    report.kind = e.kind;
    const auto start = Clock::now();
    switch (e.kind) {
      case OnlineEvent::Kind::kAdmit:
        report.outcome = session.admit(e.admits[0]);
        break;
      case OnlineEvent::Kind::kRelease:
        report.outcome = session.release(e.release_ids[0]);
        break;
      case OnlineEvent::Kind::kSwap: {
        AdmissionSession::SwapBatch batch;
        batch.release_ids = e.release_ids;
        batch.admits = e.admits;
        report.outcome = session.swap(batch);
        break;
      }
    }
    report.latency_us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              start)
            .count());
    report.residents_after = session.num_residents();

    ++result.events;
    if (report.outcome.applied) {
      ++result.applied;
    } else {
      ++result.rejected;
    }
    result.total_latency_us += report.latency_us;
    result.max_latency_us = std::max(result.max_latency_us, report.latency_us);
    result.bins_revalidated += report.outcome.bins_revalidated;
    result.final_schedulable = report.outcome.schedulable;
    if (on_event) on_event(report);
  }
  return result;
}

}  // namespace fedcons
