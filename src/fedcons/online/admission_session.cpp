#include "fedcons/online/admission_session.h"

#include <algorithm>
#include <utility>

#include "fedcons/util/check.h"

namespace fedcons {

namespace {

PartitionOptions sanitized(PartitionOptions options) {
  options.provenance = nullptr;  // session provenance is per-resident
  return options;
}

}  // namespace

AdmissionSession::AdmissionSession(const Config& config)
    : config_(config),
      memo_(config.memo_capacity, config.list_policy, config.minprocs.prune),
      partition_(config.processors, sanitized(config.partition)) {
  FEDCONS_EXPECTS(config.processors >= 1);
  config_.partition = sanitized(config_.partition);
  config_.minprocs.provenance = nullptr;
}

bool AdmissionSession::contains(SessionTaskId id) const noexcept {
  for (const Resident& r : residents_) {
    if (r.id == id) return true;
  }
  return false;
}

std::size_t AdmissionSession::resident_pos(SessionTaskId id) const {
  for (std::size_t i = 0; i < residents_.size(); ++i) {
    if (residents_[i].id == id) return i;
  }
  FEDCONS_EXPECTS_MSG(false, "AdmissionSession: no resident with that id");
  return residents_.size();
}

EventOutcome AdmissionSession::admit_internal(const DagTask& task,
                                              bool enforce) {
  FEDCONS_EXPECTS_MSG(task.deadline_class() != DeadlineClass::kArbitrary,
                      "FEDCONS is defined for constrained-deadline systems");
  EventOutcome out;
  const SessionTaskId id = next_id_++;

  if (task.is_high_density()) {
    const int m_r = config_.processors - total_mu_;
    Resident r(id, task, /*high=*/true);
    auto mp = memo_.lookup(task, m_r, &r.scan, &out.memo_hit);
    r.from_memo = out.memo_hit;
    if (!mp.has_value()) {
      // Phase-1 rejection (μ > m_r, or len > D): never applicable, whether
      // enforcing or not — the final system would fail at this very task.
      out.applied = false;
      out.reject_reason = FedconsFailure::kHighDensityPhase;
      out.failed_task = id;
      out.schedulable = partition_.ok();
      return out;
    }
    r.mu = mp->processors;
    r.sigma = std::move(mp->sigma);
    total_mu_ += r.mu;
    const PartitionEvent ev =
        partition_.resize(config_.processors - total_mu_);
    out.bins_revalidated += ev.bins_revalidated;
    out.placements_replayed += ev.placements_replayed;
    if (!ev.ok && enforce) {
      total_mu_ -= r.mu;  // undo: grow the pool back
      const PartitionEvent back =
          partition_.resize(config_.processors - total_mu_);
      out.bins_revalidated += back.bins_revalidated;
      out.placements_replayed += back.placements_replayed;
      out.applied = false;
      out.reject_reason = FedconsFailure::kPartitionPhase;
      out.failed_task = ev.failed_id;
      out.schedulable = partition_.ok();
      return out;
    }
    residents_.push_back(std::move(r));
    out.applied = true;
    out.schedulable = ev.ok;
    if (!ev.ok) {
      out.reject_reason = FedconsFailure::kPartitionPhase;
      out.failed_task = ev.failed_id;
    }
    out.admitted_ids.push_back(id);
    return out;
  }

  const PartitionEvent ev = partition_.admit(id, task.to_sequential());
  out.bins_revalidated += ev.bins_revalidated;
  out.placements_replayed += ev.placements_replayed;
  if (!ev.ok && enforce) {
    const PartitionEvent back = partition_.remove(id);  // exact undo
    out.bins_revalidated += back.bins_revalidated;
    out.placements_replayed += back.placements_replayed;
    out.applied = false;
    out.reject_reason = FedconsFailure::kPartitionPhase;
    out.failed_task = ev.failed_id;
    out.schedulable = partition_.ok();
    return out;
  }
  residents_.push_back(Resident(id, task, /*high=*/false));
  out.applied = true;
  out.schedulable = ev.ok;
  if (!ev.ok) {
    out.reject_reason = FedconsFailure::kPartitionPhase;
    out.failed_task = ev.failed_id;
  }
  out.admitted_ids.push_back(id);
  return out;
}

EventOutcome AdmissionSession::admit(const DagTask& task) {
  return admit_internal(task, /*enforce=*/true);
}

void AdmissionSession::release_internal(std::size_t pos, EventOutcome& out) {
  const Resident removed = std::move(residents_[pos]);
  residents_.erase(residents_.begin() + static_cast<std::ptrdiff_t>(pos));
  PartitionEvent ev;
  if (removed.high) {
    total_mu_ -= removed.mu;
    ev = partition_.resize(config_.processors - total_mu_);
  } else {
    ev = partition_.remove(removed.id);
  }
  out.bins_revalidated += ev.bins_revalidated;
  out.placements_replayed += ev.placements_replayed;
  out.schedulable = ev.ok;
  if (!ev.ok) {
    out.reject_reason = FedconsFailure::kPartitionPhase;
    out.failed_task = ev.failed_id;
  }
}

EventOutcome AdmissionSession::release(SessionTaskId id) {
  EventOutcome out;
  release_internal(resident_pos(id), out);
  out.applied = true;
  return out;
}

EventOutcome AdmissionSession::swap(const SwapBatch& batch) {
  EventOutcome out;
  // Validate the release list before mutating anything, so a caller error
  // surfaces as a clean ContractViolation rather than a half-applied batch.
  for (std::size_t i = 0; i < batch.release_ids.size(); ++i) {
    FEDCONS_EXPECTS_MSG(contains(batch.release_ids[i]),
                        "AdmissionSession::swap: unknown release id");
    for (std::size_t j = i + 1; j < batch.release_ids.size(); ++j) {
      FEDCONS_EXPECTS_MSG(batch.release_ids[i] != batch.release_ids[j],
                          "AdmissionSession::swap: duplicate release id");
    }
  }
  // Snapshot for the all-or-nothing guarantee. The memo cache is NOT part of
  // the snapshot: it is a pure cache, verdict-neutral by the replay contract,
  // so entries learned during a failed swap may stay.
  std::vector<Resident> snap_residents = residents_;
  const int snap_mu = total_mu_;
  IncrementalPartition snap_partition = partition_;

  bool failed = false;
  for (SessionTaskId id : batch.release_ids) {
    release_internal(resident_pos(id), out);
  }
  for (const DagTask& task : batch.admits) {
    EventOutcome step = admit_internal(task, /*enforce=*/false);
    out.bins_revalidated += step.bins_revalidated;
    out.placements_replayed += step.placements_replayed;
    out.memo_hit = out.memo_hit || step.memo_hit;
    if (!step.applied) {  // phase-1 infeasible: the final system would fail
      failed = true;
      out.reject_reason = step.reject_reason;
      out.failed_task = step.failed_task;
      break;
    }
    out.admitted_ids.push_back(step.admitted_ids.front());
  }
  if (!failed && !partition_.ok()) {
    failed = true;
    out.reject_reason = FedconsFailure::kPartitionPhase;
    out.failed_task = partition_.failed_id();
  }

  if (failed) {
    residents_ = std::move(snap_residents);
    total_mu_ = snap_mu;
    partition_ = std::move(snap_partition);
    out.applied = false;
    out.admitted_ids.clear();
    out.schedulable = partition_.ok();
    return out;
  }
  out.applied = true;
  out.schedulable = true;
  out.reject_reason = FedconsFailure::kNone;
  out.failed_task.reset();
  return out;
}

SessionVerdict AdmissionSession::verdict() const {
  SessionVerdict v;
  v.success = partition_.ok();
  int next_proc = 0;
  for (const Resident& r : residents_) {
    if (!r.high) continue;
    v.clusters.push_back(SessionCluster{r.id, next_proc, r.mu,
                                        r.sigma.makespan(), r.from_memo});
    next_proc += r.mu;
  }
  v.shared_processors = config_.processors - total_mu_;
  v.first_shared_processor = next_proc;
  if (!v.success) {
    v.failure = FedconsFailure::kPartitionPhase;
    v.failed_task = partition_.failed_id();
    return v;
  }
  v.failure = FedconsFailure::kNone;
  v.shared_assignment = partition_.assignment();
  return v;
}

TaskSystem AdmissionSession::resident_system(
    std::vector<SessionTaskId>* ids) const {
  if (ids != nullptr) ids->clear();
  std::vector<DagTask> tasks;
  tasks.reserve(residents_.size());
  for (const Resident& r : residents_) {
    tasks.push_back(r.task);
    if (ids != nullptr) ids->push_back(r.id);
  }
  return TaskSystem(std::move(tasks));
}

const MinprocsProvenance* AdmissionSession::scan_of(SessionTaskId id) const {
  const Resident& r = residents_[resident_pos(id)];
  return r.high ? &r.scan : nullptr;
}

bool AdmissionSession::from_memo(SessionTaskId id) const {
  return residents_[resident_pos(id)].from_memo;
}

}  // namespace fedcons
