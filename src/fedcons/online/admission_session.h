// AdmissionSession — the long-lived incremental admission engine.
//
// The batch entry point (fedcons_schedule) answers one whole-system question
// and forgets everything. An online system asks a *sequence* of questions —
// "may this task join?", "task k left", "replace this set atomically" — and
// re-running the full analysis per event costs O(system) each time. The
// session keeps the analysis state alive between events and re-derives only
// what an event invalidates:
//
//   phase 1 (MINPROCS)  — μ_i is a pure function of task content, so the
//                         session resolves it through a content-addressed
//                         memo cache (federated/minprocs_memo.h) keyed by the
//                         canonical DAG hash; repeated content costs a hash.
//   phase 2 (PARTITION) — per-bin DBF*/utilization aggregates persist in an
//                         IncrementalPartition (federated/partition_state.h);
//                         an event rolls back and replays only the
//                         invalidated suffix of the placement order.
//
// Semantic anchor — the session is ALWAYS equivalent to the batch run over
// its residents:
//
//     verdict() ≡ fedcons_schedule(TaskSystem(residents in admission order),
//                                  processors, options)
//
// structurally: same success/failure/failed task, same μ per cluster, same
// processor offsets, same per-bin membership in the same order. The
// `fedcons_conform --online` differential fuzzer checks this after every
// event of randomized traces.
//
// Event semantics:
//   admit(task)  — admission-controlled: applied iff the resulting system is
//                  schedulable; a rejected admit leaves the session state
//                  exactly as before (undone by the same replay machinery).
//   release(id)  — always applied (a departure is a fact, not a request).
//                  Under first-fit, removing a task can REDUCE schedulability
//                  of what remains (placements shift; the well-known
//                  partitioned-scheduling anomaly), so the session can sit in
//                  a failed state; verdict() then reports the same
//                  partition-phase failure the batch run would.
//   swap(batch)  — atomic mode change: all releases + admits applied
//                  together iff the final system is schedulable, otherwise
//                  NO change at all (state restored from a snapshot).
//
// Because admits are admission-controlled and releases only free capacity,
// resident high-density tasks always satisfy Σ μ ≤ m and every phase-1
// prefix; a resident failure is therefore always partition-phase.
//
// Threading contract: a session is a plain value with no internal locking —
// at most one thread may touch it at a time. It does NOT have to be the
// *same* thread: the session caches no thread identity (no thread_locals, no
// TID-keyed state), so an owner may hand it between threads as long as
// hand-offs are externally serialized with a happens-before edge (a mutex, a
// queue, a joined task). This is exactly how serve/server.cpp runs sessions:
// each dispatcher batch routes all of a session's events into one work item,
// and *which* BatchRunner worker executes that item changes batch to batch.
// (The memo cache underneath is itself thread-safe, but it is owned per
// session here so hit/miss sequences stay deterministic per event sequence.)
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "fedcons/core/task_system.h"
#include "fedcons/federated/fedcons_algorithm.h"
#include "fedcons/federated/minprocs_memo.h"
#include "fedcons/federated/partition_state.h"

namespace fedcons {

/// Session-scoped task handle: assigned sequentially from 0 by admit order
/// (rejected admits and failed swaps still consume ids, keeping trace replay
/// deterministic).
using SessionTaskId = std::size_t;

/// Outcome of one session event.
struct EventOutcome {
  bool applied = false;      ///< the event mutated the session
  bool schedulable = false;  ///< verdict after the event
  /// For rejected admits / failed swaps: which phase refused. For applied
  /// events that leave a failed state (releases): kPartitionPhase.
  FedconsFailure reject_reason = FedconsFailure::kNone;
  /// Id of the blocking task where applicable (rejected admit: the admitted
  /// task on phase-1 rejection, else the first unplaceable resident).
  std::optional<SessionTaskId> failed_task;
  /// Ids assigned to admitted tasks (admit: one; swap: one per admit, empty
  /// again if the swap rolled back).
  std::vector<SessionTaskId> admitted_ids;
  bool memo_hit = false;  ///< a phase-1 lookup was served from the memo cache
  /// PARTITION probes actually evaluated by the delta re-analysis (includes
  /// undo replays of rejected admits).
  std::uint64_t bins_revalidated = 0;
  std::size_t placements_replayed = 0;
};

/// One dedicated cluster in the session verdict (mirrors ClusterAssignment
/// over session ids; σ itself stays inside the session).
struct SessionCluster {
  SessionTaskId task = 0;
  int first_processor = 0;
  int num_processors = 0;   ///< μ_i
  Time sigma_makespan = 0;  ///< makespan of the stored template schedule
  bool from_memo = false;   ///< μ/σ were served from the memo cache
};

/// Materialized verdict — field-for-field comparable with FedconsResult on
/// the resident system (shared_assignment only meaningful on success, like
/// the batch result).
struct SessionVerdict {
  bool success = false;
  FedconsFailure failure = FedconsFailure::kNone;
  std::optional<SessionTaskId> failed_task;
  std::vector<SessionCluster> clusters;
  int shared_processors = 0;
  int first_shared_processor = 0;
  std::vector<std::vector<SessionTaskId>> shared_assignment;
};

class AdmissionSession {
 public:
  struct Config {
    int processors = 1;  ///< m (≥ 1)
    ListPolicy list_policy = ListPolicy::kVertexOrder;
    MinprocsOptions minprocs;    ///< provenance pointer is ignored
    PartitionOptions partition;  ///< provenance pointer is ignored
    std::size_t memo_capacity = MinprocsMemo::kDefaultCapacity;
  };

  explicit AdmissionSession(const Config& config);

  AdmissionSession(const AdmissionSession&) = delete;
  AdmissionSession& operator=(const AdmissionSession&) = delete;

  /// Admission-controlled join; rejected admits leave the state untouched.
  EventOutcome admit(const DagTask& task);

  /// Departure; always applies. ContractViolation on an unknown id.
  EventOutcome release(SessionTaskId id);

  /// Atomic mode change: releases then admits, all-or-nothing.
  struct SwapBatch {
    std::vector<SessionTaskId> release_ids;
    std::vector<DagTask> admits;
  };
  EventOutcome swap(const SwapBatch& batch);

  /// O(residents) materialization of the current verdict.
  [[nodiscard]] SessionVerdict verdict() const;

  /// The residents as a TaskSystem in admission order — the system the
  /// equivalence contract quantifies over. When `ids` is non-null it
  /// receives the session id of each TaskSystem index.
  [[nodiscard]] TaskSystem resident_system(
      std::vector<SessionTaskId>* ids = nullptr) const;

  [[nodiscard]] std::size_t num_residents() const noexcept {
    return residents_.size();
  }
  [[nodiscard]] bool contains(SessionTaskId id) const noexcept;
  [[nodiscard]] int processors() const noexcept { return config_.processors; }
  [[nodiscard]] int shared_processors() const noexcept {
    return config_.processors - total_mu_;
  }
  [[nodiscard]] const Config& config() const noexcept { return config_; }
  [[nodiscard]] MinprocsMemoStats memo_stats() const { return memo_.stats(); }
  /// Phase-1 scan trajectory of a resident high-density task (replayed from
  /// the memo entry on hits), for --explain rendering. Null for low tasks.
  [[nodiscard]] const MinprocsProvenance* scan_of(SessionTaskId id) const;
  /// Whether a resident high task's μ came from the memo cache.
  [[nodiscard]] bool from_memo(SessionTaskId id) const;

 private:
  struct Resident {
    Resident(SessionTaskId id, DagTask task, bool high)
        : id(id), task(std::move(task)), high(high) {}

    SessionTaskId id;
    DagTask task;
    bool high;
    // High-density only:
    int mu = 0;
    TemplateSchedule sigma;
    bool from_memo = false;
    MinprocsProvenance scan;
  };

  [[nodiscard]] std::size_t resident_pos(SessionTaskId id) const;
  /// Shared admit path; when `enforce` is false the admit applies even if it
  /// leaves a failed state (swap applies unconditionally, then decides).
  EventOutcome admit_internal(const DagTask& task, bool enforce);
  void release_internal(std::size_t pos, EventOutcome& out);

  Config config_;
  MinprocsMemo memo_;
  IncrementalPartition partition_;
  std::vector<Resident> residents_;  ///< admission order
  int total_mu_ = 0;                 ///< Σ μ over resident high tasks
  SessionTaskId next_id_ = 0;
};

}  // namespace fedcons
