#include "fedcons/sim/fault_injection.h"

#include <algorithm>

#include "fedcons/util/check.h"
#include "fedcons/util/perf_counters.h"

namespace fedcons {

namespace {

/// Shift `release` early by the plan-hash draw, clamped to keep the sequence
/// non-decreasing from `floor` and non-negative. Returns the new release.
Time shifted_release(const TaskFaultSpec& spec, std::uint64_t plan_seed,
                     std::uint64_t index, Time release, Time floor) {
  const Time shift =
      fault_early_shift(plan_seed, spec.task, index, spec.early_release_max);
  return std::max<Time>({release - shift, floor, 0});
}

}  // namespace

void apply_dag_fault(const TaskFaultSpec& spec, std::uint64_t plan_seed,
                     std::vector<DagJobRelease>& releases) {
  if (spec.trivial()) return;
  Time floor = 0;
  for (std::size_t j = 0; j < releases.size(); ++j) {
    DagJobRelease& job = releases[j];
    bool modified = false;
    for (std::size_t v = 0; v < job.exec_times.size(); ++v) {
      const Time scaled = scale_permille(
          job.exec_times[v], spec.permille_for(static_cast<std::uint32_t>(v)));
      if (scaled != job.exec_times[v]) {
        job.exec_times[v] = scaled;
        modified = true;
      }
    }
    const Time moved = shifted_release(spec, plan_seed, j, job.release, floor);
    if (moved != job.release) {
      job.release = moved;
      modified = true;
    }
    floor = job.release;
    if (modified) ++perf_counters().fault_injections;
  }
}

Time faulted_volume(const DagTask& task, const TaskFaultSpec& spec) {
  Time vol = 0;
  for (VertexId v = 0; v < task.graph().num_vertices(); ++v) {
    vol = saturating_add(
        vol, scale_permille(task.graph().wcet(v),
                            spec.permille_for(static_cast<std::uint32_t>(v))));
  }
  return vol;
}

void apply_sequential_fault(const TaskFaultSpec& spec, std::uint64_t plan_seed,
                            Time vol, Time faulty_vol, Time rel_deadline,
                            std::vector<JobRelease>& jobs) {
  FEDCONS_EXPECTS(vol >= 1);
  if (spec.trivial()) return;
  Time floor = 0;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    JobRelease& job = jobs[j];
    bool modified = false;
    if (faulty_vol != vol) {
      // exec' = ⌈exec · faulty_vol / vol⌉ — maps a WCET draw (exec == vol)
      // exactly onto the faulty volume and scales partial draws in
      // proportion, saturating rather than wrapping on absurd factors.
      const Time product = saturating_mul(job.exec_time, faulty_vol);
      const Time scaled =
          product == kTimeInfinity ? kTimeInfinity : ceil_div(product, vol);
      if (scaled != job.exec_time) {
        job.exec_time = scaled;
        modified = true;
      }
    }
    const Time moved = shifted_release(spec, plan_seed, j, job.release, floor);
    if (moved != job.release) {
      job.release = moved;
      job.abs_deadline = checked_add(moved, rel_deadline);
      modified = true;
    }
    floor = job.release;
    if (modified) ++perf_counters().fault_injections;
  }
}

}  // namespace fedcons
