// Applying a FaultPlan to generated job releases.
//
// Injection is a POST-PASS over the release sequences the generators
// produced: execution times are scaled by the spec's permille factors and
// releases are shifted EARLY by deterministic hash draws (fault_plan.h). The
// generators themselves are untouched, so a run with an empty plan consumes
// exactly the same RNG stream — and produces exactly the same bytes — as a
// run from before the fault layer existed.
//
// Monotonicity: early shifts are clamped so the release sequence stays
// non-decreasing and non-negative (the simulators' event queues assume
// sorted releases). The shifted sequence may violate the sporadic
// minimum-separation contract — that is the fault being modelled; the
// arrival guard in edf_sim (SupervisionMode::kEnforce) is what restores the
// contract at run time.
#pragma once

#include <span>
#include <vector>

#include "fedcons/core/dag_task.h"
#include "fedcons/fault/fault_plan.h"
#include "fedcons/sim/release_generator.h"

namespace fedcons {

/// Perturb dag-job releases of the task `spec` targets: per-vertex execution
/// scaling plus early-release shifts. Counts one fault_injections per
/// modified job.
void apply_dag_fault(const TaskFaultSpec& spec, std::uint64_t plan_seed,
                     std::vector<DagJobRelease>& releases);

/// The target's volume after execution scaling: Σ_v ⌈e_v · p_v / 1000⌉.
/// This is the sequential-view WCET a faulty task can demand per job.
[[nodiscard]] Time faulted_volume(const DagTask& task,
                                  const TaskFaultSpec& spec);

/// Perturb sequential-job releases (EDF-bin tasks): each drawn execution
/// time is scaled by the task-level ratio faulty_vol/vol (exactly:
/// exec' = ⌈exec · faulty_vol / vol⌉, so WCET draws map to faulty_vol), and
/// releases shift early with abs_deadline recomputed as release' + D — an
/// early job's real deadline moves with its real arrival. Counts one
/// fault_injections per modified job. Preconditions: vol >= 1.
void apply_sequential_fault(const TaskFaultSpec& spec, std::uint64_t plan_seed,
                            Time vol, Time faulty_vol, Time rel_deadline,
                            std::vector<JobRelease>& jobs);

}  // namespace fedcons
