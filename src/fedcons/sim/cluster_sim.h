// Dedicated-cluster run-time simulation for high-density tasks.
//
// Two dispatch modes, matching the paper's Section IV-A discussion:
//  * kTemplateReplay — the algorithm's actual run-time rule: the job of
//    vertex v starts at (release + σ.start(v)) on processor σ.proc(v) and the
//    slot idles if the job completes early. Anomaly-safe: the dag-job always
//    completes by release + σ.makespan ≤ release + D.
//  * kOnlineRerun — the behaviour footnote 2 warns against: LS is re-run at
//    each release with the ACTUAL execution times. Graham's anomaly means
//    this can exceed σ's makespan and miss deadlines even though every job
//    ran no longer than its WCET.
#pragma once

#include "fedcons/core/dag_task.h"
#include "fedcons/listsched/list_scheduler.h"
#include "fedcons/listsched/schedule.h"
#include "fedcons/sim/release_generator.h"
#include "fedcons/sim/sim_config.h"
#include "fedcons/sim/trace.h"

namespace fedcons {

enum class ClusterDispatch { kTemplateReplay, kOnlineRerun };

[[nodiscard]] const char* to_string(ClusterDispatch d) noexcept;

/// Simulate every release of `task` on its dedicated cluster.
/// Preconditions: sigma validates against task.graph(); releases were
/// generated for this task (vertex-count match).
///
/// Constrained deadlines (D ≤ T) guarantee dag-jobs of the same task never
/// overlap when the analysis accepted the task (makespan ≤ D ≤ T), so
/// releases are processed independently; for kOnlineRerun a dag-job is
/// STILL started at its release (the overrun manifests purely as lateness),
/// which is the standard miss-accounting convention.
///
/// Supervision: with SupervisionMode::kEnforce and kTemplateReplay dispatch,
/// a vertex whose (possibly fault-inflated) execution exceeds its σ slot is
/// clamped at the slot boundary — the overrun is counted in
/// SimStats::slot_overruns and the excess work dropped, so replay never
/// leaves the template and the dag-job still completes by release + makespan.
/// kOnlineRerun has no slots to enforce (that is precisely its anomaly).
/// `trace`, when non-null, records every executed segment (job_uid =
/// release_index · |V| + vertex) for post-hoc validation (sim/trace.h).
[[nodiscard]] SimStats simulate_cluster(const DagTask& task,
                                        const TemplateSchedule& sigma,
                                        std::span<const DagJobRelease> releases,
                                        const SimConfig& config,
                                        ClusterDispatch dispatch,
                                        ListPolicy policy = ListPolicy::kVertexOrder,
                                        ExecutionTrace* trace = nullptr);

/// Simulate a PIPELINED cluster (arbitrary-deadline extension, see
/// federated/arbitrary.h): dag-job j replays `sigma` on instance
/// (j mod instances), each instance owning its own sigma.num_processors()
/// processors. In addition to miss statistics this validates the soundness
/// argument operationally: it THROWS (ContractViolation) if two jobs ever
/// overlap on the same processor — which the k = ⌈makespan/T⌉ choice is
/// proved to prevent. Preconditions: instances >= 1; sigma matches the task.
[[nodiscard]] SimStats simulate_pipelined_cluster(
    const DagTask& task, const TemplateSchedule& sigma, int instances,
    std::span<const DagJobRelease> releases, const SimConfig& config,
    ExecutionTrace* trace = nullptr);

}  // namespace fedcons
