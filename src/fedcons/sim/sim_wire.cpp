#include "fedcons/sim/sim_wire.h"

#include "fedcons/util/parse_error.h"

namespace fedcons {

const char* release_model_name(ReleaseModel m) noexcept {
  return m == ReleaseModel::kPeriodic ? "periodic" : "sporadic";
}

const char* exec_model_name(ExecModel m) noexcept {
  return m == ExecModel::kAlwaysWcet ? "wcet" : "uniform";
}

ReleaseModel parse_release_model(const std::string& name) {
  if (name == "periodic") return ReleaseModel::kPeriodic;
  if (name == "sporadic") return ReleaseModel::kSporadic;
  throw ParseError(1, "artifact JSON: unknown release model " + name);
}

ExecModel parse_exec_model(const std::string& name) {
  if (name == "wcet") return ExecModel::kAlwaysWcet;
  if (name == "uniform") return ExecModel::kUniform;
  throw ParseError(1, "artifact JSON: unknown exec model " + name);
}

}  // namespace fedcons
