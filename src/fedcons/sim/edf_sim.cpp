#include "fedcons/sim/edf_sim.h"

#include <algorithm>
#include <queue>

#include "fedcons/util/check.h"

namespace fedcons {

namespace {

struct PendingJob {
  Time key;  // EDF: absolute deadline; FP: stream index (priority)
  std::size_t stream;
  Time release;
  Time abs_deadline;
  Time remaining;
  std::uint64_t uid;  // (stream << 32) | per-stream release index

  // Min-heap by (key, stream, release) — deterministic for both policies.
  bool operator>(const PendingJob& rhs) const noexcept {
    if (key != rhs.key) return key > rhs.key;
    if (stream != rhs.stream) return stream > rhs.stream;
    return release > rhs.release;
  }
};

struct FutureRelease {
  Time release;
  std::size_t stream;
  std::size_t index;
  bool operator>(const FutureRelease& rhs) const noexcept {
    if (release != rhs.release) return release > rhs.release;
    return stream > rhs.stream;
  }
};

enum class Policy { kEdf, kFixedPriority };

FpSimReport run_uniproc(std::span<const EdfTaskStream> streams,
                        const SimConfig& config, Policy policy,
                        ExecutionTrace* trace) {
  // Trace uids pack (stream, release index) into 32 bits each; see the
  // header's packing contract.
  FEDCONS_EXPECTS_MSG(streams.size() < (std::uint64_t{1} << 32),
                      "stream count exceeds the 32-bit uid packing field");
  FpSimReport report;
  report.max_response_per_stream.assign(streams.size(), 0);
  SimStats& stats = report.stats;

  std::priority_queue<FutureRelease, std::vector<FutureRelease>,
                      std::greater<>>
      future;
  for (std::size_t s = 0; s < streams.size(); ++s) {
    if (!streams[s].jobs.empty()) {
      future.push({streams[s].jobs.front().release, s, 0});
    }
  }
  std::priority_queue<PendingJob, std::vector<PendingJob>, std::greater<>>
      pending;
  Time now = 0;
  Time executed = 0;

  auto admit_due = [&](Time t) {
    while (!future.empty() && future.top().release <= t) {
      auto [rel, s, idx] = future.top();
      future.pop();
      const JobRelease& j = streams[s].jobs[idx];
      const Time key = (policy == Policy::kEdf) ? j.abs_deadline
                                                : static_cast<Time>(s);
      // (stream << 32) | idx silently aliases uids once idx reaches 2^32 —
      // enforce the packing contract instead of wrapping.
      FEDCONS_EXPECTS_MSG(idx < (std::uint64_t{1} << 32),
                          "release index exceeds the 32-bit uid packing field");
      const std::uint64_t uid =
          (static_cast<std::uint64_t>(s) << 32) | static_cast<std::uint64_t>(idx);
      pending.push({key, s, j.release, j.abs_deadline, j.exec_time, uid});
      ++stats.jobs_released;
      if (idx + 1 < streams[s].jobs.size()) {
        future.push({streams[s].jobs[idx + 1].release, s, idx + 1});
      }
    }
  };

  auto complete = [&](const PendingJob& job, Time at) {
    if (at > job.abs_deadline) {
      ++stats.deadline_misses;
      stats.max_lateness = std::max(stats.max_lateness, at - job.abs_deadline);
    }
    const Time response = at - job.release;
    stats.max_response_time = std::max(stats.max_response_time, response);
    report.max_response_per_stream[job.stream] =
        std::max(report.max_response_per_stream[job.stream], response);
  };

  admit_due(now);
  while (!pending.empty() || !future.empty()) {
    if (pending.empty()) {
      now = std::max(now, future.top().release);
      admit_due(now);
      continue;
    }
    PendingJob job = pending.top();
    pending.pop();
    const Time finish_if_undisturbed = checked_add(now, job.remaining);
    const Time next_release =
        future.empty() ? kTimeInfinity : future.top().release;
    if (finish_if_undisturbed <= next_release) {
      executed = checked_add(executed, job.remaining);
      if (trace != nullptr) {
        trace->add(0, job.uid, now, finish_if_undisturbed);
      }
      now = finish_if_undisturbed;
      complete(job, now);
      admit_due(now);
    } else {
      const Time ran = next_release - now;
      executed = checked_add(executed, ran);
      if (trace != nullptr && ran > 0) {
        trace->add(0, job.uid, now, next_release);
      }
      job.remaining -= ran;
      now = next_release;
      admit_due(now);
      pending.push(job);  // may be preempted by a newly released job
    }
  }
  // span is 0 when there are no releases and config.horizon == 0; report an
  // idle processor (0.0) instead of the 0/0 NaN.
  const Time span = std::max(config.horizon, now);
  stats.busy_fraction =
      span > 0 ? static_cast<double>(executed) / static_cast<double>(span)
               : 0.0;
  return report;
}

}  // namespace

SimStats simulate_edf_uniproc(std::span<const EdfTaskStream> streams,
                              const SimConfig& config,
                              ExecutionTrace* trace) {
  return run_uniproc(streams, config, Policy::kEdf, trace).stats;
}

SimStats simulate_fp_uniproc(std::span<const EdfTaskStream> streams,
                             const SimConfig& config, ExecutionTrace* trace) {
  return run_uniproc(streams, config, Policy::kFixedPriority, trace).stats;
}

FpSimReport simulate_fp_uniproc_detailed(
    std::span<const EdfTaskStream> streams, const SimConfig& config,
    ExecutionTrace* trace) {
  return run_uniproc(streams, config, Policy::kFixedPriority, trace);
}

}  // namespace fedcons
