#include "fedcons/sim/edf_sim.h"

#include <algorithm>
#include <queue>

#include "fedcons/util/check.h"
#include "fedcons/util/perf_counters.h"

namespace fedcons {

namespace {

/// A job after supervision preprocessing. Without enforcement, sched ==
/// account == the generator's abs_deadline and exec is the drawn execution
/// time — the simulation is bit-identical to the pre-supervision engine.
struct SimJob {
  Time release;
  Time exec;
  Time sched_deadline;    ///< EDF key (postponed for deferred arrivals)
  Time account_deadline;  ///< miss accounting (always the job's real deadline)
};

struct PendingJob {
  Time key;  // EDF: scheduling deadline; FP: stream index (priority)
  std::size_t stream;
  Time release;
  Time account_deadline;
  Time remaining;
  std::uint64_t uid;  // (stream << 32) | per-stream release index

  // Min-heap by (key, stream, release) — deterministic for both policies.
  bool operator>(const PendingJob& rhs) const noexcept {
    if (key != rhs.key) return key > rhs.key;
    if (stream != rhs.stream) return stream > rhs.stream;
    return release > rhs.release;
  }
};

struct FutureRelease {
  Time release;
  std::size_t stream;
  std::size_t index;
  bool operator>(const FutureRelease& rhs) const noexcept {
    if (release != rhs.release) return release > rhs.release;
    return stream > rhs.stream;
  }
};

enum class Policy { kEdf, kFixedPriority };

FpSimReport run_uniproc(std::span<const EdfTaskStream> streams,
                        const SimConfig& config, Policy policy,
                        ExecutionTrace* trace) {
  // Trace uids pack (stream, release index) into 32 bits each; see the
  // header's packing contract.
  FEDCONS_EXPECTS_MSG(streams.size() < (std::uint64_t{1} << 32),
                      "stream count exceeds the 32-bit uid packing field");
  FpSimReport report;
  report.max_response_per_stream.assign(streams.size(), 0);
  report.per_stream.assign(streams.size(), SimStats{});
  SimStats& stats = report.stats;

  // Supervision preprocessing (see EdfTaskStream): budget clamp + arrival
  // guard with CBS-style scheduling-deadline postponement. With enforcement
  // off (the default) this is the identity transform.
  const bool enforce = config.supervision == SupervisionMode::kEnforce;
  std::vector<std::vector<SimJob>> jobs(streams.size());
  for (std::size_t s = 0; s < streams.size(); ++s) {
    const EdfTaskStream& st = streams[s];
    jobs[s].reserve(st.jobs.size());
    Time prev_effective = 0;
    bool has_prev = false;
    for (const JobRelease& j : st.jobs) {
      SimJob out{j.release, j.exec_time, j.abs_deadline, j.abs_deadline};
      if (enforce) {
        if (st.budget > 0 && out.exec > st.budget) {
          out.exec = st.budget;
          ++report.per_stream[s].budget_throttles;
          ++perf_counters().fault_enforcements;
        }
        if (st.min_separation > 0 && has_prev &&
            out.release < checked_add(prev_effective, st.min_separation)) {
          out.release = checked_add(prev_effective, st.min_separation);
          out.sched_deadline = checked_add(out.release, st.rel_deadline);
          ++report.per_stream[s].arrival_deferrals;
          ++perf_counters().fault_enforcements;
        }
        prev_effective = out.release;
        has_prev = true;
      }
      jobs[s].push_back(out);
    }
    stats.budget_throttles += report.per_stream[s].budget_throttles;
    stats.arrival_deferrals += report.per_stream[s].arrival_deferrals;
  }

  std::priority_queue<FutureRelease, std::vector<FutureRelease>,
                      std::greater<>>
      future;
  for (std::size_t s = 0; s < streams.size(); ++s) {
    if (!jobs[s].empty()) {
      future.push({jobs[s].front().release, s, 0});
    }
  }
  std::priority_queue<PendingJob, std::vector<PendingJob>, std::greater<>>
      pending;
  Time now = 0;
  Time executed = 0;

  auto admit_due = [&](Time t) {
    while (!future.empty() && future.top().release <= t) {
      auto [rel, s, idx] = future.top();
      future.pop();
      const SimJob& j = jobs[s][idx];
      const Time key = (policy == Policy::kEdf) ? j.sched_deadline
                                                : static_cast<Time>(s);
      // (stream << 32) | idx silently aliases uids once idx reaches 2^32 —
      // enforce the packing contract instead of wrapping.
      FEDCONS_EXPECTS_MSG(idx < (std::uint64_t{1} << 32),
                          "release index exceeds the 32-bit uid packing field");
      const std::uint64_t uid =
          (static_cast<std::uint64_t>(s) << 32) | static_cast<std::uint64_t>(idx);
      pending.push({key, s, j.release, j.account_deadline, j.exec, uid});
      ++stats.jobs_released;
      ++report.per_stream[s].jobs_released;
      if (idx + 1 < jobs[s].size()) {
        future.push({jobs[s][idx + 1].release, s, idx + 1});
      }
    }
  };

  auto complete = [&](const PendingJob& job, Time at) {
    SimStats& mine = report.per_stream[job.stream];
    if (at > job.account_deadline) {
      ++stats.deadline_misses;
      ++mine.deadline_misses;
      const Time late = at - job.account_deadline;
      stats.max_lateness = std::max(stats.max_lateness, late);
      mine.max_lateness = std::max(mine.max_lateness, late);
    }
    const Time response = at - job.release;
    stats.max_response_time = std::max(stats.max_response_time, response);
    mine.max_response_time = std::max(mine.max_response_time, response);
    report.max_response_per_stream[job.stream] =
        std::max(report.max_response_per_stream[job.stream], response);
  };

  admit_due(now);
  while (!pending.empty() || !future.empty()) {
    if (pending.empty()) {
      now = std::max(now, future.top().release);
      admit_due(now);
      continue;
    }
    PendingJob job = pending.top();
    pending.pop();
    const Time finish_if_undisturbed = checked_add(now, job.remaining);
    const Time next_release =
        future.empty() ? kTimeInfinity : future.top().release;
    if (finish_if_undisturbed <= next_release) {
      executed = checked_add(executed, job.remaining);
      if (trace != nullptr) {
        trace->add(0, job.uid, now, finish_if_undisturbed);
      }
      now = finish_if_undisturbed;
      complete(job, now);
      admit_due(now);
    } else {
      const Time ran = next_release - now;
      executed = checked_add(executed, ran);
      if (trace != nullptr && ran > 0) {
        trace->add(0, job.uid, now, next_release);
      }
      job.remaining -= ran;
      now = next_release;
      admit_due(now);
      pending.push(job);  // may be preempted by a newly released job
    }
  }
  // span is 0 when there are no releases and config.horizon == 0; report an
  // idle processor (0.0) instead of the 0/0 NaN.
  const Time span = std::max(config.horizon, now);
  stats.busy_fraction =
      span > 0 ? static_cast<double>(executed) / static_cast<double>(span)
               : 0.0;
  return report;
}

}  // namespace

SimStats simulate_edf_uniproc(std::span<const EdfTaskStream> streams,
                              const SimConfig& config,
                              ExecutionTrace* trace) {
  return run_uniproc(streams, config, Policy::kEdf, trace).stats;
}

SimStats simulate_fp_uniproc(std::span<const EdfTaskStream> streams,
                             const SimConfig& config, ExecutionTrace* trace) {
  return run_uniproc(streams, config, Policy::kFixedPriority, trace).stats;
}

FpSimReport simulate_fp_uniproc_detailed(
    std::span<const EdfTaskStream> streams, const SimConfig& config,
    ExecutionTrace* trace) {
  return run_uniproc(streams, config, Policy::kFixedPriority, trace);
}

FpSimReport simulate_edf_uniproc_detailed(
    std::span<const EdfTaskStream> streams, const SimConfig& config,
    ExecutionTrace* trace) {
  return run_uniproc(streams, config, Policy::kEdf, trace);
}

}  // namespace fedcons
