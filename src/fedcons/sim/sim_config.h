// Shared configuration for the run-time simulators (experiment E6).
//
// The simulators exist to *validate* the analysis empirically: a system
// accepted by FEDCONS must exhibit zero deadline misses under any legal
// sporadic release pattern and any actual execution times ≤ WCET. They also
// demonstrate the one behaviour the paper singles out as unsafe — re-running
// LS online (Graham's anomaly, footnote 2).
#pragma once

#include <cstdint>

#include "fedcons/util/time_types.h"

namespace fedcons {

/// How dag-job releases are spaced.
enum class ReleaseModel {
  kPeriodic,  ///< strictly every T (the synchronous-periodic pattern)
  kSporadic,  ///< inter-arrival T + uniform extra delay up to jitter_frac·T
};

/// How actual execution times relate to WCETs.
enum class ExecModel {
  kAlwaysWcet,  ///< every job runs exactly its WCET
  kUniform,     ///< uniform integer in [max(1, ⌈exec_lo·e_v⌉), e_v]
};

struct SimConfig {
  Time horizon = 100000;  ///< simulate releases with deadline before horizon
  ReleaseModel release = ReleaseModel::kPeriodic;
  double jitter_frac = 0.5;  ///< sporadic extra-delay cap, fraction of T
  ExecModel exec = ExecModel::kAlwaysWcet;
  double exec_lo = 0.5;      ///< lower bound fraction for kUniform
  std::uint64_t seed = 1;    ///< drives releases and execution times
};

/// Aggregated outcome of a simulation run.
struct SimStats {
  std::uint64_t jobs_released = 0;   ///< dag-jobs (or sequential jobs)
  std::uint64_t deadline_misses = 0;
  Time max_lateness = 0;        ///< max(finish − deadline, 0) over jobs
  Time max_response_time = 0;   ///< max(finish − release) over jobs
  /// Executed work / (processors × simulated span), where the span is the
  /// horizon extended to the last completion (late jobs run past the
  /// horizon, so overloaded runs stay ≤ 1 rather than exceeding it).
  double busy_fraction = 0.0;

  void merge(const SimStats& other) noexcept {
    jobs_released += other.jobs_released;
    deadline_misses += other.deadline_misses;
    if (other.max_lateness > max_lateness) max_lateness = other.max_lateness;
    if (other.max_response_time > max_response_time)
      max_response_time = other.max_response_time;
    // busy_fraction must be re-derived by the caller when merging pools of
    // different sizes; merge keeps the maximum as a conservative summary.
    if (other.busy_fraction > busy_fraction) busy_fraction = other.busy_fraction;
  }
};

}  // namespace fedcons
