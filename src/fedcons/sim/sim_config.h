// Shared configuration for the run-time simulators (experiment E6).
//
// The simulators exist to *validate* the analysis empirically: a system
// accepted by FEDCONS must exhibit zero deadline misses under any legal
// sporadic release pattern and any actual execution times ≤ WCET. They also
// demonstrate the one behaviour the paper singles out as unsafe — re-running
// LS online (Graham's anomaly, footnote 2).
#pragma once

#include <cstdint>

#include "fedcons/fault/fault_plan.h"
#include "fedcons/util/time_types.h"

namespace fedcons {

/// How dag-job releases are spaced.
enum class ReleaseModel {
  kPeriodic,  ///< strictly every T (the synchronous-periodic pattern)
  kSporadic,  ///< inter-arrival T + uniform extra delay up to jitter_frac·T
};

/// How actual execution times relate to WCETs.
enum class ExecModel {
  kAlwaysWcet,  ///< every job runs exactly its WCET
  kUniform,     ///< uniform integer in [max(1, ⌈exec_lo·e_v⌉), e_v]
};

struct SimConfig {
  Time horizon = 100000;  ///< simulate releases with deadline before horizon
  ReleaseModel release = ReleaseModel::kPeriodic;
  double jitter_frac = 0.5;  ///< sporadic extra-delay cap, fraction of T
  ExecModel exec = ExecModel::kAlwaysWcet;
  double exec_lo = 0.5;      ///< lower bound fraction for kUniform
  std::uint64_t seed = 1;    ///< drives releases and execution times

  /// Fault injection (fedcons/fault/): perturbations applied AFTER release
  /// generation, so an empty plan (the default) leaves every RNG draw and
  /// every report byte exactly as before the fault layer existed.
  FaultPlan faults;
  /// Runtime supervision. With kEnforce, EDF bins clamp per-job execution at
  /// the reserved budget and defer early arrivals to the sporadic minimum
  /// separation (postponing the job's SCHEDULING deadline CBS-style, so the
  /// bin's admitted-demand certificate still covers every neighbour), and
  /// template replay clamps each vertex at its σ slot. All enforcement
  /// interventions are counted in SimStats; none fire on within-contract
  /// behaviour.
  SupervisionMode supervision = SupervisionMode::kNone;
};

/// Aggregated outcome of a simulation run.
struct SimStats {
  std::uint64_t jobs_released = 0;   ///< dag-jobs (or sequential jobs)
  std::uint64_t deadline_misses = 0;
  Time max_lateness = 0;        ///< max(finish − deadline, 0) over jobs
  Time max_response_time = 0;   ///< max(finish − release) over jobs
  /// Executed work / (processors × simulated span), where the span is the
  /// horizon extended to the last completion (late jobs run past the
  /// horizon, so overloaded runs stay ≤ 1 rather than exceeding it).
  double busy_fraction = 0.0;

  // Supervision interventions (all zero unless SupervisionMode::kEnforce is
  // active AND a fault actually pushed behaviour outside its contract — a
  // clean run is byte-identical with enforcement on or off).
  std::uint64_t budget_throttles = 0;    ///< EDF jobs clamped at vol_i
  std::uint64_t arrival_deferrals = 0;   ///< early releases held to T-separation
  std::uint64_t slot_overruns = 0;       ///< template-slot clamps in replay

  void merge(const SimStats& other) noexcept {
    jobs_released += other.jobs_released;
    deadline_misses += other.deadline_misses;
    if (other.max_lateness > max_lateness) max_lateness = other.max_lateness;
    if (other.max_response_time > max_response_time)
      max_response_time = other.max_response_time;
    // busy_fraction must be re-derived by the caller when merging pools of
    // different sizes; merge keeps the maximum as a conservative summary.
    if (other.busy_fraction > busy_fraction) busy_fraction = other.busy_fraction;
    budget_throttles += other.budget_throttles;
    arrival_deferrals += other.arrival_deferrals;
    slot_overruns += other.slot_overruns;
  }
};

}  // namespace fedcons
