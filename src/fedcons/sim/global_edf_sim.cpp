#include "fedcons/sim/global_edf_sim.h"

#include <algorithm>
#include <queue>
#include <set>

#include "fedcons/util/check.h"

namespace fedcons {

namespace {

/// One vertex of one released dag-job.
struct VertexInstance {
  Time remaining = 0;
  Time abs_deadline = 0;
  std::size_t dagjob = 0;        // index into the dag-job bookkeeping array
  std::size_t task = 0;
  VertexId vertex = 0;
  std::size_t preds_remaining = 0;
};

/// Bookkeeping per released dag-job.
struct DagJobState {
  std::size_t task = 0;
  Time release = 0;
  Time abs_deadline = 0;
  std::size_t vertices_left = 0;
  std::size_t first_instance = 0;  // contiguous block in the instance array
};

struct ReleaseEvent {
  Time time;
  std::size_t task;
  std::size_t index;
  bool operator>(const ReleaseEvent& rhs) const noexcept {
    if (time != rhs.time) return time > rhs.time;
    return task > rhs.task;
  }
};

/// Ready-set ordering: EDF with deterministic tie-breaks.
struct ReadyKey {
  Time abs_deadline;
  std::size_t instance;
  bool operator<(const ReadyKey& rhs) const noexcept {
    if (abs_deadline != rhs.abs_deadline)
      return abs_deadline < rhs.abs_deadline;
    return instance < rhs.instance;
  }
};

}  // namespace

SimStats simulate_global_edf(
    const TaskSystem& system,
    std::span<const std::vector<DagJobRelease>> releases, int m,
    const SimConfig& config, ExecutionTrace* trace) {
  FEDCONS_EXPECTS(m >= 1);
  FEDCONS_EXPECTS(releases.size() == system.size());

  SimStats stats;
  std::priority_queue<ReleaseEvent, std::vector<ReleaseEvent>, std::greater<>>
      future;
  for (std::size_t t = 0; t < releases.size(); ++t) {
    if (!releases[t].empty()) future.push({releases[t][0].release, t, 0});
  }

  std::vector<VertexInstance> instances;
  std::vector<DagJobState> dagjobs;
  std::set<ReadyKey> ready;
  Time now = 0;
  Time executed = 0;

  auto complete_vertex = [&](std::size_t id, Time at) {
    VertexInstance& vi = instances[id];
    const Dag& g = system[vi.task].graph();
    DagJobState& dj = dagjobs[vi.dagjob];
    for (VertexId s : g.successors(vi.vertex)) {
      std::size_t sid = dj.first_instance + s;
      if (--instances[sid].preds_remaining == 0) {
        ready.insert({instances[sid].abs_deadline, sid});
      }
    }
    if (--dj.vertices_left == 0) {
      if (at > dj.abs_deadline) {
        ++stats.deadline_misses;
        stats.max_lateness = std::max(stats.max_lateness, at - dj.abs_deadline);
      }
      stats.max_response_time =
          std::max(stats.max_response_time, at - dj.release);
    }
  };

  auto admit_due = [&](Time t) {
    while (!future.empty() && future.top().time <= t) {
      auto [rel, task, index] = future.top();
      future.pop();
      const DagJobRelease& job = releases[task][index];
      const Dag& g = system[task].graph();
      const std::size_t dj_id = dagjobs.size();
      const std::size_t base = instances.size();
      dagjobs.push_back({task, job.release,
                         checked_add(job.release, system[task].deadline()),
                         g.num_vertices(), base});
      ++stats.jobs_released;
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        VertexInstance vi;
        vi.remaining = job.exec_times[v];
        vi.abs_deadline = dagjobs[dj_id].abs_deadline;
        vi.dagjob = dj_id;
        vi.task = task;
        vi.vertex = v;
        vi.preds_remaining = g.in_degree(v);
        instances.push_back(vi);
        if (vi.preds_remaining == 0) {
          ready.insert({vi.abs_deadline, base + v});
        }
      }
      if (index + 1 < releases[task].size()) {
        future.push({releases[task][index + 1].release, task, index + 1});
      }
    }
  };

  admit_due(now);
  while (!ready.empty() || !future.empty()) {
    if (ready.empty()) {
      now = std::max(now, future.top().time);
      admit_due(now);
      continue;
    }
    // Select the m earliest-deadline ready vertices.
    std::vector<std::size_t> running;
    running.reserve(static_cast<std::size_t>(m));
    for (auto it = ready.begin();
         it != ready.end() && running.size() < static_cast<std::size_t>(m);
         ++it) {
      running.push_back(it->instance);
    }
    // Advance to the next event: earliest completion or next release.
    Time min_remaining = kTimeInfinity;
    for (std::size_t id : running)
      min_remaining = std::min(min_remaining, instances[id].remaining);
    Time next_evt = checked_add(now, min_remaining);
    if (!future.empty()) next_evt = std::min(next_evt, future.top().time);
    const Time delta = next_evt - now;
    FEDCONS_ASSERT(delta >= 0);
    for (std::size_t slot = 0; slot < running.size(); ++slot) {
      const std::size_t id = running[slot];
      instances[id].remaining -= delta;
      executed = checked_add(executed, delta);
      if (trace != nullptr && delta > 0) {
        trace->add(static_cast<int>(slot), id, now, next_evt);
      }
      if (instances[id].remaining == 0) {
        ready.erase({instances[id].abs_deadline, id});
        complete_vertex(id, next_evt);
      }
    }
    now = next_evt;
    admit_due(now);
  }

  const Time span = std::max(config.horizon, now);
  stats.busy_fraction = static_cast<double>(executed) /
                        (static_cast<double>(m) * static_cast<double>(span));
  return stats;
}

}  // namespace fedcons
