// ASCII Gantt rendering of template schedules and execution traces.
//
// Used by the anomaly demo, the CLI (--gantt), and debugging sessions: a
// schedule you can *see* is a schedule you can review. Rendering is pure
// formatting — no scheduling logic lives here. (The header lives in sim/
// because it renders both listsched's TemplateSchedule and sim's
// ExecutionTrace; sim already depends on listsched.)
//
// Example (paper Figure-1 task on two processors):
//
//   P0 |01333-|
//   P1 |-22-4-|
//      t=0..6 (1 tick/char)
#pragma once

#include <string>

#include "fedcons/listsched/schedule.h"
#include "fedcons/sim/trace.h"

namespace fedcons {

struct GanttOptions {
  Time start = 0;       ///< left edge of the rendered window
  Time end = -1;        ///< right edge (exclusive); -1 = makespan / last end
  int max_width = 100;  ///< columns; longer windows are scaled down
};

/// Render a template schedule: one row per processor, one character per
/// `ticks_per_char` time units, job ids mod 36 rendered as 0-9a-z, idle as
/// '-' (a scaled cell shows the job occupying most of it). Ends with a
/// window legend.
[[nodiscard]] std::string render_gantt(const TemplateSchedule& schedule,
                                       const GanttOptions& options = {});

/// Render an execution trace (same conventions; job_uid mod 36 as glyph).
/// `num_processors` pads empty trailing rows (0 = infer from the trace).
[[nodiscard]] std::string render_gantt(const ExecutionTrace& trace,
                                       int num_processors = 0,
                                       const GanttOptions& options = {});

}  // namespace fedcons
