#include "fedcons/sim/system_sim.h"

#include "fedcons/sim/release_generator.h"
#include "fedcons/util/check.h"
#include "fedcons/util/rng.h"

namespace fedcons {

SystemSimReport simulate_system(const TaskSystem& system,
                                const FedconsResult& result,
                                const SimConfig& config,
                                ClusterDispatch dispatch) {
  FEDCONS_EXPECTS_MSG(result.success,
                      "cannot simulate a rejected allocation");
  SystemSimReport report;
  Rng rng(config.seed);

  // Dedicated clusters.
  for (const auto& cluster : result.clusters) {
    const DagTask& task = system[cluster.task];
    Rng stream = rng.split();
    auto releases = generate_releases(task, config, stream);
    SimStats s = simulate_cluster(task, cluster.sigma, releases, config,
                                  dispatch);
    report.total.merge(s);
    report.cluster_stats.push_back(std::move(s));
  }

  // Shared processors under preemptive EDF.
  for (const auto& assigned : result.shared_assignment) {
    std::vector<EdfTaskStream> streams;
    streams.reserve(assigned.size());
    for (TaskId t : assigned) {
      const SporadicTask seq = system[t].to_sequential();
      Rng stream_rng = rng.split();
      streams.push_back(EdfTaskStream{generate_sequential_releases(
          seq.wcet, seq.deadline, seq.period, config, stream_rng)});
    }
    SimStats s = simulate_edf_uniproc(streams, config);
    report.total.merge(s);
    report.shared_stats.push_back(std::move(s));
  }
  return report;
}

SystemSimReport simulate_arbitrary_system(
    const TaskSystem& system, const ArbitraryFederatedResult& result,
    const SimConfig& config) {
  FEDCONS_EXPECTS_MSG(result.success,
                      "cannot simulate a rejected allocation");
  SystemSimReport report;
  Rng rng(config.seed);

  // Pipelined clusters (k == 1 degenerates to plain template replay).
  for (const auto& cluster : result.clusters) {
    const DagTask& task = system[cluster.task];
    Rng stream = rng.split();
    auto releases = generate_releases(task, config, stream);
    SimStats s = simulate_pipelined_cluster(task, cluster.sigma,
                                            cluster.instances, releases,
                                            config);
    report.total.merge(s);
    report.cluster_stats.push_back(std::move(s));
  }

  // Shared processors under preemptive EDF (identical to the constrained
  // composition; jobs of the same task may overlap when D > T, which the
  // EDF engine handles naturally).
  for (const auto& assigned : result.shared_assignment) {
    std::vector<EdfTaskStream> streams;
    streams.reserve(assigned.size());
    for (TaskId t : assigned) {
      const SporadicTask seq = system[t].to_sequential();
      Rng stream_rng = rng.split();
      streams.push_back(EdfTaskStream{generate_sequential_releases(
          seq.wcet, seq.deadline, seq.period, config, stream_rng)});
    }
    SimStats s = simulate_edf_uniproc(streams, config);
    report.total.merge(s);
    report.shared_stats.push_back(std::move(s));
  }
  return report;
}

}  // namespace fedcons
