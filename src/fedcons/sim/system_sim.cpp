#include "fedcons/sim/system_sim.h"

#include "fedcons/sim/fault_injection.h"
#include "fedcons/sim/release_generator.h"
#include "fedcons/util/check.h"
#include "fedcons/util/rng.h"

namespace fedcons {

namespace {

/// The fault spec targeting `id`, or nullptr. Matching is by display name so
/// plans survive serialize/parse round-trips (the shrinker re-parses systems).
const TaskFaultSpec* spec_for(const SimConfig& config, const TaskSystem& system,
                              TaskId id) {
  if (config.faults.empty()) return nullptr;
  return config.faults.find(task_display_name(system, id));
}

/// Build the EDF streams for one shared processor: generate each assigned
/// task's sequential releases, apply any fault spec as a post-pass, and
/// attach the admitted contract (vol/T/D) the supervisor enforces.
std::vector<EdfTaskStream> build_bin_streams(const TaskSystem& system,
                                             std::span<const TaskId> assigned,
                                             const SimConfig& config,
                                             Rng& rng) {
  std::vector<EdfTaskStream> streams;
  streams.reserve(assigned.size());
  for (TaskId t : assigned) {
    const SporadicTask seq = system[t].to_sequential();
    Rng stream_rng = rng.split();
    EdfTaskStream stream{generate_sequential_releases(
        seq.wcet, seq.deadline, seq.period, config, stream_rng)};
    if (const TaskFaultSpec* spec = spec_for(config, system, t)) {
      apply_sequential_fault(*spec, config.faults.seed, seq.wcet,
                             faulted_volume(system[t], *spec), seq.deadline,
                             stream.jobs);
    }
    stream.budget = seq.wcet;
    stream.min_separation = seq.period;
    stream.rel_deadline = seq.deadline;
    streams.push_back(std::move(stream));
  }
  return streams;
}

}  // namespace

SystemSimReport simulate_system(const TaskSystem& system,
                                const FedconsResult& result,
                                const SimConfig& config,
                                ClusterDispatch dispatch) {
  FEDCONS_EXPECTS_MSG(result.success,
                      "cannot simulate a rejected allocation");
  SystemSimReport report;
  report.per_task.assign(system.size(), SimStats{});
  Rng rng(config.seed);

  // Dedicated clusters.
  for (const auto& cluster : result.clusters) {
    const DagTask& task = system[cluster.task];
    Rng stream = rng.split();
    auto releases = generate_releases(task, config, stream);
    if (const TaskFaultSpec* spec = spec_for(config, system, cluster.task)) {
      apply_dag_fault(*spec, config.faults.seed, releases);
    }
    SimStats s = simulate_cluster(task, cluster.sigma, releases, config,
                                  dispatch);
    report.total.merge(s);
    report.per_task[cluster.task].merge(s);
    report.cluster_stats.push_back(std::move(s));
  }

  // Shared processors under preemptive EDF.
  for (const auto& assigned : result.shared_assignment) {
    auto streams = build_bin_streams(system, assigned, config, rng);
    FpSimReport det = simulate_edf_uniproc_detailed(streams, config);
    for (std::size_t k = 0; k < assigned.size(); ++k) {
      report.per_task[assigned[k]].merge(det.per_stream[k]);
    }
    report.total.merge(det.stats);
    report.shared_stats.push_back(std::move(det.stats));
  }
  return report;
}

SystemSimReport simulate_arbitrary_system(
    const TaskSystem& system, const ArbitraryFederatedResult& result,
    const SimConfig& config) {
  FEDCONS_EXPECTS_MSG(result.success,
                      "cannot simulate a rejected allocation");
  SystemSimReport report;
  report.per_task.assign(system.size(), SimStats{});
  Rng rng(config.seed);

  // Pipelined clusters (k == 1 degenerates to plain template replay).
  // Injection applies; slot enforcement does not (the pipelined replay keeps
  // σ reservations via its watermark, so an overrun shows up as lateness).
  for (const auto& cluster : result.clusters) {
    const DagTask& task = system[cluster.task];
    Rng stream = rng.split();
    auto releases = generate_releases(task, config, stream);
    if (const TaskFaultSpec* spec = spec_for(config, system, cluster.task)) {
      apply_dag_fault(*spec, config.faults.seed, releases);
    }
    SimStats s = simulate_pipelined_cluster(task, cluster.sigma,
                                            cluster.instances, releases,
                                            config);
    report.total.merge(s);
    report.per_task[cluster.task].merge(s);
    report.cluster_stats.push_back(std::move(s));
  }

  // Shared processors under preemptive EDF (identical to the constrained
  // composition; jobs of the same task may overlap when D > T, which the
  // EDF engine handles naturally).
  for (const auto& assigned : result.shared_assignment) {
    auto streams = build_bin_streams(system, assigned, config, rng);
    FpSimReport det = simulate_edf_uniproc_detailed(streams, config);
    for (std::size_t k = 0; k < assigned.size(); ++k) {
      report.per_task[assigned[k]].merge(det.per_stream[k]);
    }
    report.total.merge(det.stats);
    report.shared_stats.push_back(std::move(det.stats));
  }
  return report;
}

}  // namespace fedcons
