#include "fedcons/sim/trace.h"

#include <algorithm>
#include <map>

#include "fedcons/util/check.h"

namespace fedcons {

void ExecutionTrace::add(int processor, std::uint64_t job_uid, Time start,
                         Time end) {
  FEDCONS_EXPECTS(processor >= 0);
  FEDCONS_EXPECTS_MSG(end > start, "empty or inverted trace segment");
  segments_.push_back(TraceSegment{processor, job_uid, start, end});
}

Time ExecutionTrace::total_busy() const {
  Time sum = 0;
  for (const auto& s : segments_) sum = checked_add(sum, s.end - s.start);
  return sum;
}

Time ExecutionTrace::busy_on(int processor) const {
  Time sum = 0;
  for (const auto& s : segments_) {
    if (s.processor == processor) sum = checked_add(sum, s.end - s.start);
  }
  return sum;
}

std::optional<std::string> ExecutionTrace::first_violation(
    const std::map<std::uint64_t, Time>& releases) const {
  // Release constraint first, in insertion order. Only jobs present in the
  // map are constrained.
  for (const auto& s : segments_) {
    const auto it = releases.find(s.job_uid);
    if (it == releases.end()) continue;
    if (s.start < it->second) {
      return "job " + std::to_string(s.job_uid) + " segment [" +
             std::to_string(s.start) + ", " + std::to_string(s.end) +
             ") starts before its release at " + std::to_string(it->second);
    }
  }
  // Group by processor, sort by start, scan for overlap.
  std::map<int, std::vector<const TraceSegment*>> by_proc;
  for (const auto& s : segments_) by_proc[s.processor].push_back(&s);
  for (auto& [proc, segs] : by_proc) {
    std::sort(segs.begin(), segs.end(),
              [](const TraceSegment* a, const TraceSegment* b) {
                if (a->start != b->start) return a->start < b->start;
                return a->end < b->end;
              });
    for (std::size_t i = 1; i < segs.size(); ++i) {
      if (segs[i - 1]->end > segs[i]->start) {
        return "processor " + std::to_string(proc) + ": job " +
               std::to_string(segs[i - 1]->job_uid) + " [" +
               std::to_string(segs[i - 1]->start) + ", " +
               std::to_string(segs[i - 1]->end) + ") overlaps job " +
               std::to_string(segs[i]->job_uid) + " [" +
               std::to_string(segs[i]->start) + ", " +
               std::to_string(segs[i]->end) + ")";
      }
    }
  }
  return std::nullopt;
}

Time ExecutionTrace::first_start(std::uint64_t job_uid) const {
  Time best = kTimeInfinity;
  for (const auto& s : segments_) {
    if (s.job_uid == job_uid) best = std::min(best, s.start);
  }
  return best;
}

Time ExecutionTrace::last_end(std::uint64_t job_uid) const {
  Time best = 0;
  for (const auto& s : segments_) {
    if (s.job_uid == job_uid) best = std::max(best, s.end);
  }
  return best;
}

Time ExecutionTrace::executed(std::uint64_t job_uid) const {
  Time sum = 0;
  for (const auto& s : segments_) {
    if (s.job_uid == job_uid) sum = checked_add(sum, s.end - s.start);
  }
  return sum;
}

}  // namespace fedcons
