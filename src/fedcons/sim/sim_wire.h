// Stable wire names for the sim-config enums, used by the pinned-artifact
// writers (conform/artifact.cpp, fault/fault_artifact.cpp). Lives in the sim
// module — not with the generic JSON helpers in util — because the names are
// part of the simulator's configuration surface, not of the JSON dialect.
#pragma once

#include <string>

#include "fedcons/sim/sim_config.h"

namespace fedcons {

/// Stable wire names ("periodic"/"sporadic", "wcet"/"uniform"), and their
/// inverses. Parsers throw ParseError on an unknown name.
[[nodiscard]] const char* release_model_name(ReleaseModel m) noexcept;
[[nodiscard]] const char* exec_model_name(ExecModel m) noexcept;
[[nodiscard]] ReleaseModel parse_release_model(const std::string& name);
[[nodiscard]] ExecModel parse_exec_model(const std::string& name);

}  // namespace fedcons
