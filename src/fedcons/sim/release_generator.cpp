#include "fedcons/sim/release_generator.h"

#include <algorithm>
#include <cmath>

#include "fedcons/util/check.h"

namespace fedcons {

namespace {

Time draw_exec(Rng& rng, const SimConfig& config, Time wcet) {
  switch (config.exec) {
    case ExecModel::kAlwaysWcet:
      return wcet;
    case ExecModel::kUniform: {
      const Time lo = std::max<Time>(
          1, static_cast<Time>(std::ceil(config.exec_lo *
                                         static_cast<double>(wcet))));
      return rng.uniform_int(std::min(lo, wcet), wcet);
    }
  }
  return wcet;
}

Time next_release(Rng& rng, const SimConfig& config, Time current,
                  Time period) {
  Time gap = period;
  if (config.release == ReleaseModel::kSporadic) {
    const Time jitter_max = static_cast<Time>(
        std::floor(config.jitter_frac * static_cast<double>(period)));
    if (jitter_max > 0) gap = checked_add(gap, rng.uniform_int(0, jitter_max));
  }
  return checked_add(current, gap);
}

}  // namespace

std::vector<DagJobRelease> generate_releases(const DagTask& task,
                                             const SimConfig& config,
                                             Rng& rng) {
  FEDCONS_EXPECTS(config.horizon >= 1);
  FEDCONS_EXPECTS(config.jitter_frac >= 0.0);
  FEDCONS_EXPECTS(config.exec_lo > 0.0 && config.exec_lo <= 1.0);
  std::vector<DagJobRelease> out;
  const std::size_t n = task.graph().num_vertices();
  for (Time r = 0; checked_add(r, task.deadline()) <= config.horizon;
       r = next_release(rng, config, r, task.period())) {
    DagJobRelease job;
    job.release = r;
    job.exec_times.resize(n);
    for (std::size_t v = 0; v < n; ++v) {
      job.exec_times[v] =
          draw_exec(rng, config, task.graph().wcet(static_cast<VertexId>(v)));
    }
    out.push_back(std::move(job));
  }
  return out;
}

std::vector<JobRelease> generate_sequential_releases(Time wcet, Time deadline,
                                                     Time period,
                                                     const SimConfig& config,
                                                     Rng& rng) {
  FEDCONS_EXPECTS(wcet >= 1 && deadline >= 1 && period >= 1);
  std::vector<JobRelease> out;
  for (Time r = 0; checked_add(r, deadline) <= config.horizon;
       r = next_release(rng, config, r, period)) {
    JobRelease job;
    job.release = r;
    job.exec_time = draw_exec(rng, config, wcet);
    job.abs_deadline = r + deadline;
    out.push_back(job);
  }
  return out;
}

}  // namespace fedcons
