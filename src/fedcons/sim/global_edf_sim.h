// Global preemptive EDF simulation of DAG jobs on m identical processors.
//
// The empirical side of the global-approach baseline (see
// baselines/global_edf.h): vertices of released dag-jobs become ready when
// their predecessors complete; at every event the m earliest-deadline ready
// vertices execute (full migration + preemption — the canonical global EDF
// for DAG tasks). A vertex inherits the absolute deadline of its dag-job.
//
// Surviving a simulated pattern is NOT a schedulability proof (synchronous
// periodic arrival is not necessarily the worst case for global
// multiprocessor scheduling) — this simulator provides the optimistic
// bracket in experiment E3 and the demand-stress validation in E6.
#pragma once

#include <vector>

#include "fedcons/core/task_system.h"
#include "fedcons/sim/release_generator.h"
#include "fedcons/sim/sim_config.h"
#include "fedcons/sim/trace.h"

namespace fedcons {

/// Simulate global EDF of all tasks' releases on m processors.
/// releases[i] are the dag-job releases of system task i (size must match).
/// Precondition: m >= 1.
/// `trace`, when non-null, records every run-chunk (job_uid = global vertex-
/// instance index; processor = slot position in the dispatched set — valid
/// because global EDF permits free migration).
[[nodiscard]] SimStats simulate_global_edf(
    const TaskSystem& system,
    std::span<const std::vector<DagJobRelease>> releases, int m,
    const SimConfig& config, ExecutionTrace* trace = nullptr);

}  // namespace fedcons
