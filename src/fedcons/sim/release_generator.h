// Release-time and execution-time sequence generation for simulations.
#pragma once

#include <vector>

#include "fedcons/core/dag_task.h"
#include "fedcons/sim/sim_config.h"
#include "fedcons/util/rng.h"

namespace fedcons {

/// One dag-job instance: a release instant plus the actual execution time of
/// every vertex (indexed by VertexId).
struct DagJobRelease {
  Time release = 0;
  std::vector<Time> exec_times;
};

/// Generate all dag-job releases of `task` whose absolute deadline falls at
/// or before config.horizon, honoring the configured release and execution
/// models. The first release is at time 0 (the synchronous pattern — the
/// natural stress case). Deterministic in (task, config, rng state).
[[nodiscard]] std::vector<DagJobRelease> generate_releases(
    const DagTask& task, const SimConfig& config, Rng& rng);

/// Sequential-job flavour used by the EDF simulator: one execution time per
/// release (the task's whole volume when simulating partitioned tasks).
struct JobRelease {
  Time release = 0;
  Time exec_time = 0;
  Time abs_deadline = 0;
};

/// Generate sequential-job releases for a (C, D, T) view of a task.
[[nodiscard]] std::vector<JobRelease> generate_sequential_releases(
    Time wcet, Time deadline, Time period, const SimConfig& config, Rng& rng);

}  // namespace fedcons
