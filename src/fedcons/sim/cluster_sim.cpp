#include "fedcons/sim/cluster_sim.h"

#include <algorithm>

#include "fedcons/listsched/list_scheduler.h"
#include "fedcons/util/check.h"
#include "fedcons/util/perf_counters.h"

namespace fedcons {

const char* to_string(ClusterDispatch d) noexcept {
  switch (d) {
    case ClusterDispatch::kTemplateReplay: return "template-replay";
    case ClusterDispatch::kOnlineRerun: return "online-rerun";
  }
  return "?";
}

SimStats simulate_cluster(const DagTask& task, const TemplateSchedule& sigma,
                          std::span<const DagJobRelease> releases,
                          const SimConfig& config, ClusterDispatch dispatch,
                          ListPolicy policy, ExecutionTrace* trace) {
  FEDCONS_EXPECTS_MSG(sigma.validate_against(task.graph()),
                      "template schedule does not match the task graph");
  SimStats stats;
  Time executed = 0;
  const std::uint64_t verts = task.graph().num_vertices();
  std::uint64_t job_index = 0;
  // Slot enforcement is a template-replay feature: the dispatcher owns the σ
  // table, so it can cut a vertex off at its reserved slot end. kOnlineRerun
  // has no slots to enforce (that is precisely its anomaly).
  const bool enforce = config.supervision == SupervisionMode::kEnforce &&
                       dispatch == ClusterDispatch::kTemplateReplay;
  for (const auto& job : releases) {
    FEDCONS_EXPECTS(job.exec_times.size() == task.graph().num_vertices());
    Time completion = job.release;
    if (dispatch == ClusterDispatch::kTemplateReplay) {
      // Lookup-table dispatch: start times are fixed by σ; early completion
      // just idles the processor (paper, footnote 2). Under enforcement an
      // overrunning vertex is clamped at its σ slot (the overrun is counted,
      // the excess work dropped), so replay can never leave the template.
      for (const auto& slot : sigma.jobs()) {
        const Time start = checked_add(job.release, slot.start);
        Time exec = job.exec_times[slot.vertex];
        if (enforce) {
          const Time cap = slot.finish - slot.start;
          if (exec > cap) {
            exec = cap;
            ++stats.slot_overruns;
            ++perf_counters().fault_enforcements;
          }
        }
        const Time finish = checked_add(start, exec);
        completion = std::max(completion, finish);
        executed = checked_add(executed, exec);
        if (trace != nullptr) {
          trace->add(slot.processor, job_index * verts + slot.vertex, start,
                     finish);
        }
      }
    } else {
      // Online re-run of LS with the actual execution times — anomalous.
      TemplateSchedule online = list_schedule_with_exec_times(
          task.graph(), sigma.num_processors(), job.exec_times, policy);
      completion = checked_add(job.release, online.makespan());
      if (trace != nullptr) {
        for (const auto& slot : online.jobs()) {
          trace->add(slot.processor, job_index * verts + slot.vertex,
                     checked_add(job.release, slot.start),
                     checked_add(job.release, slot.finish));
        }
      }
    }
    ++job_index;
    if (dispatch != ClusterDispatch::kTemplateReplay) {
      for (Time e : job.exec_times) executed = checked_add(executed, e);
    }

    const Time abs_deadline = checked_add(job.release, task.deadline());
    ++stats.jobs_released;
    if (completion > abs_deadline) {
      ++stats.deadline_misses;
      stats.max_lateness =
          std::max(stats.max_lateness, completion - abs_deadline);
    }
    stats.max_response_time =
        std::max(stats.max_response_time, completion - job.release);
  }
  // With no releases and horizon == 0 the span is 0; report idle (0.0)
  // rather than 0/0.
  const Time span =
      std::max(config.horizon,
               checked_add(config.horizon, stats.max_lateness));
  stats.busy_fraction =
      span > 0 ? static_cast<double>(executed) /
                     (static_cast<double>(sigma.num_processors()) *
                      static_cast<double>(span))
               : 0.0;
  return stats;
}

SimStats simulate_pipelined_cluster(const DagTask& task,
                                    const TemplateSchedule& sigma,
                                    int instances,
                                    std::span<const DagJobRelease> releases,
                                    const SimConfig& config,
                                    ExecutionTrace* trace) {
  FEDCONS_EXPECTS(instances >= 1);
  FEDCONS_EXPECTS_MSG(sigma.validate_against(task.graph()),
                      "template schedule does not match the task graph");
  SimStats stats;
  Time executed = 0;
  // Per-(instance, processor) time at which the slot last freed; template
  // slots are replayed in σ order within a job, and jobs hit an instance in
  // release order, so a monotone per-processor watermark detects overlap.
  const int mu = sigma.num_processors();
  std::vector<Time> free_at(static_cast<std::size_t>(instances * mu), 0);

  // Slots must be visited in start order for the watermark check (jobs() is
  // sorted by vertex id, not by time).
  std::vector<const ScheduledJob*> ordered;
  ordered.reserve(sigma.jobs().size());
  for (const auto& slot : sigma.jobs()) ordered.push_back(&slot);
  std::sort(ordered.begin(), ordered.end(),
            [](const ScheduledJob* a, const ScheduledJob* b) {
              if (a->start != b->start) return a->start < b->start;
              return a->processor < b->processor;
            });

  std::size_t job_index = 0;
  for (const auto& job : releases) {
    FEDCONS_EXPECTS(job.exec_times.size() == task.graph().num_vertices());
    const int instance = static_cast<int>(job_index % static_cast<std::size_t>(instances));
    ++job_index;
    Time completion = job.release;
    for (const ScheduledJob* slot_ptr : ordered) {
      const ScheduledJob& slot = *slot_ptr;
      const Time start = checked_add(job.release, slot.start);
      const Time finish = checked_add(start, job.exec_times[slot.vertex]);
      auto& watermark =
          free_at[static_cast<std::size_t>(instance * mu + slot.processor)];
      FEDCONS_EXPECTS_MSG(start >= watermark,
                          "pipelined instances overlapped on a processor — "
                          "instance count too small");
      watermark = checked_add(job.release, slot.finish);  // σ slot reserved
      completion = std::max(completion, finish);
      executed = checked_add(executed, finish - start);
      if (trace != nullptr) {
        trace->add(instance * mu + slot.processor,
                   (job_index - 1) * task.graph().num_vertices() + slot.vertex,
                   start, finish);
      }
    }
    const Time abs_deadline = checked_add(job.release, task.deadline());
    ++stats.jobs_released;
    if (completion > abs_deadline) {
      ++stats.deadline_misses;
      stats.max_lateness =
          std::max(stats.max_lateness, completion - abs_deadline);
    }
    stats.max_response_time =
        std::max(stats.max_response_time, completion - job.release);
  }
  const Time span =
      std::max(config.horizon,
               checked_add(config.horizon, stats.max_lateness));
  stats.busy_fraction =
      span > 0 ? static_cast<double>(executed) /
                     (static_cast<double>(instances) *
                      static_cast<double>(mu) * static_cast<double>(span))
               : 0.0;
  return stats;
}

}  // namespace fedcons
