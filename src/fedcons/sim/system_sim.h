// Whole-platform simulation of a FEDCONS allocation (experiment E6).
//
// Composes the per-subsystem simulators according to the allocation FEDCONS
// produced: every dedicated cluster replays its template schedule σ_i (or,
// for the anomaly demonstration, re-runs LS online), and every shared
// processor runs preemptive EDF over its partitioned low-density tasks.
// Because federated scheduling grants clusters exclusive processors and
// pins partitioned tasks, the subsystems are independent by construction —
// the composition is exact, not an approximation.
#pragma once

#include "fedcons/core/task_system.h"
#include "fedcons/federated/arbitrary.h"
#include "fedcons/federated/fedcons_algorithm.h"
#include "fedcons/sim/cluster_sim.h"
#include "fedcons/sim/edf_sim.h"

namespace fedcons {

/// Per-subsystem breakdown of a full-system run.
struct SystemSimReport {
  SimStats total;                        ///< aggregated over all subsystems
  std::vector<SimStats> cluster_stats;   ///< one per dedicated cluster
  std::vector<SimStats> shared_stats;    ///< one per shared processor
};

/// Simulate the whole platform for the given accepted allocation.
/// Precondition: result.success.
[[nodiscard]] SystemSimReport simulate_system(
    const TaskSystem& system, const FedconsResult& result,
    const SimConfig& config,
    ClusterDispatch dispatch = ClusterDispatch::kTemplateReplay);

/// Simulate an accepted ARBITRARY-deadline allocation (federated/arbitrary.h):
/// pipelined clusters replay σ round-robin across their instances (with
/// processor-overlap validation), shared processors run preemptive EDF.
/// Precondition: result.success.
[[nodiscard]] SystemSimReport simulate_arbitrary_system(
    const TaskSystem& system, const ArbitraryFederatedResult& result,
    const SimConfig& config);

}  // namespace fedcons
