// Whole-platform simulation of a FEDCONS allocation (experiment E6).
//
// Composes the per-subsystem simulators according to the allocation FEDCONS
// produced: every dedicated cluster replays its template schedule σ_i (or,
// for the anomaly demonstration, re-runs LS online), and every shared
// processor runs preemptive EDF over its partitioned low-density tasks.
// Because federated scheduling grants clusters exclusive processors and
// pins partitioned tasks, the subsystems are independent by construction —
// the composition is exact, not an approximation.
#pragma once

#include "fedcons/core/task_system.h"
#include "fedcons/federated/arbitrary.h"
#include "fedcons/federated/fedcons_algorithm.h"
#include "fedcons/sim/cluster_sim.h"
#include "fedcons/sim/edf_sim.h"

namespace fedcons {

/// Per-subsystem breakdown of a full-system run.
struct SystemSimReport {
  SimStats total;                        ///< aggregated over all subsystems
  std::vector<SimStats> cluster_stats;   ///< one per dedicated cluster
  std::vector<SimStats> shared_stats;    ///< one per shared processor
  /// Indexed by TaskId: each task's own releases/misses/supervision events.
  /// This is the attribution the isolation checker relies on — a cluster
  /// task's entry is its cluster run, an EDF task's entry is its stream's
  /// slice of its bin (busy_fraction stays 0: it is a processor quantity).
  std::vector<SimStats> per_task;
};

/// Simulate the whole platform for the given accepted allocation.
/// Precondition: result.success.
///
/// Fault injection: config.faults specs are matched against task display
/// names (core/task_system.h) and applied as a post-pass over the generated
/// releases (sim/fault_injection.h); an empty plan changes nothing, byte for
/// byte. With config.supervision == kEnforce, EDF streams carry their
/// admitted contract (budget = vol_i, min_separation = T_i, rel_deadline =
/// D_i) and template replay clamps overrunning vertices at their σ slots.
[[nodiscard]] SystemSimReport simulate_system(
    const TaskSystem& system, const FedconsResult& result,
    const SimConfig& config,
    ClusterDispatch dispatch = ClusterDispatch::kTemplateReplay);

/// Simulate an accepted ARBITRARY-deadline allocation (federated/arbitrary.h):
/// pipelined clusters replay σ round-robin across their instances (with
/// processor-overlap validation), shared processors run preemptive EDF.
/// Precondition: result.success.
[[nodiscard]] SystemSimReport simulate_arbitrary_system(
    const TaskSystem& system, const ArbitraryFederatedResult& result,
    const SimConfig& config);

}  // namespace fedcons
