#include "fedcons/sim/gantt.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "fedcons/util/check.h"

namespace fedcons {

namespace {

char glyph_for(std::uint64_t id) {
  constexpr const char* kGlyphs = "0123456789abcdefghijklmnopqrstuvwxyz";
  return kGlyphs[id % 36];
}

/// Shared renderer over (processor, id, start, end) tuples.
struct Cell {
  int processor;
  std::uint64_t id;
  Time start;
  Time end;
};

std::string render_cells(const std::vector<Cell>& cells, int num_processors,
                         GanttOptions options) {
  if (cells.empty() && num_processors <= 0) return "(empty schedule)\n";
  Time window_end = options.end;
  int max_proc = num_processors - 1;
  for (const auto& c : cells) {
    if (options.end < 0) window_end = std::max(window_end, c.end);
    max_proc = std::max(max_proc, c.processor);
  }
  if (window_end <= options.start) window_end = options.start + 1;
  FEDCONS_EXPECTS(options.max_width >= 10);

  const Time span = window_end - options.start;
  const Time ticks_per_char =
      std::max<Time>(1, ceil_div(span, options.max_width));
  const int cols = static_cast<int>(ceil_div(span, ticks_per_char));

  // For each cell pick the job owning the majority of it.
  std::ostringstream os;
  for (int p = 0; p <= max_proc; ++p) {
    os << "P" << p << (p < 10 ? " " : "") << "|";
    for (int col = 0; col < cols; ++col) {
      const Time c0 = options.start + col * ticks_per_char;
      const Time c1 = std::min<Time>(c0 + ticks_per_char, window_end);
      Time best_cover = 0;
      std::uint64_t best_id = 0;
      for (const auto& c : cells) {
        if (c.processor != p) continue;
        const Time overlap =
            std::min(c.end, c1) - std::max(c.start, c0);
        if (overlap > best_cover) {
          best_cover = overlap;
          best_id = c.id;
        }
      }
      os << (best_cover > 0 ? glyph_for(best_id) : '-');
    }
    os << "|\n";
  }
  os << "   t=" << options.start << ".." << window_end << " ("
     << ticks_per_char << " tick" << (ticks_per_char == 1 ? "" : "s")
     << "/char; glyphs are job ids mod 36)\n";
  return os.str();
}

}  // namespace

std::string render_gantt(const TemplateSchedule& schedule,
                         const GanttOptions& options) {
  std::vector<Cell> cells;
  cells.reserve(schedule.num_jobs());
  for (const auto& slot : schedule.jobs()) {
    cells.push_back(Cell{slot.processor, slot.vertex, slot.start,
                         slot.finish});
  }
  GanttOptions opt = options;
  if (opt.end < 0) opt.end = schedule.makespan();
  return render_cells(cells, schedule.num_processors(), opt);
}

std::string render_gantt(const ExecutionTrace& trace, int num_processors,
                         const GanttOptions& options) {
  std::vector<Cell> cells;
  cells.reserve(trace.size());
  for (const auto& s : trace.segments()) {
    cells.push_back(Cell{s.processor, s.job_uid, s.start, s.end});
  }
  return render_cells(cells, num_processors, options);
}

}  // namespace fedcons
