// Preemptive uniprocessor EDF simulation for the shared-processor pool.
//
// Each shared processor produced by PARTITION runs preemptive EDF over the
// sequential views of its assigned low-density tasks (paper, Section IV).
// The simulator is event-driven over integer time: between consecutive
// events (job releases / completions) the pending job with the earliest
// absolute deadline executes; ties break deterministically by task index
// then release time. Jobs past their deadlines keep executing (lateness is
// recorded) — the standard accounting for miss statistics.
#pragma once

#include <span>
#include <vector>

#include "fedcons/sim/release_generator.h"
#include "fedcons/sim/sim_config.h"
#include "fedcons/sim/trace.h"

namespace fedcons {

/// One task's stream of jobs for the EDF simulator.
///
/// The supervision fields describe the contract the stream's task was
/// admitted under; they are consulted ONLY when the SimConfig carries
/// SupervisionMode::kEnforce (all zero = unsupervised stream):
///  * budget — per-job execution cap (the reserved vol_i). An overrunning
///    job is throttled: it completes (for accounting) having executed only
///    its budget; the excess is dropped, never billed to neighbours.
///  * min_separation — sporadic minimum inter-arrival (T_i). A job arriving
///    early is DEFERRED to prev_effective + T. Its SCHEDULING deadline moves
///    to effective_release + rel_deadline (CBS-style postponement: the
///    enforced stream is indistinguishable from a legal sporadic task, so
///    the bin's DBF* admission certificate still covers every neighbour)
///    while its ACCOUNTING deadline stays the raw release + D — any
///    resulting miss is attributed to the faulting task itself.
///  * rel_deadline — relative deadline (D_i) used for the postponement.
struct EdfTaskStream {
  std::vector<JobRelease> jobs;  ///< sorted by release (generator order)
  Time budget = 0;          ///< per-job execution cap under enforcement
  Time min_separation = 0;  ///< sporadic arrival guard under enforcement
  Time rel_deadline = 0;    ///< D for deferred-job deadline postponement
};

/// Simulate preemptive EDF of the given streams on one processor until all
/// released jobs complete (or horizon work is exhausted).
/// `trace`, when non-null, records every executed run-chunk on processor 0
/// (job_uid = (stream << 32) | release-index) for post-hoc validation.
/// Packing contract: the stream index and every per-stream release index must
/// each fit in 32 bits (precondition-checked; indices at or beyond 2^32 would
/// silently alias uids). With >= 1-tick jobs that allows horizons up to
/// ~4·10^9 ticks per stream — far beyond any configured simulation.
[[nodiscard]] SimStats simulate_edf_uniproc(
    std::span<const EdfTaskStream> streams, const SimConfig& config,
    ExecutionTrace* trace = nullptr);

/// Simulate preemptive FIXED-PRIORITY scheduling on one processor: stream
/// index IS the priority (0 = highest). Used to validate the RTA analysis
/// (analysis/rta.h) and the partitioned-DM baseline: under synchronous
/// periodic WCET releases the observed worst response of each task equals
/// its RTA fixed point (the critical-instant argument).
[[nodiscard]] SimStats simulate_fp_uniproc(
    std::span<const EdfTaskStream> streams, const SimConfig& config,
    ExecutionTrace* trace = nullptr);

/// Per-stream breakdown of a uniprocessor simulation run (same semantics as
/// the aggregate entry points, richer output). per_stream[s] carries stream
/// s's own releases/misses/lateness/supervision events (busy_fraction is a
/// whole-processor quantity and stays 0 in per-stream entries) — the
/// attribution the isolation checker needs to tell the faulting task's
/// misses from a neighbour's.
struct FpSimReport {
  SimStats stats;
  std::vector<Time> max_response_per_stream;
  std::vector<SimStats> per_stream;
};

[[nodiscard]] FpSimReport simulate_fp_uniproc_detailed(
    std::span<const EdfTaskStream> streams, const SimConfig& config,
    ExecutionTrace* trace = nullptr);

/// EDF flavour of the detailed report (used by the full-system composition
/// to attribute misses per task).
[[nodiscard]] FpSimReport simulate_edf_uniproc_detailed(
    std::span<const EdfTaskStream> streams, const SimConfig& config,
    ExecutionTrace* trace = nullptr);

}  // namespace fedcons
