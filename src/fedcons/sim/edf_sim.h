// Preemptive uniprocessor EDF simulation for the shared-processor pool.
//
// Each shared processor produced by PARTITION runs preemptive EDF over the
// sequential views of its assigned low-density tasks (paper, Section IV).
// The simulator is event-driven over integer time: between consecutive
// events (job releases / completions) the pending job with the earliest
// absolute deadline executes; ties break deterministically by task index
// then release time. Jobs past their deadlines keep executing (lateness is
// recorded) — the standard accounting for miss statistics.
#pragma once

#include <span>
#include <vector>

#include "fedcons/sim/release_generator.h"
#include "fedcons/sim/sim_config.h"
#include "fedcons/sim/trace.h"

namespace fedcons {

/// One task's stream of jobs for the EDF simulator.
struct EdfTaskStream {
  std::vector<JobRelease> jobs;  ///< sorted by release (generator order)
};

/// Simulate preemptive EDF of the given streams on one processor until all
/// released jobs complete (or horizon work is exhausted).
/// `trace`, when non-null, records every executed run-chunk on processor 0
/// (job_uid = (stream << 32) | release-index) for post-hoc validation.
/// Packing contract: the stream index and every per-stream release index must
/// each fit in 32 bits (precondition-checked; indices at or beyond 2^32 would
/// silently alias uids). With >= 1-tick jobs that allows horizons up to
/// ~4·10^9 ticks per stream — far beyond any configured simulation.
[[nodiscard]] SimStats simulate_edf_uniproc(
    std::span<const EdfTaskStream> streams, const SimConfig& config,
    ExecutionTrace* trace = nullptr);

/// Simulate preemptive FIXED-PRIORITY scheduling on one processor: stream
/// index IS the priority (0 = highest). Used to validate the RTA analysis
/// (analysis/rta.h) and the partitioned-DM baseline: under synchronous
/// periodic WCET releases the observed worst response of each task equals
/// its RTA fixed point (the critical-instant argument).
[[nodiscard]] SimStats simulate_fp_uniproc(
    std::span<const EdfTaskStream> streams, const SimConfig& config,
    ExecutionTrace* trace = nullptr);

/// Per-stream maximum observed response times from an FP simulation run
/// (same semantics as simulate_fp_uniproc, richer output).
struct FpSimReport {
  SimStats stats;
  std::vector<Time> max_response_per_stream;
};

[[nodiscard]] FpSimReport simulate_fp_uniproc_detailed(
    std::span<const EdfTaskStream> streams, const SimConfig& config,
    ExecutionTrace* trace = nullptr);

}  // namespace fedcons
