// Execution traces and structural validation for the simulators.
//
// Every simulator can optionally record the exact processor-time segments it
// executes. The validator then checks the two invariants any legal
// multiprocessor schedule must satisfy — no two segments overlap on one
// processor, and no job runs before its release — turning "the simulator
// says zero misses" into an auditable claim about a concrete schedule
// rather than trust in the simulator's bookkeeping. Integration tests run
// every engine under validation.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "fedcons/util/time_types.h"

namespace fedcons {

/// One contiguous execution of (part of) a job on one processor.
struct TraceSegment {
  int processor = 0;
  std::uint64_t job_uid = 0;  ///< caller-chosen job identity
  Time start = 0;
  Time end = 0;  ///< exclusive; end > start
};

/// Append-only trace with post-hoc validation.
class ExecutionTrace {
 public:
  /// Record a segment. Precondition: end > start, processor >= 0.
  void add(int processor, std::uint64_t job_uid, Time start, Time end);

  [[nodiscard]] const std::vector<TraceSegment>& segments() const noexcept {
    return segments_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return segments_.size(); }
  [[nodiscard]] bool empty() const noexcept { return segments_.empty(); }

  /// Total executed processor·time.
  [[nodiscard]] Time total_busy() const;

  /// Busy time of one processor.
  [[nodiscard]] Time busy_on(int processor) const;

  /// First violation found, or nullopt when the trace is a legal schedule:
  ///  * no two segments overlap on the same processor — back-to-back
  ///    segments (end == next start) are legal, including for the same job;
  ///  * with `releases` mapping job_uid → release time, no segment of a
  ///    mapped job starts before its release. Jobs absent from the map are
  ///    unconstrained (callers may validate a subset of jobs).
  /// Violations are reported in a fixed order: release violations in
  /// insertion order first, then per-processor overlaps in (processor,
  /// start) order.
  [[nodiscard]] std::optional<std::string> first_violation(
      const std::map<std::uint64_t, Time>& releases = {}) const;

  /// Back-compat alias for first_violation with no release constraints.
  [[nodiscard]] std::optional<std::string> validate() const {
    return first_violation();
  }

  /// Earliest start time of the given job's segments (kTimeInfinity if the
  /// job never ran).
  [[nodiscard]] Time first_start(std::uint64_t job_uid) const;

  /// Latest end time of the given job's segments (0 if never ran).
  [[nodiscard]] Time last_end(std::uint64_t job_uid) const;

  /// Total execution received by a job.
  [[nodiscard]] Time executed(std::uint64_t job_uid) const;

 private:
  std::vector<TraceSegment> segments_;
};

}  // namespace fedcons
