// Leveled diagnostic logging to stderr.
//
// The analysis library itself never logs (pure functions); logging is used by
// the experiment harness and examples for progress reporting. Thread-safe:
// the level is a process-wide atomic, and each message is composed off-line
// and written to stderr as a single line under a mutex, so concurrent
// BatchRunner workers never interleave characters within a line (pinned by
// tests/log_test.cpp). Messages from different threads may order arbitrarily.
#pragma once

#include <sstream>
#include <string>

namespace fedcons {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide minimum level; messages below it are discarded.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& msg);
}

}  // namespace fedcons

#define FEDCONS_LOG(level, expr)                                          \
  do {                                                                    \
    if (static_cast<int>(level) >=                                        \
        static_cast<int>(::fedcons::log_level())) {                       \
      std::ostringstream fedcons_log_ss;                                  \
      fedcons_log_ss << expr;                                             \
      ::fedcons::detail::log_emit(level, fedcons_log_ss.str());           \
    }                                                                     \
  } while (0)

#define LOG_DEBUG(expr) FEDCONS_LOG(::fedcons::LogLevel::kDebug, expr)
#define LOG_INFO(expr) FEDCONS_LOG(::fedcons::LogLevel::kInfo, expr)
#define LOG_WARN(expr) FEDCONS_LOG(::fedcons::LogLevel::kWarn, expr)
#define LOG_ERROR(expr) FEDCONS_LOG(::fedcons::LogLevel::kError, expr)
