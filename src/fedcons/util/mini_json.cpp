#include "fedcons/util/mini_json.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace fedcons {

namespace {

/// Recursive-descent parser for the subset the writers emit: objects nested
/// at most one level, string and number values.
class MiniJsonParser {
 public:
  explicit MiniJsonParser(const std::string& text) : text_(text) {}

  std::map<std::string, std::string> parse() {
    std::map<std::string, std::string> out;
    parse_object("", out, /*depth=*/0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after document");
    return out;
  }

 private:
  void parse_object(const std::string& prefix,
                    std::map<std::string, std::string>& out, int depth) {
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return;
    }
    while (true) {
      skip_ws();
      const std::string key = prefix + parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      const char c = peek();
      if (c == '"') {
        out[key] = parse_string();
      } else if (c == '{') {
        if (depth >= 1) fail("objects nest at most one level");
        parse_object(key + ".", out, depth + 1);
      } else {
        out[key] = parse_number();
      }
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      c = text_[pos_++];
      switch (c) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          const std::string hex = text_.substr(pos_, 4);
          pos_ += 4;
          char* end = nullptr;
          const long code = std::strtol(hex.c_str(), &end, 16);
          if (end != hex.c_str() + 4 || code > 0x7f) {
            fail("unsupported \\u escape (ASCII only)");
          }
          out += static_cast<char>(code);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  std::string parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    return text_.substr(start, pos_ - start);
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  [[noreturn]] void fail(const std::string& message) const {
    int line = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') ++line;
    }
    throw ParseError(line, "artifact JSON: " + message);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::map<std::string, std::string> parse_mini_json(const std::string& text) {
  return MiniJsonParser(text).parse();
}

const std::string& require_field(
    const std::map<std::string, std::string>& fields, const std::string& key) {
  const auto it = fields.find(key);
  if (it == fields.end()) {
    throw ParseError(1, "artifact JSON: missing field \"" + key + "\"");
  }
  return it->second;
}

// Strict numeric conversions. strtoll with a null endptr and unchecked errno
// silently saturates on overflow (INT64_MAX) and yields 0 on garbage — the
// exact bug class PR 5 fixed for fault seeds. Corpus artifacts and the serve
// request decoder both come through here, so every failure must be loud.

std::int64_t mini_json_int(const std::string& raw) {
  if (raw.empty()) throw ParseError(1, "artifact JSON: empty integer field");
  // strtoll skips leading whitespace and accepts an explicit '+'; JSON
  // integers allow neither, so the token must start with a digit or '-'.
  if (!std::isdigit(static_cast<unsigned char>(raw[0])) && raw[0] != '-') {
    throw ParseError(1, "artifact JSON: not an integer: '" + raw + "'");
  }
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(raw.c_str(), &end, 10);
  if (end != raw.c_str() + raw.size() || end == raw.c_str()) {
    throw ParseError(1, "artifact JSON: not an integer: '" + raw + "'");
  }
  if (errno == ERANGE) {
    throw ParseError(1, "artifact JSON: integer out of range: '" + raw + "'");
  }
  return value;
}

std::uint64_t mini_json_uint(const std::string& raw) {
  // strtoull accepts "-5" and wraps it to 2^64-5; an unsigned field must be
  // plain digits.
  if (raw.empty() || !std::isdigit(static_cast<unsigned char>(raw[0]))) {
    throw ParseError(1, "artifact JSON: not an unsigned integer: '" + raw +
                            "'");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(raw.c_str(), &end, 10);
  if (end != raw.c_str() + raw.size()) {
    throw ParseError(1, "artifact JSON: not an unsigned integer: '" + raw +
                            "'");
  }
  if (errno == ERANGE) {
    throw ParseError(1, "artifact JSON: integer out of range: '" + raw + "'");
  }
  return value;
}

}  // namespace fedcons
