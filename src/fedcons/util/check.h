// Contract-checking macros for the fedcons library.
//
// Following the C++ Core Guidelines (I.6/I.8, "Prefer Expects()/Ensures() for
// expressing preconditions/postconditions"), API-boundary contract violations
// throw fedcons::ContractViolation so that callers (tests, experiment
// harnesses) can observe and recover from misuse deterministically.
#pragma once

#include <stdexcept>
#include <string>

namespace fedcons {

/// Thrown when a precondition, postcondition, or internal invariant of the
/// library is violated. Carries the failing expression and source location.
class ContractViolation : public std::logic_error {
 public:
  ContractViolation(const char* kind, const char* expr, const char* file,
                    int line, const std::string& msg = {})
      : std::logic_error(std::string(kind) + " failed: " + expr + " at " +
                         file + ":" + std::to_string(line) +
                         (msg.empty() ? "" : (" — " + msg))) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line,
                                       const std::string& msg = {}) {
  throw ContractViolation(kind, expr, file, line, msg);
}
}  // namespace detail

}  // namespace fedcons

/// Precondition check: validates caller-supplied arguments at API boundaries.
#define FEDCONS_EXPECTS(cond)                                              \
  do {                                                                     \
    if (!(cond))                                                           \
      ::fedcons::detail::contract_fail("precondition", #cond, __FILE__,    \
                                       __LINE__);                          \
  } while (0)

/// Precondition check with an explanatory message.
#define FEDCONS_EXPECTS_MSG(cond, msg)                                     \
  do {                                                                     \
    if (!(cond))                                                           \
      ::fedcons::detail::contract_fail("precondition", #cond, __FILE__,    \
                                       __LINE__, (msg));                   \
  } while (0)

/// Postcondition check: validates results the implementation promises.
#define FEDCONS_ENSURES(cond)                                              \
  do {                                                                     \
    if (!(cond))                                                           \
      ::fedcons::detail::contract_fail("postcondition", #cond, __FILE__,   \
                                       __LINE__);                          \
  } while (0)

/// Internal invariant check (never expected to fire; indicates a library bug).
#define FEDCONS_ASSERT(cond)                                               \
  do {                                                                     \
    if (!(cond))                                                           \
      ::fedcons::detail::contract_fail("invariant", #cond, __FILE__,       \
                                       __LINE__);                          \
  } while (0)
