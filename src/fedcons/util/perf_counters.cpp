#include "fedcons/util/perf_counters.h"

namespace fedcons {

PerfCounters& perf_counters() noexcept {
  thread_local PerfCounters counters;
  return counters;
}

}  // namespace fedcons
