#include "fedcons/util/stats.h"

#include <algorithm>
#include <cmath>

namespace fedcons {

void OnlineStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const noexcept {
  return n_ >= 2 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile(std::vector<double> samples, double p) {
  FEDCONS_EXPECTS(!samples.empty());
  FEDCONS_EXPECTS(p >= 0.0 && p <= 100.0);
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples.front();
  double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  auto lo = static_cast<std::size_t>(rank);
  auto hi = std::min(lo + 1, samples.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return samples[lo] + frac * (samples[hi] - samples[lo]);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  FEDCONS_EXPECTS(lo < hi);
  FEDCONS_EXPECTS(bins > 0);
}

void Histogram::add(double x) noexcept {
  double pos = (x - lo_) / (hi_ - lo_) * static_cast<double>(counts_.size());
  auto bin = pos <= 0.0 ? std::size_t{0}
                        : std::min(static_cast<std::size_t>(pos),
                                   counts_.size() - 1);
  ++counts_[bin];
  ++total_;
}

std::size_t Histogram::count(std::size_t bin) const {
  FEDCONS_EXPECTS(bin < counts_.size());
  return counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  FEDCONS_EXPECTS(bin < counts_.size());
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t bin) const {
  FEDCONS_EXPECTS(bin < counts_.size());
  return lo_ + (hi_ - lo_) * static_cast<double>(bin + 1) /
                   static_cast<double>(counts_.size());
}

double binomial_ci95_halfwidth(std::size_t k, std::size_t n) {
  if (n == 0) return 0.0;
  double p = static_cast<double>(k) / static_cast<double>(n);
  return 1.96 * std::sqrt(p * (1.0 - p) / static_cast<double>(n));
}

}  // namespace fedcons
