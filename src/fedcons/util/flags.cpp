#include "fedcons/util/flags.h"

#include <stdexcept>

#include "fedcons/util/check.h"

namespace fedcons {

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    FEDCONS_EXPECTS_MSG(!body.empty(), "bare '--' argument");
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    } else {
      values_[body] = "true";
    }
  }
}

bool Flags::has(const std::string& key) const {
  return values_.count(key) != 0;
}

std::vector<std::string> Flags::unknown_keys(
    std::span<const std::string_view> allowed) const {
  std::vector<std::string> out;
  for (const auto& [key, value] : values_) {
    bool known = false;
    for (const std::string_view a : allowed) {
      if (key == a) {
        known = true;
        break;
      }
    }
    if (!known) out.push_back(key);
  }
  return out;
}

std::string Flags::get_string(const std::string& key,
                              const std::string& def) const {
  auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

namespace {

/// The value with surrounding whitespace removed. stoll/stod skip leading
/// whitespace themselves; stripping up front lets the full-token check below
/// treat "8 " and " 8" uniformly instead of rejecting one and not the other.
std::string strip(const std::string& s) {
  const auto first = s.find_first_not_of(" \t");
  if (first == std::string::npos) return "";
  const auto last = s.find_last_not_of(" \t");
  return s.substr(first, last - first + 1);
}

}  // namespace

std::int64_t Flags::get_int(const std::string& key, std::int64_t def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  // Full-token validation: stoll("8x") happily returns 8, so a typo like
  // --threads=8x must not run with 8 threads. Every character of the
  // stripped value has to be consumed by the conversion.
  const std::string value = strip(it->second);
  try {
    std::size_t pos = 0;
    const std::int64_t parsed = std::stoll(value, &pos);
    FEDCONS_EXPECTS_MSG(pos == value.size(),
                        "flag --" + key + " has trailing garbage: " +
                            it->second);
    return parsed;
  } catch (const ContractViolation&) {
    throw;
  } catch (const std::exception&) {
    FEDCONS_EXPECTS_MSG(false, "flag --" + key + " is not an integer: " +
                                   it->second);
  }
  return def;  // unreachable
}

double Flags::get_double(const std::string& key, double def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  const std::string value = strip(it->second);
  try {
    std::size_t pos = 0;
    const double parsed = std::stod(value, &pos);
    FEDCONS_EXPECTS_MSG(pos == value.size(),
                        "flag --" + key + " has trailing garbage: " +
                            it->second);
    return parsed;
  } catch (const ContractViolation&) {
    throw;
  } catch (const std::exception&) {
    FEDCONS_EXPECTS_MSG(false,
                        "flag --" + key + " is not a number: " + it->second);
  }
  return def;  // unreachable
}

bool Flags::get_bool(const std::string& key, bool def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  FEDCONS_EXPECTS_MSG(false, "flag --" + key + " is not a boolean: " + v);
  return def;  // unreachable
}

}  // namespace fedcons
