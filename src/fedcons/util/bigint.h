// Arbitrary-precision signed integers.
//
// The partitioning condition of Algorithm PARTITION (paper Fig. 4) compares
// sums of exact rationals vol_j·(t − D_j)/T_j against integer instants. With
// many tasks per processor the common denominator can exceed any fixed-width
// integer type, so exact comparison needs arbitrary precision. BigInt provides
// just the operations BigRational (rational.h) requires: add, subtract,
// multiply, compare, and small-divisor division for printing — deliberately
// *not* a general bignum library (no full division, no bit operations), per
// Core Guidelines P.1/P.9: express intent, don't build what you don't need.
//
// Representation: sign + magnitude in base 2^32 limbs, least-significant limb
// first, with no trailing zero limbs (canonical form; zero is an empty limb
// vector with non-negative sign).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fedcons/util/check.h"

namespace fedcons {

/// Arbitrary-precision signed integer (value type, totally ordered).
class BigInt {
 public:
  /// Zero.
  BigInt() = default;

  /// Conversion from a native signed integer.
  BigInt(std::int64_t v);  // NOLINT(google-explicit-constructor): numeric type

  /// Signum: -1, 0, or +1.
  [[nodiscard]] int sign() const noexcept;

  [[nodiscard]] bool is_zero() const noexcept { return limbs_.empty(); }
  [[nodiscard]] bool is_negative() const noexcept { return negative_; }

  /// True iff the value fits in std::int64_t.
  [[nodiscard]] bool fits_int64() const noexcept;

  /// Conversion back to int64. Precondition: fits_int64().
  [[nodiscard]] std::int64_t to_int64() const;

  /// Approximate conversion to double (may lose precision, never traps).
  [[nodiscard]] double to_double() const noexcept;

  [[nodiscard]] BigInt operator-() const;
  [[nodiscard]] BigInt operator+(const BigInt& rhs) const;
  [[nodiscard]] BigInt operator-(const BigInt& rhs) const;
  [[nodiscard]] BigInt operator*(const BigInt& rhs) const;

  BigInt& operator+=(const BigInt& rhs) { return *this = *this + rhs; }
  BigInt& operator-=(const BigInt& rhs) { return *this = *this - rhs; }
  BigInt& operator*=(const BigInt& rhs) { return *this = *this * rhs; }

  [[nodiscard]] bool operator==(const BigInt& rhs) const noexcept;
  [[nodiscard]] bool operator<(const BigInt& rhs) const noexcept;
  [[nodiscard]] bool operator!=(const BigInt& rhs) const noexcept {
    return !(*this == rhs);
  }
  [[nodiscard]] bool operator>(const BigInt& rhs) const noexcept {
    return rhs < *this;
  }
  [[nodiscard]] bool operator<=(const BigInt& rhs) const noexcept {
    return !(rhs < *this);
  }
  [[nodiscard]] bool operator>=(const BigInt& rhs) const noexcept {
    return !(*this < rhs);
  }

  /// Decimal string rendering (for diagnostics and golden tests).
  [[nodiscard]] std::string to_string() const;

  /// Number of base-2^32 limbs in the magnitude (0 for zero). Exposed for
  /// tests asserting canonical form.
  [[nodiscard]] std::size_t limb_count() const noexcept {
    return limbs_.size();
  }

 private:
  // Magnitude comparison: -1, 0, +1 for |a| vs |b|.
  static int cmp_mag(const std::vector<std::uint32_t>& a,
                     const std::vector<std::uint32_t>& b) noexcept;
  static std::vector<std::uint32_t> add_mag(
      const std::vector<std::uint32_t>& a,
      const std::vector<std::uint32_t>& b);
  // Precondition: |a| >= |b|.
  static std::vector<std::uint32_t> sub_mag(
      const std::vector<std::uint32_t>& a,
      const std::vector<std::uint32_t>& b);
  static std::vector<std::uint32_t> mul_mag(
      const std::vector<std::uint32_t>& a,
      const std::vector<std::uint32_t>& b);
  static void trim(std::vector<std::uint32_t>& v) noexcept;

  void canonicalize() noexcept;

  std::vector<std::uint32_t> limbs_;  // base 2^32, LSB first, no trailing 0s
  bool negative_ = false;             // never true when limbs_ is empty
};

}  // namespace fedcons
