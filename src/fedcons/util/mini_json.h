// Minimal JSON helpers shared by the pinned-artifact readers/writers
// (conform/artifact.h, fault/fault_artifact.h) and the online trace format
// (online/trace.h).
//
// The dialect is deliberately tiny: objects nested at most one level, string
// and number values, no arrays. Writers emit exactly this subset with a fixed
// field order (byte-deterministic for given inputs); the parser accepts
// exactly this subset and raises ParseError on anything else. Anything richer
// belongs in a real serialization layer, not a repro pin.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "fedcons/util/parse_error.h"

namespace fedcons {

/// Escape a string for embedding in a JSON document (ASCII control characters
/// become \u escapes; the parser below round-trips the result).
[[nodiscard]] std::string json_escape(const std::string& s);

/// Shortest round-trip decimal form ("%.17g") — artifacts must replay with
/// the exact double the finder used.
[[nodiscard]] std::string format_double(double v);

/// Parse a document of the dialect into a flat "outer.inner" -> raw-value
/// map (strings unescaped, numbers verbatim). Throws ParseError with an
/// approximate line number on malformed input.
[[nodiscard]] std::map<std::string, std::string> parse_mini_json(
    const std::string& text);

/// Fetch a required field from a parse_mini_json map; throws ParseError
/// naming the field when absent.
[[nodiscard]] const std::string& require_field(
    const std::map<std::string, std::string>& fields, const std::string& key);

/// Strict raw-value conversions for parse_mini_json results: the whole token
/// must convert (endptr reaches the end) and the value must fit (errno is
/// checked), otherwise ParseError. mini_json_uint additionally rejects signs
/// — strtoull would happily wrap "-5" to 2^64-5. Artifacts are written by
/// us, but they are replayed from disk and the serve protocol decodes
/// network input through the same helpers, so garbage must fail loudly
/// instead of becoming 0 and overflow must not saturate silently.
[[nodiscard]] std::int64_t mini_json_int(const std::string& raw);
[[nodiscard]] std::uint64_t mini_json_uint(const std::string& raw);

}  // namespace fedcons
