// Lightweight analysis-effort counters.
//
// The experiment engine reports, per trial, how much analytical work each
// verdict cost: List Scheduling invocations, MINPROCS scan iterations, and
// DBF*/DBF-approx evaluations. Counters are thread_local so the parallel
// batch runner can attribute work to the trial executing on that thread
// without synchronization; instrumented hot paths pay one TLS increment.
//
// Usage pattern (engine/batch_runner): snapshot `perf_counters()` before a
// trial, subtract after — the delta is exactly that trial's work because one
// worker thread runs one trial at a time.
#pragma once

#include <cstdint>

namespace fedcons {

/// Monotone per-thread work counters (see header comment).
///
/// Counting convention: counters measure *logical* analytical work, not
/// physical function calls. A fast path that decides the same question
/// without performing every call credits the count the straightforward path
/// would have paid (see approx_demand_fits and the incremental PARTITION
/// state), so counter totals are invariant under the perf optimizations and
/// deterministic per trial, and comparable across engine versions.
/// ls_probes_pruned exposes the scan optimization's effect but is still a
/// pure function of the trial's inputs. The one physical counter
/// (workspace_reuses) lives OUTSIDE this struct — see ls_workspace.h —
/// because arena-capacity history depends on which trials previously ran on
/// the thread, which is not deterministic across thread counts.
struct PerfCounters {
  std::uint64_t ls_invocations = 0;         ///< list_schedule* calls
  std::uint64_t minprocs_scan_iterations = 0;  ///< LS probes across MINPROCS scans
  std::uint64_t dbf_star_evaluations = 0;   ///< dbf_approx / dbf_approx_k calls
  /// Scan candidates removed from a MINPROCS worst-case range [⌈δ⌉, m_r] by
  /// the Graham-bound cap μ_ub (minprocs_scan_cap): Σ max(0, m_r − cap).
  std::uint64_t ls_probes_pruned = 0;
  /// Conformance-harness work (conform/harness.h): (algorithm, system)
  /// oracle evaluations — an admit() plus, on acceptance, a full composition
  /// replay in simulation.
  std::uint64_t conform_trials = 0;
  /// Oracle evaluations whose verdict was "schedulable" yet whose replay
  /// missed a deadline — each one is a refuted safety claim.
  std::uint64_t conform_violations = 0;
  /// Candidate reductions evaluated while minimizing violations (each costs
  /// one oracle re-run; see conform/shrinker.h).
  std::uint64_t conform_shrink_steps = 0;
  /// Fault-injection layer (fedcons/fault/): jobs whose release or execution
  /// time a FaultPlan perturbed — a pure function of (plan, generated jobs),
  /// so deterministic per trial like every other logical counter.
  std::uint64_t fault_injections = 0;
  /// Supervision interventions: EDF budget throttles, arrival-guard
  /// deferrals, and template-slot clamps (zero whenever no fault plan is in
  /// effect — enforcement never fires on within-contract behaviour).
  std::uint64_t fault_enforcements = 0;
  /// Isolation-property evaluations: full-system replays under an active
  /// fault plan (fault/isolation.h), including shrinker re-probes.
  std::uint64_t fault_isolation_trials = 0;
  /// Online admission layer (federated/minprocs_memo.h, online/): MINPROCS
  /// memo-cache lookups answered from a cached scan vs. scans actually run.
  /// Deterministic per event sequence — a memo instance is owned by one
  /// session and never shared across threads, so hit/miss history is a pure
  /// function of the events fed to that session (and its cache capacity).
  /// Note the memo credits the *logical* scan counters above on every hit,
  /// so ls_invocations / minprocs_scan_iterations stay invariant under
  /// caching; these two only expose how much physical work the cache saved.
  std::uint64_t minprocs_memo_hits = 0;
  std::uint64_t minprocs_memo_misses = 0;
  /// Partition placements re-probed by the online delta re-analysis: fits()
  /// probes actually evaluated while replaying the invalidated suffix of the
  /// placement order (clean-bin placements are reused without probing).
  std::uint64_t partition_bins_revalidated = 0;
  /// Demand breakpoints decided by the certified-double kernel without the
  /// exact rational fallback (simd/dbf_kernel.h). Lane classification is
  /// backend-invariant (pinned by the simd equivalence tests), so like
  /// ls_probes_pruned this exposes the fast path's reach while remaining a
  /// pure function of the trial's inputs.
  std::uint64_t simd_breakpoints_vectorized = 0;
  /// LS probes executed through the blocked μ-scan entry point
  /// (listsched/ls_workspace.h ls_run_blocked) — probes whose per-run state
  /// resets went through the dispatched fill/copy primitives.
  std::uint64_t ls_probes_blocked = 0;

  PerfCounters& operator+=(const PerfCounters& rhs) noexcept {
    ls_invocations += rhs.ls_invocations;
    minprocs_scan_iterations += rhs.minprocs_scan_iterations;
    dbf_star_evaluations += rhs.dbf_star_evaluations;
    ls_probes_pruned += rhs.ls_probes_pruned;
    conform_trials += rhs.conform_trials;
    conform_violations += rhs.conform_violations;
    conform_shrink_steps += rhs.conform_shrink_steps;
    fault_injections += rhs.fault_injections;
    fault_enforcements += rhs.fault_enforcements;
    fault_isolation_trials += rhs.fault_isolation_trials;
    minprocs_memo_hits += rhs.minprocs_memo_hits;
    minprocs_memo_misses += rhs.minprocs_memo_misses;
    partition_bins_revalidated += rhs.partition_bins_revalidated;
    simd_breakpoints_vectorized += rhs.simd_breakpoints_vectorized;
    ls_probes_blocked += rhs.ls_probes_blocked;
    return *this;
  }
  /// Delta between two snapshots of the same thread's counters.
  [[nodiscard]] PerfCounters operator-(const PerfCounters& rhs) const noexcept {
    return {ls_invocations - rhs.ls_invocations,
            minprocs_scan_iterations - rhs.minprocs_scan_iterations,
            dbf_star_evaluations - rhs.dbf_star_evaluations,
            ls_probes_pruned - rhs.ls_probes_pruned,
            conform_trials - rhs.conform_trials,
            conform_violations - rhs.conform_violations,
            conform_shrink_steps - rhs.conform_shrink_steps,
            fault_injections - rhs.fault_injections,
            fault_enforcements - rhs.fault_enforcements,
            fault_isolation_trials - rhs.fault_isolation_trials,
            minprocs_memo_hits - rhs.minprocs_memo_hits,
            minprocs_memo_misses - rhs.minprocs_memo_misses,
            partition_bins_revalidated - rhs.partition_bins_revalidated,
            simd_breakpoints_vectorized - rhs.simd_breakpoints_vectorized,
            ls_probes_blocked - rhs.ls_probes_blocked};
  }
  [[nodiscard]] bool operator==(const PerfCounters&) const noexcept = default;
};

/// The calling thread's counters (mutable; never reset by the library).
[[nodiscard]] PerfCounters& perf_counters() noexcept;

}  // namespace fedcons
