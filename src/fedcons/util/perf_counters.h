// Lightweight analysis-effort counters.
//
// The experiment engine reports, per trial, how much analytical work each
// verdict cost: List Scheduling invocations, MINPROCS scan iterations, and
// DBF*/DBF-approx evaluations. Counters are thread_local so the parallel
// batch runner can attribute work to the trial executing on that thread
// without synchronization; instrumented hot paths pay one TLS increment.
//
// Usage pattern (engine/batch_runner): snapshot `perf_counters()` before a
// trial, subtract after — the delta is exactly that trial's work because one
// worker thread runs one trial at a time.
#pragma once

#include <cstdint>

namespace fedcons {

/// Monotone per-thread work counters (see header comment).
struct PerfCounters {
  std::uint64_t ls_invocations = 0;         ///< list_schedule* calls
  std::uint64_t minprocs_scan_iterations = 0;  ///< LS probes across MINPROCS scans
  std::uint64_t dbf_star_evaluations = 0;   ///< dbf_approx / dbf_approx_k calls

  PerfCounters& operator+=(const PerfCounters& rhs) noexcept {
    ls_invocations += rhs.ls_invocations;
    minprocs_scan_iterations += rhs.minprocs_scan_iterations;
    dbf_star_evaluations += rhs.dbf_star_evaluations;
    return *this;
  }
  /// Delta between two snapshots of the same thread's counters.
  [[nodiscard]] PerfCounters operator-(const PerfCounters& rhs) const noexcept {
    return {ls_invocations - rhs.ls_invocations,
            minprocs_scan_iterations - rhs.minprocs_scan_iterations,
            dbf_star_evaluations - rhs.dbf_star_evaluations};
  }
  [[nodiscard]] bool operator==(const PerfCounters&) const noexcept = default;
};

/// The calling thread's counters (mutable; never reset by the library).
[[nodiscard]] PerfCounters& perf_counters() noexcept;

}  // namespace fedcons
