#include "fedcons/util/bigint.h"

#include <algorithm>
#include <cmath>

namespace fedcons {

namespace {
constexpr std::uint64_t kBase = std::uint64_t{1} << 32;
}

BigInt::BigInt(std::int64_t v) {
  negative_ = v < 0;
  // Convert through uint64 to handle INT64_MIN without overflow.
  std::uint64_t mag =
      negative_ ? ~static_cast<std::uint64_t>(v) + 1 : static_cast<std::uint64_t>(v);
  while (mag != 0) {
    limbs_.push_back(static_cast<std::uint32_t>(mag & 0xffffffffu));
    mag >>= 32;
  }
  canonicalize();
}

int BigInt::sign() const noexcept {
  if (limbs_.empty()) return 0;
  return negative_ ? -1 : 1;
}

bool BigInt::fits_int64() const noexcept {
  if (limbs_.size() > 2) return false;
  std::uint64_t mag = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i)
    mag |= static_cast<std::uint64_t>(limbs_[i]) << (32 * i);
  if (negative_) return mag <= (std::uint64_t{1} << 63);
  return mag < (std::uint64_t{1} << 63);
}

std::int64_t BigInt::to_int64() const {
  FEDCONS_EXPECTS(fits_int64());
  std::uint64_t mag = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i)
    mag |= static_cast<std::uint64_t>(limbs_[i]) << (32 * i);
  // Negate in the unsigned domain: mag may be 2^63 (INT64_MIN's magnitude),
  // whose signed negation is undefined; -mag mod 2^64 cast to int64 is exact.
  return negative_ ? static_cast<std::int64_t>(-mag)
                   : static_cast<std::int64_t>(mag);
}

double BigInt::to_double() const noexcept {
  double r = 0.0;
  for (auto it = limbs_.rbegin(); it != limbs_.rend(); ++it)
    r = r * static_cast<double>(kBase) + static_cast<double>(*it);
  return negative_ ? -r : r;
}

void BigInt::trim(std::vector<std::uint32_t>& v) noexcept {
  while (!v.empty() && v.back() == 0) v.pop_back();
}

void BigInt::canonicalize() noexcept {
  trim(limbs_);
  if (limbs_.empty()) negative_ = false;
}

int BigInt::cmp_mag(const std::vector<std::uint32_t>& a,
                    const std::vector<std::uint32_t>& b) noexcept {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (std::size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

std::vector<std::uint32_t> BigInt::add_mag(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  const auto& big = a.size() >= b.size() ? a : b;
  const auto& small = a.size() >= b.size() ? b : a;
  std::vector<std::uint32_t> r;
  r.reserve(big.size() + 1);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < big.size(); ++i) {
    std::uint64_t s = carry + big[i] + (i < small.size() ? small[i] : 0u);
    r.push_back(static_cast<std::uint32_t>(s & 0xffffffffu));
    carry = s >> 32;
  }
  if (carry != 0) r.push_back(static_cast<std::uint32_t>(carry));
  return r;
}

std::vector<std::uint32_t> BigInt::sub_mag(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  FEDCONS_ASSERT(cmp_mag(a, b) >= 0);
  std::vector<std::uint32_t> r;
  r.reserve(a.size());
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::int64_t d = static_cast<std::int64_t>(a[i]) - borrow -
                     (i < b.size() ? static_cast<std::int64_t>(b[i]) : 0);
    if (d < 0) {
      d += static_cast<std::int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    r.push_back(static_cast<std::uint32_t>(d));
  }
  trim(r);
  return r;
}

std::vector<std::uint32_t> BigInt::mul_mag(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  if (a.empty() || b.empty()) return {};
  std::vector<std::uint32_t> r(a.size() + b.size(), 0u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < b.size(); ++j) {
      std::uint64_t cur = static_cast<std::uint64_t>(a[i]) * b[j] + r[i + j] +
                          carry;
      r[i + j] = static_cast<std::uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
    }
    std::size_t k = i + b.size();
    while (carry != 0) {
      std::uint64_t cur = r[k] + carry;
      r[k] = static_cast<std::uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
      ++k;
    }
  }
  trim(r);
  return r;
}

BigInt BigInt::operator-() const {
  BigInt r = *this;
  if (!r.limbs_.empty()) r.negative_ = !r.negative_;
  return r;
}

BigInt BigInt::operator+(const BigInt& rhs) const {
  BigInt r;
  if (negative_ == rhs.negative_) {
    r.limbs_ = add_mag(limbs_, rhs.limbs_);
    r.negative_ = negative_;
  } else {
    int c = cmp_mag(limbs_, rhs.limbs_);
    if (c >= 0) {
      r.limbs_ = sub_mag(limbs_, rhs.limbs_);
      r.negative_ = negative_;
    } else {
      r.limbs_ = sub_mag(rhs.limbs_, limbs_);
      r.negative_ = rhs.negative_;
    }
  }
  r.canonicalize();
  return r;
}

BigInt BigInt::operator-(const BigInt& rhs) const { return *this + (-rhs); }

BigInt BigInt::operator*(const BigInt& rhs) const {
  BigInt r;
  r.limbs_ = mul_mag(limbs_, rhs.limbs_);
  r.negative_ = !r.limbs_.empty() && (negative_ != rhs.negative_);
  return r;
}

bool BigInt::operator==(const BigInt& rhs) const noexcept {
  return negative_ == rhs.negative_ && limbs_ == rhs.limbs_;
}

bool BigInt::operator<(const BigInt& rhs) const noexcept {
  if (negative_ != rhs.negative_) return negative_;
  int c = cmp_mag(limbs_, rhs.limbs_);
  return negative_ ? c > 0 : c < 0;
}

std::string BigInt::to_string() const {
  if (limbs_.empty()) return "0";
  // Repeated division of the magnitude by 10^9.
  std::vector<std::uint32_t> mag = limbs_;
  std::string out;
  constexpr std::uint64_t kChunk = 1000000000ull;
  std::vector<std::uint64_t> chunks;
  while (!mag.empty()) {
    std::uint64_t rem = 0;
    for (std::size_t i = mag.size(); i-- > 0;) {
      std::uint64_t cur = (rem << 32) | mag[i];
      mag[i] = static_cast<std::uint32_t>(cur / kChunk);
      rem = cur % kChunk;
    }
    trim(mag);
    chunks.push_back(rem);
  }
  out = std::to_string(chunks.back());
  for (std::size_t i = chunks.size() - 1; i-- > 0;) {
    std::string part = std::to_string(chunks[i]);
    out += std::string(9 - part.size(), '0') + part;
  }
  if (negative_) out.insert(out.begin(), '-');
  return out;
}

}  // namespace fedcons
