// ParseError — the exception type shared by every parser in the tree (task
// system text format in core/io.h, the mini-JSON artifact dialect in
// util/mini_json.h, tool flag handling). Lives in util so parsers below the
// core layer can throw it without a dependency cycle.
#pragma once

#include <stdexcept>
#include <string>

namespace fedcons {

/// Raised on malformed input; what() includes the 1-based line number.
class ParseError : public std::runtime_error {
 public:
  ParseError(int line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}
  [[nodiscard]] int line() const noexcept { return line_; }

 private:
  int line_;
};

}  // namespace fedcons
