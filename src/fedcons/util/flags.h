// Minimal command-line flag parsing for bench/example binaries.
//
// Syntax: --key=value; bare --key is a boolean true. There is deliberately
// no "--key value" two-token form: it made any bare token after a boolean
// flag ("fedcons_cli --json file.json") silently become that flag's value
// instead of a positional argument. Non-flag tokens are always collected as
// positionals for the caller (every tool rejects strays with usage + exit 2).
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace fedcons {

/// Parsed command-line flags with typed, defaulted getters.
class Flags {
 public:
  Flags() = default;

  /// Parse argv (skips argv[0]). Throws ContractViolation on malformed input
  /// such as "--" with no key.
  Flags(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const;

  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& def) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t def) const;
  [[nodiscard]] double get_double(const std::string& key, double def) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool def) const;

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Flags present on the command line but absent from `allowed` — the tool
  /// error path (every binary rejects unknown flags with a usage message
  /// instead of silently ignoring a typo like --tirals=500).
  [[nodiscard]] std::vector<std::string> unknown_keys(
      std::span<const std::string_view> allowed) const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace fedcons
