// Streaming and batch statistics for experiment reporting.
#pragma once

#include <cstddef>
#include <vector>

#include "fedcons/util/check.h"

namespace fedcons {

/// Numerically stable streaming moments (Welford's algorithm).
class OnlineStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Merge another accumulator (parallel-reduction friendly).
  void merge(const OnlineStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// p-th percentile (p in [0,100]) by linear interpolation between closest
/// ranks. Copies and sorts the input; intended for end-of-run reporting.
[[nodiscard]] double percentile(std::vector<double> samples, double p);

/// Fixed-width histogram over [lo, hi) with the given number of bins;
/// out-of-range samples are clamped into the edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  [[nodiscard]] std::size_t bin_count() const noexcept {
    return counts_.size();
  }
  [[nodiscard]] std::size_t count(std::size_t bin) const;
  [[nodiscard]] double bin_lo(std::size_t bin) const;
  [[nodiscard]] double bin_hi(std::size_t bin) const;
  [[nodiscard]] std::size_t total() const noexcept { return total_; }

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Two-sided 95% normal-approximation confidence half-width for a binomial
/// proportion estimated from k successes out of n trials (Wald interval; fine
/// for the hundreds of trials per point used in the experiment sweeps).
[[nodiscard]] double binomial_ci95_halfwidth(std::size_t k, std::size_t n);

}  // namespace fedcons
