// Deterministic pseudo-random number generation.
//
// Experiments must be bit-reproducible across platforms and standard-library
// implementations, so we implement the generator (xoshiro256**) and the
// distributions ourselves instead of relying on <random>'s
// implementation-defined distribution algorithms. All experiment binaries
// take an explicit seed.
#pragma once

#include <cstdint>
#include <vector>

#include "fedcons/util/check.h"

namespace fedcons {

/// xoshiro256** by Blackman & Vigna — fast, high-quality, 2^256-1 period.
/// Seeded through SplitMix64 so that any 64-bit seed yields a well-mixed
/// initial state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Uniform 64-bit word.
  std::uint64_t next_u64();

  /// Uniform integer in [lo, hi] (inclusive). Precondition: lo <= hi.
  /// Uses rejection sampling (Lemire-style bounded draw) — no modulo bias.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [0, 1).
  double uniform01();

  /// Uniform real in [lo, hi). Precondition: lo < hi.
  double uniform_real(double lo, double hi);

  /// Log-uniform real in [lo, hi): uniform in the exponent. Preconditions:
  /// 0 < lo < hi. The canonical way to draw task periods spanning orders of
  /// magnitude (Emberson et al. convention).
  double log_uniform_real(double lo, double hi);

  /// Bernoulli draw with success probability p in [0, 1].
  bool bernoulli(double p);

  /// Fisher–Yates shuffle (deterministic given the RNG state).
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j =
          static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child generator (for per-trial streams).
  [[nodiscard]] Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace fedcons
