// Deterministic pseudo-random number generation.
//
// Experiments must be bit-reproducible across platforms and standard-library
// implementations, so we implement the generator (xoshiro256**) and the
// distributions ourselves instead of relying on <random>'s
// implementation-defined distribution algorithms. All experiment binaries
// take an explicit seed.
//
// The distribution layer is a CRTP mixin over any `next_u64()` source so the
// batched lane streams (simd/batch_rng.h) consume draws through the exact
// same algorithms as Rng — one implementation, pinned equal by the simd
// tests, no copy to drift.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "fedcons/util/check.h"

namespace fedcons {

namespace detail {
/// SplitMix64-expand `seed` into a well-mixed non-zero xoshiro256** state —
/// the one seeding rule shared by Rng and the batched lanes.
void xoshiro_seed(std::uint64_t seed, std::uint64_t s[4]) noexcept;
}  // namespace detail

/// The distribution algorithms over a 64-bit uniform source. Derived provides
/// `std::uint64_t next_u64()`; every method consumes draws exclusively
/// through it, so two sources emitting the same u64 stream yield bit-equal
/// distribution sequences.
template <class Derived>
class RngDistributions {
 public:
  /// Uniform integer in [lo, hi] (inclusive). Precondition: lo <= hi.
  /// Uses rejection sampling (Lemire-style bounded draw) — no modulo bias.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    FEDCONS_EXPECTS(lo <= hi);
    const std::uint64_t range = static_cast<std::uint64_t>(hi) -
                                static_cast<std::uint64_t>(lo) + 1;
    if (range == 0) {  // full 64-bit range
      return static_cast<std::int64_t>(self().next_u64());
    }
    // Rejection sampling on the top of the range to eliminate modulo bias.
    const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % range);
    std::uint64_t draw;
    do {
      draw = self().next_u64();
    } while (draw >= limit);
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) +
                                     draw % range);
  }

  /// Uniform real in [0, 1).
  double uniform01() {
    // 53 uniform mantissa bits → [0,1).
    return static_cast<double>(self().next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform real in [lo, hi). Precondition: lo < hi.
  double uniform_real(double lo, double hi) {
    FEDCONS_EXPECTS(lo < hi);
    return lo + (hi - lo) * uniform01();
  }

  /// Log-uniform real in [lo, hi): uniform in the exponent. Preconditions:
  /// 0 < lo < hi. The canonical way to draw task periods spanning orders of
  /// magnitude (Emberson et al. convention).
  double log_uniform_real(double lo, double hi) {
    FEDCONS_EXPECTS(0 < lo && lo < hi);
    return std::exp(uniform_real(std::log(lo), std::log(hi)));
  }

  /// Bernoulli draw with success probability p in [0, 1].
  bool bernoulli(double p) {
    FEDCONS_EXPECTS(p >= 0.0 && p <= 1.0);
    return uniform01() < p;
  }

  /// Fisher–Yates shuffle (deterministic given the RNG state).
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  Derived& self() noexcept { return static_cast<Derived&>(*this); }
};

/// xoshiro256** by Blackman & Vigna — fast, high-quality, 2^256-1 period.
/// Seeded through SplitMix64 so that any 64-bit seed yields a well-mixed
/// initial state.
class Rng : public RngDistributions<Rng> {
 public:
  explicit Rng(std::uint64_t seed) { reseed(seed); }

  void reseed(std::uint64_t seed) { detail::xoshiro_seed(seed, s_); }

  /// Uniform 64-bit word.
  std::uint64_t next_u64();

  /// Derive an independent child generator (for per-trial streams).
  [[nodiscard]] Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace fedcons
