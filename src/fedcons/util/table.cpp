#include "fedcons/util/table.h"

#include <algorithm>
#include <cctype>
#include <ostream>
#include <sstream>

#include "fedcons/util/check.h"

namespace fedcons {

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  std::size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
  if (i >= s.size()) return false;
  for (; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i])) && s[i] != '.' &&
        s[i] != 'e' && s[i] != 'E' && s[i] != '-' && s[i] != '+' &&
        s[i] != '%' && s[i] != 'x') {
      return false;
    }
  }
  return true;
}

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  FEDCONS_EXPECTS(!header_.empty());
}

void Table::add_row(std::vector<std::string> row) {
  FEDCONS_EXPECTS(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::size_t pad = width[c] - row[c].size();
      bool right = looks_numeric(row[c]);
      if (c) os << "  ";
      if (right) os << std::string(pad, ' ') << row[c];
      else os << row[c] << std::string(pad, ' ');
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt_double(double v, int precision) {
  std::ostringstream ss;
  ss.setf(std::ios::fixed);
  ss.precision(precision);
  ss << v;
  return ss.str();
}

std::string fmt_int(long long v) { return std::to_string(v); }

std::string fmt_ratio(std::size_t k, std::size_t n, int precision) {
  if (n == 0) return "n/a";
  return fmt_double(static_cast<double>(k) / static_cast<double>(n),
                    precision);
}

}  // namespace fedcons
