// Exact rational arithmetic over BigInt.
//
// Used wherever a schedulability decision involves non-integer quantities:
// the DBF* partitioning condition (sums of vol_j·(t − D_j)/T_j), task
// densities/utilizations compared exactly, and the L* testing-interval bound
// of the exact uniprocessor EDF test.
//
// Design notes:
//  * Denominators are kept positive; the zero value is 0/1.
//  * Fractions are reduced only with the cheap int64 gcd fast path (full
//    BigInt gcd would require BigInt division, which bigint.h deliberately
//    omits). Unreduced fractions are harmless: in this library rationals live
//    for the duration of one bounded-length sum and one comparison, so limb
//    growth is bounded by the number of terms (tens), never iterated.
#pragma once

#include <cstdint>
#include <string>

#include "fedcons/util/bigint.h"
#include "fedcons/util/check.h"
#include "fedcons/util/time_types.h"

namespace fedcons {

/// Exact rational number (value type, totally ordered).
class BigRational {
 public:
  /// Zero.
  BigRational() : num_(0), den_(1) {}

  /// From an integer.
  BigRational(std::int64_t v) : num_(v), den_(1) {}  // NOLINT: numeric type

  /// From an int64 fraction num/den. Precondition: den != 0.
  BigRational(std::int64_t num, std::int64_t den);

  /// From an already-formed BigInt fraction. Precondition: den != 0.
  BigRational(BigInt num, BigInt den);

  [[nodiscard]] const BigInt& num() const noexcept { return num_; }
  [[nodiscard]] const BigInt& den() const noexcept { return den_; }

  [[nodiscard]] int sign() const noexcept { return num_.sign(); }
  [[nodiscard]] bool is_zero() const noexcept { return num_.is_zero(); }

  /// True iff the value is an integer that fits in int64 (after exact check
  /// num % den == 0 via cross multiplication with floor()).
  [[nodiscard]] bool is_integer() const;

  /// Largest integer <= value. Precondition: result fits in int64.
  [[nodiscard]] std::int64_t floor() const;

  /// Smallest integer >= value. Precondition: result fits in int64.
  [[nodiscard]] std::int64_t ceil() const;

  [[nodiscard]] double to_double() const noexcept {
    return num_.to_double() / den_.to_double();
  }

  [[nodiscard]] BigRational operator-() const;
  [[nodiscard]] BigRational operator+(const BigRational& rhs) const;
  [[nodiscard]] BigRational operator-(const BigRational& rhs) const;
  [[nodiscard]] BigRational operator*(const BigRational& rhs) const;
  /// Division. Precondition: rhs != 0.
  [[nodiscard]] BigRational operator/(const BigRational& rhs) const;

  BigRational& operator+=(const BigRational& rhs) {
    return *this = *this + rhs;
  }
  BigRational& operator-=(const BigRational& rhs) {
    return *this = *this - rhs;
  }
  BigRational& operator*=(const BigRational& rhs) {
    return *this = *this * rhs;
  }

  [[nodiscard]] bool operator==(const BigRational& rhs) const;
  [[nodiscard]] bool operator<(const BigRational& rhs) const;
  [[nodiscard]] bool operator!=(const BigRational& rhs) const {
    return !(*this == rhs);
  }
  [[nodiscard]] bool operator>(const BigRational& rhs) const {
    return rhs < *this;
  }
  [[nodiscard]] bool operator<=(const BigRational& rhs) const {
    return !(rhs < *this);
  }
  [[nodiscard]] bool operator>=(const BigRational& rhs) const {
    return !(*this < rhs);
  }

  /// "num/den" rendering (unreduced form; for diagnostics).
  [[nodiscard]] std::string to_string() const;

 private:
  void normalize_sign();
  void reduce_fast();  // int64-gcd fast path only

  BigInt num_;
  BigInt den_;  // always > 0
};

/// Convenience: exact utilization/density vol/t as a rational.
[[nodiscard]] inline BigRational make_ratio(Time num, Time den) {
  return BigRational(num, den);
}

}  // namespace fedcons
