#include "fedcons/util/rng.h"

#include <cmath>

namespace fedcons {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // Guard against the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  FEDCONS_EXPECTS(lo <= hi);
  const std::uint64_t range = static_cast<std::uint64_t>(hi) -
                              static_cast<std::uint64_t>(lo) + 1;
  if (range == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  // Rejection sampling on the top of the range to eliminate modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % range);
  std::uint64_t draw;
  do {
    draw = next_u64();
  } while (draw >= limit);
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) +
                                   draw % range);
}

double Rng::uniform01() {
  // 53 uniform mantissa bits → [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real(double lo, double hi) {
  FEDCONS_EXPECTS(lo < hi);
  return lo + (hi - lo) * uniform01();
}

double Rng::log_uniform_real(double lo, double hi) {
  FEDCONS_EXPECTS(0 < lo && lo < hi);
  return std::exp(uniform_real(std::log(lo), std::log(hi)));
}

bool Rng::bernoulli(double p) {
  FEDCONS_EXPECTS(p >= 0.0 && p <= 1.0);
  return uniform01() < p;
}

Rng Rng::split() { return Rng(next_u64() ^ 0xd2b74407b1ce6e93ull); }

}  // namespace fedcons
