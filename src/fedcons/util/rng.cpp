#include "fedcons/util/rng.h"

namespace fedcons {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

namespace detail {

void xoshiro_seed(std::uint64_t seed, std::uint64_t s[4]) noexcept {
  std::uint64_t sm = seed;
  for (int i = 0; i < 4; ++i) s[i] = splitmix64(sm);
  // Guard against the (astronomically unlikely) all-zero state.
  if ((s[0] | s[1] | s[2] | s[3]) == 0) s[0] = 1;
}

}  // namespace detail

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::split() { return Rng(next_u64() ^ 0xd2b74407b1ce6e93ull); }

}  // namespace fedcons
