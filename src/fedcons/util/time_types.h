// Integer time arithmetic for real-time schedulability analysis.
//
// All temporal quantities in the library — worst-case execution times (WCETs),
// relative deadlines, periods, absolute instants in schedules and simulations —
// are expressed in integral "ticks" (the paper's model has e_v ∈ ℕ; rational
// parameters can always be scaled to integers). Keeping time integral makes
// every schedulability *decision* exact: there are no floating-point acceptance
// flips at test boundaries.
//
// The checked_* helpers detect signed overflow (which would otherwise be UB)
// and throw, so pathological generator parameters fail loudly instead of
// producing silently wrong analysis results.
#pragma once

#include <cstdint>
#include <limits>

#include "fedcons/util/check.h"

namespace fedcons {

/// Integral time in ticks. Non-negative for durations; instants may use the
/// full signed range in intermediate expressions.
using Time = std::int64_t;

/// Sentinel for "unbounded / no such instant" (e.g. MINPROCS returning ∞).
inline constexpr Time kTimeInfinity = std::numeric_limits<Time>::max();

/// Overflow-checked addition. Throws ContractViolation on signed overflow.
[[nodiscard]] inline Time checked_add(Time a, Time b) {
  Time r{};
  FEDCONS_EXPECTS_MSG(!__builtin_add_overflow(a, b, &r),
                      "Time addition overflow");
  return r;
}

/// Overflow-checked multiplication. Throws ContractViolation on overflow.
[[nodiscard]] inline Time checked_mul(Time a, Time b) {
  Time r{};
  FEDCONS_EXPECTS_MSG(!__builtin_mul_overflow(a, b, &r),
                      "Time multiplication overflow");
  return r;
}

/// Saturating addition for non-negative demand quantities: a sum that would
/// exceed the representable range (or involves kTimeInfinity) collapses to
/// kTimeInfinity instead of wrapping. Demand accumulation uses this so that
/// pathological parameters yield "unschedulable by saturation" — an infinite
/// demand fails every Σ DBF(t) ≤ t comparison — never a wrapped, silently
/// wrong verdict. Preconditions: a >= 0, b >= 0.
[[nodiscard]] inline Time saturating_add(Time a, Time b) {
  FEDCONS_EXPECTS(a >= 0 && b >= 0);
  if (a == kTimeInfinity || b == kTimeInfinity) return kTimeInfinity;
  Time r{};
  if (__builtin_add_overflow(a, b, &r)) return kTimeInfinity;
  return r;
}

/// Saturating multiplication (same convention as saturating_add).
/// Preconditions: a >= 0, b >= 0.
[[nodiscard]] inline Time saturating_mul(Time a, Time b) {
  FEDCONS_EXPECTS(a >= 0 && b >= 0);
  if ((a == kTimeInfinity && b != 0) || (b == kTimeInfinity && a != 0)) {
    return kTimeInfinity;
  }
  Time r{};
  if (__builtin_mul_overflow(a, b, &r)) return kTimeInfinity;
  return r;
}

/// Floor division for positive denominator. Remainder-based so the
/// intermediate never overflows, whatever the magnitudes: the textbook
/// (a + b - 1) adjustment wraps for operands near the int64 edge, which once
/// let busy_period collapse a huge-parameter testing bound to 0 and certify
/// an unschedulable set.
[[nodiscard]] constexpr Time floor_div(Time a, Time b) {
  return a / b - static_cast<Time>(a % b != 0 && a < 0);
}

/// Ceiling division for positive denominator (overflow-free, see floor_div).
[[nodiscard]] constexpr Time ceil_div(Time a, Time b) {
  return a / b + static_cast<Time>(a % b != 0 && a > 0);
}

/// Greatest common divisor (non-negative result; gcd(0, 0) == 0).
[[nodiscard]] constexpr Time gcd_time(Time a, Time b) {
  if (a < 0) a = -a;
  if (b < 0) b = -b;
  while (b != 0) {
    Time t = a % b;
    a = b;
    b = t;
  }
  return a;
}

/// Least common multiple with overflow checking.
[[nodiscard]] inline Time checked_lcm(Time a, Time b) {
  if (a == 0 || b == 0) return 0;
  Time g = gcd_time(a, b);
  return checked_mul(a / g, b);
}

}  // namespace fedcons
