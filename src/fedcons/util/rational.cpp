#include "fedcons/util/rational.h"

#include <utility>

namespace fedcons {

BigRational::BigRational(std::int64_t num, std::int64_t den) {
  FEDCONS_EXPECTS_MSG(den != 0, "rational with zero denominator");
  Time g = gcd_time(num, den);
  if (g > 1) {
    num /= g;
    den /= g;
  }
  if (den < 0) {
    num = -num;
    den = -den;
  }
  num_ = BigInt(num);
  den_ = BigInt(den);
}

BigRational::BigRational(BigInt num, BigInt den)
    : num_(std::move(num)), den_(std::move(den)) {
  FEDCONS_EXPECTS_MSG(!den_.is_zero(), "rational with zero denominator");
  normalize_sign();
  reduce_fast();
}

void BigRational::normalize_sign() {
  if (den_.is_negative()) {
    den_ = -den_;
    num_ = -num_;
  }
}

void BigRational::reduce_fast() {
  if (num_.fits_int64() && den_.fits_int64()) {
    std::int64_t n = num_.to_int64();
    std::int64_t d = den_.to_int64();
    Time g = gcd_time(n, d);
    if (g > 1) {
      num_ = BigInt(n / g);
      den_ = BigInt(d / g);
    }
  }
}

bool BigRational::is_integer() const {
  if (num_.is_zero()) return true;
  // value is integer iff floor(value)*den == num; compute via floor().
  BigRational f(BigInt(floor()), BigInt(1));
  return f == *this;
}

std::int64_t BigRational::floor() const {
  // Find q = floor(num/den) by scanning candidate via double estimate then
  // exact correction. den_ > 0.
  double est = to_double();
  // Clamp the estimate into a representable starting point; the exact
  // correction loop below establishes q*den <= num < (q+1)*den regardless.
  constexpr double kLim = 9.0e18;
  if (!(est > -kLim)) est = -kLim;
  if (!(est < kLim)) est = kLim;
  auto q = static_cast<std::int64_t>(est);
  // Correct q so that q*den <= num < (q+1)*den, stepping at most a few times
  // (double estimate of a quantity built from int64 components is close).
  auto le = [&](std::int64_t k) { return BigInt(k) * den_ <= num_; };
  while (!le(q)) --q;
  while (le(q + 1)) ++q;
  return q;
}

std::int64_t BigRational::ceil() const {
  std::int64_t f = floor();
  BigRational ff(BigInt(f), BigInt(1));
  return (ff == *this) ? f : f + 1;
}

BigRational BigRational::operator-() const {
  BigRational r = *this;
  r.num_ = -r.num_;
  return r;
}

BigRational BigRational::operator+(const BigRational& rhs) const {
  return BigRational(num_ * rhs.den_ + rhs.num_ * den_, den_ * rhs.den_);
}

BigRational BigRational::operator-(const BigRational& rhs) const {
  return BigRational(num_ * rhs.den_ - rhs.num_ * den_, den_ * rhs.den_);
}

BigRational BigRational::operator*(const BigRational& rhs) const {
  return BigRational(num_ * rhs.num_, den_ * rhs.den_);
}

BigRational BigRational::operator/(const BigRational& rhs) const {
  FEDCONS_EXPECTS_MSG(!rhs.is_zero(), "rational division by zero");
  return BigRational(num_ * rhs.den_, den_ * rhs.num_);
}

bool BigRational::operator==(const BigRational& rhs) const {
  return num_ * rhs.den_ == rhs.num_ * den_;
}

bool BigRational::operator<(const BigRational& rhs) const {
  // Denominators are positive, so cross-multiplication preserves order.
  return num_ * rhs.den_ < rhs.num_ * den_;
}

std::string BigRational::to_string() const {
  if (den_ == BigInt(1)) return num_.to_string();
  return num_.to_string() + "/" + den_.to_string();
}

}  // namespace fedcons
