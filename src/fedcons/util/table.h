// Console table and CSV rendering for experiment reports.
//
// Every bench binary prints the rows it regenerates both as an aligned
// console table (human inspection, EXPERIMENTS.md) and optionally as CSV
// (machine post-processing / plotting).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace fedcons {

/// Column-aligned text table. Cells are strings; numeric formatting is the
/// caller's responsibility (see fmt_* helpers below).
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a data row. Precondition: row.size() == header.size().
  void add_row(std::vector<std::string> row);

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t num_cols() const noexcept {
    return header_.size();
  }

  /// Render with padded columns, a header underline, and right-aligned
  /// numeric-looking cells.
  void print(std::ostream& os) const;

  /// Render as RFC-4180-ish CSV (quotes cells containing comma/quote/newline).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision decimal rendering (no locale surprises).
[[nodiscard]] std::string fmt_double(double v, int precision = 3);

/// Integer with no grouping.
[[nodiscard]] std::string fmt_int(long long v);

/// Ratio k/n rendered as "0.842" (or "n/a" when n == 0).
[[nodiscard]] std::string fmt_ratio(std::size_t k, std::size_t n,
                                    int precision = 3);

}  // namespace fedcons
