#include "fedcons/util/log.h"

#include <atomic>
#include <iostream>
#include <mutex>

namespace fedcons {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

/// Serializes log_emit writers. Leaked so logging from static destructors of
/// other translation units stays safe.
std::mutex& log_mutex() {
  static std::mutex* m = new std::mutex;
  return *m;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

namespace detail {
void log_emit(LogLevel level, const std::string& msg) {
  // Compose the full line first, then issue ONE stream write under the
  // mutex: lines from concurrent threads never tear mid-line.
  std::string line;
  line.reserve(msg.size() + 9);
  line += '[';
  line += level_name(level);
  line += "] ";
  line += msg;
  line += '\n';
  std::lock_guard<std::mutex> lock(log_mutex());
  std::cerr << line;
}
}  // namespace detail

}  // namespace fedcons
