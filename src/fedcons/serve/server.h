// fedcons_serve daemon core: sockets in front, AdmissionSessions behind.
//
// Thread shape (fixed, independent of load):
//
//   acceptor ──► one reader per connection ──► BoundedQueue ──► dispatcher
//                                                                  │
//                                                      BatchRunner workers
//
// Readers decode frames and parse requests; parsed requests enter the ONE
// bounded queue. When it is full the reader answers RETRY_AFTER on the spot
// — the server's memory is bounded by (queue depth + per-connection decode
// buffers) no matter how fast clients push. The dispatcher batches
// dynamically: it blocks for the first request, then keeps collecting until
// either max_batch requests are in hand or batch_timeout_us has passed
// since the first one — under light load a request waits for nobody, under
// heavy load batches fill instantly and the window never matters.
//
// A batch is grouped by (connection, session); each group runs as one
// BatchRunner work item. Per-session FIFO order is preserved (queue order
// within a group), and because a session appears in exactly one group per
// batch, AdmissionSession's single-threaded contract holds even though
// *which* worker runs a given session changes batch to batch — sessions
// must not cache thread identity (see the contract note in
// online/admission_session.h). Each group's responses are encoded into one
// buffer; after the fan-out joins, all of a connection's group buffers are
// concatenated and written with ONE send() per connection per batch — each
// send() to a blocked client costs a wakeup, so response syscalls amortize
// with batch size exactly like the analysis fan-out does.
//
// Shutdown: request_shutdown() is async-signal-safe (atomic flag + one
// write() to a wake pipe). The acceptor then stops accepting, shuts down
// every connection for reading, joins readers, and closes the queue; the
// dispatcher drains what was admitted, answers it, and exits. Nothing
// accepted is dropped.
//
// Observability plane (all of it strictly observational — verdicts,
// PerfCounters, and response bytes are bit-identical with every knob on or
// off unless a request explicitly asks for the stage echo):
//
//  * Request-scoped tracing: every request gets a trace id at enqueue; when
//    span tracing is enabled and trace_sample = N > 0, every Nth request is
//    SAMPLED — its enqueue/dequeue/batch-seal/handle/write boundaries are
//    stamped on the obs trace clock and emitted as "serve"-category spans
//    (queue -> batch -> handle -> write) all carrying the trace id as a
//    span arg, so one request's wall-clock path through the pipeline reads
//    as one chain in Perfetto. Unsampled requests pay one relaxed
//    fetch_add and a branch — no clock reads.
//  * Stage echo: a request carrying "stages": 1 gets the same boundary
//    stamps regardless of sampling, echoed back as stage_*_us response
//    fields (opt-in per request, so default response bytes never change).
//  * Time-series stats: a snapshot thread pushes a scalar SeriesSample into
//    a bounded obs::SnapshotRing every stats_interval_ms; the stats_series
//    op serves the tail. Memory is bounded by stats_ring samples.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "fedcons/obs/metrics.h"
#include "fedcons/serve/protocol.h"

namespace fedcons {
namespace serve {

struct ServerConfig {
  /// Exactly one listener: AF_UNIX when unix_path is non-empty, else TCP on
  /// 127.0.0.1:tcp_port (0 = kernel-assigned; read it back via port()).
  std::string unix_path;
  int tcp_port = 0;

  int threads = 1;            ///< BatchRunner workers (1 = dispatcher inline)
  int max_batch = 64;         ///< dispatcher batch cap
  int batch_timeout_us = 200; ///< collection window after the first request
  int queue_depth = 1024;     ///< bounded queue capacity (backpressure knob)
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;

  /// Trace sampling period: with span tracing enabled, every Nth request
  /// (by trace id) emits the queue/batch/handle/write span chain. 0 turns
  /// request-scoped spans off even when tracing is otherwise on.
  int trace_sample = 0;
  /// Period of the stats snapshot thread feeding the stats_series ring.
  /// 0 disables the thread (stats_series then answers with count = 0).
  int stats_interval_ms = 250;
  /// Snapshot ring capacity — bounds series memory at stats_ring samples.
  int stats_ring = 256;
};

/// Version of the stats / stats_series / prometheus response schemas; bumped
/// whenever a field is renamed or removed (additions keep the version).
constexpr int kStatsSchemaVersion = 1;

/// One periodic scalar sample of the server's state — what the stats_series
/// op serves. Flat scalars only (the wire dialect nests one level), sized so
/// the ring's memory bound is trivial: stats_ring * sizeof(SeriesSample).
struct SeriesSample {
  std::uint64_t snapshot_monotonic_us = 0;  ///< machine-wide monotonic clock
  std::uint64_t uptime_us = 0;
  std::uint64_t requests_enqueued = 0;  ///< cumulative, as of this sample
  std::uint64_t requests_shed = 0;
  std::uint64_t batches = 0;
  std::uint64_t handle_us = 0;
  std::uint64_t write_us = 0;
  std::uint64_t queue_depth = 0;  ///< instantaneous
  std::uint64_t latency_count = 0;
  std::uint64_t latency_p50 = 0;  ///< bucket upper bound (<= 2x estimate)
  std::uint64_t latency_p99 = 0;

  /// One flat mini_json object, deterministic key order (the "sN" members
  /// of a stats_series response).
  [[nodiscard]] std::string to_json() const;
};

/// Counters + distributions scraped by the "stats" op and by tests.
struct ServerStats {
  std::uint64_t uptime_us = 0;  ///< daemon start -> this snapshot
  /// Machine-wide monotonic clock (CLOCK_MONOTONIC) at snapshot time, in
  /// microseconds — comparable across processes on one box, which is how
  /// loadgen windows series samples to its own measurement interval.
  std::uint64_t snapshot_monotonic_us = 0;
  std::uint64_t connections_accepted = 0;
  std::uint64_t requests_enqueued = 0;
  std::uint64_t requests_shed = 0;   ///< RETRY_AFTER sent (queue full)
  std::uint64_t requests_sampled = 0;  ///< requests picked by trace_sample
  std::uint64_t parse_errors = 0;    ///< recoverable bad requests
  std::uint64_t framing_errors = 0;  ///< unrecoverable; connection closed
  std::uint64_t batches = 0;
  std::uint64_t queue_depth = 0;  ///< instantaneous, at snapshot time
  std::uint64_t queue_high_watermark = 0;
  /// CPU accounting (busy time, not wall time): where a verdict's cost goes.
  /// reader_busy_us covers decode+parse+enqueue; handle_us covers session
  /// events + response encoding; write_us the response send() calls;
  /// dispatch_busy_us the whole dispatcher batch (grouping + handle + write).
  std::uint64_t reader_busy_us = 0;
  std::uint64_t handle_us = 0;
  std::uint64_t write_us = 0;
  std::uint64_t dispatch_busy_us = 0;
  obs::Histogram batch_size;
  obs::Histogram latency_us;  ///< enqueue -> response encoded, per request
  obs::Histogram admit_latency_us;    ///< latency_us restricted to admit/swap
  obs::Histogram release_latency_us;  ///< latency_us restricted to release

  /// Deterministic key order; histograms via obs::histogram_json. Carries
  /// "schema_version" kStatsSchemaVersion (see the protocol.h stats grammar).
  [[nodiscard]] std::string to_json() const;

  /// The same snapshot in Prometheus text exposition 0.0.4: counters as
  /// *_total, gauges for instantaneous values, histograms with cumulative
  /// le buckets (le = 2^b - 1 per obs::Histogram bucket geometry). Latency
  /// histograms share one family, fedcons_serve_request_latency_us, labeled
  /// op="all"/"admit"/"release". Deterministic output for a given snapshot.
  [[nodiscard]] std::string to_prometheus() const;
};

class Server {
 public:
  explicit Server(const ServerConfig& config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen + spawn the acceptor and dispatcher. Throws
  /// ContractViolation on socket errors. On return the listener accepts.
  void start();

  /// Bound TCP port (after start(); 0 for unix-socket servers).
  [[nodiscard]] int port() const noexcept;

  /// Async-signal-safe shutdown trigger (also reachable via the protocol's
  /// "shutdown" op). Idempotent.
  void request_shutdown() noexcept;

  /// Block until the drain completes (all accepted requests answered).
  void wait();

  [[nodiscard]] bool shutdown_requested() const noexcept;

  /// Consistent snapshot of the counters (also what the "stats" op emits).
  [[nodiscard]] ServerStats stats_snapshot() const;

  /// Newest `last` samples from the periodic snapshot ring, oldest first
  /// (0 = everything retained). What the "stats_series" op serves.
  [[nodiscard]] std::vector<SeriesSample> stats_series(
      std::size_t last = 0) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace serve
}  // namespace fedcons
