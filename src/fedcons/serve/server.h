// fedcons_serve daemon core: sockets in front, AdmissionSessions behind.
//
// Thread shape (fixed, independent of load):
//
//   acceptor ──► one reader per connection ──► BoundedQueue ──► dispatcher
//                                                                  │
//                                                      BatchRunner workers
//
// Readers decode frames and parse requests; parsed requests enter the ONE
// bounded queue. When it is full the reader answers RETRY_AFTER on the spot
// — the server's memory is bounded by (queue depth + per-connection decode
// buffers) no matter how fast clients push. The dispatcher batches
// dynamically: it blocks for the first request, then keeps collecting until
// either max_batch requests are in hand or batch_timeout_us has passed
// since the first one — under light load a request waits for nobody, under
// heavy load batches fill instantly and the window never matters.
//
// A batch is grouped by (connection, session); each group runs as one
// BatchRunner work item. Per-session FIFO order is preserved (queue order
// within a group), and because a session appears in exactly one group per
// batch, AdmissionSession's single-threaded contract holds even though
// *which* worker runs a given session changes batch to batch — sessions
// must not cache thread identity (see the contract note in
// online/admission_session.h). Each group's responses are encoded into one
// buffer; after the fan-out joins, all of a connection's group buffers are
// concatenated and written with ONE send() per connection per batch — each
// send() to a blocked client costs a wakeup, so response syscalls amortize
// with batch size exactly like the analysis fan-out does.
//
// Shutdown: request_shutdown() is async-signal-safe (atomic flag + one
// write() to a wake pipe). The acceptor then stops accepting, shuts down
// every connection for reading, joins readers, and closes the queue; the
// dispatcher drains what was admitted, answers it, and exits. Nothing
// accepted is dropped.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "fedcons/obs/metrics.h"
#include "fedcons/serve/protocol.h"

namespace fedcons {
namespace serve {

struct ServerConfig {
  /// Exactly one listener: AF_UNIX when unix_path is non-empty, else TCP on
  /// 127.0.0.1:tcp_port (0 = kernel-assigned; read it back via port()).
  std::string unix_path;
  int tcp_port = 0;

  int threads = 1;            ///< BatchRunner workers (1 = dispatcher inline)
  int max_batch = 64;         ///< dispatcher batch cap
  int batch_timeout_us = 200; ///< collection window after the first request
  int queue_depth = 1024;     ///< bounded queue capacity (backpressure knob)
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
};

/// Counters + distributions scraped by the "stats" op and by tests.
struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t requests_enqueued = 0;
  std::uint64_t requests_shed = 0;   ///< RETRY_AFTER sent (queue full)
  std::uint64_t parse_errors = 0;    ///< recoverable bad requests
  std::uint64_t framing_errors = 0;  ///< unrecoverable; connection closed
  std::uint64_t batches = 0;
  std::uint64_t queue_high_watermark = 0;
  /// CPU accounting (busy time, not wall time): where a verdict's cost goes.
  /// reader_busy_us covers decode+parse+enqueue; handle_us covers session
  /// events + response encoding; write_us the response send() calls;
  /// dispatch_busy_us the whole dispatcher batch (grouping + handle + write).
  std::uint64_t reader_busy_us = 0;
  std::uint64_t handle_us = 0;
  std::uint64_t write_us = 0;
  std::uint64_t dispatch_busy_us = 0;
  obs::Histogram batch_size;
  obs::Histogram latency_us;  ///< enqueue -> response encoded, per request

  /// Deterministic key order; histograms via obs::histogram_json.
  [[nodiscard]] std::string to_json() const;
};

class Server {
 public:
  explicit Server(const ServerConfig& config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen + spawn the acceptor and dispatcher. Throws
  /// ContractViolation on socket errors. On return the listener accepts.
  void start();

  /// Bound TCP port (after start(); 0 for unix-socket servers).
  [[nodiscard]] int port() const noexcept;

  /// Async-signal-safe shutdown trigger (also reachable via the protocol's
  /// "shutdown" op). Idempotent.
  void request_shutdown() noexcept;

  /// Block until the drain completes (all accepted requests answered).
  void wait();

  [[nodiscard]] bool shutdown_requested() const noexcept;

  /// Consistent snapshot of the counters (also what the "stats" op emits).
  [[nodiscard]] ServerStats stats_snapshot() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace serve
}  // namespace fedcons
