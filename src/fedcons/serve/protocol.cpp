#include "fedcons/serve/protocol.h"

#include <cstring>
#include <sstream>

#include "fedcons/util/mini_json.h"

namespace fedcons {
namespace serve {

std::string encode_frame(std::string_view payload) {
  std::string out = std::to_string(payload.size());
  out += '\n';
  out += payload;
  out += '\n';
  return out;
}

bool FrameDecoder::next(std::string& payload) {
  // Compact once the consumed prefix dominates, so a long-lived connection
  // does not grow its buffer without bound.
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  const std::size_t nl = buf_.find('\n', pos_);
  if (nl == std::string::npos) {
    // No terminator yet: a length prefix longer than the cap's digit count
    // can never become valid — fail early instead of buffering garbage.
    if (buf_.size() - pos_ > 20) {
      throw ParseError(1, "serve frame: length prefix is not terminated");
    }
    return false;
  }
  const std::string len_token = buf_.substr(pos_, nl - pos_);
  std::uint64_t len = 0;
  try {
    len = mini_json_uint(len_token);
  } catch (const ParseError&) {
    throw ParseError(1, "serve frame: bad length prefix '" + len_token + "'");
  }
  if (len > max_frame_bytes_) {
    throw ParseError(1, "serve frame: length " + len_token +
                            " exceeds the " +
                            std::to_string(max_frame_bytes_) + "-byte cap");
  }
  // Frame body: payload plus its trailing newline.
  if (buf_.size() - (nl + 1) < len + 1) return false;
  payload.assign(buf_, nl + 1, len);
  if (buf_[nl + 1 + len] != '\n') {
    throw ParseError(1, "serve frame: payload is not newline-terminated "
                        "(length prefix desync)");
  }
  pos_ = nl + 1 + len + 1;
  return true;
}

const char* to_string(ServeOp op) noexcept {
  switch (op) {
    case ServeOp::kOpen: return "open";
    case ServeOp::kRegister: return "register";
    case ServeOp::kAdmit: return "admit";
    case ServeOp::kRelease: return "release";
    case ServeOp::kSwap: return "swap";
    case ServeOp::kQuery: return "query";
    case ServeOp::kStats: return "stats";
    case ServeOp::kStatsSeries: return "stats_series";
    case ServeOp::kPing: return "ping";
    case ServeOp::kStall: return "stall";
    case ServeOp::kShutdown: return "shutdown";
  }
  return "?";
}

const char* to_string(ServeStatus status) noexcept {
  switch (status) {
    case ServeStatus::kOk: return "ok";
    case ServeStatus::kError: return "error";
    case ServeStatus::kRetryAfter: return "retry_after";
  }
  return "?";
}

std::string join_ids(const std::vector<SessionTaskId>& ids) {
  std::string out;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i != 0) out += ' ';
    out += std::to_string(ids[i]);
  }
  return out;
}

std::vector<SessionTaskId> split_ids(const std::string& raw) {
  std::vector<SessionTaskId> out;
  std::istringstream in(raw);
  std::string token;
  while (in >> token) {
    out.push_back(static_cast<SessionTaskId>(mini_json_uint(token)));
  }
  return out;
}

namespace {

using Fields = std::map<std::string, std::string>;

std::uint64_t uint_field(const Fields& fields, const std::string& key) {
  return mini_json_uint(require_field(fields, key));
}

bool has_field(const Fields& fields, const std::string& key) {
  return fields.count(key) != 0;
}

/// admit/swap carry the payload either inline or by handle, never both.
void parse_system_or_content(const Fields& fields, ServeRequest& req) {
  const bool has_system = has_field(fields, "system");
  const bool has_content = has_field(fields, "content");
  if (has_system == has_content) {
    throw ParseError(1, std::string("serve request: ") + to_string(req.op) +
                            " needs exactly one of \"system\"/\"content\"");
  }
  if (has_system) {
    req.system = fields.at("system");
  } else {
    req.has_content = true;
    req.content = uint_field(fields, "content");
  }
}

}  // namespace

ServeRequest parse_serve_request(const std::string& payload) {
  const Fields fields = parse_mini_json(payload);
  ServeRequest req;
  const std::string& op = require_field(fields, "op");
  req.seq = uint_field(fields, "seq");
  if (op == "open") {
    req.op = ServeOp::kOpen;
    const std::int64_t m = mini_json_int(require_field(fields, "m"));
    if (m < 1 || m > 1 << 20) {
      throw ParseError(1, "serve request: open needs 1 <= m <= 2^20");
    }
    req.m = static_cast<int>(m);
  } else if (op == "register") {
    req.op = ServeOp::kRegister;
    req.session = uint_field(fields, "session");
    req.system = require_field(fields, "system");
  } else if (op == "admit") {
    req.op = ServeOp::kAdmit;
    req.session = uint_field(fields, "session");
    parse_system_or_content(fields, req);
  } else if (op == "release") {
    req.op = ServeOp::kRelease;
    req.session = uint_field(fields, "session");
    req.release_ids.push_back(
        static_cast<SessionTaskId>(uint_field(fields, "id")));
  } else if (op == "swap") {
    req.op = ServeOp::kSwap;
    req.session = uint_field(fields, "session");
    req.release_ids = split_ids(require_field(fields, "releases"));
    parse_system_or_content(fields, req);
  } else if (op == "query") {
    req.op = ServeOp::kQuery;
    req.session = uint_field(fields, "session");
  } else if (op == "stats") {
    req.op = ServeOp::kStats;
    if (has_field(fields, "format")) {
      const std::string& format = fields.at("format");
      if (format != "prometheus") {
        throw ParseError(1, "serve request: unknown stats format '" +
                                format + "'");
      }
      req.prometheus = true;
    }
  } else if (op == "stats_series") {
    req.op = ServeOp::kStatsSeries;
    if (has_field(fields, "last")) {
      req.series_last = uint_field(fields, "last");
    }
  } else if (op == "ping") {
    req.op = ServeOp::kPing;
  } else if (op == "stall") {
    req.op = ServeOp::kStall;
    req.stall_us = uint_field(fields, "us");
  } else if (op == "shutdown") {
    req.op = ServeOp::kShutdown;
  } else {
    throw ParseError(1, "serve request: unknown op '" + op + "'");
  }
  if (has_field(fields, "stages")) {
    req.echo_stages = uint_field(fields, "stages") != 0;
  }
  return req;
}

std::string encode_serve_request(const ServeRequest& req) {
  std::string out = "{\"op\": \"";
  out += to_string(req.op);
  out += "\", \"seq\": " + std::to_string(req.seq);
  switch (req.op) {
    case ServeOp::kOpen:
      out += ", \"m\": " + std::to_string(req.m);
      break;
    case ServeOp::kRegister:
      out += ", \"session\": " + std::to_string(req.session);
      out += ", \"system\": \"" + json_escape(req.system) + "\"";
      break;
    case ServeOp::kAdmit:
    case ServeOp::kSwap:
      out += ", \"session\": " + std::to_string(req.session);
      if (req.op == ServeOp::kSwap) {
        out += ", \"releases\": \"" + join_ids(req.release_ids) + "\"";
      }
      if (req.has_content) {
        out += ", \"content\": " + std::to_string(req.content);
      } else {
        out += ", \"system\": \"" + json_escape(req.system) + "\"";
      }
      break;
    case ServeOp::kRelease:
      out += ", \"session\": " + std::to_string(req.session);
      out += ", \"id\": " + std::to_string(req.release_ids.empty()
                                               ? 0
                                               : req.release_ids[0]);
      break;
    case ServeOp::kQuery:
      out += ", \"session\": " + std::to_string(req.session);
      break;
    case ServeOp::kStall:
      out += ", \"us\": " + std::to_string(req.stall_us);
      break;
    case ServeOp::kStats:
      if (req.prometheus) out += ", \"format\": \"prometheus\"";
      break;
    case ServeOp::kStatsSeries:
      if (req.series_last != 0) {
        out += ", \"last\": " + std::to_string(req.series_last);
      }
      break;
    case ServeOp::kPing:
    case ServeOp::kShutdown:
      break;
  }
  if (req.echo_stages) out += ", \"stages\": 1";
  out += "}";
  return out;
}

std::string encode_serve_response(const ServeResponse& resp) {
  std::string out = "{\"status\": \"";
  out += to_string(resp.status);
  out += "\", \"seq\": " + std::to_string(resp.seq);
  if (resp.status == ServeStatus::kError) {
    out += ", \"error\": \"" + json_escape(resp.error) + "\"";
  }
  if (resp.has_session) {
    out += ", \"session\": " + std::to_string(resp.session);
  }
  if (resp.has_content) {
    out += ", \"content\": " + std::to_string(resp.content);
  }
  if (resp.has_verdict) {
    out += ", \"applied\": ";
    out += resp.applied ? '1' : '0';
    out += ", \"schedulable\": ";
    out += resp.schedulable ? '1' : '0';
    out += ", \"reject\": \"" + json_escape(resp.reject) + "\"";
    out += ", \"task_ids\": \"" + join_ids(resp.task_ids) + "\"";
    out += ", \"residents\": " + std::to_string(resp.residents);
  }
  if (resp.has_stages) {
    // "stage_" prefix: a stats response already owns the bare handle_us key
    // (the cumulative busy counter), and one payload must never carry two
    // meanings for one name.
    out += ", \"stage_queue_us\": " + std::to_string(resp.stage_queue_us);
    out += ", \"stage_batch_us\": " + std::to_string(resp.stage_batch_us);
    out += ", \"stage_handle_us\": " + std::to_string(resp.stage_handle_us);
  }
  out += resp.extra;
  out += "}";
  return out;
}

ServeResponse parse_serve_response(const std::string& payload) {
  const Fields fields = parse_mini_json(payload);
  ServeResponse resp;
  resp.raw = payload;
  const std::string& status = require_field(fields, "status");
  if (status == "ok") {
    resp.status = ServeStatus::kOk;
  } else if (status == "error") {
    resp.status = ServeStatus::kError;
    resp.error = require_field(fields, "error");
  } else if (status == "retry_after") {
    resp.status = ServeStatus::kRetryAfter;
  } else {
    throw ParseError(1, "serve response: unknown status '" + status + "'");
  }
  resp.seq = uint_field(fields, "seq");
  if (has_field(fields, "session")) {
    resp.has_session = true;
    resp.session = uint_field(fields, "session");
  }
  if (has_field(fields, "content")) {
    resp.has_content = true;
    resp.content = uint_field(fields, "content");
  }
  if (has_field(fields, "applied")) {
    resp.has_verdict = true;
    resp.applied = uint_field(fields, "applied") != 0;
    resp.schedulable = uint_field(fields, "schedulable") != 0;
    resp.reject = require_field(fields, "reject");
    resp.task_ids = split_ids(require_field(fields, "task_ids"));
    resp.residents = uint_field(fields, "residents");
  }
  if (has_field(fields, "stage_queue_us")) {
    resp.has_stages = true;
    resp.stage_queue_us = uint_field(fields, "stage_queue_us");
    resp.stage_batch_us = uint_field(fields, "stage_batch_us");
    resp.stage_handle_us = uint_field(fields, "stage_handle_us");
  }
  return resp;
}

}  // namespace serve
}  // namespace fedcons
