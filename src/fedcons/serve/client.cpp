#include "fedcons/serve/client.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "fedcons/util/check.h"

namespace fedcons {
namespace serve {

namespace {

/// Retry a connect thunk until it yields a socket or the deadline passes;
/// covers the window between daemon spawn and listen().
int connect_with_retry(int timeout_ms, int (*attempt)(const void*),
                       const void* ctx) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const int fd = attempt(ctx);
    if (fd >= 0) return fd;
    if (std::chrono::steady_clock::now() >= deadline) return -1;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

}  // namespace

ServeClient ServeClient::connect_unix(const std::string& path,
                                      int timeout_ms) {
  const auto attempt = [](const void* ctx) -> int {
    const auto& p = *static_cast<const std::string*>(ctx);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (p.size() >= sizeof(addr.sun_path)) return -1;
    std::memcpy(addr.sun_path, p.c_str(), p.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return fd;
    }
    ::close(fd);
    return -1;
  };
  const int fd = connect_with_retry(timeout_ms, attempt, &path);
  FEDCONS_EXPECTS_MSG(fd >= 0, "serve client: cannot connect to " + path);
  return ServeClient(fd);
}

ServeClient ServeClient::connect_tcp(int port, int timeout_ms) {
  const auto attempt = [](const void* ctx) -> int {
    const int port = *static_cast<const int*>(ctx);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return fd;
    }
    ::close(fd);
    return -1;
  };
  const int fd = connect_with_retry(timeout_ms, attempt, &port);
  FEDCONS_EXPECTS_MSG(
      fd >= 0, "serve client: cannot connect to 127.0.0.1:" +
                   std::to_string(port));
  return ServeClient(fd);
}

ServeClient::ServeClient(ServeClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      decoder_(std::move(other.decoder_)) {}

ServeClient& ServeClient::operator=(ServeClient&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    decoder_ = std::move(other.decoder_);
  }
  return *this;
}

ServeClient::~ServeClient() {
  if (fd_ >= 0) ::close(fd_);
}

void ServeClient::send(const ServeRequest& req) {
  send_bytes(encode_frame(encode_serve_request(req)));
}

void ServeClient::send_bytes(std::string_view bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    FEDCONS_EXPECTS_MSG(n > 0, "serve client: send failed: " +
                                   std::string(std::strerror(errno)));
    off += static_cast<std::size_t>(n);
  }
}

bool ServeClient::try_recv(ServeResponse& out) {
  std::string payload;
  if (!decoder_.next(payload)) return false;
  out = parse_serve_response(payload);
  return true;
}

ServeResponse ServeClient::recv() {
  std::string payload;
  while (!decoder_.next(payload)) {
    char buf[65536];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    FEDCONS_EXPECTS_MSG(n > 0,
                        "serve client: connection closed by server");
    decoder_.feed(buf, static_cast<std::size_t>(n));
  }
  return parse_serve_response(payload);
}

ServeResponse ServeClient::call(const ServeRequest& req) {
  send(req);
  return recv();
}

void ServeClient::shutdown_write() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

}  // namespace serve
}  // namespace fedcons
