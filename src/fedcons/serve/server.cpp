#include "fedcons/serve/server.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <unordered_map>

#include "fedcons/core/io.h"
#include "fedcons/engine/batch_runner.h"
#include "fedcons/obs/prometheus.h"
#include "fedcons/obs/snapshot_ring.h"
#include "fedcons/obs/span_tracer.h"
#include "fedcons/online/admission_session.h"
#include "fedcons/serve/bounded_queue.h"
#include "fedcons/util/check.h"
#include "fedcons/util/mini_json.h"

namespace fedcons {
namespace serve {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t us_between(Clock::time_point a, Clock::time_point b) noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(b - a).count());
}

/// Machine-wide monotonic clock in microseconds. On Linux, steady_clock is
/// CLOCK_MONOTONIC, whose epoch is shared by every process on the box — so
/// a client can window the daemon's series samples against its own steady
/// clock (how loadgen drops warmup-time samples from its report).
std::uint64_t monotonic_us_now() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          Clock::now().time_since_epoch())
          .count());
}

/// Trace-clock ns interval -> whole microseconds (stage echo fields).
std::uint64_t ns_delta_us(std::int64_t a, std::int64_t b) noexcept {
  return b > a ? static_cast<std::uint64_t>((b - a) / 1000) : 0;
}

/// Best-effort seq recovery for error responses to unparseable requests, so
/// a pipelining client can still match the error to a request.
std::uint64_t guess_seq(const std::string& payload) noexcept {
  try {
    const auto fields = parse_mini_json(payload);
    const auto it = fields.find("seq");
    if (it != fields.end()) return mini_json_uint(it->second);
  } catch (...) {
  }
  return 0;
}

std::vector<DagTask> parse_embedded_tasks(const std::string& text) {
  const ParseResult parsed = try_parse_task_system(text);
  if (!parsed.ok) {
    throw ParseError(1, "embedded system: " + parsed.error);
  }
  std::vector<DagTask> out;
  out.reserve(parsed.system.size());
  for (const DagTask& t : parsed.system) out.push_back(t);
  return out;
}

/// The diagnostic "stall" op occupies a worker for a bounded time only; a
/// client cannot wedge the dispatcher with a huge value.
constexpr std::uint64_t kMaxStallUs = 2'000'000;

}  // namespace

std::string ServerStats::to_json() const {
  return "{\"schema_version\": " + std::to_string(kStatsSchemaVersion) +
         ", \"uptime_us\": " + std::to_string(uptime_us) +
         ", \"snapshot_monotonic_us\": " +
         std::to_string(snapshot_monotonic_us) +
         ", \"connections_accepted\": " +
         std::to_string(connections_accepted) +
         ", \"requests_enqueued\": " + std::to_string(requests_enqueued) +
         ", \"requests_shed\": " + std::to_string(requests_shed) +
         ", \"requests_sampled\": " + std::to_string(requests_sampled) +
         ", \"parse_errors\": " + std::to_string(parse_errors) +
         ", \"framing_errors\": " + std::to_string(framing_errors) +
         ", \"batches\": " + std::to_string(batches) +
         ", \"queue_depth\": " + std::to_string(queue_depth) +
         ", \"queue_high_watermark\": " +
         std::to_string(queue_high_watermark) +
         ", \"reader_busy_us\": " + std::to_string(reader_busy_us) +
         ", \"handle_us\": " + std::to_string(handle_us) +
         ", \"write_us\": " + std::to_string(write_us) +
         ", \"dispatch_busy_us\": " + std::to_string(dispatch_busy_us) +
         ", \"batch_size\": " + obs::histogram_json(batch_size) +
         ", \"latency_us\": " + obs::histogram_json(latency_us) +
         ", \"admit_latency_us\": " + obs::histogram_json(admit_latency_us) +
         ", \"release_latency_us\": " +
         obs::histogram_json(release_latency_us) + "}";
}

std::string ServerStats::to_prometheus() const {
  obs::PrometheusWriter w;
  w.gauge("fedcons_serve_uptime_us", "Microseconds since the daemon started",
          uptime_us);
  w.counter("fedcons_serve_connections_total", "Connections accepted",
            connections_accepted);
  w.counter("fedcons_serve_requests_total",
            "Requests admitted to the dispatch queue", requests_enqueued);
  w.counter("fedcons_serve_requests_shed_total",
            "Requests answered RETRY_AFTER because the queue was full",
            requests_shed);
  w.counter("fedcons_serve_requests_sampled_total",
            "Requests picked by trace sampling", requests_sampled);
  w.counter("fedcons_serve_parse_errors_total",
            "Recoverable request parse errors", parse_errors);
  w.counter("fedcons_serve_framing_errors_total",
            "Unrecoverable framing errors (connection closed)",
            framing_errors);
  w.counter("fedcons_serve_batches_total", "Dispatcher batches run", batches);
  w.gauge("fedcons_serve_queue_depth", "Requests queued at snapshot time",
          queue_depth);
  w.gauge("fedcons_serve_queue_high_watermark",
          "Highest queue depth ever observed", queue_high_watermark);
  w.counter("fedcons_serve_stage_busy_us_total",
            "Busy microseconds by pipeline stage", reader_busy_us, "stage",
            "reader");
  w.counter("fedcons_serve_stage_busy_us_total",
            "Busy microseconds by pipeline stage", handle_us, "stage",
            "handle");
  w.counter("fedcons_serve_stage_busy_us_total",
            "Busy microseconds by pipeline stage", write_us, "stage",
            "write");
  w.counter("fedcons_serve_stage_busy_us_total",
            "Busy microseconds by pipeline stage", dispatch_busy_us, "stage",
            "dispatch");
  w.histogram("fedcons_serve_batch_size", "Requests per dispatcher batch",
              batch_size);
  w.histogram("fedcons_serve_request_latency_us",
              "Enqueue-to-response-encoded latency by op class", latency_us,
              "op", "all");
  w.histogram("fedcons_serve_request_latency_us",
              "Enqueue-to-response-encoded latency by op class",
              admit_latency_us, "op", "admit");
  w.histogram("fedcons_serve_request_latency_us",
              "Enqueue-to-response-encoded latency by op class",
              release_latency_us, "op", "release");
  return w.str();
}

std::string SeriesSample::to_json() const {
  return "{\"snapshot_monotonic_us\": " +
         std::to_string(snapshot_monotonic_us) +
         ", \"uptime_us\": " + std::to_string(uptime_us) +
         ", \"requests_enqueued\": " + std::to_string(requests_enqueued) +
         ", \"requests_shed\": " + std::to_string(requests_shed) +
         ", \"batches\": " + std::to_string(batches) +
         ", \"handle_us\": " + std::to_string(handle_us) +
         ", \"write_us\": " + std::to_string(write_us) +
         ", \"queue_depth\": " + std::to_string(queue_depth) +
         ", \"latency_count\": " + std::to_string(latency_count) +
         ", \"latency_p50\": " + std::to_string(latency_p50) +
         ", \"latency_p99\": " + std::to_string(latency_p99) + "}";
}

struct Server::Impl {
  // One accepted socket: a reader thread feeding the shared queue, a write
  // mutex serializing response buffers, and the connection-scoped admission
  // state (sessions opened and contents registered over this socket).
  struct Connection {
    explicit Connection(int fd) : fd(fd) {}
    ~Connection() {
      if (fd >= 0) ::close(fd);
    }

    int fd;
    std::mutex write_mu;
    std::atomic<bool> dead{false};
    std::atomic<bool> reader_done{false};
    std::thread reader;

    // Guards only the maps below (find/insert); the session OBJECTS are
    // accessed lock-free under the one-group-per-session batch invariant.
    std::mutex state_mu;
    std::unordered_map<std::uint64_t, std::unique_ptr<AdmissionSession>>
        sessions;
    std::uint64_t next_session = 0;
    std::deque<std::vector<DagTask>> contents;  ///< stable element addresses
  };

  struct Pending {
    std::shared_ptr<Connection> conn;
    ServeRequest req;
    Clock::time_point enqueued;
    // Observability: trace id is always assigned (one relaxed fetch_add);
    // the ns stage stamps are only taken when this request is trace-sampled
    // or asked for the stage echo — the default path reads no extra clocks.
    std::uint64_t trace_id = 0;
    bool sampled = false;
    std::int64_t enq_ns = 0;   ///< parsed + entering the queue
    std::int64_t deq_ns = 0;   ///< popped by the dispatcher
    std::int64_t seal_ns = 0;  ///< batch collection window closed
  };

  explicit Impl(const ServerConfig& config)
      : config(config), queue(static_cast<std::size_t>(config.queue_depth)),
        runner(config.threads),
        series(static_cast<std::size_t>(
            config.stats_ring > 0 ? config.stats_ring : 1)) {}

  ~Impl() {
    request_shutdown();
    join_all();
    if (listen_fd >= 0) ::close(listen_fd);
    if (wake_pipe[0] >= 0) ::close(wake_pipe[0]);
    if (wake_pipe[1] >= 0) ::close(wake_pipe[1]);
    if (!config.unix_path.empty()) ::unlink(config.unix_path.c_str());
  }

  // ---- lifecycle ----------------------------------------------------------

  void start();
  void join_all() {
    if (acceptor.joinable()) acceptor.join();
    if (dispatcher.joinable()) dispatcher.join();
    // The snapshotter stops only after the dispatcher drained, so the ring's
    // final sample can still see the tail of the workload.
    series_stop.store(true, std::memory_order_release);
    series_cv.notify_all();
    if (snapshotter.joinable()) snapshotter.join();
  }

  void request_shutdown() noexcept {
    // Async-signal-safe: one atomic store and one write(2). The flag is
    // stored BEFORE the wake byte, so the acceptor (which drains the pipe
    // and then re-checks the flag) cannot miss the request.
    shutdown_flag.store(true, std::memory_order_release);
    if (wake_pipe[1] >= 0) {
      const char byte = 'x';
      [[maybe_unused]] const ssize_t n = ::write(wake_pipe[1], &byte, 1);
    }
  }

  // ---- socket plumbing ----------------------------------------------------

  void accept_loop();
  void reader_loop(const std::shared_ptr<Connection>& conn);
  void write_frames(Connection& conn, const std::string& bytes);
  void send_response(Connection& conn, const ServeResponse& resp) {
    const std::string bytes = encode_frame(encode_serve_response(resp));
    std::lock_guard<std::mutex> lock(conn.write_mu);
    write_frames(conn, bytes);
  }

  // ---- dispatch -----------------------------------------------------------

  void dispatch_loop();
  [[nodiscard]] ServeResponse handle(Connection& conn,
                                     const ServeRequest& req);

  [[nodiscard]] ServerStats snapshot() const {
    ServerStats s;
    s.uptime_us = us_between(start_time, Clock::now());
    s.snapshot_monotonic_us = monotonic_us_now();
    s.connections_accepted =
        connections_accepted.load(std::memory_order_relaxed);
    s.requests_enqueued = requests_enqueued.load(std::memory_order_relaxed);
    s.requests_shed = requests_shed.load(std::memory_order_relaxed);
    s.requests_sampled = requests_sampled.load(std::memory_order_relaxed);
    s.parse_errors = parse_errors.load(std::memory_order_relaxed);
    s.framing_errors = framing_errors.load(std::memory_order_relaxed);
    s.batches = batches.load(std::memory_order_relaxed);
    s.queue_depth = queue.size();
    s.queue_high_watermark = queue.high_watermark();
    s.reader_busy_us = reader_busy_us.load(std::memory_order_relaxed);
    s.handle_us = handle_us.load(std::memory_order_relaxed);
    s.write_us = write_us.load(std::memory_order_relaxed);
    s.dispatch_busy_us = dispatch_busy_us.load(std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(hist_mu);
      s.batch_size = batch_size_hist;
      s.latency_us = latency_hist;
      s.admit_latency_us = admit_latency_hist;
      s.release_latency_us = release_latency_hist;
    }
    return s;
  }

  [[nodiscard]] SeriesSample make_series_sample() const {
    const ServerStats s = snapshot();
    SeriesSample out;
    out.snapshot_monotonic_us = s.snapshot_monotonic_us;
    out.uptime_us = s.uptime_us;
    out.requests_enqueued = s.requests_enqueued;
    out.requests_shed = s.requests_shed;
    out.batches = s.batches;
    out.handle_us = s.handle_us;
    out.write_us = s.write_us;
    out.queue_depth = s.queue_depth;
    out.latency_count = s.latency_us.count();
    out.latency_p50 = s.latency_us.percentile(50.0);
    out.latency_p99 = s.latency_us.percentile(99.0);
    return out;
  }

  void series_loop() {
    // cv wait_for instead of sleep: request_shutdown() must stay
    // async-signal-safe, so the stop flag is set (and the cv notified) from
    // join_all() on the waiting thread's side — the loop still exits within
    // one interval even if a notification races the wait.
    std::unique_lock<std::mutex> lock(series_mu);
    const auto interval = std::chrono::milliseconds(config.stats_interval_ms);
    while (!series_cv.wait_for(lock, interval, [this] {
      return series_stop.load(std::memory_order_acquire);
    })) {
      lock.unlock();
      series.push(make_series_sample());
      lock.lock();
    }
  }

  ServerConfig config;
  int listen_fd = -1;
  int wake_pipe[2] = {-1, -1};
  int bound_port = 0;

  std::atomic<bool> shutdown_flag{false};
  std::atomic<bool> op_shutdown{false};  ///< set by the "shutdown" op

  BoundedQueue<Pending> queue;
  BatchRunner runner;

  std::thread acceptor;
  std::thread dispatcher;

  std::mutex conns_mu;
  std::vector<std::shared_ptr<Connection>> conns;

  std::atomic<std::uint64_t> connections_accepted{0};
  std::atomic<std::uint64_t> requests_enqueued{0};
  std::atomic<std::uint64_t> requests_shed{0};
  std::atomic<std::uint64_t> requests_sampled{0};
  std::atomic<std::uint64_t> parse_errors{0};
  std::atomic<std::uint64_t> framing_errors{0};
  std::atomic<std::uint64_t> batches{0};
  std::atomic<std::uint64_t> reader_busy_us{0};
  std::atomic<std::uint64_t> handle_us{0};
  std::atomic<std::uint64_t> write_us{0};
  std::atomic<std::uint64_t> dispatch_busy_us{0};
  mutable std::mutex hist_mu;
  obs::Histogram batch_size_hist;
  obs::Histogram latency_hist;
  obs::Histogram admit_latency_hist;
  obs::Histogram release_latency_hist;

  Clock::time_point start_time{};
  std::atomic<std::uint64_t> next_trace_id{0};
  obs::SnapshotRing<SeriesSample> series;
  std::thread snapshotter;
  std::mutex series_mu;
  std::condition_variable series_cv;
  std::atomic<bool> series_stop{false};
};

void Server::Impl::start() {
  FEDCONS_EXPECTS_MSG(::pipe(wake_pipe) == 0, "serve: pipe() failed");
  ::fcntl(wake_pipe[0], F_SETFL, O_NONBLOCK);
  if (!config.unix_path.empty()) {
    listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    FEDCONS_EXPECTS_MSG(listen_fd >= 0, "serve: socket(AF_UNIX) failed");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    FEDCONS_EXPECTS_MSG(config.unix_path.size() < sizeof(addr.sun_path),
                        "serve: unix socket path too long");
    std::memcpy(addr.sun_path, config.unix_path.c_str(),
                config.unix_path.size() + 1);
    ::unlink(config.unix_path.c_str());
    FEDCONS_EXPECTS_MSG(
        ::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) == 0,
        "serve: bind(" + config.unix_path + ") failed: " +
            std::strerror(errno));
  } else {
    listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    FEDCONS_EXPECTS_MSG(listen_fd >= 0, "serve: socket(AF_INET) failed");
    const int one = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(config.tcp_port));
    FEDCONS_EXPECTS_MSG(
        ::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) == 0,
        "serve: bind(127.0.0.1:" + std::to_string(config.tcp_port) +
            ") failed: " + std::strerror(errno));
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    FEDCONS_EXPECTS_MSG(
        ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound),
                      &len) == 0,
        "serve: getsockname failed");
    bound_port = static_cast<int>(ntohs(bound.sin_port));
  }
  FEDCONS_EXPECTS_MSG(::listen(listen_fd, 128) == 0,
                      "serve: listen failed: " + std::string(strerror(errno)));
  start_time = Clock::now();
  dispatcher = std::thread([this] { dispatch_loop(); });
  acceptor = std::thread([this] { accept_loop(); });
  if (config.stats_interval_ms > 0) {
    snapshotter = std::thread([this] { series_loop(); });
  }
}

void Server::Impl::accept_loop() {
  while (!shutdown_flag.load(std::memory_order_acquire)) {
    pollfd fds[2] = {{listen_fd, POLLIN, 0}, {wake_pipe[0], POLLIN, 0}};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents & POLLIN) {
      // Drain reader nudges so the level-triggered pipe goes quiet again.
      char scratch[64];
      while (::read(wake_pipe[0], scratch, sizeof(scratch)) > 0) {
      }
    }
    if (shutdown_flag.load(std::memory_order_acquire)) break;
    if (fds[0].revents & POLLIN) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd >= 0) {
        if (config.unix_path.empty()) {
          const int one = 1;
          ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        }
        auto conn = std::make_shared<Connection>(fd);
        connections_accepted.fetch_add(1, std::memory_order_relaxed);
        conn->reader = std::thread([this, conn] { reader_loop(conn); });
        std::lock_guard<std::mutex> lock(conns_mu);
        conns.push_back(std::move(conn));
      }
    }
    // Reap finished readers; drop connections nothing references anymore
    // (no queued requests, reader exited), so a long-lived daemon does not
    // accumulate dead connection state.
    std::lock_guard<std::mutex> lock(conns_mu);
    for (auto it = conns.begin(); it != conns.end();) {
      if ((*it)->reader_done.load(std::memory_order_acquire)) {
        if ((*it)->reader.joinable()) (*it)->reader.join();
        if (it->use_count() == 1) {
          it = conns.erase(it);
          continue;
        }
      }
      ++it;
    }
  }
  // Drain: no new connections, stop the readers (recv -> 0), join them,
  // then close the queue so the dispatcher finishes what was admitted.
  {
    std::lock_guard<std::mutex> lock(conns_mu);
    for (const auto& conn : conns) ::shutdown(conn->fd, SHUT_RD);
    for (const auto& conn : conns) {
      if (conn->reader.joinable()) conn->reader.join();
    }
  }
  queue.close();
}

void Server::Impl::reader_loop(const std::shared_ptr<Connection>& conn) {
  FrameDecoder decoder(config.max_frame_bytes);
  char buf[65536];
  bool open = true;
  while (open) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    const auto busy_start = Clock::now();
    decoder.feed(buf, static_cast<std::size_t>(n));
    std::string payload;
    try {
      while (decoder.next(payload)) {
        ServeRequest req;
        try {
          req = parse_serve_request(payload);
        } catch (const ParseError& e) {
          parse_errors.fetch_add(1, std::memory_order_relaxed);
          ServeResponse resp;
          resp.status = ServeStatus::kError;
          resp.seq = guess_seq(payload);
          resp.error = e.what();
          send_response(*conn, resp);
          continue;  // recoverable: framing is still in sync
        }
        Pending item{conn, std::move(req), Clock::now()};
        item.trace_id = next_trace_id.fetch_add(1, std::memory_order_relaxed);
        item.sampled = config.trace_sample > 0 && obs::tracing_enabled() &&
                       item.trace_id %
                               static_cast<std::uint64_t>(
                                   config.trace_sample) ==
                           0;
        if (item.sampled) {
          requests_sampled.fetch_add(1, std::memory_order_relaxed);
        }
        if (item.sampled || item.req.echo_stages) {
          item.enq_ns = obs::trace_now_ns();
        }
        const std::uint64_t seq = item.req.seq;
        if (queue.try_push(std::move(item))) {
          requests_enqueued.fetch_add(1, std::memory_order_relaxed);
        } else {
          // Backpressure: the bounded queue is the ONLY buffer; a full
          // queue sheds load here instead of growing memory.
          requests_shed.fetch_add(1, std::memory_order_relaxed);
          ServeResponse resp;
          resp.status = ServeStatus::kRetryAfter;
          resp.seq = seq;
          send_response(*conn, resp);
        }
      }
    } catch (const ParseError& e) {
      // Framing error: the byte stream cannot be resynced.
      framing_errors.fetch_add(1, std::memory_order_relaxed);
      ServeResponse resp;
      resp.status = ServeStatus::kError;
      resp.seq = 0;
      resp.error = e.what();
      send_response(*conn, resp);
      open = false;
    }
    reader_busy_us.fetch_add(us_between(busy_start, Clock::now()),
                             std::memory_order_relaxed);
  }
  conn->reader_done.store(true, std::memory_order_release);
  // Nudge the acceptor so it reaps this reader promptly.
  const char byte = 'x';
  [[maybe_unused]] const ssize_t n = ::write(wake_pipe[1], &byte, 1);
}

void Server::Impl::write_frames(Connection& conn, const std::string& bytes) {
  if (conn.dead.load(std::memory_order_relaxed)) return;
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(conn.fd, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      conn.dead.store(true, std::memory_order_relaxed);
      return;
    }
    off += static_cast<std::size_t>(n);
  }
}

void Server::Impl::dispatch_loop() {
  std::vector<Pending> batch;
  while (true) {
    batch.clear();
    bool any_observed = false;  // any item sampled or stage-echoing
    const auto stamp_dequeue = [&](Pending& item) {
      if (item.sampled || item.req.echo_stages) {
        item.deq_ns = obs::trace_now_ns();
        any_observed = true;
      }
    };
    Pending first;
    if (!queue.pop(first)) break;  // closed and drained
    stamp_dequeue(first);
    batch.push_back(std::move(first));
    // Dynamic batching: collect whatever arrives within the window, up to
    // the cap. Under saturation the queue is never empty and the window
    // never waits; under light load one request costs at most the window.
    const auto deadline = Clock::now() + std::chrono::microseconds(
                                             config.batch_timeout_us);
    while (batch.size() < static_cast<std::size_t>(config.max_batch)) {
      Pending item;
      if (!queue.pop_until(item, deadline)) break;
      stamp_dequeue(item);
      batch.push_back(std::move(item));
    }
    if (any_observed) {
      // Batch seal: the collection window just closed for everyone in it.
      const std::int64_t seal = obs::trace_now_ns();
      for (Pending& item : batch) {
        if (item.sampled || item.req.echo_stages) item.seal_ns = seal;
      }
    }
    batches.fetch_add(1, std::memory_order_relaxed);
    const auto batch_start = Clock::now();

    // Group by (connection, session). One group per session per batch is
    // the invariant that lets sessions stay lock-free: a session is only
    // ever touched by the single worker running its group. Non-session ops
    // go to the connection's control group (key session slot ~0).
    struct Group {
      Connection* conn = nullptr;
      std::vector<std::size_t> items;  ///< batch indices, queue order
      std::string out;                 ///< encoded response frames
      obs::Histogram latency;
      obs::Histogram admit_latency;
      obs::Histogram release_latency;
      std::vector<std::uint64_t> sampled_ids;  ///< for write-stage spans
    };
    std::vector<Group> groups;
    std::unordered_map<std::uint64_t, std::size_t> index;
    std::unordered_map<Connection*, std::uint64_t> conn_ids;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      Connection* conn = batch[i].conn.get();
      const auto [cit, inserted] =
          conn_ids.try_emplace(conn, conn_ids.size());
      const ServeRequest& req = batch[i].req;
      const bool session_op =
          req.op == ServeOp::kRegister || req.op == ServeOp::kAdmit ||
          req.op == ServeOp::kRelease || req.op == ServeOp::kSwap ||
          req.op == ServeOp::kQuery;
      const std::uint64_t slot = session_op ? req.session + 1 : 0;
      const std::uint64_t key = (cit->second << 32) | (slot & 0xffffffffu);
      const auto [git, fresh] = index.try_emplace(key, groups.size());
      if (fresh) {
        groups.emplace_back();
        groups.back().conn = conn;
      }
      groups[git->second].items.push_back(i);
    }

    runner.parallel_for(groups.size(), [&](std::size_t g) {
      Group& group = groups[g];
      const auto handle_start = Clock::now();
      for (const std::size_t i : group.items) {
        Pending& item = batch[i];
        const bool observed = item.sampled || item.req.echo_stages;
        const std::int64_t h0 = observed ? obs::trace_now_ns() : 0;
        ServeResponse resp = handle(*group.conn, item.req);
        if (observed) {
          const std::int64_t h1 = obs::trace_now_ns();
          if (item.req.echo_stages) {
            resp.has_stages = true;
            resp.stage_queue_us = ns_delta_us(item.enq_ns, item.deq_ns);
            resp.stage_batch_us = ns_delta_us(item.deq_ns, item.seal_ns);
            resp.stage_handle_us = ns_delta_us(h0, h1);
          }
          if (item.sampled) {
            // One request's path through the pipeline as a span chain, all
            // carrying the trace id — Perfetto groups them into one story.
            const auto id = static_cast<std::int64_t>(item.trace_id);
            obs::record_span_at("serve", "queue", item.enq_ns,
                                item.deq_ns - item.enq_ns, "trace_id", id);
            obs::record_span_at("serve", "batch", item.deq_ns,
                                item.seal_ns - item.deq_ns, "trace_id", id);
            obs::record_span_at("serve", "handle", h0, h1 - h0, "trace_id",
                                id);
            group.sampled_ids.push_back(item.trace_id);
          }
        }
        group.out += encode_frame(encode_serve_response(resp));
        const std::uint64_t lat = us_between(item.enqueued, Clock::now());
        group.latency.add(lat);
        if (item.req.op == ServeOp::kAdmit ||
            item.req.op == ServeOp::kSwap) {
          group.admit_latency.add(lat);
        } else if (item.req.op == ServeOp::kRelease) {
          group.release_latency.add(lat);
        }
      }
      handle_us.fetch_add(us_between(handle_start, Clock::now()),
                          std::memory_order_relaxed);
    });

    // One send() per CONNECTION per batch, not per group: each send() to a
    // blocked client costs a wakeup (~tens of µs on one core), so all of a
    // connection's groups concatenate first. Per-session FIFO survives the
    // merge because a session lives entirely inside one group.
    {
      const auto write_start = Clock::now();
      std::string out;
      std::vector<std::uint64_t> write_ids;
      for (const auto& [conn, id] : conn_ids) {
        out.clear();
        write_ids.clear();
        for (const Group& group : groups) {
          if (group.conn == conn) {
            out += group.out;
            write_ids.insert(write_ids.end(), group.sampled_ids.begin(),
                             group.sampled_ids.end());
          }
        }
        // Sampled requests share the connection's single send() — their
        // write spans cover the same interval, closing each trace chain.
        const std::int64_t w0 =
            write_ids.empty() ? 0 : obs::trace_now_ns();
        {
          std::lock_guard<std::mutex> lock(conn->write_mu);
          write_frames(*conn, out);
        }
        if (!write_ids.empty()) {
          const std::int64_t w1 = obs::trace_now_ns();
          for (const std::uint64_t tid : write_ids) {
            obs::record_span_at("serve", "write", w0, w1 - w0, "trace_id",
                                static_cast<std::int64_t>(tid));
          }
        }
      }
      write_us.fetch_add(us_between(write_start, Clock::now()),
                         std::memory_order_relaxed);
    }
    dispatch_busy_us.fetch_add(us_between(batch_start, Clock::now()),
                               std::memory_order_relaxed);

    {
      std::lock_guard<std::mutex> lock(hist_mu);
      batch_size_hist.add(batch.size());
      for (const Group& group : groups) {
        latency_hist.merge(group.latency);
        admit_latency_hist.merge(group.admit_latency);
        release_latency_hist.merge(group.release_latency);
      }
    }
    if (op_shutdown.load(std::memory_order_acquire)) request_shutdown();
  }
}

ServeResponse Server::Impl::handle(Connection& conn,
                                   const ServeRequest& req) {
  ServeResponse resp;
  resp.seq = req.seq;
  try {
    // Resolve the session pointer under state_mu; USE it lock-free — the
    // one-group-per-session invariant makes that exclusive.
    const auto find_session = [&](std::uint64_t id) -> AdmissionSession& {
      std::lock_guard<std::mutex> lock(conn.state_mu);
      const auto it = conn.sessions.find(id);
      FEDCONS_EXPECTS_MSG(it != conn.sessions.end(),
                          "unknown session " + std::to_string(id));
      return *it->second;
    };
    // admit/swap task payload: registered content by handle, or inline text.
    const auto resolve_tasks = [&]() -> std::vector<DagTask> {
      if (req.has_content) {
        std::lock_guard<std::mutex> lock(conn.state_mu);
        FEDCONS_EXPECTS_MSG(req.content < conn.contents.size(),
                            "unknown content handle " +
                                std::to_string(req.content));
        return conn.contents[static_cast<std::size_t>(req.content)];
      }
      return parse_embedded_tasks(req.system);
    };
    const auto fill_verdict = [&](const EventOutcome& outcome,
                                  const AdmissionSession& session) {
      resp.has_verdict = true;
      resp.applied = outcome.applied;
      resp.schedulable = outcome.schedulable;
      resp.reject = to_string(outcome.reject_reason);
      resp.task_ids = outcome.admitted_ids;
      resp.residents = session.num_residents();
    };

    switch (req.op) {
      case ServeOp::kOpen: {
        AdmissionSession::Config cfg;
        cfg.processors = req.m;
        auto session = std::make_unique<AdmissionSession>(cfg);
        std::lock_guard<std::mutex> lock(conn.state_mu);
        const std::uint64_t id = conn.next_session++;
        conn.sessions.emplace(id, std::move(session));
        resp.has_session = true;
        resp.session = id;
        break;
      }
      case ServeOp::kRegister: {
        find_session(req.session);  // validate the handle early
        std::vector<DagTask> tasks = parse_embedded_tasks(req.system);
        std::lock_guard<std::mutex> lock(conn.state_mu);
        resp.has_content = true;
        resp.content = conn.contents.size();
        conn.contents.push_back(std::move(tasks));
        break;
      }
      case ServeOp::kAdmit: {
        AdmissionSession& session = find_session(req.session);
        const std::vector<DagTask> tasks = resolve_tasks();
        FEDCONS_EXPECTS_MSG(tasks.size() == 1,
                            "admit needs exactly one task, got " +
                                std::to_string(tasks.size()));
        fill_verdict(session.admit(tasks[0]), session);
        break;
      }
      case ServeOp::kRelease: {
        AdmissionSession& session = find_session(req.session);
        fill_verdict(session.release(req.release_ids.at(0)), session);
        break;
      }
      case ServeOp::kSwap: {
        AdmissionSession& session = find_session(req.session);
        AdmissionSession::SwapBatch swap;
        swap.release_ids = req.release_ids;
        swap.admits = resolve_tasks();
        fill_verdict(session.swap(swap), session);
        break;
      }
      case ServeOp::kQuery: {
        AdmissionSession& session = find_session(req.session);
        const SessionVerdict v = session.verdict();
        resp.has_verdict = true;
        resp.applied = false;
        resp.schedulable = v.success;
        resp.reject = to_string(v.failure);
        resp.residents = session.num_residents();
        break;
      }
      case ServeOp::kStats: {
        if (req.prometheus) {
          resp.extra = ", \"schema_version\": " +
                       std::to_string(kStatsSchemaVersion) +
                       ", \"prometheus\": \"" +
                       json_escape(snapshot().to_prometheus()) + "\"";
          break;
        }
        // Splice the stats body into the response object so histograms sit
        // at nesting depth 1 (the mini_json dialect's limit).
        const std::string body = snapshot().to_json();
        resp.extra = ", " + body.substr(1, body.size() - 2);
        break;
      }
      case ServeOp::kStatsSeries: {
        const std::vector<SeriesSample> samples =
            series.tail(static_cast<std::size_t>(req.series_last));
        resp.extra = ", \"schema_version\": " +
                     std::to_string(kStatsSchemaVersion) +
                     ", \"interval_us\": " +
                     std::to_string(config.stats_interval_ms > 0
                                        ? static_cast<std::uint64_t>(
                                              config.stats_interval_ms) *
                                              1000
                                        : 0) +
                     ", \"ring_capacity\": " +
                     std::to_string(series.capacity()) +
                     ", \"count\": " + std::to_string(samples.size());
        for (std::size_t i = 0; i < samples.size(); ++i) {
          resp.extra +=
              ", \"s" + std::to_string(i) + "\": " + samples[i].to_json();
        }
        break;
      }
      case ServeOp::kPing:
        break;
      case ServeOp::kStall:
        std::this_thread::sleep_for(std::chrono::microseconds(
            std::min(req.stall_us, kMaxStallUs)));
        break;
      case ServeOp::kShutdown:
        op_shutdown.store(true, std::memory_order_release);
        break;
    }
  } catch (const std::exception& e) {
    resp = ServeResponse{};
    resp.status = ServeStatus::kError;
    resp.seq = req.seq;
    resp.error = e.what();
  }
  return resp;
}

Server::Server(const ServerConfig& config)
    : impl_(std::make_unique<Impl>(config)) {}

Server::~Server() = default;

void Server::start() { impl_->start(); }

int Server::port() const noexcept { return impl_->bound_port; }

void Server::request_shutdown() noexcept { impl_->request_shutdown(); }

void Server::wait() { impl_->join_all(); }

bool Server::shutdown_requested() const noexcept {
  return impl_->shutdown_flag.load(std::memory_order_acquire);
}

ServerStats Server::stats_snapshot() const { return impl_->snapshot(); }

std::vector<SeriesSample> Server::stats_series(std::size_t last) const {
  return impl_->series.tail(last);
}

}  // namespace serve
}  // namespace fedcons
