// Bounded MPMC queue — the serve daemon's only buffer between socket
// readers and the batching dispatcher.
//
// The bound is the backpressure policy: push never blocks and never grows
// the queue past its capacity; when try_push fails the reader answers
// RETRY_AFTER instead of buffering, so a flood of requests costs the server
// a bounded amount of memory no matter how fast clients send. Consumers
// block; close() starts the drain — pops keep succeeding until the queue is
// empty and only then report closure.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>

namespace fedcons {
namespace serve {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Non-blocking bounded push; false when full or closed (caller turns
  /// that into a RETRY_AFTER response).
  [[nodiscard]] bool try_push(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
      if (items_.size() > high_watermark_) high_watermark_ = items_.size();
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking pop; false only when closed AND drained.
  [[nodiscard]] bool pop(T& out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Pop with a deadline (the batching window); false on timeout or when
  /// closed and drained.
  [[nodiscard]] bool pop_until(T& out,
                               std::chrono::steady_clock::time_point deadline) {
    std::unique_lock<std::mutex> lock(mu_);
    if (!not_empty_.wait_until(lock, deadline,
                               [&] { return !items_.empty() || closed_; })) {
      return false;
    }
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Begin the drain: no further pushes; pops succeed until empty.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Deepest the queue has ever been — the stat that says how close the
  /// server came to shedding load.
  [[nodiscard]] std::uint64_t high_watermark() const {
    std::lock_guard<std::mutex> lock(mu_);
    return high_watermark_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  std::size_t capacity_;
  std::uint64_t high_watermark_ = 0;
  bool closed_ = false;
};

}  // namespace serve
}  // namespace fedcons
