// Wire protocol of the fedcons_serve admission-control daemon.
//
// Framing is length-prefixed newline-JSON: every message on the socket is
//
//     <decimal-byte-length> '\n' <payload> '\n'
//
// where <payload> is one mini_json document (util/mini_json.h dialect:
// objects nested at most one level, string and number values) of exactly
// <decimal-byte-length> bytes. The prefix makes the stream self-delimiting
// without scanning payloads for separators (embedded task systems contain
// escaped newlines), and the trailing newline keeps captures readable and
// catches length desync immediately. A frame whose length prefix is not a
// plain decimal integer, exceeds the configured cap, or is not followed by
// its exact payload is a *framing* error: the stream cannot be resynced and
// the connection is closed. A well-framed payload that fails request
// parsing (unknown op, missing field, garbage or overflowing integer — all
// enforced by the strict mini_json numeric conversions) is *recoverable*:
// the server answers with an error response and keeps the connection.
//
// Request grammar (all requests carry "op" and a client-chosen "seq" echoed
// verbatim in the response; booleans travel as 0/1 — the dialect has no
// keyword literals):
//
//   {"op": "open",     "seq": N, "m": M}                 -> session handle
//   {"op": "register", "seq": N, "session": S, "system": TEXT}  -> content
//   {"op": "admit",    "seq": N, "session": S, "system": TEXT}
//   {"op": "admit",    "seq": N, "session": S, "content": C}
//   {"op": "release",  "seq": N, "session": S, "id": T}
//   {"op": "swap",     "seq": N, "session": S, "releases": "T T ...",
//                      "system": TEXT | "content": C}
//   {"op": "query",    "seq": N, "session": S}
//   {"op": "stats",    "seq": N [, "format": "prometheus"]}
//   {"op": "stats_series", "seq": N [, "last": K]}
//   {"op": "ping",     "seq": N}
//   {"op": "stall",    "seq": N, "us": U}      (diagnostic: occupy a worker)
//   {"op": "shutdown", "seq": N}               (drain and exit)
//
// Any request may additionally carry "stages": 1 — the response then echoes
// the server-side stage breakdown for that request (see below), so a client
// can attribute its observed latency to queue wait vs batch formation vs
// session handling without a server-side trace.
//
// TEXT is an escaped core/io.h task-system document (the same embedding the
// online trace format uses). "register" uploads content once per
// connection and returns a dense handle so steady-state admission traffic
// does not re-send and re-parse identical task text; an admitted system is
// still analyzed in full on every admit, handle or not.
//
// Response grammar:
//
//   {"status": "ok", "seq": N, ...}            op-specific payload below
//   {"status": "error", "seq": N, "error": MSG}
//   {"status": "retry_after", "seq": N}        bounded queue full; re-send
//
// ok payloads: open -> "session"; register -> "content"; admit/release/swap
// -> "applied" 0/1, "schedulable" 0/1, "reject" (failure name, "accepted"
// when schedulable), "task_ids" ("T T ..." ids assigned to admitted tasks),
// "residents"; query -> "schedulable", "reject", "residents". RETRY_AFTER
// is the protocol's backpressure: the server never buffers more than its
// queue depth.
//
// Stats grammar (all three documents carry "schema_version"):
//
//   stats (default)  ->  the ServerStats block spliced into the response:
//       "schema_version", "uptime_us" (us since the daemon started),
//       "snapshot_monotonic_us" (us on the machine-wide monotonic clock at
//       snapshot time — comparable across processes on one box), the
//       counters (connections_accepted, requests_enqueued, requests_shed,
//       requests_sampled, parse_errors, framing_errors, batches,
//       queue_depth, queue_high_watermark, reader_busy_us, handle_us,
//       write_us, dispatch_busy_us), and one nested obs::histogram_json
//       object per distribution (batch_size, latency_us, admit_latency_us,
//       release_latency_us — each with raw "buckets" counts, so two
//       snapshots can be differenced exactly).
//   stats?format=prometheus  ->  {"status": "ok", "seq": N,
//       "schema_version": V, "prometheus": TEXT} where TEXT is the same
//       snapshot rendered in Prometheus text exposition 0.0.4 (JSON-escaped;
//       counters + cumulative le-bucket histograms).
//   stats_series  ->  {"status": "ok", "seq": N, "schema_version": V,
//       "interval_us": I, "ring_capacity": C, "count": K, "s0": {...}, ...,
//       "s<K-1>": {...}} — the newest K snapshots from the daemon's periodic
//       ring (oldest first; "last" caps K). Each "sN" is one flat object of
//       scalars: "snapshot_monotonic_us", "uptime_us", cumulative counters
//       (requests_enqueued, requests_shed, batches, handle_us, write_us),
//       the instantaneous "queue_depth", and the latency summary
//       ("latency_count", "latency_p50", "latency_p99"). Differencing
//       consecutive samples yields interval rates; the ring bounds series
//       memory at C samples regardless of uptime.
//
// Stage echo ("stages": 1 on the request): the ok response additionally
// carries "stage_queue_us" (enqueue -> dequeue), "stage_batch_us" (dequeue
// -> batch seal), and "stage_handle_us" (session handling + response
// encoding) for THAT request. The write stage cannot be echoed — a response
// is encoded before it is written — so write attribution lives in the
// trace/stats side only.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "fedcons/online/admission_session.h"
#include "fedcons/util/parse_error.h"

namespace fedcons {
namespace serve {

/// Frame cap: requests embed at most one small task system; anything bigger
/// is a corrupt length prefix or an abusive client.
constexpr std::size_t kDefaultMaxFrameBytes = std::size_t{1} << 20;

/// Wrap a payload in the length-prefixed frame.
[[nodiscard]] std::string encode_frame(std::string_view payload);

/// Incremental frame decoder: feed raw socket bytes, pull complete payloads.
/// Throws ParseError on framing errors (malformed or oversized length
/// prefix, missing trailing newline) — the stream is unrecoverable then.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void feed(const char* data, std::size_t n) { buf_.append(data, n); }

  /// Extract the next complete payload into `payload`; false when more
  /// bytes are needed.
  bool next(std::string& payload);

  /// Bytes buffered but not yet consumed (a partial trailing frame).
  [[nodiscard]] std::size_t pending_bytes() const noexcept {
    return buf_.size() - pos_;
  }

 private:
  std::size_t max_frame_bytes_;
  std::string buf_;
  std::size_t pos_ = 0;  // consumed prefix, compacted lazily
};

enum class ServeOp {
  kOpen,
  kRegister,
  kAdmit,
  kRelease,
  kSwap,
  kQuery,
  kStats,
  kStatsSeries,
  kPing,
  kStall,
  kShutdown,
};

[[nodiscard]] const char* to_string(ServeOp op) noexcept;

struct ServeRequest {
  ServeOp op = ServeOp::kPing;
  std::uint64_t seq = 0;
  std::uint64_t session = 0;  ///< session ops
  int m = 0;                  ///< open
  std::string system;         ///< raw embedded task text (register/admit/swap)
  bool has_content = false;   ///< admit/swap reference registered content
  std::uint64_t content = 0;
  std::vector<SessionTaskId> release_ids;  ///< release (one) / swap (any)
  std::uint64_t stall_us = 0;              ///< stall
  bool prometheus = false;     ///< stats: "format": "prometheus"
  std::uint64_t series_last = 0;  ///< stats_series: newest K only (0 = all)
  bool echo_stages = false;    ///< any op: "stages": 1 -> stage breakdown
};

/// Payload -> request. Throws ParseError on anything malformed; integers go
/// through the strict mini_json conversions, so trailing garbage and
/// overflow are loud errors, never silent zeros or saturations.
[[nodiscard]] ServeRequest parse_serve_request(const std::string& payload);

/// Request -> payload (inverse of parse_serve_request; fixed field order).
[[nodiscard]] std::string encode_serve_request(const ServeRequest& req);

enum class ServeStatus { kOk, kError, kRetryAfter };

[[nodiscard]] const char* to_string(ServeStatus status) noexcept;

struct ServeResponse {
  ServeStatus status = ServeStatus::kOk;
  std::uint64_t seq = 0;
  std::string error;  ///< kError

  bool has_session = false;  ///< open
  std::uint64_t session = 0;
  bool has_content = false;  ///< register
  std::uint64_t content = 0;

  bool has_verdict = false;  ///< admit/release/swap/query
  bool applied = false;
  bool schedulable = false;
  std::string reject;  ///< failure name; "none" when schedulable
  std::vector<SessionTaskId> task_ids;
  std::uint64_t residents = 0;

  bool has_stages = false;  ///< request asked for the stage breakdown
  std::uint64_t stage_queue_us = 0;   ///< enqueue -> dequeue
  std::uint64_t stage_batch_us = 0;   ///< dequeue -> batch seal
  std::uint64_t stage_handle_us = 0;  ///< handle + response encoding

  /// Extra raw JSON members appended verbatim at encode time (", \"k\": v"
  /// fragments) — the stats payload. Parse keeps the whole payload in `raw`
  /// instead of structuring it; scrape consumers read fields from there.
  std::string extra;
  std::string raw;
};

[[nodiscard]] std::string encode_serve_response(const ServeResponse& resp);

/// Payload -> response (client side). Throws ParseError on malformed input.
/// The verbatim payload is kept in `raw` for stats consumers.
[[nodiscard]] ServeResponse parse_serve_response(const std::string& payload);

/// "1 3 9" <-> ids, the same space-joined embedding the trace format uses.
[[nodiscard]] std::string join_ids(const std::vector<SessionTaskId>& ids);
[[nodiscard]] std::vector<SessionTaskId> split_ids(const std::string& raw);

}  // namespace serve
}  // namespace fedcons
