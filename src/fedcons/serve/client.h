// Blocking client for the fedcons_serve protocol.
//
// One ServeClient is one socket: frames out, frames in, with the same
// FrameDecoder the server uses. The API is deliberately split into
// send/recv halves rather than only call() — the loadgen keeps K requests
// in flight per connection (deep pipelining is how a single box amortizes
// syscalls into >100k verdicts/sec), and tests batch many frames into one
// write to provoke backpressure. call() is the convenience for strictly
// serial use. Not thread-safe; one client per thread.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "fedcons/serve/protocol.h"

namespace fedcons {
namespace serve {

class ServeClient {
 public:
  /// Connect to a unix-socket server, retrying (the daemon may still be
  /// binding) up to timeout_ms. Throws ContractViolation on failure.
  [[nodiscard]] static ServeClient connect_unix(const std::string& path,
                                                int timeout_ms = 5000);
  /// Connect to a TCP server on 127.0.0.1.
  [[nodiscard]] static ServeClient connect_tcp(int port,
                                               int timeout_ms = 5000);

  ServeClient(ServeClient&& other) noexcept;
  ServeClient& operator=(ServeClient&& other) noexcept;
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;
  ~ServeClient();

  /// Frame + write one request.
  void send(const ServeRequest& req);
  /// Write pre-framed bytes verbatim (pipelined batches).
  void send_bytes(std::string_view bytes);
  /// Block for the next response frame. Throws ContractViolation when the
  /// server closes the connection, ParseError on a malformed response.
  [[nodiscard]] ServeResponse recv();
  /// Pop a response already buffered by an earlier read, without touching
  /// the socket. A pipelining client drains these after each blocking
  /// recv() so one syscall's worth of frames is processed as one batch.
  [[nodiscard]] bool try_recv(ServeResponse& out);
  /// send + recv (serial convenience).
  [[nodiscard]] ServeResponse call(const ServeRequest& req);

  /// Half-close for writing: tells the server this client is done sending.
  void shutdown_write() noexcept;
  [[nodiscard]] int fd() const noexcept { return fd_; }

 private:
  explicit ServeClient(int fd) : fd_(fd) {}

  int fd_ = -1;
  FrameDecoder decoder_;
};

}  // namespace serve
}  // namespace fedcons
