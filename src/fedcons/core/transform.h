// Structure-preserving DAG transformations.
//
// Workload preprocessing utilities a scheduling toolkit is expected to ship:
//
//  * transitive_reduction — drop every edge implied by a longer path. The
//    precedence RELATION (hence every schedule, len, vol, width) is
//    unchanged, but LS/analysis touch fewer edges and DOT renderings become
//    readable. Unique for DAGs (Aho–Garey–Ullman).
//  * merge_linear_chains — collapse maximal v₁→v₂→…→vₖ runs where every
//    interior vertex has exactly one predecessor and one successor into a
//    single vertex with the summed WCET. Preserves len, vol, and the
//    precedence relation among surviving vertices exactly; shrinks the
//    vertex count the analyses iterate over. Caveat: it coarsens
//    NON-PREEMPTIVE scheduling freedom (one long slot instead of k short
//    ones), so an LS makespan on the merged graph may differ slightly —
//    use it as a modelling simplification, not as an equivalence.
//  * sequentialize — total order (topological) chain: the |V|-vertex
//    equivalent of DagTask::to_sequential() when the graph form must be
//    kept.
//
// All three return new graphs; inputs are untouched (value semantics).
#pragma once

#include "fedcons/core/dag.h"

namespace fedcons {

/// The unique transitive reduction. Precondition: acyclic.
[[nodiscard]] Dag transitive_reduction(const Dag& dag);

/// True iff no edge is implied by an alternative directed path.
[[nodiscard]] bool is_transitively_reduced(const Dag& dag);

/// Collapse maximal single-in/single-out chains (see header comment).
/// Precondition: acyclic.
[[nodiscard]] Dag merge_linear_chains(const Dag& dag);

/// Chain all vertices in topological order (forces fully sequential
/// execution; len becomes vol). Precondition: acyclic, non-empty.
[[nodiscard]] Dag sequentialize(const Dag& dag);

}  // namespace fedcons
