// The directed-acyclic-graph workload structure of a sporadic DAG task.
//
// Paper, Section II: each task τ_i is specified by a DAG G_i = (V_i, E_i);
// each vertex v ∈ V_i is a sequential job with WCET e_v ∈ ℕ; each directed
// edge (v, w) is a precedence constraint. Derived metrics:
//   vol_i = Σ_v e_v            — total work of one dag-job,
//   len_i = longest chain      — critical-path length (sum of WCETs along the
//                                 longest precedence chain),
// both computable in time linear in |V| + |E| via a topological sort and a
// dynamic program (paper, Section II).
//
// The class additionally exposes structural queries used by the workload
// generators, the list scheduler, and the experiment suite: topological
// order, per-vertex longest path to a sink ("bottom level", the classic
// critical-path priority for list scheduling), reachability, exact graph
// width (maximum antichain, via Dilworth's theorem and bipartite matching on
// the transitive closure — the task's maximum exploitable parallelism), and
// DOT export for visual inspection.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "fedcons/util/time_types.h"

namespace fedcons {

/// Index of a vertex within its Dag (dense, 0-based).
using VertexId = std::uint32_t;

/// Immutable-after-build DAG with integer WCETs on vertices.
///
/// Build by add_vertex()/add_edge(); edges may be added in any order. The
/// structure is validated lazily: acyclicity is established the first time a
/// derived query runs and is a precondition of all of them (a cycle throws
/// ContractViolation). Self-loops and duplicate edges are rejected eagerly.
class Dag {
 public:
  Dag() = default;

  /// Add a job with the given WCET. Precondition: wcet >= 1 (the paper's
  /// e_v ∈ ℕ; zero-length jobs would make "available" ambiguous).
  VertexId add_vertex(Time wcet);

  /// Add precedence edge from -> to. Preconditions: both ids valid,
  /// from != to, edge not already present. May create a cycle — detected on
  /// the next derived query.
  void add_edge(VertexId from, VertexId to);

  [[nodiscard]] std::size_t num_vertices() const noexcept {
    return wcet_.size();
  }
  [[nodiscard]] std::size_t num_edges() const noexcept { return num_edges_; }
  [[nodiscard]] bool empty() const noexcept { return wcet_.empty(); }

  [[nodiscard]] Time wcet(VertexId v) const;
  [[nodiscard]] std::span<const VertexId> successors(VertexId v) const;
  [[nodiscard]] std::span<const VertexId> predecessors(VertexId v) const;
  [[nodiscard]] std::size_t in_degree(VertexId v) const;
  [[nodiscard]] std::size_t out_degree(VertexId v) const;
  [[nodiscard]] bool has_edge(VertexId from, VertexId to) const;

  /// True iff the edge relation is acyclic. Never throws.
  [[nodiscard]] bool is_acyclic() const;

  /// Deterministic topological order (Kahn's algorithm; smallest vertex id
  /// first among ready vertices). Precondition: acyclic.
  [[nodiscard]] const std::vector<VertexId>& topological_order() const;

  /// vol: total WCET of one dag-job (Σ e_v). O(|V|), cached.
  [[nodiscard]] Time vol() const;

  /// len: length of the longest chain (critical path, including endpoint
  /// WCETs). 0 for the empty graph. Precondition: acyclic. Cached.
  [[nodiscard]] Time len() const;

  /// Longest chain starting at v and ending at a sink, including e_v — the
  /// "bottom level" b(v). max over v of b(v) == len(). Precondition: acyclic.
  [[nodiscard]] Time bottom_level(VertexId v) const;

  /// Longest chain from a source ending at v, including e_v ("top level").
  [[nodiscard]] Time top_level(VertexId v) const;

  /// One longest chain, as vertex ids in precedence order. Precondition:
  /// acyclic and non-empty.
  [[nodiscard]] std::vector<VertexId> critical_path() const;

  /// True iff `to` is reachable from `from` by a non-empty directed path.
  [[nodiscard]] bool reaches(VertexId from, VertexId to) const;

  /// Successors of v in the transitive reduction — the unique minimal edge
  /// subset with the same reachability (unique for DAGs). An edge (u, w) is
  /// dropped iff another successor of u reaches w; greedy schedulers may use
  /// the reduced relation verbatim, because the witnessing intermediate
  /// vertex finishes no earlier than u and therefore binds w's ready instant
  /// at least as tightly. Built lazily in O(|E|·|V|/64) via reachability
  /// bitsets and cached like the level arrays; beyond
  /// kMaxReductionVertices the bitset build is skipped and the original
  /// successor lists are returned (a sound over-approximation).
  /// Precondition: acyclic.
  [[nodiscard]] std::span<const VertexId> reduced_successors(VertexId v) const;

  /// Exact width: the maximum antichain size (largest set of pairwise
  /// precedence-incomparable jobs) — the maximum instantaneous parallelism
  /// the task can express. Computed via Dilworth's theorem: width = |V| −
  /// (maximum matching in the bipartite reachability graph). O(V·E(closure)).
  [[nodiscard]] std::size_t width() const;

  /// Graphviz DOT rendering; vertices labelled "v<i> (e=<wcet>)".
  [[nodiscard]] std::string to_dot(const std::string& name = "dag") const;

  /// Vertex-count ceiling for the transitive-reduction bitset build; the
  /// reachability matrix costs |V|²/8 bytes, so past this the reduction
  /// degrades gracefully to the original edge lists.
  static constexpr std::size_t kMaxReductionVertices = 4096;

 private:
  void ensure_analyzed() const;  // topo order + levels; throws on a cycle
  void ensure_reduced() const;   // transitive reduction; throws on a cycle
  void invalidate() noexcept;
  [[nodiscard]] std::vector<std::vector<bool>> transitive_closure() const;

  std::vector<Time> wcet_;
  std::vector<std::vector<VertexId>> succ_;
  std::vector<std::vector<VertexId>> pred_;
  std::size_t num_edges_ = 0;

  // Lazily computed analysis results (cleared by mutation).
  mutable bool analyzed_ = false;
  mutable std::vector<VertexId> topo_;
  mutable std::vector<Time> bottom_;
  mutable std::vector<Time> top_;
  mutable Time vol_ = 0;
  mutable Time len_ = 0;

  // Cached transitive reduction (CSR layout). reduced_trivial_ marks the
  // size-gated case where the reduction is defined as the original lists.
  mutable bool reduced_built_ = false;
  mutable bool reduced_trivial_ = false;
  mutable std::vector<std::uint32_t> red_off_;
  mutable std::vector<VertexId> red_flat_;
};

}  // namespace fedcons
