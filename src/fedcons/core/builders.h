// Fluent construction of common DAG topologies, plus the paper's worked
// examples (Figure 1 / Example 1 and Example 2).
#pragma once

#include <initializer_list>
#include <span>
#include <vector>

#include "fedcons/core/dag.h"
#include "fedcons/core/dag_task.h"
#include "fedcons/core/task_system.h"

namespace fedcons {

/// Incremental DAG construction with chainable calls:
///   Dag g = DagBuilder{}.vertices({2, 1, 3}).edge(0, 1).edge(1, 2).build();
class DagBuilder {
 public:
  DagBuilder& vertex(Time wcet);
  DagBuilder& vertices(std::initializer_list<Time> wcets);
  DagBuilder& edge(VertexId from, VertexId to);
  /// Edges from `from` to every vertex in `tos`.
  DagBuilder& fan_out(VertexId from, std::initializer_list<VertexId> tos);
  /// Edges from every vertex in `froms` to `to`.
  DagBuilder& fan_in(std::initializer_list<VertexId> froms, VertexId to);
  /// Finalize and move the graph out; the builder is left empty.
  [[nodiscard]] Dag build();

 private:
  Dag dag_;
};

/// A pure chain v0 → v1 → … (len == vol).
[[nodiscard]] Dag make_chain(std::span<const Time> wcets);

/// Fork–join: source → each of `branch_wcets` in parallel → sink.
[[nodiscard]] Dag make_fork_join(Time source_wcet,
                                 std::span<const Time> branch_wcets,
                                 Time sink_wcet);

/// `count` fully independent vertices (maximum parallelism, len == max wcet).
[[nodiscard]] Dag make_independent(std::span<const Time> wcets);

/// The sporadic DAG task of the paper's Figure 1 / Example 1: five vertices,
/// five precedence edges, vol = 9, len = 6, D = 16, T = 20, hence
/// δ = 9/16 and u = 9/20 (a low-density task).
///
/// The figure's exact WCET placement is not fully legible in the text
/// rendition of the paper; this reconstruction uses WCETs {1, 2, 3, 2, 1}
/// with edges v0→v1, v0→v2, v1→v3, v2→v3, v2→v4, which matches every stated
/// metric (|V| = 5, |E| = 5, vol = 9, len = 6 along v0→v2→v3).
[[nodiscard]] DagTask make_paper_example_task();

/// The paper's Example 2 family: n single-vertex tasks with e_v = 1, D = 1,
/// T = n. U_sum ≈ 1 and len_i ≤ D_i for every task, yet the system needs a
/// speed-n processor — demonstrating that capacity augmentation bounds are
/// meaningless for constrained deadlines.
[[nodiscard]] TaskSystem make_capacity_augmentation_counterexample(int n);

}  // namespace fedcons
