#include "fedcons/core/builders.h"

#include <utility>

#include "fedcons/util/check.h"

namespace fedcons {

DagBuilder& DagBuilder::vertex(Time wcet) {
  dag_.add_vertex(wcet);
  return *this;
}

DagBuilder& DagBuilder::vertices(std::initializer_list<Time> wcets) {
  for (Time w : wcets) dag_.add_vertex(w);
  return *this;
}

DagBuilder& DagBuilder::edge(VertexId from, VertexId to) {
  dag_.add_edge(from, to);
  return *this;
}

DagBuilder& DagBuilder::fan_out(VertexId from,
                                std::initializer_list<VertexId> tos) {
  for (VertexId to : tos) dag_.add_edge(from, to);
  return *this;
}

DagBuilder& DagBuilder::fan_in(std::initializer_list<VertexId> froms,
                               VertexId to) {
  for (VertexId from : froms) dag_.add_edge(from, to);
  return *this;
}

Dag DagBuilder::build() {
  FEDCONS_EXPECTS_MSG(dag_.is_acyclic(), "built graph contains a cycle");
  Dag out = std::move(dag_);
  dag_ = Dag{};
  return out;
}

Dag make_chain(std::span<const Time> wcets) {
  FEDCONS_EXPECTS(!wcets.empty());
  Dag g;
  VertexId prev = g.add_vertex(wcets[0]);
  for (std::size_t i = 1; i < wcets.size(); ++i) {
    VertexId cur = g.add_vertex(wcets[i]);
    g.add_edge(prev, cur);
    prev = cur;
  }
  return g;
}

Dag make_fork_join(Time source_wcet, std::span<const Time> branch_wcets,
                   Time sink_wcet) {
  FEDCONS_EXPECTS(!branch_wcets.empty());
  Dag g;
  VertexId src = g.add_vertex(source_wcet);
  VertexId sink_placeholder = 0;  // assigned after branches
  std::vector<VertexId> branches;
  branches.reserve(branch_wcets.size());
  for (Time w : branch_wcets) {
    VertexId b = g.add_vertex(w);
    g.add_edge(src, b);
    branches.push_back(b);
  }
  sink_placeholder = g.add_vertex(sink_wcet);
  for (VertexId b : branches) g.add_edge(b, sink_placeholder);
  return g;
}

Dag make_independent(std::span<const Time> wcets) {
  FEDCONS_EXPECTS(!wcets.empty());
  Dag g;
  for (Time w : wcets) g.add_vertex(w);
  return g;
}

DagTask make_paper_example_task() {
  Dag g = DagBuilder{}
              .vertices({1, 2, 3, 2, 1})
              .edge(0, 1)
              .edge(0, 2)
              .edge(1, 3)
              .edge(2, 3)
              .edge(2, 4)
              .build();
  DagTask task(std::move(g), /*deadline=*/16, /*period=*/20, "fig1-example");
  // Pin the metrics the paper states for Example 1.
  FEDCONS_ENSURES(task.vol() == 9);
  FEDCONS_ENSURES(task.len() == 6);
  FEDCONS_ENSURES(task.is_low_density());
  return task;
}

TaskSystem make_capacity_augmentation_counterexample(int n) {
  FEDCONS_EXPECTS(n >= 1);
  TaskSystem sys;
  for (int i = 0; i < n; ++i) {
    Dag g;
    g.add_vertex(1);
    sys.add(DagTask(std::move(g), /*deadline=*/1, /*period=*/n,
                    "ex2-tau" + std::to_string(i + 1)));
  }
  return sys;
}

}  // namespace fedcons
