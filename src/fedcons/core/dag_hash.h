// Canonical, relabeling-invariant content hash for DAG tasks.
//
// The online admission layer memoizes MINPROCS by task *content*: two
// DagTasks that are the same task — identical (D, T) and isomorphic graphs
// with matching WCETs — must map to the same 128-bit key no matter how their
// vertices happen to be numbered or their edges ordered, because MINPROCS is
// a pure function of that content. The hash is computed by
// Weisfeiler–Leman-style refinement oriented along the DAG:
//
//   down(v) = H(e_v, sorted multiset of down(pred))   — ancestor signature
//   up(v)   = H(e_v, sorted multiset of up(succ))     — descendant signature
//   base(v) = H(down(v), up(v))
//   l(v)    = H(base(v), sorted in-neighbour base, sorted out-neighbour base)
//
// and digesting |V|, |E|, the sorted multiset of l(v), and the sorted
// multiset of per-edge pairs H(l(u), l(v)). Every step is a function of the
// unlabelled structure plus WCETs only, so any vertex permutation or edge
// reordering yields the same digest; conversely any WCET, edge, D, or T
// change reaches the digest through at least one lane.
//
// The digest is a *hash*, not a canonical form: distinct tasks collide with
// probability ~2^-128 under random-oracle behaviour (plus the measure-zero
// family of WL-indistinguishable DAGs with identical WCET multisets). The
// memo cache treats equal keys as equal tasks; the online conformance fuzz
// (incremental == full) would surface a collision as a verdict divergence.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "fedcons/core/dag_task.h"

namespace fedcons {

/// 128-bit content digest. Value type; ordered so it can key std::map too.
struct DagHash {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  [[nodiscard]] bool operator==(const DagHash&) const noexcept = default;
  [[nodiscard]] auto operator<=>(const DagHash&) const noexcept = default;

  /// 32 lowercase hex digits, hi lane first (stable across platforms).
  [[nodiscard]] std::string to_hex() const;
};

/// Relabeling-invariant digest of the graph structure + WCETs alone.
[[nodiscard]] DagHash canonical_dag_hash(const Dag& dag);

/// Task content digest: canonical_dag_hash ⊕ (deadline, period). The task
/// name is display metadata and deliberately excluded.
[[nodiscard]] DagHash canonical_task_hash(const DagTask& task);

}  // namespace fedcons

template <>
struct std::hash<fedcons::DagHash> {
  [[nodiscard]] std::size_t operator()(
      const fedcons::DagHash& h) const noexcept {
    return static_cast<std::size_t>(h.hi ^ (h.lo * 0x9e3779b97f4a7c15ULL));
  }
};
