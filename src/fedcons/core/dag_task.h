// The sporadic DAG task: (G_i, D_i, T_i) per the paper's Section II.
#pragma once

#include <string>
#include <utility>

#include "fedcons/core/dag.h"
#include "fedcons/core/sequential_task.h"
#include "fedcons/util/rational.h"

namespace fedcons {

/// Deadline-class of a task or system (paper, Section II).
enum class DeadlineClass {
  kImplicit,     ///< D == T
  kConstrained,  ///< D <= T (strict subset excluded: still "constrained")
  kArbitrary,    ///< D > T somewhere
};

[[nodiscard]] const char* to_string(DeadlineClass c) noexcept;

/// A sporadic DAG task τ_i = (G_i, D_i, T_i).
///
/// Releases of "dag-jobs" are separated by at least T; all |V| jobs of a
/// dag-job released at t must finish by t + D, subject to the precedence
/// edges of G. Derived quantities (paper, Section II):
///   vol_i  — total WCET per dag-job,
///   len_i  — longest-chain length,
///   u_i    = vol_i / T_i                (utilization),
///   δ_i    = vol_i / min(D_i, T_i)      (density).
/// A task with δ_i ≥ 1 is HIGH-density, else LOW-density; FEDCONS dedicates
/// processors to the former and partitions the latter.
class DagTask {
 public:
  /// Preconditions: non-empty acyclic graph, positive deadline and period.
  DagTask(Dag graph, Time deadline, Time period, std::string name = {});

  [[nodiscard]] const Dag& graph() const noexcept { return graph_; }
  [[nodiscard]] Time deadline() const noexcept { return deadline_; }
  [[nodiscard]] Time period() const noexcept { return period_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// vol_i and len_i are computed once at construction (the graph is
  /// immutable from then on) so the MINPROCS scan and the classification
  /// predicates below are branch-free O(1) lookups.
  [[nodiscard]] Time vol() const noexcept { return vol_; }
  [[nodiscard]] Time len() const noexcept { return len_; }

  /// Exact utilization u_i = vol_i / T_i.
  [[nodiscard]] BigRational utilization() const {
    return make_ratio(vol(), period_);
  }
  /// Exact density δ_i = vol_i / min(D_i, T_i).
  [[nodiscard]] BigRational density() const {
    return make_ratio(vol(), std::min(deadline_, period_));
  }
  /// Floating-point views for reporting only (never used in decisions).
  [[nodiscard]] double utilization_approx() const {
    return static_cast<double>(vol()) / static_cast<double>(period_);
  }
  [[nodiscard]] double density_approx() const {
    return static_cast<double>(vol()) /
           static_cast<double>(std::min(deadline_, period_));
  }

  /// δ_i ≥ 1, decided exactly in integers: vol ≥ min(D, T).
  [[nodiscard]] bool is_high_density() const {
    return vol() >= std::min(deadline_, period_);
  }
  [[nodiscard]] bool is_low_density() const { return !is_high_density(); }

  /// u_i ≥ 1 exactly: vol ≥ T (the implicit-deadline literature's "high
  /// utilization" classification from Li et al.).
  [[nodiscard]] bool is_high_utilization() const { return vol() >= period_; }

  [[nodiscard]] DeadlineClass deadline_class() const noexcept {
    if (deadline_ == period_) return DeadlineClass::kImplicit;
    if (deadline_ < period_) return DeadlineClass::kConstrained;
    return DeadlineClass::kArbitrary;
  }

  /// Sequential view (C = vol, D, T) used by PARTITION for low-density tasks.
  [[nodiscard]] SporadicTask to_sequential() const {
    return SporadicTask(vol(), deadline_, period_);
  }

  /// Necessary feasibility on any number of unit-speed processors: the
  /// critical path alone needs len_i ≤ D_i.
  [[nodiscard]] bool critical_path_feasible() const {
    return len() <= deadline_;
  }

  /// Copy of this task with every WCET scaled to ⌈e_v / s⌉ — models running
  /// on speed-s processors (conservative integer rounding; s > 0).
  [[nodiscard]] DagTask scaled_by_speed(double s) const;

 private:
  Dag graph_;
  Time deadline_;
  Time period_;
  Time vol_;  ///< cached graph_.vol()
  Time len_;  ///< cached graph_.len()
  std::string name_;
};

}  // namespace fedcons
