#include "fedcons/core/io.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "fedcons/util/check.h"

namespace fedcons {

namespace {

/// Strip comments and surrounding whitespace; empty result means skip.
std::string clean_line(const std::string& raw) {
  std::string line = raw;
  auto hash = line.find('#');
  if (hash != std::string::npos) line.erase(hash);
  auto first = line.find_first_not_of(" \t\r");
  if (first == std::string::npos) return {};
  auto last = line.find_last_not_of(" \t\r");
  return line.substr(first, last - first + 1);
}

Time parse_time(const std::string& token, int line_no, const char* what) {
  Time v = 0;
  try {
    std::size_t pos = 0;
    v = static_cast<Time>(std::stoll(token, &pos));
    if (pos != token.size()) throw std::invalid_argument("trailing chars");
  } catch (const std::exception&) {
    // Covers empty/garbage tokens, NaN/inf spellings, and int64 overflow
    // (std::out_of_range) — everything funnels into one diagnosable error
    // instead of an abort or a wrapped value.
    throw ParseError(line_no, std::string("malformed ") + what + ": '" +
                                  token + "'");
  }
  // Cap fields well below the int64 range so downstream products (C·T,
  // k·T + D, ...) stay representable: 2^50 ticks is beyond any meaningful
  // workload but leaves 13 bits of multiplicative headroom.
  if (v > kMaxFieldValue) {
    throw ParseError(line_no, std::string(what) + " exceeds the maximum "
                                  "representable field value (2^50)");
  }
  return v;
}

}  // namespace

TaskSystem parse_task_system(std::istream& in) {
  TaskSystem system;
  std::string raw;
  int line_no = 0;

  bool in_task = false;
  std::string name;
  Time deadline = -1;
  Time period = -1;
  Dag graph;
  int task_counter = 0;
  int task_start_line = 0;

  auto finish_task = [&]() {
    if (deadline < 1) {
      throw ParseError(task_start_line, "task '" + name +
                                            "' is missing a valid deadline");
    }
    if (period < 1) {
      throw ParseError(task_start_line,
                       "task '" + name + "' is missing a valid period");
    }
    if (graph.empty()) {
      throw ParseError(task_start_line,
                       "task '" + name + "' has no vertices");
    }
    if (!graph.is_acyclic()) {
      throw ParseError(task_start_line,
                       "task '" + name + "' has cyclic edges");
    }
    try {
      system.add(DagTask(std::move(graph), deadline, period, name));
    } catch (const ContractViolation& e) {
      // DagTask's own invariants (e.g. D ≤ T) become parse diagnostics, not
      // aborts: malformed input is the caller's problem, reported politely.
      throw ParseError(task_start_line,
                       "task '" + name + "': " + e.what());
    }
    graph = Dag{};
    deadline = period = -1;
    in_task = false;
  };

  while (std::getline(in, raw)) {
    ++line_no;
    std::string line = clean_line(raw);
    if (line.empty()) continue;
    std::istringstream tokens(line);
    std::string keyword;
    tokens >> keyword;

    if (keyword == "task") {
      if (in_task) throw ParseError(line_no, "nested 'task' (missing 'end'?)");
      in_task = true;
      task_start_line = line_no;
      ++task_counter;
      name.clear();
      tokens >> name;
      if (name.empty()) name = "task" + std::to_string(task_counter);
      continue;
    }
    if (!in_task) {
      throw ParseError(line_no, "'" + keyword + "' outside a task block");
    }
    if (keyword == "deadline") {
      std::string v;
      tokens >> v;
      deadline = parse_time(v, line_no, "deadline");
      if (deadline < 1) throw ParseError(line_no, "deadline must be >= 1");
    } else if (keyword == "period") {
      std::string v;
      tokens >> v;
      period = parse_time(v, line_no, "period");
      if (period < 1) throw ParseError(line_no, "period must be >= 1");
    } else if (keyword == "vertex") {
      std::string v;
      tokens >> v;
      Time wcet = parse_time(v, line_no, "vertex WCET");
      if (wcet < 1) throw ParseError(line_no, "vertex WCET must be >= 1");
      graph.add_vertex(wcet);
    } else if (keyword == "edge") {
      std::string a, b;
      tokens >> a >> b;
      Time from = parse_time(a, line_no, "edge source");
      Time to = parse_time(b, line_no, "edge target");
      if (from < 0 || to < 0 ||
          from >= static_cast<Time>(graph.num_vertices()) ||
          to >= static_cast<Time>(graph.num_vertices())) {
        throw ParseError(line_no, "edge endpoint out of range");
      }
      if (from == to) throw ParseError(line_no, "self-loop edge");
      if (graph.has_edge(static_cast<VertexId>(from),
                         static_cast<VertexId>(to))) {
        throw ParseError(line_no, "duplicate edge");
      }
      graph.add_edge(static_cast<VertexId>(from), static_cast<VertexId>(to));
    } else if (keyword == "end") {
      finish_task();
    } else {
      throw ParseError(line_no, "unknown keyword '" + keyword + "'");
    }
  }
  if (in_task) {
    throw ParseError(line_no, "unterminated task block (missing 'end')");
  }
  return system;
}

TaskSystem parse_task_system(const std::string& text) {
  std::istringstream in(text);
  return parse_task_system(in);
}

ParseResult try_parse_task_system(const std::string& text) {
  ParseResult result;
  try {
    result.system = parse_task_system(text);
    result.ok = true;
  } catch (const ParseError& e) {
    result.line = e.line();
    result.error = e.what();
  } catch (const std::exception& e) {
    result.error = e.what();
  }
  return result;
}

void serialize_task_system(const TaskSystem& system, std::ostream& out) {
  out << "# fedcons task system: " << system.size() << " task(s), "
      << to_string(system.deadline_class()) << "-deadline\n";
  for (std::size_t i = 0; i < system.size(); ++i) {
    const DagTask& t = system[i];
    std::string name =
        t.name().empty() ? "task" + std::to_string(i + 1) : t.name();
    // Names are single tokens in the format; make arbitrary names safe.
    for (char& c : name) {
      if (c == ' ' || c == '\t' || c == '#') c = '-';
    }
    out << "task " << name << "\n";
    out << "  deadline " << t.deadline() << "\n";
    out << "  period " << t.period() << "\n";
    for (VertexId v = 0; v < t.graph().num_vertices(); ++v) {
      out << "  vertex " << t.graph().wcet(v) << "\n";
    }
    for (VertexId v = 0; v < t.graph().num_vertices(); ++v) {
      for (VertexId s : t.graph().successors(v)) {
        out << "  edge " << v << " " << s << "\n";
      }
    }
    out << "end\n";
  }
}

std::string serialize_task_system(const TaskSystem& system) {
  std::ostringstream out;
  serialize_task_system(system, out);
  return out.str();
}

}  // namespace fedcons
