// A system τ = {τ_1, …, τ_n} of sporadic DAG tasks.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "fedcons/core/dag_task.h"

namespace fedcons {

/// Index of a task within its TaskSystem.
using TaskId = std::size_t;

/// Value-semantic container of DagTasks with aggregate metrics.
class TaskSystem {
 public:
  TaskSystem() = default;
  explicit TaskSystem(std::vector<DagTask> tasks) : tasks_(std::move(tasks)) {}

  TaskId add(DagTask task) {
    tasks_.push_back(std::move(task));
    return tasks_.size() - 1;
  }

  [[nodiscard]] std::size_t size() const noexcept { return tasks_.size(); }
  [[nodiscard]] bool empty() const noexcept { return tasks_.empty(); }
  [[nodiscard]] const DagTask& operator[](TaskId i) const;
  [[nodiscard]] std::span<const DagTask> tasks() const noexcept {
    return tasks_;
  }

  [[nodiscard]] auto begin() const noexcept { return tasks_.begin(); }
  [[nodiscard]] auto end() const noexcept { return tasks_.end(); }

  /// U_sum(τ) = Σ u_i, exactly.
  [[nodiscard]] BigRational total_utilization() const;

  /// Σ δ_i, exactly.
  [[nodiscard]] BigRational total_density() const;

  /// Floating-point U_sum for reporting.
  [[nodiscard]] double total_utilization_approx() const;

  /// Strictest class covering every task: implicit if all D==T, constrained
  /// if all D<=T, otherwise arbitrary.
  [[nodiscard]] DeadlineClass deadline_class() const noexcept;

  /// Indices of the high-density tasks (δ_i ≥ 1), in system order — the
  /// paper's τ_high.
  [[nodiscard]] std::vector<TaskId> high_density_tasks() const;

  /// Indices of the low-density tasks (δ_i < 1) — the paper's τ_low.
  [[nodiscard]] std::vector<TaskId> low_density_tasks() const;

  /// Every task's critical path fits in its deadline (len_i ≤ D_i): a
  /// necessary condition for feasibility on any platform.
  [[nodiscard]] bool all_critical_paths_feasible() const;

  /// Copy with every task scaled to speed-s processors (WCETs ⌈e/s⌉).
  [[nodiscard]] TaskSystem scaled_by_speed(double s) const;

  /// Multi-line human-readable summary (per-task metrics + aggregates).
  [[nodiscard]] std::string summary() const;

 private:
  std::vector<DagTask> tasks_;
};

/// Canonical display name of τ_i: the task's own name, or "task{i+1}" when
/// unnamed. Matches the name core/io.h assigns on serialization, so the
/// display name is stable across serialize/parse round-trips — which is what
/// lets the fault layer target tasks by name rather than by (shrink-unstable)
/// index.
[[nodiscard]] inline std::string task_display_name(const TaskSystem& system,
                                                   TaskId i) {
  const std::string& name = system[i].name();
  return name.empty() ? "task" + std::to_string(i + 1) : name;
}

}  // namespace fedcons
