// Text serialization of task systems — the interchange format used by the
// fedcons_cli tool and by anyone wanting to version-control workloads.
//
// Format (line-oriented, '#' starts a comment, blank lines ignored):
//
//     # flight-control partition
//     task flight-control-law
//       deadline 25
//       period 50
//       vertex 2          # v0 — vertices are numbered in order of listing
//       vertex 8          # v1
//       vertex 3          # v2
//       edge 0 1
//       edge 1 2
//     end
//
// Every keyword is mandatory except the task name (a default name is
// generated). Parsing is strict: unknown keywords, malformed numbers,
// missing parameters, or cyclic edges raise ParseError with the offending
// line number.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "fedcons/core/task_system.h"

namespace fedcons {

/// Raised on malformed input; what() includes the 1-based line number.
class ParseError : public std::runtime_error {
 public:
  ParseError(int line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}
  [[nodiscard]] int line() const noexcept { return line_; }

 private:
  int line_;
};

/// Parse a task system from a stream. Throws ParseError on malformed input.
[[nodiscard]] TaskSystem parse_task_system(std::istream& in);

/// Parse from a string (convenience for tests and embedding).
[[nodiscard]] TaskSystem parse_task_system(const std::string& text);

/// Serialize in the same format; parse(serialize(s)) reproduces s exactly
/// (round-trip property-tested).
void serialize_task_system(const TaskSystem& system, std::ostream& out);

/// Serialize to a string.
[[nodiscard]] std::string serialize_task_system(const TaskSystem& system);

}  // namespace fedcons
