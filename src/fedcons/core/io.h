// Text serialization of task systems — the interchange format used by the
// fedcons_cli tool and by anyone wanting to version-control workloads.
//
// Format (line-oriented, '#' starts a comment, blank lines ignored):
//
//     # flight-control partition
//     task flight-control-law
//       deadline 25
//       period 50
//       vertex 2          # v0 — vertices are numbered in order of listing
//       vertex 8          # v1
//       vertex 3          # v2
//       edge 0 1
//       edge 1 2
//     end
//
// Every keyword is mandatory except the task name (a default name is
// generated). Parsing is strict: unknown keywords, malformed numbers,
// missing parameters, or cyclic edges raise ParseError with the offending
// line number.
#pragma once

#include <iosfwd>
#include <string>

#include "fedcons/core/task_system.h"
#include "fedcons/util/parse_error.h"

namespace fedcons {

/// Largest value accepted for any numeric field (deadline, period, WCET):
/// 2^50 ticks. Rejecting larger inputs at the boundary leaves every
/// downstream product (C·T, k·T + D, ...) 13 bits of headroom before int64
/// overflow, which the saturating analysis arithmetic then absorbs.
inline constexpr Time kMaxFieldValue = Time{1} << 50;

/// Parse a task system from a stream. Throws ParseError on malformed input.
[[nodiscard]] TaskSystem parse_task_system(std::istream& in);

/// Parse from a string (convenience for tests and embedding).
[[nodiscard]] TaskSystem parse_task_system(const std::string& text);

/// Status-style non-throwing parse result: either a system or a diagnosis.
struct ParseResult {
  bool ok = false;
  int line = 0;        ///< 1-based offending line (0 when not line-specific)
  std::string error;   ///< empty when ok
  TaskSystem system;   ///< valid only when ok
};

/// Parse without exceptions crossing the boundary: every failure mode —
/// malformed numbers, NaN/negative/overflowing fields, bad edges, violated
/// task invariants — comes back as {ok=false, line, message}. Tool frontends
/// use this so malformed input exits with a message, never an abort.
[[nodiscard]] ParseResult try_parse_task_system(const std::string& text);

/// Serialize in the same format; parse(serialize(s)) reproduces s exactly
/// (round-trip property-tested).
void serialize_task_system(const TaskSystem& system, std::ostream& out);

/// Serialize to a string.
[[nodiscard]] std::string serialize_task_system(const TaskSystem& system);

}  // namespace fedcons
