#include "fedcons/core/dag.h"

#include <algorithm>
#include <queue>
#include <sstream>

#include "fedcons/util/check.h"

namespace fedcons {

VertexId Dag::add_vertex(Time wcet) {
  FEDCONS_EXPECTS_MSG(wcet >= 1, "vertex WCET must be a positive integer");
  invalidate();
  wcet_.push_back(wcet);
  succ_.emplace_back();
  pred_.emplace_back();
  return static_cast<VertexId>(wcet_.size() - 1);
}

void Dag::add_edge(VertexId from, VertexId to) {
  FEDCONS_EXPECTS(from < wcet_.size());
  FEDCONS_EXPECTS(to < wcet_.size());
  FEDCONS_EXPECTS_MSG(from != to, "self-loop rejected");
  FEDCONS_EXPECTS_MSG(!has_edge(from, to), "duplicate edge rejected");
  invalidate();
  succ_[from].push_back(to);
  pred_[to].push_back(from);
  ++num_edges_;
}

Time Dag::wcet(VertexId v) const {
  FEDCONS_EXPECTS(v < wcet_.size());
  return wcet_[v];
}

std::span<const VertexId> Dag::successors(VertexId v) const {
  FEDCONS_EXPECTS(v < wcet_.size());
  return succ_[v];
}

std::span<const VertexId> Dag::predecessors(VertexId v) const {
  FEDCONS_EXPECTS(v < wcet_.size());
  return pred_[v];
}

std::size_t Dag::in_degree(VertexId v) const { return predecessors(v).size(); }

std::size_t Dag::out_degree(VertexId v) const { return successors(v).size(); }

bool Dag::has_edge(VertexId from, VertexId to) const {
  FEDCONS_EXPECTS(from < wcet_.size());
  FEDCONS_EXPECTS(to < wcet_.size());
  const auto& s = succ_[from];
  return std::find(s.begin(), s.end(), to) != s.end();
}

void Dag::invalidate() noexcept {
  analyzed_ = false;
  topo_.clear();
  bottom_.clear();
  top_.clear();
  reduced_built_ = false;
  reduced_trivial_ = false;
  red_off_.clear();
  red_flat_.clear();
}

bool Dag::is_acyclic() const {
  if (analyzed_) return true;
  // Kahn's algorithm without committing results.
  std::vector<std::size_t> indeg(wcet_.size());
  for (std::size_t v = 0; v < wcet_.size(); ++v) indeg[v] = pred_[v].size();
  std::vector<VertexId> stack;
  for (std::size_t v = 0; v < wcet_.size(); ++v)
    if (indeg[v] == 0) stack.push_back(static_cast<VertexId>(v));
  std::size_t seen = 0;
  while (!stack.empty()) {
    VertexId v = stack.back();
    stack.pop_back();
    ++seen;
    for (VertexId w : succ_[v])
      if (--indeg[w] == 0) stack.push_back(w);
  }
  return seen == wcet_.size();
}

void Dag::ensure_analyzed() const {
  if (analyzed_) return;
  const std::size_t n = wcet_.size();

  // Deterministic Kahn: min-id among ready vertices first.
  std::vector<std::size_t> indeg(n);
  std::priority_queue<VertexId, std::vector<VertexId>, std::greater<>> ready;
  for (std::size_t v = 0; v < n; ++v) {
    indeg[v] = pred_[v].size();
    if (indeg[v] == 0) ready.push(static_cast<VertexId>(v));
  }
  topo_.clear();
  topo_.reserve(n);
  while (!ready.empty()) {
    VertexId v = ready.top();
    ready.pop();
    topo_.push_back(v);
    for (VertexId w : succ_[v])
      if (--indeg[w] == 0) ready.push(w);
  }
  FEDCONS_EXPECTS_MSG(topo_.size() == n, "graph contains a cycle");

  vol_ = 0;
  for (Time e : wcet_) vol_ = checked_add(vol_, e);

  // top level: forward pass in topo order.
  top_.assign(n, 0);
  for (VertexId v : topo_) {
    Time best = 0;
    for (VertexId p : pred_[v]) best = std::max(best, top_[p]);
    top_[v] = checked_add(best, wcet_[v]);
  }
  // bottom level: backward pass.
  bottom_.assign(n, 0);
  for (auto it = topo_.rbegin(); it != topo_.rend(); ++it) {
    VertexId v = *it;
    Time best = 0;
    for (VertexId s : succ_[v]) best = std::max(best, bottom_[s]);
    bottom_[v] = checked_add(best, wcet_[v]);
  }
  len_ = 0;
  for (std::size_t v = 0; v < n; ++v) len_ = std::max(len_, top_[v]);

  analyzed_ = true;
}

void Dag::ensure_reduced() const {
  if (reduced_built_) return;
  ensure_analyzed();
  const std::size_t n = wcet_.size();
  if (n > kMaxReductionVertices) {
    reduced_trivial_ = true;
    reduced_built_ = true;
    return;
  }
  // Reverse-topological sweep with one reachability bitset per vertex:
  // when u is visited, every successor's set is final. An edge (u, s) is
  // redundant iff s is reachable through some *other* successor, i.e. its
  // bit is set in the union of the successors' sets (s never appears in its
  // own set — the graph is acyclic — so the witness is a different vertex).
  const std::size_t words = (n + 63) / 64;
  std::vector<std::uint64_t> reach(n * words, 0);
  std::vector<std::uint64_t> via(words);
  red_off_.assign(n + 1, 0);
  red_flat_.clear();
  std::vector<std::vector<VertexId>> kept(n);
  for (auto it = topo_.rbegin(); it != topo_.rend(); ++it) {
    const VertexId u = *it;
    std::fill(via.begin(), via.end(), 0);
    for (VertexId s : succ_[u]) {
      const std::uint64_t* rs = reach.data() + std::size_t{s} * words;
      for (std::size_t w = 0; w < words; ++w) via[w] |= rs[w];
    }
    for (VertexId s : succ_[u]) {
      if ((via[s / 64] >> (s % 64) & 1) == 0) kept[u].push_back(s);
    }
    std::uint64_t* ru = reach.data() + std::size_t{u} * words;
    std::copy(via.begin(), via.end(), ru);
    for (VertexId s : succ_[u]) ru[s / 64] |= std::uint64_t{1} << (s % 64);
  }
  for (std::size_t v = 0; v < n; ++v) {
    red_off_[v + 1] =
        red_off_[v] + static_cast<std::uint32_t>(kept[v].size());
    red_flat_.insert(red_flat_.end(), kept[v].begin(), kept[v].end());
  }
  reduced_trivial_ = false;
  reduced_built_ = true;
}

std::span<const VertexId> Dag::reduced_successors(VertexId v) const {
  FEDCONS_EXPECTS(v < wcet_.size());
  ensure_reduced();
  if (reduced_trivial_) return succ_[v];
  return {red_flat_.data() + red_off_[v], red_off_[v + 1] - red_off_[v]};
}

const std::vector<VertexId>& Dag::topological_order() const {
  ensure_analyzed();
  return topo_;
}

Time Dag::vol() const {
  ensure_analyzed();
  return vol_;
}

Time Dag::len() const {
  ensure_analyzed();
  return len_;
}

Time Dag::bottom_level(VertexId v) const {
  FEDCONS_EXPECTS(v < wcet_.size());
  ensure_analyzed();
  return bottom_[v];
}

Time Dag::top_level(VertexId v) const {
  FEDCONS_EXPECTS(v < wcet_.size());
  ensure_analyzed();
  return top_[v];
}

std::vector<VertexId> Dag::critical_path() const {
  FEDCONS_EXPECTS(!empty());
  ensure_analyzed();
  // Start from a source with maximal bottom level, then greedily follow the
  // successor whose bottom level equals the remainder.
  VertexId cur = 0;
  Time best = -1;
  for (std::size_t v = 0; v < wcet_.size(); ++v) {
    if (pred_[v].empty() && bottom_[v] > best) {
      best = bottom_[v];
      cur = static_cast<VertexId>(v);
    }
  }
  std::vector<VertexId> path{cur};
  while (!succ_[cur].empty()) {
    Time want = bottom_[cur] - wcet_[cur];
    if (want == 0) break;
    VertexId next = cur;
    bool found = false;
    for (VertexId s : succ_[cur]) {
      if (bottom_[s] == want) {
        next = s;
        found = true;
        break;
      }
    }
    FEDCONS_ASSERT(found);
    path.push_back(next);
    cur = next;
  }
  return path;
}

bool Dag::reaches(VertexId from, VertexId to) const {
  FEDCONS_EXPECTS(from < wcet_.size());
  FEDCONS_EXPECTS(to < wcet_.size());
  ensure_analyzed();
  std::vector<bool> seen(wcet_.size(), false);
  std::vector<VertexId> stack{from};
  seen[from] = true;
  while (!stack.empty()) {
    VertexId v = stack.back();
    stack.pop_back();
    for (VertexId s : succ_[v]) {
      if (s == to) return true;
      if (!seen[s]) {
        seen[s] = true;
        stack.push_back(s);
      }
    }
  }
  return false;
}

std::vector<std::vector<bool>> Dag::transitive_closure() const {
  ensure_analyzed();
  const std::size_t n = wcet_.size();
  std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
  // Process in reverse topological order: reach[v] = union of successors.
  for (auto it = topo_.rbegin(); it != topo_.rend(); ++it) {
    VertexId v = *it;
    for (VertexId s : succ_[v]) {
      reach[v][s] = true;
      for (std::size_t w = 0; w < n; ++w)
        if (reach[s][w]) reach[v][w] = true;
    }
  }
  return reach;
}

std::size_t Dag::width() const {
  ensure_analyzed();
  const std::size_t n = wcet_.size();
  if (n == 0) return 0;
  // Dilworth: max antichain = n − max matching in the bipartite graph whose
  // edges are the comparable pairs (u ≺ v). Kuhn's augmenting-path matching.
  auto reach = transitive_closure();
  std::vector<int> match_right(n, -1);
  std::vector<bool> visited;
  // Recursive augmenting search expressed iteratively via a lambda + stack is
  // noisier than plain recursion; depth is bounded by n (small DAGs).
  auto try_kuhn = [&](auto&& self, std::size_t u) -> bool {
    for (std::size_t v = 0; v < n; ++v) {
      if (!reach[u][v] || visited[v]) continue;
      visited[v] = true;
      if (match_right[v] < 0 ||
          self(self, static_cast<std::size_t>(match_right[v]))) {
        match_right[v] = static_cast<int>(u);
        return true;
      }
    }
    return false;
  };
  std::size_t matching = 0;
  for (std::size_t u = 0; u < n; ++u) {
    visited.assign(n, false);
    if (try_kuhn(try_kuhn, u)) ++matching;
  }
  return n - matching;
}

std::string Dag::to_dot(const std::string& name) const {
  std::ostringstream os;
  os << "digraph " << name << " {\n";
  for (std::size_t v = 0; v < wcet_.size(); ++v) {
    os << "  v" << v << " [label=\"v" << v << " (e=" << wcet_[v] << ")\"];\n";
  }
  for (std::size_t v = 0; v < wcet_.size(); ++v) {
    for (VertexId s : succ_[v]) os << "  v" << v << " -> v" << s << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace fedcons
