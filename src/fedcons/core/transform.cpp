#include "fedcons/core/transform.h"

#include <vector>

#include "fedcons/util/check.h"

namespace fedcons {

namespace {

/// reach[u][v] == true iff v is reachable from u by a non-empty path.
std::vector<std::vector<bool>> reachability(const Dag& dag) {
  const std::size_t n = dag.num_vertices();
  std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
  const auto& topo = dag.topological_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    VertexId v = *it;
    for (VertexId s : dag.successors(v)) {
      reach[v][s] = true;
      for (std::size_t w = 0; w < n; ++w) {
        if (reach[s][w]) reach[v][w] = true;
      }
    }
  }
  return reach;
}

}  // namespace

Dag transitive_reduction(const Dag& dag) {
  FEDCONS_EXPECTS(dag.is_acyclic());
  auto reach = reachability(dag);
  Dag out;
  for (VertexId v = 0; v < dag.num_vertices(); ++v) out.add_vertex(dag.wcet(v));
  for (VertexId u = 0; u < dag.num_vertices(); ++u) {
    for (VertexId v : dag.successors(u)) {
      // (u, v) is redundant iff some other successor of u reaches v.
      bool redundant = false;
      for (VertexId w : dag.successors(u)) {
        if (w != v && reach[w][v]) {
          redundant = true;
          break;
        }
      }
      if (!redundant) out.add_edge(u, v);
    }
  }
  return out;
}

bool is_transitively_reduced(const Dag& dag) {
  if (!dag.is_acyclic()) return false;
  auto reach = reachability(dag);
  for (VertexId u = 0; u < dag.num_vertices(); ++u) {
    for (VertexId v : dag.successors(u)) {
      for (VertexId w : dag.successors(u)) {
        if (w != v && reach[w][v]) return false;
      }
    }
  }
  return true;
}

Dag merge_linear_chains(const Dag& dag) {
  FEDCONS_EXPECTS(dag.is_acyclic());
  const std::size_t n = dag.num_vertices();
  // A vertex v continues the chain of its predecessor p when
  // out_degree(p) == 1 and in_degree(v) == 1: merge v into p's group.
  std::vector<VertexId> group(n);
  for (VertexId v : dag.topological_order()) {
    group[v] = v;
    if (dag.in_degree(v) == 1) {
      VertexId p = dag.predecessors(v)[0];
      if (dag.out_degree(p) == 1) group[v] = group[p];
    }
  }
  // Build: one vertex per group head (in topo order of heads for stable,
  // deterministic ids).
  std::vector<Time> group_wcet(n, 0);
  for (VertexId v = 0; v < n; ++v) {
    group_wcet[group[v]] = checked_add(group_wcet[group[v]], dag.wcet(v));
  }
  std::vector<VertexId> new_id(n, 0);
  Dag out;
  for (VertexId v : dag.topological_order()) {
    if (group[v] == v) new_id[v] = out.add_vertex(group_wcet[v]);
  }
  for (VertexId v = 0; v < n; ++v) new_id[v] = new_id[group[v]];
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v : dag.successors(u)) {
      VertexId a = new_id[u];
      VertexId b = new_id[v];
      if (a != b && !out.has_edge(a, b)) out.add_edge(a, b);
    }
  }
  return out;
}

Dag sequentialize(const Dag& dag) {
  FEDCONS_EXPECTS(!dag.empty());
  FEDCONS_EXPECTS(dag.is_acyclic());
  Dag out;
  for (VertexId v = 0; v < dag.num_vertices(); ++v) out.add_vertex(dag.wcet(v));
  const auto& topo = dag.topological_order();
  for (std::size_t i = 1; i < topo.size(); ++i) {
    out.add_edge(topo[i - 1], topo[i]);
  }
  return out;
}

}  // namespace fedcons
