#include "fedcons/core/task_system.h"

#include <sstream>

#include "fedcons/util/check.h"

namespace fedcons {

const DagTask& TaskSystem::operator[](TaskId i) const {
  FEDCONS_EXPECTS(i < tasks_.size());
  return tasks_[i];
}

BigRational TaskSystem::total_utilization() const {
  BigRational sum;
  for (const auto& t : tasks_) sum += t.utilization();
  return sum;
}

BigRational TaskSystem::total_density() const {
  BigRational sum;
  for (const auto& t : tasks_) sum += t.density();
  return sum;
}

double TaskSystem::total_utilization_approx() const {
  double sum = 0.0;
  for (const auto& t : tasks_) sum += t.utilization_approx();
  return sum;
}

DeadlineClass TaskSystem::deadline_class() const noexcept {
  bool all_implicit = true;
  for (const auto& t : tasks_) {
    switch (t.deadline_class()) {
      case DeadlineClass::kImplicit:
        break;
      case DeadlineClass::kConstrained:
        all_implicit = false;
        break;
      case DeadlineClass::kArbitrary:
        return DeadlineClass::kArbitrary;
    }
  }
  return all_implicit ? DeadlineClass::kImplicit : DeadlineClass::kConstrained;
}

std::vector<TaskId> TaskSystem::high_density_tasks() const {
  std::vector<TaskId> out;
  for (TaskId i = 0; i < tasks_.size(); ++i)
    if (tasks_[i].is_high_density()) out.push_back(i);
  return out;
}

std::vector<TaskId> TaskSystem::low_density_tasks() const {
  std::vector<TaskId> out;
  for (TaskId i = 0; i < tasks_.size(); ++i)
    if (tasks_[i].is_low_density()) out.push_back(i);
  return out;
}

bool TaskSystem::all_critical_paths_feasible() const {
  for (const auto& t : tasks_)
    if (!t.critical_path_feasible()) return false;
  return true;
}

TaskSystem TaskSystem::scaled_by_speed(double s) const {
  std::vector<DagTask> scaled;
  scaled.reserve(tasks_.size());
  for (const auto& t : tasks_) scaled.push_back(t.scaled_by_speed(s));
  return TaskSystem(std::move(scaled));
}

std::string TaskSystem::summary() const {
  std::ostringstream os;
  os << "TaskSystem with " << tasks_.size() << " tasks ("
     << to_string(deadline_class()) << "-deadline), U_sum = "
     << total_utilization().to_string() << " ≈ "
     << total_utilization_approx() << "\n";
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    const auto& t = tasks_[i];
    os << "  τ" << i + 1;
    if (!t.name().empty()) os << " (" << t.name() << ")";
    os << ": |V|=" << t.graph().num_vertices()
       << " |E|=" << t.graph().num_edges() << " vol=" << t.vol()
       << " len=" << t.len() << " D=" << t.deadline() << " T=" << t.period()
       << " δ=" << t.density().to_string()
       << (t.is_high_density() ? " [HIGH]" : " [low]") << "\n";
  }
  return os.str();
}

}  // namespace fedcons
