#include "fedcons/core/dag_hash.h"

#include <algorithm>
#include <vector>

namespace fedcons {

namespace {

/// splitmix64 finalizer — the mixing primitive for every lane. Public-domain
/// constants (Vigna); deterministic across platforms.
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Order-dependent accumulator: h' = mix(h ⊕ mix(v)) with lane separation.
[[nodiscard]] std::uint64_t combine(std::uint64_t h, std::uint64_t v) noexcept {
  return mix64(h ^ (mix64(v) + 0x632be59bd9b4e019ULL + (h << 6) + (h >> 2)));
}

/// Digest a sorted label sequence into one lane (order-dependent fold over a
/// canonically ordered input = multiset hash).
[[nodiscard]] std::uint64_t fold(std::vector<std::uint64_t>& labels,
                                 std::uint64_t seed) noexcept {
  std::sort(labels.begin(), labels.end());
  std::uint64_t h = seed;
  for (const std::uint64_t l : labels) h = combine(h, l);
  return h;
}

/// One directed refinement pass: out[v] = H(e_v, sorted multiset of
/// out[neighbour(v)]), neighbours taken from `edges` (predecessors for the
/// downward pass over topo order, successors for the upward pass over the
/// reverse). `order` must list every neighbour before the vertex itself.
template <typename Neighbours>
std::vector<std::uint64_t> refine(const Dag& dag,
                                  const std::vector<VertexId>& order,
                                  Neighbours neighbours, std::uint64_t seed) {
  std::vector<std::uint64_t> label(dag.num_vertices(), 0);
  std::vector<std::uint64_t> scratch;
  for (const VertexId v : order) {
    scratch.clear();
    for (const VertexId n : neighbours(v)) scratch.push_back(label[n]);
    std::uint64_t h = fold(scratch, seed);
    h = combine(h, static_cast<std::uint64_t>(dag.wcet(v)));
    label[v] = h;
  }
  return label;
}

}  // namespace

std::string DagHash::to_hex() const {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    out[15 - i] = kDigits[(hi >> (4 * i)) & 0xf];
    out[31 - i] = kDigits[(lo >> (4 * i)) & 0xf];
  }
  return out;
}

DagHash canonical_dag_hash(const Dag& dag) {
  const std::size_t n = dag.num_vertices();
  if (n == 0) return {mix64(1), mix64(2)};

  const std::vector<VertexId>& topo = dag.topological_order();
  std::vector<VertexId> rev(topo.rbegin(), topo.rend());

  // Ancestor and descendant signatures, then two symmetrizing rounds.
  const std::vector<std::uint64_t> down = refine(
      dag, topo, [&](VertexId v) { return dag.predecessors(v); }, 0x11);
  const std::vector<std::uint64_t> up = refine(
      dag, rev, [&](VertexId v) { return dag.successors(v); }, 0x22);

  std::vector<std::uint64_t> base(n);
  for (std::size_t v = 0; v < n; ++v) {
    base[v] = combine(combine(0x33, down[v]), up[v]);
  }

  // One more neighbourhood round over the combined labels tightens ties the
  // directional passes leave (e.g. siblings with equal subtrees).
  std::vector<std::uint64_t> final_label(n);
  std::vector<std::uint64_t> scratch;
  for (std::size_t v = 0; v < n; ++v) {
    const VertexId id = static_cast<VertexId>(v);
    scratch.assign(dag.predecessors(id).begin(), dag.predecessors(id).end());
    for (auto& x : scratch) x = base[static_cast<std::size_t>(x)];
    std::uint64_t h = fold(scratch, 0x44);
    scratch.assign(dag.successors(id).begin(), dag.successors(id).end());
    for (auto& x : scratch) x = base[static_cast<std::size_t>(x)];
    h = combine(h, fold(scratch, 0x55));
    final_label[v] = combine(h, base[v]);
  }

  // Digest: counts, the label multiset, and the edge-pair multiset (edges as
  // ordered (l(u), l(v)) pairs — direction matters).
  std::vector<std::uint64_t> vertex_labels = final_label;
  std::uint64_t hi = combine(combine(0x66, n), dag.num_edges());
  hi = combine(hi, fold(vertex_labels, 0x77));

  std::vector<std::uint64_t> edge_labels;
  edge_labels.reserve(dag.num_edges());
  for (std::size_t v = 0; v < n; ++v) {
    const VertexId id = static_cast<VertexId>(v);
    for (const VertexId w : dag.successors(id)) {
      edge_labels.push_back(
          combine(combine(0x88, final_label[v]), final_label[w]));
    }
  }
  std::uint64_t lo = combine(combine(0x99, n), dag.num_edges());
  lo = combine(lo, fold(edge_labels, 0xaa));
  // Cross the lanes so each depends on both multisets.
  return {combine(hi, lo), combine(lo, mix64(hi))};
}

DagHash canonical_task_hash(const DagTask& task) {
  const DagHash g = canonical_dag_hash(task.graph());
  const std::uint64_t d = static_cast<std::uint64_t>(task.deadline());
  const std::uint64_t t = static_cast<std::uint64_t>(task.period());
  return {combine(combine(g.hi, d), t),
          combine(combine(g.lo, t), mix64(d))};
}

}  // namespace fedcons
