#include "fedcons/core/dag_task.h"

#include <cmath>

#include "fedcons/util/check.h"

namespace fedcons {

const char* to_string(DeadlineClass c) noexcept {
  switch (c) {
    case DeadlineClass::kImplicit: return "implicit";
    case DeadlineClass::kConstrained: return "constrained";
    case DeadlineClass::kArbitrary: return "arbitrary";
  }
  return "?";
}

DagTask::DagTask(Dag graph, Time deadline, Time period, std::string name)
    : graph_(std::move(graph)),
      deadline_(deadline),
      period_(period),
      vol_(0),
      len_(0),
      name_(std::move(name)) {
  FEDCONS_EXPECTS_MSG(!graph_.empty(), "task graph must be non-empty");
  FEDCONS_EXPECTS_MSG(graph_.is_acyclic(), "task graph must be acyclic");
  FEDCONS_EXPECTS_MSG(deadline_ >= 1, "deadline must be positive");
  FEDCONS_EXPECTS_MSG(period_ >= 1, "period must be positive");
  vol_ = graph_.vol();
  len_ = graph_.len();
}

DagTask DagTask::scaled_by_speed(double s) const {
  FEDCONS_EXPECTS_MSG(s > 0.0, "speed must be positive");
  Dag g;
  for (VertexId v = 0; v < graph_.num_vertices(); ++v) {
    double scaled = std::ceil(static_cast<double>(graph_.wcet(v)) / s);
    g.add_vertex(std::max<Time>(1, static_cast<Time>(scaled)));
  }
  for (VertexId v = 0; v < graph_.num_vertices(); ++v) {
    for (VertexId w : graph_.successors(v)) g.add_edge(v, w);
  }
  return DagTask(std::move(g), deadline_, period_, name_);
}

}  // namespace fedcons
