// The classic three-parameter sporadic task model (Mok, 1983).
//
// Used in two places:
//  * Algorithm PARTITION treats each low-density DAG task as the sequential
//    sporadic task (C = vol_i, D_i, T_i) — on a single processor intra-task
//    parallelism cannot be exploited, so the DAG's internal structure is
//    irrelevant (paper, Section IV-B).
//  * The exact uniprocessor EDF analysis (analysis/edf_uniproc.h) and the
//    demand bound functions (analysis/dbf.h) are defined over this model.
#pragma once

#include "fedcons/util/check.h"
#include "fedcons/util/rational.h"
#include "fedcons/util/time_types.h"

namespace fedcons {

/// A three-parameter sporadic task (C, D, T): jobs arrive at least T apart,
/// each needs up to C units of sequential execution within D of its arrival.
struct SporadicTask {
  Time wcet = 0;      ///< C: worst-case execution time
  Time deadline = 0;  ///< D: relative deadline
  Time period = 0;    ///< T: minimum inter-arrival separation

  SporadicTask() = default;
  SporadicTask(Time c, Time d, Time t) : wcet(c), deadline(d), period(t) {
    FEDCONS_EXPECTS_MSG(c >= 1, "WCET must be positive");
    FEDCONS_EXPECTS_MSG(d >= 1, "deadline must be positive");
    FEDCONS_EXPECTS_MSG(t >= 1, "period must be positive");
  }

  /// Utilization u = C/T, exactly.
  [[nodiscard]] BigRational utilization() const {
    return make_ratio(wcet, period);
  }

  /// Density δ = C / min(D, T), exactly.
  [[nodiscard]] BigRational density() const {
    return make_ratio(wcet, std::min(deadline, period));
  }

  [[nodiscard]] bool is_implicit_deadline() const noexcept {
    return deadline == period;
  }
  [[nodiscard]] bool is_constrained_deadline() const noexcept {
    return deadline <= period;
  }

  [[nodiscard]] bool operator==(const SporadicTask&) const = default;
};

}  // namespace fedcons
