// Thread-safe span tracing with Chrome trace-event JSON export.
//
// The tracer answers the wall-clock question the deterministic perf counters
// cannot: where do the BatchRunner's threads actually spend time? Each
// FEDCONS_SPAN(cat, name) expands to an RAII guard that, when tracing is
// enabled, records a complete ("ph":"X") event — start timestamp and duration
// from the steady clock — into the calling thread's buffer. Buffers are
// per-thread (one mutex each, never contended on the hot path by other
// threads except during collection), registered in a global list so
// write_chrome_trace() can merge them into one JSON document loadable in
// Perfetto / chrome://tracing.
//
// Disabled-path contract (the default): a span costs exactly one relaxed
// atomic load and one branch — no allocation, no clock read, no lock. The
// library is built with tracing compiled in; binaries opt in per run
// (e.g. fedcons_cli --trace-out=t.json). Verdicts, counters, and report
// bytes are independent of the tracing flag by construction: the tracer
// observes, it never steers.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <vector>

namespace fedcons {
namespace obs {

/// One completed span. `name`, `cat`, and `arg_key` must be pointers to
/// string literals (or other storage outliving the tracer) — spans never
/// copy strings, which keeps recording allocation-free after buffer growth.
struct TraceEvent {
  const char* name = nullptr;
  const char* cat = nullptr;
  std::int64_t ts_ns = 0;   ///< start, relative to the trace epoch
  std::int64_t dur_ns = 0;  ///< duration (>= 0)
  std::uint32_t tid = 0;    ///< tracer-assigned small thread id
  const char* arg_key = nullptr;  ///< optional numeric annotation key
  std::int64_t arg_val = 0;       ///< meaningful iff arg_key != nullptr
};

namespace detail {
extern std::atomic<bool> g_tracing_enabled;
void record_span(const char* cat, const char* name, std::int64_t ts_ns,
                 std::int64_t dur_ns, const char* arg_key,
                 std::int64_t arg_val);
[[nodiscard]] std::int64_t now_ns();
}  // namespace detail

/// The single branch every disabled span pays.
[[nodiscard]] inline bool tracing_enabled() noexcept {
  return detail::g_tracing_enabled.load(std::memory_order_relaxed);
}

/// Toggle recording. Spans already open keep recording to completion;
/// enabling mid-span records nothing for that span (the guard latched the
/// disabled state at construction).
void set_tracing_enabled(bool enabled);

/// Current time on the trace clock (nanoseconds since the trace epoch) —
/// for call sites that stamp stage timestamps themselves and emit spans
/// after the fact via record_span_at (the serve pipeline stamps a request
/// at enqueue on one thread and emits its spans from the dispatcher).
[[nodiscard]] inline std::int64_t trace_now_ns() { return detail::now_ns(); }

/// Record one completed span from explicit trace-clock timestamps, into the
/// CALLING thread's buffer. Same literal-lifetime contract as SpanGuard for
/// cat/name/arg_key; a no-op branch when tracing is disabled.
inline void record_span_at(const char* cat, const char* name,
                           std::int64_t ts_ns, std::int64_t dur_ns,
                           const char* arg_key = nullptr,
                           std::int64_t arg_val = 0) {
  if (tracing_enabled()) {
    detail::record_span(cat, name, ts_ns, dur_ns, arg_key, arg_val);
  }
}

/// Drop all recorded events (buffers stay registered; thread ids persist).
void reset_trace();

/// Snapshot every thread's events, ordered by (tid, ts_ns) — a deterministic
/// presentation order for a given set of recorded events.
[[nodiscard]] std::vector<TraceEvent> collect_trace_events();

/// Write the Chrome trace-event format (JSON object form,
/// {"traceEvents": [...]}, timestamps in microseconds) for everything
/// recorded so far. Loadable in Perfetto and chrome://tracing.
void write_chrome_trace(std::ostream& os);

/// RAII span. Constructed disabled → destructor is a no-op branch.
class SpanGuard {
 public:
  SpanGuard(const char* cat, const char* name, const char* arg_key = nullptr,
            std::int64_t arg_val = 0) noexcept
      : cat_(cat), name_(name), arg_key_(arg_key), arg_val_(arg_val) {
    if (tracing_enabled()) {
      start_ns_ = detail::now_ns();
      active_ = true;
    }
  }
  ~SpanGuard() {
    if (active_) {
      const std::int64_t end = detail::now_ns();
      detail::record_span(cat_, name_, start_ns_, end - start_ns_, arg_key_,
                          arg_val_);
    }
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

 private:
  const char* cat_;
  const char* name_;
  const char* arg_key_;
  std::int64_t arg_val_;
  std::int64_t start_ns_ = 0;
  bool active_ = false;
};

}  // namespace obs
}  // namespace fedcons

#define FEDCONS_SPAN_CONCAT_(a, b) a##b
#define FEDCONS_SPAN_CONCAT(a, b) FEDCONS_SPAN_CONCAT_(a, b)

/// Trace the enclosing scope as one span: FEDCONS_SPAN("minprocs", "scan").
#define FEDCONS_SPAN(cat, name)                            \
  ::fedcons::obs::SpanGuard FEDCONS_SPAN_CONCAT(           \
      fedcons_span_, __LINE__)(cat, name)

/// Span with one numeric annotation rendered into the event's "args":
/// FEDCONS_SPAN_V("engine", "trial", "index", i).
#define FEDCONS_SPAN_V(cat, name, key, val)                \
  ::fedcons::obs::SpanGuard FEDCONS_SPAN_CONCAT(           \
      fedcons_span_, __LINE__)(cat, name, key,             \
                               static_cast<std::int64_t>(val))
