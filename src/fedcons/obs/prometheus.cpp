#include "fedcons/obs/prometheus.h"

namespace fedcons {
namespace obs {

void PrometheusWriter::header(std::string_view name, std::string_view help,
                              std::string_view type) {
  out_ += "# HELP ";
  out_ += name;
  out_ += ' ';
  out_ += help;
  out_ += "\n# TYPE ";
  out_ += name;
  out_ += ' ';
  out_ += type;
  out_ += '\n';
}

void PrometheusWriter::sample(std::string_view name, std::string_view suffix,
                              std::string_view label_key,
                              std::string_view label_value,
                              std::string_view extra_key,
                              const std::string& extra_value,
                              std::uint64_t v) {
  out_ += name;
  out_ += suffix;
  const bool has_label = !label_key.empty();
  const bool has_extra = !extra_key.empty();
  if (has_label || has_extra) {
    out_ += '{';
    if (has_label) {
      out_ += label_key;
      out_ += "=\"";
      out_ += label_value;
      out_ += '"';
    }
    if (has_extra) {
      if (has_label) out_ += ',';
      out_ += extra_key;
      out_ += "=\"";
      out_ += extra_value;
      out_ += '"';
    }
    out_ += '}';
  }
  out_ += ' ';
  out_ += std::to_string(v);
  out_ += '\n';
}

void PrometheusWriter::counter(std::string_view name, std::string_view help,
                               std::uint64_t v, std::string_view label_key,
                               std::string_view label_value) {
  if (last_family_ != name) {
    header(name, help, "counter");
    last_family_ = name;
  }
  sample(name, "", label_key, label_value, {}, {}, v);
}

void PrometheusWriter::gauge(std::string_view name, std::string_view help,
                             std::uint64_t v, std::string_view label_key,
                             std::string_view label_value) {
  if (last_family_ != name) {
    header(name, help, "gauge");
    last_family_ = name;
  }
  sample(name, "", label_key, label_value, {}, {}, v);
}

void PrometheusWriter::histogram(std::string_view name, std::string_view help,
                                 const Histogram& h,
                                 std::string_view label_key,
                                 std::string_view label_value) {
  if (last_family_ != name) {
    header(name, help, "histogram");
    last_family_ = name;
  }
  std::size_t last = 0;
  for (std::size_t b = 0; b < h.buckets().size(); ++b) {
    if (h.buckets()[b] != 0) last = b;
  }
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b <= last; ++b) {
    cumulative += h.buckets()[b];
    // le of log2 bucket b: inclusive upper bound 2^b - 1 (bucket 0 = {0}).
    const std::uint64_t le =
        b == 0 ? 0
               : (b >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << b) - 1);
    sample(name, "_bucket", label_key, label_value, "le", std::to_string(le),
           cumulative);
  }
  sample(name, "_bucket", label_key, label_value, "le", "+Inf", h.count());
  sample(name, "_sum", label_key, label_value, {}, {}, h.sum());
  sample(name, "_count", label_key, label_value, {}, {}, h.count());
}

}  // namespace obs
}  // namespace fedcons
