#include "fedcons/obs/provenance.h"

#include <sstream>

#include "fedcons/util/table.h"

namespace fedcons {

const char* to_string(BinRejectReason r) noexcept {
  switch (r) {
    case BinRejectReason::kUtilization: return "utilization";
    case BinRejectReason::kDemand: return "demand";
    case BinRejectReason::kExactEdf: return "exact-edf";
  }
  return "?";
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c; break;
    }
  }
  return out;
}

std::string task_label(const TaskSystem& system, TaskId i) {
  std::string s = "τ" + std::to_string(i + 1);
  if (!system[i].name().empty()) s += " '" + system[i].name() + "'";
  return s;
}

void render_scan_text(std::ostringstream& os, const TaskSystem& system,
                      const ClusterProvenance& c) {
  const DagTask& task = system[c.task];
  os << "  " << task_label(system, c.task) << " (δ≈"
     << fmt_double(task.density_approx(), 2) << ", vol=" << task.vol()
     << ", len=" << task.len() << ", D=" << task.deadline() << "): ";
  const MinprocsProvenance& s = c.scan;
  if (s.len_exceeds_deadline) {
    os << "len > D — no processor count can meet the deadline "
          "(critical path alone overruns)\n";
    return;
  }
  os << "scan μ ∈ [⌈δ⌉=" << s.scan_lb << ", min(m_r=" << s.max_processors
     << ", cap=" << s.scan_cap << ")]";
  if (s.satisfied) {
    os << " → μ=" << s.chosen_mu;
  } else if (s.probes.empty()) {
    os << " → EXHAUSTED: scan start ⌈δ⌉=" << s.scan_lb << " already exceeds m_r="
       << s.max_processors << " (no probe run)";
  } else {
    os << " → EXHAUSTED m_r=" << s.max_processors << ": best makespan "
       << s.best_makespan << " at μ=" << s.best_mu << " > D="
       << task.deadline();
  }
  os << "; probes:";
  if (s.probes.empty()) os << " (none)";
  for (const auto& p : s.probes) {
    os << " μ=" << p.mu << ":" << p.makespan;
  }
  os << "\n";
}

void render_placement_text(std::ostringstream& os, const TaskSystem& system,
                           const FedconsProvenance& prov,
                           const PlacementRecord& pl) {
  const TaskId id = pl.task_index < prov.low_tasks.size()
                        ? prov.low_tasks[pl.task_index]
                        : pl.task_index;
  os << "  " << task_label(system, id) << " (D=" << pl.deadline
     << ", C=" << pl.wcet << ")";
  if (pl.chosen_bin >= 0) {
    os << " → bin " << pl.chosen_bin;
    // Bins skipped on the way (first-fit): name each failing breakpoint.
    for (const auto& a : pl.attempts) {
      if (a.fits) continue;
      os << "; bin " << a.bin << " refused (" << a.detail << ")";
    }
    os << "\n";
    return;
  }
  os << ": NO BIN FIT\n";
  for (const auto& a : pl.attempts) {
    os << "      bin " << a.bin << ": " << a.detail << "\n";
  }
}

}  // namespace

std::string explain_text(const TaskSystem& system,
                         const FedconsProvenance& prov) {
  std::ostringstream os;
  os << "FEDCONS on m=" << prov.m << ": ";
  if (prov.success) {
    os << "ACCEPTED\n";
  } else {
    os << "REJECTED in " << prov.failure;
    if (prov.failed_task.has_value()) {
      os << " (" << task_label(system, *prov.failed_task) << ")";
    }
    os << "\n";
  }
  os << "phase 1 — MINPROCS template clusters (" << prov.clusters.size()
     << " high-density task(s)):\n";
  if (prov.clusters.empty()) os << "  (no high-density tasks)\n";
  for (const auto& c : prov.clusters) render_scan_text(os, system, c);
  os << "phase 2 — PARTITION deadline-monotonic first-fit";
  if (!prov.partition_reached) {
    os << ": not reached (phase 1 failed)\n";
    return os.str();
  }
  os << " on m_r=" << prov.shared_processors << " shared processor(s), "
     << prov.low_tasks.size() << " low-density task(s):\n";
  if (prov.partition.placements.empty()) os << "  (nothing to place)\n";
  for (const auto& pl : prov.partition.placements) {
    render_placement_text(os, system, prov, pl);
  }
  if (!prov.success && prov.failure == "partition-phase") {
    os << "  (placement aborts at the first task that fits nowhere; "
          "later tasks were not attempted)\n";
  }
  return os.str();
}

std::string explain_json(const TaskSystem& system,
                         const FedconsProvenance& prov) {
  std::ostringstream os;
  os << "{\n  \"schema_version\": 1,\n";
  os << "  \"m\": " << prov.m << ",\n";
  os << "  \"schedulable\": " << (prov.success ? "true" : "false") << ",\n";
  os << "  \"failure\": \"" << json_escape(prov.failure) << "\",\n";
  os << "  \"failed_task\": ";
  if (prov.failed_task.has_value()) {
    os << *prov.failed_task;
  } else {
    os << "null";
  }
  os << ",\n  \"clusters\": [\n";
  for (std::size_t i = 0; i < prov.clusters.size(); ++i) {
    const ClusterProvenance& c = prov.clusters[i];
    const MinprocsProvenance& s = c.scan;
    os << "    {\"task\": " << c.task << ", \"name\": \""
       << json_escape(system[c.task].name()) << "\", \"deadline\": "
       << system[c.task].deadline() << ", \"m_r_at_entry\": "
       << c.m_r_at_entry << ", \"scan_lb\": " << s.scan_lb
       << ", \"scan_cap\": " << s.scan_cap << ", \"len_exceeds_deadline\": "
       << (s.len_exceeds_deadline ? "true" : "false")
       << ", \"satisfied\": " << (s.satisfied ? "true" : "false")
       << ", \"chosen_mu\": " << s.chosen_mu << ", \"best_mu\": " << s.best_mu
       << ", \"best_makespan\": ";
    if (s.best_makespan == kTimeInfinity) {
      os << "null";
    } else {
      os << s.best_makespan;
    }
    os << ", \"probes\": [";
    for (std::size_t p = 0; p < s.probes.size(); ++p) {
      if (p) os << ", ";
      os << "{\"mu\": " << s.probes[p].mu << ", \"makespan\": "
         << s.probes[p].makespan << "}";
    }
    os << "]}" << (i + 1 < prov.clusters.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"partition_reached\": "
     << (prov.partition_reached ? "true" : "false") << ",\n";
  os << "  \"shared_processors\": " << prov.shared_processors << ",\n";
  os << "  \"placements\": [\n";
  const auto& pls = prov.partition.placements;
  for (std::size_t i = 0; i < pls.size(); ++i) {
    const PlacementRecord& pl = pls[i];
    const TaskId id = pl.task_index < prov.low_tasks.size()
                          ? prov.low_tasks[pl.task_index]
                          : pl.task_index;
    os << "    {\"task\": " << id << ", \"deadline\": " << pl.deadline
       << ", \"wcet\": " << pl.wcet << ", \"chosen_bin\": " << pl.chosen_bin
       << ", \"attempts\": [";
    for (std::size_t a = 0; a < pl.attempts.size(); ++a) {
      const BinAttemptRecord& at = pl.attempts[a];
      if (a) os << ", ";
      os << "{\"bin\": " << at.bin << ", \"fits\": "
         << (at.fits ? "true" : "false");
      if (!at.fits) {
        os << ", \"reason\": \"" << to_string(at.reason) << "\", "
           << "\"breakpoint\": " << at.breakpoint << ", \"detail\": \""
           << json_escape(at.detail) << "\"";
      }
      os << "}";
    }
    os << "]}" << (i + 1 < pls.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

}  // namespace fedcons
