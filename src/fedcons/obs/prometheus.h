// Prometheus text-exposition (version 0.0.4) rendering for the obs layer.
//
// The serve daemon's stats snapshot is a struct of counters plus log2
// histograms; a Prometheus scrape wants the same facts as line-oriented
// text: `# HELP`/`# TYPE` headers, one sample per line, histograms as
// CUMULATIVE le-labeled buckets ending in le="+Inf". This writer maps the
// repo's conventions onto that format deterministically (fixed emission
// order, no timestamps — the scraper stamps scrape time), so the output is
// golden-testable byte for byte.
//
// Log2 bucket b of obs::Histogram holds values in [2^(b-1), 2^b) (bucket 0
// holds {0}), so its inclusive upper bound — the Prometheus `le` value — is
// 2^b - 1 (le="0" for bucket 0). Buckets are emitted from 0 through the
// last non-empty bucket, cumulatively, then le="+Inf" carrying the total
// count; `_sum` and `_count` close the family. An empty histogram still
// emits le="0", +Inf, _sum, _count so the metric family never vanishes
// between scrapes.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "fedcons/obs/metrics.h"

namespace fedcons {
namespace obs {

class PrometheusWriter {
 public:
  /// Monotone totals (requests served, errors seen, busy microseconds).
  void counter(std::string_view name, std::string_view help, std::uint64_t v,
               std::string_view label_key = {},
               std::string_view label_value = {});
  /// Instantaneous values (queue depth, uptime).
  void gauge(std::string_view name, std::string_view help, std::uint64_t v,
             std::string_view label_key = {},
             std::string_view label_value = {});
  /// One log2 histogram as a cumulative-bucket family. An optional label
  /// distinguishes sibling series (e.g. op="admit" vs op="release"); the
  /// HELP/TYPE header is emitted once per family name, on first use.
  void histogram(std::string_view name, std::string_view help,
                 const Histogram& h, std::string_view label_key = {},
                 std::string_view label_value = {});

  [[nodiscard]] const std::string& str() const noexcept { return out_; }

 private:
  void header(std::string_view name, std::string_view help,
              std::string_view type);
  void sample(std::string_view name, std::string_view suffix,
              std::string_view label_key, std::string_view label_value,
              std::string_view extra_key, const std::string& extra_value,
              std::uint64_t v);

  std::string out_;
  std::string last_family_;  ///< header dedup for labeled histogram siblings
};

}  // namespace obs
}  // namespace fedcons
