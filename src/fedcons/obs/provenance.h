// Verdict provenance: structured decision records for every FEDCONS phase.
//
// A bare "unschedulable" hides which phase ran out of capacity and which
// concrete probe failed — exactly the information needed to study where the
// 3 − 1/m bound bites (and the lens through which the negative result of
// Chen, arXiv:1510.07254, and the semi-federated waste-attribution argument,
// arXiv:1705.03245, examine federated scheduling). When recording is
// requested, the algorithm fills these records as it runs: the per-task
// phase classification δ_i, the full μ-scan trajectory (each LS probe's
// makespan against D_i), and the per-placement bin-attempt list with the
// failing DBF* breakpoint. Recording only observes computations the
// algorithm already performs — verdicts and perf counters are identical
// with recording on or off (pinned by tests/obs_provenance_test.cpp).
//
// Rendering: explain_text() for humans, explain_json() for machines
// (fedcons_cli --explain / --explain=json).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "fedcons/core/task_system.h"
#include "fedcons/util/time_types.h"

namespace fedcons {

/// One LS probe of the MINPROCS scan: μ processors → makespan.
struct MinprocsProbeRecord {
  int mu = 0;
  Time makespan = 0;
};

/// The μ-scan trajectory of one high-density task.
struct MinprocsProvenance {
  int scan_lb = 0;          ///< ⌈δ_i⌉ — where the scan starts
  Time scan_cap = 0;        ///< Graham-bound cap μ_ub (0 when len > D)
  int max_processors = 0;   ///< m_r offered to the scan
  bool len_exceeds_deadline = false;  ///< trivially hopeless: no probe runs
  std::vector<MinprocsProbeRecord> probes;  ///< in scan order
  bool satisfied = false;
  int chosen_mu = 0;        ///< meaningful iff satisfied
  /// Best (smallest) makespan seen across all probes, and where — the
  /// witness reported when the scan exhausts m_r.
  Time best_makespan = kTimeInfinity;
  int best_mu = 0;
};

/// Why a bin rejected a placement probe.
enum class BinRejectReason {
  kUtilization,  ///< Σu + u_cand > 1 (kFull long-run capacity condition)
  kDemand,       ///< DBF* demand exceeded capacity at `breakpoint`
  kExactEdf,     ///< exact EDF test (QPA) rejected bin ∪ {candidate}
};

[[nodiscard]] const char* to_string(BinRejectReason r) noexcept;

/// One (task, bin) acceptance probe.
struct BinAttemptRecord {
  int bin = 0;
  bool fits = false;
  BinRejectReason reason = BinRejectReason::kDemand;  ///< iff !fits
  Time breakpoint = -1;  ///< failing DBF* breakpoint; -1 unless kDemand
  std::string detail;    ///< exact demand vs capacity, human-readable
};

/// One low-density task's journey through the first-fit loop.
struct PlacementRecord {
  std::size_t task_index = 0;  ///< input-span order (see FedconsProvenance)
  Time deadline = 0;
  Time wcet = 0;  ///< vol_i of the sequentialized task
  int chosen_bin = -1;  ///< -1 when no bin fit (the failure witness)
  std::vector<BinAttemptRecord> attempts;  ///< bins probed, in probe order
};

/// PARTITION's decision log, in placement (sorted) order.
struct PartitionProvenance {
  int num_processors = 0;
  std::vector<PlacementRecord> placements;
};

/// One high-density task's dedicated-cluster decision.
struct ClusterProvenance {
  TaskId task = 0;
  int m_r_at_entry = 0;  ///< processors remaining when the scan started
  MinprocsProvenance scan;
};

/// The complete decision record of one fedcons_schedule() run.
struct FedconsProvenance {
  int m = 0;
  bool success = false;
  std::string failure;  ///< to_string(FedconsFailure): phase that failed
  std::optional<TaskId> failed_task;
  std::vector<ClusterProvenance> clusters;  ///< high-density tasks, in order
  bool partition_reached = false;
  int shared_processors = 0;  ///< m_r after phase 1 (iff partition_reached)
  /// Maps PlacementRecord::task_index → TaskId (the low-density tasks in
  /// system order, i.e. the span PARTITION received).
  std::vector<TaskId> low_tasks;
  PartitionProvenance partition;
};

/// Human-readable rendering: the verdict, then per-phase decision lines with
/// the concrete witness for every rejection (μ-scan exhaustion with the best
/// makespan achieved, or the per-bin DBF* breakpoints that failed).
[[nodiscard]] std::string explain_text(const TaskSystem& system,
                                       const FedconsProvenance& prov);

/// Machine-readable rendering; fixed key order, carries "schema_version".
[[nodiscard]] std::string explain_json(const TaskSystem& system,
                                       const FedconsProvenance& prov);

}  // namespace fedcons
