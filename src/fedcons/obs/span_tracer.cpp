#include "fedcons/obs/span_tracer.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>
#include <ostream>

namespace fedcons {
namespace obs {

namespace detail {

std::atomic<bool> g_tracing_enabled{false};

namespace {

/// One thread's event log. Owned jointly by the thread (thread_local
/// shared_ptr) and the registry, so collection works after the thread exits.
struct ThreadBuffer {
  std::uint32_t tid = 0;
  std::mutex mutex;  ///< guards events: owner appends, collector snapshots
  std::vector<TraceEvent> events;
};

struct Registry {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::uint32_t next_tid = 0;
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: outlives exiting threads
  return *r;
}

ThreadBuffer& this_thread_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buf = [] {
    auto b = std::make_shared<ThreadBuffer>();
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    b->tid = reg.next_tid++;
    reg.buffers.push_back(b);
    return b;
  }();
  return *buf;
}

/// Trace epoch: first clock read in the process. Timestamps are relative so
/// the JSON stays in a human-scale microsecond range.
std::int64_t epoch_ns() {
  static const std::int64_t e =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  return e;
}

}  // namespace

std::int64_t now_ns() {
  // Latch the epoch BEFORE reading the current time, so the very first
  // timestamp (the one that initializes the epoch) is >= 0.
  const std::int64_t epoch = epoch_ns();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
             .count() -
         epoch;
}

void record_span(const char* cat, const char* name, std::int64_t ts_ns,
                 std::int64_t dur_ns, const char* arg_key,
                 std::int64_t arg_val) {
  ThreadBuffer& buf = this_thread_buffer();
  std::lock_guard<std::mutex> lock(buf.mutex);
  buf.events.push_back(
      TraceEvent{name, cat, ts_ns, dur_ns, buf.tid, arg_key, arg_val});
}

}  // namespace detail

void set_tracing_enabled(bool enabled) {
  detail::g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

void reset_trace() {
  auto& reg = detail::registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  for (auto& buf : reg.buffers) {
    std::lock_guard<std::mutex> buf_lock(buf->mutex);
    buf->events.clear();
  }
}

std::vector<TraceEvent> collect_trace_events() {
  std::vector<TraceEvent> out;
  auto& reg = detail::registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  for (auto& buf : reg.buffers) {
    std::lock_guard<std::mutex> buf_lock(buf->mutex);
    out.insert(out.end(), buf->events.begin(), buf->events.end());
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.tid != b.tid) return a.tid < b.tid;
                     return a.ts_ns < b.ts_ns;
                   });
  return out;
}

namespace {

/// Nanoseconds → microseconds with three decimals ("12.345"), matching the
/// trace-event format's microsecond convention without floating point.
void write_us(std::ostream& os, std::int64_t ns) {
  const bool neg = ns < 0;
  std::uint64_t v = neg ? static_cast<std::uint64_t>(-ns)
                        : static_cast<std::uint64_t>(ns);
  if (neg) os << '-';
  os << (v / 1000) << '.';
  const std::uint64_t frac = v % 1000;
  os << static_cast<char>('0' + frac / 100)
     << static_cast<char>('0' + (frac / 10) % 10)
     << static_cast<char>('0' + frac % 10);
}

}  // namespace

void write_chrome_trace(std::ostream& os) {
  const std::vector<TraceEvent> events = collect_trace_events();
  os << "{\"traceEvents\": [";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (i) os << ',';
    os << "\n  {\"ph\": \"X\", \"pid\": 1, \"tid\": " << e.tid
       << ", \"name\": \"" << e.name << "\", \"cat\": \"" << e.cat
       << "\", \"ts\": ";
    write_us(os, e.ts_ns);
    os << ", \"dur\": ";
    write_us(os, e.dur_ns);
    if (e.arg_key != nullptr) {
      os << ", \"args\": {\"" << e.arg_key << "\": " << e.arg_val << "}";
    }
    os << "}";
  }
  os << "\n], \"displayTimeUnit\": \"ms\"}\n";
}

}  // namespace obs
}  // namespace fedcons
