// Batch-level metrics: histograms aggregated deterministically in trial order.
//
// Where the span tracer shows one run's timeline, the metrics registry
// summarizes distributions across a whole batch: per-trial wall-clock
// latency, the μ chosen per high-density task, and the bins touched per
// partition placement. Collection mirrors the perf-counter discipline —
// thread-local raw-value collectors, one trial at a time per worker, each
// trial's values snapshotted into its result slot and merged in trial-index
// order — so the logical histograms (μ, bins) are bit-identical for any
// thread count. Latency is physical wall-clock and varies run to run; it is
// therefore only emitted when metrics were explicitly requested
// (e.g. bench_e3 --metrics), never in default reports.
//
// Disabled-path contract: each observation point costs one relaxed atomic
// load and a branch.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "fedcons/util/table.h"

namespace fedcons {
namespace obs {

/// Log2-bucketed histogram over non-negative integer samples. Bucket b holds
/// values in [2^(b-1), 2^b) (bucket 0 holds {0}); percentiles are reported
/// as the upper bound of the bucket containing the rank — a ≤2× estimate,
/// which is the right fidelity for latency-style distributions.
class Histogram {
 public:
  void add(std::uint64_t v) noexcept;
  void merge(const Histogram& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  [[nodiscard]] std::uint64_t min() const noexcept { return count_ ? min_ : 0; }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
  }
  /// Upper bound of the bucket holding the p-th percentile sample (p in
  /// [0, 100]); 0 when empty.
  [[nodiscard]] std::uint64_t percentile(double p) const noexcept;

  [[nodiscard]] const std::array<std::uint64_t, 65>& buckets() const noexcept {
    return buckets_;
  }
  [[nodiscard]] bool operator==(const Histogram&) const noexcept = default;

  /// Interval view between two cumulative snapshots: (*this) must have been
  /// produced by adding samples to `earlier` (same histogram, later in time).
  /// Bucket counts, count, and sum are exact — the delta's buckets equal the
  /// histogram of exactly the samples added in between, which is what makes
  /// monitoring-loop rate/percentile math from periodic snapshots sound.
  /// min/max cannot be recovered from cumulative state, so they are
  /// bucket-bound estimates: min is the lower bound of the lowest non-empty
  /// delta bucket, max the upper bound of the highest (clamped to this
  /// snapshot's max). If `earlier` is not a prefix (e.g. the counter source
  /// restarted), the full later snapshot is returned instead of garbage.
  [[nodiscard]] Histogram delta_since(const Histogram& earlier) const noexcept;

  /// Rebuild a histogram from serialized state (the stats-scrape inverse:
  /// fedcons_top reconstructs server histograms from the JSON "buckets"
  /// counts to run delta_since/percentile client-side).
  [[nodiscard]] static Histogram from_state(
      const std::array<std::uint64_t, 65>& buckets, std::uint64_t count,
      std::uint64_t sum, std::uint64_t min, std::uint64_t max) noexcept;

 private:
  std::array<std::uint64_t, 65> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

/// The batch aggregate: one histogram per tracked dimension, plus the
/// online-layer MINPROCS memo-cache counters (plain counts — a hit/miss split
/// has no distribution to bucket).
struct MetricsRegistry {
  Histogram trial_latency_us;       ///< wall-clock per trial (physical)
  Histogram minprocs_mu;            ///< chosen μ per admitted MINPROCS scan
  Histogram partition_bins_touched; ///< bins probed per placement attempt
  std::uint64_t memo_hits = 0;      ///< MINPROCS memo lookups served cached
  std::uint64_t memo_misses = 0;    ///< MINPROCS memo lookups that ran a scan

  void merge(const MetricsRegistry& other) noexcept {
    trial_latency_us.merge(other.trial_latency_us);
    minprocs_mu.merge(other.minprocs_mu);
    partition_bins_touched.merge(other.partition_bins_touched);
    memo_hits += other.memo_hits;
    memo_misses += other.memo_misses;
  }
  [[nodiscard]] bool empty() const noexcept {
    return trial_latency_us.count() == 0 && minprocs_mu.count() == 0 &&
           partition_bins_touched.count() == 0 && memo_hits == 0 &&
           memo_misses == 0;
  }

  /// Human table: one row per metric (count, mean, p50/p90/p99, min, max).
  [[nodiscard]] Table to_table() const;
  /// Deterministic JSON object (fixed key order) for --json reports.
  [[nodiscard]] std::string to_json() const;
};

/// One histogram as a flat JSON object with fixed key order — the snapshot
/// form the serve layer's STATS scrape and the loadgen report both emit.
/// Includes the tail quantiles a latency distribution is judged on
/// (p50/p90/p99/p999; log2 buckets make each a ≤2× upper-bound estimate)
/// plus the raw per-bucket counts as one space-joined string ("buckets",
/// truncated after the last non-empty bucket) so scrape consumers can
/// reconstruct the histogram with Histogram::from_state and difference
/// consecutive snapshots exactly.
[[nodiscard]] std::string histogram_json(const Histogram& h);

/// Inverse of histogram_json's "buckets" member: space-joined counts back
/// into the fixed 65-bucket array (missing trailing buckets are zero).
/// Throws ParseError on garbage tokens or too many buckets.
[[nodiscard]] std::array<std::uint64_t, 65> parse_histogram_buckets(
    const std::string& raw);

namespace detail {
extern std::atomic<bool> g_metrics_enabled;
}

/// The single branch every disabled observation pays.
[[nodiscard]] inline bool metrics_enabled() noexcept {
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}
void set_metrics_enabled(bool enabled);

/// Raw per-thread sample buffers. A batch driver clears the collector before
/// a trial and snapshots it after (one trial at a time per worker thread —
/// the BatchRunner contract — so the delta is exactly that trial's samples).
struct MetricsCollector {
  std::vector<std::uint32_t> minprocs_mu;
  std::vector<std::uint32_t> partition_bins_touched;
  std::uint64_t memo_hits = 0;
  std::uint64_t memo_misses = 0;
  void clear() noexcept {
    minprocs_mu.clear();
    partition_bins_touched.clear();
    memo_hits = 0;
    memo_misses = 0;
  }
};

[[nodiscard]] MetricsCollector& metrics_collector() noexcept;

/// Observation points, called from instrumented algorithm code.
inline void observe_minprocs_mu(int mu) {
  if (metrics_enabled()) {
    metrics_collector().minprocs_mu.push_back(static_cast<std::uint32_t>(mu));
  }
}
inline void observe_partition_bins_touched(int bins) {
  if (metrics_enabled()) {
    metrics_collector().partition_bins_touched.push_back(
        static_cast<std::uint32_t>(bins));
  }
}
inline void observe_memo_lookup(bool hit) {
  if (metrics_enabled()) {
    MetricsCollector& col = metrics_collector();
    if (hit) {
      ++col.memo_hits;
    } else {
      ++col.memo_misses;
    }
  }
}

}  // namespace obs
}  // namespace fedcons
