// Fixed-capacity ring of periodic stat snapshots — the time-series memory
// behind the serve daemon's "stats_series" op.
//
// A lifetime-sum counter block answers "how much, ever"; a monitoring loop
// needs "how fast, lately" — rates, queue-depth trajectories, shed bursts.
// The ring holds the last `capacity` samples a periodic snapshotter pushed;
// memory is bounded by capacity * sizeof(Sample) forever, no matter how long
// the daemon runs. One writer (the snapshot timer thread), any number of
// readers (protocol handlers); both sides hold the mutex only long enough to
// copy one sample or the requested tail, so the lock never sits on a hot
// path — the push cadence is the stats interval (hundreds of ms), not the
// request rate.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

namespace fedcons {
namespace obs {

template <typename Sample>
class SnapshotRing {
 public:
  explicit SnapshotRing(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {
    ring_.reserve(capacity_);
  }

  SnapshotRing(const SnapshotRing&) = delete;
  SnapshotRing& operator=(const SnapshotRing&) = delete;

  void push(Sample sample) {
    std::lock_guard<std::mutex> lock(mu_);
    if (ring_.size() < capacity_) {
      ring_.push_back(std::move(sample));
    } else {
      ring_[next_ % capacity_] = std::move(sample);
    }
    ++next_;
  }

  /// The newest min(last, size) samples, oldest first (last 0 = everything
  /// retained). Chronological order is what rate math differences.
  [[nodiscard]] std::vector<Sample> tail(std::size_t last = 0) const {
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t n = ring_.size();
    if (last != 0 && last < n) n = last;
    std::vector<Sample> out;
    out.reserve(n);
    // next_ is the total pushed; the oldest retained sample lives at
    // next_ - ring_.size() (mod capacity once the ring has wrapped).
    const std::uint64_t first = next_ - ring_.size() + (ring_.size() - n);
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(ring_[(first + i) % capacity_]);
    }
    return out;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ring_.size();
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Total samples ever pushed (>= size(); the overflow tells how much
  /// history the ring has already forgotten).
  [[nodiscard]] std::uint64_t total_pushed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return next_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<Sample> ring_;
  std::size_t capacity_;
  std::uint64_t next_ = 0;
};

}  // namespace obs
}  // namespace fedcons
