#include "fedcons/obs/metrics.h"

#include <bit>

#include "fedcons/util/mini_json.h"

namespace fedcons {
namespace obs {

namespace {

int bucket_of(std::uint64_t v) noexcept {
  return v == 0 ? 0 : 64 - std::countl_zero(v);  // 1 + floor(log2 v)
}

}  // namespace

void Histogram::add(std::uint64_t v) noexcept {
  buckets_[static_cast<std::size_t>(bucket_of(v))] += 1;
  if (count_ == 0 || v < min_) min_ = v;
  if (v > max_) max_ = v;
  ++count_;
  sum_ += v;
}

void Histogram::merge(const Histogram& other) noexcept {
  if (other.count_ == 0) return;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    buckets_[b] += other.buckets_[b];
  }
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
  sum_ += other.sum_;
}

Histogram Histogram::delta_since(const Histogram& earlier) const noexcept {
  if (earlier.count_ == 0) return *this;
  // A later snapshot of the same histogram dominates bucket-wise; anything
  // else means the source was reset — return the later snapshot whole.
  if (earlier.count_ > count_ || earlier.sum_ > sum_) return *this;
  Histogram d;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    if (earlier.buckets_[b] > buckets_[b]) return *this;
    d.buckets_[b] = buckets_[b] - earlier.buckets_[b];
  }
  d.count_ = count_ - earlier.count_;
  d.sum_ = sum_ - earlier.sum_;
  if (d.count_ != 0) {
    std::size_t lo = 0;
    while (d.buckets_[lo] == 0) ++lo;
    std::size_t hi = d.buckets_.size() - 1;
    while (d.buckets_[hi] == 0) --hi;
    d.min_ = lo == 0 ? 0 : std::uint64_t{1} << (lo - 1);
    const std::uint64_t upper =
        hi >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << hi) - 1;
    d.max_ = upper > max_ ? max_ : upper;
  }
  return d;
}

Histogram Histogram::from_state(const std::array<std::uint64_t, 65>& buckets,
                                std::uint64_t count, std::uint64_t sum,
                                std::uint64_t min, std::uint64_t max) noexcept {
  Histogram h;
  h.buckets_ = buckets;
  h.count_ = count;
  h.sum_ = sum;
  h.min_ = min;
  h.max_ = max;
  return h;
}

std::uint64_t Histogram::percentile(double p) const noexcept {
  if (count_ == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  // Rank of the percentile sample, 1-based (nearest-rank definition).
  std::uint64_t rank = static_cast<std::uint64_t>(
      p / 100.0 * static_cast<double>(count_) + 0.5);
  if (rank < 1) rank = 1;
  if (rank > count_) rank = count_;
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    seen += buckets_[b];
    if (seen >= rank) {
      if (b == 0) return 0;
      const std::uint64_t upper = b >= 64 ? ~std::uint64_t{0}
                                          : (std::uint64_t{1} << b) - 1;
      return upper > max_ ? max_ : upper;  // tighten the top bucket
    }
  }
  return max_;
}

namespace {

void metric_row(Table& t, const char* name, const Histogram& h) {
  t.add_row({name, fmt_int(static_cast<long long>(h.count())),
             fmt_double(h.mean(), 2),
             fmt_int(static_cast<long long>(h.percentile(50))),
             fmt_int(static_cast<long long>(h.percentile(90))),
             fmt_int(static_cast<long long>(h.percentile(99))),
             fmt_int(static_cast<long long>(h.min())),
             fmt_int(static_cast<long long>(h.max()))});
}

void metric_json(std::string& out, const char* name, const Histogram& h) {
  out += '"';
  out += name;
  out += "\": ";
  out += histogram_json(h);
}

}  // namespace

Table MetricsRegistry::to_table() const {
  Table t({"metric", "count", "mean", "p50", "p90", "p99", "min", "max"});
  metric_row(t, "trial_latency_us", trial_latency_us);
  metric_row(t, "minprocs_mu", minprocs_mu);
  metric_row(t, "partition_bins_touched", partition_bins_touched);
  if (memo_hits != 0 || memo_misses != 0) {
    t.add_row({"memo_hits", fmt_int(static_cast<long long>(memo_hits)), "-",
               "-", "-", "-", "-", "-"});
    t.add_row({"memo_misses", fmt_int(static_cast<long long>(memo_misses)),
               "-", "-", "-", "-", "-", "-"});
  }
  return t;
}

std::string histogram_json(const Histogram& h) {
  std::string buckets;
  std::size_t last = 0;
  for (std::size_t b = 0; b < h.buckets().size(); ++b) {
    if (h.buckets()[b] != 0) last = b;
  }
  for (std::size_t b = 0; b <= last; ++b) {
    if (b != 0) buckets += ' ';
    buckets += std::to_string(h.buckets()[b]);
  }
  return "{\"count\": " + fmt_int(static_cast<long long>(h.count())) +
         ", \"sum\": " + fmt_int(static_cast<long long>(h.sum())) +
         ", \"min\": " + fmt_int(static_cast<long long>(h.min())) +
         ", \"max\": " + fmt_int(static_cast<long long>(h.max())) +
         ", \"mean\": " + fmt_double(h.mean(), 2) +
         ", \"p50\": " + fmt_int(static_cast<long long>(h.percentile(50))) +
         ", \"p90\": " + fmt_int(static_cast<long long>(h.percentile(90))) +
         ", \"p99\": " + fmt_int(static_cast<long long>(h.percentile(99))) +
         ", \"p999\": " +
         fmt_int(static_cast<long long>(h.percentile(99.9))) +
         ", \"buckets\": \"" + buckets + "\"}";
}

std::array<std::uint64_t, 65> parse_histogram_buckets(const std::string& raw) {
  std::array<std::uint64_t, 65> buckets{};
  std::size_t b = 0;
  std::size_t pos = 0;
  while (pos < raw.size()) {
    const std::size_t space = raw.find(' ', pos);
    const std::size_t end = space == std::string::npos ? raw.size() : space;
    if (b >= buckets.size()) {
      throw ParseError(1, "histogram buckets: more than 65 entries");
    }
    buckets[b++] = mini_json_uint(raw.substr(pos, end - pos));
    pos = end + 1;
  }
  return buckets;
}

std::string MetricsRegistry::to_json() const {
  std::string out = "{";
  metric_json(out, "trial_latency_us", trial_latency_us);
  out += ", ";
  metric_json(out, "minprocs_mu", minprocs_mu);
  out += ", ";
  metric_json(out, "partition_bins_touched", partition_bins_touched);
  out += ", \"memo_hits\": " + fmt_int(static_cast<long long>(memo_hits));
  out += ", \"memo_misses\": " + fmt_int(static_cast<long long>(memo_misses));
  out += "}";
  return out;
}

namespace detail {
std::atomic<bool> g_metrics_enabled{false};
}

void set_metrics_enabled(bool enabled) {
  detail::g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

MetricsCollector& metrics_collector() noexcept {
  thread_local MetricsCollector collector;
  return collector;
}

}  // namespace obs
}  // namespace fedcons
