#include "fedcons/conform/anomaly_demo.h"

#include <utility>

#include "fedcons/core/io.h"
#include "fedcons/listsched/anomaly.h"
#include "fedcons/util/check.h"

namespace fedcons {

AnomalyDemoReport run_anomaly_demo(std::uint64_t max_seeds) {
  FEDCONS_EXPECTS(max_seeds >= 1);
  AnomalyInstance instance = make_graham_anomaly_instance();

  // Deadline == WCET makespan: the template meets it with zero slack, so any
  // online-LS elongation is a miss. T > D keeps the task constrained and
  // spaces releases so consecutive dag-jobs never overlap.
  const Time deadline = instance.wcet_makespan;
  const Time period = 20;
  TaskSystem system;
  system.add(DagTask(std::move(instance.dag), deadline, period,
                     "graham-anomaly"));
  const int m = instance.processors;

  AnomalyDemoReport report;
  report.system_text = serialize_task_system(system);
  report.sim.horizon = 200;
  report.sim.release = ReleaseModel::kPeriodic;
  report.sim.exec = ExecModel::kUniform;
  report.sim.exec_lo = 0.5;

  const ConformanceEntry online = make_fedcons_conformance_entry(
      "FEDCONS@online-rerun", {}, ClusterDispatch::kOnlineRerun);
  const ConformanceEntry sound = make_fedcons_conformance_entry("FEDCONS");

  for (std::uint64_t seed = 1; seed <= max_seeds; ++seed) {
    report.sim.seed = seed;
    ConformanceOutcome outcome = online.run(system, m, report.sim);
    FEDCONS_ASSERT(outcome.admitted);  // the analysis always accepts
    if (!outcome.violation()) continue;

    report.found = true;
    report.seed = seed;
    report.online = std::move(outcome);
    // The differential core: identical system, m, and seed — the only change
    // is the dispatch rule.
    report.replay = sound.run(system, m, report.sim);

    report.artifact.algorithm = online.name;
    report.artifact.m = m;
    report.artifact.sim = report.sim;
    report.artifact.note =
        "Graham anomaly exhibit: online LS rerun misses under execution-time "
        "reductions that template replay absorbs (paper footnote 2); seed " +
        std::to_string(seed);
    report.artifact.observed = report.online.sim;
    report.artifact.system_text = report.system_text;
    return report;
  }
  return report;  // found == false: no refuting seed within budget
}

}  // namespace fedcons
