#include "fedcons/conform/shrinker.h"

#include <optional>
#include <utility>
#include <vector>

#include "fedcons/util/check.h"
#include "fedcons/util/perf_counters.h"

namespace fedcons {

namespace {

/// Rebuild a task's graph with one edge removed. Edge `index` counts edges in
/// (vertex, successor-position) iteration order.
std::optional<DagTask> drop_edge(const DagTask& task, std::size_t index) {
  const Dag& g = task.graph();
  Dag out;
  for (VertexId v = 0; v < g.num_vertices(); ++v) out.add_vertex(g.wcet(v));
  std::size_t seen = 0;
  bool dropped = false;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (VertexId w : g.successors(v)) {
      if (seen++ == index) {
        dropped = true;
        continue;
      }
      out.add_edge(v, w);
    }
  }
  if (!dropped) return std::nullopt;
  return DagTask(std::move(out), task.deadline(), task.period(), task.name());
}

/// Rebuild a task's graph with vertex `victim` (and its incident edges)
/// removed; surviving vertices keep their relative order. Dropping edges only
/// relaxes precedence, so the result is a valid (weaker) workload.
std::optional<DagTask> drop_vertex(const DagTask& task, VertexId victim) {
  const Dag& g = task.graph();
  if (g.num_vertices() <= 1) return std::nullopt;
  Dag out;
  std::vector<VertexId> remap(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (v == victim) continue;
    remap[v] = out.add_vertex(g.wcet(v));
  }
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (v == victim) continue;
    for (VertexId w : g.successors(v)) {
      if (w == victim) continue;
      out.add_edge(remap[v], remap[w]);
    }
  }
  return DagTask(std::move(out), task.deadline(), task.period(), task.name());
}

/// Rebuild a task with vertex `v`'s WCET replaced by `wcet` (>= 1).
DagTask with_wcet(const DagTask& task, VertexId victim, Time wcet) {
  const Dag& g = task.graph();
  Dag out;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    out.add_vertex(v == victim ? wcet : g.wcet(v));
  }
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (VertexId w : g.successors(v)) out.add_edge(v, w);
  }
  return DagTask(std::move(out), task.deadline(), task.period(), task.name());
}

TaskSystem replace_task(const TaskSystem& system, TaskId victim,
                        DagTask replacement) {
  std::vector<DagTask> tasks;
  tasks.reserve(system.size());
  for (TaskId i = 0; i < system.size(); ++i) {
    tasks.push_back(i == victim ? std::move(replacement) : system[i]);
  }
  return TaskSystem(std::move(tasks));
}

TaskSystem remove_task(const TaskSystem& system, TaskId victim) {
  std::vector<DagTask> tasks;
  tasks.reserve(system.size() - 1);
  for (TaskId i = 0; i < system.size(); ++i) {
    if (i != victim) tasks.push_back(system[i]);
  }
  return TaskSystem(std::move(tasks));
}

}  // namespace

ShrinkResult shrink_violation(const ConformanceEntry& entry, TaskSystem system,
                              int m, const SimConfig& config,
                              std::size_t max_probes) {
  FEDCONS_EXPECTS(max_probes >= 1);
  ShrinkResult result;

  const auto violates = [&](const TaskSystem& s, int procs) {
    ++result.probes;
    ++perf_counters().conform_shrink_steps;
    return entry.run(s, procs, config).violation();
  };
  FEDCONS_EXPECTS_MSG(violates(system, m),
                      "shrink_violation requires a violating input");

  bool progressed = true;
  while (progressed && result.probes < max_probes) {
    progressed = false;

    // 1. Drop a whole task.
    for (TaskId i = 0; i < system.size() && result.probes < max_probes; ++i) {
      if (system.size() <= 1) break;
      TaskSystem candidate = remove_task(system, i);
      if (violates(candidate, m)) {
        system = std::move(candidate);
        ++result.reductions;
        progressed = true;
        break;
      }
    }
    if (progressed) continue;

    // 2. Reduce the processor count.
    if (m > 1 && result.probes < max_probes && violates(system, m - 1)) {
      --m;
      ++result.reductions;
      progressed = true;
      continue;
    }

    // 3. Drop a precedence edge.
    for (TaskId i = 0; i < system.size() && !progressed; ++i) {
      const std::size_t edges = system[i].graph().num_edges();
      for (std::size_t e = 0; e < edges && result.probes < max_probes; ++e) {
        auto reduced = drop_edge(system[i], e);
        if (!reduced) break;
        TaskSystem candidate = replace_task(system, i, *std::move(reduced));
        if (violates(candidate, m)) {
          system = std::move(candidate);
          ++result.reductions;
          progressed = true;
          break;
        }
      }
    }
    if (progressed) continue;

    // 4. Drop a vertex.
    for (TaskId i = 0; i < system.size() && !progressed; ++i) {
      const auto vertices =
          static_cast<VertexId>(system[i].graph().num_vertices());
      for (VertexId v = 0; v < vertices && result.probes < max_probes; ++v) {
        auto reduced = drop_vertex(system[i], v);
        if (!reduced) break;
        TaskSystem candidate = replace_task(system, i, *std::move(reduced));
        if (violates(candidate, m)) {
          system = std::move(candidate);
          ++result.reductions;
          progressed = true;
          break;
        }
      }
    }
    if (progressed) continue;

    // 5./6. Halve, then decrement, vertex WCETs.
    for (const bool halve : {true, false}) {
      for (TaskId i = 0; i < system.size() && !progressed; ++i) {
        const auto vertices =
            static_cast<VertexId>(system[i].graph().num_vertices());
        for (VertexId v = 0; v < vertices && result.probes < max_probes; ++v) {
          const Time wcet = system[i].graph().wcet(v);
          const Time target = halve ? wcet / 2 : wcet - 1;
          if (target < 1 || target == wcet) continue;
          TaskSystem candidate =
              replace_task(system, i, with_wcet(system[i], v, target));
          if (violates(candidate, m)) {
            system = std::move(candidate);
            ++result.reductions;
            progressed = true;
            break;
          }
        }
      }
      if (progressed) break;
    }
  }

  result.system = std::move(system);
  result.m = m;
  return result;
}

}  // namespace fedcons
