// The conformance fuzzing harness: randomized differential testing at scale.
//
// run_conformance drives trials over the engine's BatchRunner: each trial
// draws a random task system (gen/taskset_gen.h) at a per-trial utilization
// level, then evaluates every conformance entry on it — analysis verdict plus
// full composition replay (conform/oracle.h). Violations are minimized by the
// shrinker and packaged as pinned JSON artifacts (conform/artifact.h).
//
// Determinism contract (inherited from BatchRunner and extended here): trial
// i draws exclusively from Rng(trial_seed(master_seed, i)) — the generated
// system, the per-trial simulation seed, and hence every oracle outcome are
// pure functions of (config, i). Per-trial perf-counter deltas are captured
// on the executing worker thread and aggregated in trial-index order;
// shrinking runs serially on the calling thread over violations in
// trial-index order. The resulting ConformReport is therefore BIT-IDENTICAL
// for any thread count, violations and artifacts included.
//
// Counter semantics (util/perf_counters.h):
//   conform_trials       — oracle evaluations: one per (trial, entry) pair.
//   conform_violations   — evaluations whose admitted verdict missed a
//                          deadline in replay (counted at discovery, not
//                          per re-run during shrinking).
//   conform_shrink_steps — candidate reductions evaluated by the shrinker
//                          (each is one full oracle re-run).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "fedcons/conform/artifact.h"
#include "fedcons/conform/oracle.h"
#include "fedcons/gen/taskset_gen.h"
#include "fedcons/util/perf_counters.h"

namespace fedcons {

struct ConformConfig {
  int m = 8;                      ///< platform size offered to every entry
  std::size_t trials = 1000;
  std::uint64_t master_seed = 1;
  int num_threads = 0;            ///< BatchRunner convention (0 = hardware)
  /// Per-trial target U_sum is drawn uniformly from [util_lo, util_hi]·m, so
  /// one run sweeps the whole acceptance spectrum.
  double util_lo = 0.2;
  double util_hi = 0.95;
  /// Fraction of trials generated with implicit deadlines (D == T), so the
  /// implicit-only entries (FED-LI-implicit) see real coverage; the rest use
  /// the configured deadline-ratio range. Drawn per trial from the trial rng.
  double implicit_fraction = 0.25;
  TaskSetParams gen;     ///< total_utilization/utilization_cap set per trial
  SimConfig sim;         ///< seed overwritten per trial
  std::size_t shrink_budget = 2000;  ///< max oracle probes per violation
};

/// Tuned defaults for conformance runs: small-period workloads and a short
/// horizon keep per-trial event counts tractable at --trials 10000, and the
/// stressiest randomized models are on (sporadic releases with jitter up to
/// T, uniform execution times in [½·WCET, WCET]).
[[nodiscard]] ConformConfig default_conform_config();

/// Per-entry aggregate over all trials.
struct EntryReport {
  std::string name;
  std::uint64_t supported = 0;   ///< trials within the entry's contract
  std::uint64_t admitted = 0;    ///< "schedulable" verdicts (each replayed)
  std::uint64_t violations = 0;  ///< refuted verdicts
  std::uint64_t jobs_released = 0;  ///< dag-jobs simulated across replays
};

/// One discovered violation, minimized and packaged.
struct ViolationRecord {
  std::size_t trial = 0;
  std::string algorithm;
  SimConfig sim;             ///< exact per-trial config (seed included)
  SimStats observed;         ///< replay stats on the ORIGINAL system
  std::string system_text;   ///< original violating system (core/io.h)
  std::string minimized_text;  ///< after shrinking
  int minimized_m = 0;
  std::size_t shrink_probes = 0;
  ViolationArtifact artifact;  ///< pinned repro (minimized system)
};

struct ConformReport {
  std::size_t trials = 0;
  int m = 0;
  std::vector<EntryReport> entries;       ///< one per conformance entry
  std::vector<ViolationRecord> violations;  ///< trial-index order
  PerfCounters counters;  ///< Σ per-trial deltas + shrink-phase delta

  [[nodiscard]] std::uint64_t total_violations() const noexcept {
    std::uint64_t n = 0;
    for (const auto& e : entries) n += e.violations;
    return n;
  }
};

/// Run the harness (see header comment). Preconditions: m >= 1; at least one
/// entry; util_lo <= util_hi.
[[nodiscard]] ConformReport run_conformance(
    const ConformConfig& config, std::span<const ConformanceEntry> entries);

/// Machine-readable report document (fedcons_conform --json). Fixed key
/// order, carries "schema_version"; byte-identical for a given report, which
/// is itself bit-identical for any thread count.
[[nodiscard]] std::string conform_report_json(const ConformReport& report);

}  // namespace fedcons
