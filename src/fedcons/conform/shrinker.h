// Greedy violation minimization (delta debugging for task systems).
//
// Once the harness catches a conformance violation — an admitted system whose
// replay misses a deadline — the raw witness is usually noisy: many tasks,
// large graphs, big WCETs. The shrinker repeatedly tries structure-removing
// reductions and keeps any reduced candidate that STILL violates, producing a
// small repro suitable for pinning as a regression artifact:
//
//   1. drop a whole task,
//   2. reduce the processor count,
//   3. drop a precedence edge,
//   4. drop a vertex (with its incident edges),
//   5. halve a vertex WCET,
//   6. decrement a vertex WCET.
//
// Each round scans the moves in that order and restarts after the first
// success (first-improvement descent); every candidate evaluation re-runs the
// full oracle and is counted in perf_counters().conform_shrink_steps. Every
// applied move strictly shrinks (Σ|V|, Σ|E|, ΣWCET, m) lexicographically-ish,
// so descent terminates; `max_probes` bounds the worst case regardless.
// Deterministic: move order is fixed and the oracle is deterministic.
#pragma once

#include <cstddef>

#include "fedcons/conform/oracle.h"

namespace fedcons {

/// A minimized violation witness.
struct ShrinkResult {
  TaskSystem system;  ///< smallest violating system found
  int m = 0;          ///< smallest violating processor count found
  std::size_t probes = 0;      ///< candidate oracle evaluations performed
  std::size_t reductions = 0;  ///< moves that kept the violation
};

/// Minimize (system, m) under the invariant entry.run(·, ·, config) stays a
/// violation. Preconditions: the input is itself a violation (checked — one
/// oracle evaluation); max_probes >= 1.
[[nodiscard]] ShrinkResult shrink_violation(const ConformanceEntry& entry,
                                            TaskSystem system, int m,
                                            const SimConfig& config,
                                            std::size_t max_probes = 2000);

}  // namespace fedcons
