// Differential conformance oracles: every "schedulable" verdict becomes a
// checked claim.
//
// A ConformanceEntry pairs a schedulability analysis with the run-time
// composition its acceptance promises. Running an entry on a task system
// performs the analysis and, when it admits, REPLAYS the exact allocation it
// produced in simulation — template-schedule lookup dispatch on dedicated
// clusters, preemptive EDF (or DM fixed-priority) on shared processors —
// under randomized actual execution times ≤ WCET and sporadic release jitter.
// A single deadline miss under an admitted verdict refutes the analysis (or
// the simulator, or the glue between them); the harness (conform/harness.h)
// hunts for such refutations at scale and the shrinker (conform/shrinker.h)
// minimizes them into pinned regression artifacts.
//
// Each oracle replays the composition the analysis actually reasons about:
//  * FEDCONS variants     — simulate_system over the returned FedconsResult
//    (σ_i template replay per cluster, per-processor EDF on the shared pool).
//  * ARBFED variants      — simulate_arbitrary_system (pipelined σ replay
//    with processor-overlap validation).
//  * P-SEQ                — per-processor EDF over the sequentialized tasks
//    of the returned PartitionResult.
//  * P-DM                 — per-processor preemptive fixed-priority with the
//    bin's DM order as the priority order (what RTA certified).
//  * FED-LI variants      — LS template replay on each dedicated n_i-block
//    (sound: Graham's bound caps the template makespan at the analysis
//    window), per-processor EDF over the shared assignment.
//  * GEDF-density         — global EDF of the SEQUENTIALIZED system (one
//    vertex of WCET vol per task): the Goossens–Funk–Baruah bound certifies
//    exactly that composition, and sequential global EDF is predictable
//    (Ha–Liu), so early completions cannot manufacture spurious misses.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "fedcons/core/task_system.h"
#include "fedcons/federated/arbitrary.h"
#include "fedcons/federated/fedcons_algorithm.h"
#include "fedcons/sim/cluster_sim.h"
#include "fedcons/sim/sim_config.h"

namespace fedcons {

/// Outcome of one oracle evaluation.
struct ConformanceOutcome {
  /// The system's deadline class is within the algorithm's contract; when
  /// false, nothing was evaluated (preconditions would fire).
  bool supported = false;
  bool admitted = false;  ///< the analysis said "schedulable"
  SimStats sim;           ///< replay statistics; meaningful only when admitted

  /// An admitted verdict whose replay missed a deadline — a refuted claim.
  [[nodiscard]] bool violation() const noexcept {
    return supported && admitted && sim.deadline_misses > 0;
  }
};

/// A named analysis plus the replay of the composition it promises. `run`
/// must be deterministic in (system, m, config) and safe to call concurrently
/// from distinct threads (the BatchRunner contract): all randomness derives
/// from config.seed.
struct ConformanceEntry {
  std::string name;
  std::function<ConformanceOutcome(const TaskSystem&, int, const SimConfig&)>
      run;
};

/// FEDCONS with the given options, replayed under the given dispatch mode.
/// kOnlineRerun is intentionally available: it is the UNSOUND dispatch the
/// paper's footnote 2 warns against, used by the demonstration battery.
[[nodiscard]] ConformanceEntry make_fedcons_conformance_entry(
    std::string name, const FedconsOptions& options = {},
    ClusterDispatch dispatch = ClusterDispatch::kTemplateReplay);

/// Arbitrary-deadline federated scheduling under the given strategy.
[[nodiscard]] ConformanceEntry make_arbitrary_conformance_entry(
    std::string name, ArbitraryStrategy strategy);

/// The default battery: one entry per algorithm in the engine registry
/// (engine/adapters.h), each replaying its own composition. Every entry here
/// is believed sound — a violation is a bug by definition.
[[nodiscard]] std::vector<ConformanceEntry> builtin_conformance_entries();

/// Deliberately unsound entries for exercising the violation path end-to-end
/// (never part of the default battery):
///  * "FEDCONS@online-rerun" — sound analysis, anomalous online-LS dispatch.
///  * "FEDCONS-lit-udo"     — Fig. 4 literal demand check with
///    utilization-descending placement order, which forfeits the
///    deadline-monotonic slope argument that makes the literal check sound.
[[nodiscard]] std::vector<ConformanceEntry> demonstration_conformance_entries();

/// Resolve a name across both batteries (case-sensitive). Throws
/// ContractViolation when unknown.
[[nodiscard]] ConformanceEntry find_conformance_entry(const std::string& name);

}  // namespace fedcons
