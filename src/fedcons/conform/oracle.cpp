#include "fedcons/conform/oracle.h"

#include <utility>

#include "fedcons/baselines/global_edf.h"
#include "fedcons/baselines/partitioned_dm.h"
#include "fedcons/baselines/partitioned_seq.h"
#include "fedcons/federated/federated_implicit.h"
#include "fedcons/listsched/list_scheduler.h"
#include "fedcons/sim/edf_sim.h"
#include "fedcons/sim/global_edf_sim.h"
#include "fedcons/sim/release_generator.h"
#include "fedcons/sim/system_sim.h"
#include "fedcons/util/check.h"
#include "fedcons/util/rng.h"

namespace fedcons {

namespace {

/// Replay a set of per-processor EDF bins (TaskIds per bin, each task
/// sequentialized). Streams draw from `rng` via split() in bin-then-member
/// order, mirroring simulate_system's shared-pool convention.
SimStats replay_edf_bins(const TaskSystem& system,
                         const std::vector<std::vector<TaskId>>& bins,
                         const SimConfig& config, Rng& rng) {
  SimStats total;
  for (const auto& bin : bins) {
    std::vector<EdfTaskStream> streams;
    streams.reserve(bin.size());
    for (TaskId t : bin) {
      const SporadicTask seq = system[t].to_sequential();
      Rng stream_rng = rng.split();
      streams.push_back(EdfTaskStream{generate_sequential_releases(
          seq.wcet, seq.deadline, seq.period, config, stream_rng)});
    }
    total.merge(simulate_edf_uniproc(streams, config));
  }
  return total;
}

ConformanceOutcome run_fedcons(const TaskSystem& system, int m,
                               const SimConfig& config,
                               const FedconsOptions& options,
                               ClusterDispatch dispatch) {
  ConformanceOutcome out;
  if (system.deadline_class() == DeadlineClass::kArbitrary) return out;
  out.supported = true;
  const FedconsResult result = fedcons_schedule(system, m, options);
  out.admitted = result.success;
  if (!result.success) return out;
  out.sim = simulate_system(system, result, config, dispatch).total;
  return out;
}

ConformanceOutcome run_arbitrary(const TaskSystem& system, int m,
                                 const SimConfig& config,
                                 ArbitraryStrategy strategy) {
  ConformanceOutcome out;
  out.supported = true;
  const ArbitraryFederatedResult result =
      arbitrary_federated_schedule(system, m, strategy);
  out.admitted = result.success;
  if (!result.success) return out;
  out.sim = simulate_arbitrary_system(system, result, config).total;
  return out;
}

ConformanceOutcome run_pseq(const TaskSystem& system, int m,
                            const SimConfig& config) {
  ConformanceOutcome out;
  out.supported = true;
  const PartitionResult result = partitioned_sequential(system, m);
  out.admitted = result.success;
  if (!result.success) return out;
  // assignment[k] holds TaskIds (tasks were sequentialized in system order).
  std::vector<std::vector<TaskId>> bins(result.assignment.begin(),
                                        result.assignment.end());
  Rng rng(config.seed);
  out.sim = replay_edf_bins(system, bins, config, rng);
  return out;
}

ConformanceOutcome run_pdm(const TaskSystem& system, int m,
                           const SimConfig& config) {
  ConformanceOutcome out;
  if (system.deadline_class() == DeadlineClass::kArbitrary) return out;
  out.supported = true;
  const PartitionedDmResult result = partitioned_dm(system, m);
  out.admitted = result.success;
  if (!result.success) return out;
  // Each bin runs preemptive fixed-priority with the bin's DM order as the
  // priority order (stream index == priority) — exactly what RTA certified.
  Rng rng(config.seed);
  for (const auto& bin : result.assignment) {
    std::vector<EdfTaskStream> streams;
    streams.reserve(bin.size());
    for (TaskId t : bin) {
      const SporadicTask seq = system[t].to_sequential();
      Rng stream_rng = rng.split();
      streams.push_back(EdfTaskStream{generate_sequential_releases(
          seq.wcet, seq.deadline, seq.period, config, stream_rng)});
    }
    out.sim.merge(simulate_fp_uniproc(streams, config));
  }
  return out;
}

ConformanceOutcome run_gedf_density(const TaskSystem& system, int m,
                                    const SimConfig& config) {
  ConformanceOutcome out;
  if (system.deadline_class() == DeadlineClass::kArbitrary) return out;
  out.supported = true;
  out.admitted = gedf_dag_density_test(system, m);
  if (!out.admitted) return out;
  // The density bound certifies the SEQUENTIALIZED system; replay that
  // composition (one vertex of WCET vol per task) under global EDF.
  TaskSystem seq;
  for (const auto& t : system) {
    Dag chain;
    chain.add_vertex(t.vol());
    seq.add(DagTask(std::move(chain), t.deadline(), t.period(), t.name()));
  }
  Rng rng(config.seed);
  std::vector<std::vector<DagJobRelease>> releases;
  releases.reserve(seq.size());
  for (TaskId i = 0; i < seq.size(); ++i) {
    Rng stream_rng = rng.split();
    releases.push_back(generate_releases(seq[i], config, stream_rng));
  }
  out.sim = simulate_global_edf(seq, releases, m, config);
  return out;
}

ConformanceOutcome run_fed_li(const TaskSystem& system, int m,
                              const SimConfig& config, bool implicit_variant) {
  ConformanceOutcome out;
  if (implicit_variant) {
    if (system.deadline_class() != DeadlineClass::kImplicit) return out;
  } else {
    if (system.deadline_class() == DeadlineClass::kArbitrary) return out;
  }
  out.supported = true;
  const FederatedBaselineResult result =
      implicit_variant ? li_federated_implicit(system, m)
                       : li_federated_constrained_adaptation(system, m);
  out.admitted = result.success;
  if (!result.success) return out;
  // Li's run-time rule is "any work-conserving scheduler" on the n_i
  // dedicated processors; an LS template replay is a valid instance of it
  // (Graham: makespan ≤ len + (vol − len)/n_i ≤ analysis window).
  Rng rng(config.seed);
  for (const auto& [task_id, n] : result.dedicated) {
    const DagTask& task = system[task_id];
    const TemplateSchedule sigma = list_schedule(task.graph(), n);
    Rng stream_rng = rng.split();
    auto releases = generate_releases(task, config, stream_rng);
    out.sim.merge(simulate_cluster(task, sigma, releases, config,
                                   ClusterDispatch::kTemplateReplay));
  }
  out.sim.merge(
      replay_edf_bins(system, result.shared_assignment, config, rng));
  return out;
}

}  // namespace

ConformanceEntry make_fedcons_conformance_entry(std::string name,
                                                const FedconsOptions& options,
                                                ClusterDispatch dispatch) {
  return ConformanceEntry{
      std::move(name),
      [options, dispatch](const TaskSystem& s, int m, const SimConfig& c) {
        return run_fedcons(s, m, c, options, dispatch);
      }};
}

ConformanceEntry make_arbitrary_conformance_entry(std::string name,
                                                  ArbitraryStrategy strategy) {
  return ConformanceEntry{
      std::move(name),
      [strategy](const TaskSystem& s, int m, const SimConfig& c) {
        return run_arbitrary(s, m, c, strategy);
      }};
}

std::vector<ConformanceEntry> builtin_conformance_entries() {
  std::vector<ConformanceEntry> entries;
  entries.push_back(make_fedcons_conformance_entry("FEDCONS"));

  FedconsOptions literal;
  literal.partition.variant = PartitionVariant::kPaperLiteral;
  entries.push_back(make_fedcons_conformance_entry("FEDCONS-lit", literal));

  entries.push_back(ConformanceEntry{
      "FED-LI-implicit",
      [](const TaskSystem& s, int m, const SimConfig& c) {
        return run_fed_li(s, m, c, /*implicit_variant=*/true);
      }});
  entries.push_back(ConformanceEntry{
      "FED-LI-adapt",
      [](const TaskSystem& s, int m, const SimConfig& c) {
        return run_fed_li(s, m, c, /*implicit_variant=*/false);
      }});
  entries.push_back(ConformanceEntry{"P-SEQ", run_pseq});
  entries.push_back(ConformanceEntry{"P-DM", run_pdm});
  entries.push_back(ConformanceEntry{"GEDF-density", run_gedf_density});
  entries.push_back(
      make_arbitrary_conformance_entry("ARBFED", ArbitraryStrategy::kPipelined));
  entries.push_back(make_arbitrary_conformance_entry(
      "ARBFED-clamp", ArbitraryStrategy::kClampToPeriod));
  return entries;
}

std::vector<ConformanceEntry> demonstration_conformance_entries() {
  std::vector<ConformanceEntry> entries;
  entries.push_back(make_fedcons_conformance_entry(
      "FEDCONS@online-rerun", {}, ClusterDispatch::kOnlineRerun));

  FedconsOptions unsound;
  unsound.partition.variant = PartitionVariant::kPaperLiteral;
  unsound.partition.order = PartitionOrder::kUtilizationDescending;
  entries.push_back(make_fedcons_conformance_entry("FEDCONS-lit-udo", unsound));
  return entries;
}

ConformanceEntry find_conformance_entry(const std::string& name) {
  for (auto battery :
       {builtin_conformance_entries(), demonstration_conformance_entries()}) {
    for (auto& entry : battery) {
      if (entry.name == name) return std::move(entry);
    }
  }
  FEDCONS_EXPECTS_MSG(false, "unknown conformance entry: " + name);
  return {};  // unreachable
}

}  // namespace fedcons
