// Demonstration: template replay is anomaly-safe; online LS rerun is not.
//
// The paper's footnote 2 is the design reason FEDCONS dispatches dedicated
// clusters from a σ lookup table instead of re-running LS at each release.
// This module turns that argument into an executable exhibit built on
// Graham's classic 9-job anomaly instance (listsched/anomaly.h): a one-task
// system whose deadline equals the WCET makespan (12 on 3 processors), so
// ANY execution-time reduction that lengthens the online-LS schedule (to 13)
// is a deadline miss, while template replay completes by construction at
// release + 12 regardless of actual execution times.
//
// run_anomaly_demo searches deterministic simulation seeds until the
// FEDCONS@online-rerun oracle (conform/oracle.h) refutes itself, then runs
// the sound FEDCONS oracle under the IDENTICAL configuration and packages
// the refutation as a pinned artifact. Differential core of the exhibit:
// same system, same m, same seed — kOnlineRerun misses, kTemplateReplay
// does not.
#pragma once

#include <cstdint>

#include "fedcons/conform/artifact.h"
#include "fedcons/conform/oracle.h"

namespace fedcons {

struct AnomalyDemoReport {
  bool found = false;          ///< a refuting seed was found within budget
  std::uint64_t seed = 0;      ///< the refuting simulation seed
  SimConfig sim;               ///< full configuration at that seed
  ConformanceOutcome online;   ///< kOnlineRerun: admitted, misses > 0
  ConformanceOutcome replay;   ///< kTemplateReplay: admitted, zero misses
  ViolationArtifact artifact;  ///< pinned repro for the online-rerun entry
  std::string system_text;     ///< the embedded Graham system (core/io.h)
};

/// Build the exhibit (see header comment). Deterministic: scans seeds
/// 1..max_seeds in order and stops at the first refutation. With the default
/// budget the search is expected to succeed within the first few seeds
/// (anomalies are not rare — property-tested in the dispatch-safety suite).
[[nodiscard]] AnomalyDemoReport run_anomaly_demo(std::uint64_t max_seeds = 1000);

}  // namespace fedcons
