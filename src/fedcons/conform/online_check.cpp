#include "fedcons/conform/online_check.h"

#include <algorithm>
#include <utility>

#include "fedcons/engine/batch_runner.h"
#include "fedcons/federated/fedcons_algorithm.h"
#include "fedcons/gen/taskset_gen.h"
#include "fedcons/util/check.h"
#include "fedcons/util/mini_json.h"

namespace fedcons {

namespace {

FedconsOptions batch_options(const AdmissionSession::Config& cfg) {
  FedconsOptions o;
  o.list_policy = cfg.list_policy;
  o.minprocs = cfg.minprocs;
  o.partition = cfg.partition;
  return o;
}

std::string show(std::optional<SessionTaskId> id) {
  return id.has_value() ? std::to_string(*id) : std::string("none");
}

/// Field-by-field structural comparison. `ids[i]` is the session id of
/// resident-system index i, mapping batch TaskIds into session id space.
std::optional<std::string> compare_verdicts(
    const SessionVerdict& s, const FedconsResult& b,
    const std::vector<SessionTaskId>& ids) {
  if (s.success != b.success) {
    return "success: session=" + std::to_string(s.success) +
           " batch=" + std::to_string(b.success);
  }
  if (s.failure != b.failure) {
    return std::string("failure: session=") + to_string(s.failure) +
           " batch=" + to_string(b.failure);
  }
  std::optional<SessionTaskId> batch_failed;
  if (b.failed_task.has_value()) batch_failed = ids.at(*b.failed_task);
  if (s.failed_task != batch_failed) {
    return "failed_task: session=" + show(s.failed_task) +
           " batch=" + show(batch_failed);
  }
  if (s.clusters.size() != b.clusters.size()) {
    return "cluster count: session=" + std::to_string(s.clusters.size()) +
           " batch=" + std::to_string(b.clusters.size());
  }
  for (std::size_t c = 0; c < s.clusters.size(); ++c) {
    const SessionCluster& sc = s.clusters[c];
    const ClusterAssignment& bc = b.clusters[c];
    const std::string at = "cluster " + std::to_string(c) + " ";
    if (sc.task != ids.at(bc.task)) {
      return at + "task: session=" + std::to_string(sc.task) +
             " batch=" + std::to_string(ids.at(bc.task));
    }
    if (sc.num_processors != bc.num_processors) {
      return at + "mu: session=" + std::to_string(sc.num_processors) +
             " batch=" + std::to_string(bc.num_processors);
    }
    if (sc.first_processor != bc.first_processor) {
      return at + "first_processor: session=" +
             std::to_string(sc.first_processor) +
             " batch=" + std::to_string(bc.first_processor);
    }
    if (sc.sigma_makespan != bc.sigma.makespan()) {
      return at + "sigma makespan: session=" +
             std::to_string(sc.sigma_makespan) +
             " batch=" + std::to_string(bc.sigma.makespan());
    }
  }
  // The batch result leaves the shared-pool fields defaulted on failure;
  // they are comparable only on success (the session always knows them).
  if (!s.success) return std::nullopt;
  if (s.shared_processors != b.shared_processors) {
    return "shared_processors: session=" +
           std::to_string(s.shared_processors) +
           " batch=" + std::to_string(b.shared_processors);
  }
  if (s.first_shared_processor != b.first_shared_processor) {
    return "first_shared_processor: session=" +
           std::to_string(s.first_shared_processor) +
           " batch=" + std::to_string(b.first_shared_processor);
  }
  if (s.shared_assignment.size() != b.shared_assignment.size()) {
    return "shared bin count: session=" +
           std::to_string(s.shared_assignment.size()) +
           " batch=" + std::to_string(b.shared_assignment.size());
  }
  for (std::size_t k = 0; k < s.shared_assignment.size(); ++k) {
    const auto& sb = s.shared_assignment[k];
    const auto& bb = b.shared_assignment[k];
    const std::string at = "shared bin " + std::to_string(k) + " ";
    if (sb.size() != bb.size()) {
      return at + "size: session=" + std::to_string(sb.size()) +
             " batch=" + std::to_string(bb.size());
    }
    for (std::size_t j = 0; j < sb.size(); ++j) {
      if (sb[j] != ids.at(bb[j])) {
        return at + "slot " + std::to_string(j) +
               ": session=" + std::to_string(sb[j]) +
               " batch=" + std::to_string(ids.at(bb[j]));
      }
    }
  }
  return std::nullopt;
}

std::optional<std::string> compare_with_batch(const AdmissionSession& session,
                                              const FedconsOptions& opts) {
  std::vector<SessionTaskId> ids;
  const TaskSystem system = session.resident_system(&ids);
  const FedconsResult batch =
      fedcons_schedule(system, session.processors(), opts);
  return compare_verdicts(session.verdict(), batch, ids);
}

EventOutcome apply_event(AdmissionSession& session, const OnlineEvent& e) {
  switch (e.kind) {
    case OnlineEvent::Kind::kAdmit:
      return session.admit(e.admits.at(0));
    case OnlineEvent::Kind::kRelease:
      return session.release(e.release_ids.at(0));
    case OnlineEvent::Kind::kSwap: {
      AdmissionSession::SwapBatch batch;
      batch.release_ids = e.release_ids;
      batch.admits = e.admits;
      return session.swap(batch);
    }
  }
  FEDCONS_EXPECTS_MSG(false, "unreachable event kind");
  return EventOutcome{};
}

DagTask random_task(Rng& rng, const OnlineFuzzConfig& config,
                    std::vector<DagTask>& pool) {
  if (!pool.empty() && rng.uniform01() < config.repeat_fraction) {
    // Re-admit earlier content (possibly still resident — duplicate content
    // is legal, only session ids are unique). This is what drives memo hits.
    const auto pick = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1));
    return pool[pick];
  }
  TaskSetParams params;
  params.num_tasks = 1;
  params.total_utilization = rng.uniform_real(config.util_lo, config.util_hi);
  params.utilization_cap = params.total_utilization + 0.01;
  params.period_min = 50.0;
  params.period_max = 2000.0;
  params.topology = DagTopology::kMixed;
  const TaskSystem system = generate_task_system(rng, params);
  pool.push_back(system[0]);
  return pool.back();
}

OnlineEvent random_event(Rng& rng, const OnlineFuzzConfig& config,
                         const std::vector<SessionTaskId>& alive,
                         std::vector<DagTask>& pool) {
  OnlineEvent e;
  const double r = rng.uniform01();
  if (!alive.empty() && r < 0.15) {
    e.kind = OnlineEvent::Kind::kSwap;
    std::vector<SessionTaskId> shuffled = alive;
    rng.shuffle(shuffled);
    const auto nrel = static_cast<std::size_t>(rng.uniform_int(
        1, static_cast<std::int64_t>(std::min<std::size_t>(3, alive.size()))));
    e.release_ids.assign(shuffled.begin(),
                         shuffled.begin() + static_cast<std::ptrdiff_t>(nrel));
    const std::int64_t nadm = rng.uniform_int(0, 2);
    for (std::int64_t i = 0; i < nadm; ++i) {
      e.admits.push_back(random_task(rng, config, pool));
    }
  } else if (!alive.empty() && r < 0.45) {
    e.kind = OnlineEvent::Kind::kRelease;
    const auto pick = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(alive.size()) - 1));
    e.release_ids.push_back(alive[pick]);
  } else {
    e.kind = OnlineEvent::Kind::kAdmit;
    e.admits.push_back(random_task(rng, config, pool));
  }
  return e;
}

void update_alive(std::vector<SessionTaskId>& alive, const OnlineEvent& e,
                  const EventOutcome& out) {
  if (!out.applied) return;
  for (SessionTaskId id : e.release_ids) {
    alive.erase(std::find(alive.begin(), alive.end(), id));
  }
  alive.insert(alive.end(), out.admitted_ids.begin(), out.admitted_ids.end());
}

/// Session ids an event consumes (admits draw ids even when rejected or
/// rolled back, so the count is static — the key to shrink-time remapping).
std::size_t ids_consumed(const OnlineEvent& e) {
  return e.kind == OnlineEvent::Kind::kRelease ? 0 : e.admits.size();
}

/// Remove event `victim` and shift later release ids down past the id range
/// it consumed. Returns std::nullopt when a later event references one of
/// the removed ids (that candidate cannot be made well-formed).
std::optional<OnlineTrace> remove_event(const OnlineTrace& trace,
                                        std::size_t victim) {
  std::size_t base = 0;
  for (std::size_t i = 0; i < victim; ++i) {
    base += ids_consumed(trace.events[i]);
  }
  const std::size_t k = ids_consumed(trace.events[victim]);
  OnlineTrace out;
  out.processors = trace.processors;
  out.events.reserve(trace.events.size() - 1);
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    if (i == victim) continue;
    OnlineEvent e = trace.events[i];
    if (k > 0 && i > victim) {
      for (SessionTaskId& id : e.release_ids) {
        if (id >= base && id < base + k) return std::nullopt;
        if (id >= base + k) id -= k;
      }
    }
    out.events.push_back(std::move(e));
  }
  return out;
}

/// True when the candidate still diverges. Candidates whose release ids no
/// longer resolve (admission decisions shifted) are simply not divergent.
bool still_diverges(const OnlineTrace& trace,
                    const AdmissionSession::Config& base) {
  try {
    return check_online_trace(trace, base).has_value();
  } catch (const ContractViolation&) {
    return false;
  }
}

/// Greedy event-removal shrink: keep deleting any event whose removal
/// preserves divergence, until a fixpoint or the probe budget runs out.
OnlineTrace shrink_trace(OnlineTrace trace, const AdmissionSession::Config& base,
                         std::size_t budget, std::size_t& probes) {
  bool progress = true;
  while (progress) {
    progress = false;
    std::size_t i = 0;
    while (i < trace.events.size()) {
      if (probes >= budget) return trace;
      const std::optional<OnlineTrace> candidate = remove_event(trace, i);
      if (!candidate.has_value()) {
        ++i;
        continue;
      }
      ++probes;
      if (still_diverges(*candidate, base)) {
        trace = *candidate;
        progress = true;  // same index now names the next event
      } else {
        ++i;
      }
    }
  }
  return trace;
}

struct TrialResult {
  std::size_t events = 0;
  std::size_t applied = 0;
  std::size_t rejected = 0;
  std::uint64_t memo_hits = 0;
  std::uint64_t memo_misses = 0;
  std::uint64_t bins_revalidated = 0;
  bool diverged = false;
  std::string detail;
  std::string trace_text;  ///< full (unshrunk) trace, set on divergence
};

}  // namespace

std::optional<std::string> check_online_trace(
    const OnlineTrace& trace, const AdmissionSession::Config& base) {
  AdmissionSession::Config cfg = base;
  cfg.processors = trace.processors;
  AdmissionSession session(cfg);
  const FedconsOptions opts = batch_options(session.config());

  std::optional<std::string> first;
  replay_online_trace(trace, session, [&](const OnlineEventReport& report) {
    if (first.has_value()) return;
    if (report.outcome.applied &&
        report.outcome.schedulable != session.verdict().success) {
      first = "event " + std::to_string(report.index) + " (" +
              to_string(report.kind) + "): outcome.schedulable=" +
              std::to_string(report.outcome.schedulable) +
              " disagrees with verdict()";
      return;
    }
    if (auto diff = compare_with_batch(session, opts)) {
      first = "event " + std::to_string(report.index) + " (" +
              to_string(report.kind) + "): " + *diff;
    }
  });
  return first;
}

OnlineFuzzReport run_online_fuzz(const OnlineFuzzConfig& config) {
  FEDCONS_EXPECTS(config.trials >= 1);
  FEDCONS_EXPECTS(config.m >= 1);
  FEDCONS_EXPECTS(config.events_per_trial >= 1);

  AdmissionSession::Config base;
  base.processors = config.m;
  base.memo_capacity = config.memo_capacity;
  const FedconsOptions opts = batch_options(base);

  BatchRunner runner(config.num_threads);
  const auto results = runner.run_trials<TrialResult>(
      config.trials, config.master_seed,
      [&](std::size_t /*trial*/, Rng& rng) {
        TrialResult r;
        AdmissionSession session(base);
        OnlineTrace trace;
        trace.processors = config.m;
        std::vector<SessionTaskId> alive;
        std::vector<DagTask> pool;
        for (std::size_t e = 0; e < config.events_per_trial; ++e) {
          const OnlineEvent event = random_event(rng, config, alive, pool);
          const EventOutcome out = apply_event(session, event);
          trace.events.push_back(event);
          update_alive(alive, event, out);
          ++r.events;
          if (out.applied) {
            ++r.applied;
          } else {
            ++r.rejected;
          }
          r.bins_revalidated += out.bins_revalidated;
          if (auto diff = compare_with_batch(session, opts)) {
            r.diverged = true;
            r.detail = "event " + std::to_string(e) + " (" +
                       to_string(event.kind) + "): " + *diff;
            r.trace_text = write_online_trace(trace);
            break;
          }
        }
        const MinprocsMemoStats stats = session.memo_stats();
        r.memo_hits = stats.hits;
        r.memo_misses = stats.misses;
        return r;
      });

  OnlineFuzzReport report;
  report.trials = results.size();
  for (std::size_t t = 0; t < results.size(); ++t) {
    const TrialResult& r = results[t];
    report.events += r.events;
    report.applied += r.applied;
    report.rejected += r.rejected;
    report.memo_hits += r.memo_hits;
    report.memo_misses += r.memo_misses;
    report.bins_revalidated += r.bins_revalidated;
    if (!r.diverged) continue;

    OnlineDivergence div;
    div.trial = t;
    div.detail = r.detail;
    const OnlineTrace full = parse_online_trace(r.trace_text);
    div.original_events = full.events.size();
    const OnlineTrace minimized =
        shrink_trace(full, base, config.shrink_budget, div.shrink_probes);
    div.minimized_events = minimized.events.size();
    div.trace_text = write_online_trace(minimized);
    try {
      if (auto diff = check_online_trace(minimized, base)) div.detail = *diff;
    } catch (const ContractViolation&) {
      // keep the detail recorded at generation time
    }
    report.divergences.push_back(std::move(div));
  }
  return report;
}

std::string online_fuzz_report_json(const OnlineFuzzReport& r) {
  const std::uint64_t lookups = r.memo_hits + r.memo_misses;
  const double hit_rate =
      lookups == 0 ? 0.0
                   : static_cast<double>(r.memo_hits) /
                         static_cast<double>(lookups);
  std::string out = "{";
  out += "\"trials\": " + std::to_string(r.trials);
  out += ", \"events\": " + std::to_string(r.events);
  out += ", \"applied\": " + std::to_string(r.applied);
  out += ", \"rejected\": " + std::to_string(r.rejected);
  out += ", \"memo_hits\": " + std::to_string(r.memo_hits);
  out += ", \"memo_misses\": " + std::to_string(r.memo_misses);
  out += ", \"memo_hit_rate\": " + format_double(hit_rate);
  out += ", \"bins_revalidated\": " + std::to_string(r.bins_revalidated);
  out += ", \"divergences\": " + std::to_string(r.divergences.size());
  out += "}";
  return out;
}

}  // namespace fedcons
