#include "fedcons/conform/artifact.h"

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <utility>

#include "fedcons/core/io.h"
#include "fedcons/util/check.h"

namespace fedcons {

namespace {

constexpr const char* kSchema = "fedcons-conformance-repro-v1";

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

const char* to_string(ReleaseModel m) {
  return m == ReleaseModel::kPeriodic ? "periodic" : "sporadic";
}
const char* to_string(ExecModel m) {
  return m == ExecModel::kAlwaysWcet ? "wcet" : "uniform";
}

/// Minimal recursive-descent parser for the subset the writer emits: objects
/// nested at most one level, string and number values. Produces a flat
/// "outer.inner" -> raw-value map (strings unescaped, numbers verbatim).
class MiniJsonParser {
 public:
  explicit MiniJsonParser(const std::string& text) : text_(text) {}

  std::map<std::string, std::string> parse() {
    std::map<std::string, std::string> out;
    parse_object("", out, /*depth=*/0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after document");
    return out;
  }

 private:
  void parse_object(const std::string& prefix,
                    std::map<std::string, std::string>& out, int depth) {
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return;
    }
    while (true) {
      skip_ws();
      const std::string key = prefix + parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      const char c = peek();
      if (c == '"') {
        out[key] = parse_string();
      } else if (c == '{') {
        if (depth >= 1) fail("objects nest at most one level");
        parse_object(key + ".", out, depth + 1);
      } else {
        out[key] = parse_number();
      }
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      c = text_[pos_++];
      switch (c) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          const std::string hex = text_.substr(pos_, 4);
          pos_ += 4;
          char* end = nullptr;
          const long code = std::strtol(hex.c_str(), &end, 16);
          if (end != hex.c_str() + 4 || code > 0x7f) {
            fail("unsupported \\u escape (ASCII only)");
          }
          out += static_cast<char>(code);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  std::string parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    return text_.substr(start, pos_ - start);
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  [[noreturn]] void fail(const std::string& message) const {
    int line = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') ++line;
    }
    throw ParseError(line, "artifact JSON: " + message);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

const std::string& require(const std::map<std::string, std::string>& fields,
                           const std::string& key) {
  const auto it = fields.find(key);
  if (it == fields.end()) {
    throw ParseError(1, "artifact JSON: missing field \"" + key + "\"");
  }
  return it->second;
}

std::int64_t to_int(const std::string& raw) {
  return std::strtoll(raw.c_str(), nullptr, 10);
}
std::uint64_t to_uint(const std::string& raw) {
  return std::strtoull(raw.c_str(), nullptr, 10);
}

}  // namespace

std::string to_json(const ViolationArtifact& artifact) {
  std::ostringstream out;
  out << "{\n"
      << "  \"schema\": \"" << kSchema << "\",\n"
      << "  \"algorithm\": \"" << json_escape(artifact.algorithm) << "\",\n"
      << "  \"m\": " << artifact.m << ",\n"
      << "  \"sim\": {\n"
      << "    \"horizon\": " << artifact.sim.horizon << ",\n"
      << "    \"release\": \"" << to_string(artifact.sim.release) << "\",\n"
      << "    \"jitter_frac\": " << format_double(artifact.sim.jitter_frac)
      << ",\n"
      << "    \"exec\": \"" << to_string(artifact.sim.exec) << "\",\n"
      << "    \"exec_lo\": " << format_double(artifact.sim.exec_lo) << ",\n"
      << "    \"seed\": " << artifact.sim.seed << "\n"
      << "  },\n"
      << "  \"note\": \"" << json_escape(artifact.note) << "\",\n"
      << "  \"observed\": {\n"
      << "    \"jobs_released\": " << artifact.observed.jobs_released << ",\n"
      << "    \"deadline_misses\": " << artifact.observed.deadline_misses
      << ",\n"
      << "    \"max_lateness\": " << artifact.observed.max_lateness << ",\n"
      << "    \"max_response_time\": " << artifact.observed.max_response_time
      << "\n"
      << "  },\n"
      << "  \"system\": \"" << json_escape(artifact.system_text) << "\"\n"
      << "}\n";
  return out.str();
}

ViolationArtifact parse_artifact(const std::string& json) {
  const auto fields = MiniJsonParser(json).parse();
  if (require(fields, "schema") != kSchema) {
    throw ParseError(1, "artifact JSON: unknown schema \"" +
                            require(fields, "schema") + "\"");
  }
  ViolationArtifact artifact;
  artifact.algorithm = require(fields, "algorithm");
  artifact.m = static_cast<int>(to_int(require(fields, "m")));
  artifact.sim.horizon = to_int(require(fields, "sim.horizon"));
  const std::string& release = require(fields, "sim.release");
  if (release == "periodic") {
    artifact.sim.release = ReleaseModel::kPeriodic;
  } else if (release == "sporadic") {
    artifact.sim.release = ReleaseModel::kSporadic;
  } else {
    throw ParseError(1, "artifact JSON: unknown release model " + release);
  }
  artifact.sim.jitter_frac =
      std::strtod(require(fields, "sim.jitter_frac").c_str(), nullptr);
  const std::string& exec = require(fields, "sim.exec");
  if (exec == "wcet") {
    artifact.sim.exec = ExecModel::kAlwaysWcet;
  } else if (exec == "uniform") {
    artifact.sim.exec = ExecModel::kUniform;
  } else {
    throw ParseError(1, "artifact JSON: unknown exec model " + exec);
  }
  artifact.sim.exec_lo =
      std::strtod(require(fields, "sim.exec_lo").c_str(), nullptr);
  artifact.sim.seed = to_uint(require(fields, "sim.seed"));
  artifact.note = require(fields, "note");
  artifact.observed.jobs_released =
      to_uint(require(fields, "observed.jobs_released"));
  artifact.observed.deadline_misses =
      to_uint(require(fields, "observed.deadline_misses"));
  artifact.observed.max_lateness =
      to_int(require(fields, "observed.max_lateness"));
  artifact.observed.max_response_time =
      to_int(require(fields, "observed.max_response_time"));
  artifact.system_text = require(fields, "system");
  (void)parse_task_system(artifact.system_text);  // validate eagerly
  FEDCONS_EXPECTS(artifact.m >= 1);
  return artifact;
}

ConformanceOutcome replay_artifact(const ViolationArtifact& artifact) {
  const ConformanceEntry entry = find_conformance_entry(artifact.algorithm);
  const TaskSystem system = parse_task_system(artifact.system_text);
  return entry.run(system, artifact.m, artifact.sim);
}

}  // namespace fedcons
