#include "fedcons/conform/harness.h"

#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "fedcons/conform/shrinker.h"
#include "fedcons/core/io.h"
#include "fedcons/engine/batch_runner.h"
#include "fedcons/obs/span_tracer.h"
#include "fedcons/util/check.h"

namespace fedcons {

namespace {

/// Everything one trial produces; written into the trial's result slot so
/// aggregation is independent of execution order.
struct TrialResult {
  struct PerEntry {
    bool supported = false;
    bool admitted = false;
    bool violation = false;
    SimStats sim;
  };
  std::vector<PerEntry> per_entry;
  SimConfig sim;            ///< the trial's exact simulation config
  std::string system_text;  ///< serialized only when a violation occurred
  PerfCounters delta;
};

}  // namespace

ConformConfig default_conform_config() {
  ConformConfig config;
  config.gen.num_tasks = 6;
  config.gen.period_min = 50.0;
  config.gen.period_max = 1000.0;
  config.gen.topology = DagTopology::kMixed;
  config.sim.horizon = 5000;
  config.sim.release = ReleaseModel::kSporadic;
  config.sim.jitter_frac = 1.0;
  config.sim.exec = ExecModel::kUniform;
  config.sim.exec_lo = 0.5;
  return config;
}

ConformReport run_conformance(const ConformConfig& config,
                              std::span<const ConformanceEntry> entries) {
  FEDCONS_EXPECTS(config.m >= 1);
  FEDCONS_EXPECTS(!entries.empty());
  FEDCONS_EXPECTS(config.util_lo <= config.util_hi);

  BatchRunner runner(config.num_threads);
  const auto results = runner.run_trials<TrialResult>(
      config.trials, config.master_seed, [&](std::size_t, Rng& rng) {
        TrialResult result;
        const PerfCounters before = perf_counters();

        TaskSetParams params = config.gen;
        if (rng.uniform01() < config.implicit_fraction) {
          params.deadline_ratio_min = 1.0;
          params.deadline_ratio_max = 1.0;
        }
        const double target =
            config.util_lo == config.util_hi
                ? config.util_lo
                : rng.uniform_real(config.util_lo, config.util_hi);
        params.total_utilization = target * config.m;
        params.utilization_cap = static_cast<double>(config.m);
        const TaskSystem system = generate_task_system(rng, params);

        result.sim = config.sim;
        result.sim.seed = rng.next_u64();

        result.per_entry.resize(entries.size());
        bool violated = false;
        for (std::size_t e = 0; e < entries.size(); ++e) {
          ++perf_counters().conform_trials;
          FEDCONS_SPAN_V("conform", "oracle", "entry", e);
          const ConformanceOutcome outcome =
              entries[e].run(system, config.m, result.sim);
          auto& slot = result.per_entry[e];
          slot.supported = outcome.supported;
          slot.admitted = outcome.admitted;
          slot.violation = outcome.violation();
          slot.sim = outcome.sim;
          if (slot.violation) {
            ++perf_counters().conform_violations;
            violated = true;
          }
        }
        if (violated) result.system_text = serialize_task_system(system);
        result.delta = perf_counters() - before;
        return result;
      });

  ConformReport report;
  report.trials = config.trials;
  report.m = config.m;
  report.entries.resize(entries.size());
  for (std::size_t e = 0; e < entries.size(); ++e) {
    report.entries[e].name = entries[e].name;
  }
  for (const TrialResult& r : results) {
    report.counters += r.delta;
    for (std::size_t e = 0; e < entries.size(); ++e) {
      const auto& slot = r.per_entry[e];
      auto& agg = report.entries[e];
      agg.supported += slot.supported ? 1 : 0;
      agg.admitted += slot.admitted ? 1 : 0;
      agg.violations += slot.violation ? 1 : 0;
      if (slot.admitted) agg.jobs_released += slot.sim.jobs_released;
    }
  }

  // Minimize every violation serially, in trial-index then entry order.
  const PerfCounters before_shrink = perf_counters();
  for (std::size_t i = 0; i < results.size(); ++i) {
    const TrialResult& r = results[i];
    for (std::size_t e = 0; e < entries.size(); ++e) {
      if (!r.per_entry[e].violation) continue;
      ViolationRecord record;
      record.trial = i;
      record.algorithm = entries[e].name;
      record.sim = r.sim;
      record.observed = r.per_entry[e].sim;
      record.system_text = r.system_text;

      FEDCONS_SPAN_V("conform", "shrink", "trial", i);
      ShrinkResult shrunk =
          shrink_violation(entries[e], parse_task_system(r.system_text),
                           config.m, r.sim, config.shrink_budget);
      record.minimized_text = serialize_task_system(shrunk.system);
      record.minimized_m = shrunk.m;
      record.shrink_probes = shrunk.probes;

      record.artifact.algorithm = entries[e].name;
      record.artifact.m = shrunk.m;
      record.artifact.sim = r.sim;
      record.artifact.note =
          "found by run_conformance trial " + std::to_string(i) +
          " (master_seed " + std::to_string(config.master_seed) +
          "), minimized in " + std::to_string(shrunk.reductions) +
          " reductions / " + std::to_string(shrunk.probes) + " probes";
      record.artifact.observed =
          entries[e].run(shrunk.system, shrunk.m, r.sim).sim;
      record.artifact.system_text = record.minimized_text;
      report.violations.push_back(std::move(record));
    }
  }
  report.counters += perf_counters() - before_shrink;
  return report;
}

std::string conform_report_json(const ConformReport& report) {
  std::ostringstream os;
  os << "{\n  \"schema_version\": 1,\n  \"trials\": " << report.trials
     << ",\n  \"m\": " << report.m << ",\n  \"entries\": [\n";
  for (std::size_t i = 0; i < report.entries.size(); ++i) {
    const auto& e = report.entries[i];
    os << "    {\"name\": \"" << e.name
       << "\", \"supported\": " << e.supported
       << ", \"admitted\": " << e.admitted
       << ", \"violations\": " << e.violations
       << ", \"jobs_released\": " << e.jobs_released << "}"
       << (i + 1 < report.entries.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"counters\": {\"conform_trials\": "
     << report.counters.conform_trials
     << ", \"conform_violations\": " << report.counters.conform_violations
     << ", \"conform_shrink_steps\": " << report.counters.conform_shrink_steps
     << "},\n"
     << "  \"violations\": " << report.violations.size() << "\n}\n";
  return os.str();
}

}  // namespace fedcons
