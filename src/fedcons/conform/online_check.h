// Differential conformance for the incremental admission engine.
//
// The AdmissionSession (online/admission_session.h) promises that after
// every event its verdict is structurally identical to re-running the batch
// analysis on the resident system. This module turns that promise into a
// checked claim:
//
//   check_online_trace — replay one trace through a session, re-run
//       fedcons_schedule on the residents after EVERY event, and compare
//       field by field (success, failure, failed task, per-cluster μ and
//       processor offsets, σ makespans, shared pool, per-bin membership).
//
//   run_online_fuzz — generate randomized event traces (admits of fresh and
//       repeated content, releases of live residents, atomic swaps), run the
//       check on each, and shrink any divergence to a minimal trace by
//       greedy event removal (with session-id remapping, since ids are
//       consumed sequentially by admit order).
//
// Divergences carry the minimized trace in the on-disk online-trace format,
// ready to pin under tests/online_corpus/.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fedcons/online/admission_session.h"
#include "fedcons/online/trace.h"

namespace fedcons {

/// Replay `trace` through a fresh session configured from `base` (processors
/// taken from the trace header) and compare against the batch analysis after
/// every event. Returns std::nullopt when every event conforms, otherwise a
/// description of the first divergence. Throws ContractViolation if the
/// trace itself is invalid (e.g. releases an id that is not resident).
[[nodiscard]] std::optional<std::string> check_online_trace(
    const OnlineTrace& trace, const AdmissionSession::Config& base = {});

/// Knobs for the randomized differential fuzz.
struct OnlineFuzzConfig {
  std::size_t trials = 500;
  int num_threads = 0;  ///< 0 = hardware concurrency
  std::uint64_t master_seed = 1;

  int m = 8;                           ///< processors per trial
  std::size_t events_per_trial = 40;   ///< session events per trace
  double util_lo = 0.3;                ///< per-admitted-task utilization range
  double util_hi = 1.6;                ///< > 1 ⇒ a mix of high-density tasks
  double repeat_fraction = 0.25;       ///< admits re-using earlier content
  std::size_t memo_capacity = 64;      ///< small, so eviction is exercised
  std::size_t shrink_budget = 400;     ///< candidate replays per divergence
};

/// One divergence, minimized.
struct OnlineDivergence {
  std::size_t trial = 0;
  std::string detail;              ///< first mismatching field, human-readable
  std::string trace_text;          ///< minimized trace (online-trace format)
  std::size_t original_events = 0;
  std::size_t minimized_events = 0;
  std::size_t shrink_probes = 0;   ///< candidate traces evaluated
};

struct OnlineFuzzReport {
  std::size_t trials = 0;
  std::size_t events = 0;
  std::size_t applied = 0;
  std::size_t rejected = 0;
  std::uint64_t memo_hits = 0;
  std::uint64_t memo_misses = 0;
  std::uint64_t bins_revalidated = 0;
  std::vector<OnlineDivergence> divergences;

  [[nodiscard]] bool ok() const noexcept { return divergences.empty(); }
};

/// Run the differential fuzz. Deterministic for a fixed (config, seed):
/// trial i draws from trial_seed(master_seed, i) regardless of thread count.
[[nodiscard]] OnlineFuzzReport run_online_fuzz(const OnlineFuzzConfig& config);

/// Machine-readable summary (one flat JSON object, divergence count only).
[[nodiscard]] std::string online_fuzz_report_json(const OnlineFuzzReport& r);

}  // namespace fedcons
