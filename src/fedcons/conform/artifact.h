// Pinned conformance-violation repro artifacts (JSON).
//
// A violation the harness finds (and the shrinker minimizes) is serialized
// into a small self-contained JSON document so it can be committed to
// tests/conformance_corpus/ and replayed forever after:
//
//   {
//     "schema": "fedcons-conformance-repro-v1",
//     "algorithm": "FEDCONS-lit-udo",          // conformance-entry name
//     "m": 1,
//     "sim": { "horizon": 64, "release": "periodic", "jitter_frac": 0,
//              "exec": "wcet", "exec_lo": 0.5, "seed": 1 },
//     "note": "free-form provenance",
//     "observed": { "jobs_released": 4, "deadline_misses": 1,
//                   "max_lateness": 1, "max_response_time": 17 },
//     "system": "task a\n  deadline 9\n  ...\nend\n"  // core/io.h format
//   }
//
// The embedded system uses the repository's canonical workload text format
// (core/io.h), so an artifact is also directly usable with fedcons_cli.
// `observed` records what the finder saw — informational provenance; replay
// re-derives the violation from scratch and only asserts that a miss occurs.
// The parser accepts exactly the subset of JSON the writer emits (flat
// objects, one level of nesting, string/number values) and raises ParseError
// on anything else.
#pragma once

#include <string>

#include "fedcons/conform/oracle.h"

namespace fedcons {

/// One pinned violation repro (see header comment).
struct ViolationArtifact {
  std::string algorithm;  ///< conformance-entry name (find_conformance_entry)
  int m = 1;
  SimConfig sim;
  std::string note;
  SimStats observed;        ///< finder-side statistics (provenance only)
  std::string system_text;  ///< core/io.h workload text
};

/// Serialize (stable field order; byte-deterministic for given inputs).
[[nodiscard]] std::string to_json(const ViolationArtifact& artifact);

/// Parse an artifact. Throws ParseError (core/io.h) on malformed JSON or an
/// unknown schema tag; the embedded system text is validated by parsing.
[[nodiscard]] ViolationArtifact parse_artifact(const std::string& json);

/// Re-run the artifact's oracle on its embedded system: resolves the entry by
/// name, parses the system, and returns the fresh outcome. A faithful
/// artifact yields outcome.violation() == true.
[[nodiscard]] ConformanceOutcome replay_artifact(
    const ViolationArtifact& artifact);

}  // namespace fedcons
