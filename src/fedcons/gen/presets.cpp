#include "fedcons/gen/presets.h"

#include <sstream>

namespace fedcons {

const std::vector<WorkloadPreset>& workload_presets() {
  static const std::vector<WorkloadPreset> presets = [] {
    std::vector<WorkloadPreset> out;

    {
      WorkloadPreset p;
      p.name = "avionics";
      p.description =
          "few tasks, short harmonic-ish periods, tight deadlines, shallow "
          "fork-join graphs (flight-control style)";
      p.params.num_tasks = 6;
      p.params.total_utilization = 2.0;
      p.params.utilization_cap = 2.5;
      p.params.period_min = 250;    // 25 ms at 100 µs ticks
      p.params.period_max = 10000;  // 1 s
      p.params.deadline_ratio_min = 0.4;
      p.params.deadline_ratio_max = 0.8;
      p.params.topology = DagTopology::kForkJoin;
      p.params.fork_join.max_depth = 2;
      p.params.fork_join.min_branches = 2;
      p.params.fork_join.max_branches = 4;
      p.params.fork_join.max_wcet = 60;
      out.push_back(std::move(p));
    }
    {
      WorkloadPreset p;
      p.name = "automotive";
      p.description =
          "many small tasks, wide period spread, mostly sequential with "
          "occasional parallel sections (AUTOSAR-runnable style)";
      p.params.num_tasks = 24;
      p.params.total_utilization = 3.0;
      p.params.utilization_cap = 1.5;
      p.params.period_min = 100;      // 1 ms ticks: 1 ms
      p.params.period_max = 100000;   // 1 s
      p.params.deadline_ratio_min = 0.6;
      p.params.deadline_ratio_max = 1.0;
      p.params.topology = DagTopology::kLayered;
      p.params.layered.min_layers = 1;
      p.params.layered.max_layers = 3;
      p.params.layered.min_width = 1;
      p.params.layered.max_width = 2;
      p.params.layered.max_wcet = 40;
      out.push_back(std::move(p));
    }
    {
      WorkloadPreset p;
      p.name = "vision";
      p.description =
          "heavy wide layered DAGs (frame pipelines), deadlines near "
          "periods, high per-task utilization — high-density tasks common";
      p.params.num_tasks = 4;
      p.params.total_utilization = 6.0;
      p.params.utilization_cap = 4.0;
      p.params.period_min = 1000;   // e.g. 33 ms frames at 33 µs ticks
      p.params.period_max = 4000;
      p.params.deadline_ratio_min = 0.8;
      p.params.deadline_ratio_max = 1.0;
      p.params.topology = DagTopology::kLayered;
      p.params.layered.min_layers = 4;
      p.params.layered.max_layers = 8;
      p.params.layered.min_width = 3;
      p.params.layered.max_width = 8;
      p.params.layered.edge_probability = 0.5;
      p.params.layered.max_wcet = 200;
      out.push_back(std::move(p));
    }
    {
      WorkloadPreset p;
      p.name = "mixed";
      p.description =
          "the E3 experiment configuration: mixed topologies, log-uniform "
          "periods over two-plus decades, D/T in [0.5, 1]";
      p.params.num_tasks = 16;
      p.params.total_utilization = 4.0;
      p.params.utilization_cap = 8.0;
      p.params.period_min = 100;
      p.params.period_max = 50000;
      p.params.topology = DagTopology::kMixed;
      out.push_back(std::move(p));
    }
    return out;
  }();
  return presets;
}

std::optional<WorkloadPreset> find_preset(const std::string& name) {
  for (const auto& p : workload_presets()) {
    if (p.name == name) return p;
  }
  return std::nullopt;
}

std::string describe_presets() {
  std::ostringstream os;
  for (const auto& p : workload_presets()) {
    os << "  " << p.name << " — " << p.description << "\n";
  }
  return os.str();
}

}  // namespace fedcons
