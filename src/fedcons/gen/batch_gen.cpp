#include "fedcons/gen/batch_gen.h"

#include <algorithm>

#include "fedcons/simd/batch_rng.h"

namespace fedcons {

std::vector<TaskSystem> generate_task_system_batch(
    std::span<const std::uint64_t> seeds, const TaskSetParams& params,
    std::vector<GenerationInfo>* infos) {
  std::vector<TaskSystem> out;
  out.reserve(seeds.size());
  if (infos != nullptr) {
    infos->clear();
    infos->resize(seeds.size());
  }
  constexpr std::size_t kLanes = simd::BatchRng::kLanes;
  for (std::size_t base = 0; base < seeds.size(); base += kLanes) {
    const std::size_t group = std::min(kLanes, seeds.size() - base);
    // Pad the final partial group by repeating its first seed: the padding
    // lanes advance with the block fills but nothing ever reads them.
    std::uint64_t lane_seeds[kLanes];
    for (std::size_t l = 0; l < kLanes; ++l) {
      lane_seeds[l] = seeds[base + (l < group ? l : 0)];
    }
    simd::BatchRng batch(lane_seeds);
    for (std::size_t l = 0; l < group; ++l) {
      simd::LaneRng lane(batch, static_cast<int>(l));
      GenerationInfo info;
      out.push_back(generate_task_system(lane, params, &info));
      if (infos != nullptr) (*infos)[base + l] = info;
    }
  }
  return out;
}

}  // namespace fedcons
