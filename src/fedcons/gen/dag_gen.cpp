#include "fedcons/gen/dag_gen.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "fedcons/simd/batch_rng.h"
#include "fedcons/util/check.h"

namespace fedcons {

template <typename RngT>
Dag generate_layered_dag(RngT& rng, const LayeredDagParams& p) {
  FEDCONS_EXPECTS(p.min_layers >= 1 && p.max_layers >= p.min_layers);
  FEDCONS_EXPECTS(p.min_width >= 1 && p.max_width >= p.min_width);
  FEDCONS_EXPECTS(p.min_wcet >= 1 && p.max_wcet >= p.min_wcet);
  FEDCONS_EXPECTS(p.edge_probability >= 0.0 && p.edge_probability <= 1.0);
  FEDCONS_EXPECTS(p.skip_probability >= 0.0 && p.skip_probability <= 1.0);

  const int layers = static_cast<int>(
      rng.uniform_int(p.min_layers, p.max_layers));
  Dag g;
  std::vector<std::vector<VertexId>> layer(static_cast<std::size_t>(layers));
  for (auto& l : layer) {
    const int width =
        static_cast<int>(rng.uniform_int(p.min_width, p.max_width));
    for (int i = 0; i < width; ++i) {
      l.push_back(g.add_vertex(rng.uniform_int(p.min_wcet, p.max_wcet)));
    }
  }
  for (std::size_t k = 1; k < layer.size(); ++k) {
    for (VertexId v : layer[k]) {
      bool has_pred = false;
      // Adjacent layer edges.
      for (VertexId u : layer[k - 1]) {
        if (rng.bernoulli(p.edge_probability)) {
          g.add_edge(u, v);
          has_pred = true;
        }
      }
      // Skip edges from any earlier layer.
      for (std::size_t j = 0; j + 1 < k; ++j) {
        for (VertexId u : layer[j]) {
          if (rng.bernoulli(p.skip_probability)) g.add_edge(u, v);
        }
      }
      // Honest layering: guarantee a predecessor in layer k−1.
      if (!has_pred) {
        const auto& prev = layer[k - 1];
        VertexId u = prev[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(prev.size()) - 1))];
        g.add_edge(u, v);
      }
    }
  }
  return g;
}

namespace {

// Emits a fork–join block between fresh source/sink vertices; returns
// (source, sink).
template <typename RngT>
std::pair<VertexId, VertexId> emit_fork_join(Dag& g, RngT& rng,
                                             const ForkJoinParams& p,
                                             int depth) {
  VertexId src = g.add_vertex(rng.uniform_int(p.min_wcet, p.max_wcet));
  VertexId sink = g.add_vertex(rng.uniform_int(p.min_wcet, p.max_wcet));
  const int branches =
      static_cast<int>(rng.uniform_int(p.min_branches, p.max_branches));
  for (int b = 0; b < branches; ++b) {
    if (depth < p.max_depth && rng.bernoulli(p.nest_probability)) {
      auto [s, t] = emit_fork_join(g, rng, p, depth + 1);
      g.add_edge(src, s);
      g.add_edge(t, sink);
    } else {
      VertexId v = g.add_vertex(rng.uniform_int(p.min_wcet, p.max_wcet));
      g.add_edge(src, v);
      g.add_edge(v, sink);
    }
  }
  return {src, sink};
}

}  // namespace

template <typename RngT>
Dag generate_fork_join_dag(RngT& rng, const ForkJoinParams& p) {
  FEDCONS_EXPECTS(p.max_depth >= 1);
  FEDCONS_EXPECTS(p.min_branches >= 1 && p.max_branches >= p.min_branches);
  FEDCONS_EXPECTS(p.min_wcet >= 1 && p.max_wcet >= p.min_wcet);
  FEDCONS_EXPECTS(p.nest_probability >= 0.0 && p.nest_probability <= 1.0);
  Dag g;
  emit_fork_join(g, rng, p, 1);
  return g;
}

Dag rescale_volume(const Dag& dag, Time target_vol) {
  FEDCONS_EXPECTS(!dag.empty());
  FEDCONS_EXPECTS(target_vol >= static_cast<Time>(dag.num_vertices()));
  const double factor = static_cast<double>(target_vol) /
                        static_cast<double>(dag.vol());
  Dag g;
  for (VertexId v = 0; v < dag.num_vertices(); ++v) {
    double scaled = std::llround(static_cast<double>(dag.wcet(v)) * factor);
    g.add_vertex(std::max<Time>(1, static_cast<Time>(scaled)));
  }
  for (VertexId v = 0; v < dag.num_vertices(); ++v) {
    for (VertexId w : dag.successors(v)) g.add_edge(v, w);
  }
  return g;
}

template Dag generate_layered_dag<Rng>(Rng&, const LayeredDagParams&);
template Dag generate_layered_dag<simd::LaneRng>(simd::LaneRng&,
                                                 const LayeredDagParams&);
template Dag generate_fork_join_dag<Rng>(Rng&, const ForkJoinParams&);
template Dag generate_fork_join_dag<simd::LaneRng>(simd::LaneRng&,
                                                   const ForkJoinParams&);

}  // namespace fedcons
