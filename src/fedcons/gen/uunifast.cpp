#include "fedcons/gen/uunifast.h"

#include <algorithm>
#include <cmath>

#include "fedcons/simd/batch_rng.h"
#include "fedcons/util/check.h"

namespace fedcons {

template <typename RngT>
std::vector<double> uunifast(RngT& rng, int n, double total) {
  FEDCONS_EXPECTS(n >= 1);
  FEDCONS_EXPECTS(total > 0.0);
  std::vector<double> u(static_cast<std::size_t>(n));
  double sum = total;
  for (int i = 1; i < n; ++i) {
    double next = sum * std::pow(rng.uniform01(),
                                 1.0 / static_cast<double>(n - i));
    u[static_cast<std::size_t>(i - 1)] = sum - next;
    sum = next;
  }
  u[static_cast<std::size_t>(n - 1)] = sum;
  return u;
}

template <typename RngT>
std::vector<double> uunifast_discard(RngT& rng, int n, double total, double cap,
                                     int max_attempts) {
  FEDCONS_EXPECTS(n >= 1);
  FEDCONS_EXPECTS(total > 0.0);
  FEDCONS_EXPECTS(cap > 0.0);
  FEDCONS_EXPECTS_MSG(total <= static_cast<double>(n) * cap,
                      "target utilization not reachable under the cap");
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    auto u = uunifast(rng, n, total);
    if (std::all_of(u.begin(), u.end(),
                    [cap](double x) { return x <= cap; })) {
      return u;
    }
  }
  FEDCONS_EXPECTS_MSG(false, "uunifast_discard rejection budget exhausted");
  return {};  // unreachable
}

template std::vector<double> uunifast<Rng>(Rng&, int, double);
template std::vector<double> uunifast<simd::LaneRng>(simd::LaneRng&, int,
                                                     double);
template std::vector<double> uunifast_discard<Rng>(Rng&, int, double, double,
                                                   int);
template std::vector<double> uunifast_discard<simd::LaneRng>(simd::LaneRng&,
                                                             int, double,
                                                             double, int);

}  // namespace fedcons
