// Random DAG topology generators.
//
// Two families standard in the parallel real-time literature:
//  * Layered Erdős–Rényi: vertices are arranged in layers; each forward pair
//    (earlier layer → later layer) becomes an edge with probability p. The
//    workhorse for schedulability experiments on DAG tasks.
//  * Nested fork–join: recursive parallel-section structure matching
//    OpenMP-style programs (the paper's motivating "complex multi-threaded
//    computations").
//
// Generators emit only the topology + WCETs; period/deadline assignment and
// volume scaling live in taskset_gen.h.
#pragma once

#include "fedcons/core/dag.h"
#include "fedcons/util/rng.h"

namespace fedcons {

namespace simd {
class LaneRng;  // batched lane stream (simd/batch_rng.h)
}  // namespace simd

/// Parameters for the layered Erdős–Rényi generator.
struct LayeredDagParams {
  int min_layers = 2;
  int max_layers = 5;
  int min_width = 1;   ///< vertices per layer, drawn uniformly
  int max_width = 4;
  double edge_probability = 0.4;  ///< per forward pair, adjacent layers
  double skip_probability = 0.1;  ///< per forward pair, non-adjacent layers
  Time min_wcet = 1;
  Time max_wcet = 100;
};

/// Draw a layered DAG. Every vertex in layer k > 0 is guaranteed at least one
/// predecessor in layer k−1 (so layering is honest and the graph has no
/// spurious sources), which also keeps the graph weakly connected enough to
/// behave like a single parallel computation. Templated over the RNG type
/// (Rng or simd::LaneRng; instantiated in the .cpp).
template <typename RngT>
[[nodiscard]] Dag generate_layered_dag(RngT& rng, const LayeredDagParams& p);

/// Parameters for the recursive fork–join generator.
struct ForkJoinParams {
  int max_depth = 3;        ///< nesting depth
  int min_branches = 2;
  int max_branches = 3;
  double nest_probability = 0.4;  ///< chance a branch is itself a fork–join
  Time min_wcet = 1;
  Time max_wcet = 100;
};

/// Draw a (possibly nested) fork–join DAG with a single source and sink.
template <typename RngT>
[[nodiscard]] Dag generate_fork_join_dag(RngT& rng, const ForkJoinParams& p);

extern template Dag generate_layered_dag<Rng>(Rng&, const LayeredDagParams&);
extern template Dag generate_layered_dag<simd::LaneRng>(simd::LaneRng&,
                                                        const LayeredDagParams&);
extern template Dag generate_fork_join_dag<Rng>(Rng&, const ForkJoinParams&);
extern template Dag generate_fork_join_dag<simd::LaneRng>(
    simd::LaneRng&, const ForkJoinParams&);

/// Rescale every WCET by factor `target_vol / current vol` (with rounding,
/// each vertex kept ≥ 1) so the graph's volume approximates target_vol; the
/// exact achieved volume is the return graph's vol(). Preserves topology.
/// Precondition: target_vol >= |V| (each vertex needs at least one unit).
[[nodiscard]] Dag rescale_volume(const Dag& dag, Time target_vol);

}  // namespace fedcons
