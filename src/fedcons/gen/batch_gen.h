// Batched task-system generation over lane-parallel RNG streams.
//
// A campaign draws thousands of independent systems, one seed each. The only
// numeric recurrence in that loop is the per-trial xoshiro stream, so four
// trials' streams advance together through simd::BatchRng (AVX2-backed when
// available) while each system is materialized from its own lane — whose
// draw sequence is bit-identical to Rng(seed), making the batch output
// element-wise equal to the one-seed-at-a-time scalar generation (pinned by
// tests/simd_gen_test.cpp).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fedcons/gen/taskset_gen.h"

namespace fedcons {

/// Generate one task system per seed, in order. Equivalent to
///   for each seed: Rng rng(seed); generate_task_system(rng, params)
/// but with the RNG streams advanced four lanes abreast. When `infos` is
/// non-null it is resized to seeds.size() and filled per trial.
[[nodiscard]] std::vector<TaskSystem> generate_task_system_batch(
    std::span<const std::uint64_t> seeds, const TaskSetParams& params,
    std::vector<GenerationInfo>* infos = nullptr);

}  // namespace fedcons
