// End-to-end random task-system generation.
//
// Reconstructs the experimental setup the paper describes only in prose
// ("schedulability experiments upon randomly-generated task systems"),
// using the conventions canonical in this literature:
//   * per-task utilizations from UUniFast-Discard at a target U_sum,
//   * periods log-uniform over [period_min, period_max] (Emberson et al.),
//   * DAG topology layered Erdős–Rényi or nested fork–join,
//   * per-task volume vol_i = u_i · T_i realized by rescaling vertex WCETs,
//   * constrained deadline D_i = max(len_i, ⌊r · T_i⌋) with the deadline
//     ratio r drawn uniformly from [deadline_ratio_min, deadline_ratio_max].
//
// The max(len_i, ·) clamp enforces the *necessary* condition len ≤ D — the
// standard practice (systems violating it are trivially infeasible for every
// scheduler and would only dilute acceptance-ratio comparisons). The clamp
// rate is reported by the generator for transparency.
#pragma once

#include <optional>

#include "fedcons/core/task_system.h"
#include "fedcons/gen/dag_gen.h"
#include "fedcons/util/rng.h"

namespace fedcons {

/// Which topology family to draw from.
enum class DagTopology { kLayered, kForkJoin, kMixed };

[[nodiscard]] const char* to_string(DagTopology t) noexcept;

/// Full parameter block for random task-system generation.
struct TaskSetParams {
  int num_tasks = 8;
  double total_utilization = 2.0;  ///< target U_sum
  double utilization_cap = 8.0;    ///< per-task cap for UUniFast-Discard

  double period_min = 100.0;   ///< log-uniform period range (ticks)
  double period_max = 100000.0;

  double deadline_ratio_min = 0.5;  ///< D/T ratio, uniform
  double deadline_ratio_max = 1.0;

  DagTopology topology = DagTopology::kLayered;
  LayeredDagParams layered;
  ForkJoinParams fork_join;
};

/// Side information about a generated system.
struct GenerationInfo {
  int deadline_clamps = 0;  ///< tasks whose D was raised to len
  double achieved_utilization = 0.0;
};

/// Draw one task system. Always succeeds for valid parameters; the achieved
/// U_sum differs from the target only by integer-rounding of volumes
/// (reported in `info` when non-null). Templated over the RNG type (Rng or
/// simd::LaneRng — the batched campaign path; instantiated in the .cpp).
template <typename RngT>
[[nodiscard]] TaskSystem generate_task_system(RngT& rng,
                                              const TaskSetParams& params,
                                              GenerationInfo* info = nullptr);

extern template TaskSystem generate_task_system<Rng>(Rng&,
                                                     const TaskSetParams&,
                                                     GenerationInfo*);
extern template TaskSystem generate_task_system<simd::LaneRng>(
    simd::LaneRng&, const TaskSetParams&, GenerationInfo*);

}  // namespace fedcons
