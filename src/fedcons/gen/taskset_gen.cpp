#include "fedcons/gen/taskset_gen.h"

#include <algorithm>
#include <cmath>

#include "fedcons/gen/uunifast.h"
#include "fedcons/simd/batch_rng.h"
#include "fedcons/util/check.h"

namespace fedcons {

const char* to_string(DagTopology t) noexcept {
  switch (t) {
    case DagTopology::kLayered: return "layered";
    case DagTopology::kForkJoin: return "fork-join";
    case DagTopology::kMixed: return "mixed";
  }
  return "?";
}

template <typename RngT>
TaskSystem generate_task_system(RngT& rng, const TaskSetParams& params,
                                GenerationInfo* info) {
  FEDCONS_EXPECTS(params.num_tasks >= 1);
  FEDCONS_EXPECTS(params.total_utilization > 0.0);
  FEDCONS_EXPECTS(params.period_min >= 1.0 &&
                  params.period_max >= params.period_min);
  FEDCONS_EXPECTS(params.deadline_ratio_min > 0.0 &&
                  params.deadline_ratio_max >= params.deadline_ratio_min &&
                  params.deadline_ratio_max <= 1.0);

  const auto utils = uunifast_discard(rng, params.num_tasks,
                                      params.total_utilization,
                                      params.utilization_cap);
  TaskSystem sys;
  GenerationInfo local;
  for (int i = 0; i < params.num_tasks; ++i) {
    // Topology.
    DagTopology topo = params.topology;
    if (topo == DagTopology::kMixed) {
      topo = rng.bernoulli(0.5) ? DagTopology::kLayered
                                : DagTopology::kForkJoin;
    }
    Dag shape = (topo == DagTopology::kLayered)
                    ? generate_layered_dag(rng, params.layered)
                    : generate_fork_join_dag(rng, params.fork_join);

    // Period, target volume, deadline.
    const double period_real =
        rng.log_uniform_real(params.period_min, params.period_max);
    const Time period = std::max<Time>(1, static_cast<Time>(
                                              std::llround(period_real)));
    const double u = utils[static_cast<std::size_t>(i)];
    const Time target_vol =
        std::max<Time>(static_cast<Time>(shape.num_vertices()),
                       static_cast<Time>(std::llround(
                           u * static_cast<double>(period))));
    Dag g = rescale_volume(shape, target_vol);

    const double ratio = rng.uniform_real(
        params.deadline_ratio_min,
        std::nextafter(params.deadline_ratio_max,
                       params.deadline_ratio_max + 1.0));
    Time deadline = std::max<Time>(1, static_cast<Time>(std::llround(
                                          ratio * static_cast<double>(period))));
    deadline = std::min(deadline, period);  // keep constrained
    if (g.len() > deadline) {
      deadline = g.len();
      ++local.deadline_clamps;
      // A clamp can push D past T for very parallel-hostile draws; keep the
      // system constrained-deadline by stretching the period too.
      // (len > T would make even back-to-back releases infeasible.)
    }
    const Time final_period = std::max(period, deadline);

    sys.add(DagTask(std::move(g), deadline, final_period,
                    "gen-tau" + std::to_string(i + 1)));
  }
  local.achieved_utilization = sys.total_utilization_approx();
  if (info != nullptr) *info = local;
  return sys;
}

template TaskSystem generate_task_system<Rng>(Rng&, const TaskSetParams&,
                                              GenerationInfo*);
template TaskSystem generate_task_system<simd::LaneRng>(simd::LaneRng&,
                                                        const TaskSetParams&,
                                                        GenerationInfo*);

}  // namespace fedcons
