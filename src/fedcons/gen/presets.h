// Named workload presets — reproducible generator configurations for the
// domains the paper's model targets. Used by examples, the fedcons_gen tool,
// and anyone wanting a realistic starting point without hand-tuning eight
// generator knobs.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "fedcons/gen/taskset_gen.h"

namespace fedcons {

/// A named, documented generator configuration.
struct WorkloadPreset {
  std::string name;
  std::string description;
  TaskSetParams params;
};

/// The built-in presets:
///   avionics   — few tasks, harmonic-ish short periods, tight deadlines,
///                shallow fork–join graphs (flight-control style);
///   automotive — many small tasks, broad period spread (1–1000 ms style),
///                mostly sequential with occasional parallel sections;
///   vision     — heavy wide layered DAGs (frame pipelines), deadlines
///                close to periods, high per-task utilization;
///   mixed      — the E3 experiment configuration (general-purpose).
[[nodiscard]] const std::vector<WorkloadPreset>& workload_presets();

/// Look up a preset by name; nullopt if unknown.
[[nodiscard]] std::optional<WorkloadPreset> find_preset(
    const std::string& name);

/// One-line-per-preset listing for --help style output.
[[nodiscard]] std::string describe_presets();

}  // namespace fedcons
