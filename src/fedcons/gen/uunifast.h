// Utilization vector sampling.
//
// UUniFast (Bini & Buttazzo, 2005) draws n per-task utilizations summing to a
// target U, uniformly over the (n−1)-simplex — the standard generator in
// schedulability experiments, including the random-task-system experiments
// the paper describes in Section IV. UUniFast-Discard (Emberson et al.)
// extends it to U > 1 (multiprocessor targets) by rejecting draws where any
// single utilization exceeds a cap.
#pragma once

#include <vector>

#include "fedcons/util/rng.h"

namespace fedcons {

namespace simd {
class LaneRng;  // batched lane stream (simd/batch_rng.h)
}  // namespace simd

// The generators are templated over the RNG type so the batched lane streams
// (simd::LaneRng) run the identical algorithms as Rng — instantiated in the
// .cpp for exactly those two types (extern declarations below).

/// UUniFast: n utilizations > 0 summing (to floating accuracy) to total.
/// Preconditions: n >= 1, total > 0. For unbiased simplex sampling the
/// caller should keep total <= 1; use uunifast_discard otherwise.
template <typename RngT>
[[nodiscard]] std::vector<double> uunifast(RngT& rng, int n, double total);

/// UUniFast-Discard: like uunifast but resamples until every utilization is
/// at most `cap` (cap defaults to 1, the classic multiprocessor convention).
/// Preconditions: n >= 1, total > 0, cap > 0, total <= n*cap (otherwise no
/// valid vector exists — rejected via contract). `max_attempts` bounds the
/// rejection loop; throws when exceeded (degenerate parameter corner).
template <typename RngT>
[[nodiscard]] std::vector<double> uunifast_discard(RngT& rng, int n,
                                                   double total,
                                                   double cap = 1.0,
                                                   int max_attempts = 10000);

extern template std::vector<double> uunifast<Rng>(Rng&, int, double);
extern template std::vector<double> uunifast<simd::LaneRng>(simd::LaneRng&,
                                                            int, double);
extern template std::vector<double> uunifast_discard<Rng>(Rng&, int, double,
                                                          double, int);
extern template std::vector<double> uunifast_discard<simd::LaneRng>(
    simd::LaneRng&, int, double, double, int);

}  // namespace fedcons
