// Deterministic, seeded fault plans — the workload-perturbation half of the
// fault-injection layer (fedcons/fault/).
//
// A FaultPlan describes misbehaviour to inject into a simulation run:
//   * WCET overruns: a task's actual execution times are scaled by a permille
//     factor (uniformly, or per vertex), so jobs may exceed the budgets the
//     analysis certified;
//   * release jitter: releases may arrive EARLY by up to early_release_max
//     ticks, violating the sporadic minimum-separation assumption;
//   * processor failure: processor p dies at time t (interpreted by the
//     degradation layer, fault/degraded.h — admission is re-run on the
//     surviving processors).
//
// Determinism contract: injection is a pure function of (plan, generated
// jobs). Overrun scaling is exact integer arithmetic; jitter shifts are drawn
// from a hash of (plan.seed, task name, release index) — NEVER from the
// simulation RNG stream — so an empty plan leaves every simulation draw, and
// therefore every report byte, untouched, and the same plan perturbs the same
// jobs identically regardless of thread count or evaluation order.
//
// Tasks are targeted by DISPLAY NAME (core/task_system.h), not TaskId:
// names survive the serialize/parse round-trips the shrinker performs, while
// indices shift when a task is dropped. A spec naming no task in the system,
// or overriding a vertex index beyond the task's graph, is inert — shrinker
// moves can weaken a plan's reach but never silently retarget it.
//
// Plans have a canonical one-line text form (parse_fault_plan /
// format_fault_plan) shared by `fedcons_cli --inject=SPEC` and the pinned
// fault artifacts:
//
//     task:NAME,overrun:2500,v1:4000,early:30;seed:7;proc:2@1000
//
// Clauses are ';'-separated: `seed:` (jitter hash seed), `proc:P@T`
// (processor failure), and one `task:` clause per targeted task with
// ','-separated options `overrun:` (uniform permille, 1000 = 1.0x),
// `vN:` (per-vertex permille override), `early:` (max early-arrival ticks).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "fedcons/core/task_system.h"
#include "fedcons/util/rng.h"
#include "fedcons/util/time_types.h"

namespace fedcons {

/// Runtime-supervision switch carried by SimConfig.
enum class SupervisionMode {
  kNone,     ///< faults (if any) run unchecked — demonstrates cascades
  kEnforce,  ///< budget + arrival-guard + template-slot enforcement
};

[[nodiscard]] const char* to_string(SupervisionMode m) noexcept;

/// Faults targeting one task (matched by display name).
struct TaskFaultSpec {
  std::string task;  ///< display name (core/task_system.h)

  /// Uniform execution-time scale in permille (1000 = 1.0x, 2500 = 2.5x).
  /// Applied as exec' = ⌈exec · p / 1000⌉ to every vertex without an
  /// explicit override below. Values < 1000 model underruns.
  std::uint32_t overrun_permille = 1000;

  /// Sparse per-vertex overrides: (vertex index, permille). Entries whose
  /// index is outside the task's graph are inert (shrinker-safe). Later
  /// entries for the same vertex win.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> vertex_overrides;

  /// Maximum number of ticks a release may arrive EARLY (0 = releases are
  /// untouched). Actual shifts come from the plan-seed hash.
  Time early_release_max = 0;

  /// Effective permille factor for vertex v.
  [[nodiscard]] std::uint32_t permille_for(std::uint32_t v) const noexcept;

  /// True when this spec perturbs nothing (identity scale, no jitter).
  [[nodiscard]] bool trivial() const noexcept;
};

/// A processor failing at an instant (processor < 0 = no failure).
struct ProcessorFailure {
  int processor = -1;
  Time at = 0;
};

/// A complete deterministic fault plan (see header comment).
struct FaultPlan {
  std::uint64_t seed = 0;  ///< drives the jitter-shift hash
  std::vector<TaskFaultSpec> tasks;
  ProcessorFailure processor_failure;

  /// True when applying the plan is guaranteed to be the identity.
  [[nodiscard]] bool empty() const noexcept;

  /// The spec targeting `name`, or nullptr.
  [[nodiscard]] const TaskFaultSpec* find(std::string_view name) const noexcept;
};

/// exec' = ⌈exec · permille / 1000⌉, saturating (never wraps); preserves 0.
[[nodiscard]] Time scale_permille(Time exec, std::uint32_t permille);

/// Deterministic early-arrival shift in [0, max_shift] for release `index`
/// of task `task` under plan seed `seed`. A pure hash — independent of the
/// simulation RNG stream and of evaluation order.
[[nodiscard]] Time fault_early_shift(std::uint64_t seed, std::string_view task,
                                     std::uint64_t index, Time max_shift);

/// Knobs for random_fault_plan.
struct FaultPlanParams {
  std::uint32_t overrun_lo = 1200;  ///< inclusive permille range for the
  std::uint32_t overrun_hi = 5000;  ///< injected overrun factor
  double per_vertex_probability = 0.5;  ///< else the factor applies uniformly
  double jitter_probability = 0.5;      ///< chance of also injecting jitter
  double early_max_frac = 0.75;  ///< early_release_max ≤ frac · T_target
};

/// Draw a random single-target plan against task `target` of `system`.
/// Deterministic in (rng state, system, target, params); the plan's own
/// jitter seed is drawn from `rng`.
[[nodiscard]] FaultPlan random_fault_plan(Rng& rng, const TaskSystem& system,
                                          TaskId target,
                                          const FaultPlanParams& params = {});

/// Canonical one-line text form (round-trips through parse_fault_plan).
[[nodiscard]] std::string format_fault_plan(const FaultPlan& plan);

/// Parse the --inject grammar (header comment). Throws ParseError
/// (core/io.h) with a position hint on malformed input.
[[nodiscard]] FaultPlan parse_fault_plan(const std::string& spec);

}  // namespace fedcons
