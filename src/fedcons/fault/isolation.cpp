#include "fedcons/fault/isolation.h"

#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "fedcons/conform/shrinker.h"
#include "fedcons/core/io.h"
#include "fedcons/engine/batch_runner.h"
#include "fedcons/federated/fedcons_algorithm.h"
#include "fedcons/obs/span_tracer.h"
#include "fedcons/sim/system_sim.h"
#include "fedcons/util/check.h"
#include "fedcons/util/mini_json.h"

namespace fedcons {

namespace {

/// Everything one trial produces; written into the trial's result slot so
/// aggregation is independent of execution order.
struct TrialResult {
  bool admitted = false;
  bool incident = false;
  std::string target;
  FaultPlan plan;
  SimConfig sim;
  std::uint64_t target_misses = 0;
  SimStats cross;           ///< merged non-target stats
  std::string system_text;  ///< serialized only when an incident occurred
  PerfCounters delta;
};

bool constrained_deadlines(const TaskSystem& system) {
  for (TaskId t = 0; t < system.size(); ++t) {
    if (system[t].deadline() > system[t].period()) return false;
  }
  return true;
}

}  // namespace

IsolationConfig default_isolation_config() {
  IsolationConfig config;
  config.gen.num_tasks = 6;
  config.gen.period_min = 50.0;
  config.gen.period_max = 1000.0;
  config.gen.topology = DagTopology::kMixed;
  config.sim.horizon = 5000;
  config.sim.release = ReleaseModel::kSporadic;
  config.sim.jitter_frac = 1.0;
  config.sim.exec = ExecModel::kUniform;
  config.sim.exec_lo = 0.5;
  return config;
}

ConformanceEntry make_isolation_entry(FaultPlan plan,
                                      SupervisionMode supervision) {
  ConformanceEntry entry;
  entry.name = std::string("FEDCONS-isolation@") + to_string(supervision);
  entry.run = [plan = std::move(plan), supervision](
                  const TaskSystem& system, int m,
                  const SimConfig& config) -> ConformanceOutcome {
    ConformanceOutcome outcome;
    if (!constrained_deadlines(system)) return outcome;
    outcome.supported = true;
    const FedconsResult result = fedcons_schedule(system, m);
    if (!result.success) return outcome;
    outcome.admitted = true;
    SimConfig faulted = config;
    faulted.faults = plan;
    faulted.supervision = supervision;
    const SystemSimReport report = simulate_system(system, result, faulted);
    // Merge only the tasks the plan does NOT target: a violation is then
    // exactly "an innocent task missed a deadline". Shrinker moves that drop
    // the target (plan inert → no faults) or the victim both destroy the
    // violation, so descent converges toward a minimal {target, victim}.
    for (TaskId t = 0; t < system.size(); ++t) {
      if (plan.find(task_display_name(system, t)) != nullptr) continue;
      outcome.sim.merge(report.per_task[t]);
    }
    return outcome;
  };
  return entry;
}

IsolationReport run_isolation_fuzz(const IsolationConfig& config) {
  FEDCONS_EXPECTS(config.m >= 1);
  FEDCONS_EXPECTS(config.trials >= 1);
  FEDCONS_EXPECTS(config.util_lo <= config.util_hi);

  BatchRunner runner(config.num_threads);
  const auto results = runner.run_trials<TrialResult>(
      config.trials, config.master_seed, [&](std::size_t, Rng& rng) {
        TrialResult result;
        const PerfCounters before = perf_counters();
        ++perf_counters().fault_isolation_trials;
        FEDCONS_SPAN("fault", "isolation-trial");

        TaskSetParams params = config.gen;
        const double target_util =
            config.util_lo == config.util_hi
                ? config.util_lo
                : rng.uniform_real(config.util_lo, config.util_hi);
        params.total_utilization = target_util * config.m;
        params.utilization_cap = static_cast<double>(config.m);
        const TaskSystem system = generate_task_system(rng, params);

        // Fixed draw order regardless of the admission outcome, so the
        // generated stream for trial i never depends on analysis internals.
        const TaskId target = static_cast<TaskId>(
            rng.uniform_int(0, static_cast<std::int64_t>(system.size()) - 1));
        FaultPlan plan = random_fault_plan(rng, system, target, config.fault);
        const std::uint64_t sim_seed = rng.next_u64();

        const FedconsResult admission = fedcons_schedule(system, config.m);
        if (!admission.success) {
          result.delta = perf_counters() - before;
          return result;
        }
        result.admitted = true;
        result.target = task_display_name(system, target);
        result.sim = config.sim;
        result.sim.seed = sim_seed;
        result.sim.faults = plan;
        result.sim.supervision = config.supervision;
        result.plan = std::move(plan);

        const SystemSimReport report =
            simulate_system(system, admission, result.sim);
        result.target_misses = report.per_task[target].deadline_misses;
        for (TaskId t = 0; t < system.size(); ++t) {
          if (t == target) continue;
          result.cross.merge(report.per_task[t]);
        }
        result.incident = result.cross.deadline_misses > 0;
        if (result.incident) result.system_text = serialize_task_system(system);
        result.delta = perf_counters() - before;
        return result;
      });

  IsolationReport report;
  report.trials = config.trials;
  report.m = config.m;
  report.supervision = config.supervision;
  for (const TrialResult& r : results) {
    report.counters += r.delta;
    report.admitted += r.admitted ? 1 : 0;
    report.target_misses += r.target_misses;
    report.cross_misses += r.cross.deadline_misses;
  }

  // Minimize every incident serially, in trial-index order.
  const PerfCounters before_shrink = perf_counters();
  for (std::size_t i = 0; i < results.size(); ++i) {
    const TrialResult& r = results[i];
    if (!r.incident) continue;
    IsolationIncident incident;
    incident.trial = i;
    incident.target = r.target;
    incident.plan = r.plan;
    incident.sim = r.sim;
    incident.cross_observed = r.cross;
    incident.system_text = r.system_text;

    FEDCONS_SPAN_V("fault", "isolation-shrink", "trial", i);
    const ConformanceEntry entry =
        make_isolation_entry(r.plan, config.supervision);
    ShrinkResult shrunk =
        shrink_violation(entry, parse_task_system(r.system_text), config.m,
                         r.sim, config.shrink_budget);
    incident.minimized_text = serialize_task_system(shrunk.system);
    incident.minimized_m = shrunk.m;
    incident.shrink_probes = shrunk.probes;

    incident.artifact.m = shrunk.m;
    incident.artifact.supervision = config.supervision;
    incident.artifact.plan = r.plan;
    incident.artifact.sim = r.sim;
    incident.artifact.note =
        "found by run_isolation_fuzz trial " + std::to_string(i) +
        " (master_seed " + std::to_string(config.master_seed) + ", target " +
        r.target + "), minimized in " + std::to_string(shrunk.reductions) +
        " reductions / " + std::to_string(shrunk.probes) + " probes";
    incident.artifact.observed = entry.run(shrunk.system, shrunk.m, r.sim).sim;
    incident.artifact.system_text = incident.minimized_text;
    report.incidents.push_back(std::move(incident));
  }
  report.counters += perf_counters() - before_shrink;
  return report;
}

std::string isolation_report_json(const IsolationReport& report) {
  std::ostringstream os;
  os << "{\n  \"schema_version\": 1,\n  \"trials\": " << report.trials
     << ",\n  \"admitted\": " << report.admitted
     << ",\n  \"m\": " << report.m << ",\n  \"supervision\": \""
     << to_string(report.supervision) << "\",\n  \"target_misses\": "
     << report.target_misses
     << ",\n  \"cross_misses\": " << report.cross_misses
     << ",\n  \"counters\": {\"fault_isolation_trials\": "
     << report.counters.fault_isolation_trials
     << ", \"fault_injections\": " << report.counters.fault_injections
     << ", \"fault_enforcements\": " << report.counters.fault_enforcements
     << "},\n  \"incidents\": [\n";
  for (std::size_t i = 0; i < report.incidents.size(); ++i) {
    const IsolationIncident& inc = report.incidents[i];
    os << "    {\"trial\": " << inc.trial << ", \"target\": \""
       << json_escape(inc.target) << "\", \"plan\": \""
       << json_escape(format_fault_plan(inc.plan))
       << "\", \"minimized_m\": " << inc.minimized_m
       << ", \"shrink_probes\": " << inc.shrink_probes << "}"
       << (i + 1 < report.incidents.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

}  // namespace fedcons
