// The isolation property checker: federated isolation as a fuzzed,
// enforced, and pinned claim.
//
// Federated scheduling's core promise is ISOLATION: a dedicated cluster owns
// its processors outright, and an EDF bin admits tasks only up to a demand
// certificate — so one task misbehaving (WCET overrun, early arrivals)
// must never cost a DIFFERENT task its deadline, provided the runtime
// enforces the admitted contracts (SupervisionMode::kEnforce). This harness
// turns that promise into a checked claim, the same way conform/harness.h
// treats schedulability verdicts:
//
//   trial i: draw a random system → run FEDCONS admission → pick one target
//   task uniformly → draw a random fault plan against it → replay the full
//   system with the plan injected → count deadline misses of the target
//   (expected, its fault) separately from misses of every OTHER task
//   (forbidden under enforcement).
//
// A cross-task miss is an INCIDENT: it is minimized with the conformance
// shrinker (dropping the target task or the victim task makes the candidate
// non-violating, so shrinking converges toward a minimal {target, victim}
// pair) and packaged as a pinned fault artifact (fault/fault_artifact.h).
// With supervision OFF the same harness demonstrates the cascade the
// enforcement exists to prevent — the demo battery expects incidents there.
//
// Determinism contract (inherited from BatchRunner): trial i draws from
// Rng(trial_seed(master_seed, i)) in a fixed order; shrinking runs serially
// in trial order. The IsolationReport is BIT-IDENTICAL for any thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "fedcons/conform/oracle.h"
#include "fedcons/fault/fault_artifact.h"
#include "fedcons/fault/fault_plan.h"
#include "fedcons/gen/taskset_gen.h"
#include "fedcons/util/perf_counters.h"

namespace fedcons {

struct IsolationConfig {
  int m = 8;
  std::size_t trials = 500;
  std::uint64_t master_seed = 1;
  int num_threads = 0;  ///< BatchRunner convention (0 = hardware)
  SupervisionMode supervision = SupervisionMode::kEnforce;
  /// Per-trial target U_sum drawn uniformly from [util_lo, util_hi]·m.
  double util_lo = 0.2;
  double util_hi = 0.95;
  TaskSetParams gen;   ///< total_utilization/utilization_cap set per trial
  SimConfig sim;       ///< seed/faults/supervision overwritten per trial
  FaultPlanParams fault;
  std::size_t shrink_budget = 2000;  ///< max oracle probes per incident
};

/// Tuned defaults mirroring default_conform_config: small periods, short
/// horizon, sporadic releases, uniform execution times.
[[nodiscard]] IsolationConfig default_isolation_config();

/// One cross-task miss the fuzzer caught, minimized and packaged.
struct IsolationIncident {
  std::size_t trial = 0;
  std::string target;        ///< display name of the faulted task
  FaultPlan plan;
  SimConfig sim;             ///< exact per-trial config (seed included)
  SimStats cross_observed;   ///< non-target stats on the ORIGINAL system
  std::string system_text;   ///< original system (core/io.h)
  std::string minimized_text;  ///< after shrinking
  int minimized_m = 0;
  std::size_t shrink_probes = 0;
  FaultArtifact artifact;    ///< pinned repro (minimized system)
};

struct IsolationReport {
  std::size_t trials = 0;
  std::size_t admitted = 0;  ///< trials FEDCONS accepted (= plans injected)
  int m = 0;
  SupervisionMode supervision = SupervisionMode::kNone;
  std::uint64_t target_misses = 0;  ///< misses of faulted tasks (their fault)
  std::uint64_t cross_misses = 0;   ///< misses of innocent neighbours
  std::vector<IsolationIncident> incidents;  ///< trial-index order
  PerfCounters counters;  ///< Σ per-trial deltas + shrink-phase delta

  /// The claim under enforcement: no innocent task ever missed.
  [[nodiscard]] bool isolated() const noexcept { return cross_misses == 0; }
};

/// Run the fuzzer (see header comment). Preconditions: m >= 1; trials >= 1;
/// util_lo <= util_hi.
[[nodiscard]] IsolationReport run_isolation_fuzz(const IsolationConfig& config);

/// Machine-readable report document (fedcons_conform --isolation --json).
/// Fixed key order, carries "schema_version"; byte-identical for a given
/// report, which is itself bit-identical for any thread count.
[[nodiscard]] std::string isolation_report_json(const IsolationReport& report);

/// The isolation oracle as a ConformanceEntry, which is what lets the
/// conformance shrinker minimize incidents unchanged: run FEDCONS admission
/// on (system, m); when admitted, replay the full system with `plan`
/// injected under `supervision` and return as `sim` the MERGED statistics of
/// every task the plan does not target. outcome.violation() is therefore
/// exactly "an innocent task missed a deadline". Systems with D > T are
/// unsupported (FEDCONS's contract).
[[nodiscard]] ConformanceEntry make_isolation_entry(
    FaultPlan plan, SupervisionMode supervision);

}  // namespace fedcons
