#include "fedcons/fault/fault_artifact.h"

#include <cstdlib>
#include <sstream>

#include "fedcons/core/io.h"
#include "fedcons/fault/isolation.h"
#include "fedcons/sim/sim_wire.h"
#include "fedcons/util/check.h"
#include "fedcons/util/mini_json.h"

namespace fedcons {

namespace {

constexpr const char* kSchema = "fedcons-fault-repro-v1";

SupervisionMode parse_supervision(const std::string& name) {
  if (name == "none") return SupervisionMode::kNone;
  if (name == "enforce") return SupervisionMode::kEnforce;
  throw ParseError(1, "artifact JSON: unknown supervision mode " + name);
}

}  // namespace

std::string to_json(const FaultArtifact& artifact) {
  std::ostringstream out;
  out << "{\n"
      << "  \"schema\": \"" << kSchema << "\",\n"
      << "  \"m\": " << artifact.m << ",\n"
      << "  \"supervision\": \"" << to_string(artifact.supervision) << "\",\n"
      << "  \"plan\": \"" << json_escape(format_fault_plan(artifact.plan))
      << "\",\n"
      << "  \"sim\": {\n"
      << "    \"horizon\": " << artifact.sim.horizon << ",\n"
      << "    \"release\": \"" << release_model_name(artifact.sim.release)
      << "\",\n"
      << "    \"jitter_frac\": " << format_double(artifact.sim.jitter_frac)
      << ",\n"
      << "    \"exec\": \"" << exec_model_name(artifact.sim.exec) << "\",\n"
      << "    \"exec_lo\": " << format_double(artifact.sim.exec_lo) << ",\n"
      << "    \"seed\": " << artifact.sim.seed << "\n"
      << "  },\n"
      << "  \"note\": \"" << json_escape(artifact.note) << "\",\n"
      << "  \"observed\": {\n"
      << "    \"jobs_released\": " << artifact.observed.jobs_released << ",\n"
      << "    \"deadline_misses\": " << artifact.observed.deadline_misses
      << ",\n"
      << "    \"max_lateness\": " << artifact.observed.max_lateness << ",\n"
      << "    \"max_response_time\": " << artifact.observed.max_response_time
      << "\n"
      << "  },\n"
      << "  \"system\": \"" << json_escape(artifact.system_text) << "\"\n"
      << "}\n";
  return out.str();
}

FaultArtifact parse_fault_artifact(const std::string& json) {
  const auto fields = parse_mini_json(json);
  if (require_field(fields, "schema") != kSchema) {
    throw ParseError(1, "artifact JSON: unknown schema \"" +
                            require_field(fields, "schema") + "\"");
  }
  FaultArtifact artifact;
  artifact.m = static_cast<int>(mini_json_int(require_field(fields, "m")));
  artifact.supervision =
      parse_supervision(require_field(fields, "supervision"));
  artifact.plan = parse_fault_plan(require_field(fields, "plan"));
  artifact.sim.horizon = mini_json_int(require_field(fields, "sim.horizon"));
  artifact.sim.release =
      parse_release_model(require_field(fields, "sim.release"));
  artifact.sim.jitter_frac =
      std::strtod(require_field(fields, "sim.jitter_frac").c_str(), nullptr);
  artifact.sim.exec = parse_exec_model(require_field(fields, "sim.exec"));
  artifact.sim.exec_lo =
      std::strtod(require_field(fields, "sim.exec_lo").c_str(), nullptr);
  artifact.sim.seed = mini_json_uint(require_field(fields, "sim.seed"));
  artifact.note = require_field(fields, "note");
  artifact.observed.jobs_released =
      mini_json_uint(require_field(fields, "observed.jobs_released"));
  artifact.observed.deadline_misses =
      mini_json_uint(require_field(fields, "observed.deadline_misses"));
  artifact.observed.max_lateness =
      mini_json_int(require_field(fields, "observed.max_lateness"));
  artifact.observed.max_response_time =
      mini_json_int(require_field(fields, "observed.max_response_time"));
  artifact.system_text = require_field(fields, "system");
  (void)parse_task_system(artifact.system_text);  // validate eagerly
  FEDCONS_EXPECTS(artifact.m >= 1);
  return artifact;
}

ConformanceOutcome replay_fault_artifact(const FaultArtifact& artifact) {
  const ConformanceEntry entry =
      make_isolation_entry(artifact.plan, artifact.supervision);
  const TaskSystem system = parse_task_system(artifact.system_text);
  return entry.run(system, artifact.m, artifact.sim);
}

}  // namespace fedcons
