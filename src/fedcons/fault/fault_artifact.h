// Pinned isolation-violation repro artifacts (JSON).
//
// When the isolation fuzzer (fault/isolation.h) catches a cross-task deadline
// miss — a fault plan targeting task X making some OTHER task miss — the
// shrunken witness is serialized into a small self-contained document so it
// can be committed to the corpus and replayed forever after:
//
//   {
//     "schema": "fedcons-fault-repro-v1",
//     "m": 2,
//     "supervision": "none",                    // or "enforce"
//     "plan": "task:a,overrun:4000;seed:7",     // fault_plan.h grammar
//     "sim": { "horizon": 64, "release": "periodic", "jitter_frac": 0,
//              "exec": "wcet", "exec_lo": 0.5, "seed": 1 },
//     "note": "free-form provenance",
//     "observed": { "jobs_released": 4, "deadline_misses": 1,
//                   "max_lateness": 1, "max_response_time": 17 },
//     "system": "task a\n  deadline 9\n  ...\nend\n"  // core/io.h format
//   }
//
// `observed` records the CROSS-TASK statistics the finder saw (misses of
// every task the plan does not target) — informational provenance; replay
// re-derives the violation from scratch via the isolation oracle and only
// asserts that a cross-task miss occurs. The JSON dialect is the shared
// mini-JSON subset (util/mini_json.h).
#pragma once

#include <string>

#include "fedcons/conform/oracle.h"
#include "fedcons/fault/fault_plan.h"

namespace fedcons {

/// One pinned isolation-violation repro (see header comment).
struct FaultArtifact {
  int m = 1;
  SupervisionMode supervision = SupervisionMode::kNone;
  FaultPlan plan;
  SimConfig sim;  ///< base simulation config; its faults/supervision fields
                  ///< are ignored — `plan` and `supervision` above are
                  ///< authoritative at replay
  std::string note;
  SimStats observed;        ///< finder-side CROSS-TASK stats (provenance only)
  std::string system_text;  ///< core/io.h workload text
};

/// Serialize (stable field order; byte-deterministic for given inputs).
[[nodiscard]] std::string to_json(const FaultArtifact& artifact);

/// Parse an artifact. Throws ParseError (core/io.h) on malformed JSON, an
/// unknown schema tag, or a malformed plan; the embedded system text is
/// validated by parsing.
[[nodiscard]] FaultArtifact parse_fault_artifact(const std::string& json);

/// Re-run the artifact's isolation oracle on its embedded system: FEDCONS
/// admission, then full-system replay with the plan injected under the
/// artifact's supervision mode. The returned outcome's sim statistics cover
/// ONLY the tasks the plan does not target, so outcome.violation() == "a
/// neighbour of the faulted task missed a deadline". A faithful artifact
/// yields outcome.violation() == true.
[[nodiscard]] ConformanceOutcome replay_fault_artifact(
    const FaultArtifact& artifact);

}  // namespace fedcons
