// Graceful degradation on processor failure.
//
// Federated scheduling has no online migration story: clusters own their
// processors and partitioned tasks are pinned. When a processor dies, the
// honest system-level response is to RE-ADMIT — re-run FEDCONS on the
// surviving m−1 processors and, if the full task set no longer fits, shed
// tasks (criticality-blind here: the shedding policy drops whichever task
// admission blames, falling back to the highest-density survivor) until the
// remainder is schedulable again. This module computes that reconfiguration
// and reports it in a structured form: which tasks survive, which are shed,
// and the fresh allocation for the survivors.
//
// The report is a *planning* artifact (what the system should switch to),
// not a tick-level simulation of the failure transient — mode-change
// protocols are out of scope and called out in DESIGN.md §11.
#pragma once

#include <string>
#include <vector>

#include "fedcons/core/task_system.h"
#include "fedcons/fault/fault_plan.h"
#include "fedcons/federated/fedcons_algorithm.h"

namespace fedcons {

/// Why a task was shed during degradation.
struct ShedDecision {
  TaskId task = 0;          ///< index in the ORIGINAL system
  std::string name;         ///< display name
  std::string reason;       ///< e.g. "admission blamed task" / "highest density"
};

/// Outcome of re-admission after a processor failure.
struct DegradedModeReport {
  int original_m = 0;
  ProcessorFailure failure;
  int remaining_m = 0;  ///< max(original_m − 1, 0)

  /// Survivor TaskIds in the ORIGINAL system, in system order. The subsystem
  /// handed to FEDCONS lists exactly these tasks in this order, so
  /// result.clusters[k].task indexes into `survivors`.
  std::vector<TaskId> survivors;
  std::vector<ShedDecision> shed;  ///< in shedding order

  /// True when every original task survived (re-admission on m−1 succeeded
  /// without shedding).
  bool full_reschedule = false;

  /// FEDCONS result for the survivor subsystem on remaining_m processors.
  /// success == false only when remaining_m == 0 (nothing can run) or the
  /// survivor set is empty.
  FedconsResult result;

  [[nodiscard]] std::string describe(const TaskSystem& system) const;
};

/// Compute the degraded-mode plan (see header comment). Preconditions:
/// m >= 1; failure.processor in [0, m).
[[nodiscard]] DegradedModeReport degrade_on_processor_failure(
    const TaskSystem& system, int m, const ProcessorFailure& failure,
    const FedconsOptions& options = {});

/// Machine-readable degraded-mode document (fedcons_cli --inject=proc:…
/// --json). Fixed key order; byte-deterministic for given inputs.
[[nodiscard]] std::string degraded_report_json(const TaskSystem& system,
                                               const DegradedModeReport& report);

}  // namespace fedcons
