#include "fedcons/fault/degraded.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "fedcons/obs/span_tracer.h"
#include "fedcons/util/check.h"

namespace fedcons {

namespace {

/// Build the subsystem containing exactly `ids` (original-system indices).
TaskSystem subsystem(const TaskSystem& system, const std::vector<TaskId>& ids) {
  std::vector<DagTask> tasks;
  tasks.reserve(ids.size());
  for (const TaskId id : ids) tasks.push_back(system[id]);
  return TaskSystem(std::move(tasks));
}

/// The survivor (by position in `ids`) with the highest density — the
/// fallback shedding victim when admission does not name an offender.
std::size_t highest_density_position(const TaskSystem& system,
                                     const std::vector<TaskId>& ids) {
  std::size_t best = 0;
  BigRational best_density(-1);
  for (std::size_t k = 0; k < ids.size(); ++k) {
    const BigRational d = system[ids[k]].density();
    if (d > best_density) {
      best_density = d;
      best = k;
    }
  }
  return best;
}

}  // namespace

DegradedModeReport degrade_on_processor_failure(const TaskSystem& system,
                                                int m,
                                                const ProcessorFailure& failure,
                                                const FedconsOptions& options) {
  FEDCONS_EXPECTS(m >= 1);
  FEDCONS_EXPECTS(failure.processor >= 0 && failure.processor < m);
  FEDCONS_SPAN("fault", "degrade");

  DegradedModeReport report;
  report.original_m = m;
  report.failure = failure;
  report.remaining_m = m - 1;
  report.survivors.resize(system.size());
  for (TaskId i = 0; i < system.size(); ++i) report.survivors[i] = i;

  if (report.remaining_m < 1) {
    // The platform is gone; everything is shed and there is nothing to admit.
    for (const TaskId id : report.survivors) {
      report.shed.push_back(
          {id, task_display_name(system, id), "no processors remain"});
    }
    report.survivors.clear();
    return report;
  }

  while (!report.survivors.empty()) {
    const TaskSystem candidate = subsystem(system, report.survivors);
    FedconsResult result =
        fedcons_schedule(candidate, report.remaining_m, options);
    if (result.success) {
      report.result = std::move(result);
      report.full_reschedule = report.shed.empty();
      return report;
    }
    // Shed the task admission blames; fall back to the highest-density
    // survivor when the failure carries no culprit.
    std::size_t victim;
    std::string reason;
    if (result.failed_task.has_value() &&
        *result.failed_task < report.survivors.size()) {
      victim = *result.failed_task;
      reason = std::string("admission failed in ") +
               to_string(result.failure) + " phase";
    } else {
      victim = highest_density_position(system, report.survivors);
      reason = "highest-density survivor (no culprit reported)";
    }
    const TaskId original = report.survivors[victim];
    report.shed.push_back(
        {original, task_display_name(system, original), std::move(reason)});
    report.survivors.erase(
        report.survivors.begin() + static_cast<std::ptrdiff_t>(victim));
  }
  // Every task shed and still nothing to schedule (survivor set empty).
  return report;
}

std::string DegradedModeReport::describe(const TaskSystem& system) const {
  std::ostringstream out;
  out << "Degraded mode: processor " << failure.processor << " failed at t="
      << failure.at << "; re-admitting on " << remaining_m << " of "
      << original_m << " processor(s)\n";
  if (remaining_m < 1) {
    out << "  platform exhausted: all " << shed.size() << " task(s) shed\n";
    return out.str();
  }
  out << "  survivors: " << survivors.size() << "/" << system.size()
      << (full_reschedule ? " (full reschedule, nothing shed)" : "") << "\n";
  for (const TaskId id : survivors) {
    out << "    + " << task_display_name(system, id) << "\n";
  }
  for (const auto& s : shed) {
    out << "    - SHED " << s.name << " (" << s.reason << ")\n";
  }
  if (result.success) {
    out << "  degraded allocation: " << result.clusters.size()
        << " cluster(s), " << result.shared_processors
        << " shared processor(s)\n";
  } else {
    out << "  no feasible degraded allocation\n";
  }
  return out.str();
}

std::string degraded_report_json(const TaskSystem& system,
                                 const DegradedModeReport& report) {
  std::ostringstream os;
  os << "{\n"
     << "  \"schema_version\": 1,\n"
     << "  \"report\": \"degraded-mode\",\n"
     << "  \"failed_processor\": " << report.failure.processor << ",\n"
     << "  \"failed_at\": " << report.failure.at << ",\n"
     << "  \"original_m\": " << report.original_m << ",\n"
     << "  \"remaining_m\": " << report.remaining_m << ",\n"
     << "  \"full_reschedule\": " << (report.full_reschedule ? "true" : "false")
     << ",\n"
     << "  \"schedulable\": " << (report.result.success ? "true" : "false")
     << ",\n"
     << "  \"survivors\": [";
  for (std::size_t k = 0; k < report.survivors.size(); ++k) {
    os << (k ? ", " : "") << "\""
       << task_display_name(system, report.survivors[k]) << "\"";
  }
  os << "],\n"
     << "  \"shed\": [\n";
  for (std::size_t k = 0; k < report.shed.size(); ++k) {
    os << "    {\"task\": \"" << report.shed[k].name << "\", \"reason\": \""
       << report.shed[k].reason << "\"}"
       << (k + 1 < report.shed.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

}  // namespace fedcons
