#include "fedcons/fault/fault_plan.h"

#include <algorithm>
#include <sstream>

#include "fedcons/core/io.h"
#include "fedcons/util/check.h"

namespace fedcons {

namespace {

/// SplitMix64 finalizer — the same mixer rng.cpp seeds through, reused here
/// as a standalone hash so jitter draws are independent of any RNG stream.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t hash_name(std::string_view name) {
  // FNV-1a; collisions only weaken jitter diversity, never determinism.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

const char* to_string(SupervisionMode m) noexcept {
  switch (m) {
    case SupervisionMode::kNone: return "none";
    case SupervisionMode::kEnforce: return "enforce";
  }
  return "?";
}

std::uint32_t TaskFaultSpec::permille_for(std::uint32_t v) const noexcept {
  std::uint32_t p = overrun_permille;
  for (const auto& [vertex, permille] : vertex_overrides) {
    if (vertex == v) p = permille;  // later entries win
  }
  return p;
}

bool TaskFaultSpec::trivial() const noexcept {
  if (early_release_max != 0) return false;
  if (overrun_permille != 1000) return false;
  return std::all_of(vertex_overrides.begin(), vertex_overrides.end(),
                     [](const auto& e) { return e.second == 1000; });
}

bool FaultPlan::empty() const noexcept {
  if (processor_failure.processor >= 0) return false;
  return std::all_of(tasks.begin(), tasks.end(),
                     [](const TaskFaultSpec& s) { return s.trivial(); });
}

const TaskFaultSpec* FaultPlan::find(std::string_view name) const noexcept {
  for (const auto& spec : tasks) {
    if (spec.task == name) return &spec;
  }
  return nullptr;
}

Time scale_permille(Time exec, std::uint32_t permille) {
  FEDCONS_EXPECTS(exec >= 0);
  if (permille == 1000 || exec == 0) return exec;
  const Time scaled =
      saturating_mul(exec, static_cast<Time>(permille));
  if (scaled == kTimeInfinity) return kTimeInfinity;
  return ceil_div(scaled, 1000);
}

Time fault_early_shift(std::uint64_t seed, std::string_view task,
                       std::uint64_t index, Time max_shift) {
  FEDCONS_EXPECTS(max_shift >= 0);
  if (max_shift == 0) return 0;
  const std::uint64_t h =
      mix64(mix64(seed ^ hash_name(task)) ^ (index * 0x9e3779b97f4a7c15ULL));
  // Modulo bias is irrelevant here — shifts only need to be deterministic
  // and well-spread, not uniform to cryptographic standards.
  return static_cast<Time>(
      h % static_cast<std::uint64_t>(max_shift + 1));
}

FaultPlan random_fault_plan(Rng& rng, const TaskSystem& system, TaskId target,
                            const FaultPlanParams& params) {
  FEDCONS_EXPECTS(target < system.size());
  FEDCONS_EXPECTS(params.overrun_lo <= params.overrun_hi);
  FaultPlan plan;
  plan.seed = rng.next_u64();

  const DagTask& task = system[target];
  TaskFaultSpec spec;
  spec.task = task_display_name(system, target);
  const auto factor = static_cast<std::uint32_t>(rng.uniform_int(
      params.overrun_lo, params.overrun_hi));
  if (rng.bernoulli(params.per_vertex_probability) &&
      task.graph().num_vertices() > 0) {
    const auto v = static_cast<std::uint32_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(task.graph().num_vertices()) - 1));
    spec.vertex_overrides.emplace_back(v, factor);
  } else {
    spec.overrun_permille = factor;
  }
  if (rng.bernoulli(params.jitter_probability)) {
    const Time cap = std::max<Time>(
        1, static_cast<Time>(static_cast<double>(task.period()) *
                             params.early_max_frac));
    spec.early_release_max = rng.uniform_int(1, cap);
  }
  plan.tasks.push_back(std::move(spec));
  return plan;
}

std::string format_fault_plan(const FaultPlan& plan) {
  std::ostringstream out;
  bool first = true;
  auto clause = [&]() -> std::ostringstream& {
    if (!first) out << ";";
    first = false;
    return out;
  };
  if (plan.seed != 0) clause() << "seed:" << plan.seed;
  for (const auto& spec : plan.tasks) {
    clause() << "task:" << spec.task;
    if (spec.overrun_permille != 1000) {
      out << ",overrun:" << spec.overrun_permille;
    }
    for (const auto& [vertex, permille] : spec.vertex_overrides) {
      out << ",v" << vertex << ":" << permille;
    }
    if (spec.early_release_max != 0) {
      out << ",early:" << spec.early_release_max;
    }
  }
  if (plan.processor_failure.processor >= 0) {
    clause() << "proc:" << plan.processor_failure.processor << "@"
             << plan.processor_failure.at;
  }
  return out.str();
}

namespace {

std::uint64_t parse_uint_field(const std::string& text, const char* what) {
  // Full-uint64 range: jitter seeds are drawn via Rng::next_u64 and must
  // round-trip through the text grammar, so int64 parsing is not enough.
  // stoull silently wraps "-5"; reject any '-' up front instead.
  if (text.find('-') != std::string::npos) {
    throw ParseError(1, std::string("fault plan: ") + what +
                            " must be non-negative: '" + text + "'");
  }
  try {
    std::size_t pos = 0;
    const unsigned long long v = std::stoull(text, &pos);
    if (pos != text.size()) throw std::invalid_argument("trailing chars");
    return v;
  } catch (const std::exception&) {
    throw ParseError(1, std::string("fault plan: malformed ") + what + ": '" +
                            text + "'");
  }
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::stringstream stream(text);
  std::string item;
  while (std::getline(stream, item, sep)) out.push_back(item);
  return out;
}

}  // namespace

FaultPlan parse_fault_plan(const std::string& spec) {
  FaultPlan plan;
  if (spec.empty()) return plan;
  for (const std::string& clause : split(spec, ';')) {
    if (clause.empty()) {
      throw ParseError(1, "fault plan: empty clause");
    }
    const auto colon = clause.find(':');
    if (colon == std::string::npos) {
      throw ParseError(1, "fault plan: clause '" + clause +
                              "' is missing ':'");
    }
    const std::string head = clause.substr(0, colon);
    if (head == "seed") {
      plan.seed = parse_uint_field(clause.substr(colon + 1), "seed");
    } else if (head == "proc") {
      const std::string body = clause.substr(colon + 1);
      const auto at = body.find('@');
      if (at == std::string::npos) {
        throw ParseError(1, "fault plan: proc clause needs P@T: '" + clause +
                                "'");
      }
      plan.processor_failure.processor = static_cast<int>(
          parse_uint_field(body.substr(0, at), "processor index"));
      plan.processor_failure.at =
          static_cast<Time>(parse_uint_field(body.substr(at + 1),
                                             "failure time"));
    } else if (head == "task") {
      TaskFaultSpec task_spec;
      const std::vector<std::string> opts = split(clause.substr(colon + 1), ',');
      if (opts.empty() || opts.front().empty()) {
        throw ParseError(1, "fault plan: task clause needs a name");
      }
      task_spec.task = opts.front();
      for (std::size_t i = 1; i < opts.size(); ++i) {
        const std::string& opt = opts[i];
        const auto oc = opt.find(':');
        if (oc == std::string::npos) {
          throw ParseError(1, "fault plan: task option '" + opt +
                                  "' is missing ':'");
        }
        const std::string key = opt.substr(0, oc);
        const std::string value = opt.substr(oc + 1);
        if (key == "overrun") {
          task_spec.overrun_permille = static_cast<std::uint32_t>(
              parse_uint_field(value, "overrun permille"));
        } else if (key == "early") {
          task_spec.early_release_max =
              static_cast<Time>(parse_uint_field(value, "early ticks"));
        } else if (key.size() > 1 && key.front() == 'v') {
          const auto vertex = static_cast<std::uint32_t>(
              parse_uint_field(key.substr(1), "vertex index"));
          task_spec.vertex_overrides.emplace_back(
              vertex, static_cast<std::uint32_t>(
                          parse_uint_field(value, "vertex permille")));
        } else {
          throw ParseError(1, "fault plan: unknown task option '" + key + "'");
        }
      }
      plan.tasks.push_back(std::move(task_spec));
    } else {
      throw ParseError(1, "fault plan: unknown clause '" + head + "'");
    }
  }
  return plan;
}

}  // namespace fedcons
