// Library version, kept in sync with the CMake project version.
#pragma once

namespace fedcons {

inline constexpr int kVersionMajor = 1;
inline constexpr int kVersionMinor = 0;
inline constexpr int kVersionPatch = 0;

/// "major.minor.patch" string for banners and --version outputs.
inline constexpr const char* kVersionString = "1.0.0";

}  // namespace fedcons
