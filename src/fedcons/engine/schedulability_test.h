// The engine's polymorphic algorithm interface.
//
// Every schedulability algorithm in the repository — FEDCONS and its
// variants, the federated baselines, the partitioned and global baselines,
// and the arbitrary-deadline extension — answers the same question: does
// task system τ fit on m unit-speed processors? This interface gives that
// question one shape so that tools, experiments, and tests can select
// algorithms by name through the registry (engine/registry.h) instead of
// hard-wiring each function signature. Adding an algorithm to every sweep,
// bench, and the CLI is one adapter registration (engine/adapters.h).
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "fedcons/core/task_system.h"

namespace fedcons {

/// A named, stateless yes/no schedulability test over (τ, m).
///
/// Implementations must be thread-safe for concurrent admits() calls with
/// distinct TaskSystem objects (the batch runner evaluates trials in
/// parallel; each trial owns its system).
class SchedulabilityTest {
 public:
  virtual ~SchedulabilityTest();

  /// Stable identifier used by the registry and in report columns.
  [[nodiscard]] virtual const std::string& name() const noexcept = 0;

  /// One-line human-readable description (CLI --list-algos).
  [[nodiscard]] virtual const std::string& description() const noexcept = 0;

  /// Widest deadline class the algorithm is defined for, under the
  /// containment implicit ⊂ constrained ⊂ arbitrary.
  [[nodiscard]] virtual DeadlineClass max_deadline_class() const noexcept;

  /// Acceptance verdict. Precondition: m >= 1 and the system's deadline
  /// class is within max_deadline_class() (same contract as the wrapped
  /// algorithm; violating it throws ContractViolation).
  [[nodiscard]] virtual bool admits(const TaskSystem& system, int m) const = 0;

  /// True iff `system`'s deadline class is within max_deadline_class().
  [[nodiscard]] bool supports(const TaskSystem& system) const noexcept;

  /// admits() with the deadline-class contract turned into a verdict:
  /// unsupported systems are rejected instead of throwing. The safe entry
  /// point for by-name dispatch over workloads of unknown class (CLI).
  [[nodiscard]] bool admits_checked(const TaskSystem& system, int m) const;
};

/// Shared handle to an immutable test instance.
using TestPtr = std::shared_ptr<const SchedulabilityTest>;

/// Wrap any callable as a SchedulabilityTest — the adapter used both for
/// the built-in algorithms and for ad-hoc experiment-local tests (e.g. E3's
/// global-EDF simulation bracket).
[[nodiscard]] TestPtr make_function_test(
    std::string name, std::string description,
    std::function<bool(const TaskSystem&, int)> fn,
    DeadlineClass max_class = DeadlineClass::kConstrained);

}  // namespace fedcons
