// Adapters wrapping the repository's algorithms as SchedulabilityTests.
//
// Built-in registry names (engine/registry.h):
//   FEDCONS        — the paper's algorithm, full Baruah–Fisher PARTITION
//   FEDCONS-lit    — paper-literal Fig. 4 PARTITION (demand check only)
//   FED-LI-implicit— Li et al. (ECRTS'14) federated, implicit-deadline only
//   FED-LI-adapt   — Li et al. constrained-deadline adaptation
//   P-SEQ          — fully-partitioned EDF, sequentialized, no federation
//   P-DM           — fully-partitioned deadline-monotonic FP with exact RTA
//   GEDF-density   — analytical global-EDF density test
//   ARBFED         — arbitrary-deadline federated, pipelined clusters
//   ARBFED-clamp   — arbitrary-deadline federated, clamp D to min(D, T)
//
// The parameterized factories below additionally let experiments build
// named FEDCONS/ARBFED variants with non-default options (E8's ablations).
#pragma once

#include "fedcons/engine/schedulability_test.h"
#include "fedcons/federated/arbitrary.h"
#include "fedcons/federated/fedcons_algorithm.h"

namespace fedcons {

class TestRegistry;

/// FEDCONS with explicit options, under a caller-chosen display name.
[[nodiscard]] TestPtr make_fedcons_test(std::string name,
                                        const FedconsOptions& options = {},
                                        std::string description = {});

/// Arbitrary-deadline federated scheduling with an explicit strategy.
[[nodiscard]] TestPtr make_arbitrary_federated_test(
    std::string name, ArbitraryStrategy strategy,
    const FedconsOptions& options = {});

/// Register the built-in battery listed above. Called once by
/// TestRegistry::global(); callable on a fresh registry in tests.
void register_builtin_tests(TestRegistry& registry);

}  // namespace fedcons
