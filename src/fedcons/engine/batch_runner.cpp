#include "fedcons/engine/batch_runner.h"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>

#include "fedcons/obs/span_tracer.h"
#include "fedcons/util/check.h"

namespace fedcons {

std::uint64_t trial_seed(std::uint64_t master_seed,
                         std::uint64_t trial_index) noexcept {
  // SplitMix64 finalizer over a golden-ratio-spaced combination; two rounds
  // so that low-entropy (master, index) pairs still produce well-mixed
  // seeds for Rng's own SplitMix64 state expansion.
  std::uint64_t z = master_seed + 0x9e3779b97f4a7c15ull * (trial_index + 1);
  for (int round = 0; round < 2; ++round) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z = z ^ (z >> 31);
  }
  return z;
}

struct BatchRunner::Impl {
  explicit Impl(int requested) {
    int threads = requested;
    if (threads == 0) {
      threads = static_cast<int>(std::thread::hardware_concurrency());
      if (threads < 1) threads = 1;
    }
    total_threads = threads;
    // The calling thread participates, so the pool holds threads − 1 workers.
    for (int t = 0; t < threads - 1; ++t) {
      workers.emplace_back([this] { worker_loop(); });
    }
  }

  ~Impl() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      stop = true;
    }
    work_ready.notify_all();
    for (auto& w : workers) w.join();
  }

  void worker_loop() {
    std::uint64_t seen_generation = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mutex);
        work_ready.wait(lock, [&] {
          return stop || generation != seen_generation;
        });
        if (stop) return;
        seen_generation = generation;
        ++active;
      }
      drain();
      {
        std::lock_guard<std::mutex> lock(mutex);
        --active;
        if (active == 0) batch_done.notify_all();
      }
    }
  }

  /// Pull indices until the current batch is exhausted.
  void drain() {
    const std::size_t limit = batch_size;
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= limit) break;
      try {
        FEDCONS_SPAN_V("engine", "trial", "index", i);
        (*batch_fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (!error) error = std::current_exception();
      }
    }
  }

  int total_threads = 1;
  std::vector<std::thread> workers;

  std::mutex mutex;
  std::condition_variable work_ready;
  std::condition_variable batch_done;
  bool stop = false;
  std::uint64_t generation = 0;
  int active = 0;

  const std::function<void(std::size_t)>* batch_fn = nullptr;
  std::size_t batch_size = 0;
  std::atomic<std::size_t> next{0};
  std::exception_ptr error;
};

BatchRunner::BatchRunner(int num_threads) {
  FEDCONS_EXPECTS(num_threads >= 0);
  impl_ = std::make_unique<Impl>(num_threads);
}

BatchRunner::~BatchRunner() = default;

int BatchRunner::num_threads() const noexcept { return impl_->total_threads; }

void BatchRunner::parallel_for(std::size_t n,
                               const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  Impl& im = *impl_;
  {
    std::lock_guard<std::mutex> lock(im.mutex);
    im.batch_fn = &fn;
    im.batch_size = n;
    im.next.store(0, std::memory_order_relaxed);
    im.error = nullptr;
    ++im.generation;
  }
  im.work_ready.notify_all();
  im.drain();  // the calling thread works too
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(im.mutex);
    im.batch_done.wait(lock, [&] { return im.active == 0; });
    im.batch_fn = nullptr;
    im.batch_size = 0;
    error = im.error;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace fedcons
