#include "fedcons/engine/adapters.h"

#include <utility>

#include "fedcons/baselines/global_edf.h"
#include "fedcons/baselines/partitioned_dm.h"
#include "fedcons/baselines/partitioned_seq.h"
#include "fedcons/engine/registry.h"
#include "fedcons/federated/federated_implicit.h"

namespace fedcons {

TestPtr make_fedcons_test(std::string name, const FedconsOptions& options,
                          std::string description) {
  if (description.empty()) {
    description = "FEDCONS (paper Fig. 2) with " +
                  std::string(to_string(options.partition.variant)) +
                  " PARTITION, " + to_string(options.partition.fit) + "/" +
                  to_string(options.partition.order) + ", LS policy " +
                  to_string(options.list_policy);
  }
  return make_function_test(
      std::move(name), std::move(description),
      [options](const TaskSystem& s, int m) {
        return fedcons_schedulable(s, m, options);
      },
      DeadlineClass::kConstrained);
}

TestPtr make_arbitrary_federated_test(std::string name,
                                      ArbitraryStrategy strategy,
                                      const FedconsOptions& options) {
  return make_function_test(
      std::move(name),
      std::string("arbitrary-deadline federated scheduling, ") +
          to_string(strategy) + " strategy",
      [strategy, options](const TaskSystem& s, int m) {
        return arbitrary_federated_schedule(s, m, strategy, options).success;
      },
      DeadlineClass::kArbitrary);
}

void register_builtin_tests(TestRegistry& registry) {
  registry.add(make_fedcons_test(
      "FEDCONS", {},
      "the paper's algorithm: MINPROCS clusters + full Baruah-Fisher "
      "PARTITION (constrained deadlines)"));

  FedconsOptions literal;
  literal.partition.variant = PartitionVariant::kPaperLiteral;
  registry.add(make_fedcons_test(
      "FEDCONS-lit", literal,
      "FEDCONS with the paper-literal Fig. 4 PARTITION (demand check only)"));

  registry.add(make_function_test(
      "FED-LI-implicit",
      "Li et al. (ECRTS'14) closed-form federated scheduling "
      "(implicit deadlines only)",
      [](const TaskSystem& s, int m) {
        return li_federated_implicit(s, m).success;
      },
      DeadlineClass::kImplicit));

  registry.add(make_function_test(
      "FED-LI-adapt",
      "Li et al. closed-form federated scheduling, constrained-deadline "
      "adaptation (D replaces T; density-bounded bins)",
      [](const TaskSystem& s, int m) {
        return li_federated_constrained_adaptation(s, m).success;
      },
      DeadlineClass::kConstrained));

  registry.add(make_function_test(
      "P-SEQ",
      "fully-partitioned EDF with every task sequentialized (no federation)",
      [](const TaskSystem& s, int m) {
        return partitioned_sequential_schedulable(s, m);
      },
      DeadlineClass::kArbitrary));

  registry.add(make_function_test(
      "P-DM",
      "fully-partitioned deadline-monotonic fixed-priority with exact RTA",
      [](const TaskSystem& s, int m) {
        return partitioned_dm_schedulable(s, m);
      },
      DeadlineClass::kConstrained));

  registry.add(make_function_test(
      "GEDF-density",
      "analytical global-EDF sufficient test (Goossens-Funk-Baruah density "
      "bound on the sequentialized system)",
      [](const TaskSystem& s, int m) { return gedf_dag_density_test(s, m); },
      DeadlineClass::kConstrained));

  registry.add(make_arbitrary_federated_test("ARBFED",
                                             ArbitraryStrategy::kPipelined));
  registry.add(make_arbitrary_federated_test(
      "ARBFED-clamp", ArbitraryStrategy::kClampToPeriod));
}

}  // namespace fedcons
