#include "fedcons/engine/registry.h"

#include <algorithm>
#include <cctype>

#include "fedcons/engine/adapters.h"
#include "fedcons/util/check.h"

namespace fedcons {

namespace {

std::string to_lower(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

}  // namespace

void TestRegistry::add(TestPtr test) {
  FEDCONS_EXPECTS_MSG(test != nullptr, "cannot register a null test");
  const std::string key = to_lower(test->name());
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [existing, _] : tests_) {
    FEDCONS_EXPECTS_MSG(existing != key,
                        "duplicate test name: " + test->name());
  }
  tests_.emplace_back(key, std::move(test));
}

bool TestRegistry::contains(const std::string& name) const {
  const std::string key = to_lower(name);
  std::lock_guard<std::mutex> lock(mutex_);
  return std::any_of(tests_.begin(), tests_.end(),
                     [&](const auto& entry) { return entry.first == key; });
}

TestPtr TestRegistry::make(const std::string& name) const {
  const std::string key = to_lower(name);
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [existing, test] : tests_) {
    if (existing == key) return test;
  }
  FEDCONS_EXPECTS_MSG(false, "unknown schedulability test: " + name);
  return nullptr;  // unreachable
}

std::vector<std::string> TestRegistry::names() const {
  std::vector<std::string> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out.reserve(tests_.size());
    for (const auto& [_, test] : tests_) out.push_back(test->name());
  }
  std::sort(out.begin(), out.end(), [](const std::string& a,
                                       const std::string& b) {
    return to_lower(a) < to_lower(b);
  });
  return out;
}

TestRegistry& TestRegistry::global() {
  static TestRegistry* registry = [] {
    auto* r = new TestRegistry();
    register_builtin_tests(*r);
    return r;
  }();
  return *registry;
}

}  // namespace fedcons
