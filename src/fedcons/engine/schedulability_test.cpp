#include "fedcons/engine/schedulability_test.h"

#include <utility>

#include "fedcons/util/check.h"

namespace fedcons {

namespace {

/// implicit ⊂ constrained ⊂ arbitrary.
int class_rank(DeadlineClass c) noexcept {
  switch (c) {
    case DeadlineClass::kImplicit: return 0;
    case DeadlineClass::kConstrained: return 1;
    case DeadlineClass::kArbitrary: return 2;
  }
  return 2;
}

class FunctionTest final : public SchedulabilityTest {
 public:
  FunctionTest(std::string name, std::string description,
               std::function<bool(const TaskSystem&, int)> fn,
               DeadlineClass max_class)
      : name_(std::move(name)),
        description_(std::move(description)),
        fn_(std::move(fn)),
        max_class_(max_class) {
    FEDCONS_EXPECTS_MSG(!name_.empty(), "test name must be non-empty");
    FEDCONS_EXPECTS_MSG(static_cast<bool>(fn_), "test callable must be set");
  }

  [[nodiscard]] const std::string& name() const noexcept override {
    return name_;
  }
  [[nodiscard]] const std::string& description() const noexcept override {
    return description_;
  }
  [[nodiscard]] DeadlineClass max_deadline_class() const noexcept override {
    return max_class_;
  }
  [[nodiscard]] bool admits(const TaskSystem& system, int m) const override {
    return fn_(system, m);
  }

 private:
  std::string name_;
  std::string description_;
  std::function<bool(const TaskSystem&, int)> fn_;
  DeadlineClass max_class_;
};

}  // namespace

SchedulabilityTest::~SchedulabilityTest() = default;

DeadlineClass SchedulabilityTest::max_deadline_class() const noexcept {
  return DeadlineClass::kConstrained;
}

bool SchedulabilityTest::supports(const TaskSystem& system) const noexcept {
  return class_rank(system.deadline_class()) <=
         class_rank(max_deadline_class());
}

bool SchedulabilityTest::admits_checked(const TaskSystem& system,
                                        int m) const {
  FEDCONS_EXPECTS(m >= 1);
  if (!supports(system)) return false;
  return admits(system, m);
}

TestPtr make_function_test(std::string name, std::string description,
                           std::function<bool(const TaskSystem&, int)> fn,
                           DeadlineClass max_class) {
  return std::make_shared<FunctionTest>(std::move(name),
                                        std::move(description), std::move(fn),
                                        max_class);
}

}  // namespace fedcons
