// String-keyed registry of schedulability tests.
//
// The single dispatch point through which tools, experiments, and tests
// select algorithms by name. Built-in algorithms (engine/adapters.h) are
// registered on first access of global(); experiment binaries may add their
// own ad-hoc tests (e.g. simulation brackets) on top.
//
// Lookup is case-insensitive; registered (display) capitalization is
// preserved in names() and in the returned tests' name().
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "fedcons/engine/schedulability_test.h"

namespace fedcons {

class TestRegistry {
 public:
  TestRegistry() = default;
  TestRegistry(const TestRegistry&) = delete;
  TestRegistry& operator=(const TestRegistry&) = delete;

  /// Register a test under test->name(). Throws ContractViolation on a
  /// duplicate (case-insensitive) name.
  void add(TestPtr test);

  [[nodiscard]] bool contains(const std::string& name) const;

  /// Resolve a name to its test. Throws ContractViolation when unknown.
  [[nodiscard]] TestPtr make(const std::string& name) const;

  /// Registered display names, sorted case-insensitively.
  [[nodiscard]] std::vector<std::string> names() const;

  /// Process-wide registry, pre-populated with the built-in battery
  /// (register_builtin_tests) on first access. Thread-safe.
  [[nodiscard]] static TestRegistry& global();

 private:
  mutable std::mutex mutex_;
  /// (lowercased key, test) pairs; small N — linear scan.
  std::vector<std::pair<std::string, TestPtr>> tests_;
};

}  // namespace fedcons
