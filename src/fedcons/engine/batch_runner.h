// Parallel, deterministic trial execution.
//
// Acceptance-ratio sweeps evaluate thousands of independent (generate,
// analyze) trials; this runner spreads them over a persistent thread pool
// while keeping results bit-identical to a serial run. The key is the
// seeding discipline: trial i draws from Rng(trial_seed(master_seed, i)), a
// pure function of the master seed and the trial index — never from a
// shared generator whose state would depend on execution order. Results are
// written into index i's slot, so aggregation order is fixed too.
//
// Work attribution (util/perf_counters.h) composes with this: one worker
// thread runs one trial at a time, so a thread-local counter delta taken
// inside the trial callable is exactly that trial's work.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "fedcons/util/rng.h"

namespace fedcons {

/// Deterministic per-trial seed: a SplitMix64-style mix of (master_seed,
/// trial_index). Distinct indices yield statistically independent streams;
/// the value is independent of thread count and execution order.
[[nodiscard]] std::uint64_t trial_seed(std::uint64_t master_seed,
                                       std::uint64_t trial_index) noexcept;

/// Fixed-size thread pool executing indexed batches.
class BatchRunner {
 public:
  /// num_threads == 0 selects std::thread::hardware_concurrency();
  /// num_threads == 1 runs everything inline on the caller's thread.
  /// Precondition: num_threads >= 0.
  explicit BatchRunner(int num_threads = 0);
  ~BatchRunner();
  BatchRunner(const BatchRunner&) = delete;
  BatchRunner& operator=(const BatchRunner&) = delete;

  /// Total threads that execute work (pool workers + the calling thread).
  [[nodiscard]] int num_threads() const noexcept;

  /// Invoke fn(i) once for every i in [0, n); blocks until all complete.
  /// fn must be safe to call concurrently for distinct indices. The calling
  /// thread participates. If any invocation throws, the first captured
  /// exception is rethrown after the batch drains (remaining indices still
  /// run).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Run `num_trials` seeded trials and return their results in trial-index
  /// order. trial(i, rng) receives a generator seeded with
  /// trial_seed(master_seed, i) — identical results for any thread count.
  /// R must be default-constructible.
  template <typename R>
  [[nodiscard]] std::vector<R> run_trials(
      std::size_t num_trials, std::uint64_t master_seed,
      const std::function<R(std::size_t, Rng&)>& trial) {
    std::vector<R> results(num_trials);
    parallel_for(num_trials, [&](std::size_t i) {
      Rng rng(trial_seed(master_seed, i));
      results[i] = trial(i, rng);
    });
    return results;
  }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace fedcons
