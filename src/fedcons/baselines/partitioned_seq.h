// Baseline: pure partitioned scheduling with NO federation.
//
// The paper motivates federated scheduling by observing that restricting all
// jobs of a task to a single processor "would hobble the expressiveness of
// the model considerably by forbidding tasks with a (parallelizable)
// computational demand exceeding the capacity of a single processor"
// (Section I). This baseline makes that cost measurable: every task —
// including high-density ones — is sequentialized to (vol, D, T) and handed
// to the same Baruah–Fisher PARTITION machinery FEDCONS uses for its
// low-density phase. Any task with vol_i > D_i is structurally rejected
// (DBF*(D_i) = vol_i > D_i fits no processor), which is exactly where
// FEDCONS's dedicated clusters win in experiment E3.
#pragma once

#include "fedcons/core/task_system.h"
#include "fedcons/federated/partition.h"

namespace fedcons {

/// Partition the whole system sequentially on m processors. Precondition:
/// m >= 1.
[[nodiscard]] bool partitioned_sequential_schedulable(
    const TaskSystem& system, int m, const PartitionOptions& options = {});

}  // namespace fedcons
