// Baseline: pure partitioned scheduling with NO federation.
//
// The paper motivates federated scheduling by observing that restricting all
// jobs of a task to a single processor "would hobble the expressiveness of
// the model considerably by forbidding tasks with a (parallelizable)
// computational demand exceeding the capacity of a single processor"
// (Section I). This baseline makes that cost measurable: every task —
// including high-density ones — is sequentialized to (vol, D, T) and handed
// to the same Baruah–Fisher PARTITION machinery FEDCONS uses for its
// low-density phase. Any task with vol_i > D_i is structurally rejected
// (DBF*(D_i) = vol_i > D_i fits no processor), which is exactly where
// FEDCONS's dedicated clusters win in experiment E3.
#pragma once

#include "fedcons/core/task_system.h"
#include "fedcons/federated/partition.h"

namespace fedcons {

/// Partition the whole system sequentially on m processors, returning the
/// full placement. assignment[k] holds indices in system order (== TaskIds,
/// because every task is sequentialized in order). The conformance harness
/// replays this exact allocation — processor k running preemptive EDF over
/// its assigned sequential tasks — so the verdict below is a checked claim,
/// not just a boolean. Precondition: m >= 1.
[[nodiscard]] PartitionResult partitioned_sequential(
    const TaskSystem& system, int m, const PartitionOptions& options = {});

/// Convenience verdict. Precondition: m >= 1.
[[nodiscard]] bool partitioned_sequential_schedulable(
    const TaskSystem& system, int m, const PartitionOptions& options = {});

}  // namespace fedcons
