// Baseline: partitioned deadline-monotonic fixed-priority scheduling.
//
// The fixed-priority analogue of FEDCONS's partitioning phase, as an
// additional comparison point (the paper contrasts federated scheduling
// against the partitioned tradition in general, of which partitioned
// fixed-priority is the most widely deployed member — e.g. AUTOSAR).
// Every task is sequentialized (vol, D, T); tasks are placed first-fit in
// deadline-monotonic order; a bin accepts a task iff exact RTA admits the
// bin's task set under DM priorities. High-density tasks (vol > D) fit
// nowhere, so like P-SEQ this baseline exposes the federation gap.
#pragma once

#include "fedcons/core/task_system.h"

namespace fedcons {

struct PartitionedDmResult {
  bool success = false;
  /// assignment[k] = TaskIds on processor k (DM priority order within k).
  std::vector<std::vector<TaskId>> assignment;
};

/// Partition the whole system on m processors under per-processor DM + RTA.
/// Precondition: m >= 1 and the system is constrained-deadline.
[[nodiscard]] PartitionedDmResult partitioned_dm(const TaskSystem& system,
                                                 int m);

/// Convenience verdict.
[[nodiscard]] inline bool partitioned_dm_schedulable(const TaskSystem& system,
                                                     int m) {
  return partitioned_dm(system, m).success;
}

}  // namespace fedcons
