// Global-EDF comparison baselines for sporadic DAG systems.
//
// FEDCONS is contrasted against the *global* approach in the paper's
// introduction. Two acceptance indicators are provided for the E3 comparison
// (both clearly labelled — see EXPERIMENTS.md):
//
//  * gedf_dag_density_test — an analytical SUFFICIENT test: every task must
//    satisfy len_i ≤ D_i, and the sequentialized task set (C = vol) must pass
//    the classic Goossens–Funk–Baruah density bound
//        Σ δ_i ≤ m − (m−1)·δ_max.
//    Sequentializing each DAG job is pessimistic but sound for global EDF
//    (any schedule of the sequential jobs maps to one of the DAG jobs whose
//    precedence constraints only relax the sequential order).
//
//  * Global-EDF *simulation* acceptance lives in sim/global_edf_sim.h: the
//    synchronous-periodic WCET release pattern is simulated for a bounded
//    horizon; surviving it is an OPTIMISTIC empirical indicator (synchronous
//    arrival is not provably the worst case for global EDF on
//    multiprocessors). It brackets the analytical test from above.
#pragma once

#include "fedcons/core/task_system.h"

namespace fedcons {

/// Analytical sufficient global-EDF test (see header comment).
/// Precondition: m >= 1.
[[nodiscard]] bool gedf_dag_density_test(const TaskSystem& system, int m);

}  // namespace fedcons
