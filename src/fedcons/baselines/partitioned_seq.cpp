#include "fedcons/baselines/partitioned_seq.h"

#include <vector>

#include "fedcons/util/check.h"

namespace fedcons {

PartitionResult partitioned_sequential(const TaskSystem& system, int m,
                                       const PartitionOptions& options) {
  FEDCONS_EXPECTS(m >= 1);
  std::vector<SporadicTask> seq;
  seq.reserve(system.size());
  for (const auto& t : system) seq.push_back(t.to_sequential());
  return partition_tasks(seq, m, options);
}

bool partitioned_sequential_schedulable(const TaskSystem& system, int m,
                                        const PartitionOptions& options) {
  return partitioned_sequential(system, m, options).success;
}

}  // namespace fedcons
