#include "fedcons/baselines/global_edf.h"

#include <vector>

#include "fedcons/analysis/density.h"
#include "fedcons/util/check.h"

namespace fedcons {

bool gedf_dag_density_test(const TaskSystem& system, int m) {
  FEDCONS_EXPECTS(m >= 1);
  if (system.empty()) return true;
  for (const auto& t : system) {
    if (t.len() > t.deadline()) return false;
  }
  std::vector<SporadicTask> seq;
  seq.reserve(system.size());
  for (const auto& t : system) seq.push_back(t.to_sequential());
  return gedf_density_test(seq, m);
}

}  // namespace fedcons
