#include "fedcons/baselines/partitioned_dm.h"

#include <vector>

#include "fedcons/analysis/rta.h"
#include "fedcons/util/check.h"

namespace fedcons {

PartitionedDmResult partitioned_dm(const TaskSystem& system, int m) {
  FEDCONS_EXPECTS(m >= 1);
  FEDCONS_EXPECTS_MSG(system.deadline_class() != DeadlineClass::kArbitrary,
                      "partitioned DM analysis assumes constrained deadlines");
  PartitionedDmResult result;
  result.assignment.assign(static_cast<std::size_t>(m), {});

  std::vector<SporadicTask> seq;
  seq.reserve(system.size());
  for (const auto& t : system) seq.push_back(t.to_sequential());

  // Bins hold their tasks already in DM (priority) order.
  std::vector<std::vector<SporadicTask>> bins(static_cast<std::size_t>(m));
  for (std::size_t i : deadline_monotonic_order(seq)) {
    bool placed = false;
    for (std::size_t k = 0; k < bins.size() && !placed; ++k) {
      // Tasks arrive in globally non-decreasing deadline order, so appending
      // preserves the bin's DM order; admission = exact RTA of the bin.
      bins[k].push_back(seq[i]);
      if (fp_schedulable(bins[k]).schedulable) {
        result.assignment[k].push_back(i);
        placed = true;
      } else {
        bins[k].pop_back();
      }
    }
    if (!placed) {
      result.success = false;
      return result;
    }
  }
  result.success = true;
  return result;
}

}  // namespace fedcons
