// Umbrella header: the whole fedcons public API in one include.
//
//   #include "fedcons/fedcons.h"
//
// Fine-grained headers remain available (and are preferred in translation
// units that only need one subsystem — Core Guidelines SF.10).
#pragma once

#include "fedcons/version.h"

// Foundations
#include "fedcons/util/check.h"
#include "fedcons/util/flags.h"
#include "fedcons/util/log.h"
#include "fedcons/util/rational.h"
#include "fedcons/util/rng.h"
#include "fedcons/util/stats.h"
#include "fedcons/util/table.h"
#include "fedcons/util/time_types.h"

// Task model
#include "fedcons/core/builders.h"
#include "fedcons/core/dag.h"
#include "fedcons/core/dag_task.h"
#include "fedcons/core/io.h"
#include "fedcons/core/sequential_task.h"
#include "fedcons/core/task_system.h"
#include "fedcons/core/transform.h"

// List scheduling
#include "fedcons/listsched/anomaly.h"
#include "fedcons/listsched/list_scheduler.h"
#include "fedcons/listsched/optimal_makespan.h"
#include "fedcons/listsched/schedule.h"

// Schedulability analysis
#include "fedcons/analysis/dbf.h"
#include "fedcons/analysis/density.h"
#include "fedcons/analysis/edf_uniproc.h"
#include "fedcons/analysis/feasibility.h"
#include "fedcons/analysis/rta.h"

// Federated scheduling (the paper's contribution + extensions)
#include "fedcons/federated/arbitrary.h"
#include "fedcons/federated/fedcons_algorithm.h"
#include "fedcons/federated/federated_implicit.h"
#include "fedcons/federated/minprocs.h"
#include "fedcons/federated/partition.h"
#include "fedcons/federated/sensitivity.h"
#include "fedcons/federated/speedup.h"

// Baselines
#include "fedcons/baselines/global_edf.h"
#include "fedcons/baselines/partitioned_dm.h"
#include "fedcons/baselines/partitioned_seq.h"

// Workload generation
#include "fedcons/gen/dag_gen.h"
#include "fedcons/gen/presets.h"
#include "fedcons/gen/taskset_gen.h"
#include "fedcons/gen/uunifast.h"

// Run-time simulation
#include "fedcons/sim/cluster_sim.h"
#include "fedcons/sim/edf_sim.h"
#include "fedcons/sim/gantt.h"
#include "fedcons/sim/global_edf_sim.h"
#include "fedcons/sim/release_generator.h"
#include "fedcons/sim/sim_config.h"
#include "fedcons/sim/system_sim.h"
#include "fedcons/sim/trace.h"

// Experiment harness
#include "fedcons/expr/acceptance.h"
#include "fedcons/expr/reports.h"
#include "fedcons/expr/speedup_experiment.h"
