// Response-time analysis (RTA) for preemptive fixed-priority uniprocessor
// scheduling — the classic alternative to EDF on the shared pool.
//
// FEDCONS runs its shared processors under EDF, but the partitioned
// fixed-priority route (deadline-monotonic priorities + RTA admission) is
// the other canonical design and serves as an additional baseline (P-DM in
// the experiment suite). For constrained-deadline sporadic tasks the exact
// worst-case response time of task i under priorities hp(i) is the least
// fixed point of
//     R_i = C_i + Σ_{j ∈ hp(i)} ⌈R_i / T_j⌉ · C_j     (Joseph & Pandya),
// and τ_i is schedulable iff R_i ≤ D_i. Deadline-monotonic priority order is
// optimal for constrained-deadline synchronous task systems (Leung &
// Whitehead).
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "fedcons/core/sequential_task.h"
#include "fedcons/util/time_types.h"

namespace fedcons {

/// Worst-case response time of `task` with the given higher-priority tasks,
/// or nullopt when the iteration diverges past `bound` (unschedulable for
/// any deadline ≤ bound). Preconditions: all parameters positive.
[[nodiscard]] std::optional<Time> response_time(
    const SporadicTask& task, std::span<const SporadicTask> higher_priority,
    Time bound);

/// Exact fixed-priority schedulability of `tasks` IN THE GIVEN ORDER
/// (index 0 = highest priority), constrained deadlines assumed for
/// exactness. Returns per-task response times on success.
struct FpResult {
  bool schedulable = false;
  std::vector<Time> response_times;  ///< valid entries up to the first miss
};

[[nodiscard]] FpResult fp_schedulable(std::span<const SporadicTask> tasks);

/// Deadline-monotonic ordering of task indices (ties by index — stable).
[[nodiscard]] std::vector<std::size_t> deadline_monotonic_order(
    std::span<const SporadicTask> tasks);

/// Convenience: DM-priority schedulability of an unordered set.
[[nodiscard]] bool dm_schedulable(std::span<const SporadicTask> tasks);

}  // namespace fedcons
