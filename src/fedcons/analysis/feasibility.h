// Necessary feasibility conditions for sporadic DAG task systems.
//
// Federated scheduling speedup bounds (paper, Definition 1) are stated
// relative to an *optimal clairvoyant* scheduler. Deciding optimal
// feasibility is strongly NP-hard (paper, Section III), so experiments use
// the standard proxy: cheap *necessary* conditions. Any system failing them
// is infeasible for every scheduler; systems passing them form the
// denominator against which acceptance ratios and empirical speedups are
// normalized (documented as an upper bound on OPT in EXPERIMENTS.md).
#pragma once

#include <optional>
#include <string>

#include "fedcons/core/task_system.h"

namespace fedcons {

/// Outcome of the necessary-condition battery, with the first failed
/// condition named for diagnostics.
struct FeasibilityCheck {
  bool passed = false;
  std::string failed_condition;  ///< empty when passed
};

/// Necessary conditions for feasibility of τ on m unit-speed processors
/// (violating ANY one proves infeasibility under every scheduling algorithm):
///   1. len_i ≤ D_i for every task (the critical path cannot be parallelized);
///   2. U_sum(τ) ≤ m (long-run platform capacity);
///   3. vol_i ≤ m·D_i for every task (one dag-job cannot exceed the platform
///      work capacity of its scheduling window);
///   4. global synchronous demand: Σ_i ⌊(t−D_i)/T_i + 1⌋⁺·vol_i ≤ m·t at
///      every absolute-deadline point t below a bounded horizon (the DBF
///      load condition generalized to m processors).
[[nodiscard]] FeasibilityCheck necessary_feasibility(const TaskSystem& system,
                                                     int m);

/// Convenience wrapper returning only the verdict.
[[nodiscard]] inline bool passes_necessary_conditions(
    const TaskSystem& system, int m) {
  return necessary_feasibility(system, m).passed;
}

}  // namespace fedcons
