#include "fedcons/analysis/edf_uniproc.h"

#include <algorithm>
#include <queue>

#include "fedcons/analysis/dbf.h"
#include "fedcons/util/check.h"
#include "fedcons/util/rational.h"

namespace fedcons {

namespace {

/// Σ u_i as an exact rational.
BigRational total_utilization(std::span<const SporadicTask> tasks) {
  BigRational sum;
  for (const auto& t : tasks) sum += t.utilization();
  return sum;
}

/// Hyperperiod + max D, or kTimeInfinity on overflow.
Time hyperperiod_bound(std::span<const SporadicTask> tasks) {
  Time lcm = 1;
  Time dmax = 0;
  try {
    for (const auto& t : tasks) {
      lcm = checked_lcm(lcm, t.period);
      dmax = std::max(dmax, t.deadline);
    }
    return checked_add(lcm, dmax);
  } catch (const ContractViolation&) {
    return kTimeInfinity;
  }
}

/// Baruah–Mok–Rosier bound: Σ u_i(T_i − D_i)/(1 − U), or infinity at U ≥ 1.
/// Any t at or beyond the returned value satisfies Σ DBF(t) ≤ t when U ≤ 1.
Time bmr_bound(std::span<const SporadicTask> tasks) {
  BigRational u = total_utilization(tasks);
  if (u >= BigRational(1)) return kTimeInfinity;
  BigRational num;
  for (const auto& t : tasks) {
    num += make_ratio(t.wcet, t.period) * BigRational(t.period - t.deadline);
  }
  BigRational bound = num / (BigRational(1) - u);
  if (bound.sign() <= 0) return 1;  // all D >= T: only tiny t can violate
  return bound.ceil();
}

}  // namespace

Time busy_period(std::span<const SporadicTask> tasks) {
  if (tasks.empty()) return 0;
  Time w = 0;
  for (const auto& t : tasks) w = checked_add(w, t.wcet);
  constexpr int kMaxIterations = 1'000'000;
  for (int i = 0; i < kMaxIterations; ++i) {
    Time next = 0;
    try {
      for (const auto& t : tasks) {
        next = checked_add(next, checked_mul(ceil_div(w, t.period), t.wcet));
      }
    } catch (const ContractViolation&) {
      return kTimeInfinity;
    }
    if (next == w) return w;
    w = next;
  }
  return kTimeInfinity;
}

Time pdc_testing_bound(std::span<const SporadicTask> tasks) {
  Time bound = kTimeInfinity;
  bound = std::min(bound, hyperperiod_bound(tasks));
  bound = std::min(bound, bmr_bound(tasks));
  // The busy period is also a valid bound but costs a fixed-point iteration;
  // only compute it when the cheap bounds are unbounded or very large.
  if (bound == kTimeInfinity || bound > Time{1} << 40) {
    bound = std::min(bound, busy_period(tasks));
  }
  return bound;
}

EdfResult edf_schedulable_pdc(std::span<const SporadicTask> tasks,
                              std::size_t max_points) {
  if (tasks.empty()) return {true, std::nullopt};
  if (total_utilization(tasks) > BigRational(1)) return {false, std::nullopt};

  const Time bound = pdc_testing_bound(tasks);
  FEDCONS_EXPECTS_MSG(bound != kTimeInfinity,
                      "no finite PDC testing bound for this task set");

  // Min-heap over the next absolute-deadline point of each task; running
  // demand is bumped by C_j whenever τ_j contributes another deadline.
  struct Point {
    Time t;
    std::size_t task;
    bool operator>(const Point& rhs) const noexcept { return t > rhs.t; }
  };
  std::priority_queue<Point, std::vector<Point>, std::greater<>> heap;
  for (std::size_t j = 0; j < tasks.size(); ++j) {
    if (tasks[j].deadline < bound) heap.push({tasks[j].deadline, j});
  }
  Time demand = 0;
  std::size_t points = 0;
  while (!heap.empty()) {
    const Time t = heap.top().t;
    while (!heap.empty() && heap.top().t == t) {
      auto [pt, j] = heap.top();
      heap.pop();
      // Saturating: an overflowing running demand reads kTimeInfinity and
      // fails the demand ≤ t check below — unschedulable by saturation. A
      // saturated next-deadline point can never re-enter the heap.
      demand = saturating_add(demand, tasks[j].wcet);
      Time next = saturating_add(pt, tasks[j].period);
      if (next < bound) heap.push({next, j});
    }
    if (demand > t) return {false, t};
    FEDCONS_EXPECTS_MSG(++points <= max_points,
                        "PDC point budget exceeded (parameters too large)");
  }
  return {true, std::nullopt};
}

namespace {

/// Largest absolute-deadline point strictly below x, or -1 if none.
Time max_deadline_below(std::span<const SporadicTask> tasks, Time x) {
  Time best = -1;
  for (const auto& t : tasks) {
    if (x <= t.deadline) continue;
    Time k = floor_div(x - 1 - t.deadline, t.period);
    best = std::max(best, checked_add(t.deadline, checked_mul(k, t.period)));
  }
  return best;
}

}  // namespace

EdfResult edf_schedulable_qpa(std::span<const SporadicTask> tasks) {
  if (tasks.empty()) return {true, std::nullopt};
  if (total_utilization(tasks) > BigRational(1)) return {false, std::nullopt};

  const Time bound = pdc_testing_bound(tasks);
  FEDCONS_EXPECTS_MSG(bound != kTimeInfinity,
                      "no finite QPA testing bound for this task set");

  Time dmin = kTimeInfinity;
  for (const auto& t : tasks) dmin = std::min(dmin, t.deadline);

  Time t = max_deadline_below(tasks, bound);
  if (t < 0) return {true, std::nullopt};  // no deadline inside the interval
  while (true) {
    Time h = total_dbf(tasks, t);
    if (h > t) return {false, t};
    if (h <= dmin) return {true, std::nullopt};
    if (h < t) {
      t = h;
    } else {  // h == t: step to the previous deadline point
      t = max_deadline_below(tasks, t);
      if (t < 0) return {true, std::nullopt};
    }
  }
}

}  // namespace fedcons
