// Demand bound functions for three-parameter sporadic tasks.
//
// DBF(τ, t) [Baruah–Mok–Rosier 1990] is the maximum cumulative execution
// demand of jobs of τ with both arrival and deadline inside any interval of
// length t:
//     DBF(τ, t) = max(0, ⌊(t − D)/T⌋ + 1) · C.
//
// DBF*(τ, t) is the linear upper approximation used by Algorithm PARTITION
// (paper, Eq. (1), restated from Baruah–Fisher 2006), in DAG-task notation:
//     DBF*(τ_i, t) = 0                         if t < D_i,
//                    vol_i + u_i · (t − D_i)   otherwise  (u_i = vol_i/T_i).
//
// Key properties (pinned by property tests): DBF ≤ DBF* everywhere; both are
// monotone non-decreasing in t; DBF* − DBF < C; DBF steps exactly at
// t = D + kT.
#pragma once

#include <span>
#include <vector>

#include "fedcons/core/sequential_task.h"
#include "fedcons/util/rational.h"
#include "fedcons/util/time_types.h"

namespace fedcons {

/// Exact demand bound function. Pure integer arithmetic; t may be any value
/// (negative t yields 0).
[[nodiscard]] Time dbf(const SporadicTask& task, Time t);

/// The DBF* approximation, exactly, as a rational (denominator divides T).
[[nodiscard]] BigRational dbf_approx(const SporadicTask& task, Time t);

/// The k-point refinement of DBF* (Albers–Slomka family): exact DBF for the
/// first `points` steps, then the linear tail
///     k·C + u·(t − D − (k−1)·T)      for t ≥ D + (k−1)·T.
/// points == 1 reproduces DBF* exactly; points → ∞ converges to DBF from
/// above. Monotone in `points`: more points never increase the bound.
/// Precondition: points >= 1.
[[nodiscard]] BigRational dbf_approx_k(const SporadicTask& task, Time t,
                                       int points);

/// The instants where Σ_j dbf_approx_k(τ_j, ·, points) changes slope within
/// (0, horizon]: every D_j + i·T_j for i < points. Sorted, deduplicated.
/// With the additional condition Σ u_j ≤ 1, verifying the demand inequality
/// at exactly these breakpoints certifies it for all t (piecewise linearity
/// + final slope ≤ 1).
[[nodiscard]] std::vector<Time> dbf_approx_breakpoints(
    std::span<const SporadicTask> tasks, int points, Time horizon);

/// Σ_j DBF*(τ_j, t) ≤ t, decided exactly.
///
/// This is the acceptance predicate of PARTITION's line 3 once the candidate
/// task's own volume is folded into the sum. A pure-int64 fast path covers
/// the overwhelmingly common case; the BigRational slow path guarantees
/// exactness when 128-bit intermediates would overflow.
[[nodiscard]] bool approx_demand_fits(std::span<const SporadicTask> tasks,
                                      Time t);

/// Σ_j DBF(τ_j, t) with overflow checking (exact demand at one instant).
[[nodiscard]] Time total_dbf(std::span<const SporadicTask> tasks, Time t);

/// Incrementally maintained Σ_j DBF*(τ_j, t) over a growing task set — the
/// per-bin cache behind PARTITION's incremental acceptance probes.
///
/// Members are kept sorted by deadline with exact inclusive prefix sums of
/// (C_j, C_j/T_j, C_j·D_j/T_j), so one evaluation is
///     Σ_{D_j ≤ t} (C_j + u_j·(t − D_j)) = Σvol + (Σu)·t − Σ(u·D)
/// over the prefix with D_j ≤ t: O(log n) lookup plus O(1) rational ops
/// instead of an O(n) per-member sum, and — all arithmetic being exact —
/// equal as a rational to the term-wise sum, so every comparison made
/// against it decides identically (pinned by the partition tests).
///
/// Counter contract: sum_at credits one dbf_star_evaluations per member,
/// exactly what the per-member dbf_approx loop it replaces would have
/// counted (members with D_j > t included — their calls return 0 but count).
///
/// Each prefix entry is a sum of at most size() reduce_fast-normalized terms,
/// the same limb-growth bound as the transient per-probe sums (rational.h
/// design note), so long-lived storage does not compound.
///
/// Alongside the exact prefixes the aggregate maintains double-precision SoA
/// mirrors for the certified probe kernel (simd/dbf_kernel.h): per member the
/// affine DBF* term (a_j = C_j − u_j·D_j, b_j = u_j) and a magnitude bound,
/// folded by the identical canonical left fold (so rollback restores the
/// exact double representations too), then gathered per distinct deadline.
/// Members whose parameters exceed the kernel's validated range poison their
/// magnitude prefix with +inf, which forces every affected lane onto the
/// exact rational fallback — the mirrors can accelerate decisions but never
/// change one.
class DbfStarAggregate {
 public:
  /// Add one member. O(size) worst case (suffix prefix refresh); PARTITION
  /// performs one insert per placement vs. many sum_at probes.
  void insert(const SporadicTask& task);

  /// Remove one member matching (C, D, T) exactly — the rollback behind
  /// online task departure (online/admission_session.h). Precondition: such
  /// a member is present (ContractViolation otherwise).
  ///
  /// Rollback is exact to the bit, not merely to the value: the suffix
  /// prefix sums are refreshed by the identical left-to-right fold insert
  /// uses, so after remove every stored rational has the same representation
  /// it would have had if the member had never been inserted (pinned by the
  /// partition_state rollback property test). Subtracting from the prefix
  /// sums instead would be value-equal but could normalize differently.
  void remove(const SporadicTask& task);

  /// Σ_j DBF*(τ_j, t) over all members, exactly.
  [[nodiscard]] BigRational sum_at(Time t) const;

  /// sum_at without the counter credit — the exact fallback of the certified
  /// probe, whose caller accounts breakpoints itself (partition_state.cpp).
  [[nodiscard]] BigRational sum_at_uncounted(Time t) const;

  [[nodiscard]] std::size_t size() const noexcept { return deadlines_.size(); }

  /// Sorted, deduplicated member deadlines — the slope breakpoints of the
  /// summed 1-point approximation (dbf_approx_breakpoints with points == 1).
  [[nodiscard]] std::span<const Time> distinct_deadlines() const noexcept {
    return distinct_deadlines_;
  }

  /// Double SoA mirrors for simd::dbf_scan, indexed like distinct_deadlines():
  /// entry k holds double(distinct deadline k) and the inclusive double prefix
  /// (A = Σa_j, B = Σb_j, M = Σmag_j) over all members with D_j ≤ that
  /// deadline, so the aggregate demand at breakpoint bp_k is A_k + B_k·bp_k.
  [[nodiscard]] std::span<const double> soa_breakpoints() const noexcept {
    return soa_bp_;
  }
  [[nodiscard]] std::span<const double> soa_prefix_a() const noexcept {
    return soa_a_;
  }
  [[nodiscard]] std::span<const double> soa_prefix_b() const noexcept {
    return soa_b_;
  }
  [[nodiscard]] std::span<const double> soa_prefix_mag() const noexcept {
    return soa_mag_;
  }

 private:
  /// Recompute prefix sums for indices [idx, size) by the canonical fold
  /// prefix[i] = prefix[i-1] + term[i] — shared by insert and remove so both
  /// histories land on identical representations. Folds the exact rationals
  /// and the double mirrors in one pass.
  void refresh_prefixes_from(std::size_t idx);

  /// Regather the distinct-deadline SoA views from the member prefixes.
  void rebuild_soa();

  // Parallel arrays, sorted by deadline (ties keep insertion order).
  std::vector<Time> deadlines_;
  std::vector<BigRational> u_;    ///< per member: C_j/T_j
  std::vector<BigRational> ud_;   ///< per member: C_j·D_j/T_j
  std::vector<Time> vol_;         ///< per member: C_j
  // Inclusive prefix sums over the arrays above.
  std::vector<BigRational> prefix_vol_;
  std::vector<BigRational> prefix_u_;
  std::vector<BigRational> prefix_ud_;
  std::vector<Time> distinct_deadlines_;
  // Double mirrors: per-member affine terms (simd::dbf_affine_term) and their
  // inclusive left folds, then one gathered entry per distinct deadline.
  std::vector<double> term_a_, term_b_, term_mag_;
  std::vector<double> pfx_a_, pfx_b_, pfx_mag_;
  std::vector<double> soa_bp_, soa_a_, soa_b_, soa_mag_;
};

}  // namespace fedcons
