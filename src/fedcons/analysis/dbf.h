// Demand bound functions for three-parameter sporadic tasks.
//
// DBF(τ, t) [Baruah–Mok–Rosier 1990] is the maximum cumulative execution
// demand of jobs of τ with both arrival and deadline inside any interval of
// length t:
//     DBF(τ, t) = max(0, ⌊(t − D)/T⌋ + 1) · C.
//
// DBF*(τ, t) is the linear upper approximation used by Algorithm PARTITION
// (paper, Eq. (1), restated from Baruah–Fisher 2006), in DAG-task notation:
//     DBF*(τ_i, t) = 0                         if t < D_i,
//                    vol_i + u_i · (t − D_i)   otherwise  (u_i = vol_i/T_i).
//
// Key properties (pinned by property tests): DBF ≤ DBF* everywhere; both are
// monotone non-decreasing in t; DBF* − DBF < C; DBF steps exactly at
// t = D + kT.
#pragma once

#include <span>
#include <vector>

#include "fedcons/core/sequential_task.h"
#include "fedcons/util/rational.h"
#include "fedcons/util/time_types.h"

namespace fedcons {

/// Exact demand bound function. Pure integer arithmetic; t may be any value
/// (negative t yields 0).
[[nodiscard]] Time dbf(const SporadicTask& task, Time t);

/// The DBF* approximation, exactly, as a rational (denominator divides T).
[[nodiscard]] BigRational dbf_approx(const SporadicTask& task, Time t);

/// The k-point refinement of DBF* (Albers–Slomka family): exact DBF for the
/// first `points` steps, then the linear tail
///     k·C + u·(t − D − (k−1)·T)      for t ≥ D + (k−1)·T.
/// points == 1 reproduces DBF* exactly; points → ∞ converges to DBF from
/// above. Monotone in `points`: more points never increase the bound.
/// Precondition: points >= 1.
[[nodiscard]] BigRational dbf_approx_k(const SporadicTask& task, Time t,
                                       int points);

/// The instants where Σ_j dbf_approx_k(τ_j, ·, points) changes slope within
/// (0, horizon]: every D_j + i·T_j for i < points. Sorted, deduplicated.
/// With the additional condition Σ u_j ≤ 1, verifying the demand inequality
/// at exactly these breakpoints certifies it for all t (piecewise linearity
/// + final slope ≤ 1).
[[nodiscard]] std::vector<Time> dbf_approx_breakpoints(
    std::span<const SporadicTask> tasks, int points, Time horizon);

/// Σ_j DBF*(τ_j, t) ≤ t, decided exactly.
///
/// This is the acceptance predicate of PARTITION's line 3 once the candidate
/// task's own volume is folded into the sum. A pure-int64 fast path covers
/// the overwhelmingly common case; the BigRational slow path guarantees
/// exactness when 128-bit intermediates would overflow.
[[nodiscard]] bool approx_demand_fits(std::span<const SporadicTask> tasks,
                                      Time t);

/// Σ_j DBF(τ_j, t) with overflow checking (exact demand at one instant).
[[nodiscard]] Time total_dbf(std::span<const SporadicTask> tasks, Time t);

}  // namespace fedcons
