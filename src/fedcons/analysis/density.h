// Density-based sufficient schedulability tests.
//
// Density tests are the cheapest (O(n)) sufficient conditions in the
// sporadic-task literature. They are used here (a) as sanity baselines and
// (b) inside the global-EDF comparison heuristic. They are *sufficient only*
// — far more pessimistic than the exact PDC — which the test suite pins down
// with explicit examples.
#pragma once

#include <span>

#include "fedcons/core/sequential_task.h"
#include "fedcons/util/rational.h"

namespace fedcons {

/// Σ δ_i over sequential tasks, exactly.
[[nodiscard]] BigRational total_density(std::span<const SporadicTask> tasks);

/// max δ_i, exactly. Precondition: non-empty.
[[nodiscard]] BigRational max_density(std::span<const SporadicTask> tasks);

/// Uniprocessor density test: Σ δ_i ≤ 1 ⟹ EDF-schedulable on one
/// preemptive processor (sufficient, not necessary).
[[nodiscard]] bool uniproc_density_test(std::span<const SporadicTask> tasks);

/// Multiprocessor global-EDF density test (Goossens–Funk–Baruah bound,
/// extended to constrained deadlines): a sequential sporadic task set is
/// global-EDF-schedulable on m identical processors if
///     Σ δ_i ≤ m − (m − 1)·δ_max.
/// Sufficient only. Precondition: m >= 1.
[[nodiscard]] bool gedf_density_test(std::span<const SporadicTask> tasks,
                                     int m);

}  // namespace fedcons
