#include "fedcons/analysis/feasibility.h"

#include <queue>
#include <vector>

#include "fedcons/analysis/dbf.h"
#include "fedcons/analysis/edf_uniproc.h"
#include "fedcons/util/check.h"
#include "fedcons/util/rational.h"

namespace fedcons {

FeasibilityCheck necessary_feasibility(const TaskSystem& system, int m) {
  FEDCONS_EXPECTS(m >= 1);

  // 1. Critical path per task.
  for (std::size_t i = 0; i < system.size(); ++i) {
    if (system[i].len() > system[i].deadline()) {
      return {false, "len > D for task " + std::to_string(i)};
    }
  }
  // 2. Long-run utilization.
  if (system.total_utilization() > BigRational(m)) {
    return {false, "U_sum > m"};
  }
  // 3. Per-dag-job work vs window capacity.
  for (std::size_t i = 0; i < system.size(); ++i) {
    if (system[i].vol() > checked_mul(m, system[i].deadline())) {
      return {false, "vol > m*D for task " + std::to_string(i)};
    }
  }
  // 4. Global synchronous demand Σ DBF_i(t) ≤ m·t at deadline points below
  //    a finite testing bound (sequentialized volumes give a valid lower
  //    bound on required work regardless of intra-task structure).
  std::vector<SporadicTask> seq;
  seq.reserve(system.size());
  for (const auto& t : system) seq.push_back(t.to_sequential());
  // Reuse the uniprocessor machinery on a "speed-m" processor: Σ DBF ≤ m·t
  // at all t ⟺ the set with every WCET left intact fits a processor of
  // capacity m. Evaluate directly at deadline points below the bound of the
  // utilization-scaled set (divide utilizations by m for the BMR bound by
  // checking against m·t).
  Time bound = pdc_testing_bound(seq);
  if (bound == kTimeInfinity) {
    // No finite bound (U_sum typically ≥ 1 on purpose here): cap the scan at
    // the largest deadline plus a few periods — still a *necessary*
    // condition (any prefix of the point set is).
    bound = 0;
    for (const auto& t : seq) {
      bound = std::max(bound, checked_add(t.deadline, checked_mul(4, t.period)));
    }
  }
  struct Point {
    Time t;
    std::size_t task;
    bool operator>(const Point& rhs) const noexcept { return t > rhs.t; }
  };
  std::priority_queue<Point, std::vector<Point>, std::greater<>> heap;
  for (std::size_t j = 0; j < seq.size(); ++j) {
    if (seq[j].deadline < bound) heap.push({seq[j].deadline, j});
  }
  Time demand = 0;
  std::size_t points = 0;
  constexpr std::size_t kMaxPoints = 2'000'000;
  while (!heap.empty() && points < kMaxPoints) {
    const Time t = heap.top().t;
    while (!heap.empty() && heap.top().t == t) {
      auto [pt, j] = heap.top();
      heap.pop();
      demand = checked_add(demand, seq[j].wcet);
      Time next = checked_add(pt, seq[j].period);
      if (next < bound) heap.push({next, j});
    }
    if (demand > checked_mul(m, t)) {
      return {false, "total demand exceeds m*t at t=" + std::to_string(t)};
    }
    ++points;
  }
  return {true, {}};
}

}  // namespace fedcons
