#include "fedcons/analysis/rta.h"

#include <algorithm>
#include <numeric>

#include "fedcons/util/check.h"

namespace fedcons {

std::optional<Time> response_time(const SporadicTask& task,
                                  std::span<const SporadicTask> higher_priority,
                                  Time bound) {
  FEDCONS_EXPECTS(bound >= 1);
  Time r = task.wcet;
  // Standard fixed-point iteration; strictly increasing until convergence,
  // so it terminates once r exceeds the bound.
  while (r <= bound) {
    Time next = task.wcet;
    for (const auto& hp : higher_priority) {
      next = checked_add(next,
                         checked_mul(ceil_div(r, hp.period), hp.wcet));
    }
    if (next == r) return r;
    r = next;
  }
  return std::nullopt;
}

FpResult fp_schedulable(std::span<const SporadicTask> tasks) {
  FpResult result;
  result.response_times.reserve(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    auto r = response_time(tasks[i], tasks.first(i), tasks[i].deadline);
    if (!r.has_value() || *r > tasks[i].deadline) {
      result.schedulable = false;
      return result;
    }
    result.response_times.push_back(*r);
  }
  result.schedulable = true;
  return result;
}

std::vector<std::size_t> deadline_monotonic_order(
    std::span<const SporadicTask> tasks) {
  std::vector<std::size_t> order(tasks.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return tasks[a].deadline < tasks[b].deadline;
                   });
  return order;
}

bool dm_schedulable(std::span<const SporadicTask> tasks) {
  std::vector<SporadicTask> ordered;
  ordered.reserve(tasks.size());
  for (std::size_t i : deadline_monotonic_order(tasks)) {
    ordered.push_back(tasks[i]);
  }
  return fp_schedulable(ordered).schedulable;
}

}  // namespace fedcons
