#include "fedcons/analysis/dbf.h"

#include <algorithm>
#include <limits>

#include "fedcons/simd/dbf_kernel.h"
#include "fedcons/util/check.h"
#include "fedcons/util/perf_counters.h"

namespace fedcons {

Time dbf(const SporadicTask& task, Time t) {
  if (t < task.deadline) return 0;
  Time jobs = floor_div(t - task.deadline, task.period) + 1;
  // Saturating, not checked: a demand beyond int64 means "unschedulable by
  // saturation" (kTimeInfinity exceeds every supply comparison), never a
  // wrap and never an abort mid-analysis.
  return saturating_mul(jobs, task.wcet);
}

BigRational dbf_approx(const SporadicTask& task, Time t) {
  ++perf_counters().dbf_star_evaluations;
  if (t < task.deadline) return BigRational(0);
  // vol + u·(t − D) = C·(T + t − D)/T. The inner sum is formed in BigInt —
  // T + (t − D) can exceed int64 for extreme parameters.
  BigInt num = BigInt(task.wcet) *
               (BigInt(task.period) + BigInt(t - task.deadline));
  return BigRational(std::move(num), BigInt(task.period));
}

BigRational dbf_approx_k(const SporadicTask& task, Time t, int points) {
  FEDCONS_EXPECTS(points >= 1);
  ++perf_counters().dbf_star_evaluations;
  if (t < task.deadline) return BigRational(0);
  // Last exact step instant covered by the k points. A saturated tail start
  // just means every representable t sits in the exact region.
  const Time tail_start = saturating_add(
      task.deadline,
      saturating_mul(static_cast<Time>(points - 1), task.period));
  if (t < tail_start) return BigRational(dbf(task, t));  // exact region
  // k·C + u·(t − tail_start), with the k·T product formed in BigInt.
  BigInt num = BigInt(task.wcet) *
               (BigInt(static_cast<Time>(points)) * BigInt(task.period) +
                BigInt(t - tail_start));
  return BigRational(std::move(num), BigInt(task.period));
}

std::vector<Time> dbf_approx_breakpoints(std::span<const SporadicTask> tasks,
                                         int points, Time horizon) {
  FEDCONS_EXPECTS(points >= 1);
  std::vector<Time> out;
  for (const auto& task : tasks) {
    for (int i = 0; i < points; ++i) {
      // Saturated breakpoints exceed any finite horizon and drop out here.
      Time bp = saturating_add(
          task.deadline, saturating_mul(static_cast<Time>(i), task.period));
      if (bp > 0 && bp <= horizon && bp != kTimeInfinity) out.push_back(bp);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool approx_demand_fits(std::span<const SporadicTask> tasks, Time t) {
  FEDCONS_EXPECTS(t >= 0);
  // Fast path: accumulate C·(T + t − D) / T as integer quotient plus a
  // remainder comparison, all in __int128. Each term is split as
  //   C·(T + t − D) = q·T + r,  0 ≤ r < T,
  // so Σ term/T ≤ t  ⟺  Σ q + Σ (r/T) ≤ t. We track Q = Σ q exactly and
  // bound the fractional sum F = Σ r/T by [F_lo, F_hi] with F integer-part
  // extraction; only if the decision falls inside the undecidable band do we
  // fall back to exact rationals.
  __int128 q_sum = 0;
  long double frac = 0.0L;
  bool frac_nonzero = false;
  bool overflow = false;
  for (const auto& task : tasks) {
    if (t < task.deadline) continue;
    __int128 num = static_cast<__int128>(task.wcet) *
                   (static_cast<__int128>(task.period) + t - task.deadline);
    __int128 q = num / task.period;
    __int128 r = num % task.period;
    q_sum += q;
    if (r != 0) {
      frac_nonzero = true;
      frac += static_cast<long double>(r) /
              static_cast<long double>(task.period);
    }
    if (q_sum > static_cast<__int128>(1) << 100) {
      overflow = true;  // absurdly large demand; decide via rationals
      break;
    }
  }
  // The fast path evaluates every task's DBF* term inline, so decided
  // returns account tasks.size() evaluations; the rational fallback is
  // attributed through dbf_approx itself.
  if (!overflow) {
    if (!frac_nonzero) {
      perf_counters().dbf_star_evaluations += tasks.size();
      return q_sum <= static_cast<__int128>(t);
    }
    // F ∈ (0, n); margin of one whole unit on either side of the long-double
    // estimate is far beyond its rounding error here.
    __int128 target = static_cast<__int128>(t);
    if (q_sum + static_cast<__int128>(frac) + 2 <= target) {
      perf_counters().dbf_star_evaluations += tasks.size();
      return true;
    }
    if (q_sum > target) {
      perf_counters().dbf_star_evaluations += tasks.size();
      return false;
    }
    // Undecided band: exact evaluation below.
  }
  BigRational sum;
  for (const auto& task : tasks) sum += dbf_approx(task, t);
  return sum <= BigRational(t);
}

Time total_dbf(std::span<const SporadicTask> tasks, Time t) {
  // Saturating accumulation: an overflowing total reads as kTimeInfinity,
  // which every "demand ≤ supply" comparison downstream rejects — the
  // correct verdict (unschedulable by saturation), reached without UB.
  Time sum = 0;
  for (const auto& task : tasks) sum = saturating_add(sum, dbf(task, t));
  return sum;
}

void DbfStarAggregate::insert(const SporadicTask& task) {
  const auto pos =
      std::upper_bound(deadlines_.begin(), deadlines_.end(), task.deadline);
  const auto idx = static_cast<std::size_t>(pos - deadlines_.begin());
  deadlines_.insert(pos, task.deadline);
  u_.insert(u_.begin() + static_cast<std::ptrdiff_t>(idx),
            make_ratio(task.wcet, task.period));
  // C·D can exceed int64 for extreme parameters; form it as a BigInt product.
  ud_.insert(ud_.begin() + static_cast<std::ptrdiff_t>(idx),
             BigRational(BigInt(task.wcet) * BigInt(task.deadline),
                         BigInt(task.period)));
  vol_.insert(vol_.begin() + static_cast<std::ptrdiff_t>(idx), task.wcet);

  const simd::DbfCand term =
      simd::dbf_affine_term(task.wcet, task.deadline, task.period);
  term_a_.insert(term_a_.begin() + static_cast<std::ptrdiff_t>(idx), term.a);
  term_b_.insert(term_b_.begin() + static_cast<std::ptrdiff_t>(idx), term.b);
  term_mag_.insert(term_mag_.begin() + static_cast<std::ptrdiff_t>(idx),
                   term.mag);

  refresh_prefixes_from(idx);

  const auto dpos = std::lower_bound(distinct_deadlines_.begin(),
                                     distinct_deadlines_.end(), task.deadline);
  if (dpos == distinct_deadlines_.end() || *dpos != task.deadline) {
    distinct_deadlines_.insert(dpos, task.deadline);
  }
  rebuild_soa();
}

void DbfStarAggregate::remove(const SporadicTask& task) {
  // Locate a member with this exact (C, D, T) among the equal-deadline run.
  // Tied members are value-identical in every array, so removing the first
  // match yields the same arrays regardless of which duplicate departed.
  auto lo = std::lower_bound(deadlines_.begin(), deadlines_.end(),
                             task.deadline);
  std::size_t idx = static_cast<std::size_t>(lo - deadlines_.begin());
  bool found = false;
  for (; idx < deadlines_.size() && deadlines_[idx] == task.deadline; ++idx) {
    if (vol_[idx] == task.wcet && u_[idx] == make_ratio(task.wcet, task.period)) {
      found = true;
      break;
    }
  }
  FEDCONS_EXPECTS_MSG(found, "DbfStarAggregate::remove: no such member");

  const auto p = static_cast<std::ptrdiff_t>(idx);
  deadlines_.erase(deadlines_.begin() + p);
  u_.erase(u_.begin() + p);
  ud_.erase(ud_.begin() + p);
  vol_.erase(vol_.begin() + p);
  term_a_.erase(term_a_.begin() + p);
  term_b_.erase(term_b_.begin() + p);
  term_mag_.erase(term_mag_.begin() + p);

  prefix_vol_.resize(deadlines_.size());
  prefix_u_.resize(deadlines_.size());
  prefix_ud_.resize(deadlines_.size());
  refresh_prefixes_from(idx);

  // Drop the deadline from the breakpoint list when its last holder left.
  const bool still_present =
      std::binary_search(deadlines_.begin(), deadlines_.end(), task.deadline);
  if (!still_present) {
    const auto dpos = std::lower_bound(
        distinct_deadlines_.begin(), distinct_deadlines_.end(), task.deadline);
    distinct_deadlines_.erase(dpos);
  }
  rebuild_soa();
}

void DbfStarAggregate::refresh_prefixes_from(std::size_t idx) {
  prefix_vol_.resize(deadlines_.size());
  prefix_u_.resize(deadlines_.size());
  prefix_ud_.resize(deadlines_.size());
  pfx_a_.resize(deadlines_.size());
  pfx_b_.resize(deadlines_.size());
  pfx_mag_.resize(deadlines_.size());
  for (std::size_t i = idx; i < deadlines_.size(); ++i) {
    if (i == 0) {
      prefix_vol_[i] = BigRational(vol_[i]);
      prefix_u_[i] = u_[i];
      prefix_ud_[i] = ud_[i];
      pfx_a_[i] = term_a_[i];
      pfx_b_[i] = term_b_[i];
      pfx_mag_[i] = term_mag_[i];
    } else {
      prefix_vol_[i] = prefix_vol_[i - 1] + BigRational(vol_[i]);
      prefix_u_[i] = prefix_u_[i - 1] + u_[i];
      prefix_ud_[i] = prefix_ud_[i - 1] + ud_[i];
      // Single IEEE additions — deterministic in every TU, so the mirrors are
      // a pure function of the member arrays and rollback restores them bit
      // for bit, like the rationals above.
      pfx_a_[i] = pfx_a_[i - 1] + term_a_[i];
      pfx_b_[i] = pfx_b_[i - 1] + term_b_[i];
      pfx_mag_[i] = pfx_mag_[i - 1] + term_mag_[i];
    }
  }
}

void DbfStarAggregate::rebuild_soa() {
  soa_bp_.clear();
  soa_a_.clear();
  soa_b_.clear();
  soa_mag_.clear();
  soa_bp_.reserve(distinct_deadlines_.size());
  soa_a_.reserve(distinct_deadlines_.size());
  soa_b_.reserve(distinct_deadlines_.size());
  soa_mag_.reserve(distinct_deadlines_.size());
  // One entry per distinct deadline, taken at the last member holding it. A
  // deadline beyond the kernel's validated range is not exactly representable
  // as a double, so its lane is poisoned (+inf magnitude → always uncertain →
  // exact fallback at the true Time breakpoint).
  for (std::size_t i = 0; i < deadlines_.size(); ++i) {
    if (i + 1 < deadlines_.size() && deadlines_[i + 1] == deadlines_[i]) {
      continue;
    }
    soa_bp_.push_back(static_cast<double>(deadlines_[i]));
    soa_a_.push_back(pfx_a_[i]);
    soa_b_.push_back(pfx_b_[i]);
    soa_mag_.push_back(deadlines_[i] > simd::kDbfMaxMagnitude
                           ? std::numeric_limits<double>::infinity()
                           : pfx_mag_[i]);
  }
  FEDCONS_EXPECTS(soa_bp_.size() == distinct_deadlines_.size());
}

BigRational DbfStarAggregate::sum_at(Time t) const {
  // Counter contract (see header): one logical DBF* evaluation per member.
  perf_counters().dbf_star_evaluations += deadlines_.size();
  return sum_at_uncounted(t);
}

BigRational DbfStarAggregate::sum_at_uncounted(Time t) const {
  const auto pos = std::upper_bound(deadlines_.begin(), deadlines_.end(), t);
  if (pos == deadlines_.begin()) return BigRational(0);
  const auto k = static_cast<std::size_t>(pos - deadlines_.begin()) - 1;
  return prefix_vol_[k] + prefix_u_[k] * BigRational(t) - prefix_ud_[k];
}

}  // namespace fedcons
