#include "fedcons/analysis/density.h"

#include "fedcons/util/check.h"

namespace fedcons {

BigRational total_density(std::span<const SporadicTask> tasks) {
  BigRational sum;
  for (const auto& t : tasks) sum += t.density();
  return sum;
}

BigRational max_density(std::span<const SporadicTask> tasks) {
  FEDCONS_EXPECTS(!tasks.empty());
  BigRational best = tasks.front().density();
  for (const auto& t : tasks.subspan(1)) {
    BigRational d = t.density();
    if (d > best) best = d;
  }
  return best;
}

bool uniproc_density_test(std::span<const SporadicTask> tasks) {
  return total_density(tasks) <= BigRational(1);
}

bool gedf_density_test(std::span<const SporadicTask> tasks, int m) {
  FEDCONS_EXPECTS(m >= 1);
  if (tasks.empty()) return true;
  BigRational dmax = max_density(tasks);
  return total_density(tasks) <=
         BigRational(m) - BigRational(m - 1) * dmax;
}

}  // namespace fedcons
