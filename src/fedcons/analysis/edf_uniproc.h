// Exact preemptive uniprocessor EDF schedulability analysis.
//
// After PARTITION assigns low-density tasks to shared processors, each shared
// processor runs preemptive EDF (paper, Section IV). The DBF* condition used
// during partitioning is *sufficient*; this header provides the classic
// *exact* test — the processor-demand criterion (PDC) of Baruah–Mok–Rosier —
// used by tests to certify partitions and by the ablation experiments to
// measure how much acceptance DBF* gives up.
//
//   τ (sporadic, any deadlines) is EDF-schedulable on one preemptive
//   unit-speed processor  ⟺  U_sum ≤ 1  and  ∀ t > 0: Σ_j DBF(τ_j, t) ≤ t.
//
// Only finitely many t need checking: absolute-deadline points below a bound
// L = min(busy-period length, the Baruah–Mok–Rosier bound L_a, hyperperiod +
// max D). Two independent implementations are provided and cross-checked by
// the test suite:
//   * edf_schedulable_pdc — direct scan of deadline points below L;
//   * edf_schedulable_qpa — Zhang–Burns Quick Processor-demand Analysis,
//     which walks backwards from L and typically probes far fewer points.
#pragma once

#include <optional>
#include <span>

#include "fedcons/core/sequential_task.h"
#include "fedcons/util/time_types.h"

namespace fedcons {

/// Result of an exact EDF test with a witness when unschedulable.
struct EdfResult {
  bool schedulable = false;
  /// When unschedulable due to demand overflow: the first instant t with
  /// Σ DBF > t. Unset when schedulable or when U_sum > 1 decides alone.
  std::optional<Time> violation_instant;
};

/// Testing-interval length L for the PDC. Returns kTimeInfinity when every
/// finite bound overflows int64 (callers must then rely on U_sum ≤ 1 plus an
/// explicit cap). Exposed for tests and diagnostics.
[[nodiscard]] Time pdc_testing_bound(std::span<const SporadicTask> tasks);

/// Synchronous busy-period length: least fixed point of
/// w = Σ_j ⌈w/T_j⌉·C_j. Precondition: U_sum ≤ 1 (diverges otherwise;
/// detected and reported as kTimeInfinity). A valid PDC bound.
[[nodiscard]] Time busy_period(std::span<const SporadicTask> tasks);

/// Direct processor-demand criterion. `max_points` caps the number of
/// deadline points scanned (throws ContractViolation when exceeded, so
/// pathological parameters fail loudly rather than silently truncating).
[[nodiscard]] EdfResult edf_schedulable_pdc(
    std::span<const SporadicTask> tasks, std::size_t max_points = 50'000'000);

/// Zhang–Burns QPA. Equivalent verdict to the PDC (property-tested).
[[nodiscard]] EdfResult edf_schedulable_qpa(
    std::span<const SporadicTask> tasks);

/// Convenience: exact verdict via QPA.
[[nodiscard]] inline bool edf_schedulable(
    std::span<const SporadicTask> tasks) {
  return edf_schedulable_qpa(tasks).schedulable;
}

}  // namespace fedcons
