#include "fedcons/listsched/optimal_makespan.h"

#include <algorithm>
#include <vector>

#include "fedcons/listsched/list_scheduler.h"
#include "fedcons/util/check.h"

namespace fedcons {

namespace {

/// Depth-first branch and bound over non-delay schedules.
///
/// Completeness: for P|prec|Cmax on identical machines the class of list
/// (non-delay) schedules is dominant — given any feasible schedule S, list
/// scheduling with jobs prioritized by S's start times starts every job no
/// later than S does (induction over S-start order: predecessors and
/// machines free up no later than in S). Hence enumerating non-delay
/// schedules suffices for optimality.
class BranchAndBound {
 public:
  BranchAndBound(const Dag& dag, int m, std::uint64_t budget)
      : dag_(dag), m_(m), budget_(budget) {
    const std::size_t n = dag_.num_vertices();
    bottom_.resize(n);
    for (VertexId v = 0; v < n; ++v) bottom_[v] = dag_.bottom_level(v);
  }

  OptimalMakespanResult run() {
    // Warm start: best list schedule over the stock policies.
    best_ = kTimeInfinity;
    for (ListPolicy policy :
         {ListPolicy::kCriticalPath, ListPolicy::kLongestWcet,
          ListPolicy::kVertexOrder}) {
      best_ = std::min(best_, list_schedule(dag_, m_, policy).makespan());
    }
    std::vector<Time> machine_free(static_cast<std::size_t>(m_), 0);
    std::vector<Time> finish(dag_.num_vertices(), -1);
    Time total = dag_.vol();
    dfs(machine_free, finish, 0u, total, 0);
    OptimalMakespanResult result;
    result.makespan = best_;
    result.nodes = nodes_;
    result.exact = exact_;
    return result;
  }

 private:
  void dfs(std::vector<Time>& machine_free, std::vector<Time>& finish,
           std::uint32_t scheduled, Time remaining_work, Time max_finish) {
    if (!exact_) return;
    if (++nodes_ > budget_) {
      exact_ = false;
      return;
    }
    const std::size_t n = dag_.num_vertices();
    if (scheduled == (std::uint32_t{1} << n) - 1) {
      best_ = std::min(best_, max_finish);
      return;
    }

    // Eligible jobs: unscheduled with every predecessor scheduled. Their
    // earliest start is max(latest pred finish, earliest machine).
    struct Candidate {
      VertexId v;
      Time est;
    };
    std::vector<Candidate> eligible;
    const Time machine0 = machine_free.front();
    Time t_star = kTimeInfinity;
    for (VertexId v = 0; v < n; ++v) {
      if (scheduled & (std::uint32_t{1} << v)) continue;
      Time ready = 0;
      bool ok = true;
      for (VertexId p : dag_.predecessors(v)) {
        if (!(scheduled & (std::uint32_t{1} << p))) {
          ok = false;
          break;
        }
        ready = std::max(ready, finish[p]);
      }
      if (!ok) continue;
      Time est = std::max(ready, machine0);
      eligible.push_back({v, est});
      t_star = std::min(t_star, est);
    }
    FEDCONS_ASSERT(!eligible.empty());  // acyclic ⇒ progress possible

    // Lower bounds at this node.
    {
      // Area: machines busy up to their free times beyond t*, plus all
      // unscheduled work, spread over m machines starting at t*.
      Time committed = 0;
      for (Time f : machine_free) {
        if (f > t_star) committed += f - t_star;
      }
      Time area_lb =
          t_star + ceil_div(remaining_work + committed, m_);
      Time path_lb = 0;
      for (const auto& c : eligible) {
        path_lb = std::max(path_lb, c.est + bottom_[c.v]);
      }
      Time lb = std::max({max_finish, area_lb, path_lb});
      if (lb >= best_) return;  // incumbent is at least as good
    }

    // Non-delay branching: some job with est == t* starts at t*.
    std::vector<Candidate> branches;
    for (const auto& c : eligible) {
      if (c.est == t_star) branches.push_back(c);
    }
    // Explore promising branches first: deepest remaining path first.
    std::sort(branches.begin(), branches.end(),
              [&](const Candidate& a, const Candidate& b) {
                if (bottom_[a.v] != bottom_[b.v])
                  return bottom_[a.v] > bottom_[b.v];
                return a.v < b.v;
              });
    for (const auto& c : branches) {
      const Time job_finish = t_star + dag_.wcet(c.v);
      // Place on the earliest machine (index 0 of the sorted vector).
      const Time saved_machine = machine_free.front();
      machine_free.front() = job_finish;
      std::sort(machine_free.begin(), machine_free.end());
      finish[c.v] = job_finish;

      dfs(machine_free, finish, scheduled | (std::uint32_t{1} << c.v),
          remaining_work - dag_.wcet(c.v),
          std::max(max_finish, job_finish));

      finish[c.v] = -1;
      // Restore machine multiset.
      auto it = std::find(machine_free.begin(), machine_free.end(),
                          job_finish);
      FEDCONS_ASSERT(it != machine_free.end());
      *it = saved_machine;
      std::sort(machine_free.begin(), machine_free.end());
      if (!exact_) return;
    }
  }

  const Dag& dag_;
  int m_;
  std::uint64_t budget_;
  std::uint64_t nodes_ = 0;
  bool exact_ = true;
  Time best_ = kTimeInfinity;
  std::vector<Time> bottom_;
};

}  // namespace

OptimalMakespanResult optimal_makespan(const Dag& dag, int num_processors,
                                       std::uint64_t node_budget) {
  FEDCONS_EXPECTS(!dag.empty());
  FEDCONS_EXPECTS(dag.is_acyclic());
  FEDCONS_EXPECTS(num_processors >= 1);
  FEDCONS_EXPECTS_MSG(dag.num_vertices() <= 20,
                      "optimal_makespan is sized for |V| <= 20");
  BranchAndBound search(dag, num_processors, node_budget);
  return search.run();
}

}  // namespace fedcons
