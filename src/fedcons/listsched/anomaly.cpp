#include "fedcons/listsched/anomaly.h"

#include "fedcons/listsched/list_scheduler.h"
#include "fedcons/util/check.h"
#include "fedcons/util/rng.h"

namespace fedcons {

AnomalyInstance make_graham_anomaly_instance() {
  Dag g;
  const Time wcets[] = {3, 2, 2, 2, 4, 4, 4, 4, 9};
  for (Time w : wcets) g.add_vertex(w);
  g.add_edge(0, 8);
  for (VertexId v = 4; v <= 7; ++v) g.add_edge(3, v);

  AnomalyInstance inst;
  inst.processors = 3;
  inst.reduced_exec_times = {2, 1, 1, 1, 3, 3, 3, 3, 8};
  inst.wcet_makespan = list_schedule(g, inst.processors).makespan();
  inst.reduced_makespan =
      list_schedule_with_exec_times(g, inst.processors,
                                    inst.reduced_exec_times)
          .makespan();
  inst.dag = std::move(g);
  // The whole point: shorter jobs, longer schedule.
  FEDCONS_ENSURES(inst.reduced_makespan > inst.wcet_makespan);
  return inst;
}

AnomalyInstance find_anomaly(const Dag& dag, int processors,
                             std::uint64_t seed, int attempts) {
  FEDCONS_EXPECTS(processors >= 1);
  FEDCONS_EXPECTS(attempts >= 1);
  Rng rng(seed);
  const Time base = list_schedule(dag, processors).makespan();
  std::vector<Time> exec(dag.num_vertices());
  for (int a = 0; a < attempts; ++a) {
    for (std::size_t v = 0; v < dag.num_vertices(); ++v) {
      Time w = dag.wcet(static_cast<VertexId>(v));
      exec[v] = rng.uniform_int(1, w);
    }
    Time reduced =
        list_schedule_with_exec_times(dag, processors, exec).makespan();
    if (reduced > base) {
      AnomalyInstance inst;
      inst.dag = dag;
      inst.processors = processors;
      inst.reduced_exec_times = exec;
      inst.wcet_makespan = base;
      inst.reduced_makespan = reduced;
      return inst;
    }
  }
  return AnomalyInstance{};  // processors == 0 signals "none found"
}

}  // namespace fedcons
