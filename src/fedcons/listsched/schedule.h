// Template schedules σ_i for dedicated clusters.
//
// Paper, Section IV-A: for each high-density task the offline List-Scheduling
// run produces a schedule σ_i of one dag-job on m_i processors assuming every
// job runs for its full WCET. At run time σ_i is used as a *lookup table*:
// the job of vertex v starts exactly at (release + start(v)) on processor
// proc(v) and its slot is simply left idle if the job finishes early. This
// sidesteps Graham's timing anomaly (footnote 2: re-running LS online with
// shorter actual execution times can *increase* the schedule length).
#pragma once

#include <vector>

#include "fedcons/core/dag.h"
#include "fedcons/util/time_types.h"

namespace fedcons {

/// Placement of one vertex's job within a template schedule.
struct ScheduledJob {
  VertexId vertex = 0;
  int processor = 0;  ///< 0-based processor index within the cluster
  Time start = 0;     ///< offset from the dag-job release
  Time finish = 0;    ///< start + WCET (non-preemptive slot)
};

/// A complete non-preemptive schedule of one dag-job on a fixed number of
/// processors. Immutable value type produced by the list scheduler.
class TemplateSchedule {
 public:
  /// Empty schedule on one processor (makespan 0) — the value-type default.
  TemplateSchedule() : num_processors_(1) {}

  /// Preconditions: num_processors >= 1; one entry per vertex of the intended
  /// DAG with finish == start + wcet. Validation against a DAG is separate
  /// (validate_against) so schedules can be transported independently.
  TemplateSchedule(int num_processors, std::vector<ScheduledJob> jobs);

  [[nodiscard]] int num_processors() const noexcept {
    return num_processors_;
  }
  [[nodiscard]] const std::vector<ScheduledJob>& jobs() const noexcept {
    return jobs_;
  }
  [[nodiscard]] std::size_t num_jobs() const noexcept { return jobs_.size(); }

  /// Completion time of the last job (0 for an empty schedule).
  [[nodiscard]] Time makespan() const noexcept { return makespan_; }

  /// Lookup by vertex id. Precondition: the schedule contains that vertex.
  [[nodiscard]] const ScheduledJob& job_for(VertexId v) const;

  /// Fraction of processor·time occupied within [0, makespan): Σ wcet /
  /// (m · makespan) — reported by the MINPROCS efficiency experiment.
  [[nodiscard]] double occupancy() const noexcept;

  /// Full structural validation against the DAG this schedule claims to
  /// serve. Checks: exactly the DAG's vertex set; slot lengths equal WCETs;
  /// processor indices within range; no two jobs overlap on a processor; and
  /// every precedence edge (u, v) satisfies finish(u) <= start(v).
  /// Returns true iff all hold.
  [[nodiscard]] bool validate_against(const Dag& dag) const;

 private:
  int num_processors_;
  std::vector<ScheduledJob> jobs_;    // sorted by vertex id
  std::vector<std::size_t> by_vertex_;  // vertex id -> index into jobs_
  Time makespan_ = 0;
};

}  // namespace fedcons
