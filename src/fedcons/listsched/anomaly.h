// Graham's timing anomaly — the reason FEDCONS replays template schedules.
//
// Paper, footnote 2: "it is not safe to simply re-run LS during run-time —
// it was shown [Graham 1966] that LS exhibits anomalous behavior in the
// sense that reducing the execution-times of jobs may increase the schedule
// length." This header packages Graham's classic 9-job instance so tests,
// the anomaly example application, and experiment E6 can all demonstrate the
// phenomenon concretely.
#pragma once

#include <vector>

#include "fedcons/core/dag.h"
#include "fedcons/util/time_types.h"

namespace fedcons {

/// A concrete anomaly witness: a DAG, a processor count, and per-vertex
/// actual execution times (each ≤ WCET) such that list-scheduling with the
/// *reduced* times yields a LONGER makespan than with the full WCETs.
struct AnomalyInstance {
  Dag dag;
  int processors = 0;
  std::vector<Time> reduced_exec_times;
  Time wcet_makespan = 0;    ///< LS makespan with full WCETs
  Time reduced_makespan = 0; ///< LS makespan with reduced times (> wcet_makespan)
};

/// Graham's classic instance (SIAM J. Appl. Math. 17, 1969): nine jobs with
/// WCETs (3,2,2,2,4,4,4,4,9), precedence v0→v8 and v3→{v4,v5,v6,v7}, on
/// m = 3 processors. LS (vertex order) yields makespan 12 with full WCETs
/// but 13 when every execution time shrinks by one unit.
[[nodiscard]] AnomalyInstance make_graham_anomaly_instance();

/// Search for an anomaly on the given DAG/processor count by sampling random
/// execution-time reductions with the given RNG seed. Returns the first
/// witness found within `attempts` samples, or an empty optional-like flag
/// via AnomalyInstance with processors == 0. Used by the experiment suite to
/// show anomalies are not rare curiosities.
[[nodiscard]] AnomalyInstance find_anomaly(const Dag& dag, int processors,
                                           std::uint64_t seed,
                                           int attempts = 1000);

}  // namespace fedcons
