#include "fedcons/listsched/schedule.h"

#include <algorithm>

#include "fedcons/util/check.h"

namespace fedcons {

TemplateSchedule::TemplateSchedule(int num_processors,
                                   std::vector<ScheduledJob> jobs)
    : num_processors_(num_processors), jobs_(std::move(jobs)) {
  FEDCONS_EXPECTS(num_processors_ >= 1);
  std::sort(jobs_.begin(), jobs_.end(),
            [](const ScheduledJob& a, const ScheduledJob& b) {
              return a.vertex < b.vertex;
            });
  VertexId max_vertex = 0;
  for (const auto& j : jobs_) {
    FEDCONS_EXPECTS_MSG(j.start >= 0 && j.finish >= j.start,
                        "malformed schedule slot");
    FEDCONS_EXPECTS_MSG(j.processor >= 0 && j.processor < num_processors_,
                        "processor index out of range");
    makespan_ = std::max(makespan_, j.finish);
    max_vertex = std::max(max_vertex, j.vertex);
  }
  by_vertex_.assign(jobs_.empty() ? 0 : max_vertex + 1, SIZE_MAX);
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    FEDCONS_EXPECTS_MSG(by_vertex_[jobs_[i].vertex] == SIZE_MAX,
                        "duplicate vertex in schedule");
    by_vertex_[jobs_[i].vertex] = i;
  }
}

const ScheduledJob& TemplateSchedule::job_for(VertexId v) const {
  FEDCONS_EXPECTS(v < by_vertex_.size() && by_vertex_[v] != SIZE_MAX);
  return jobs_[by_vertex_[v]];
}

double TemplateSchedule::occupancy() const noexcept {
  if (makespan_ == 0) return 0.0;
  Time work = 0;
  for (const auto& j : jobs_) work += j.finish - j.start;
  return static_cast<double>(work) /
         (static_cast<double>(num_processors_) *
          static_cast<double>(makespan_));
}

bool TemplateSchedule::validate_against(const Dag& dag) const {
  if (jobs_.size() != dag.num_vertices()) return false;
  for (const auto& j : jobs_) {
    if (j.vertex >= dag.num_vertices()) return false;
    if (j.finish - j.start != dag.wcet(j.vertex)) return false;
  }
  // No overlap per processor: sort slots per processor by start.
  std::vector<std::vector<const ScheduledJob*>> per_proc(
      static_cast<std::size_t>(num_processors_));
  for (const auto& j : jobs_)
    per_proc[static_cast<std::size_t>(j.processor)].push_back(&j);
  for (auto& slots : per_proc) {
    std::sort(slots.begin(), slots.end(),
              [](const ScheduledJob* a, const ScheduledJob* b) {
                return a->start < b->start;
              });
    for (std::size_t i = 1; i < slots.size(); ++i) {
      if (slots[i - 1]->finish > slots[i]->start) return false;
    }
  }
  // Precedence: finish(u) <= start(v) for every edge (u, v).
  for (VertexId u = 0; u < dag.num_vertices(); ++u) {
    for (VertexId v : dag.successors(u)) {
      if (job_for(u).finish > job_for(v).start) return false;
    }
  }
  return true;
}

}  // namespace fedcons
