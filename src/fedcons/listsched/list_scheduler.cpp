#include "fedcons/listsched/list_scheduler.h"

#include <algorithm>
#include <functional>
#include <queue>

#include "fedcons/listsched/ls_workspace.h"
#include "fedcons/util/check.h"
#include "fedcons/util/perf_counters.h"

namespace fedcons {

const char* to_string(ListPolicy p) noexcept {
  switch (p) {
    case ListPolicy::kVertexOrder: return "vertex-order";
    case ListPolicy::kCriticalPath: return "critical-path";
    case ListPolicy::kLongestWcet: return "longest-wcet";
  }
  return "?";
}

namespace {

void validate_exec_times(const Dag& dag, std::span<const Time> exec_times) {
  FEDCONS_EXPECTS(exec_times.size() == dag.num_vertices());
  for (std::size_t v = 0; v < dag.num_vertices(); ++v) {
    FEDCONS_EXPECTS_MSG(exec_times[v] >= 1 &&
                            exec_times[v] <= dag.wcet(static_cast<VertexId>(v)),
                        "actual execution time must be in [1, WCET]");
  }
}

// Priority key: smaller sorts first in the ready queue.
struct ReadyKey {
  Time primary;    // policy-dependent (negated for "largest first")
  VertexId vertex;  // deterministic tie-break

  bool operator>(const ReadyKey& rhs) const noexcept {
    if (primary != rhs.primary) return primary > rhs.primary;
    return vertex > rhs.vertex;
  }
};

// The reference LS core: allocation-per-call priority queues, exactly the
// seed implementation. Kept callable (list_schedule_reference) as the oracle
// for the equivalence suite and as the baseline the perf benchmarks compare
// the workspace core against.
TemplateSchedule reference_run_ls(const Dag& dag, int num_processors,
                                  std::span<const Time> exec_times,
                                  ListPolicy policy) {
  FEDCONS_EXPECTS(!dag.empty());
  FEDCONS_EXPECTS(num_processors >= 1);
  validate_exec_times(dag, exec_times);

  ++perf_counters().ls_invocations;

  const std::size_t n = dag.num_vertices();
  auto key_of = [&](VertexId v) -> ReadyKey {
    switch (policy) {
      case ListPolicy::kVertexOrder:
        return {0, v};
      case ListPolicy::kCriticalPath:
        return {-dag.bottom_level(v), v};
      case ListPolicy::kLongestWcet:
        return {-dag.wcet(v), v};
    }
    return {0, v};
  };

  std::vector<std::size_t> remaining_preds(n);
  // Pre-size the queue storage: the ready set never exceeds |V|.
  std::vector<ReadyKey> ready_storage;
  ready_storage.reserve(n);
  std::priority_queue<ReadyKey, std::vector<ReadyKey>, std::greater<>> ready(
      std::greater<>{}, std::move(ready_storage));
  for (std::size_t v = 0; v < n; ++v) {
    remaining_preds[v] = dag.in_degree(static_cast<VertexId>(v));
    if (remaining_preds[v] == 0) ready.push(key_of(static_cast<VertexId>(v)));
  }

  struct Running {
    Time finish;
    int proc;
    VertexId vertex;
    bool operator>(const Running& rhs) const noexcept {
      if (finish != rhs.finish) return finish > rhs.finish;
      if (vertex != rhs.vertex) return vertex > rhs.vertex;
      return proc > rhs.proc;
    }
  };
  std::vector<Running> running_storage;
  running_storage.reserve(static_cast<std::size_t>(num_processors));
  std::priority_queue<Running, std::vector<Running>, std::greater<>> running(
      std::greater<>{}, std::move(running_storage));
  std::vector<int> proc_storage;
  proc_storage.reserve(static_cast<std::size_t>(num_processors));
  std::priority_queue<int, std::vector<int>, std::greater<>> free_procs(
      std::greater<>{}, std::move(proc_storage));
  for (int p = 0; p < num_processors; ++p) free_procs.push(p);

  std::vector<ScheduledJob> out;
  out.reserve(n);
  Time now = 0;
  std::size_t scheduled = 0;
  while (scheduled < n) {
    // Dispatch: work-conserving — any available job onto any idle processor.
    while (!free_procs.empty() && !ready.empty()) {
      ReadyKey k = ready.top();
      ready.pop();
      int proc = free_procs.top();
      free_procs.pop();
      Time exec = exec_times[k.vertex];
      Time finish = checked_add(now, exec);
      out.push_back(ScheduledJob{k.vertex, proc, now, finish});
      running.push(Running{finish, proc, k.vertex});
      ++scheduled;
    }
    if (scheduled == n) break;
    FEDCONS_ASSERT(!running.empty());  // else: cycle (excluded by contract)
    // Advance to the next completion; release successors & processors.
    now = running.top().finish;
    while (!running.empty() && running.top().finish == now) {
      Running r = running.top();
      running.pop();
      free_procs.push(r.proc);
      for (VertexId s : dag.successors(r.vertex)) {
        if (--remaining_preds[s] == 0) ready.push(key_of(s));
      }
    }
  }
  return TemplateSchedule(num_processors, std::move(out));
}

// Run the workspace core and materialize the result (the only allocation of
// the whole pass). ws.jobs is copied, not moved, so the buffer's capacity
// stays with the arena.
TemplateSchedule run_with_workspace(const Dag& dag, int num_processors,
                                    std::span<const Time> exec_times,
                                    ListPolicy policy) {
  LsWorkspace& ws = thread_ls_workspace();
  ls_prepare(ws, dag, policy);
  ls_run_prepared(ws, dag, num_processors, exec_times);
  return TemplateSchedule(num_processors,
                          {ws.jobs.begin(), ws.jobs.end()});
}

}  // namespace

TemplateSchedule list_schedule(const Dag& dag, int num_processors,
                               ListPolicy policy) {
  FEDCONS_EXPECTS(!dag.empty());
  FEDCONS_EXPECTS(num_processors >= 1);
  return run_with_workspace(dag, num_processors, {}, policy);
}

TemplateSchedule list_schedule_with_exec_times(const Dag& dag,
                                               int num_processors,
                                               std::span<const Time> exec_times,
                                               ListPolicy policy) {
  FEDCONS_EXPECTS(!dag.empty());
  FEDCONS_EXPECTS(num_processors >= 1);
  validate_exec_times(dag, exec_times);
  return run_with_workspace(dag, num_processors, exec_times, policy);
}

TemplateSchedule list_schedule_reference(const Dag& dag, int num_processors,
                                         ListPolicy policy) {
  std::vector<Time> wcets(dag.num_vertices());
  for (std::size_t v = 0; v < dag.num_vertices(); ++v)
    wcets[v] = dag.wcet(static_cast<VertexId>(v));
  return reference_run_ls(dag, num_processors, wcets, policy);
}

TemplateSchedule list_schedule_reference_with_exec_times(
    const Dag& dag, int num_processors, std::span<const Time> exec_times,
    ListPolicy policy) {
  return reference_run_ls(dag, num_processors, exec_times, policy);
}

Time makespan_lower_bound(const Dag& dag, int num_processors) {
  FEDCONS_EXPECTS(num_processors >= 1);
  return std::max(dag.len(), ceil_div(dag.vol(), num_processors));
}

Time graham_bound(const Dag& dag, int num_processors) {
  FEDCONS_EXPECTS(num_processors >= 1);
  // T_LS ≤ len + (vol − len)/m, i.e. m·T_LS ≤ vol + (m−1)·len. The makespan
  // is integral, so floor of the real bound is a valid upper bound.
  Time m = num_processors;
  return floor_div(checked_add(dag.vol(), checked_mul(m - 1, dag.len())), m);
}

}  // namespace fedcons
