// Exact optimal non-preemptive makespan for small DAGs (branch and bound).
//
// Purpose: measure how far Graham's List Scheduling — and therefore MINPROCS
// — actually sits from optimal. Lemma 1 bounds LS at (2 − 1/m) times the
// *preemptive* optimum; since the non-preemptive optimum dominates the
// preemptive one, the measured ratio LS/OPT_np is a conservative sample of
// the same quantity, and experiment E11 reports its distribution.
//
// Algorithm: depth-first branch and bound over dispatch decisions. A state
// schedules ready jobs onto the earliest-free processor; pruning uses the
// standard lower bound max(len remainder, ⌈remaining work / m⌉) plus the
// incumbent. Exponential in the worst case — intended for |V| ≲ 14 and
// small m (contract-checked); the experiment keeps instances in that range.
#pragma once

#include <cstdint>

#include "fedcons/core/dag.h"
#include "fedcons/util/time_types.h"

namespace fedcons {

/// Result of the exact search.
struct OptimalMakespanResult {
  Time makespan = 0;          ///< optimal non-preemptive makespan
  std::uint64_t nodes = 0;    ///< B&B nodes explored (diagnostics)
  bool exact = true;          ///< false iff the node budget was exhausted —
                              ///< then `makespan` is the best incumbent
};

/// Compute the optimal non-preemptive makespan of one dag-job of `dag` on
/// `num_processors` identical processors. `node_budget` caps the search
/// (default generous for |V| ≤ 14). Preconditions: non-empty acyclic dag,
/// num_processors >= 1, |V| <= 20 (hard cap — the state encoding and the
/// search are sized for small instances).
[[nodiscard]] OptimalMakespanResult optimal_makespan(
    const Dag& dag, int num_processors,
    std::uint64_t node_budget = 20'000'000);

}  // namespace fedcons
