// Graham's List Scheduling (LS) for precedence-constrained jobs.
//
// Paper, Section IV-A: LS "essentially constructs a work-conserving schedule
// by always executing an available job, if any are present, upon any
// available processor" and has a speedup bound of (2 − 1/m) against the
// preemptive optimal makespan [Graham 1969]. MINPROCS invokes LS with
// increasing processor counts until the makespan fits the task's deadline.
//
// The list priority is a free parameter of LS; the bound holds for any list.
// We default to vertex-index order (the paper does not prioritize) and also
// provide the classic critical-path heuristic for the ablation experiments.
#pragma once

#include <span>
#include <vector>

#include "fedcons/core/dag.h"
#include "fedcons/listsched/schedule.h"

namespace fedcons {

/// Job priority within the ready list.
enum class ListPolicy {
  kVertexOrder,    ///< lowest vertex id first (paper-neutral default)
  kCriticalPath,   ///< largest bottom level first (classic CP heuristic)
  kLongestWcet,    ///< largest WCET first (LPT-style)
};

[[nodiscard]] const char* to_string(ListPolicy p) noexcept;

/// Run non-preemptive Graham LS for one dag-job of `dag` on `num_processors`
/// processors, all jobs released at time 0 and running for their full WCETs.
/// Deterministic: ties in readiness break by policy order then vertex id;
/// ties among idle processors break by lowest processor index.
/// Preconditions: dag acyclic and non-empty; num_processors >= 1.
[[nodiscard]] TemplateSchedule list_schedule(
    const Dag& dag, int num_processors,
    ListPolicy policy = ListPolicy::kVertexOrder);

/// LS with per-vertex *actual* execution times (each 0 < exec ≤ WCET),
/// exactly the "re-run LS during run-time" behaviour the paper warns against
/// (footnote 2): Graham's anomaly means the resulting makespan may EXCEED
/// the WCET-based template's makespan. Used by the anomaly demonstration and
/// the online-LS simulator mode. Precondition: exec_times.size() == |V|.
[[nodiscard]] TemplateSchedule list_schedule_with_exec_times(
    const Dag& dag, int num_processors, std::span<const Time> exec_times,
    ListPolicy policy = ListPolicy::kVertexOrder);

/// The allocation-per-call reference implementation of list_schedule (the
/// pre-workspace core, kept verbatim). Bit-identical output to
/// list_schedule — pinned by the equivalence suite — and the baseline the
/// perf benchmarks measure the zero-allocation core against.
[[nodiscard]] TemplateSchedule list_schedule_reference(
    const Dag& dag, int num_processors,
    ListPolicy policy = ListPolicy::kVertexOrder);

/// Reference twin of list_schedule_with_exec_times.
[[nodiscard]] TemplateSchedule list_schedule_reference_with_exec_times(
    const Dag& dag, int num_processors, std::span<const Time> exec_times,
    ListPolicy policy = ListPolicy::kVertexOrder);

/// Lower bound on ANY schedule's makespan (preemptive or not) on m
/// processors: max(len, ⌈vol/m⌉).
[[nodiscard]] Time makespan_lower_bound(const Dag& dag, int num_processors);

/// Graham's upper bound on the LS makespan against the preemptive optimum:
/// LS ≤ (2 − 1/m)·OPT. Since OPT ≥ makespan_lower_bound, LS also satisfies
/// LS ≤ len + (vol − len)/m ≤ vol/m + (1 − 1/m)·len. Returns the latter
/// (integer-ceiled) bound, used as a property-test oracle.
[[nodiscard]] Time graham_bound(const Dag& dag, int num_processors);

}  // namespace fedcons
