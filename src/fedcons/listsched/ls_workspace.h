// Reusable scratch state for the list-scheduling hot path.
//
// A MINPROCS scan runs Graham LS once per candidate processor count μ, and an
// acceptance sweep runs thousands of such scans per worker thread. The seed
// implementation paid three `std::priority_queue` backing allocations, two
// bookkeeping vectors, and a full `TemplateSchedule` construction per probe.
// `LsWorkspace` hoists all of that into one arena that is
//   * prepared once per (dag, policy) — priority keys collapsed to dense
//     positions, successors flattened to CSR, WCETs, in-degrees — and reused
//     across every μ probe of a MINPROCS scan, and
//   * owned thread-locally (`thread_ls_workspace`), so every trial a
//     `BatchRunner` worker executes reuses the same backing memory.
// A steady-state probe performs zero heap allocations; a `TemplateSchedule`
// is materialized only for the probe that actually fits.
//
// Neither priority queue is a comparison heap:
//   ready   — a bitset over *priority positions*. ls_prepare sorts the
//             vertices once by (policy key, vertex id) and assigns each its
//             index in that order; popping the lowest set bit then yields
//             exactly the reference comparator's order at O(1) amortized per
//             operation (one countr_zero per pop).
//   running — a timing wheel: bucket `finish mod B` holds the jobs finishing
//             at that instant, threaded through a per-vertex `next` link
//             (zero allocation), with a bitmap of non-empty buckets. All
//             in-flight finishes lie in (now, now + max_exec], so B =
//             bit_ceil(max_exec + 1) buckets make the slot unambiguous and
//             advancing time is a short rotated-bitmap scan. Jobs within one
//             bucket drain in arbitrary order — sound because completions at
//             one instant commute: processor release is a set union and
//             in-degree decrements are order-insensitive, and the ready
//             bitset orders dispatch regardless of insertion order.
// Exec times outside the wheel window (zero, or above kMaxWheelExec — no
// generator in this repo produces either) take a binary-heap fallback with
// the reference's exact (finish, vertex) ordering.
//
// Results are bit-identical to the reference implementation
// (`list_schedule_reference`): same dispatch pairing (k-th smallest ready key
// onto the k-th lowest idle processor), same completion instants, same
// deterministic tie-breaks. The equivalence suite pins this.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fedcons/core/dag.h"
#include "fedcons/listsched/schedule.h"

namespace fedcons {

enum class ListPolicy;  // list_scheduler.h

/// Largest execution time the timing wheel handles; larger values (or
/// non-positive ones from a caller-supplied exec_times) fall back to the
/// binary-heap running queue.
inline constexpr Time kMaxWheelExec = 4095;

/// Scratch buffers for repeated LS runs. All vectors keep their capacity
/// across runs; sizes are reset by ls_prepare / ls_run_prepared.
struct LsWorkspace {
  // Prepared once per (dag, policy) by ls_prepare.
  std::vector<std::uint32_t> ready_pos;   ///< vertex -> priority position
  std::vector<std::uint32_t> pos_to_v;    ///< priority position -> vertex
  std::vector<std::uint32_t> succ_off;    ///< CSR offsets, size n+1
  std::vector<VertexId> succ_flat;        ///< CSR successor lists
  std::vector<std::uint16_t> succ_flat16;  ///< half-width image when n ≤ 2^16
  std::vector<Time> wcets;                ///< default execution times
  std::vector<std::uint32_t> init_preds;  ///< in-degree template
  Time max_wcet = 1;                      ///< wheel sizing for the WCET case

  // ls_prepare scratch (priority-position assignment).
  std::vector<Time> keys;

  // Per-run scratch, written by ls_run_prepared.
  struct RunningJob {  // fallback-heap element, ordered by (finish, vertex)
    Time finish;
    VertexId vertex;
  };
  std::vector<std::uint32_t> remaining_preds;
  std::vector<std::uint64_t> ready_mask;   ///< bitset over priority positions
  std::vector<std::uint32_t> wheel_head;   ///< bucket -> first vertex (or ~0)
  std::vector<std::uint32_t> wheel_next;   ///< vertex -> next in its bucket
  std::vector<std::uint64_t> wheel_mask;   ///< bitmap of non-empty buckets
  std::vector<RunningJob> running;         ///< fallback binary min-heap
  std::vector<std::int32_t> proc_of;       ///< processor per vertex
  std::vector<std::uint64_t> free_mask;    ///< bitset of idle processors
  std::vector<ScheduledJob> jobs;          ///< output, dispatch order
  Time makespan = 0;                       ///< max finish of the last run
};

/// The calling thread's workspace arena. One instance per thread: safe with
/// the BatchRunner (each worker runs one trial at a time) and free of any
/// cross-thread synchronization.
[[nodiscard]] LsWorkspace& thread_ls_workspace() noexcept;

/// This thread's count of LS runs that completed entirely inside
/// already-allocated workspace memory (the zero-allocation steady state).
/// Deliberately NOT part of PerfCounters: arena-capacity history depends on
/// which trials previously ran on the thread, so per-trial attribution would
/// not be deterministic across thread counts. Read it for whole-process
/// diagnostics (fedcons_cli --json) only.
[[nodiscard]] std::uint64_t& workspace_reuse_count() noexcept;

/// Compute the (dag, policy) invariants into `ws`: priority positions (the
/// policy's (key, id) sort order, hoisted out of every ready-queue
/// operation), the CSR successor image, WCETs, and the in-degree template.
/// Call once, then ls_run_prepared any number of times with the same dag.
///
/// With use_reduced_graph the CSR image and in-degree template come from
/// Dag::reduced_successors — the transitive reduction. Every LS run is
/// bit-identical either way: a transitively implied predecessor never binds
/// a ready instant (its witness path's tail finishes no earlier), so only
/// the per-completion edge-loop cost changes. MINPROCS scans, which probe
/// the same dag dozens of times, pass true; one-shot callers keep the
/// default and skip the reduction build.
/// Preconditions: dag acyclic and non-empty.
void ls_prepare(LsWorkspace& ws, const Dag& dag, ListPolicy policy,
                bool use_reduced_graph = false);

/// One Graham LS pass on `num_processors` processors using the prepared
/// state. exec_times empty → the dag's WCETs (the template-schedule case);
/// otherwise one actual execution time per vertex (caller validates).
/// Fills ws.jobs (dispatch order) and ws.makespan. Increments the
/// ls_invocations perf counter, and workspace_reuse_count() when the run
/// completed without growing any principal workspace buffer.
/// Preconditions: ls_prepare ran for this dag; num_processors >= 1.
void ls_run_prepared(LsWorkspace& ws, const Dag& dag, int num_processors,
                     std::span<const Time> exec_times = {});

/// Blocked μ scan: one ls_run_prepared per candidate in `mus`, in order,
/// recording each run's makespan in makespans[i] and stopping after the first
/// candidate whose makespan ≤ fit_deadline (Graham-bound monotonicity makes
/// any later candidate redundant for the MINPROCS decision). Returns the
/// number of probes run — the index of the first fitting candidate plus one,
/// or mus.size() when none fits; makespans beyond that count are untouched.
///
/// The probe sequence, per-probe results, and ls_invocations credits are
/// identical to the caller looping ls_run_prepared itself — the block entry
/// point exists so the whole scan's state resets run through the dispatched
/// fill/copy primitives and are credited in ls_probes_blocked.
/// Preconditions: ls_prepare ran for this dag; makespans.size() >= mus.size().
[[nodiscard]] std::size_t ls_run_blocked(LsWorkspace& ws, const Dag& dag,
                                         std::span<const int> mus,
                                         Time fit_deadline,
                                         std::span<Time> makespans);

}  // namespace fedcons
