#include "fedcons/listsched/ls_workspace.h"

#include <algorithm>
#include <bit>
#include <numeric>

#include "fedcons/listsched/list_scheduler.h"
#include "fedcons/simd/fill.h"
#include "fedcons/util/check.h"
#include "fedcons/util/perf_counters.h"

namespace fedcons {

namespace {
constexpr std::uint32_t kNoVertex = 0xffffffffu;
}  // namespace

LsWorkspace& thread_ls_workspace() noexcept {
  thread_local LsWorkspace workspace;
  return workspace;
}

std::uint64_t& workspace_reuse_count() noexcept {
  thread_local std::uint64_t reuses = 0;
  return reuses;
}

void ls_prepare(LsWorkspace& ws, const Dag& dag, ListPolicy policy,
                bool use_reduced_graph) {
  FEDCONS_EXPECTS(!dag.empty());
  const std::size_t n = dag.num_vertices();
  const auto succ_of = [&dag, use_reduced_graph](std::size_t i) {
    const auto v = static_cast<VertexId>(i);
    return use_reduced_graph ? dag.reduced_successors(v) : dag.successors(v);
  };
  ws.wcets.resize(n);
  ws.max_wcet = 1;
  for (std::size_t i = 0; i < n; ++i) {
    ws.wcets[i] = dag.wcet(static_cast<VertexId>(i));
    if (ws.wcets[i] > ws.max_wcet) ws.max_wcet = ws.wcets[i];
  }

  // Flatten successor lists to CSR: the completion edge loop is the single
  // hottest loop of a MINPROCS scan and runs over this image once per probe.
  // The in-degree template is recounted from the same edge set so that
  // remaining_preds hits zero exactly when the (possibly reduced) CSR's
  // decrements do.
  ws.succ_off.resize(n + 1);
  ws.succ_off[0] = 0;
  for (std::size_t i = 0; i < n; ++i) {
    ws.succ_off[i + 1] =
        ws.succ_off[i] + static_cast<std::uint32_t>(succ_of(i).size());
  }
  ws.succ_flat.resize(ws.succ_off[n]);
  ws.init_preds.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t k = ws.succ_off[i];
    for (VertexId s : succ_of(i)) {
      ws.succ_flat[k++] = s;
      ++ws.init_preds[s];
    }
  }
  // Half-width image for the common n ≤ 2^16 case: the edge loop streams the
  // whole CSR once per probe, so halving its footprint halves that traffic.
  if (n <= 0x10000) {
    ws.succ_flat16.resize(ws.succ_flat.size());
    for (std::size_t k = 0; k < ws.succ_flat.size(); ++k) {
      ws.succ_flat16[k] = static_cast<std::uint16_t>(ws.succ_flat[k]);
    }
  } else {
    ws.succ_flat16.clear();
  }

  ws.ready_pos.resize(n);
  ws.pos_to_v.resize(n);
  if (policy == ListPolicy::kVertexOrder) {
    // All primary keys equal: the (key, id) order is the id order.
    for (std::size_t i = 0; i < n; ++i) {
      ws.ready_pos[i] = static_cast<std::uint32_t>(i);
      ws.pos_to_v[i] = static_cast<std::uint32_t>(i);
    }
    return;
  }
  ws.keys.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto v = static_cast<VertexId>(i);
    switch (policy) {
      case ListPolicy::kVertexOrder: ws.keys[i] = 0; break;
      case ListPolicy::kCriticalPath: ws.keys[i] = -dag.bottom_level(v); break;
      case ListPolicy::kLongestWcet: ws.keys[i] = -dag.wcet(v); break;
    }
  }
  // Priority position = index in the (key, id) sort — the exact order the
  // reference comparator pops in, collapsed to a dense integer so the ready
  // queue can be a bitset.
  std::iota(ws.pos_to_v.begin(), ws.pos_to_v.end(), 0u);
  const Time* keys = ws.keys.data();
  std::sort(ws.pos_to_v.begin(), ws.pos_to_v.end(),
            [keys](std::uint32_t a, std::uint32_t b) {
              if (keys[a] != keys[b]) return keys[a] < keys[b];
              return a < b;
            });
  for (std::size_t p = 0; p < n; ++p) {
    ws.ready_pos[ws.pos_to_v[p]] = static_cast<std::uint32_t>(p);
  }
}

namespace {

// Shared per-run cursors over the bitsets in LsWorkspace.
struct RunState {
  std::size_t free_count = 0;
  std::size_t free_lo = 0;   // lowest free_mask word that may have a set bit
  std::size_t ready_count = 0;
  std::size_t ready_lo = 0;  // lowest ready_mask word that may have a set bit
};

int pop_lowest_free(LsWorkspace& ws, RunState& rs) noexcept {
  for (;; ++rs.free_lo) {
    if (const std::uint64_t word = ws.free_mask[rs.free_lo]; word != 0) {
      const int bit = std::countr_zero(word);
      ws.free_mask[rs.free_lo] &= word - 1;  // clear lowest set bit
      --rs.free_count;
      return static_cast<int>(rs.free_lo * 64) + bit;
    }
  }
}

void release_proc(LsWorkspace& ws, RunState& rs, std::int32_t proc) noexcept {
  const auto w = static_cast<std::size_t>(proc) / 64;
  ws.free_mask[w] |= std::uint64_t{1} << (static_cast<std::size_t>(proc) % 64);
  ++rs.free_count;
  if (w < rs.free_lo) rs.free_lo = w;
}

std::uint32_t pop_lowest_ready(LsWorkspace& ws, RunState& rs) noexcept {
  for (;; ++rs.ready_lo) {
    if (const std::uint64_t word = ws.ready_mask[rs.ready_lo]; word != 0) {
      const int bit = std::countr_zero(word);
      ws.ready_mask[rs.ready_lo] &= word - 1;
      --rs.ready_count;
      return static_cast<std::uint32_t>(rs.ready_lo * 64 + bit);
    }
  }
}

void push_ready(LsWorkspace& ws, RunState& rs, std::uint32_t pos) noexcept {
  const std::size_t w = pos / 64;
  ws.ready_mask[w] |= std::uint64_t{1} << (pos % 64);
  ++rs.ready_count;
  if (w < rs.ready_lo) rs.ready_lo = w;
}

// Decrement in-degrees of v's successors, releasing the newly ready.
inline void complete_vertex(LsWorkspace& ws, RunState& rs,
                            std::uint32_t v) noexcept {
  release_proc(ws, rs, ws.proc_of[v]);
  std::uint32_t* rp = ws.remaining_preds.data();
  const VertexId* flat = ws.succ_flat.data();
  const VertexId* q = flat + ws.succ_off[v];
  const VertexId* e = flat + ws.succ_off[v + 1];
  for (; q != e; ++q) {
    const VertexId s = *q;
    if (--rp[s] == 0) push_ready(ws, rs, ws.ready_pos[s]);
  }
}

// Timing-wheel main loop: O(1) running-queue push, one short bitmap scan per
// completion instant, batch drain in bucket order (sound: completions at one
// instant commute — see the header). Everything is accessed through local
// raw pointers: the compiler cannot prove the bitset stores don't alias the
// workspace's vector control blocks, so member access would reload every
// data pointer each iteration of the hot loops.
template <typename SuccT>
Time run_wheel(LsWorkspace& ws, RunState& rs, std::span<const Time> exec_times,
               std::size_t n, std::size_t bucket_count,
               const SuccT* succ_flat) {
  const std::size_t bucket_mask = bucket_count - 1;
  const std::size_t mask_words = bucket_count / 64;
  const Time* exec = exec_times.data();
  const std::uint32_t* pos_to_v = ws.pos_to_v.data();
  const std::uint32_t* succ_off = ws.succ_off.data();
  const std::uint32_t* ready_pos = ws.ready_pos.data();
  std::uint32_t* rp = ws.remaining_preds.data();
  std::uint64_t* ready_mask = ws.ready_mask.data();
  std::uint32_t* wheel_head = ws.wheel_head.data();
  std::uint32_t* wheel_next = ws.wheel_next.data();
  std::uint64_t* wheel_mask = ws.wheel_mask.data();
  std::uint64_t* free_mask = ws.free_mask.data();
  std::int32_t* proc_of = ws.proc_of.data();
  ScheduledJob* jobs = ws.jobs.data();

  std::size_t free_count = rs.free_count;
  std::size_t free_lo = rs.free_lo;
  std::size_t ready_count = rs.ready_count;
  std::size_t ready_lo = rs.ready_lo;

  Time now = 0;
  Time makespan = 0;
  std::size_t scheduled = 0;
  std::size_t completed = 0;
  while (scheduled < n) {
    // Dispatch: work-conserving — pair the k-th smallest ready position with
    // the k-th lowest idle processor index.
    while (free_count > 0 && ready_count > 0) {
      while (ready_mask[ready_lo] == 0) ++ready_lo;
      const std::uint64_t rw = ready_mask[ready_lo];
      const auto pos =
          static_cast<std::uint32_t>(ready_lo * 64) +
          static_cast<std::uint32_t>(std::countr_zero(rw));
      ready_mask[ready_lo] = rw & (rw - 1);
      --ready_count;
      const std::uint32_t v = pos_to_v[pos];
      while (free_mask[free_lo] == 0) ++free_lo;
      const std::uint64_t fw = free_mask[free_lo];
      const int proc = static_cast<int>(free_lo * 64) + std::countr_zero(fw);
      free_mask[free_lo] = fw & (fw - 1);
      --free_count;
      const Time finish = checked_add(now, exec[v]);
      jobs[scheduled] = ScheduledJob{v, proc, now, finish};
      proc_of[v] = proc;
      const auto b = static_cast<std::size_t>(finish) & bucket_mask;
      wheel_next[v] = wheel_head[b];
      wheel_head[b] = v;
      wheel_mask[b / 64] |= std::uint64_t{1} << (b % 64);
      if (finish > makespan) makespan = finish;
      ++scheduled;
    }
    if (scheduled == n) break;
    FEDCONS_ASSERT(completed < scheduled);  // else: cycle (excluded)
    // Advance to the next completion instant: all in-flight finishes lie in
    // (now, now + B), so scanning the bucket bitmap from position
    // (now+1) mod B, wrapping once, finds the earliest.
    const std::size_t start = static_cast<std::size_t>(now + 1) & bucket_mask;
    std::size_t w = start / 64;
    std::uint64_t word = wheel_mask[w] & (~std::uint64_t{0} << (start % 64));
    while (word == 0) {
      w = (w + 1 == mask_words) ? 0 : w + 1;
      word = wheel_mask[w];
    }
    const std::size_t b =
        w * 64 + static_cast<std::size_t>(std::countr_zero(word));
    now += 1 + static_cast<Time>((b - start) & bucket_mask);
    // The bucket drains fully below; clear its bit now. (Read-modify on the
    // stored word — `word` may have had in-window low bits masked off.)
    wheel_mask[b / 64] &= ~(std::uint64_t{1} << (b % 64));
    for (std::uint32_t v = wheel_head[b]; v != kNoVertex;) {
      // Hide the successor-list fetch of the next completion behind the
      // current one's edge loop (the drain order is a linked-list chase).
      const std::uint32_t nx = wheel_next[v];
      if (nx != kNoVertex) {
        __builtin_prefetch(succ_flat + succ_off[nx]);
      }
      const std::int32_t proc = proc_of[v];
      const auto pw = static_cast<std::size_t>(proc) / 64;
      free_mask[pw] |= std::uint64_t{1} << (static_cast<std::size_t>(proc) % 64);
      ++free_count;
      if (pw < free_lo) free_lo = pw;
      const SuccT* q = succ_flat + succ_off[v];
      const SuccT* e = succ_flat + succ_off[v + 1];
      for (; q != e; ++q) {
        const std::uint32_t s = *q;
        if (--rp[s] == 0) {
          const std::uint32_t p = ready_pos[s];
          ready_mask[p / 64] |= std::uint64_t{1} << (p % 64);
          ++ready_count;
          if (p / 64 < ready_lo) ready_lo = p / 64;
        }
      }
      ++completed;
      v = nx;
    }
    wheel_head[b] = kNoVertex;
  }
  return makespan;
}

// Binary-heap fallback for exec times outside the wheel window. Identical
// ordering ((finish, vertex) ascending), identical results.
Time run_generic(LsWorkspace& ws, RunState& rs,
                 std::span<const Time> exec_times, std::size_t n) {
  auto running_after = [](const LsWorkspace::RunningJob& a,
                          const LsWorkspace::RunningJob& b) noexcept {
    if (a.finish != b.finish) return a.finish > b.finish;
    return a.vertex > b.vertex;
  };
  ws.running.clear();

  Time now = 0;
  Time makespan = 0;
  std::size_t scheduled = 0;
  while (scheduled < n) {
    while (rs.free_count > 0 && rs.ready_count > 0) {
      const std::uint32_t v = ws.pos_to_v[pop_lowest_ready(ws, rs)];
      const int proc = pop_lowest_free(ws, rs);
      const Time finish = checked_add(now, exec_times[v]);
      ws.jobs[scheduled] = ScheduledJob{v, proc, now, finish};
      ws.proc_of[v] = proc;
      ws.running.push_back(LsWorkspace::RunningJob{finish, v});
      std::push_heap(ws.running.begin(), ws.running.end(), running_after);
      if (finish > makespan) makespan = finish;
      ++scheduled;
    }
    if (scheduled == n) break;
    FEDCONS_ASSERT(!ws.running.empty());  // else: cycle (excluded)
    now = ws.running.front().finish;
    while (!ws.running.empty() && ws.running.front().finish == now) {
      const VertexId v = ws.running.front().vertex;
      std::pop_heap(ws.running.begin(), ws.running.end(), running_after);
      ws.running.pop_back();
      complete_vertex(ws, rs, v);
    }
  }
  return makespan;
}

}  // namespace

void ls_run_prepared(LsWorkspace& ws, const Dag& dag, int num_processors,
                     std::span<const Time> exec_times) {
  FEDCONS_EXPECTS(num_processors >= 1);
  const std::size_t n = dag.num_vertices();
  FEDCONS_EXPECTS_MSG(ws.init_preds.size() == n,
                      "ls_prepare must run before ls_run_prepared");
  Time max_exec = ws.max_wcet;
  Time min_exec = 1;
  if (exec_times.empty()) {
    exec_times = ws.wcets;
  } else {
    FEDCONS_EXPECTS(exec_times.size() == n);
    max_exec = exec_times[0];
    min_exec = exec_times[0];
    for (const Time e : exec_times) {
      if (e > max_exec) max_exec = e;
      if (e < min_exec) min_exec = e;
    }
  }
  const bool use_wheel = min_exec >= 1 && max_exec <= kMaxWheelExec;
  const std::size_t bucket_count =
      use_wheel
          ? std::max<std::size_t>(
                64, std::bit_ceil(static_cast<std::size_t>(max_exec) + 1))
          : 0;

  ++perf_counters().ls_invocations;

  const auto procs = static_cast<std::size_t>(num_processors);
  const std::size_t free_words = (procs + 63) / 64;
  const std::size_t pos_words = (n + 63) / 64;
  const std::size_t max_running = std::min(n, procs);
  const bool reused =
      ws.remaining_preds.capacity() >= n && ws.ready_mask.capacity() >= pos_words &&
      (use_wheel ? ws.wheel_head.capacity() >= bucket_count &&
                       ws.wheel_next.capacity() >= n &&
                       ws.wheel_mask.capacity() >= bucket_count / 64
                 : ws.running.capacity() >= max_running) &&
      ws.proc_of.capacity() >= n && ws.free_mask.capacity() >= free_words &&
      ws.jobs.capacity() >= n;
  if (reused) ++workspace_reuse_count();

  // Reset per-run state (capacity persists across runs). The bulk writes go
  // through the dispatched fill/copy primitives — resize only adjusts length
  // (values are overwritten below), so the reset's data plane is the simd
  // module's store loops rather than per-element assign.
  ws.remaining_preds.resize(n);
  simd::copy_u32(ws.remaining_preds.data(), ws.init_preds.data(), n);
  ws.ready_mask.resize(pos_words);
  simd::fill_u64(ws.ready_mask.data(), pos_words, 0);
  ws.proc_of.resize(n);
  ws.jobs.resize(n);  // every vertex dispatches exactly once; slots overwritten
  if (use_wheel) {
    ws.wheel_head.resize(bucket_count);
    simd::fill_u32(ws.wheel_head.data(), bucket_count, kNoVertex);
    ws.wheel_next.resize(n);
    ws.wheel_mask.resize(bucket_count / 64);
    simd::fill_u64(ws.wheel_mask.data(), bucket_count / 64, 0);
  } else {
    ws.running.reserve(max_running);
  }
  ws.free_mask.resize(free_words);
  simd::fill_u64(ws.free_mask.data(), free_words, 0);
  for (std::size_t p = 0; p < procs; ++p)
    ws.free_mask[p / 64] |= std::uint64_t{1} << (p % 64);
  RunState rs;
  rs.free_count = procs;

  for (std::size_t v = 0; v < n; ++v) {
    if (ws.remaining_preds[v] == 0) {
      push_ready(ws, rs, ws.ready_pos[v]);
    }
  }

  ws.makespan =
      use_wheel
          ? (n <= 0x10000
                 ? run_wheel(ws, rs, exec_times, n, bucket_count,
                             ws.succ_flat16.data())
                 : run_wheel(ws, rs, exec_times, n, bucket_count,
                             ws.succ_flat.data()))
          : run_generic(ws, rs, exec_times, n);
}

std::size_t ls_run_blocked(LsWorkspace& ws, const Dag& dag,
                           std::span<const int> mus, Time fit_deadline,
                           std::span<Time> makespans) {
  FEDCONS_EXPECTS(makespans.size() >= mus.size());
  std::size_t run = 0;
  for (const int mu : mus) {
    ls_run_prepared(ws, dag, mu);
    makespans[run++] = ws.makespan;
    if (ws.makespan <= fit_deadline) break;
  }
  perf_counters().ls_probes_blocked += run;
  return run;
}

}  // namespace fedcons
