// Empirical-speedup measurement harness (experiment E4).
//
// Draws task systems that pass the necessary-feasibility conditions on m
// unit-speed processors (the clairvoyant-optimal proxy: they *might* be
// feasible for OPT) and measures the minimum processor speed at which the
// configured algorithm accepts each. The distribution of those speeds,
// contrasted with the worst-case 3 − 1/m of Theorem 1, quantifies how
// conservative the bound is in practice — the paper's concluding
// observation.
//
// Candidate generation attempts are evaluated in fixed-size chunks through
// the engine's batch runner; each attempt is seeded purely by its index, and
// the first `samples` proxy-passing attempts in index order are kept — so
// the measured set is identical for every thread count.
#pragma once

#include <string>
#include <vector>

#include "fedcons/expr/acceptance.h"

namespace fedcons {

struct SpeedupExperimentConfig {
  int m = 8;
  double normalized_util = 0.6;  ///< U_sum/m of the drawn systems
  int samples = 100;             ///< systems passing the proxy to measure
  int max_attempts = 2000;       ///< generation attempts to find them
  double max_speed = 8.0;
  double resolution = 1.0 / 64.0;
  std::uint64_t seed = 7;
  std::string algorithm = "FEDCONS";  ///< engine registry name to measure
  int num_threads = 0;                ///< batch-runner width; 0 = all cores
  TaskSetParams base;
};

struct SpeedupExperimentResult {
  std::vector<double> speeds;    ///< one per measured system
  int accepted_at_unit = 0;      ///< systems already accepted at speed 1
  int never_accepted = 0;        ///< rejected even at max_speed
  int measured = 0;              ///< == speeds.size() + never_accepted
};

[[nodiscard]] SpeedupExperimentResult run_speedup_experiment(
    const SpeedupExperimentConfig& config);

}  // namespace fedcons
