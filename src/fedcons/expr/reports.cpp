#include "fedcons/expr/reports.h"

#include <ostream>

#include "fedcons/federated/speedup.h"
#include "fedcons/simd/dispatch.h"
#include "fedcons/util/stats.h"

namespace fedcons {

Table acceptance_table(const std::vector<AcceptancePoint>& points,
                       const std::vector<AlgorithmSpec>& algorithms,
                       bool with_ci) {
  std::vector<std::string> header{"U/m", "trials", "NEC-upper"};
  for (const auto& a : algorithms) header.push_back(a.name);
  Table table(std::move(header));
  auto cell = [with_ci](std::size_t k, std::size_t n) {
    std::string s = fmt_ratio(k, n);
    if (with_ci && n > 0) {
      s += "±" + fmt_double(binomial_ci95_halfwidth(k, n), 3);
    }
    return s;
  };
  for (const auto& p : points) {
    std::vector<std::string> row;
    row.push_back(fmt_double(p.normalized_util, 2));
    row.push_back(fmt_int(static_cast<long long>(p.trials)));
    row.push_back(cell(p.feasible_upper_bound, p.trials));
    for (std::size_t a = 0; a < algorithms.size(); ++a) {
      row.push_back(cell(p.accepted[a], p.trials));
    }
    table.add_row(std::move(row));
  }
  return table;
}

Table speedup_table(const SpeedupExperimentResult& result, int m) {
  Table table({"metric", "value"});
  table.add_row({"systems measured", fmt_int(result.measured)});
  table.add_row({"accepted at speed 1", fmt_int(result.accepted_at_unit)});
  table.add_row({"never accepted (<= max speed)",
                 fmt_int(result.never_accepted)});
  if (!result.speeds.empty()) {
    OnlineStats stats;
    for (double s : result.speeds) stats.add(s);
    table.add_row({"min speed (mean)", fmt_double(stats.mean())});
    table.add_row({"min speed (p50)", fmt_double(percentile(result.speeds, 50))});
    table.add_row({"min speed (p95)", fmt_double(percentile(result.speeds, 95))});
    table.add_row({"min speed (max)", fmt_double(stats.max())});
  }
  table.add_row({"theoretical bound 3-1/m", fmt_double(fedcons_speedup_bound(m))});
  return table;
}

void print_report(std::ostream& os, const std::string& caption,
                  const Table& table, bool also_csv) {
  os << "== " << caption << "\n";
  table.print(os);
  if (also_csv) {
    os << "-- csv --\n";
    table.print_csv(os);
  }
  os << "\n";
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c; break;
    }
  }
  return out;
}

void append_counters_json(std::string& out, const PerfCounters& c) {
  out += "{\"ls_invocations\": " + fmt_int(static_cast<long long>(
                                       c.ls_invocations)) +
         ", \"minprocs_scan_iterations\": " +
         fmt_int(static_cast<long long>(c.minprocs_scan_iterations)) +
         ", \"dbf_star_evaluations\": " +
         fmt_int(static_cast<long long>(c.dbf_star_evaluations)) +
         ", \"simd_breakpoints_vectorized\": " +
         fmt_int(static_cast<long long>(c.simd_breakpoints_vectorized)) +
         ", \"ls_probes_blocked\": " +
         fmt_int(static_cast<long long>(c.ls_probes_blocked)) + "}";
}

}  // namespace

std::string sweep_report_json(const std::string& experiment,
                              std::uint64_t seed,
                              const std::vector<AlgorithmSpec>& algorithms,
                              const std::vector<SweepSection>& sections) {
  std::string out;
  out += "{\n  \"schema_version\": 1,\n";
  out += "  \"experiment\": \"" + json_escape(experiment) + "\",\n";
  out += "  \"seed\": " + fmt_int(static_cast<long long>(seed)) + ",\n";
  // Which kernel backend computed the run. Pure provenance: verdicts and
  // every counter below are backend-invariant by the dispatch contract
  // (pinned by the simd-smoke battery).
  out += "  \"simd_backend\": \"" +
         std::string(simd::to_string(simd::active_backend())) + "\",\n";
  out += "  \"algorithms\": [";
  for (std::size_t a = 0; a < algorithms.size(); ++a) {
    if (a) out += ", ";
    out += "\"" + json_escape(algorithms[a].name) + "\"";
  }
  out += "],\n  \"sweeps\": [\n";
  for (std::size_t s = 0; s < sections.size(); ++s) {
    const SweepSection& sec = sections[s];
    out += "    {\"label\": \"" + json_escape(sec.label) + "\", \"m\": " +
           fmt_int(sec.m) + ", \"points\": [\n";
    for (std::size_t p = 0; p < sec.points.size(); ++p) {
      const AcceptancePoint& point = sec.points[p];
      out += "      {\"normalized_util\": " +
             fmt_double(point.normalized_util, 4) +
             ", \"trials\": " + fmt_int(static_cast<long long>(point.trials)) +
             ", \"feasible_upper_bound\": " +
             fmt_int(static_cast<long long>(point.feasible_upper_bound)) +
             ", \"accepted\": [";
      for (std::size_t a = 0; a < point.accepted.size(); ++a) {
        if (a) out += ", ";
        out += fmt_int(static_cast<long long>(point.accepted[a]));
      }
      out += "], \"counters\": ";
      append_counters_json(out, point.counters);
      // Metrics are opt-in (SweepConfig::collect_metrics); default reports
      // only gain the schema_version field.
      if (!point.metrics.empty()) {
        out += ", \"metrics\": " + point.metrics.to_json();
      }
      out += "}";
      if (p + 1 < sec.points.size()) out += ",";
      out += "\n";
    }
    out += "    ]}";
    if (s + 1 < sections.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n}\n";
  return out;
}

std::string speedup_report_json(const std::string& experiment,
                                const SpeedupExperimentConfig& config,
                                const SpeedupExperimentResult& result) {
  std::string out;
  out += "{\n  \"schema_version\": 1,\n";
  out += "  \"experiment\": \"" + json_escape(experiment) + "\",\n";
  out += "  \"algorithm\": \"" + json_escape(config.algorithm) + "\",\n";
  out += "  \"m\": " + fmt_int(config.m) + ",\n";
  out += "  \"normalized_util\": " + fmt_double(config.normalized_util, 4) +
         ",\n";
  out += "  \"seed\": " + fmt_int(static_cast<long long>(config.seed)) +
         ",\n";
  out += "  \"measured\": " + fmt_int(result.measured) + ",\n";
  out += "  \"accepted_at_unit\": " + fmt_int(result.accepted_at_unit) +
         ",\n";
  out += "  \"never_accepted\": " + fmt_int(result.never_accepted) + ",\n";
  out += "  \"theoretical_bound\": " +
         fmt_double(fedcons_speedup_bound(config.m), 4) + ",\n";
  out += "  \"speeds\": [";
  for (std::size_t i = 0; i < result.speeds.size(); ++i) {
    if (i) out += ", ";
    out += fmt_double(result.speeds[i], 6);
  }
  out += "]\n}\n";
  return out;
}

}  // namespace fedcons
