#include "fedcons/expr/reports.h"

#include <ostream>

#include "fedcons/federated/speedup.h"
#include "fedcons/util/stats.h"

namespace fedcons {

Table acceptance_table(const std::vector<AcceptancePoint>& points,
                       const std::vector<AlgorithmSpec>& algorithms,
                       bool with_ci) {
  std::vector<std::string> header{"U/m", "trials", "NEC-upper"};
  for (const auto& a : algorithms) header.push_back(a.name);
  Table table(std::move(header));
  auto cell = [with_ci](std::size_t k, std::size_t n) {
    std::string s = fmt_ratio(k, n);
    if (with_ci && n > 0) {
      s += "±" + fmt_double(binomial_ci95_halfwidth(k, n), 3);
    }
    return s;
  };
  for (const auto& p : points) {
    std::vector<std::string> row;
    row.push_back(fmt_double(p.normalized_util, 2));
    row.push_back(fmt_int(static_cast<long long>(p.trials)));
    row.push_back(cell(p.feasible_upper_bound, p.trials));
    for (std::size_t a = 0; a < algorithms.size(); ++a) {
      row.push_back(cell(p.accepted[a], p.trials));
    }
    table.add_row(std::move(row));
  }
  return table;
}

Table speedup_table(const SpeedupExperimentResult& result, int m) {
  Table table({"metric", "value"});
  table.add_row({"systems measured", fmt_int(result.measured)});
  table.add_row({"accepted at speed 1", fmt_int(result.accepted_at_unit)});
  table.add_row({"never accepted (<= max speed)",
                 fmt_int(result.never_accepted)});
  if (!result.speeds.empty()) {
    OnlineStats stats;
    for (double s : result.speeds) stats.add(s);
    table.add_row({"min speed (mean)", fmt_double(stats.mean())});
    table.add_row({"min speed (p50)", fmt_double(percentile(result.speeds, 50))});
    table.add_row({"min speed (p95)", fmt_double(percentile(result.speeds, 95))});
    table.add_row({"min speed (max)", fmt_double(stats.max())});
  }
  table.add_row({"theoretical bound 3-1/m", fmt_double(fedcons_speedup_bound(m))});
  return table;
}

void print_report(std::ostream& os, const std::string& caption,
                  const Table& table, bool also_csv) {
  os << "== " << caption << "\n";
  table.print(os);
  if (also_csv) {
    os << "-- csv --\n";
    table.print_csv(os);
  }
  os << "\n";
}

}  // namespace fedcons
