// Acceptance-ratio sweeps — the paper's "schedulability experiments upon
// randomly-generated task systems" (Section IV, concluding note), made
// concrete and reproducible.
//
// For each normalized-utilization grid point U_sum/m, `trials` task systems
// are drawn and every registered acceptance test is run on each; the sweep
// reports per-algorithm acceptance ratios plus the fraction passing the
// necessary-feasibility conditions (the clairvoyant-optimal proxy that upper
// bounds every algorithm — see analysis/feasibility.h).
//
// Execution goes through the engine's deterministic batch runner
// (engine/batch_runner.h): trials run in parallel across
// SweepConfig::num_threads threads, with per-trial seeds derived purely from
// (seed, point index, trial index) — the reported counts are bit-identical
// for every thread count.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "fedcons/core/task_system.h"
#include "fedcons/engine/schedulability_test.h"
#include "fedcons/gen/taskset_gen.h"
#include "fedcons/obs/metrics.h"
#include "fedcons/util/perf_counters.h"

namespace fedcons {

/// A named acceptance test over (system, m).
struct AlgorithmSpec {
  std::string name;
  std::function<bool(const TaskSystem&, int)> test;
};

/// Wrap an engine test as a sweep entry (name taken from the test).
[[nodiscard]] AlgorithmSpec make_algorithm_spec(TestPtr test);

/// The standard comparison battery used across E3/E5, resolved by name from
/// the engine registry:
///   FEDCONS        — the paper's algorithm (full PARTITION variant)
///   FEDCONS-lit    — paper-literal Fig. 4 PARTITION (demand check only)
///   FED-LI-adapt   — Li et al. closed-form federated, constrained adaptation
///   P-SEQ          — fully-partitioned EDF, no federation (sequentialized)
///   P-DM           — fully-partitioned deadline-monotonic FP with exact RTA
///   GEDF-density   — analytical global-EDF density test
[[nodiscard]] std::vector<AlgorithmSpec> standard_algorithms();

struct SweepConfig {
  int m = 8;                      ///< platform size
  std::vector<double> normalized_utils =  ///< U_sum/m grid
      {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0};
  int trials = 200;               ///< task systems per grid point
  std::uint64_t seed = 42;
  int num_threads = 0;            ///< batch-runner width; 0 = all cores
  TaskSetParams base;             ///< total_utilization is overridden per point
  /// Aggregate per-trial observability metrics (obs/metrics.h) into each
  /// AcceptancePoint: wall-clock trial latency plus whatever the algorithms
  /// record (μ per MINPROCS success, bins touched per placement). Off by
  /// default — latency is a physical measurement, so reports stay
  /// byte-stable unless metrics are explicitly requested. Value histograms
  /// are merged in trial-index order and remain deterministic; the latency
  /// histogram is not.
  bool collect_metrics = false;
};

/// One grid point's outcome.
struct AcceptancePoint {
  double normalized_util = 0.0;
  std::size_t trials = 0;
  std::size_t feasible_upper_bound = 0;      ///< pass necessary conditions
  std::vector<std::size_t> accepted;         ///< parallel to the algorithm list
  PerfCounters counters;                     ///< analysis work over all trials
  obs::MetricsRegistry metrics;  ///< filled iff SweepConfig::collect_metrics
};

/// Run the sweep. accepted[i][a] corresponds to algorithms[a].
[[nodiscard]] std::vector<AcceptancePoint> run_acceptance_sweep(
    const SweepConfig& config, const std::vector<AlgorithmSpec>& algorithms);

/// Weighted schedulability (Bastoni–Brandenburg–Anderson): collapses a sweep
/// into one scalar per algorithm by weighting each grid point's acceptance
/// ratio with its normalized utilization,
///     W_a = Σ_p (U_p/m)·ratio_a(p) / Σ_p (U_p/m),
/// so hard (high-load) points count more than easy ones. The standard way to
/// compare algorithms across a secondary parameter dimension (used by E5's
/// summary). Returns one value per algorithm, parallel to `algorithms`.
[[nodiscard]] std::vector<double> weighted_schedulability(
    const std::vector<AcceptancePoint>& points, std::size_t num_algorithms);

}  // namespace fedcons
