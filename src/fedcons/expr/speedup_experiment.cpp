#include "fedcons/expr/speedup_experiment.h"

#include "fedcons/analysis/feasibility.h"
#include "fedcons/federated/fedcons_algorithm.h"
#include "fedcons/federated/speedup.h"
#include "fedcons/util/check.h"
#include "fedcons/util/rng.h"

namespace fedcons {

SpeedupExperimentResult run_speedup_experiment(
    const SpeedupExperimentConfig& config) {
  FEDCONS_EXPECTS(config.m >= 1);
  FEDCONS_EXPECTS(config.samples >= 1);
  FEDCONS_EXPECTS(config.normalized_util > 0.0);

  SpeedupExperimentResult result;
  Rng master(config.seed);
  TaskSetParams params = config.base;
  params.total_utilization =
      config.normalized_util * static_cast<double>(config.m);
  params.utilization_cap = static_cast<double>(config.m);

  const AcceptanceTest fedcons_test = [](const TaskSystem& s, int m) {
    return fedcons_schedulable(s, m);
  };

  int attempts = 0;
  while (result.measured < config.samples && attempts < config.max_attempts) {
    ++attempts;
    Rng rng = master.split();
    TaskSystem sys = generate_task_system(rng, params);
    if (!passes_necessary_conditions(sys, config.m)) continue;

    auto speed = min_speed(sys, config.m, fedcons_test, config.max_speed,
                           config.resolution);
    if (!speed.has_value()) {
      ++result.never_accepted;
      ++result.measured;
      continue;
    }
    if (*speed <= 1.0) ++result.accepted_at_unit;
    result.speeds.push_back(*speed);
    ++result.measured;
  }
  return result;
}

}  // namespace fedcons
