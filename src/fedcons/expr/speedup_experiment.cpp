#include "fedcons/expr/speedup_experiment.h"

#include <algorithm>

#include "fedcons/analysis/feasibility.h"
#include "fedcons/engine/batch_runner.h"
#include "fedcons/engine/registry.h"
#include "fedcons/federated/speedup.h"
#include "fedcons/util/check.h"

namespace fedcons {

namespace {

struct Attempt {
  bool proxy = false;          ///< passed the necessary-feasibility proxy
  bool never_accepted = false; ///< rejected even at max_speed
  double speed = 0.0;          ///< valid when proxy && !never_accepted
};

}  // namespace

SpeedupExperimentResult run_speedup_experiment(
    const SpeedupExperimentConfig& config) {
  FEDCONS_EXPECTS(config.m >= 1);
  FEDCONS_EXPECTS(config.samples >= 1);
  FEDCONS_EXPECTS(config.normalized_util > 0.0);
  FEDCONS_EXPECTS(config.num_threads >= 0);

  TestPtr test = TestRegistry::global().make(config.algorithm);
  const AcceptanceTest accept = [&test](const TaskSystem& s, int m) {
    return test->admits(s, m);
  };

  TaskSetParams params = config.base;
  params.total_utilization =
      config.normalized_util * static_cast<double>(config.m);
  params.utilization_cap = static_cast<double>(config.m);

  BatchRunner runner(config.num_threads);
  SpeedupExperimentResult result;

  // Chunk size depends only on the config (never on the thread count), so
  // which attempts get measured is deterministic; overshoot past the final
  // accepted sample is at most one chunk.
  const int chunk = std::max(32, config.samples);
  for (int start = 0;
       start < config.max_attempts && result.measured < config.samples;
       start += chunk) {
    const int n = std::min(chunk, config.max_attempts - start);
    std::vector<Attempt> attempts(static_cast<std::size_t>(n));
    runner.parallel_for(static_cast<std::size_t>(n), [&](std::size_t i) {
      // Seed by the ABSOLUTE attempt index so chunking is invisible.
      const std::uint64_t idx = static_cast<std::uint64_t>(start) + i;
      Rng rng(trial_seed(config.seed, idx));
      Attempt& a = attempts[i];
      TaskSystem sys = generate_task_system(rng, params);
      a.proxy = passes_necessary_conditions(sys, config.m);
      if (!a.proxy) return;
      auto speed = min_speed(sys, config.m, accept, config.max_speed,
                             config.resolution);
      if (!speed.has_value()) {
        a.never_accepted = true;
      } else {
        a.speed = *speed;
      }
    });
    for (const Attempt& a : attempts) {
      if (result.measured >= config.samples) break;
      if (!a.proxy) continue;
      ++result.measured;
      if (a.never_accepted) {
        ++result.never_accepted;
        continue;
      }
      if (a.speed <= 1.0) ++result.accepted_at_unit;
      result.speeds.push_back(a.speed);
    }
  }
  return result;
}

}  // namespace fedcons
