#include "fedcons/expr/acceptance.h"

#include <chrono>
#include <cstdint>

#include "fedcons/analysis/feasibility.h"
#include "fedcons/engine/batch_runner.h"
#include "fedcons/engine/registry.h"
#include "fedcons/util/check.h"

namespace fedcons {

AlgorithmSpec make_algorithm_spec(TestPtr test) {
  FEDCONS_EXPECTS(test != nullptr);
  std::string name = test->name();
  return {std::move(name), [test = std::move(test)](const TaskSystem& s,
                                                    int m) {
            return test->admits(s, m);
          }};
}

std::vector<AlgorithmSpec> standard_algorithms() {
  static const char* const kBattery[] = {"FEDCONS", "FEDCONS-lit",
                                         "FED-LI-adapt", "P-SEQ",
                                         "P-DM", "GEDF-density"};
  std::vector<AlgorithmSpec> algos;
  algos.reserve(std::size(kBattery));
  for (const char* name : kBattery) {
    algos.push_back(make_algorithm_spec(TestRegistry::global().make(name)));
  }
  return algos;
}

namespace {

/// Everything one trial produces, aggregated in index order afterwards.
struct TrialOutcome {
  bool feasible = false;
  std::vector<std::uint8_t> verdicts;
  PerfCounters counters;
  /// Raw metric samples (collect_metrics only): snapshotted from the worker's
  /// thread-local collector so the merge can run in trial-index order.
  std::uint64_t latency_us = 0;
  std::vector<std::uint32_t> minprocs_mu;
  std::vector<std::uint32_t> partition_bins_touched;
};

}  // namespace

std::vector<AcceptancePoint> run_acceptance_sweep(
    const SweepConfig& config, const std::vector<AlgorithmSpec>& algorithms) {
  FEDCONS_EXPECTS(config.m >= 1);
  FEDCONS_EXPECTS(config.trials >= 1);
  FEDCONS_EXPECTS(config.num_threads >= 0);
  FEDCONS_EXPECTS(!algorithms.empty());

  BatchRunner runner(config.num_threads);
  std::vector<AcceptancePoint> points;
  points.reserve(config.normalized_utils.size());
  for (std::size_t pi = 0; pi < config.normalized_utils.size(); ++pi) {
    const double nu = config.normalized_utils[pi];
    FEDCONS_EXPECTS(nu > 0.0);
    TaskSetParams params = config.base;
    params.total_utilization = nu * static_cast<double>(config.m);
    params.utilization_cap = static_cast<double>(config.m);

    const std::function<TrialOutcome(std::size_t, Rng&)> trial =
        [&](std::size_t, Rng& rng) {
          TrialOutcome out;
          const PerfCounters before = perf_counters();
          if (config.collect_metrics) obs::metrics_collector().clear();
          const auto t0 = std::chrono::steady_clock::now();
          TaskSystem sys = generate_task_system(rng, params);
          out.feasible = passes_necessary_conditions(sys, config.m);
          out.verdicts.resize(algorithms.size());
          for (std::size_t a = 0; a < algorithms.size(); ++a) {
            out.verdicts[a] = algorithms[a].test(sys, config.m) ? 1 : 0;
          }
          out.counters = perf_counters() - before;
          if (config.collect_metrics) {
            out.latency_us = static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count());
            obs::MetricsCollector& col = obs::metrics_collector();
            out.minprocs_mu = col.minprocs_mu;
            out.partition_bins_touched = col.partition_bins_touched;
          }
          return out;
        };
    // Per-point master seed, so points are independent of one another and of
    // the grid's layout.
    const std::uint64_t point_seed = trial_seed(config.seed, pi);
    auto outcomes = runner.run_trials<TrialOutcome>(
        static_cast<std::size_t>(config.trials), point_seed, trial);

    AcceptancePoint point;
    point.normalized_util = nu;
    point.trials = outcomes.size();
    point.accepted.assign(algorithms.size(), 0);
    for (const TrialOutcome& out : outcomes) {
      if (out.feasible) ++point.feasible_upper_bound;
      for (std::size_t a = 0; a < algorithms.size(); ++a) {
        point.accepted[a] += out.verdicts[a];
      }
      point.counters += out.counters;
      if (config.collect_metrics) {
        point.metrics.trial_latency_us.add(out.latency_us);
        for (std::uint32_t mu : out.minprocs_mu) {
          point.metrics.minprocs_mu.add(mu);
        }
        for (std::uint32_t bins : out.partition_bins_touched) {
          point.metrics.partition_bins_touched.add(bins);
        }
      }
    }
    points.push_back(std::move(point));
  }
  return points;
}

std::vector<double> weighted_schedulability(
    const std::vector<AcceptancePoint>& points, std::size_t num_algorithms) {
  FEDCONS_EXPECTS(!points.empty());
  std::vector<double> weighted(num_algorithms, 0.0);
  double weight_sum = 0.0;
  for (const auto& p : points) {
    FEDCONS_EXPECTS(p.accepted.size() == num_algorithms);
    FEDCONS_EXPECTS(p.trials > 0);
    weight_sum += p.normalized_util;
    for (std::size_t a = 0; a < num_algorithms; ++a) {
      weighted[a] += p.normalized_util *
                     (static_cast<double>(p.accepted[a]) /
                      static_cast<double>(p.trials));
    }
  }
  FEDCONS_EXPECTS(weight_sum > 0.0);
  for (double& w : weighted) w /= weight_sum;
  return weighted;
}

}  // namespace fedcons
