#include "fedcons/expr/acceptance.h"

#include "fedcons/analysis/feasibility.h"
#include "fedcons/baselines/global_edf.h"
#include "fedcons/baselines/partitioned_dm.h"
#include "fedcons/baselines/partitioned_seq.h"
#include "fedcons/federated/fedcons_algorithm.h"
#include "fedcons/federated/federated_implicit.h"
#include "fedcons/util/check.h"
#include "fedcons/util/rng.h"

namespace fedcons {

std::vector<AlgorithmSpec> standard_algorithms() {
  std::vector<AlgorithmSpec> algos;
  algos.push_back({"FEDCONS", [](const TaskSystem& s, int m) {
                     return fedcons_schedulable(s, m);
                   }});
  algos.push_back({"FEDCONS-lit", [](const TaskSystem& s, int m) {
                     FedconsOptions opt;
                     opt.partition.variant = PartitionVariant::kPaperLiteral;
                     return fedcons_schedulable(s, m, opt);
                   }});
  algos.push_back({"FED-LI-adapt", [](const TaskSystem& s, int m) {
                     return li_federated_constrained_adaptation(s, m).success;
                   }});
  algos.push_back({"P-SEQ", [](const TaskSystem& s, int m) {
                     return partitioned_sequential_schedulable(s, m);
                   }});
  algos.push_back({"P-DM", [](const TaskSystem& s, int m) {
                     return partitioned_dm_schedulable(s, m);
                   }});
  algos.push_back({"GEDF-density", [](const TaskSystem& s, int m) {
                     return gedf_dag_density_test(s, m);
                   }});
  return algos;
}

std::vector<AcceptancePoint> run_acceptance_sweep(
    const SweepConfig& config, const std::vector<AlgorithmSpec>& algorithms) {
  FEDCONS_EXPECTS(config.m >= 1);
  FEDCONS_EXPECTS(config.trials >= 1);
  FEDCONS_EXPECTS(!algorithms.empty());

  std::vector<AcceptancePoint> points;
  points.reserve(config.normalized_utils.size());
  Rng master(config.seed);
  for (double nu : config.normalized_utils) {
    FEDCONS_EXPECTS(nu > 0.0);
    AcceptancePoint point;
    point.normalized_util = nu;
    point.trials = static_cast<std::size_t>(config.trials);
    point.accepted.assign(algorithms.size(), 0);
    TaskSetParams params = config.base;
    params.total_utilization = nu * static_cast<double>(config.m);
    params.utilization_cap = static_cast<double>(config.m);
    for (int trial = 0; trial < config.trials; ++trial) {
      Rng rng = master.split();
      TaskSystem sys = generate_task_system(rng, params);
      if (passes_necessary_conditions(sys, config.m)) {
        ++point.feasible_upper_bound;
      }
      for (std::size_t a = 0; a < algorithms.size(); ++a) {
        if (algorithms[a].test(sys, config.m)) ++point.accepted[a];
      }
    }
    points.push_back(std::move(point));
  }
  return points;
}

std::vector<double> weighted_schedulability(
    const std::vector<AcceptancePoint>& points, std::size_t num_algorithms) {
  FEDCONS_EXPECTS(!points.empty());
  std::vector<double> weighted(num_algorithms, 0.0);
  double weight_sum = 0.0;
  for (const auto& p : points) {
    FEDCONS_EXPECTS(p.accepted.size() == num_algorithms);
    FEDCONS_EXPECTS(p.trials > 0);
    weight_sum += p.normalized_util;
    for (std::size_t a = 0; a < num_algorithms; ++a) {
      weighted[a] += p.normalized_util *
                     (static_cast<double>(p.accepted[a]) /
                      static_cast<double>(p.trials));
    }
  }
  FEDCONS_EXPECTS(weight_sum > 0.0);
  for (double& w : weighted) w /= weight_sum;
  return weighted;
}

}  // namespace fedcons
