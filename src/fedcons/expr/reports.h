// Table rendering shared by the bench binaries.
#pragma once

#include <iosfwd>

#include "fedcons/expr/acceptance.h"
#include "fedcons/expr/speedup_experiment.h"
#include "fedcons/util/table.h"

namespace fedcons {

/// Acceptance sweep → table with one row per U_sum/m point and one column
/// per algorithm (plus the necessary-condition upper bound). With `with_ci`
/// each ratio is annotated with its 95% binomial confidence half-width
/// ("0.620±0.078") so readers can judge which separations are significant
/// at the configured trial count.
[[nodiscard]] Table acceptance_table(
    const std::vector<AcceptancePoint>& points,
    const std::vector<AlgorithmSpec>& algorithms, bool with_ci = false);

/// Speedup experiment → distribution summary rows (mean/percentiles/max vs
/// the theoretical 3 − 1/m bound).
[[nodiscard]] Table speedup_table(const SpeedupExperimentResult& result,
                                  int m);

/// Print a table with a caption; adds a CSV block when `also_csv` is set
/// (used by bench binaries under --csv).
void print_report(std::ostream& os, const std::string& caption,
                  const Table& table, bool also_csv = false);

}  // namespace fedcons
