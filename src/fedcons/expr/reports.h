// Table and structured-JSON rendering shared by the bench binaries.
#pragma once

#include <iosfwd>

#include "fedcons/expr/acceptance.h"
#include "fedcons/expr/speedup_experiment.h"
#include "fedcons/util/table.h"

namespace fedcons {

/// Acceptance sweep → table with one row per U_sum/m point and one column
/// per algorithm (plus the necessary-condition upper bound). With `with_ci`
/// each ratio is annotated with its 95% binomial confidence half-width
/// ("0.620±0.078") so readers can judge which separations are significant
/// at the configured trial count.
[[nodiscard]] Table acceptance_table(
    const std::vector<AcceptancePoint>& points,
    const std::vector<AlgorithmSpec>& algorithms, bool with_ci = false);

/// Speedup experiment → distribution summary rows (mean/percentiles/max vs
/// the theoretical 3 − 1/m bound).
[[nodiscard]] Table speedup_table(const SpeedupExperimentResult& result,
                                  int m);

/// Print a table with a caption; adds a CSV block when `also_csv` is set
/// (used by bench binaries under --csv).
void print_report(std::ostream& os, const std::string& caption,
                  const Table& table, bool also_csv = false);

/// One labelled sweep inside a JSON report (e.g. one platform size of E3).
struct SweepSection {
  std::string label;
  int m = 0;
  std::vector<AcceptancePoint> points;
};

/// Machine-readable results document for an acceptance experiment. Emits
/// per-point acceptance counts for every algorithm plus the engine's
/// observability counters (LS invocations, MINPROCS scan iterations, DBF*
/// evaluations). The rendering is fully deterministic — fixed key order,
/// fixed number formatting — so byte-identical inputs yield byte-identical
/// documents regardless of how many threads produced them.
[[nodiscard]] std::string sweep_report_json(
    const std::string& experiment, std::uint64_t seed,
    const std::vector<AlgorithmSpec>& algorithms,
    const std::vector<SweepSection>& sections);

/// Machine-readable results for the speedup experiment (E4).
[[nodiscard]] std::string speedup_report_json(
    const std::string& experiment, const SpeedupExperimentConfig& config,
    const SpeedupExperimentResult& result);

}  // namespace fedcons
