// Algorithm PARTITION (paper, Figure 4) — deadline-monotonic first-fit
// partitioning of low-density tasks using the DBF* approximation.
//
//   PARTITION(τ_low, m_r):
//     order tasks by non-decreasing relative deadline (D_i ≤ D_{i+1})
//     for each task τ_i, for each processor k = 1 … m_r:
//       if (D_i − Σ_{τ_j ∈ τ(k)} DBF*(τ_j, D_i)) ≥ vol_i:
//         assign τ_i to processor k; next task
//     FAILURE if no processor fits
//
// This is the Fisher–Baruah–Baker first-fit decreasing-deadline algorithm of
// [Baruah & Fisher, IEEE TC 2006], restated over DAG-task volumes. Its
// guarantee (paper Lemma 2): if τ_low is partitionable by an optimal
// algorithm on m_r processors, PARTITION succeeds on m_r processors that are
// (3 − 1/m_r) times as fast.
//
// Variant note (see DESIGN.md): the paper's Fig. 4 shows only the demand
// condition; the cited Baruah–Fisher algorithm also requires the utilization
// condition u_i ≤ 1 − Σ_{τ_j ∈ τ(k)} u_j for tasks with D_i < T_i (the
// demand check alone examines only the instant D_i and can over-commit a
// processor's long-run capacity). The default here is the full algorithm;
// `Variant::kPaperLiteral` reproduces Fig. 4 verbatim for the E8 ablation,
// which quantifies how often the literal form accepts partitions that the
// exact EDF test then rejects.
#pragma once

#include <string>
#include <vector>

#include "fedcons/core/task_system.h"
#include "fedcons/obs/provenance.h"

namespace fedcons {

/// Which acceptance predicate PARTITION uses per (task, processor) probe.
enum class PartitionVariant {
  kFull,          ///< DBF demand check + utilization check (Baruah–Fisher);
                  ///< demand uses the k-point approximation (dbf_points)
  kPaperLiteral,  ///< Fig. 4 exactly: 1-point DBF* demand check only
  kExactEdf,      ///< admission = exact EDF test (QPA) of bin ∪ candidate —
                  ///< the strongest (and costliest) partitioned-EDF probe
};

/// Bin-selection heuristic. First-fit is the analyzed algorithm; best/worst
/// fit are provided for the E8 ablation.
enum class FitStrategy { kFirstFit, kBestFit, kWorstFit };

/// Task-ordering heuristic. Deadline-monotonic is the analyzed order.
enum class PartitionOrder {
  kDeadlineMonotonic,  ///< non-decreasing D_i (the paper's order)
  kDensityDescending,
  kUtilizationDescending,
};

[[nodiscard]] const char* to_string(PartitionVariant v) noexcept;
[[nodiscard]] const char* to_string(FitStrategy f) noexcept;
[[nodiscard]] const char* to_string(PartitionOrder o) noexcept;

struct PartitionOptions {
  PartitionVariant variant = PartitionVariant::kFull;
  FitStrategy fit = FitStrategy::kFirstFit;
  PartitionOrder order = PartitionOrder::kDeadlineMonotonic;
  /// Number of exact DBF steps before the linear tail in the kFull demand
  /// check (analysis/dbf.h, dbf_approx_k). 1 == the paper's DBF*; larger
  /// values trade analysis time for acceptance (experiment E10). Ignored by
  /// kPaperLiteral (always 1) and kExactEdf.
  int dbf_points = 1;
  /// Maintain per-bin DBF* aggregates (analysis/dbf.h, DbfStarAggregate)
  /// updated on placement, so each acceptance probe evaluates cached prefix
  /// sums instead of re-summing every member. Applies to kPaperLiteral and
  /// to kFull with dbf_points == 1; verdicts, placements, and perf-counter
  /// totals are identical to the recompute-per-probe paths (pinned by the
  /// partition tests). false selects the legacy paths (the oracle).
  bool incremental = true;
  /// When non-null, the placement loop records every (task, bin) probe here
  /// — which bins were tried, why each refused (utilization vs demand, with
  /// the failing DBF* breakpoint and the exact demand), and where the task
  /// landed (see obs/provenance.h). Recording only observes probes the loop
  /// already makes: placements, verdicts, and perf counters are unchanged.
  PartitionProvenance* provenance = nullptr;
};

/// Result of a partitioning attempt.
struct PartitionResult {
  bool success = false;
  /// assignment[k] = indices (into the input `tasks` span order) of the
  /// tasks placed on shared processor k. Meaningful only on success.
  std::vector<std::vector<std::size_t>> assignment;
  /// On failure: the input-order index of the first task that fit nowhere.
  std::size_t failed_task = 0;
};

/// Partition the given sequential task views on `num_processors` processors.
/// An empty task list trivially succeeds (even on zero processors).
[[nodiscard]] PartitionResult partition_tasks(
    std::span<const SporadicTask> tasks, int num_processors,
    const PartitionOptions& options = {});

/// Certify a partition with the exact uniprocessor EDF test on every
/// processor. Full-variant partitions always pass (property-tested); the
/// paper-literal variant may not — measured in E8.
[[nodiscard]] bool partition_is_edf_schedulable(
    std::span<const SporadicTask> tasks, const PartitionResult& result);

}  // namespace fedcons
