// WCET sensitivity analysis — "how much slack does this design have?"
//
// Practitioners rarely trust point WCET estimates; the standard engineering
// question after a schedulability verdict is the *margin*: by what factor
// can execution budgets grow before the verdict flips (Bini/Di Natale/
// Buttazzo-style sensitivity analysis, here instantiated for FEDCONS).
//
// Two margins are computed against any acceptance test:
//  * per-task margin  — scale ONLY τ_i's vertex WCETs by α (⌈α·e_v⌉) and
//    find the largest accepted α: identifies which task constrains the
//    design;
//  * system margin    — scale EVERY task simultaneously (equivalently: the
//    reciprocal of the minimum platform speed; a system margin of 1.6 means
//    the platform could be ~1.6× slower).
//
// Like speedup.h, the searches bisect and then verify downward on the grid:
// the returned margin is always an ACCEPTED scale, and the next grid point
// above it was checked to be rejected (LS-makespan non-monotonicities make
// a pure bisection technically unsafe).
#pragma once

#include <functional>
#include <vector>

#include "fedcons/core/task_system.h"

namespace fedcons {

/// Acceptance predicate over (system, m) — same shape as speedup.h's.
using SensitivityTest = std::function<bool(const TaskSystem&, int)>;

/// Copy of `system` with task `target`'s vertex WCETs scaled to ⌈α·e_v⌉
/// (others untouched). Preconditions: valid target, α > 0.
[[nodiscard]] TaskSystem scale_task_wcets(const TaskSystem& system,
                                          TaskId target, double alpha);

struct TaskMargin {
  TaskId task = 0;
  /// Largest accepted scale in [1, max_scale] to grid `resolution`;
  /// < 1 (0.0) when even α = 1 is rejected (system not schedulable as-is).
  double margin = 0.0;
};

/// Per-task WCET margins under `test` on m processors.
/// Preconditions: m >= 1, max_scale >= 1, resolution > 0.
[[nodiscard]] std::vector<TaskMargin> wcet_sensitivity(
    const TaskSystem& system, int m, const SensitivityTest& test,
    double max_scale = 8.0, double resolution = 1.0 / 64.0);

/// System-wide margin: largest uniform scale applied to every task that
/// `test` still accepts (0.0 when α = 1 is already rejected).
[[nodiscard]] double system_wcet_margin(const TaskSystem& system, int m,
                                        const SensitivityTest& test,
                                        double max_scale = 8.0,
                                        double resolution = 1.0 / 64.0);

}  // namespace fedcons
