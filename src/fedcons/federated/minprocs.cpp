#include "fedcons/federated/minprocs.h"

#include <algorithm>
#include <vector>

#include "fedcons/listsched/ls_workspace.h"
#include "fedcons/obs/metrics.h"
#include "fedcons/obs/span_tracer.h"
#include "fedcons/util/check.h"
#include "fedcons/util/perf_counters.h"

namespace fedcons {

int minprocs_lower_bound(const DagTask& task) {
  const Time window = std::min(task.deadline(), task.period());
  const Time lb = ceil_div(task.vol(), window);
  return static_cast<int>(std::max<Time>(1, lb));
}

Time minprocs_scan_cap(const DagTask& task) {
  const Time len = task.len();
  const Time deadline = task.deadline();
  if (len > deadline) return 0;
  // Smallest μ with ⌊(vol + (μ−1)·len)/μ⌋ ≤ D. The floor drops iff
  // vol + (μ−1)·len < μ·(D+1), i.e. μ·(D+1−len) ≥ vol − len + 1; the
  // denominator is ≥ 1 because len ≤ D, and the numerator is ≥ 1 because
  // vol ≥ len, so μ_ub ≥ 1 without clamping.
  const Time mu_ub = ceil_div(task.vol() - len + 1, deadline + 1 - len);
  // The paper's scan never starts below ⌈δ⌉; keep the cap at or above it so
  // the pruned range [lb, cap] is never empty.
  return std::max<Time>(mu_ub, minprocs_lower_bound(task));
}

namespace {

/// Begin a provenance record for one scan (no-op on nullptr).
void provenance_open(MinprocsProvenance* prov, const DagTask& task,
                     int max_processors) {
  if (prov == nullptr) return;
  *prov = MinprocsProvenance{};
  prov->scan_lb = minprocs_lower_bound(task);
  prov->scan_cap = minprocs_scan_cap(task);
  prov->max_processors = max_processors;
}

/// Record one probe's outcome (no-op on nullptr).
void provenance_probe(MinprocsProvenance* prov, int mu, Time makespan) {
  if (prov == nullptr) return;
  prov->probes.push_back(MinprocsProbeRecord{mu, makespan});
  if (makespan < prov->best_makespan) {
    prov->best_makespan = makespan;
    prov->best_mu = mu;
  }
}

void provenance_accept(MinprocsProvenance* prov, int mu) {
  if (prov == nullptr) return;
  prov->satisfied = true;
  prov->chosen_mu = mu;
}

// The seed scan, kept verbatim as the oracle: one allocation-per-call LS
// probe per candidate μ, scanning all of [⌈δ⌉, m_r].
std::optional<MinprocsResult> reference_scan(const DagTask& task,
                                             int max_processors,
                                             ListPolicy policy,
                                             MinprocsProvenance* prov) {
  for (int mu = minprocs_lower_bound(task); mu <= max_processors; ++mu) {
    ++perf_counters().minprocs_scan_iterations;
    FEDCONS_SPAN_V("minprocs", "ls_probe", "mu", mu);
    TemplateSchedule sigma = list_schedule_reference(task.graph(), mu, policy);
    provenance_probe(prov, mu, sigma.makespan());
    if (sigma.makespan() <= task.deadline()) {
      provenance_accept(prov, mu);
      obs::observe_minprocs_mu(mu);
      return MinprocsResult{mu, std::move(sigma)};
    }
  }
  return std::nullopt;
}

// Bound-guided scan: identical probe sequence and verdict (the reference
// scan's first success is ≤ cap, and cap > m_r whenever the reference scan
// rejects), but each probe reuses the thread-local workspace, with the
// policy keys prepared once for the whole scan.
std::optional<MinprocsResult> pruned_scan(const DagTask& task,
                                          int max_processors,
                                          ListPolicy policy,
                                          MinprocsProvenance* prov) {
  const Time cap = minprocs_scan_cap(task);
  const int last = static_cast<int>(std::min<Time>(max_processors, cap));
  if (cap < max_processors) {
    perf_counters().ls_probes_pruned +=
        static_cast<std::uint64_t>(max_processors - last);
  }
  LsWorkspace& ws = thread_ls_workspace();
  // The scan probes the same dag up to cap−lb+1 times: schedule against the
  // transitive reduction (cached on the Dag), which cuts the dominant
  // edge-decrement loop without changing any dispatch or finish instant.
  ls_prepare(ws, task.graph(), policy, /*use_reduced_graph=*/true);
  const int lb = minprocs_lower_bound(task);
  if (lb > last) return std::nullopt;
  // Hand the whole candidate range to the blocked probe entry point (early-
  // exits at the first fit), then attribute its per-probe results — same
  // sequence, makespans, and logical counters as probing one μ at a time.
  thread_local std::vector<int> mu_candidates;
  thread_local std::vector<Time> mu_makespans;
  mu_candidates.resize(static_cast<std::size_t>(last - lb + 1));
  for (int mu = lb; mu <= last; ++mu) {
    mu_candidates[static_cast<std::size_t>(mu - lb)] = mu;
  }
  mu_makespans.resize(mu_candidates.size());
  const std::size_t run =
      ls_run_blocked(ws, task.graph(), mu_candidates, task.deadline(),
                     mu_makespans);
  perf_counters().minprocs_scan_iterations += run;
  for (std::size_t i = 0; i < run; ++i) {
    FEDCONS_SPAN_V("minprocs", "ls_probe", "mu", mu_candidates[i]);
    provenance_probe(prov, mu_candidates[i], mu_makespans[i]);
  }
  const bool fit = run > 0 && mu_makespans[run - 1] <= task.deadline();
  if (fit) {
    // ws.jobs still holds the accepted probe's dispatch (the block's last).
    const int mu = mu_candidates[run - 1];
    provenance_accept(prov, mu);
    obs::observe_minprocs_mu(mu);
    return MinprocsResult{
        mu, TemplateSchedule(mu, {ws.jobs.begin(), ws.jobs.end()})};
  }
  return std::nullopt;
}

}  // namespace

std::optional<MinprocsResult> minprocs(const DagTask& task, int max_processors,
                                       ListPolicy policy,
                                       const MinprocsOptions& options) {
  FEDCONS_EXPECTS(max_processors >= 0);
  FEDCONS_SPAN_V("minprocs", "scan", "m_r", max_processors);
  provenance_open(options.provenance, task, max_processors);
  // No processor count can beat the critical path.
  if (task.len() > task.deadline()) {
    if (options.provenance != nullptr) {
      options.provenance->len_exceeds_deadline = true;
    }
    return std::nullopt;
  }
  return options.prune
             ? pruned_scan(task, max_processors, policy, options.provenance)
             : reference_scan(task, max_processors, policy,
                              options.provenance);
}

}  // namespace fedcons
