#include "fedcons/federated/minprocs.h"

#include <algorithm>

#include "fedcons/util/check.h"
#include "fedcons/util/perf_counters.h"

namespace fedcons {

int minprocs_lower_bound(const DagTask& task) {
  const Time window = std::min(task.deadline(), task.period());
  const Time lb = ceil_div(task.vol(), window);
  return static_cast<int>(std::max<Time>(1, lb));
}

std::optional<MinprocsResult> minprocs(const DagTask& task,
                                       int max_processors,
                                       ListPolicy policy) {
  FEDCONS_EXPECTS(max_processors >= 0);
  // No processor count can beat the critical path.
  if (task.len() > task.deadline()) return std::nullopt;
  for (int mu = minprocs_lower_bound(task); mu <= max_processors; ++mu) {
    ++perf_counters().minprocs_scan_iterations;
    TemplateSchedule sigma = list_schedule(task.graph(), mu, policy);
    if (sigma.makespan() <= task.deadline()) {
      return MinprocsResult{mu, std::move(sigma)};
    }
  }
  return std::nullopt;
}

}  // namespace fedcons
