#include "fedcons/federated/federated_implicit.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "fedcons/util/check.h"

namespace fedcons {

const char* to_string(BaselineFailure f) noexcept {
  switch (f) {
    case BaselineFailure::kNone: return "accepted";
    case BaselineFailure::kDedicatedPhase: return "dedicated-phase";
    case BaselineFailure::kSharedPhase: return "shared-phase";
  }
  return "?";
}

int closed_form_processor_count(const DagTask& task, Time window) {
  const Time len = task.len();
  const Time vol = task.vol();
  if (len > window) return -1;
  if (len == window) return (vol == len) ? 1 : -1;
  // ⌈(vol − len)/(window − len)⌉, at least 1.
  const Time n = ceil_div(vol - len, window - len);
  return static_cast<int>(std::max<Time>(1, n));
}

namespace {

/// Generic two-phase driver: closed-form dedicated counts for the tasks in
/// `high`, then first-fit of the `low` tasks subject to an additive
/// per-processor budget (utilization or density), each capped at 1.
FederatedBaselineResult run_baseline(const TaskSystem& system, int m,
                                     const std::vector<TaskId>& high,
                                     const std::vector<TaskId>& low,
                                     bool use_density) {
  FederatedBaselineResult result;
  int m_r = m;
  for (TaskId i : high) {
    const auto& t = system[i];
    const Time window = std::min(t.deadline(), t.period());
    int n = closed_form_processor_count(t, window);
    if (n < 0 || n > m_r) {
      result.failure = BaselineFailure::kDedicatedPhase;
      return result;  // success == false
    }
    result.dedicated.emplace_back(i, n);
    result.dedicated_processors += n;
    m_r -= n;
  }
  // First-fit decreasing (by the budget metric) over the shared pool.
  std::vector<TaskId> order = low;
  std::stable_sort(order.begin(), order.end(), [&](TaskId a, TaskId b) {
    const auto ka = use_density ? system[a].density() : system[a].utilization();
    const auto kb = use_density ? system[b].density() : system[b].utilization();
    return kb < ka;
  });
  std::vector<BigRational> load(static_cast<std::size_t>(std::max(m_r, 0)));
  result.shared_assignment.resize(load.size());
  for (TaskId i : order) {
    const BigRational need =
        use_density ? system[i].density() : system[i].utilization();
    bool placed = false;
    for (std::size_t k = 0; k < load.size(); ++k) {
      if (load[k] + need <= BigRational(1)) {
        load[k] += need;
        result.shared_assignment[k].push_back(i);
        placed = true;
        break;
      }
    }
    if (!placed) {
      result.failure = BaselineFailure::kSharedPhase;
      return result;  // success == false
    }
  }
  result.shared_processors = m_r;
  result.success = true;
  return result;
}

}  // namespace

FederatedBaselineResult li_federated_implicit(const TaskSystem& system,
                                              int m) {
  FEDCONS_EXPECTS(m >= 1);
  FEDCONS_EXPECTS_MSG(system.deadline_class() == DeadlineClass::kImplicit,
                      "li_federated_implicit requires implicit deadlines");
  std::vector<TaskId> high, low;
  for (TaskId i = 0; i < system.size(); ++i) {
    (system[i].is_high_utilization() ? high : low).push_back(i);
  }
  return run_baseline(system, m, high, low, /*use_density=*/false);
}

FederatedBaselineResult li_federated_constrained_adaptation(
    const TaskSystem& system, int m) {
  FEDCONS_EXPECTS(m >= 1);
  FEDCONS_EXPECTS_MSG(system.deadline_class() != DeadlineClass::kArbitrary,
                      "constrained-deadline adaptation requires D <= T");
  std::vector<TaskId> high, low;
  for (TaskId i = 0; i < system.size(); ++i) {
    (system[i].is_high_density() ? high : low).push_back(i);
  }
  return run_baseline(system, m, high, low, /*use_density=*/true);
}

}  // namespace fedcons
