#include "fedcons/federated/sensitivity.h"

#include <cmath>

#include "fedcons/util/check.h"

namespace fedcons {

namespace {

/// Dag with every WCET scaled to ⌈α·e_v⌉ (min 1).
Dag scale_dag(const Dag& dag, double alpha) {
  Dag g;
  for (VertexId v = 0; v < dag.num_vertices(); ++v) {
    double scaled = std::ceil(static_cast<double>(dag.wcet(v)) * alpha);
    g.add_vertex(std::max<Time>(1, static_cast<Time>(scaled)));
  }
  for (VertexId v = 0; v < dag.num_vertices(); ++v) {
    for (VertexId w : dag.successors(v)) g.add_edge(v, w);
  }
  return g;
}

/// Largest accepted scale on the grid [1, max_scale] under `accepts`,
/// bisection followed by a downward verification walk; 0.0 when α = 1 is
/// rejected, max_scale when even that is accepted.
double max_accepted_scale(const std::function<bool(double)>& accepts,
                          double max_scale, double resolution) {
  if (!accepts(1.0)) return 0.0;
  if (accepts(max_scale)) return max_scale;
  double lo = 1.0;         // accepted
  double hi = max_scale;   // rejected
  while (hi - lo > resolution) {
    double mid = 0.5 * (lo + hi);
    if (accepts(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  // Walk down until actually accepted (guards against non-monotone pockets).
  double alpha = lo;
  while (alpha > 1.0 && !accepts(alpha)) alpha -= resolution;
  return alpha < 1.0 ? 1.0 : alpha;
}

}  // namespace

TaskSystem scale_task_wcets(const TaskSystem& system, TaskId target,
                            double alpha) {
  FEDCONS_EXPECTS(target < system.size());
  FEDCONS_EXPECTS(alpha > 0.0);
  TaskSystem out;
  for (TaskId i = 0; i < system.size(); ++i) {
    const DagTask& t = system[i];
    Dag g = (i == target) ? scale_dag(t.graph(), alpha) : t.graph();
    out.add(DagTask(std::move(g), t.deadline(), t.period(), t.name()));
  }
  return out;
}

std::vector<TaskMargin> wcet_sensitivity(const TaskSystem& system, int m,
                                         const SensitivityTest& test,
                                         double max_scale,
                                         double resolution) {
  FEDCONS_EXPECTS(m >= 1);
  FEDCONS_EXPECTS(max_scale >= 1.0);
  FEDCONS_EXPECTS(resolution > 0.0);
  std::vector<TaskMargin> out;
  out.reserve(system.size());
  for (TaskId i = 0; i < system.size(); ++i) {
    auto accepts = [&](double alpha) {
      return test(scale_task_wcets(system, i, alpha), m);
    };
    out.push_back({i, max_accepted_scale(accepts, max_scale, resolution)});
  }
  return out;
}

double system_wcet_margin(const TaskSystem& system, int m,
                          const SensitivityTest& test, double max_scale,
                          double resolution) {
  FEDCONS_EXPECTS(m >= 1);
  FEDCONS_EXPECTS(max_scale >= 1.0);
  FEDCONS_EXPECTS(resolution > 0.0);
  auto accepts = [&](double alpha) {
    // Uniform WCET growth by α == running on speed-(1/α) processors.
    return test(system.scaled_by_speed(1.0 / alpha), m);
  };
  return max_accepted_scale(accepts, max_scale, resolution);
}

}  // namespace fedcons
