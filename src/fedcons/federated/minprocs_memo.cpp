#include "fedcons/federated/minprocs_memo.h"

#include <algorithm>
#include <utility>

#include "fedcons/obs/metrics.h"
#include "fedcons/util/check.h"
#include "fedcons/util/perf_counters.h"

namespace fedcons {

MinprocsMemo::MinprocsMemo(std::size_t capacity, ListPolicy policy, bool prune)
    : capacity_(capacity), policy_(policy), prune_(prune) {
  FEDCONS_EXPECTS(capacity >= 1);
}

std::optional<MinprocsResult> MinprocsMemo::replay(
    const Entry& entry, int max_processors,
    MinprocsProvenance* provenance) const {
  if (provenance != nullptr) {
    *provenance = MinprocsProvenance{};
    provenance->scan_lb = entry.scan_lb;
    provenance->scan_cap = entry.scan_cap;
    provenance->max_processors = max_processors;
  }
  if (entry.len_exceeds_deadline) {
    // The real call returns before any probe; only the provenance header is
    // populated (mirrors minprocs()'s early exit).
    if (provenance != nullptr) provenance->len_exceeds_deadline = true;
    return std::nullopt;
  }

  const bool found = entry.mu <= max_processors;
  // Probes the real scan would have run: all of [lb, μ] on success, the
  // prefix [lb, last] on exhaustion. On exhaustion μ > m_r and μ ≤ cap give
  // m_r < cap, so last = m_r under both scan modes.
  const std::size_t ran =
      found ? entry.probes.size()
            : static_cast<std::size_t>(
                  std::max(0, max_processors - entry.scan_lb + 1));
  FEDCONS_ASSERT(ran <= entry.probes.size());

  PerfCounters& pc = perf_counters();
  pc.ls_invocations += ran;
  pc.minprocs_scan_iterations += ran;
  if (prune_ && entry.scan_cap < max_processors) {
    // Graham-cap cut: candidates (cap, m_r] never probed (minprocs.cpp).
    pc.ls_probes_pruned += static_cast<std::uint64_t>(
        max_processors - static_cast<int>(std::min<Time>(
                             max_processors, entry.scan_cap)));
  }

  if (provenance != nullptr) {
    provenance->probes.assign(entry.probes.begin(),
                              entry.probes.begin() +
                                  static_cast<std::ptrdiff_t>(ran));
    for (const MinprocsProbeRecord& p : provenance->probes) {
      if (p.makespan < provenance->best_makespan) {
        provenance->best_makespan = p.makespan;
        provenance->best_mu = p.mu;
      }
    }
    if (found) {
      provenance->satisfied = true;
      provenance->chosen_mu = entry.mu;
    }
  }

  if (!found) return std::nullopt;
  obs::observe_minprocs_mu(entry.mu);
  return MinprocsResult{entry.mu, entry.sigma};
}

std::optional<MinprocsResult> MinprocsMemo::lookup(
    const DagTask& task, int max_processors, MinprocsProvenance* provenance,
    bool* was_hit) {
  FEDCONS_EXPECTS(max_processors >= 0);
  const DagHash key = canonical_task_hash(task);

  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);  // mark most recently used
      ++stats_.hits;
      ++perf_counters().minprocs_memo_hits;
      obs::observe_memo_lookup(/*hit=*/true);
      if (was_hit != nullptr) *was_hit = true;
      return replay(lru_.front(), max_processors, provenance);
    }
    ++stats_.misses;
  }
  ++perf_counters().minprocs_memo_misses;
  obs::observe_memo_lookup(/*hit=*/false);
  if (was_hit != nullptr) *was_hit = false;

  // Run the real scan outside the lock (concurrent misses duplicate work
  // benignly). Capture the trajectory locally so the entry keeps it even
  // when the caller didn't ask for provenance.
  MinprocsProvenance trajectory;
  MinprocsOptions options;
  options.prune = prune_;
  options.provenance = &trajectory;
  std::optional<MinprocsResult> result =
      minprocs(task, max_processors, policy_, options);
  if (provenance != nullptr) *provenance = trajectory;

  // Cache only content-determined outcomes: a success pins μ for every m_r;
  // len > D is hopeless for every m_r. An exhausted scan (μ > m_r) is a
  // fact about this m_r only, so it is not cached.
  if (result.has_value() || trajectory.len_exceeds_deadline) {
    Entry entry;
    entry.key = key;
    entry.len_exceeds_deadline = trajectory.len_exceeds_deadline;
    entry.scan_lb = trajectory.scan_lb;
    entry.scan_cap = trajectory.scan_cap;
    if (result.has_value()) {
      entry.mu = result->processors;
      entry.sigma = result->sigma;
      entry.probes = trajectory.probes;
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (index_.find(key) == index_.end()) {  // a racing miss may have won
      lru_.push_front(std::move(entry));
      index_[key] = lru_.begin();
      if (lru_.size() > capacity_) {
        index_.erase(lru_.back().key);
        lru_.pop_back();
        ++stats_.evictions;
      }
    }
  }
  return result;
}

MinprocsMemoStats MinprocsMemo::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t MinprocsMemo::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

void MinprocsMemo::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

}  // namespace fedcons
