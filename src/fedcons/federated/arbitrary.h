// Federated scheduling of ARBITRARY-deadline sporadic DAG systems — the
// extension the paper names as future work (§V: "quite a bit more
// challenging … a straightforward application of List Scheduling can no
// longer be used", because with D > T consecutive dag-jobs of one task can
// be live simultaneously).
//
// Two sound strategies are implemented (this is an extension beyond the
// paper; both are proved sound in the comments below and validated by the
// integration tests and experiment E9):
//
//  * kClampToPeriod — analyze every task with D' = min(D, T) and run plain
//    FEDCONS. Sound: meeting the tighter deadline implies meeting the
//    original. Simple but pessimistic — it ignores exactly the slack that
//    arbitrary deadlines add.
//
//  * kPipelined — for each high-density task, build an LS template σ on μ
//    processors with makespan L ≤ D, then dedicate k = ⌈L / T⌉ IDENTICAL
//    cluster instances (k·μ processors total) used round-robin: dag-job j
//    replays σ on instance (j mod k).
//    Soundness: an instance is busy for at most L after a dag-job starts,
//    and consecutive dag-jobs routed to the same instance are released at
//    least k·T ≥ L apart — so every dag-job starts replaying σ immediately
//    at its release and completes within L ≤ D. The processor count per
//    task is minimized by scanning μ and picking the (k(μ)·μ)-cheapest
//    configuration.
//    Low-density tasks go through PARTITION with the FULL Baruah–Fisher
//    predicate, which remains sound for arbitrary deadlines: DBF* ≥ DBF for
//    every deadline model, Σ DBF* is piecewise linear with breakpoints at
//    task deadlines, and the utilization check caps its slope at 1, so
//    checking every breakpoint certifies Σ DBF(t) ≤ t for all t.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "fedcons/core/task_system.h"
#include "fedcons/federated/fedcons_algorithm.h"

namespace fedcons {

enum class ArbitraryStrategy { kClampToPeriod, kPipelined };

[[nodiscard]] const char* to_string(ArbitraryStrategy s) noexcept;

/// A replicated ("pipelined") cluster serving one high-density task.
struct PipelinedCluster {
  TaskId task = 0;
  int first_processor = 0;        ///< global index of the block's start
  int processors_per_instance = 0;  ///< μ
  int instances = 0;              ///< k = ⌈makespan / T⌉
  TemplateSchedule sigma;         ///< replayed on every instance
  [[nodiscard]] int total_processors() const noexcept {
    return processors_per_instance * instances;
  }
};

/// Result of arbitrary-deadline federated scheduling.
struct ArbitraryFederatedResult {
  bool success = false;
  ArbitraryStrategy strategy = ArbitraryStrategy::kPipelined;
  std::optional<TaskId> failed_task;

  std::vector<PipelinedCluster> clusters;  ///< one per high-density task
  int shared_processors = 0;
  int first_shared_processor = 0;
  std::vector<std::vector<TaskId>> shared_assignment;

  [[nodiscard]] std::string describe(const TaskSystem& system) const;
};

/// Schedule an arbitrary-deadline system on m processors. Also accepts
/// constrained/implicit systems (where kPipelined degenerates to FEDCONS:
/// every k == 1). Preconditions: m >= 1.
[[nodiscard]] ArbitraryFederatedResult arbitrary_federated_schedule(
    const TaskSystem& system, int m,
    ArbitraryStrategy strategy = ArbitraryStrategy::kPipelined,
    const FedconsOptions& options = {});

/// Convenience verdict.
[[nodiscard]] inline bool arbitrary_federated_schedulable(
    const TaskSystem& system, int m,
    ArbitraryStrategy strategy = ArbitraryStrategy::kPipelined) {
  return arbitrary_federated_schedule(system, m, strategy).success;
}

}  // namespace fedcons
