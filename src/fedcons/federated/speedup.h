// Empirical speedup measurement (experiments E2 and E4).
//
// Speedup bounds (paper, Definition 1) compare an algorithm on speed-b
// processors against an optimal clairvoyant scheduler on unit-speed
// processors. Empirically we measure, per task system, the minimum processor
// speed s at which a given acceptance test admits the system; normalized
// against the necessary-condition feasibility proxy this estimates how
// conservative the 3 − 1/m worst-case bound is in practice.
//
// Speed-s processors are modelled by scaling every WCET to ⌈e_v/s⌉
// (DagTask::scaled_by_speed) — conservative: the scaled system is never
// easier than the ideal fractional scaling, so measured speedups are upper
// bounds on the true ones.
//
// Acceptance in s is *typically* monotone but not provably so for
// LS-makespan-based tests (Graham anomalies with respect to execution-time
// scaling). min_speed therefore bisects to a candidate and then walks the
// grid downward to the lowest accepted point, guaranteeing the returned
// speed is accepted and that no smaller grid point below it is.
#pragma once

#include <functional>
#include <optional>

#include "fedcons/core/task_system.h"

namespace fedcons {

/// An acceptance test: does `system` pass on m unit-speed processors?
using AcceptanceTest = std::function<bool(const TaskSystem&, int m)>;

/// Minimum speed s in [1, max_speed] (to within `resolution`) at which
/// `test` accepts the system on m speed-s processors, or nullopt when even
/// max_speed is rejected. Preconditions: m >= 1, max_speed >= 1,
/// resolution > 0.
[[nodiscard]] std::optional<double> min_speed(const TaskSystem& system, int m,
                                              const AcceptanceTest& test,
                                              double max_speed = 8.0,
                                              double resolution = 1.0 / 64.0);

/// The paper's Theorem 1 worst-case bound for FEDCONS on m processors.
[[nodiscard]] inline double fedcons_speedup_bound(int m) {
  return 3.0 - 1.0 / static_cast<double>(m);
}

}  // namespace fedcons
