// Content-addressed MINPROCS memo cache — the per-task half of the online
// admission engine (online/admission_session.h).
//
// MINPROCS is a pure function of task *content* (graph topology + WCETs +
// D/T) plus the scan configuration (list policy, prune flag): the remaining
// processor count m_r only decides whether the content-determined μ is
// affordable. The memo therefore keys entries by canonical_task_hash
// (core/dag_hash.h) and stores the content-determined scan outcome — μ, the
// template schedule σ, and the full probe trajectory — answering later
// lookups for ANY m_r from the entry:
//
//   μ ≤ m_r  → MinprocsResult{μ, σ}       (the scan would have found μ)
//   μ > m_r  → nullopt                    (the scan would have exhausted m_r)
//
// Counter contract: a hit credits the exact logical counters the real scan
// would have paid for that (task, m_r) — one ls_invocations and one
// minprocs_scan_iterations per probe the scan would have run, ls_probes_pruned
// for the Graham-cap cut, and the observe_minprocs_mu sample on success — so
// every counter downstream of the session is invariant under caching. The
// cache-effect counters minprocs_memo_hits/minprocs_memo_misses and the obs
// metrics registry's memo_hits/memo_misses expose the savings.
//
// Provenance contract: entries store the miss-time probe trajectory, so a hit
// can reconstruct the same MinprocsProvenance the real scan would have
// produced (truncated to the probes a smaller m_r would have run). The
// AdmissionSession marks such records as served-from-cache for --explain.
//
// Thread safety: all public members are mutex-guarded. A miss releases the
// lock while the scan runs, so concurrent misses may duplicate work (the
// second insert wins benignly); counters stay per-thread exact either way.
//
// One memo instance is bound to one (policy, prune) configuration; sharing an
// instance across sessions with different scan options is a caller error.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "fedcons/core/dag_hash.h"
#include "fedcons/federated/minprocs.h"

namespace fedcons {

/// Lifetime totals of one memo instance (monotone; snapshot under the lock).
struct MinprocsMemoStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
};

class MinprocsMemo {
 public:
  static constexpr std::size_t kDefaultCapacity = 1024;

  explicit MinprocsMemo(std::size_t capacity = kDefaultCapacity,
                        ListPolicy policy = ListPolicy::kVertexOrder,
                        bool prune = true);

  MinprocsMemo(const MinprocsMemo&) = delete;
  MinprocsMemo& operator=(const MinprocsMemo&) = delete;

  /// Drop-in for minprocs(task, max_processors, policy, {prune, provenance}):
  /// identical verdicts, μ, σ, logical counters, and provenance trajectory.
  /// `was_hit`, when non-null, reports whether the answer came from cache.
  [[nodiscard]] std::optional<MinprocsResult> lookup(
      const DagTask& task, int max_processors,
      MinprocsProvenance* provenance = nullptr, bool* was_hit = nullptr);

  [[nodiscard]] MinprocsMemoStats stats() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] ListPolicy policy() const noexcept { return policy_; }
  [[nodiscard]] bool prune() const noexcept { return prune_; }
  void clear();

 private:
  /// Content-determined scan outcome. Either the task is hopeless at any μ
  /// (len > D) or μ = `mu` with σ and the complete probe list [lb, mu].
  struct Entry {
    DagHash key;
    bool len_exceeds_deadline = false;
    int mu = 0;
    int scan_lb = 0;
    Time scan_cap = 0;
    TemplateSchedule sigma;
    std::vector<MinprocsProbeRecord> probes;
  };
  using Lru = std::list<Entry>;

  /// Replay an entry for the given m_r: credit logical counters, rebuild the
  /// provenance record, and return the scan's verdict.
  std::optional<MinprocsResult> replay(const Entry& entry, int max_processors,
                                       MinprocsProvenance* provenance) const;

  const std::size_t capacity_;
  const ListPolicy policy_;
  const bool prune_;

  mutable std::mutex mu_;
  Lru lru_;  ///< front = most recently used
  std::unordered_map<DagHash, Lru::iterator> index_;
  MinprocsMemoStats stats_;
};

}  // namespace fedcons
