#include "fedcons/federated/arbitrary.h"

#include <algorithm>
#include <sstream>

#include "fedcons/federated/minprocs.h"
#include "fedcons/federated/partition.h"
#include "fedcons/listsched/list_scheduler.h"
#include "fedcons/util/check.h"

namespace fedcons {

const char* to_string(ArbitraryStrategy s) noexcept {
  switch (s) {
    case ArbitraryStrategy::kClampToPeriod: return "clamp-to-period";
    case ArbitraryStrategy::kPipelined: return "pipelined";
  }
  return "?";
}

namespace {

/// Clamp every task's deadline to min(D, T) and run plain FEDCONS.
ArbitraryFederatedResult run_clamped(const TaskSystem& system, int m,
                                     const FedconsOptions& options) {
  std::vector<DagTask> clamped;
  clamped.reserve(system.size());
  for (const auto& t : system) {
    Dag g = t.graph();  // copy; DagTask is immutable by design
    clamped.emplace_back(std::move(g), std::min(t.deadline(), t.period()),
                         t.period(), t.name());
  }
  FedconsResult inner = fedcons_schedule(TaskSystem(std::move(clamped)), m,
                                         options);
  ArbitraryFederatedResult result;
  result.strategy = ArbitraryStrategy::kClampToPeriod;
  result.success = inner.success;
  result.failed_task = inner.failed_task;
  for (auto& c : inner.clusters) {
    result.clusters.push_back(PipelinedCluster{
        c.task, c.first_processor, c.num_processors, 1, std::move(c.sigma)});
  }
  result.shared_processors = inner.shared_processors;
  result.first_shared_processor = inner.first_shared_processor;
  result.shared_assignment = std::move(inner.shared_assignment);
  return result;
}

/// Cheapest pipelined configuration for one high-density task within a
/// processor budget: minimize k(μ)·μ, tie-break on smaller makespan.
std::optional<PipelinedCluster> best_pipelined(const DagTask& task,
                                               int budget,
                                               ListPolicy policy) {
  if (task.len() > task.deadline()) return std::nullopt;
  std::optional<PipelinedCluster> best;
  Time best_makespan = 0;
  for (int mu = 1; mu <= budget; ++mu) {
    TemplateSchedule sigma = list_schedule(task.graph(), mu, policy);
    const Time makespan = sigma.makespan();
    if (makespan > task.deadline()) continue;
    const int k = static_cast<int>(ceil_div(makespan, task.period()));
    const int cost = k * mu;
    if (cost > budget) continue;
    if (!best || cost < best->total_processors() ||
        (cost == best->total_processors() && makespan < best_makespan)) {
      PipelinedCluster c;
      c.processors_per_instance = mu;
      c.instances = k;
      c.sigma = std::move(sigma);
      best_makespan = makespan;
      best = std::move(c);
    }
    // μ beyond vol's parallelism cannot improve further once makespan == len.
    if (makespan == task.len() && best) break;
  }
  return best;
}

ArbitraryFederatedResult run_pipelined(const TaskSystem& system, int m,
                                       const FedconsOptions& options) {
  ArbitraryFederatedResult result;
  result.strategy = ArbitraryStrategy::kPipelined;
  int m_r = m;
  int next_proc = 0;

  for (TaskId i : system.high_density_tasks()) {
    auto best = best_pipelined(system[i], m_r, options.list_policy);
    if (!best.has_value()) {
      result.success = false;
      result.failed_task = i;
      return result;
    }
    best->task = i;
    best->first_processor = next_proc;
    next_proc += best->total_processors();
    m_r -= best->total_processors();
    result.clusters.push_back(std::move(*best));
  }

  // Low-density tasks: PARTITION, forced to the full (arbitrary-deadline
  // sound) predicate regardless of the caller's variant choice.
  const auto low = system.low_density_tasks();
  std::vector<SporadicTask> seq;
  seq.reserve(low.size());
  for (TaskId i : low) seq.push_back(system[i].to_sequential());
  PartitionOptions popt = options.partition;
  popt.variant = PartitionVariant::kFull;
  PartitionResult part = partition_tasks(seq, m_r, popt);
  if (!part.success) {
    result.success = false;
    if (part.failed_task < low.size()) {
      result.failed_task = low[part.failed_task];
    }
    return result;
  }
  result.success = true;
  result.shared_processors = m_r;
  result.first_shared_processor = next_proc;
  result.shared_assignment.resize(part.assignment.size());
  for (std::size_t k = 0; k < part.assignment.size(); ++k) {
    for (std::size_t idx : part.assignment[k]) {
      result.shared_assignment[k].push_back(low[idx]);
    }
  }
  return result;
}

}  // namespace

ArbitraryFederatedResult arbitrary_federated_schedule(
    const TaskSystem& system, int m, ArbitraryStrategy strategy,
    const FedconsOptions& options) {
  FEDCONS_EXPECTS(m >= 1);
  switch (strategy) {
    case ArbitraryStrategy::kClampToPeriod:
      return run_clamped(system, m, options);
    case ArbitraryStrategy::kPipelined:
      return run_pipelined(system, m, options);
  }
  FEDCONS_ASSERT(false);
  return {};
}

std::string ArbitraryFederatedResult::describe(
    const TaskSystem& system) const {
  std::ostringstream os;
  os << "ARBFED[" << to_string(strategy) << "]: "
     << (success ? "SUCCESS" : "FAILURE");
  if (!success && failed_task.has_value()) {
    os << " (task τ" << *failed_task + 1 << ")";
  }
  os << "\n";
  if (!success) return os.str();
  for (const auto& c : clusters) {
    os << "  τ" << c.task + 1 << ": " << c.instances << " instance(s) × "
       << c.processors_per_instance << " proc(s) = " << c.total_processors()
       << " processors starting at " << c.first_processor << ", σ makespan "
       << c.sigma.makespan() << " (D=" << system[c.task].deadline()
       << ", T=" << system[c.task].period() << ")\n";
  }
  os << "  shared pool: " << shared_processors << " processor(s)\n";
  return os.str();
}

}  // namespace fedcons
