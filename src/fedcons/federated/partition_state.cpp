#include "fedcons/federated/partition_state.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "fedcons/analysis/edf_uniproc.h"
#include "fedcons/obs/metrics.h"
#include "fedcons/simd/dbf_kernel.h"
#include "fedcons/util/check.h"
#include "fedcons/util/perf_counters.h"

namespace fedcons {

bool partition_uses_aggregates(const PartitionOptions& options) {
  // The aggregate models the 1-point approximation exactly, so kFull
  // qualifies only at dbf_points == 1 (the default); larger point counts and
  // the exact-EDF probe use the legacy recompute-per-probe paths.
  if (!options.incremental) return false;
  switch (options.variant) {
    case PartitionVariant::kPaperLiteral: return true;
    case PartitionVariant::kFull: return std::max(1, options.dbf_points) == 1;
    case PartitionVariant::kExactEdf: return false;
  }
  return false;
}

namespace {

/// Fill a demand-rejection diagnosis (no-op on nullptr): the failing DBF*
/// breakpoint plus the exact demand-vs-capacity comparison.
void diagnose_demand(BinAttemptRecord* diag, const BigRational& demand,
                     Time breakpoint) {
  if (diag == nullptr) return;
  diag->reason = BinRejectReason::kDemand;
  diag->breakpoint = breakpoint;
  diag->detail = "DBF* demand " + demand.to_string() + " > capacity " +
                 std::to_string(breakpoint) + " at breakpoint t=" +
                 std::to_string(breakpoint);
}

/// Exact Σ_bin DBF* + candidate term at bp — the certified scan's fallback
/// and diagnosis source. Uncounted: the scan owns every counter credit, so
/// re-deriving a lane exactly cannot double-bill it.
BigRational exact_probe_demand(const DbfStarAggregate& agg,
                               const SporadicTask& t, Time bp,
                               bool paper_literal) {
  BigRational sum = agg.sum_at_uncounted(bp);
  if (paper_literal) {
    sum += BigRational(t.wcet);
  } else {
    BigInt num =
        BigInt(t.wcet) * BigInt(checked_add(t.period, bp - t.deadline));
    sum += BigRational(std::move(num), BigInt(t.period));
  }
  return sum;
}

/// The aggregate acceptance probe, decided through the certified-double
/// kernel (simd/dbf_kernel.h). Walks the identical breakpoint sequence the
/// exact loop walks — D_cand, then every distinct member deadline above it
/// (kFull; kPaperLiteral checks D_cand only) — stopping at the first
/// violation, with identical verdicts, rejection diagnoses, and
/// dbf_star_evaluations credits (size()+1 per breakpoint checked for kFull,
/// size() for kPaperLiteral: the candidate term is uncounted there, matching
/// the legacy paths). Lanes the margin cannot separate fall back to the
/// exact rational comparison, so only the arithmetic route — never the
/// decision — depends on floating point.
bool certified_demand_scan(const DbfStarAggregate& agg, const SporadicTask& t,
                           bool paper_literal, BinAttemptRecord* diag) {
  const std::size_t n = agg.size();
  const std::uint64_t credit =
      static_cast<std::uint64_t>(n) + (paper_literal ? 0 : 1);
  const simd::DbfCand cand =
      paper_literal ? simd::dbf_constant_term(t.wcet)
                    : simd::dbf_affine_term(t.wcet, t.deadline, t.period);
  const double eps_n = simd::kDbfEps * static_cast<double>(n + 16);

  std::uint64_t checked = 0;
  std::uint64_t vectorized = 0;
  // Scan SoA lanes [begin, end); time_at maps a lane index to its exact Time
  // breakpoint (lane doubles may be poisoned, the Times never are).
  const auto scan = [&](const double* bp, const double* A, const double* B,
                        const double* M, int begin, int end,
                        auto time_at) -> bool {
    int i = begin;
    while (i < end) {
      simd::LaneClass cls;
      const int stop = simd::dbf_scan(bp, A, B, M, i, end, cand, eps_n, &cls);
      checked += static_cast<std::uint64_t>(stop - i);
      vectorized += static_cast<std::uint64_t>(stop - i);
      if (stop == end) return true;  // every remaining lane certainly fits
      ++checked;
      const Time bpt = time_at(stop);
      if (cls == simd::LaneClass::kReject) {
        ++vectorized;
        if (diag != nullptr) {
          diagnose_demand(diag, exact_probe_demand(agg, t, bpt, paper_literal),
                          bpt);
        }
        return false;
      }
      // Uncertain: decide this one lane exactly, then resume after it.
      const BigRational sum = exact_probe_demand(agg, t, bpt, paper_literal);
      if (!(sum <= BigRational(bpt))) {
        diagnose_demand(diag, sum, bpt);
        return false;
      }
      i = stop + 1;
    }
    return true;
  };

  // Head lane: bp = D_cand against the member prefix with D_j ≤ D_cand.
  const auto dds = agg.distinct_deadlines();
  const auto pa = agg.soa_prefix_a();
  const auto pb = agg.soa_prefix_b();
  const auto pm = agg.soa_prefix_mag();
  const int k0 =
      static_cast<int>(std::upper_bound(dds.begin(), dds.end(), t.deadline) -
                       dds.begin()) -
      1;
  double hbp = static_cast<double>(t.deadline);
  double ha = k0 >= 0 ? pa[static_cast<std::size_t>(k0)] : 0.0;
  double hb = k0 >= 0 ? pb[static_cast<std::size_t>(k0)] : 0.0;
  double hm = k0 >= 0 ? pm[static_cast<std::size_t>(k0)] : 0.0;
  if (t.deadline < 0 || t.deadline > simd::kDbfMaxMagnitude) {
    hm = std::numeric_limits<double>::infinity();  // bp not exact: poison
  }
  bool ok = scan(&hbp, &ha, &hb, &hm, 0, 1, [&](int) { return t.deadline; });
  if (ok && !paper_literal) {
    ok = scan(agg.soa_breakpoints().data(), pa.data(), pb.data(), pm.data(),
              k0 + 1, static_cast<int>(dds.size()),
              [&](int j) { return dds[static_cast<std::size_t>(j)]; });
  }
  perf_counters().dbf_star_evaluations += checked * credit;
  perf_counters().simd_breakpoints_vectorized += vectorized;
  return ok;
}

}  // namespace

const BigRational PartitionState::kZeroUtil{};

PartitionState::PartitionState(int num_bins, const PartitionOptions& options)
    : options_(options) {
  FEDCONS_EXPECTS(num_bins >= 0);
  bins_.resize(static_cast<std::size_t>(num_bins));
}

void PartitionState::set_num_bins(int n) {
  FEDCONS_EXPECTS(n >= 0);
  const std::size_t target = static_cast<std::size_t>(n);
  for (std::size_t k = target; k < bins_.size(); ++k) {
    FEDCONS_EXPECTS_MSG(bins_[k].ids.empty(),
                        "PartitionState::set_num_bins: cut bin not empty");
  }
  bins_.resize(target);
}

bool PartitionState::fits(int bin, const SporadicTask& t,
                          BinAttemptRecord* diag) const {
  FEDCONS_EXPECTS(bin >= 0 && bin < num_bins());
  const Bin& b = bins_[static_cast<std::size_t>(bin)];

  if (options_.variant == PartitionVariant::kExactEdf) {
    trial_scratch_.clear();
    trial_scratch_.reserve(b.tasks.size() + 1);
    for (const SporadicTask& m : b.tasks) trial_scratch_.push_back(m);
    trial_scratch_.push_back(t);
    if (edf_schedulable(trial_scratch_)) return true;
    if (diag != nullptr) {
      diag->reason = BinRejectReason::kExactEdf;
      diag->detail = "exact EDF test rejects bin ∪ {candidate}";
    }
    return false;
  }

  if (options_.variant == PartitionVariant::kPaperLiteral) {
    // The paper's Fig. 4 line 3, verbatim:
    //   Σ_j DBF*(τ_j, D_i) + vol_i ≤ D_i.
    if (partition_uses_aggregates(options_)) {
      return certified_demand_scan(b.demand, t, /*paper_literal=*/true, diag);
    }
    BigRational sum(t.wcet);
    for (const SporadicTask& m : b.tasks) sum += dbf_approx(m, t.deadline);
    if (sum <= BigRational(t.deadline)) return true;
    diagnose_demand(diag, sum, t.deadline);
    return false;
  }

  // kFull — Baruah–Fisher with a k-point demand approximation:
  // long-run capacity first…
  bool util_reject;
  if (partition_uses_aggregates(options_)) {
    // Certified-double screen over the bin's double utilization fold (same
    // margin family as the demand kernel; exact fallback inside the band).
    const double us =
        (b.util_prefix_d.empty() ? 0.0 : b.util_prefix_d.back()) +
        simd::util_term(t.wcet, t.period);
    const double uerr = simd::kDbfEps *
                        static_cast<double>(b.tasks.size() + 16) * us;
    if (us + uerr <= 1.0) {
      util_reject = false;
    } else if (us - uerr > 1.0) {
      util_reject = true;
    } else {
      util_reject = bin_utilization(bin) + t.utilization() > BigRational(1);
    }
  } else {
    util_reject = bin_utilization(bin) + t.utilization() > BigRational(1);
  }
  if (util_reject) {
    if (diag != nullptr) {
      diag->reason = BinRejectReason::kUtilization;
      diag->detail = "utilization " +
                     (bin_utilization(bin) + t.utilization()).to_string() +
                     " > 1 with candidate";
    }
    return false;
  }
  // …then the demand condition at every slope breakpoint of the summed
  // k-point approximation over bin ∪ {candidate}. Between breakpoints the
  // sum is linear with slope ≤ Σu ≤ 1 (checked above), so breakpoint
  // verification certifies all t. Breakpoints strictly below the candidate's
  // deadline are unchanged by the placement (the candidate contributes 0
  // there) and were certified when their tasks were admitted.
  if (partition_uses_aggregates(options_)) {
    // points == 1: breakpoints are exactly the deadlines of bin ∪ {cand},
    // evaluated ≥ D_cand in ascending order — D_cand itself (dedup'd with
    // equal member deadlines), then every member deadline above it, stopping
    // at the first violation. Decided through the certified kernel.
    return certified_demand_scan(b.demand, t, /*paper_literal=*/false, diag);
  }
  const int points = std::max(1, options_.dbf_points);
  std::vector<SporadicTask> members;
  members.reserve(b.tasks.size() + 1);
  for (const SporadicTask& m : b.tasks) members.push_back(m);
  members.push_back(t);
  Time horizon = 0;
  for (const auto& task : members) {
    horizon = std::max(
        horizon, checked_add(task.deadline,
                             checked_mul(static_cast<Time>(points - 1),
                                         task.period)));
  }
  for (Time bp : dbf_approx_breakpoints(members, points, horizon)) {
    if (bp < t.deadline) continue;
    BigRational sum;
    for (const auto& task : members) sum += dbf_approx_k(task, bp, points);
    if (sum > BigRational(bp)) {
      diagnose_demand(diag, sum, bp);
      return false;
    }
  }
  return true;
}

int PartitionState::choose_bin(const SporadicTask& t, PlacementRecord* record,
                               std::uint64_t* probed) const {
  int count = 0;
  int chosen = -1;
  for (int k = 0; k < num_bins(); ++k) {
    BinAttemptRecord attempt;
    attempt.bin = k;
    ++count;
    const bool ok = fits(k, t, record != nullptr ? &attempt : nullptr);
    if (record != nullptr) {
      attempt.fits = ok;
      record->attempts.push_back(std::move(attempt));
    }
    if (!ok) continue;
    if (options_.fit == FitStrategy::kFirstFit) {
      chosen = k;
      break;
    }
    if (chosen < 0) {
      chosen = k;
      continue;
    }
    const BigRational& best = bin_utilization(chosen);
    const BigRational& cur = bin_utilization(k);
    if (options_.fit == FitStrategy::kBestFit && best < cur) {
      chosen = k;
    } else if (options_.fit == FitStrategy::kWorstFit && cur < best) {
      chosen = k;
    }
  }
  obs::observe_partition_bins_touched(count);
  if (record != nullptr) record->chosen_bin = chosen;
  if (probed != nullptr) *probed = static_cast<std::uint64_t>(count);
  return chosen;
}

void PartitionState::insert(int bin, std::size_t id, const SporadicTask& t) {
  FEDCONS_EXPECTS(bin >= 0 && bin < num_bins());
  Bin& b = bins_[static_cast<std::size_t>(bin)];
  b.ids.push_back(id);
  b.tasks.push_back(t);
  // Extend the canonical left fold: prefix[i] = prefix[i-1] += u_i, exactly
  // the accumulation sequence the batch loop performs.
  BigRational acc = b.util_prefix.empty() ? kZeroUtil : b.util_prefix.back();
  acc += t.utilization();
  b.util_prefix.push_back(std::move(acc));
  b.util_prefix_d.push_back(
      (b.util_prefix_d.empty() ? 0.0 : b.util_prefix_d.back()) +
      simd::util_term(t.wcet, t.period));
  if (partition_uses_aggregates(options_)) b.demand.insert(t);
}

void PartitionState::remove(int bin, std::size_t id) {
  FEDCONS_EXPECTS(bin >= 0 && bin < num_bins());
  Bin& b = bins_[static_cast<std::size_t>(bin)];
  // Search from the back: online rollbacks unplace in reverse placement
  // order, so the match is typically the last element.
  std::size_t idx = b.ids.size();
  for (std::size_t j = b.ids.size(); j-- > 0;) {
    if (b.ids[j] == id) {
      idx = j;
      break;
    }
  }
  FEDCONS_EXPECTS_MSG(idx < b.ids.size(),
                      "PartitionState::remove: no such member");
  const SporadicTask departed = b.tasks[idx];
  b.ids.erase(b.ids.begin() + static_cast<std::ptrdiff_t>(idx));
  b.tasks.erase(b.tasks.begin() + static_cast<std::ptrdiff_t>(idx));
  // Refold the utilization prefix from the removal point with the identical
  // left-to-right accumulation, so representations match a fresh build.
  b.util_prefix.resize(b.tasks.size());
  b.util_prefix_d.resize(b.tasks.size());
  for (std::size_t j = idx; j < b.tasks.size(); ++j) {
    BigRational acc = j == 0 ? kZeroUtil : b.util_prefix[j - 1];
    acc += b.tasks[j].utilization();
    b.util_prefix[j] = std::move(acc);
    b.util_prefix_d[j] =
        (j == 0 ? 0.0 : b.util_prefix_d[j - 1]) +
        simd::util_term(b.tasks[j].wcet, b.tasks[j].period);
  }
  if (partition_uses_aggregates(options_)) b.demand.remove(departed);
}

const std::vector<std::size_t>& PartitionState::bin_ids(int k) const {
  FEDCONS_EXPECTS(k >= 0 && k < num_bins());
  return bins_[static_cast<std::size_t>(k)].ids;
}

const BigRational& PartitionState::bin_utilization(int k) const {
  FEDCONS_EXPECTS(k >= 0 && k < num_bins());
  const Bin& b = bins_[static_cast<std::size_t>(k)];
  return b.util_prefix.empty() ? kZeroUtil : b.util_prefix.back();
}

const DbfStarAggregate& PartitionState::bin_demand(int k) const {
  FEDCONS_EXPECTS(k >= 0 && k < num_bins());
  return bins_[static_cast<std::size_t>(k)].demand;
}

std::size_t PartitionState::total_members() const noexcept {
  std::size_t n = 0;
  for (const Bin& b : bins_) n += b.ids.size();
  return n;
}

IncrementalPartition::IncrementalPartition(int num_bins,
                                           const PartitionOptions& options)
    : options_(options), state_(num_bins, options) {}

bool IncrementalPartition::ordered_before(const SporadicTask& a,
                                          const SporadicTask& b) const {
  switch (options_.order) {
    case PartitionOrder::kDeadlineMonotonic: return a.deadline < b.deadline;
    case PartitionOrder::kDensityDescending: return b.density() < a.density();
    case PartitionOrder::kUtilizationDescending:
      return b.utilization() < a.utilization();
  }
  return false;
}

std::size_t IncrementalPartition::position_of(std::size_t id) const {
  for (std::size_t i = 0; i < order_.size(); ++i) {
    if (order_[i].id == id) return i;
  }
  FEDCONS_EXPECTS_MSG(false, "IncrementalPartition: no resident with that id");
  return order_.size();
}

void IncrementalPartition::rollback(std::size_t pos) {
  // Reverse placement order, so each aggregate removal peels the most recent
  // member (cheap) and the state retraces the insert sequence exactly.
  for (std::size_t i = order_.size(); i-- > pos;) {
    Placement& p = order_[i];
    if (p.bin >= 0) state_.remove(p.bin, p.id);
    p.prev_bin = p.bin;
    p.bin = -1;
  }
}

PartitionEvent IncrementalPartition::replay(std::size_t pos,
                                            std::vector<char> dirty) {
  const int nb = state_.num_bins();
  dirty.resize(static_cast<std::size_t>(nb), 0);
  fail_at_ = std::nullopt;

  PartitionEvent ev;
  for (std::size_t i = pos; i < order_.size(); ++i) {
    Placement& p = order_[i];
    ++ev.placements_replayed;
    int chosen = -1;
    std::uint64_t probes_here = 0;
    if (options_.fit == FitStrategy::kFirstFit && p.prev_bin >= 0 &&
        p.prev_bin < nb) {
      // Delta fast path: in the pre-event timeline this placement rejected
      // every bin below prev_bin and accepted prev_bin. A clean bin holds
      // exactly the members it held at this point of that timeline, so its
      // verdict stands without re-probing; only dirty bins (and, if prev_bin
      // flips to reject, the never-probed bins above it) are evaluated.
      for (int k = 0; k < nb; ++k) {
        const bool clean = dirty[static_cast<std::size_t>(k)] == 0;
        if (k < p.prev_bin && clean) continue;  // rejection stands
        if (k == p.prev_bin && clean) {         // acceptance stands
          chosen = k;
          break;
        }
        ++probes_here;
        if (state_.fits(k, p.task)) {
          chosen = k;
          break;
        }
      }
    } else {
      // New task, unplaced entry, non-first-fit, or a bin that no longer
      // exists: run the full selection loop.
      chosen = state_.choose_bin(p.task, nullptr, &probes_here);
    }
    ev.bins_revalidated += probes_here;
    if (chosen < 0) {
      fail_at_ = i;
      break;
    }
    if (chosen != p.prev_bin) {
      dirty[static_cast<std::size_t>(chosen)] = 1;
      if (p.prev_bin >= 0 && p.prev_bin < nb) {
        dirty[static_cast<std::size_t>(p.prev_bin)] = 1;
      }
    }
    state_.insert(chosen, p.id, p.task);
    p.bin = chosen;
  }

  // Normalize: the post-event state is the next event's reference timeline.
  for (std::size_t i = pos; i < order_.size(); ++i) {
    order_[i].prev_bin = order_[i].bin;
  }
  perf_counters().partition_bins_revalidated += ev.bins_revalidated;
  ev.ok = ok();
  if (!ev.ok) ev.failed_id = *failed_id();
  return ev;
}

PartitionEvent IncrementalPartition::replay_lazy(std::size_t pos,
                                                 std::vector<char> dirty) {
  // `dirty` is directional here: 0 = untouched, kGrew = the bin only gained
  // demand since the pre-event timeline, kShrunk = it lost (or both). The
  // distinction is what makes admissions O(changed-bin): rejection of a
  // *grown* bin stands by first-fit monotonicity (more demand never turns a
  // rejection into an acceptance), so only shrunk bins — and the entry's own
  // bin, whose acceptance needs exact content — are ever re-probed.
  constexpr char kGrew = 1;
  constexpr char kShrunk = 2;
  const int nb = state_.num_bins();
  dirty.resize(static_cast<std::size_t>(nb), 0);
  fail_at_ = std::nullopt;

  // Post-mutation order position of every resident, for on-demand bin
  // synchronization (integer work only — the point of the lazy path is that
  // aggregate/rational work scales with probes, not with the suffix).
  std::unordered_map<std::size_t, std::size_t> pos_of;
  pos_of.reserve(order_.size());
  for (std::size_t i = 0; i < order_.size(); ++i) pos_of[order_[i].id] = i;

  // Bring bin k to the walk frontier: unplace members the walk has not
  // reached yet (they re-seat, or move, when their position comes up).
  // Removal is back-to-front, so every pop is the cheap last-member case of
  // PartitionState::remove. Syncing alone does not dirty a bin — its
  // membership at positions already walked is unchanged, so pre-event
  // decisions about it still stand.
  std::vector<char> synced(static_cast<std::size_t>(nb), 0);
  const auto sync = [&](int k, std::size_t i) {
    char& flag = synced[static_cast<std::size_t>(k)];
    if (flag != 0) return;
    flag = 1;
    while (!state_.bin_ids(k).empty()) {
      const std::size_t id = state_.bin_ids(k).back();
      const std::size_t at = pos_of.at(id);
      if (at < i) break;
      state_.remove(k, id);
      order_[at].bin = -1;
    }
  };

  PartitionEvent ev;
  for (std::size_t i = pos; i < order_.size(); ++i) {
    Placement& p = order_[i];
    ++ev.placements_replayed;
    const int pb = (p.prev_bin >= 0 && p.prev_bin < nb) ? p.prev_bin : -1;

    // Standing decision: rejections below prev_bin hold unless a bin there
    // shrank (clean and grown bins both still reject, by monotonicity), and
    // the acceptance at prev_bin holds iff that bin is untouched.
    bool stands = pb >= 0 && dirty[static_cast<std::size_t>(pb)] == 0;
    for (int k = 0; stands && k < pb; ++k) {
      stands = dirty[static_cast<std::size_t>(k)] != kShrunk;
    }
    if (stands) {
      if (p.bin < 0) state_.insert(pb, p.id, p.task);  // displaced by a sync
      p.bin = pb;
      continue;
    }

    // Something at or below prev_bin diverged (or the entry was never
    // placed): probe, exactly like the eager fast path. The member's own
    // contribution never pollutes a probe: probing a foreign bin doesn't see
    // it, and probing its own bin syncs that bin first, which unplaces it.
    int chosen = -1;
    std::uint64_t probes_here = 0;
    for (int k = 0; k < nb; ++k) {
      const char d = dirty[static_cast<std::size_t>(k)];
      if (pb >= 0) {
        if (k < pb && d != kShrunk) continue;  // rejection stands
        if (k == pb && d == 0) {               // acceptance stands
          chosen = k;
          break;
        }
      }
      sync(k, i);
      ++probes_here;
      if (state_.fits(k, p.task)) {
        chosen = k;
        break;
      }
    }
    // Fresh entries run the full selection loop; feed the same bins-touched
    // metric choose_bin reports on the eager path.
    if (pb < 0) {
      obs::observe_partition_bins_touched(static_cast<int>(probes_here));
    }
    ev.bins_revalidated += probes_here;
    if (chosen < 0) {
      fail_at_ = i;
      break;
    }
    // p.bin is either -1 (fresh, or displaced by a sync) or still prev_bin
    // (acceptance stood, or a dirty bin below prev_bin accepted first). A
    // probed target was synced above, so appending keeps placement order.
    if (p.bin != chosen) {
      if (p.bin >= 0) state_.remove(p.bin, p.id);
      state_.insert(chosen, p.id, p.task);
      p.bin = chosen;
    }
    if (chosen != pb) {
      // The target gained a member (a shrunk bin stays shrunk: gaining does
      // not restore its lost demand); the abandoned bin lost one.
      char& dc = dirty[static_cast<std::size_t>(chosen)];
      if (dc == 0) dc = kGrew;
      if (pb >= 0) dirty[static_cast<std::size_t>(pb)] = kShrunk;
    }
  }

  if (fail_at_.has_value()) {
    // Batch equivalence: the partitioner stops at the failure point, so
    // nothing at or after it is placed.
    for (std::size_t j = *fail_at_; j < order_.size(); ++j) {
      Placement& q = order_[j];
      if (q.bin >= 0) {
        state_.remove(q.bin, q.id);
        q.bin = -1;
      }
    }
  }

  for (std::size_t i = pos; i < order_.size(); ++i) {
    order_[i].prev_bin = order_[i].bin;
  }
  perf_counters().partition_bins_revalidated += ev.bins_revalidated;
  ev.ok = ok();
  if (!ev.ok) ev.failed_id = *failed_id();
  return ev;
}

PartitionEvent IncrementalPartition::admit(std::size_t id,
                                           const SporadicTask& task) {
  for (const Placement& p : order_) {
    FEDCONS_EXPECTS_MSG(p.id != id,
                        "IncrementalPartition::admit: duplicate id");
  }
  const auto it = std::upper_bound(
      order_.begin(), order_.end(), task,
      [this](const SporadicTask& t, const Placement& p) {
        return ordered_before(t, p.task);
      });
  const std::size_t pos = static_cast<std::size_t>(it - order_.begin());

  Placement entry;
  entry.id = id;
  entry.task = task;
  entry.seq = next_seq_++;

  if (fail_at_.has_value() && *fail_at_ < pos) {
    // The batch run fails before ever reaching the new task: it joins the
    // unplaced suffix and the verdict is unchanged.
    order_.insert(order_.begin() + static_cast<std::ptrdiff_t>(pos),
                  std::move(entry));
    PartitionEvent ev;
    ev.ok = false;
    ev.failed_id = *failed_id();
    return ev;
  }

  if (options_.fit == FitStrategy::kFirstFit) {
    order_.insert(order_.begin() + static_cast<std::ptrdiff_t>(pos),
                  std::move(entry));
    return replay_lazy(pos, {});
  }
  rollback(pos);
  order_.insert(order_.begin() + static_cast<std::ptrdiff_t>(pos),
                std::move(entry));
  return replay(pos, {});
}

PartitionEvent IncrementalPartition::remove(std::size_t id) {
  const std::size_t pos = position_of(id);
  const Placement removed = order_[pos];

  if (removed.bin < 0) {
    // Unplaced: either the failure point itself or beyond it.
    FEDCONS_ASSERT(fail_at_.has_value() && pos >= *fail_at_);
    order_.erase(order_.begin() + static_cast<std::ptrdiff_t>(pos));
    if (pos == *fail_at_) {
      // The blocking task is gone; its successors (all unplaced) may now
      // fit. Both replay flavors handle an all-unplaced suffix.
      if (options_.fit == FitStrategy::kFirstFit) return replay_lazy(pos, {});
      return replay(pos, {});
    }
    PartitionEvent ev;
    ev.ok = false;
    ev.failed_id = *failed_id();
    return ev;
  }

  const int old_bin = removed.bin;
  std::vector<char> dirty(static_cast<std::size_t>(state_.num_bins()), 0);
  // 2 = shrunk in replay_lazy's directional encoding; the eager replay only
  // distinguishes zero from non-zero, so the value is safe for both.
  dirty[static_cast<std::size_t>(old_bin)] = 2;
  if (options_.fit == FitStrategy::kFirstFit) {
    state_.remove(old_bin, removed.id);
    order_.erase(order_.begin() + static_cast<std::ptrdiff_t>(pos));
    return replay_lazy(pos, std::move(dirty));
  }
  rollback(pos);
  order_.erase(order_.begin() + static_cast<std::ptrdiff_t>(pos));
  return replay(pos, std::move(dirty));
}

PartitionEvent IncrementalPartition::resize(int num_bins) {
  FEDCONS_EXPECTS(num_bins >= 0);
  const int old = state_.num_bins();
  PartitionEvent ev;
  if (num_bins == old) {
    ev.ok = ok();
    if (!ev.ok) ev.failed_id = *failed_id();
    return ev;
  }

  if (options_.fit != FitStrategy::kFirstFit) {
    // Best/worst fit pick bins globally: any pool change can move anything.
    rollback(0);
    state_.set_num_bins(num_bins);
    return replay(0, {});
  }

  if (num_bins > old) {
    // First-fit placements never probe past their chosen bin, so existing
    // placements stand; only a failed entry gets a fresh chance.
    state_.set_num_bins(num_bins);
    if (!fail_at_.has_value()) {
      ev.ok = true;
      return ev;
    }
    return replay_lazy(*fail_at_, {});
  }

  // Shrink: placements on surviving bins stand; re-place from the first
  // entry that sat on a cut bin (if any).
  std::size_t pos = order_.size();
  for (std::size_t i = 0; i < order_.size(); ++i) {
    if (order_[i].bin >= num_bins) {
      pos = i;
      break;
    }
  }
  if (pos == order_.size()) {
    state_.set_num_bins(num_bins);
    ev.ok = ok();
    if (!ev.ok) ev.failed_id = *failed_id();
    return ev;
  }
  rollback(pos);
  state_.set_num_bins(num_bins);
  return replay(pos, {});
}

std::optional<std::size_t> IncrementalPartition::failed_id() const {
  if (!fail_at_.has_value()) return std::nullopt;
  if (state_.num_bins() == 0 && !order_.empty()) {
    // The batch partitioner reports the first *input-order* task when there
    // are no processors at all; mirror it via admission sequence numbers.
    std::size_t best = 0;
    for (std::size_t i = 1; i < order_.size(); ++i) {
      if (order_[i].seq < order_[best].seq) best = i;
    }
    return order_[best].id;
  }
  return order_[*fail_at_].id;
}

std::vector<std::vector<std::size_t>> IncrementalPartition::assignment() const {
  FEDCONS_EXPECTS(ok());
  std::vector<std::vector<std::size_t>> out;
  out.reserve(static_cast<std::size_t>(state_.num_bins()));
  for (int k = 0; k < state_.num_bins(); ++k) out.push_back(state_.bin_ids(k));
  return out;
}

std::vector<std::size_t> IncrementalPartition::order_ids() const {
  std::vector<std::size_t> out;
  out.reserve(order_.size());
  for (const Placement& p : order_) out.push_back(p.id);
  return out;
}

}  // namespace fedcons
