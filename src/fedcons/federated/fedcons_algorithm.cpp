#include "fedcons/federated/fedcons_algorithm.h"

#include <sstream>

#include "fedcons/obs/span_tracer.h"
#include "fedcons/util/check.h"

namespace fedcons {

const char* to_string(FedconsFailure f) noexcept {
  switch (f) {
    case FedconsFailure::kNone: return "accepted";
    case FedconsFailure::kHighDensityPhase: return "high-density-phase";
    case FedconsFailure::kPartitionPhase: return "partition-phase";
  }
  return "?";
}

FedconsResult fedcons_schedule(const TaskSystem& system, int m,
                               const FedconsOptions& options) {
  FEDCONS_EXPECTS(m >= 1);
  FEDCONS_EXPECTS_MSG(system.deadline_class() != DeadlineClass::kArbitrary,
                      "FEDCONS is defined for constrained-deadline systems");
  FEDCONS_SPAN_V("fedcons", "schedule", "m", m);

  FedconsResult result;
  // Provenance is built locally and attached on every exit path; the
  // finalize helper also mirrors the verdict fields into the record.
  std::shared_ptr<FedconsProvenance> prov;
  if (options.record_provenance) {
    prov = std::make_shared<FedconsProvenance>();
    prov->m = m;
  }
  const auto finalize = [&]() {
    if (prov == nullptr) return;
    prov->success = result.success;
    prov->failure = to_string(result.failure);
    prov->failed_task = result.failed_task;
    result.provenance = prov;
  };

  int m_r = m;       // remaining processors (paper, line 1)
  int next_proc = 0;  // global index of the next unassigned processor

  // Phase 1: dedicate processors to each high-density task (lines 2–6).
  for (TaskId i : system.high_density_tasks()) {
    MinprocsOptions scan_options = options.minprocs;
    if (prov != nullptr) {
      prov->clusters.push_back(ClusterProvenance{i, m_r, {}});
      scan_options.provenance = &prov->clusters.back().scan;
    }
    auto mp = minprocs(system[i], m_r, options.list_policy, scan_options);
    if (!mp.has_value()) {  // m_i > m_r, or len_i > D_i: FAILURE (line 4)
      result.success = false;
      result.failure = FedconsFailure::kHighDensityPhase;
      result.failed_task = i;
      finalize();
      return result;
    }
    result.clusters.push_back(ClusterAssignment{
        i, next_proc, mp->processors, std::move(mp->sigma)});
    next_proc += mp->processors;
    m_r -= mp->processors;  // line 6
  }

  // Phase 2: partition the low-density tasks on the remainder (line 7).
  const auto low = system.low_density_tasks();
  std::vector<SporadicTask> seq;
  seq.reserve(low.size());
  for (TaskId i : low) seq.push_back(system[i].to_sequential());

  PartitionOptions part_options = options.partition;
  if (prov != nullptr) {
    prov->partition_reached = true;
    prov->shared_processors = m_r;
    prov->low_tasks = low;
    part_options.provenance = &prov->partition;
  }
  PartitionResult part = partition_tasks(seq, m_r, part_options);
  if (!part.success) {
    result.success = false;
    result.failure = FedconsFailure::kPartitionPhase;
    if (part.failed_task < low.size()) {
      result.failed_task = low[part.failed_task];
    }
    finalize();
    return result;
  }

  result.success = true;
  result.failure = FedconsFailure::kNone;
  result.shared_processors = m_r;
  result.first_shared_processor = next_proc;
  result.shared_assignment.resize(part.assignment.size());
  for (std::size_t k = 0; k < part.assignment.size(); ++k) {
    for (std::size_t idx : part.assignment[k]) {
      result.shared_assignment[k].push_back(low[idx]);
    }
  }
  finalize();
  return result;
}

std::string FedconsResult::describe(const TaskSystem& system) const {
  std::ostringstream os;
  if (!success) {
    os << "FEDCONS: FAILURE in " << to_string(failure);
    if (failed_task.has_value()) {
      os << " (task τ" << *failed_task + 1;
      if (!system[*failed_task].name().empty())
        os << " '" << system[*failed_task].name() << "'";
      os << ")";
    }
    os << "\n";
    return os.str();
  }
  os << "FEDCONS: SUCCESS\n";
  for (const auto& c : clusters) {
    os << "  cluster for τ" << c.task + 1 << ": processors ["
       << c.first_processor << ", " << c.first_processor + c.num_processors
       << "), m_i=" << c.num_processors
       << ", sigma makespan=" << c.sigma.makespan()
       << " (D=" << system[c.task].deadline() << ")\n";
  }
  os << "  shared pool: " << shared_processors << " processor(s) starting at "
     << first_shared_processor << "\n";
  for (std::size_t k = 0; k < shared_assignment.size(); ++k) {
    os << "    proc " << first_shared_processor + static_cast<int>(k) << ":";
    if (shared_assignment[k].empty()) os << " (idle)";
    for (TaskId t : shared_assignment[k]) os << " τ" << t + 1;
    os << "\n";
  }
  return os.str();
}

}  // namespace fedcons
