#include "fedcons/federated/partition.h"

#include <algorithm>
#include <numeric>

#include "fedcons/analysis/dbf.h"
#include "fedcons/analysis/edf_uniproc.h"
#include "fedcons/obs/metrics.h"
#include "fedcons/obs/span_tracer.h"
#include "fedcons/util/check.h"
#include "fedcons/util/perf_counters.h"

namespace fedcons {

const char* to_string(PartitionVariant v) noexcept {
  switch (v) {
    case PartitionVariant::kFull: return "full";
    case PartitionVariant::kPaperLiteral: return "paper-literal";
    case PartitionVariant::kExactEdf: return "exact-edf";
  }
  return "?";
}

const char* to_string(FitStrategy f) noexcept {
  switch (f) {
    case FitStrategy::kFirstFit: return "first-fit";
    case FitStrategy::kBestFit: return "best-fit";
    case FitStrategy::kWorstFit: return "worst-fit";
  }
  return "?";
}

const char* to_string(PartitionOrder o) noexcept {
  switch (o) {
    case PartitionOrder::kDeadlineMonotonic: return "deadline-monotonic";
    case PartitionOrder::kDensityDescending: return "density-desc";
    case PartitionOrder::kUtilizationDescending: return "utilization-desc";
  }
  return "?";
}

namespace {

/// Per-processor bookkeeping during partitioning.
struct Bin {
  std::vector<std::size_t> tasks;    // indices into the input span
  BigRational utilization;           // Σ u_j, exact
  DbfStarAggregate demand;           // maintained only on the incremental paths
};

/// Whether the per-bin DBF* aggregate drives the probes. The aggregate
/// models the 1-point approximation exactly, so kFull qualifies only at
/// dbf_points == 1 (the default); larger point counts and the exact-EDF
/// probe use the legacy paths.
bool use_incremental(const PartitionOptions& options) {
  if (!options.incremental) return false;
  switch (options.variant) {
    case PartitionVariant::kPaperLiteral: return true;
    case PartitionVariant::kFull: return std::max(1, options.dbf_points) == 1;
    case PartitionVariant::kExactEdf: return false;
  }
  return false;
}

/// The candidate's own DBF* term at bp ≥ its deadline: C·(T + bp − D)/T.
BigRational candidate_dbf_star(const SporadicTask& t, Time bp) {
  // Counted as one logical evaluation to match the dbf_approx_k call the
  // legacy loop makes for the candidate at this breakpoint.
  ++perf_counters().dbf_star_evaluations;
  BigInt num =
      BigInt(t.wcet) * BigInt(checked_add(t.period, bp - t.deadline));
  return BigRational(std::move(num), BigInt(t.period));
}

/// Fill a demand-rejection diagnosis (no-op on nullptr): the failing DBF*
/// breakpoint plus the exact demand-vs-capacity comparison.
void diagnose_demand(BinAttemptRecord* diag, const BigRational& demand,
                     Time breakpoint) {
  if (diag == nullptr) return;
  diag->reason = BinRejectReason::kDemand;
  diag->breakpoint = breakpoint;
  diag->detail = "DBF* demand " + demand.to_string() + " > capacity " +
                 std::to_string(breakpoint) + " at breakpoint t=" +
                 std::to_string(breakpoint);
}

/// The acceptance probe for placing `cand` on `bin`. `trial_scratch` is
/// reused across probes by the exact-EDF variant (capacity persists).
/// `diag`, when non-null, receives the rejection witness; the probe's
/// decisions and counter increments are independent of it.
bool fits(std::span<const SporadicTask> all, const Bin& bin,
          std::size_t cand, const PartitionOptions& options,
          std::vector<SporadicTask>& trial_scratch,
          BinAttemptRecord* diag = nullptr) {
  const SporadicTask& t = all[cand];

  if (options.variant == PartitionVariant::kExactEdf) {
    trial_scratch.clear();
    trial_scratch.reserve(bin.tasks.size() + 1);
    for (std::size_t j : bin.tasks) trial_scratch.push_back(all[j]);
    trial_scratch.push_back(t);
    if (edf_schedulable(trial_scratch)) return true;
    if (diag != nullptr) {
      diag->reason = BinRejectReason::kExactEdf;
      diag->detail = "exact EDF test rejects bin ∪ {candidate}";
    }
    return false;
  }

  if (options.variant == PartitionVariant::kPaperLiteral) {
    // The paper's Fig. 4 line 3, verbatim:
    //   Σ_j DBF*(τ_j, D_i) + vol_i ≤ D_i.
    BigRational sum(t.wcet);
    if (use_incremental(options)) {
      sum += bin.demand.sum_at(t.deadline);
    } else {
      for (std::size_t j : bin.tasks) sum += dbf_approx(all[j], t.deadline);
    }
    if (sum <= BigRational(t.deadline)) return true;
    diagnose_demand(diag, sum, t.deadline);
    return false;
  }

  // kFull — Baruah–Fisher with a k-point demand approximation:
  // long-run capacity first…
  if (bin.utilization + t.utilization() > BigRational(1)) {
    if (diag != nullptr) {
      diag->reason = BinRejectReason::kUtilization;
      diag->detail = "utilization " +
                     (bin.utilization + t.utilization()).to_string() +
                     " > 1 with candidate";
    }
    return false;
  }
  // …then the demand condition at every slope breakpoint of the summed
  // k-point approximation over bin ∪ {candidate}. Between breakpoints the
  // sum is linear with slope ≤ Σu ≤ 1 (checked above), so breakpoint
  // verification certifies all t. Breakpoints strictly below the candidate's
  // deadline are unchanged by the placement (the candidate contributes 0
  // there) and were certified when their tasks were admitted.
  if (use_incremental(options)) {
    // points == 1: breakpoints are exactly the deadlines of bin ∪ {cand},
    // and the legacy loop evaluates those ≥ D_cand in ascending order —
    // D_cand itself (dedup'd with equal member deadlines), then every
    // member deadline above it, stopping at the first violation.
    const auto check_at = [&](Time bp) {
      BigRational sum = bin.demand.sum_at(bp);
      sum += candidate_dbf_star(t, bp);
      if (sum <= BigRational(bp)) return true;
      diagnose_demand(diag, sum, bp);
      return false;
    };
    if (!check_at(t.deadline)) return false;
    for (Time bp : bin.demand.distinct_deadlines()) {
      if (bp <= t.deadline) continue;
      if (!check_at(bp)) return false;
    }
    return true;
  }
  const int points = std::max(1, options.dbf_points);
  std::vector<SporadicTask> members;
  members.reserve(bin.tasks.size() + 1);
  for (std::size_t j : bin.tasks) members.push_back(all[j]);
  members.push_back(t);
  Time horizon = 0;
  for (const auto& task : members) {
    horizon = std::max(
        horizon, checked_add(task.deadline,
                             checked_mul(static_cast<Time>(points - 1),
                                         task.period)));
  }
  for (Time bp : dbf_approx_breakpoints(members, points, horizon)) {
    if (bp < t.deadline) continue;
    BigRational sum;
    for (const auto& task : members) sum += dbf_approx_k(task, bp, points);
    if (sum > BigRational(bp)) {
      diagnose_demand(diag, sum, bp);
      return false;
    }
  }
  return true;
}

}  // namespace

PartitionResult partition_tasks(std::span<const SporadicTask> tasks,
                                int num_processors,
                                const PartitionOptions& options) {
  FEDCONS_EXPECTS(num_processors >= 0);
  FEDCONS_SPAN_V("partition", "partition_tasks", "m_r", num_processors);
  PartitionProvenance* prov = options.provenance;
  if (prov != nullptr) {
    *prov = PartitionProvenance{};
    prov->num_processors = num_processors;
  }
  PartitionResult result;
  if (tasks.empty()) {
    result.success = true;
    result.assignment.assign(static_cast<std::size_t>(num_processors), {});
    return result;
  }
  if (num_processors == 0) {
    result.success = false;
    result.failed_task = 0;
    if (prov != nullptr) {
      PlacementRecord record;
      record.task_index = 0;
      record.deadline = tasks[0].deadline;
      record.wcet = tasks[0].wcet;
      prov->placements.push_back(std::move(record));
    }
    return result;
  }

  std::vector<std::size_t> order(tasks.size());
  std::iota(order.begin(), order.end(), 0);
  switch (options.order) {
    case PartitionOrder::kDeadlineMonotonic:
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return tasks[a].deadline < tasks[b].deadline;
                       });
      break;
    case PartitionOrder::kDensityDescending:
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return tasks[b].density() < tasks[a].density();
                       });
      break;
    case PartitionOrder::kUtilizationDescending:
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return tasks[b].utilization() < tasks[a].utilization();
                       });
      break;
  }

  std::vector<Bin> bins(static_cast<std::size_t>(num_processors));
  std::vector<SporadicTask> trial_scratch;  // exact-EDF probe reuse
  for (std::size_t i : order) {
    FEDCONS_SPAN_V("partition", "place", "task", i);
    PlacementRecord record;
    if (prov != nullptr) {
      record.task_index = i;
      record.deadline = tasks[i].deadline;
      record.wcet = tasks[i].wcet;
    }
    int probed = 0;
    int chosen = -1;
    for (int k = 0; k < num_processors; ++k) {
      const Bin& bin = bins[static_cast<std::size_t>(k)];
      BinAttemptRecord attempt;
      attempt.bin = k;
      ++probed;
      const bool ok = fits(tasks, bin, i, options, trial_scratch,
                           prov != nullptr ? &attempt : nullptr);
      if (prov != nullptr) {
        attempt.fits = ok;
        record.attempts.push_back(std::move(attempt));
      }
      if (!ok) continue;
      if (options.fit == FitStrategy::kFirstFit) {
        chosen = k;
        break;
      }
      if (chosen < 0) {
        chosen = k;
        continue;
      }
      const Bin& best = bins[static_cast<std::size_t>(chosen)];
      if (options.fit == FitStrategy::kBestFit &&
          best.utilization < bin.utilization) {
        chosen = k;
      } else if (options.fit == FitStrategy::kWorstFit &&
                 bin.utilization < best.utilization) {
        chosen = k;
      }
    }
    obs::observe_partition_bins_touched(probed);
    if (prov != nullptr) {
      record.chosen_bin = chosen;
      prov->placements.push_back(std::move(record));
    }
    if (chosen < 0) {
      result.success = false;
      result.failed_task = i;
      return result;
    }
    Bin& bin = bins[static_cast<std::size_t>(chosen)];
    bin.tasks.push_back(i);
    bin.utilization += tasks[i].utilization();
    if (use_incremental(options)) bin.demand.insert(tasks[i]);
  }

  result.success = true;
  result.assignment.reserve(bins.size());
  for (auto& bin : bins) result.assignment.push_back(std::move(bin.tasks));
  return result;
}

bool partition_is_edf_schedulable(std::span<const SporadicTask> tasks,
                                  const PartitionResult& result) {
  FEDCONS_EXPECTS(result.success);
  for (const auto& proc : result.assignment) {
    std::vector<SporadicTask> assigned;
    assigned.reserve(proc.size());
    for (std::size_t i : proc) {
      FEDCONS_EXPECTS(i < tasks.size());
      assigned.push_back(tasks[i]);
    }
    if (!edf_schedulable(assigned)) return false;
  }
  return true;
}

}  // namespace fedcons
