#include "fedcons/federated/partition.h"

#include <algorithm>
#include <numeric>

#include "fedcons/analysis/edf_uniproc.h"
#include "fedcons/federated/partition_state.h"
#include "fedcons/obs/span_tracer.h"
#include "fedcons/util/check.h"

namespace fedcons {

const char* to_string(PartitionVariant v) noexcept {
  switch (v) {
    case PartitionVariant::kFull: return "full";
    case PartitionVariant::kPaperLiteral: return "paper-literal";
    case PartitionVariant::kExactEdf: return "exact-edf";
  }
  return "?";
}

const char* to_string(FitStrategy f) noexcept {
  switch (f) {
    case FitStrategy::kFirstFit: return "first-fit";
    case FitStrategy::kBestFit: return "best-fit";
    case FitStrategy::kWorstFit: return "worst-fit";
  }
  return "?";
}

const char* to_string(PartitionOrder o) noexcept {
  switch (o) {
    case PartitionOrder::kDeadlineMonotonic: return "deadline-monotonic";
    case PartitionOrder::kDensityDescending: return "density-desc";
    case PartitionOrder::kUtilizationDescending: return "utilization-desc";
  }
  return "?";
}

PartitionResult partition_tasks(std::span<const SporadicTask> tasks,
                                int num_processors,
                                const PartitionOptions& options) {
  FEDCONS_EXPECTS(num_processors >= 0);
  FEDCONS_SPAN_V("partition", "partition_tasks", "m_r", num_processors);
  PartitionProvenance* prov = options.provenance;
  if (prov != nullptr) {
    *prov = PartitionProvenance{};
    prov->num_processors = num_processors;
  }
  PartitionResult result;
  if (tasks.empty()) {
    result.success = true;
    result.assignment.assign(static_cast<std::size_t>(num_processors), {});
    return result;
  }
  if (num_processors == 0) {
    result.success = false;
    result.failed_task = 0;
    if (prov != nullptr) {
      PlacementRecord record;
      record.task_index = 0;
      record.deadline = tasks[0].deadline;
      record.wcet = tasks[0].wcet;
      prov->placements.push_back(std::move(record));
    }
    return result;
  }

  std::vector<std::size_t> order(tasks.size());
  std::iota(order.begin(), order.end(), 0);
  switch (options.order) {
    case PartitionOrder::kDeadlineMonotonic:
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return tasks[a].deadline < tasks[b].deadline;
                       });
      break;
    case PartitionOrder::kDensityDescending:
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return tasks[b].density() < tasks[a].density();
                       });
      break;
    case PartitionOrder::kUtilizationDescending:
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return tasks[b].utilization() < tasks[a].utilization();
                       });
      break;
  }

  // The probe logic and per-bin aggregates live in PartitionState (shared
  // with the online admission engine); this loop is the batch driver.
  PartitionState state(num_processors, options);
  for (std::size_t i : order) {
    FEDCONS_SPAN_V("partition", "place", "task", i);
    PlacementRecord record;
    if (prov != nullptr) {
      record.task_index = i;
      record.deadline = tasks[i].deadline;
      record.wcet = tasks[i].wcet;
    }
    const int chosen =
        state.choose_bin(tasks[i], prov != nullptr ? &record : nullptr);
    if (prov != nullptr) prov->placements.push_back(std::move(record));
    if (chosen < 0) {
      result.success = false;
      result.failed_task = i;
      return result;
    }
    state.insert(chosen, i, tasks[i]);
  }

  result.success = true;
  result.assignment.reserve(static_cast<std::size_t>(state.num_bins()));
  for (int k = 0; k < state.num_bins(); ++k) {
    result.assignment.push_back(state.bin_ids(k));
  }
  return result;
}

bool partition_is_edf_schedulable(std::span<const SporadicTask> tasks,
                                  const PartitionResult& result) {
  FEDCONS_EXPECTS(result.success);
  for (const auto& proc : result.assignment) {
    std::vector<SporadicTask> assigned;
    assigned.reserve(proc.size());
    for (std::size_t i : proc) {
      FEDCONS_EXPECTS(i < tasks.size());
      assigned.push_back(tasks[i]);
    }
    if (!edf_schedulable(assigned)) return false;
  }
  return true;
}

}  // namespace fedcons
