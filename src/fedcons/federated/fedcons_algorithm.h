// Algorithm FEDCONS (paper, Figure 2) — the paper's primary contribution.
//
//   FEDCONS(τ, m):
//     m_r ← m
//     for each τ_i ∈ τ_high:                      // δ_i ≥ 1
//       m_i ← MINPROCS(τ_i, m_r); FAILURE if m_i > m_r
//       σ_i ← LS schedule of G_i on m_i processors
//       m_r ← m_r − m_i
//     PARTITION(τ_low, m_r)                       // δ_i < 1
//
// Each high-density task receives exclusive use of m_i processors and is
// dispatched at run time by replaying σ_i as a lookup table; the low-density
// tasks are partitioned on the m_r remaining ("shared") processors, each of
// which runs preemptive uniprocessor EDF.
//
// Theorem 1 (paper): if τ is schedulable by an optimal federated algorithm
// on m unit-speed processors, FEDCONS schedules it on m processors of speed
// (3 − 1/m).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fedcons/core/task_system.h"
#include "fedcons/federated/minprocs.h"
#include "fedcons/federated/partition.h"
#include "fedcons/obs/provenance.h"

namespace fedcons {

/// Why FEDCONS rejected a system (for E8's phase-bottleneck analysis).
enum class FedconsFailure {
  kNone,                 ///< accepted
  kHighDensityPhase,     ///< MINPROCS exhausted the processors
  kPartitionPhase,       ///< PARTITION could not place a low-density task
};

[[nodiscard]] const char* to_string(FedconsFailure f) noexcept;

/// A dedicated cluster: one high-density task, its processors, and σ_i.
struct ClusterAssignment {
  TaskId task = 0;
  int first_processor = 0;  ///< global index of the cluster's first processor
  int num_processors = 0;   ///< m_i
  TemplateSchedule sigma;   ///< LS template schedule (makespan ≤ D_i)
};

/// Complete output of FEDCONS on success; diagnosis on failure.
struct FedconsResult {
  bool success = false;
  FedconsFailure failure = FedconsFailure::kNone;
  std::optional<TaskId> failed_task;  ///< offending task where applicable

  std::vector<ClusterAssignment> clusters;  ///< one per high-density task
  int shared_processors = 0;                ///< m_r after phase 1
  int first_shared_processor = 0;           ///< global index of shared pool
  /// shared_assignment[k] = TaskIds of low-density tasks on shared proc k.
  std::vector<std::vector<TaskId>> shared_assignment;

  /// Full decision record (set iff FedconsOptions::record_provenance): the
  /// per-task μ-scan trajectories and bin-attempt lists that produced this
  /// verdict. Render with explain_text / explain_json (obs/provenance.h).
  std::shared_ptr<const FedconsProvenance> provenance;

  /// Human-readable allocation map.
  [[nodiscard]] std::string describe(const TaskSystem& system) const;
};

struct FedconsOptions {
  ListPolicy list_policy = ListPolicy::kVertexOrder;
  MinprocsOptions minprocs;
  PartitionOptions partition;
  /// Attach a FedconsProvenance to the result. Off by default: recording
  /// allocates per-probe records, and the algorithm's hot path must stay
  /// allocation-free for the batch engine. Verdicts and perf counters are
  /// identical either way (pinned by tests/obs_provenance_test.cpp).
  bool record_provenance = false;
};

/// Run FEDCONS for `system` on m unit-speed processors.
/// Preconditions: m >= 1; the system is constrained-deadline (D_i ≤ T_i for
/// every task — the model this algorithm is defined for).
[[nodiscard]] FedconsResult fedcons_schedule(const TaskSystem& system, int m,
                                             const FedconsOptions& options = {});

/// Convenience: acceptance verdict only.
[[nodiscard]] inline bool fedcons_schedulable(const TaskSystem& system, int m,
                                              const FedconsOptions& options = {}) {
  return fedcons_schedule(system, m, options).success;
}

}  // namespace fedcons
