#include "fedcons/federated/speedup.h"

#include <cmath>

#include "fedcons/util/check.h"

namespace fedcons {

std::optional<double> min_speed(const TaskSystem& system, int m,
                                const AcceptanceTest& test, double max_speed,
                                double resolution) {
  FEDCONS_EXPECTS(m >= 1);
  FEDCONS_EXPECTS(max_speed >= 1.0);
  FEDCONS_EXPECTS(resolution > 0.0);

  auto accepts = [&](double s) { return test(system.scaled_by_speed(s), m); };

  if (!accepts(max_speed)) return std::nullopt;
  if (accepts(1.0)) return 1.0;

  // Bisect on the (near-)monotone acceptance boundary.
  double lo = 1.0;         // rejected
  double hi = max_speed;   // accepted
  while (hi - lo > resolution) {
    double mid = 0.5 * (lo + hi);
    if (accepts(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  // Guard against non-monotonicity: walk down the grid from hi while still
  // accepted (never returns a speed that is not accepted).
  double best = hi;
  for (double s = hi - resolution; s >= 1.0; s -= resolution) {
    if (!accepts(s)) break;
    best = s;
  }
  return best;
}

}  // namespace fedcons
