// Persistent PARTITION state — the per-bin half of the online admission
// engine, and the bookkeeping core of the batch partitioner.
//
// PR 2 introduced per-bin DBF*/utilization aggregates that lived as locals
// inside partition_tasks and died with the call. This header promotes them to
// long-lived values:
//
//  * PartitionState — the bins themselves: member tasks in placement order,
//    the exact utilization fold, and (on the aggregate-eligible variants) the
//    incremental DBF* prefix structure (analysis/dbf.h). It owns the
//    acceptance probe fits() and the bin-selection loop choose_bin() — the
//    exact logic partition_tasks used inline, with identical verdicts,
//    counters, and provenance records. Insertion and removal are exact
//    inverses: remove() rolls every aggregate back to the representation it
//    would have had if the member had never been inserted (DbfStarAggregate
//    contract), so a departed task leaves no numeric residue.
//
//  * IncrementalPartition — the placement *sequence*: residents kept in the
//    partition order (deadline-monotonic by default, ties in admission
//    order), each with its chosen bin. Events (admit / remove / resize)
//    restore the invariant
//
//        state == partition_tasks(residents-in-admission-order, bins)
//
//    by replaying only the invalidated suffix of the order: placements whose
//    prefix of candidate bins is untouched reuse their previous decision
//    without probing (first-fit monotonicity — adding demand to a bin never
//    turns a rejection into an acceptance, so clean-bin rejections and
//    acceptances both stand), and only placements facing a *dirty* bin are
//    re-probed. Probes actually run are counted in the
//    partition_bins_revalidated perf counter and reported per event.
//
// The equality above is structural (verdict, per-bin member ids, failure
// point) and is fuzzed by `fedcons_conform --online` against the batch
// partitioner after every event.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "fedcons/analysis/dbf.h"
#include "fedcons/federated/partition.h"

namespace fedcons {

/// True when the options select the DBF*-aggregate probe paths (the same
/// predicate partition_tasks applies; kPaperLiteral, or kFull at 1 point).
[[nodiscard]] bool partition_uses_aggregates(const PartitionOptions& options);

/// The bins: persistent per-processor membership + exact aggregates.
class PartitionState {
 public:
  PartitionState() = default;
  PartitionState(int num_bins, const PartitionOptions& options);

  [[nodiscard]] int num_bins() const noexcept {
    return static_cast<int>(bins_.size());
  }
  /// Grow appends empty bins; shrink requires the cut bins to be empty
  /// (callers roll placements back first — IncrementalPartition does).
  void set_num_bins(int n);

  /// The acceptance probe for placing `t` on bin k against current contents.
  /// Identical decisions, counter increments, and rejection diagnoses to the
  /// batch partitioner's probe (this IS that probe, relocated).
  [[nodiscard]] bool fits(int bin, const SporadicTask& t,
                          BinAttemptRecord* diag = nullptr) const;

  /// The bin-selection loop (first/best/worst fit) over all bins. Fills
  /// per-probe attempt records into `record` when non-null, reports the
  /// number of bins probed via `probed` when non-null, and feeds the
  /// partition_bins_touched metric. Returns the chosen bin or -1.
  [[nodiscard]] int choose_bin(const SporadicTask& t,
                               PlacementRecord* record = nullptr,
                               std::uint64_t* probed = nullptr) const;

  /// Add / roll back one member. `id` is a caller-stable label (input-span
  /// index for the batch partitioner, session task id online).
  void insert(int bin, std::size_t id, const SporadicTask& t);
  void remove(int bin, std::size_t id);

  /// Member ids of bin k, in placement order.
  [[nodiscard]] const std::vector<std::size_t>& bin_ids(int k) const;
  /// Exact Σ u over bin k's members (the left fold in placement order).
  [[nodiscard]] const BigRational& bin_utilization(int k) const;
  /// The DBF* aggregate of bin k (meaningful on aggregate-eligible options).
  [[nodiscard]] const DbfStarAggregate& bin_demand(int k) const;
  [[nodiscard]] std::size_t total_members() const noexcept;

  [[nodiscard]] const PartitionOptions& options() const noexcept {
    return options_;
  }

 private:
  struct Bin {
    std::vector<std::size_t> ids;      // placement order
    std::vector<SporadicTask> tasks;   // parallel to ids
    /// Inclusive prefix fold of member utilizations (canonical left fold, so
    /// insert-then-remove restores the exact prior representations).
    std::vector<BigRational> util_prefix;
    /// Double mirror of util_prefix (simd::util_term folds; +inf poison for
    /// out-of-range parameters) — the certified utilization screen's input.
    std::vector<double> util_prefix_d;
    DbfStarAggregate demand;  // maintained only when aggregates are on
  };
  static const BigRational kZeroUtil;

  PartitionOptions options_;
  std::vector<Bin> bins_;
  mutable std::vector<SporadicTask> trial_scratch_;  // exact-EDF probe reuse
};

/// Outcome of one IncrementalPartition event.
struct PartitionEvent {
  bool ok = false;            ///< all residents placed after the event
  std::size_t failed_id = 0;  ///< iff !ok: id of the first unplaceable task
  std::uint64_t bins_revalidated = 0;  ///< fits() probes run by the replay
  std::size_t placements_replayed = 0; ///< suffix placements re-executed
};

/// The placement sequence: keeps `state() == partition_tasks(residents)`
/// across admit / remove / resize, replaying only the invalidated suffix.
class IncrementalPartition {
 public:
  IncrementalPartition() = default;
  IncrementalPartition(int num_bins, const PartitionOptions& options);

  /// Admit a task under a caller-stable unique id. The task becomes resident
  /// unconditionally (even when the resulting partition fails — callers that
  /// want reject-on-failure semantics undo with remove(), which restores the
  /// exact prior state). Returns the resulting verdict.
  PartitionEvent admit(std::size_t id, const SporadicTask& task);

  /// Remove a resident by id (ContractViolation if absent).
  PartitionEvent remove(std::size_t id);

  /// Change the processor count (the shared pool shrinks or grows as
  /// MINPROCS clusters come and go).
  PartitionEvent resize(int num_bins);

  [[nodiscard]] bool ok() const noexcept { return !fail_at_.has_value(); }
  /// Id of the first unplaceable resident, when !ok().
  [[nodiscard]] std::optional<std::size_t> failed_id() const;
  [[nodiscard]] std::size_t size() const noexcept { return order_.size(); }
  [[nodiscard]] int num_bins() const noexcept { return state_.num_bins(); }
  [[nodiscard]] const PartitionState& state() const noexcept { return state_; }

  /// assignment[k] = resident ids on bin k in placement order — the shape of
  /// PartitionResult::assignment. Precondition: ok().
  [[nodiscard]] std::vector<std::vector<std::size_t>> assignment() const;

  /// Resident ids in partition order (diagnostics / tests).
  [[nodiscard]] std::vector<std::size_t> order_ids() const;

 private:
  struct Placement {
    std::size_t id = 0;
    SporadicTask task;
    std::uint64_t seq = 0;  ///< admission sequence number (arrival order)
    int bin = -1;       ///< current bin; -1 while unplaced
    int prev_bin = -1;  ///< bin before the in-flight event (replay fast path)
  };

  /// Partition-order comparator (strict "a before b").
  [[nodiscard]] bool ordered_before(const SporadicTask& a,
                                    const SporadicTask& b) const;
  [[nodiscard]] std::size_t position_of(std::size_t id) const;
  /// Unplace entries at positions >= pos, recording prev_bin for the replay
  /// fast path. Aggregates are rolled back member by member (exact inverse).
  void rollback(std::size_t pos);
  /// Re-place entries from pos onward after an eager rollback(pos); `dirty`
  /// carries bins whose membership already diverged from the pre-event
  /// timeline (e.g. a removed member's old bin). Restores the invariant or
  /// records the failure point.
  PartitionEvent replay(std::size_t pos, std::vector<char> dirty);
  /// First-fit-only variant that skips the eager rollback: entries stay
  /// physically placed, and a bin is synchronized with the walk (its not-yet
  /// -reached members unplaced) only when it must actually be probed. Bins
  /// no probe touches keep their aggregates untouched, so a standing-decision
  /// suffix costs no BigRational work at all — the O(changed-task) property
  /// bench_online measures. `dirty` is directional (0 untouched / 1 grew /
  /// 2 shrunk): rejections of grown bins stand by first-fit monotonicity, so
  /// an admission re-probes only each later member of the bin it landed in,
  /// not every entry placed above it. Identical decisions and final
  /// representations to rollback()+replay(), with a subset of its probes.
  PartitionEvent replay_lazy(std::size_t pos, std::vector<char> dirty);

  PartitionOptions options_;
  PartitionState state_;
  std::vector<Placement> order_;
  std::optional<std::size_t> fail_at_;  ///< index of first unplaced entry
  std::uint64_t next_seq_ = 0;
};

}  // namespace fedcons
