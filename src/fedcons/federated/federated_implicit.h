// Baseline: federated scheduling of IMPLICIT-deadline systems (Li et al.,
// ECRTS 2014) and its natural constrained-deadline adaptation.
//
// Li et al. assign each high-utilization task (u_i ≥ 1) the closed-form
// processor count
//     n_i = ⌈(vol_i − len_i) / (T_i − len_i)⌉
// (valid because any work-conserving schedule on n processors finishes one
// dag-job within len + (vol − len)/n ≤ T), and partition the low-utilization
// tasks as sequential tasks. The algorithm's capacity augmentation bound is
// 2, hence speedup bound 2 (paper, Section III).
//
// Two variants are provided:
//  * li_federated_implicit — the original algorithm; defined only for
//    implicit-deadline systems (precondition-checked). Low tasks are placed
//    first-fit with per-processor utilization ≤ 1 (exact for EDF with
//    implicit deadlines).
//  * li_federated_constrained_adaptation — the textbook adaptation used as a
//    comparison baseline in E3/E8: D_i replaces T_i in the processor-count
//    formula (sound: Graham's bound gives makespan ≤ len + (vol−len)/n_i ≤
//    D_i), and low-density tasks are placed first-fit with per-processor
//    total DENSITY ≤ 1 (a sufficient uniprocessor EDF condition for
//    constrained deadlines). Strictly more pessimistic than FEDCONS's
//    DBF*-based partitioning — exactly the gap E3 visualizes.
#pragma once

#include <utility>
#include <vector>

#include "fedcons/core/task_system.h"

namespace fedcons {

/// Which phase rejected (mirrors FedconsFailure for the closed-form
/// baselines; used by experiment E12's bottleneck attribution).
enum class BaselineFailure {
  kNone,            ///< accepted
  kDedicatedPhase,  ///< closed-form processor counts exhausted the platform
  kSharedPhase,     ///< the low tasks did not pack on the remainder
};

[[nodiscard]] const char* to_string(BaselineFailure f) noexcept;

/// Outcome of a closed-form federated baseline.
struct FederatedBaselineResult {
  bool success = false;
  BaselineFailure failure = BaselineFailure::kNone;
  int dedicated_processors = 0;  ///< Σ n_i over high tasks
  int shared_processors = 0;     ///< remainder used for the low tasks
  /// On success: (task, n_i) for every high task, in classification order.
  /// Li's run-time rule is any work-conserving scheduler on the n_i
  /// dedicated processors; Graham's bound makes replaying an LS template
  /// (makespan ≤ len + (vol−len)/n_i ≤ window) a valid instance of it, which
  /// is how the conformance harness replays these allocations.
  std::vector<std::pair<TaskId, int>> dedicated;
  /// On success: shared_assignment[k] = low tasks placed (first-fit) on
  /// shared processor k, each of which runs preemptive EDF.
  std::vector<std::vector<TaskId>> shared_assignment;
};

/// Li et al. (ECRTS'14) federated scheduling. Precondition: m >= 1 and the
/// system is implicit-deadline.
[[nodiscard]] FederatedBaselineResult li_federated_implicit(
    const TaskSystem& system, int m);

/// Constrained-deadline adaptation (see header comment). Precondition:
/// m >= 1 and the system is constrained-deadline.
[[nodiscard]] FederatedBaselineResult li_federated_constrained_adaptation(
    const TaskSystem& system, int m);

/// The closed-form dedicated-processor count for one task within window w:
/// ⌈(vol − len)/(w − len)⌉ (1 when vol == len; kTimeInfinity-like failure is
/// signalled by returning -1 when len > w, or len == w with vol > len).
[[nodiscard]] int closed_form_processor_count(const DagTask& task, Time window);

}  // namespace fedcons
