// Procedure MINPROCS (paper, Figure 3).
//
//   MINPROCS(τ_i, m_r):
//     for μ ← ⌈δ_i⌉ to m_r do
//       apply List Scheduling to construct a schedule for G_i on μ processors
//       if this schedule has makespan ≤ D_i: return μ
//     return ∞
//
// Determines the minimum number of dedicated processors on which Graham LS
// schedules one dag-job of τ_i within its relative deadline, and keeps the
// resulting template schedule σ_i for run-time replay. The scan is linear —
// NOT a binary search — because LS makespan is not guaranteed monotone in the
// processor count (another face of Graham's anomalies), a fact covered by a
// regression test.
//
// Lemma 1 (paper): if τ_i is schedulable by an optimal scheduler on m_i
// unit-speed processors, LS schedules it on m_i processors of speed 2 − 1/m_i
// — inherited from Graham's (2 − 1/m) makespan bound.
#pragma once

#include <optional>

#include "fedcons/core/dag_task.h"
#include "fedcons/listsched/list_scheduler.h"
#include "fedcons/listsched/schedule.h"
#include "fedcons/obs/provenance.h"

namespace fedcons {

/// Successful MINPROCS outcome: a processor count and the template schedule.
struct MinprocsResult {
  int processors = 0;
  TemplateSchedule sigma;
};

/// Tuning knobs for the MINPROCS scan. The default (pruned, workspace-backed)
/// path returns bit-identical results to the reference scan — pinned by
/// tests/minprocs_equivalence_test.cpp — so these flags trade speed only.
struct MinprocsOptions {
  /// Cap the scan at μ_ub = minprocs_scan_cap(task) and run LS through the
  /// thread-local workspace (keys prepared once per task). false selects the
  /// seed reference scan (allocation-per-probe LS, scan to m_r), kept as the
  /// equivalence oracle and benchmark baseline.
  bool prune = true;
  /// When non-null, the scan records its full μ-trajectory here (every
  /// probe's makespan, the Graham cap, and the exhaustion witness — see
  /// obs/provenance.h). Recording only observes probes the scan already
  /// makes: verdicts, probe sequence, and perf counters are unchanged.
  MinprocsProvenance* provenance = nullptr;
};

/// Run MINPROCS for τ_i with at most max_processors available. Returns
/// nullopt when no μ ≤ max_processors yields makespan ≤ D_i (the paper's
/// "∞"), including the trivially hopeless case len_i > D_i.
/// Preconditions: max_processors >= 0 (0 always yields nullopt).
[[nodiscard]] std::optional<MinprocsResult> minprocs(
    const DagTask& task, int max_processors,
    ListPolicy policy = ListPolicy::kVertexOrder,
    const MinprocsOptions& options = {});

/// The scan's lower starting point ⌈δ_i⌉ = ⌈vol_i / min(D_i, T_i)⌉, in exact
/// integer arithmetic. Exposed for tests and the E7 efficiency experiment.
[[nodiscard]] int minprocs_lower_bound(const DagTask& task);

/// Upper cap of the pruned scan: the smallest μ at which Graham's bound
/// already certifies a fit, clamped up to minprocs_lower_bound. For len ≤ D,
///   graham_bound(μ) = ⌊(vol + (μ−1)·len)/μ⌋ ≤ D  ⟺  μ ≥ ⌈(vol−len+1)/(D+1−len)⌉
/// and LS makespan ≤ graham_bound, so the probe at μ_ub always succeeds —
/// every candidate in (μ_ub, m_r] is provably redundant. Because the first
/// success of the reference scan is also ≤ μ_ub, capping changes no probe
/// and no verdict (see DESIGN.md §7). Returns 0 when len > D (no μ works).
/// The result is a Time: it can exceed int range when D − len is tiny, which
/// is why callers clamp with min(m_r, cap) before casting.
[[nodiscard]] Time minprocs_scan_cap(const DagTask& task);

}  // namespace fedcons
