// Experiment E12 — the paper's §III "note": the bottleneck phase FLIPS
// between the implicit- and constrained-deadline settings.
//
//   "Hence the bottleneck for implicit-deadline systems is the
//    high-utilization tasks … For constrained-deadline sporadic DAG task
//    systems, by contrast, the bottleneck step … is the partitioning step."
//
// E8d showed the constrained side (partition-phase rejections dominate).
// Here we generate IMPLICIT-deadline systems (D = T) and attribute every
// rejection to its phase, for both the Li-et-al. closed-form baseline and
// FEDCONS run on the same systems (implicit ⊂ constrained, so FEDCONS
// applies unchanged). Expected shape: rejections now concentrate in the
// DEDICATED (high-utilization) phase — the mirror image of E8d.
#include <iostream>

#include "fedcons/federated/fedcons_algorithm.h"
#include "fedcons/federated/federated_implicit.h"
#include "fedcons/gen/taskset_gen.h"
#include "fedcons/util/flags.h"
#include "fedcons/util/rng.h"
#include "fedcons/util/table.h"

using namespace fedcons;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool csv = flags.get_bool("csv", false);
  const int trials = static_cast<int>(flags.get_int("trials", 120));
  const int m = 8;

  std::cout << "== E12: rejection phase on IMPLICIT-deadline systems "
               "(m = " << m << ", " << trials << " systems/point) — compare "
               "with E8d's constrained-deadline breakdown\n";
  Table t({"U/m", "LI accepted", "LI rej: dedicated", "LI rej: shared",
           "FEDCONS accepted", "FC rej: high-phase", "FC rej: partition"});
  Rng master(271);
  for (double nu : {0.3, 0.5, 0.7, 0.9}) {
    TaskSetParams params;
    params.num_tasks = 2 * m;
    params.total_utilization = nu * m;
    params.utilization_cap = m;
    params.period_min = 100;
    params.period_max = 50000;
    params.deadline_ratio_min = 1.0;  // implicit: D = T
    params.deadline_ratio_max = 1.0;
    params.topology = DagTopology::kMixed;

    int li_acc = 0, li_ded = 0, li_shared = 0;
    int fc_acc = 0, fc_high = 0, fc_part = 0;
    for (int i = 0; i < trials; ++i) {
      Rng rng = master.split();
      TaskSystem sys = generate_task_system(rng, params);
      if (sys.deadline_class() != DeadlineClass::kImplicit) continue;

      auto li = li_federated_implicit(sys, m);
      if (li.success) ++li_acc;
      else if (li.failure == BaselineFailure::kDedicatedPhase) ++li_ded;
      else ++li_shared;

      auto fc = fedcons_schedule(sys, m);
      if (fc.success) ++fc_acc;
      else if (fc.failure == FedconsFailure::kHighDensityPhase) ++fc_high;
      else ++fc_part;
    }
    t.add_row({fmt_double(nu, 1), fmt_int(li_acc), fmt_int(li_ded),
               fmt_int(li_shared), fmt_int(fc_acc), fmt_int(fc_high),
               fmt_int(fc_part)});
  }
  t.print(std::cout);
  if (csv) t.print_csv(std::cout);
  std::cout << "\nExpected shape: for the Li-style baseline — whose "
               "closed-form first phase carries the capacity-bound-2 factor "
               "the paper's §III note attributes the implicit bottleneck to "
               "— dedicated-phase rejections appear first and dominate at "
               "moderate load (the mirror image of E8d), with the shared "
               "pool only saturating near U/m → 1. FEDCONS's MINPROCS first "
               "phase is near-optimal (E7/E11), so even on implicit systems "
               "its own residual rejections sit in the partition phase — "
               "quantifying exactly how much the LS-scan first phase "
               "improves on the closed-form allocation.\n";
  return 0;
}
