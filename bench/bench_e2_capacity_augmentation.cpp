// Experiment E2 — the paper's Example 2: capacity augmentation bounds are
// meaningless for constrained deadlines.
//
// The family: n single-vertex tasks with (C = 1, D = 1, T = n). It satisfies
// U_sum ≈ 1 and len_i ≤ D_i — the premises of a capacity augmentation bound
// — yet is "only schedulable upon a processor of speed n". We measure, at a
// tick granularity K (so fractional speeds are expressible as ⌈K/s⌉):
//   * the minimum uniprocessor-EDF speed (expected ≈ n — diverges), and
//   * the FEDCONS view: every task is high-density (δ = 1), so FEDCONS needs
//     exactly n processors at unit speed — the federated face of the same
//     divergence.
#include <iostream>
#include <vector>

#include "fedcons/analysis/edf_uniproc.h"
#include "fedcons/core/dag_task.h"
#include "fedcons/core/task_system.h"
#include "fedcons/federated/fedcons_algorithm.h"
#include "fedcons/federated/speedup.h"
#include "fedcons/util/flags.h"
#include "fedcons/util/table.h"

using namespace fedcons;

namespace {

TaskSystem example2_at_granularity(int n, Time k) {
  TaskSystem sys;
  for (int i = 0; i < n; ++i) {
    Dag g;
    g.add_vertex(k);
    sys.add(DagTask(std::move(g), k, n * k));
  }
  return sys;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool csv = flags.get_bool("csv", false);
  const Time k = flags.get_int("granularity", 64);
  const int n_max = static_cast<int>(flags.get_int("n-max", 8));

  AcceptanceTest uniproc_edf = [](const TaskSystem& s, int m) {
    if (m != 1) return false;
    std::vector<SporadicTask> seq;
    for (const auto& t : s) seq.push_back(t.to_sequential());
    return edf_schedulable(seq);
  };

  std::cout << "== E2: paper Example 2 — required speed diverges with n "
               "(capacity augmentation bound is meaningless)\n";
  Table t({"n", "U_sum", "min uniproc speed", "speed/n",
           "FEDCONS procs needed", "min m for FEDCONS@speed1"});
  for (int n = 1; n <= n_max; ++n) {
    TaskSystem sys = example2_at_granularity(n, k);
    auto speed = min_speed(sys, 1, uniproc_edf, /*max_speed=*/
                           static_cast<double>(n_max) + 2.0,
                           /*resolution=*/1.0 / 64.0);
    // FEDCONS at unit speed: smallest m that succeeds.
    int min_m = -1;
    for (int m = 1; m <= n + 1; ++m) {
      if (fedcons_schedulable(sys, m)) {
        min_m = m;
        break;
      }
    }
    t.add_row({fmt_int(n), sys.total_utilization().to_string(),
               speed ? fmt_double(*speed) : "inf",
               speed ? fmt_double(*speed / static_cast<double>(n), 2) : "n/a",
               fmt_int(min_m), fmt_int(min_m)});
  }
  t.print(std::cout);
  if (csv) t.print_csv(std::cout);

  std::cout << "\nExpected shape: 'min uniproc speed' grows ~linearly in n "
               "(speed/n ≈ 1), and FEDCONS needs exactly n unit-speed "
               "processors — no finite capacity augmentation bound exists.\n";
  return 0;
}
