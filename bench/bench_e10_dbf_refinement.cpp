// Experiment E10 — how much acceptance does the paper's 1-point DBF*
// approximation give up, and what does buying it back cost?
//
// PARTITION's admission predicate is swept from the paper's DBF* (1 point)
// through k-point refinements (exact DBF steps before the linear tail) to
// exact-EDF admission, inside full FEDCONS. Reported per U_sum/m grid point:
// acceptance ratio and mean analysis time per task system.
//
// Expected shape: acceptance grows monotonically (in aggregate) from k = 1
// toward exact admission, with diminishing returns after a few points, while
// analysis cost grows — the engineering trade-off behind the paper's choice
// of the O(1)-evaluable DBF*.
#include <chrono>
#include <iostream>

#include "fedcons/federated/fedcons_algorithm.h"
#include "fedcons/gen/taskset_gen.h"
#include "fedcons/util/flags.h"
#include "fedcons/util/rng.h"
#include "fedcons/util/stats.h"
#include "fedcons/util/table.h"

using namespace fedcons;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool csv = flags.get_bool("csv", false);
  const int trials = static_cast<int>(flags.get_int("trials", 100));
  const int m = 8;

  struct Config {
    std::string name;
    FedconsOptions options;
  };
  std::vector<Config> configs;
  for (int k : {1, 2, 4, 8}) {
    FedconsOptions opt;
    opt.partition.dbf_points = k;
    configs.push_back({"DBF*-k" + std::to_string(k), opt});
  }
  {
    FedconsOptions opt;
    opt.partition.variant = PartitionVariant::kExactEdf;
    configs.push_back({"exact-EDF", opt});
  }

  std::cout << "== E10: PARTITION admission refinement — acceptance and "
               "cost (m = " << m << ", " << trials << " systems/point)\n";
  std::vector<std::string> header{"U/m"};
  for (const auto& c : configs) {
    header.push_back(c.name);
    header.push_back(c.name + " us/sys");
  }
  Table t(std::move(header));

  Rng master(8675309);
  for (double nu : {0.4, 0.5, 0.6, 0.7, 0.8}) {
    TaskSetParams params;
    params.num_tasks = 2 * m;
    params.total_utilization = nu * m;
    params.utilization_cap = m;
    params.period_min = 100;
    params.period_max = 50000;
    params.topology = DagTopology::kMixed;

    // Same systems for every config.
    std::vector<TaskSystem> systems;
    systems.reserve(static_cast<std::size_t>(trials));
    for (int i = 0; i < trials; ++i) {
      Rng rng = master.split();
      systems.push_back(generate_task_system(rng, params));
    }

    std::vector<std::string> row{fmt_double(nu, 1)};
    for (const auto& config : configs) {
      std::size_t accepted = 0;
      auto start = std::chrono::steady_clock::now();
      for (const auto& sys : systems) {
        if (fedcons_schedulable(sys, m, config.options)) ++accepted;
      }
      auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
                         std::chrono::steady_clock::now() - start)
                         .count();
      row.push_back(fmt_ratio(accepted, systems.size()));
      row.push_back(fmt_double(
          static_cast<double>(elapsed) / static_cast<double>(trials), 1));
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);
  if (csv) t.print_csv(std::cout);
  std::cout << "\nExpected shape: acceptance non-decreasing left to right "
               "per row (aggregate), cost increasing; DBF* (k=1) already "
               "captures most of the acceptance — the paper's trade-off.\n";
  return 0;
}
