// Experiment E9 — the paper's future-work direction (§V): federated
// scheduling of ARBITRARY-deadline sporadic DAG systems.
//
// Compares the two sound strategies of federated/arbitrary.h on random
// systems whose deadlines are stretched past their periods:
//   * clamp-to-period (analyze with D' = min(D,T); plain FEDCONS), and
//   * pipelined clusters (k = ⌈makespan/T⌉ round-robin template instances).
// The expected shape: pipelining recovers most of the acceptance that
// clamping throws away, at the cost of extra dedicated processors; the gap
// widens with the deadline-stretch factor (more post-period slack to
// exploit).
#include <iostream>

#include "fedcons/analysis/feasibility.h"
#include "fedcons/federated/arbitrary.h"
#include "fedcons/gen/taskset_gen.h"
#include "fedcons/util/flags.h"
#include "fedcons/util/rng.h"
#include "fedcons/util/stats.h"
#include "fedcons/util/table.h"

using namespace fedcons;

namespace {

TaskSystem stretch_deadlines(const TaskSystem& base, Rng& rng,
                             double stretch_prob, int max_factor) {
  TaskSystem out;
  for (const auto& t : base) {
    Time d = t.deadline();
    if (rng.bernoulli(stretch_prob)) {
      d = checked_mul(d, rng.uniform_int(2, max_factor));
    }
    Dag g = t.graph();
    out.add(DagTask(std::move(g), d, t.period(), t.name()));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool csv = flags.get_bool("csv", false);
  const int trials = static_cast<int>(flags.get_int("trials", 120));
  const int m = 8;

  for (auto [stretch_prob, max_factor, label] :
       {std::tuple{0.3, 2, "mild (30% of tasks, D up to 2T)"},
        std::tuple{0.7, 4, "heavy (70% of tasks, D up to 4T)"}}) {
    std::cout << "== E9: arbitrary-deadline federated scheduling — stretch "
              << label << ", m = " << m << ", " << trials
              << " systems/point\n";
    Table t({"U/m", "NEC-upper", "clamp-to-period", "pipelined",
             "mean instances/cluster", "mean extra procs"});
    Rng master(31337);
    for (double nu : {0.2, 0.3, 0.4, 0.5, 0.6, 0.7}) {
      TaskSetParams params;
      params.num_tasks = 2 * m;
      params.total_utilization = nu * m;
      params.utilization_cap = m;
      params.period_min = 100;
      params.period_max = 20000;
      params.topology = DagTopology::kMixed;
      std::size_t nec = 0, clamped = 0, pipelined = 0;
      OnlineStats instances, extra;
      for (int i = 0; i < trials; ++i) {
        Rng rng = master.split();
        TaskSystem base = generate_task_system(rng, params);
        TaskSystem sys = stretch_deadlines(base, rng, stretch_prob,
                                           max_factor);
        if (passes_necessary_conditions(sys, m)) ++nec;
        if (arbitrary_federated_schedulable(
                sys, m, ArbitraryStrategy::kClampToPeriod)) {
          ++clamped;
        }
        auto pipe = arbitrary_federated_schedule(
            sys, m, ArbitraryStrategy::kPipelined);
        if (pipe.success) {
          ++pipelined;
          for (const auto& c : pipe.clusters) {
            instances.add(c.instances);
            extra.add(c.total_processors() - c.processors_per_instance);
          }
        }
      }
      t.add_row({fmt_double(nu, 1),
                 fmt_ratio(nec, static_cast<std::size_t>(trials)),
                 fmt_ratio(clamped, static_cast<std::size_t>(trials)),
                 fmt_ratio(pipelined, static_cast<std::size_t>(trials)),
                 instances.count() ? fmt_double(instances.mean(), 2) : "n/a",
                 extra.count() ? fmt_double(extra.mean(), 2) : "n/a"});
    }
    t.print(std::cout);
    if (csv) t.print_csv(std::cout);
    std::cout << "\n";
  }
  // Decisive family: pipelined chains with len > T. Clamping is hopeless
  // (len > min(D,T) = T for every member); pipelining sizes k = ⌈len/T⌉
  // instances and succeeds whenever k chains fit the platform.
  std::cout << "== E9b: overlapping-chain family — chain of c unit-jobs, "
               "T = 2, D = len (one dag-job spans c/2 periods)\n";
  Table t2({"chain length c", "delta", "clamp verdict", "pipelined verdict",
            "instances k", "processors used"});
  for (int c : {2, 4, 6, 8, 12}) {
    Dag g;
    VertexId prev = g.add_vertex(1);
    for (int i = 1; i < c; ++i) {
      VertexId v = g.add_vertex(1);
      g.add_edge(prev, v);
      prev = v;
    }
    TaskSystem sys;
    sys.add(DagTask(std::move(g), /*deadline=*/c, /*period=*/2, "chain"));
    bool clamp = arbitrary_federated_schedulable(
        sys, 16, ArbitraryStrategy::kClampToPeriod);
    auto pipe = arbitrary_federated_schedule(sys, 16,
                                             ArbitraryStrategy::kPipelined);
    t2.add_row({fmt_int(c), sys[0].density().to_string(),
                clamp ? "accept" : "reject",
                pipe.success ? "accept" : "reject",
                pipe.success ? fmt_int(pipe.clusters[0].instances) : "n/a",
                pipe.success ? fmt_int(pipe.clusters[0].total_processors())
                             : "n/a"});
  }
  t2.print(std::cout);
  if (csv) t2.print_csv(std::cout);

  std::cout << "\nExpected shape: pipelined ≥ clamp-to-period at every load "
               "(E9a), and on the overlapping-chain family (E9b) clamping "
               "rejects every member with c > T while pipelining accepts "
               "with k = ⌈c/2⌉ instances.\n";
  return 0;
}
