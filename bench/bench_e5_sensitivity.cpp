// Experiment E5 — sensitivity of acceptance to generator parameters:
// deadline ratio D/T, DAG topology, and task count. Complements E3 by
// showing the qualitative conclusions are not artifacts of one generator
// configuration (the paper's own caveat: "such results are necessarily
// deeply influenced by the manner in which we generate our task systems").
#include <iostream>

#include "fedcons/expr/acceptance.h"
#include "fedcons/expr/reports.h"
#include "fedcons/util/flags.h"

using namespace fedcons;

namespace {

SweepConfig base_config(int trials, std::uint64_t seed) {
  SweepConfig cfg;
  cfg.m = 8;
  cfg.trials = trials;
  cfg.seed = seed;
  cfg.normalized_utils = {0.2, 0.4, 0.6, 0.8};
  cfg.base.num_tasks = 16;
  cfg.base.period_min = 100;
  cfg.base.period_max = 50000;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool csv = flags.get_bool("csv", false);
  const int trials = static_cast<int>(flags.get_int("trials", 100));
  auto algorithms = standard_algorithms();

  // (a) Deadline-ratio sweep: tighter D/T shifts every curve left, and the
  // gap between FEDCONS (DBF*-aware) and density-based baselines widens.
  for (auto [lo, hi, label] :
       {std::tuple{0.25, 0.5, "tight"}, std::tuple{0.5, 0.75, "medium"},
        std::tuple{0.75, 1.0, "loose"}}) {
    SweepConfig cfg = base_config(trials, 1000);
    cfg.base.deadline_ratio_min = lo;
    cfg.base.deadline_ratio_max = hi;
    auto points = run_acceptance_sweep(cfg, algorithms);
    print_report(std::cout,
                 std::string("E5a: deadline ratio D/T in [") +
                     fmt_double(lo, 2) + ", " + fmt_double(hi, 2) + "] (" +
                     label + ")",
                 acceptance_table(points, algorithms), csv);
  }

  // (b) Topology sweep.
  for (auto topo : {DagTopology::kLayered, DagTopology::kForkJoin}) {
    SweepConfig cfg = base_config(trials, 2000);
    cfg.base.topology = topo;
    auto points = run_acceptance_sweep(cfg, algorithms);
    print_report(std::cout,
                 std::string("E5b: topology = ") + to_string(topo),
                 acceptance_table(points, algorithms), csv);
  }

  // (c) Task-count sweep: many light tasks vs few heavy ones at equal load.
  for (int n : {8, 16, 32}) {
    SweepConfig cfg = base_config(trials, 3000);
    cfg.base.num_tasks = n;
    auto points = run_acceptance_sweep(cfg, algorithms);
    print_report(std::cout, "E5c: n = " + std::to_string(n) + " tasks",
                 acceptance_table(points, algorithms), csv);
  }

  // Summary: weighted schedulability per configuration — one scalar per
  // algorithm per row (utilization-weighted mean of the acceptance curve),
  // the standard cross-parameter comparison view.
  std::cout << "== E5 summary: weighted schedulability\n";
  std::vector<std::string> header{"configuration"};
  for (const auto& a : algorithms) header.push_back(a.name);
  Table summary(std::move(header));
  auto add_summary = [&](const std::string& label, const SweepConfig& cfg) {
    auto points = run_acceptance_sweep(cfg, algorithms);
    auto w = weighted_schedulability(points, algorithms.size());
    std::vector<std::string> row{label};
    for (double v : w) row.push_back(fmt_double(v));
    summary.add_row(std::move(row));
  };
  {
    SweepConfig tight = base_config(trials, 1000);
    tight.base.deadline_ratio_min = 0.25;
    tight.base.deadline_ratio_max = 0.5;
    add_summary("D/T tight [0.25,0.5]", tight);
    SweepConfig loose = base_config(trials, 1000);
    loose.base.deadline_ratio_min = 0.75;
    loose.base.deadline_ratio_max = 1.0;
    add_summary("D/T loose [0.75,1.0]", loose);
    SweepConfig few = base_config(trials, 3000);
    few.base.num_tasks = 8;
    add_summary("n = 8 heavy tasks", few);
    SweepConfig many = base_config(trials, 3000);
    many.base.num_tasks = 32;
    add_summary("n = 32 light tasks", many);
  }
  summary.print(std::cout);
  if (csv) summary.print_csv(std::cout);
  std::cout << "\nExpected shape: FEDCONS leads every row; every algorithm's "
               "weighted score rises with looser deadlines and lighter "
               "tasks.\n";
  return 0;
}
