#!/usr/bin/env bash
# Record the batch-analysis performance numbers (BENCH_PR7.json): the
# MINPROCS / full-FEDCONS latency grid from bench_perf_algorithms plus the
# per-kernel scalar-vs-AVX2 microbenchmarks from bench_simd_kernels.
# Also records the admission-control service numbers (BENCH_SERVE.json):
# a real fedcons_serve daemon on a unix socket driven by the closed-loop
# fedcons_loadgen, at two resident-set sizes, plus an observability on/off
# contrast at residents=4 (obs_overhead_pct; PR-9 bar: <= 3%).
#
# Usage: bench/run_perf.sh [--serve-only] [build-dir] [output.json]
#   --serve-only  record only BENCH_SERVE.json (skips the batch grids)
#   build-dir     defaults to build-release  (the Release preset's binaryDir)
#   output.json   defaults to BENCH_PR7.json in the repo root
#                 (BENCH_SERVE.json always lands next to it)
#
# The script REFUSES to record from a non-Release build: an earlier revision
# defaulted to `build/` and happily captured whatever configuration lived
# there, so recorded "speedups" could compare a debug binary against a
# release one. Now CMakeCache.txt must say CMAKE_BUILD_TYPE=Release, and the
# build type + active SIMD backend are stamped into the output document
# (the benchmark binaries additionally stamp simd_backend / build_assertions
# into their own context blocks).
#
# Acceptance bar recorded in ISSUE.md (PR 7): BM_FedconsFullTest/128 at
# least 3x faster than the BENCH_PR2.json recording of the same benchmark.
# The script computes that ratio when BENCH_PR2.json is present.
set -euo pipefail

serve_only=0
if [[ "${1:-}" == "--serve-only" ]]; then
  serve_only=1
  shift
fi

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-release}"
out_json="${2:-$repo_root/BENCH_PR7.json}"
serve_json="$(dirname "$out_json")/BENCH_SERVE.json"

cache="$build_dir/CMakeCache.txt"
if [[ ! -f "$cache" ]]; then
  echo "error: $cache not found — configure first (cmake --preset release)" >&2
  exit 1
fi
build_type="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$cache")"
if [[ "$build_type" != "Release" ]]; then
  echo "error: $build_dir is a '$build_type' build; benchmarks are only" >&2
  echo "recorded from CMAKE_BUILD_TYPE=Release (cmake --preset release &&" >&2
  echo "cmake --build $repo_root/build-release)" >&2
  exit 1
fi

if [[ $serve_only -eq 0 ]]; then
for bin in bench_perf_algorithms bench_simd_kernels; do
  if [[ ! -x "$build_dir/bench/$bin" ]]; then
    echo "error: $build_dir/bench/$bin not found — build first" >&2
    exit 1
  fi
done

tmp_algo="$(mktemp)"
tmp_simd="$(mktemp)"
trap 'rm -f "$tmp_algo" "$tmp_simd"' EXIT

# Note: this google-benchmark build takes --benchmark_min_time as a plain
# double (seconds), not the newer "0.1s" suffix form.
"$build_dir/bench/bench_perf_algorithms" \
  "--benchmark_filter=BM_Minprocs|BM_MinprocsReference|BM_FedconsFullTest" \
  --benchmark_min_time=0.2 \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true \
  "--benchmark_out=$tmp_algo" \
  --benchmark_out_format=json

"$build_dir/bench/bench_simd_kernels" \
  --benchmark_min_time=0.1 \
  "--benchmark_out=$tmp_simd" \
  --benchmark_out_format=json

python3 - "$tmp_algo" "$tmp_simd" "$out_json" "$build_type" \
          "$repo_root/BENCH_PR2.json" <<'PY'
import json, sys

algo_path, simd_path, out_path, build_type, pr2_path = sys.argv[1:6]
algo = json.load(open(algo_path))
simd = json.load(open(simd_path))

def mean_ns(doc, name):
    for b in doc.get("benchmarks", []):
        if b.get("name") == name or (
            b.get("run_name") == name and b.get("aggregate_name") == "mean"
        ):
            return float(b["real_time"])
    return None

doc = {
    "schema_version": 1,
    "benchmark": "pr7_data_parallel_core",
    "cmake_build_type": build_type,
    "simd_backend": algo.get("context", {}).get("simd_backend", "?"),
    "build_assertions": algo.get("context", {}).get("build_assertions", "?"),
    "perf_algorithms": algo,
    "simd_kernels": simd,
}

head = mean_ns(algo, "BM_FedconsFullTest/128")
doc["fedcons_full_128_ns"] = head
try:
    pr2 = json.load(open(pr2_path))
    base = mean_ns(pr2, "BM_FedconsFullTest/128")
    if base and head:
        doc["fedcons_full_128_baseline_ns"] = base
        doc["fedcons_full_128_speedup_vs_pr2"] = round(base / head, 2)
except FileNotFoundError:
    pass

json.dump(doc, open(out_path, "w"), indent=1)
print()
print("wrote %s  (build=%s backend=%s)" % (
    out_path, build_type, doc["simd_backend"]))
if "fedcons_full_128_speedup_vs_pr2" in doc:
    print("BM_FedconsFullTest/128: %.0f ns vs %.0f ns baseline -> %.2fx" % (
        head, doc["fedcons_full_128_baseline_ns"],
        doc["fedcons_full_128_speedup_vs_pr2"]))
PY
fi  # serve_only

# ---------------------------------------------------------------------------
# Admission-control service: live fedcons_serve daemon on a unix socket,
# driven by the closed-loop fedcons_loadgen. The daemon runs single-worker
# (--threads=1, batch work inline) with eager dispatch — the fastest shape on
# small boxes, where extra workers just add cross-core cache traffic. Two
# resident-set sizes are recorded: per-event admission cost is linear in the
# number of resident tasks, so "residents" is the load knob that matters.
# Acceptance bar (PR 8): the small-resident run sustains >= 100k verdicts/s.

for bin in tools/fedcons_serve tools/fedcons_loadgen; do
  if [[ ! -x "$build_dir/$bin" ]]; then
    echo "error: $build_dir/$bin not found — build first" >&2
    exit 1
  fi
done

serve_tmp="$(mktemp -d)"
serve_pid=""
cleanup_serve() {
  [[ -n "$serve_pid" ]] && kill "$serve_pid" 2>/dev/null || true
  rm -rf "$serve_tmp"
}
trap cleanup_serve EXIT

# One run = fresh daemon + one loadgen closed loop + daemon stats at exit
# (--shutdown makes the loadgen send the protocol shutdown op, so the daemon
# drains, prints its stats JSON on stdout, and exits 0).
serve_run() {
  local label="$1" residents="$2"
  shift 2
  local sock="$serve_tmp/serve_$label.sock"
  "$build_dir/tools/fedcons_serve" --socket="$sock" \
    --threads=1 --max-batch=256 --batch-timeout-us=0 "$@" \
    > "$serve_tmp/server_$label.out" &
  serve_pid=$!
  for _ in $(seq 1 100); do
    [[ -S "$sock" ]] && break
    sleep 0.05
  done
  "$build_dir/tools/fedcons_loadgen" --socket="$sock" \
    --sessions=8 --pipeline=128 --residents="$residents" \
    --duration-s=5 --warmup-s=0.5 --json --shutdown \
    > "$serve_tmp/loadgen_$label.json"
  wait "$serve_pid"
  serve_pid=""
}

serve_run small_residents 4
serve_run default_residents 6

# Observability-overhead contrast at the acceptance shape (residents=4,
# PR 9 bar: <= 3% throughput cost). obs_off strips the series snapshotter
# (tracing is already off without --trace-out); obs_on adds request tracing
# at the default 1/256 sampling on top of the default 250ms series ring.
# Run-to-run noise on a 1-core box is larger than the effect being measured
# (+-5% vs ~2%), so the pair is interleaved 5x and the overhead is computed
# from per-mode medians.
for rep in 1 2 3 4 5; do
  serve_run "obs_off_$rep" 4 --stats-interval-ms=0
  serve_run "obs_on_$rep" 4 --trace-out="$serve_tmp/trace_obs_on_$rep.json"
done

python3 - "$serve_tmp" "$serve_json" "$build_type" <<'PY'
import json, sys

tmp, out_path, build_type = sys.argv[1:4]

def load_run(label):
    loadgen = json.load(open("%s/loadgen_%s.json" % (tmp, label)))
    # The daemon prints a readiness line first, then its stats JSON on exit.
    server = None
    for line in open("%s/server_%s.out" % (tmp, label)):
        line = line.strip()
        if line.startswith("{"):
            server = json.loads(line)
    return {"label": label, "loadgen": loadgen, "server": server}

labels = ["small_residents", "default_residents"]
labels += ["obs_%s_%d" % (mode, rep)
           for rep in (1, 2, 3, 4, 5) for mode in ("off", "on")]
runs = [load_run(label) for label in labels]
head = runs[0]["loadgen"]
doc = {
    "schema_version": 2,
    "benchmark": "pr8_admission_service",
    "cmake_build_type": build_type,
    "transport": "unix",
    "server_flags": {"threads": 1, "max_batch": 256, "batch_timeout_us": 0},
    "runs": runs,
    "verdicts_per_sec": head["qps"],
    "p99_us": head["latency_us"]["p99"],
}

# PR-9 observability overhead: same workload shape, snapshotter+tracing off
# vs tracing at the default 1/256 sampling. Median over the 5 interleaved
# repetitions of each mode.
import statistics
by_label = {r["label"]: r["loadgen"] for r in runs}
off_qps = statistics.median(
    float(by_label["obs_off_%d" % rep]["qps"]) for rep in (1, 2, 3, 4, 5))
on_qps = statistics.median(
    float(by_label["obs_on_%d" % rep]["qps"]) for rep in (1, 2, 3, 4, 5))
doc["obs_off_qps"] = off_qps
doc["obs_on_qps"] = on_qps
doc["obs_overhead_pct"] = round(100.0 * (off_qps - on_qps) / off_qps, 2)

# The PR-8 sustained-throughput bar is judged from the obs_off medians:
# that run shape (residents=4, no snapshotter, no tracing) is exactly the
# PR-8 daemon configuration, and a median of 3 is robust to the single-run
# noise the one-shot small_residents row carries.
doc["verdicts_per_sec"] = off_qps

json.dump(doc, open(out_path, "w"), indent=1)
print()
print("wrote %s  (build=%s)" % (out_path, build_type))
for r in runs:
    lg = r["loadgen"]
    print("%-17s residents=%d sessions=%d pipeline=%d: "
          "%.0f verdicts/s  p50=%dus p99=%dus errors=%d" % (
              r["label"], lg["residents"], lg["sessions"], lg["pipeline"],
              lg["qps"], lg["latency_us"]["p50"], lg["latency_us"]["p99"],
              lg["errors"]))
bar = 100000.0
verdict = "MET" if doc["verdicts_per_sec"] >= bar else "NOT MET"
print("acceptance (>=100k verdicts/s sustained): %s" % verdict)
obs_verdict = "MET" if doc["obs_overhead_pct"] <= 3.0 else "NOT MET"
print("observability overhead: %.0f -> %.0f verdicts/s (%.2f%%); "
      "acceptance (<=3%%): %s" % (
          off_qps, on_qps, doc["obs_overhead_pct"], obs_verdict))
PY
