#!/usr/bin/env bash
# Run the PR-2 performance comparison (bound-guided MINPROCS + workspace LS
# core vs. the seed reference path) and emit BENCH_PR2.json.
#
# Usage: bench/run_perf.sh [build-dir] [output.json]
#   build-dir    defaults to build        (must contain bench/bench_perf_algorithms)
#   output.json  defaults to BENCH_PR2.json in the repo root
#
# The acceptance bar recorded in ISSUE.md: BM_Minprocs/128 at least 3x faster
# than BM_MinprocsReference/128 on the same instances. Both numbers land in
# the JSON so the comparison is auditable.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
out_json="${2:-$repo_root/BENCH_PR2.json}"
bench_bin="$build_dir/bench/bench_perf_algorithms"

if [[ ! -x "$bench_bin" ]]; then
  echo "error: $bench_bin not found — build first (cmake --build $build_dir)" >&2
  exit 1
fi

# Note: this google-benchmark build takes --benchmark_min_time as a plain
# double (seconds), not the newer "0.1s" suffix form.
"$bench_bin" \
  "--benchmark_filter=BM_Minprocs|BM_MinprocsReference|BM_FedconsFullTest" \
  --benchmark_min_time=0.2 \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true \
  "--benchmark_out=$out_json" \
  --benchmark_out_format=json

echo
echo "wrote $out_json"
