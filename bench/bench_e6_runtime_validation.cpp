// Experiment E6 — run-time validation of the analysis (paper §IV-A and
// footnote 2).
//
// Part 1: every random system FEDCONS accepts is simulated on the full
// platform under four release/execution regimes; the analysis is vindicated
// by ZERO deadline misses across millions of simulated jobs.
// Part 2: the Graham-anomaly demonstration — the same accepted allocation,
// dispatched by re-running LS online with shorter actual execution times,
// DOES miss deadlines, justifying the template-replay run-time rule.
#include <iostream>

#include "fedcons/expr/acceptance.h"
#include "fedcons/gen/taskset_gen.h"
#include "fedcons/listsched/anomaly.h"
#include "fedcons/sim/system_sim.h"
#include "fedcons/util/flags.h"
#include "fedcons/util/table.h"

using namespace fedcons;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool csv = flags.get_bool("csv", false);
  const int systems = static_cast<int>(flags.get_int("systems", 40));
  const Time horizon = flags.get_int("horizon", 50000);

  std::cout << "== E6.1: accepted systems never miss (federated run-time "
               "composition)\n";
  Table t({"release", "exec model", "systems", "dag-jobs simulated",
           "deadline misses"});
  Rng master(2025);
  TaskSetParams params;
  params.num_tasks = 12;
  params.total_utilization = 4.0;
  params.utilization_cap = 6.0;
  params.period_min = 50;
  params.period_max = 5000;
  params.topology = DagTopology::kMixed;

  struct Regime {
    const char* release;
    const char* exec;
    ReleaseModel rm;
    ExecModel em;
  };
  const Regime regimes[] = {
      {"periodic", "always-WCET", ReleaseModel::kPeriodic,
       ExecModel::kAlwaysWcet},
      {"periodic", "uniform[0.4,1]", ReleaseModel::kPeriodic,
       ExecModel::kUniform},
      {"sporadic", "always-WCET", ReleaseModel::kSporadic,
       ExecModel::kAlwaysWcet},
      {"sporadic", "uniform[0.4,1]", ReleaseModel::kSporadic,
       ExecModel::kUniform},
  };
  for (const auto& regime : regimes) {
    std::uint64_t jobs = 0, misses = 0;
    int accepted = 0;
    Rng rng = master.split();
    int tried = 0;
    while (accepted < systems && tried < systems * 20) {
      ++tried;
      Rng sys_rng = rng.split();
      TaskSystem sys = generate_task_system(sys_rng, params);
      auto alloc = fedcons_schedule(sys, 8);
      if (!alloc.success) continue;
      ++accepted;
      SimConfig cfg;
      cfg.horizon = horizon;
      cfg.release = regime.rm;
      cfg.exec = regime.em;
      cfg.exec_lo = 0.4;
      cfg.seed = 7000 + static_cast<std::uint64_t>(accepted);
      SystemSimReport rep = simulate_system(sys, alloc, cfg);
      jobs += rep.total.jobs_released;
      misses += rep.total.deadline_misses;
    }
    t.add_row({regime.release, regime.exec, fmt_int(accepted),
               fmt_int(static_cast<long long>(jobs)),
               fmt_int(static_cast<long long>(misses))});
  }
  t.print(std::cout);
  if (csv) t.print_csv(std::cout);

  std::cout << "\n== E6.2: Graham anomaly — template replay vs online LS "
               "re-run (paper footnote 2)\n";
  AnomalyInstance inst = make_graham_anomaly_instance();
  TaskSystem sys;
  sys.add(DagTask(inst.dag, inst.wcet_makespan, inst.wcet_makespan,
                  "graham-9job"));
  auto alloc = fedcons_schedule(sys, inst.processors);
  Table t2({"dispatch", "exec times", "dag-job completion", "deadline",
            "verdict"});
  // Template replay with the anomalous reduced execution times.
  std::vector<DagJobRelease> one(1);
  one[0].release = 0;
  one[0].exec_times = inst.reduced_exec_times;
  SimConfig cfg;
  cfg.horizon = 100;
  SimStats replay = simulate_cluster(sys[0], alloc.clusters[0].sigma, one,
                                     cfg, ClusterDispatch::kTemplateReplay);
  SimStats rerun = simulate_cluster(sys[0], alloc.clusters[0].sigma, one, cfg,
                                    ClusterDispatch::kOnlineRerun);
  t2.add_row({"template replay (σ lookup)", "reduced by 1 tick each",
              fmt_int(replay.max_response_time), fmt_int(inst.wcet_makespan),
              replay.deadline_misses == 0 ? "MEETS" : "MISSES"});
  t2.add_row({"online LS re-run", "reduced by 1 tick each",
              fmt_int(rerun.max_response_time), fmt_int(inst.wcet_makespan),
              rerun.deadline_misses == 0 ? "MEETS" : "MISSES"});
  t2.print(std::cout);
  if (csv) t2.print_csv(std::cout);
  std::cout << "\nExpected shape: zero misses everywhere in E6.1; in E6.2 the "
               "online re-run completes at "
            << inst.reduced_makespan << " > D = " << inst.wcet_makespan
            << " although every job ran SHORTER than its WCET.\n";
  return 0;
}
