// P2 — per-kernel microbenchmarks of the data-parallel analysis core
// (DESIGN.md §13), each kernel pinned to one backend per benchmark instance
// so BENCH_PR7.json records the scalar and AVX2 numbers side by side.
//
// Kernels:
//   BM_DbfProbeScan        — the certified DBF* lane scan over n breakpoints
//                            (the PARTITION acceptance probe's data plane)
//   BM_ExactAggregateProbe — the BigRational probe the scan replaces (for
//                            the certified-vs-exact contrast, not a backend)
//   BM_PartitionFirstFit   — end-to-end first-fit over 128 tasks
//   BM_LsBlockedProbe      — the blocked MINPROCS μ scan (fill-primitive
//                            resets; probe count dominated by LS itself)
//   BM_BatchRngFill        — 4-lane xoshiro256** block fill vs 4 scalar Rngs
//   BM_GenBatch            — batched instance generation vs per-seed scalar
//
// Every instance's last Arg selects the backend (0 = scalar, 1 = avx2);
// AVX2 instances report an error and skip when the CPU lacks it.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "fedcons/analysis/dbf.h"
#include "fedcons/federated/minprocs.h"
#include "fedcons/federated/partition.h"
#include "fedcons/gen/batch_gen.h"
#include "fedcons/gen/dag_gen.h"
#include "fedcons/gen/taskset_gen.h"
#include "fedcons/listsched/list_scheduler.h"
#include "fedcons/listsched/ls_workspace.h"
#include "fedcons/simd/batch_rng.h"
#include "fedcons/simd/dbf_kernel.h"
#include "fedcons/simd/dispatch.h"
#include "fedcons/util/rng.h"

namespace fedcons {
namespace {

using simd::SimdBackend;

/// Pin the backend named by the benchmark's last Arg for the duration of one
/// benchmark run; skip AVX2 instances on CPUs without it.
class BackendPin {
 public:
  BackendPin(benchmark::State& state, SimdBackend b) : ok_(true) {
    if (!simd::backend_supported(b)) {
      state.SkipWithError("backend not supported on this CPU");
      ok_ = false;
      return;
    }
    simd::force_backend(b);
    state.SetLabel(simd::to_string(b));
  }
  ~BackendPin() { simd::force_backend(std::nullopt); }
  [[nodiscard]] bool ok() const { return ok_; }

 private:
  bool ok_;
};

SimdBackend arg_backend(const benchmark::State& state, int idx) {
  return state.range(idx) == 0 ? SimdBackend::kScalar : SimdBackend::kAvx2;
}

std::vector<SporadicTask> random_sequential_tasks(int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<SporadicTask> tasks;
  tasks.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    Time period = rng.uniform_int(50, 5000);
    Time deadline = rng.uniform_int(10, period);
    Time wcet = rng.uniform_int(1, std::max<Time>(1, deadline / 4));
    tasks.emplace_back(wcet, deadline, period);
  }
  return tasks;
}

/// A light-utilization member set whose aggregate demand fits at every
/// breakpoint, so the scan benchmark measures the full-length accept case
/// (dense-reject workloads step one lane at a time and favor scalar early
/// exit — the DESIGN.md §13 note).
std::vector<SporadicTask> light_sequential_tasks(int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<SporadicTask> tasks;
  tasks.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    Time deadline = rng.uniform_int(100, 5000);
    tasks.emplace_back(1, deadline, deadline * 10);
  }
  return tasks;
}

// The certified lane scan across every breakpoint of an n-member aggregate —
// all-fit lanes so the scan runs its full length (the common accept case).
void BM_DbfProbeScan(benchmark::State& state) {
  const BackendPin pin(state, arg_backend(state, 1));
  if (!pin.ok()) return;
  const int n = static_cast<int>(state.range(0));
  DbfStarAggregate agg;
  for (const auto& t : light_sequential_tasks(n, 21)) agg.insert(t);
  const simd::DbfCand cand = simd::dbf_affine_term(1, 10, 5000);
  const double eps_n = simd::kDbfEps * static_cast<double>(agg.size() + 16);
  const auto bp = agg.soa_breakpoints();
  const auto A = agg.soa_prefix_a();
  const auto B = agg.soa_prefix_b();
  const auto M = agg.soa_prefix_mag();
  const int end = static_cast<int>(bp.size());
  for (auto _ : state) {
    simd::LaneClass cls;
    int stop = 0;
    int i = 0;
    while (i < end) {
      stop = simd::dbf_scan(bp.data(), A.data(), B.data(), M.data(), i, end,
                            cand, eps_n, &cls);
      if (stop == end) break;
      i = stop + 1;  // fuzz-shaped restart; all-fit input never takes it
    }
    benchmark::DoNotOptimize(stop);
  }
  state.SetItemsProcessed(state.iterations() * end);
}
BENCHMARK(BM_DbfProbeScan)
    ->Args({32, 0})->Args({32, 1})
    ->Args({128, 0})->Args({128, 1})
    ->Args({512, 0})->Args({512, 1});

// The exact rational probe one certified scan replaces: Σ DBF* at every
// breakpoint via the aggregate's exact prefixes. Not backend-dispatched —
// this is the contrast line for the certified-vs-exact speedup.
void BM_ExactAggregateProbe(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  DbfStarAggregate agg;
  for (const auto& t : random_sequential_tasks(n, 21)) agg.insert(t);
  const auto dds = agg.distinct_deadlines();
  for (auto _ : state) {
    bool ok = true;
    for (const Time bp : dds) {
      ok = ok && (agg.sum_at_uncounted(bp) <= BigRational(bp));
    }
    benchmark::DoNotOptimize(ok);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(dds.size()));
}
BENCHMARK(BM_ExactAggregateProbe)->Arg(32)->Arg(128)->Arg(512);

void BM_PartitionFirstFit(benchmark::State& state) {
  const BackendPin pin(state, arg_backend(state, 0));
  if (!pin.ok()) return;
  const auto tasks = random_sequential_tasks(128, 23);
  for (auto _ : state) {
    benchmark::DoNotOptimize(partition_tasks(tasks, 32));
  }
}
BENCHMARK(BM_PartitionFirstFit)->Arg(0)->Arg(1);

void BM_LsBlockedProbe(benchmark::State& state) {
  const BackendPin pin(state, arg_backend(state, 1));
  if (!pin.ok()) return;
  const int m = static_cast<int>(state.range(0));
  Rng rng(11);
  LayeredDagParams p;
  p.min_layers = 8;
  p.max_layers = 8;
  p.min_width = m;
  p.max_width = m;
  p.max_wcet = 40;
  Dag g = generate_layered_dag(rng, p);
  LsWorkspace& ws = thread_ls_workspace();
  ls_prepare(ws, g, ListPolicy::kVertexOrder, /*use_reduced_graph=*/true);
  std::vector<int> mus;
  for (int mu = 1; mu <= m; ++mu) mus.push_back(mu);
  std::vector<Time> makespans(mus.size());
  for (auto _ : state) {
    // fit_deadline 0: never fits, so every candidate is probed (worst case).
    benchmark::DoNotOptimize(ls_run_blocked(ws, g, mus, 0, makespans));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(mus.size()));
}
BENCHMARK(BM_LsBlockedProbe)->Args({32, 0})->Args({32, 1})
    ->Args({128, 0})->Args({128, 1});

void BM_BatchRngFill(benchmark::State& state) {
  const BackendPin pin(state, arg_backend(state, 0));
  if (!pin.ok()) return;
  const std::uint64_t seeds[4] = {1, 2, 3, 4};
  simd::Xoshiro4 xo(seeds);
  constexpr int kBlock = 1024;
  std::vector<std::uint64_t> lanes[4];
  std::uint64_t* out[4];
  for (int l = 0; l < 4; ++l) {
    lanes[l].resize(kBlock);
    out[l] = lanes[l].data();
  }
  for (auto _ : state) {
    xo.fill(out, kBlock);
    benchmark::DoNotOptimize(lanes[0][kBlock - 1]);
  }
  state.SetItemsProcessed(state.iterations() * 4 * kBlock);
}
BENCHMARK(BM_BatchRngFill)->Arg(0)->Arg(1);

// The scalar contrast for BM_BatchRngFill: four independent Rngs drawing the
// same total number of words one at a time.
void BM_SerialRngFill(benchmark::State& state) {
  Rng rngs[4] = {Rng(1), Rng(2), Rng(3), Rng(4)};
  constexpr int kBlock = 1024;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    for (auto& rng : rngs) {
      for (int i = 0; i < kBlock; ++i) sink ^= rng.next_u64();
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 4 * kBlock);
}
BENCHMARK(BM_SerialRngFill);

void BM_GenBatch(benchmark::State& state) {
  const BackendPin pin(state, arg_backend(state, 0));
  if (!pin.ok()) return;
  TaskSetParams params;
  params.num_tasks = 16;
  params.total_utilization = 6.0;
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < 16; ++s) seeds.push_back(s + 100);
  for (auto _ : state) {
    benchmark::DoNotOptimize(generate_task_system_batch(seeds, params));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(seeds.size()));
}
BENCHMARK(BM_GenBatch)->Arg(0)->Arg(1);

void BM_GenSerial(benchmark::State& state) {
  TaskSetParams params;
  params.num_tasks = 16;
  params.total_utilization = 6.0;
  for (auto _ : state) {
    std::vector<TaskSystem> out;
    out.reserve(16);
    for (std::uint64_t s = 0; s < 16; ++s) {
      Rng rng(s + 100);
      out.push_back(generate_task_system(rng, params));
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_GenSerial);

}  // namespace
}  // namespace fedcons

int main(int argc, char** argv) {
  benchmark::AddCustomContext(
      "simd_backend",
      fedcons::simd::to_string(fedcons::simd::active_backend()));
#ifdef NDEBUG
  benchmark::AddCustomContext("build_assertions", "off (NDEBUG)");
#else
  benchmark::AddCustomContext("build_assertions", "on (debug build?)");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
