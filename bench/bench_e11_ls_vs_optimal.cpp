// Experiment E11 — the empirical face of Lemma 1: how close is Graham list
// scheduling (and hence MINPROCS's processor counts) to OPTIMAL?
//
// For random small DAGs the exact non-preemptive optimum is computed by
// branch and bound (listsched/optimal_makespan.h) and compared against the
// LS makespan under each priority policy. Lemma 1 guarantees
// LS ≤ (2 − 1/m)·OPT; the measured ratios show how pessimistic that factor
// is for realistic DAG shapes — the same story E4/E7 tell at system level,
// here isolated to the high-density phase's core primitive.
#include <iostream>

#include "fedcons/gen/dag_gen.h"
#include "fedcons/listsched/list_scheduler.h"
#include "fedcons/listsched/optimal_makespan.h"
#include "fedcons/util/flags.h"
#include "fedcons/util/rng.h"
#include "fedcons/util/stats.h"
#include "fedcons/util/table.h"

using namespace fedcons;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool csv = flags.get_bool("csv", false);
  const int samples = static_cast<int>(flags.get_int("samples", 250));

  std::cout << "== E11: LS makespan vs exact optimum on random layered DAGs "
               "(" << samples << " DAGs per row, |V| <= 12)\n";
  Table t({"m", "policy", "mean LS/OPT", "p95 LS/OPT", "max LS/OPT",
           "LS==OPT", "bound 2-1/m"});
  Rng rng(271828);
  for (int m : {2, 3, 4}) {
    struct PolicyRow {
      ListPolicy policy;
      OnlineStats ratio;
      std::vector<double> ratios;
      int exact_hits = 0;
    };
    std::vector<PolicyRow> rows{{ListPolicy::kVertexOrder, {}, {}, 0},
                                {ListPolicy::kCriticalPath, {}, {}, 0},
                                {ListPolicy::kLongestWcet, {}, {}, 0}};
    int measured = 0;
    while (measured < samples) {
      LayeredDagParams p;
      p.min_layers = 2;
      p.max_layers = 4;
      p.min_width = 1;
      p.max_width = 3;
      p.max_wcet = 20;
      Dag g = generate_layered_dag(rng, p);
      if (g.num_vertices() > 12) continue;
      auto opt = optimal_makespan(g, m);
      if (!opt.exact) continue;
      ++measured;
      for (auto& row : rows) {
        Time ls = list_schedule(g, m, row.policy).makespan();
        double ratio = static_cast<double>(ls) /
                       static_cast<double>(opt.makespan);
        row.ratio.add(ratio);
        row.ratios.push_back(ratio);
        if (ls == opt.makespan) ++row.exact_hits;
      }
    }
    for (auto& row : rows) {
      t.add_row({fmt_int(m), to_string(row.policy),
                 fmt_double(row.ratio.mean()),
                 fmt_double(percentile(row.ratios, 95)),
                 fmt_double(row.ratio.max()),
                 fmt_ratio(static_cast<std::size_t>(row.exact_hits),
                           static_cast<std::size_t>(measured)),
                 fmt_double(2.0 - 1.0 / static_cast<double>(m))});
    }
  }
  t.print(std::cout);
  if (csv) t.print_csv(std::cout);
  std::cout << "\nExpected shape: every max ratio sits strictly below the "
               "2 − 1/m Graham bound; critical-path priority tracks OPT "
               "closest; LS hits the exact optimum on a large fraction of "
               "instances — the slack behind MINPROCS's near-ceil(delta) "
               "processor counts in E7.\n";
  return 0;
}
