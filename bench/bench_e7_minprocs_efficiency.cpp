// Experiment E7 — MINPROCS efficiency (paper Lemma 1 / Figure 3).
//
// For random high-density tasks, compares:
//   * MINPROCS's processor count m_i against the ⌈δ_i⌉ lower bound (how many
//     extra processors list scheduling costs in practice vs the speedup-2
//     worst case), and against the Li-style closed-form count
//     ⌈(vol−len)/(D−len)⌉;
//   * the σ_i makespan against the max(len, ⌈vol/m_i⌉) lower bound.
#include <iostream>

#include "fedcons/federated/federated_implicit.h"
#include "fedcons/federated/minprocs.h"
#include "fedcons/gen/dag_gen.h"
#include "fedcons/util/flags.h"
#include "fedcons/util/rng.h"
#include "fedcons/util/stats.h"
#include "fedcons/util/table.h"

using namespace fedcons;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool csv = flags.get_bool("csv", false);
  const int samples = static_cast<int>(flags.get_int("samples", 300));

  std::cout << "== E7: MINPROCS processor counts vs lower bounds (random "
               "high-density tasks)\n";
  Table t({"tightness D/vol", "tasks", "mean ceil(delta)", "mean MINPROCS",
           "mean closed-form", "MINPROCS==lb", "mean makespan/LB",
           "max makespan/LB"});
  Rng rng(77);
  for (double tightness : {0.3, 0.5, 0.7, 0.9}) {
    OnlineStats lb_stats, mp_stats, cf_stats, ratio_stats;
    int exact = 0, measured = 0;
    LayeredDagParams params;
    params.min_layers = 3;
    params.max_layers = 7;
    params.min_width = 2;
    params.max_width = 6;
    params.max_wcet = 50;
    while (measured < samples) {
      Dag g = generate_layered_dag(rng, params);
      // Deadline a fixed fraction of vol (below vol → high density),
      // clamped to len so the task is feasible at all.
      Time deadline = std::max<Time>(
          g.len(), static_cast<Time>(tightness * static_cast<double>(g.vol())));
      if (deadline >= g.vol()) continue;  // would be low-density
      DagTask task(g, deadline, deadline + 10);
      auto mp = minprocs(task, 64);
      if (!mp) continue;
      ++measured;
      int lb = minprocs_lower_bound(task);
      int cf = closed_form_processor_count(task, deadline);
      lb_stats.add(lb);
      mp_stats.add(mp->processors);
      if (cf > 0) cf_stats.add(cf);
      if (mp->processors == lb) ++exact;
      double ratio = static_cast<double>(mp->sigma.makespan()) /
                     static_cast<double>(
                         makespan_lower_bound(task.graph(), mp->processors));
      ratio_stats.add(ratio);
    }
    t.add_row({fmt_double(tightness, 1), fmt_int(measured),
               fmt_double(lb_stats.mean(), 2), fmt_double(mp_stats.mean(), 2),
               fmt_double(cf_stats.mean(), 2), fmt_ratio(
                   static_cast<std::size_t>(exact),
                   static_cast<std::size_t>(measured)),
               fmt_double(ratio_stats.mean(), 3),
               fmt_double(ratio_stats.max(), 3)});
  }
  t.print(std::cout);
  if (csv) t.print_csv(std::cout);
  std::cout << "\nExpected shape: MINPROCS sits close to ceil(delta) (far "
               "from the 2x worst case), needs no more processors than the "
               "closed-form count, and sigma makespans stay well under "
               "Graham's 2-1/m factor over the lower bound.\n";
  return 0;
}
