// Experiment E1 — the paper's Figure 1 / Example 1, reproduced.
//
// Prints the derived metrics of the example sporadic DAG task (vol, len,
// density, utilization, classification) exactly as Example 1 states them,
// plus the LS/MINPROCS treatment of the task and its template schedule.
//
// Paper values: |V| = 5, |E| = 5, len₁ = 6, vol₁ = 9, δ₁ = 9/16, u₁ = 9/20,
// low-density.
#include <iostream>

#include "fedcons/core/builders.h"
#include "fedcons/federated/minprocs.h"
#include "fedcons/util/flags.h"
#include "fedcons/util/table.h"

using namespace fedcons;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool csv = flags.get_bool("csv", false);

  DagTask task = make_paper_example_task();

  std::cout << "== E1: paper Figure 1 / Example 1 — metrics of the example "
               "sporadic DAG task\n";
  Table metrics({"metric", "paper", "measured"});
  metrics.add_row({"|V|", "5", fmt_int(static_cast<long long>(
                                 task.graph().num_vertices()))});
  metrics.add_row({"|E|", "5", fmt_int(static_cast<long long>(
                                 task.graph().num_edges()))});
  metrics.add_row({"len", "6", fmt_int(task.len())});
  metrics.add_row({"vol", "9", fmt_int(task.vol())});
  metrics.add_row({"D", "16", fmt_int(task.deadline())});
  metrics.add_row({"T", "20", fmt_int(task.period())});
  metrics.add_row({"density δ", "9/16", task.density().to_string()});
  metrics.add_row({"utilization u", "9/20", task.utilization().to_string()});
  metrics.add_row({"class", "low-density",
                   task.is_low_density() ? "low-density" : "high-density"});
  metrics.print(std::cout);
  if (csv) metrics.print_csv(std::cout);

  std::cout << "\n== E1b: MINPROCS / List Scheduling on the example task\n";
  Table ls({"processors", "LS makespan", "lower bound", "graham bound",
            "meets D=16"});
  for (int m = 1; m <= 3; ++m) {
    TemplateSchedule s = list_schedule(task.graph(), m);
    ls.add_row({fmt_int(m), fmt_int(s.makespan()),
                fmt_int(makespan_lower_bound(task.graph(), m)),
                fmt_int(graham_bound(task.graph(), m)),
                s.makespan() <= task.deadline() ? "yes" : "no"});
  }
  ls.print(std::cout);
  if (csv) ls.print_csv(std::cout);

  auto mp = minprocs(task, 8);
  std::cout << "\nMINPROCS(tau_1, 8) = "
            << (mp ? std::to_string(mp->processors) : std::string("inf"))
            << " (lower bound ceil(delta) = " << minprocs_lower_bound(task)
            << ")\n";

  std::cout << "\nDOT rendering of the reconstructed Figure-1 DAG:\n"
            << task.graph().to_dot("figure1") << "\n";
  return 0;
}
