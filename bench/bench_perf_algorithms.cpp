// P1 — engineering performance of the analysis algorithms (google-benchmark).
//
// Not a paper table: establishes that the implementation scales to the
// experiment sizes used in E3–E8 (thousands of schedulability tests per
// sweep) with comfortable margins.
#include <benchmark/benchmark.h>

#include <vector>

#include "fedcons/analysis/dbf.h"
#include "fedcons/analysis/edf_uniproc.h"
#include "fedcons/analysis/rta.h"
#include "fedcons/federated/fedcons_algorithm.h"
#include "fedcons/federated/minprocs.h"
#include "fedcons/gen/taskset_gen.h"
#include "fedcons/listsched/list_scheduler.h"
#include "fedcons/listsched/optimal_makespan.h"
#include "fedcons/sim/system_sim.h"
#include "fedcons/simd/dispatch.h"
#include "fedcons/util/rng.h"

namespace fedcons {
namespace {

std::vector<SporadicTask> random_sequential_tasks(int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<SporadicTask> tasks;
  tasks.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    Time period = rng.uniform_int(50, 5000);
    Time deadline = rng.uniform_int(10, period);
    Time wcet = rng.uniform_int(1, std::max<Time>(1, deadline / 4));
    tasks.emplace_back(wcet, deadline, period);
  }
  return tasks;
}

Dag random_dag(int approx_vertices, std::uint64_t seed) {
  Rng rng(seed);
  LayeredDagParams p;
  p.min_layers = approx_vertices / 4;
  p.max_layers = approx_vertices / 4;
  p.min_width = 4;
  p.max_width = 4;
  p.max_wcet = 40;
  return generate_layered_dag(rng, p);
}

void BM_DbfEvaluation(benchmark::State& state) {
  auto tasks = random_sequential_tasks(static_cast<int>(state.range(0)), 1);
  Time t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(total_dbf(tasks, t));
    t = (t + 97) % 100000;
  }
}
BENCHMARK(BM_DbfEvaluation)->Arg(8)->Arg(32)->Arg(128);

void BM_ApproxDemandFits(benchmark::State& state) {
  auto tasks = random_sequential_tasks(static_cast<int>(state.range(0)), 2);
  Time t = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(approx_demand_fits(tasks, t));
    t = (t % 100000) + 1;
  }
}
BENCHMARK(BM_ApproxDemandFits)->Arg(8)->Arg(32)->Arg(128);

void BM_ExactEdfQpa(benchmark::State& state) {
  auto tasks = random_sequential_tasks(static_cast<int>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(edf_schedulable_qpa(tasks).schedulable);
  }
}
BENCHMARK(BM_ExactEdfQpa)->Arg(4)->Arg(8)->Arg(16);

void BM_ListSchedule(benchmark::State& state) {
  Dag g = random_dag(static_cast<int>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(list_schedule(g, 8).makespan());
  }
  state.SetLabel(std::to_string(g.num_vertices()) + " vertices");
}
BENCHMARK(BM_ListSchedule)->Arg(16)->Arg(64)->Arg(256);

// A MINPROCS-heavy instance for budget m: a wide DAG (width == m) whose
// deadline equals Graham's bound at m, so the linear scan has to probe a
// long prefix of [⌈δ⌉, m] before the makespan fits. This is the workload
// the bound-guided pruning + workspace reuse targets (BENCH_PR2.json).
DagTask minprocs_heavy_task(int m, std::uint64_t seed) {
  Rng rng(seed);
  LayeredDagParams p;
  p.min_layers = 8;
  p.max_layers = 8;
  p.min_width = m;
  p.max_width = m;
  p.max_wcet = 40;
  Dag g = generate_layered_dag(rng, p);
  const Time deadline = std::max(g.len(), graham_bound(g, m));
  return DagTask(std::move(g), deadline, deadline);
}

// The optimized scan: bound-guided cap + thread-local zero-allocation LS.
void BM_Minprocs(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const DagTask t = minprocs_heavy_task(m, 11);
  for (auto _ : state) {
    auto r = minprocs(t, m);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(std::to_string(t.graph().num_vertices()) + " vertices");
}
BENCHMARK(BM_Minprocs)->Arg(8)->Arg(32)->Arg(128);

// The seed reference scan (allocation-per-probe LS, no cap) on the SAME
// instances — the baseline the ≥3× acceptance criterion is measured against.
void BM_MinprocsReference(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const DagTask t = minprocs_heavy_task(m, 11);
  for (auto _ : state) {
    auto r = minprocs(t, m, ListPolicy::kVertexOrder,
                      MinprocsOptions{.prune = false});
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(std::to_string(t.graph().num_vertices()) + " vertices");
}
BENCHMARK(BM_MinprocsReference)->Arg(8)->Arg(32)->Arg(128);

// Full FEDCONS test (phase 1 + phase 2) on systems sized to keep several
// high-density tasks in play, at the same m grid as BM_Minprocs.
void BM_FedconsFullTest(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  Rng rng(13);
  TaskSetParams params;
  params.num_tasks = 2 * m;
  params.total_utilization = 0.6 * m;
  params.utilization_cap = 8.0;
  TaskSystem sys = generate_task_system(rng, params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fedcons_schedulable(sys, m));
  }
}
BENCHMARK(BM_FedconsFullTest)->Arg(8)->Arg(32)->Arg(128);

void BM_FedconsEndToEnd(benchmark::State& state) {
  Rng rng(5);
  TaskSetParams params;
  params.num_tasks = static_cast<int>(state.range(0));
  params.total_utilization = static_cast<double>(state.range(1)) * 0.6;
  params.utilization_cap = static_cast<double>(state.range(1));
  TaskSystem sys = generate_task_system(rng, params);
  const int m = static_cast<int>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fedcons_schedulable(sys, m));
  }
}
BENCHMARK(BM_FedconsEndToEnd)
    ->Args({8, 4})
    ->Args({16, 8})
    ->Args({32, 16})
    ->Args({64, 32});

void BM_RtaFixpoint(benchmark::State& state) {
  auto tasks = random_sequential_tasks(static_cast<int>(state.range(0)), 7);
  // DM order for a realistic admission workload.
  std::vector<SporadicTask> ordered;
  for (std::size_t i : deadline_monotonic_order(tasks)) {
    ordered.push_back(tasks[i]);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(fp_schedulable(ordered).schedulable);
  }
}
BENCHMARK(BM_RtaFixpoint)->Arg(4)->Arg(8)->Arg(16);

void BM_DbfApproxK(benchmark::State& state) {
  auto tasks = random_sequential_tasks(16, 8);
  const int k = static_cast<int>(state.range(0));
  Time t = 1;
  for (auto _ : state) {
    BigRational sum;
    for (const auto& task : tasks) sum += dbf_approx_k(task, t, k);
    benchmark::DoNotOptimize(sum);
    t = (t % 100000) + 1;
  }
}
BENCHMARK(BM_DbfApproxK)->Arg(1)->Arg(4)->Arg(8);

void BM_OptimalMakespan(benchmark::State& state) {
  Rng rng(9);
  LayeredDagParams p;
  p.min_layers = 3;
  p.max_layers = 3;
  p.min_width = static_cast<int>(state.range(0)) / 3;
  p.max_width = static_cast<int>(state.range(0)) / 3;
  p.max_wcet = 12;
  Dag g = generate_layered_dag(rng, p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimal_makespan(g, 2).makespan);
  }
  state.SetLabel(std::to_string(g.num_vertices()) + " vertices");
}
BENCHMARK(BM_OptimalMakespan)->Arg(6)->Arg(9)->Arg(12);

void BM_SystemSimulation(benchmark::State& state) {
  Rng rng(6);
  TaskSetParams params;
  params.num_tasks = 12;
  params.total_utilization = 4.0;
  params.utilization_cap = 6.0;
  params.period_min = 50;
  params.period_max = 5000;
  TaskSystem sys = generate_task_system(rng, params);
  auto alloc = fedcons_schedule(sys, 8);
  if (!alloc.success) {
    state.SkipWithError("generated system rejected; adjust seed");
    return;
  }
  SimConfig cfg;
  cfg.horizon = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        simulate_system(sys, alloc, cfg).total.jobs_released);
  }
}
BENCHMARK(BM_SystemSimulation)->Arg(10000)->Arg(100000);

}  // namespace
}  // namespace fedcons

// Custom main instead of BENCHMARK_MAIN(): stamp the active SIMD backend and
// the assertion mode into the benchmark context, so every emitted JSON
// (BENCH_PR*.json) records what was actually measured — run_perf.sh refuses
// non-Release builds, and these fields make the refusal auditable after the
// fact.
int main(int argc, char** argv) {
  benchmark::AddCustomContext(
      "simd_backend",
      fedcons::simd::to_string(fedcons::simd::active_backend()));
#ifdef NDEBUG
  benchmark::AddCustomContext("build_assertions", "off (NDEBUG)");
#else
  benchmark::AddCustomContext("build_assertions", "on (debug build?)");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
