// Experiment E3 — the paper's randomly-generated schedulability experiments
// (Section IV, concluding note): acceptance ratio vs normalized utilization.
//
// For each platform size m and each U_sum/m grid point, draws `trials` task
// systems and reports per-algorithm acceptance. The paper's qualitative
// claim to reproduce: FEDCONS "is generally overwhelmingly better than
// implied by the conservative bound of Theorem 1" — acceptance stays high
// far beyond the load at which a 3−1/m-speed guarantee alone would bite,
// and dominates the non-federated baselines whenever high-density tasks are
// present.
//
// Algorithms are resolved by name through the engine registry, and trials
// run on the engine's deterministic batch runner: --threads=N parallelizes
// the sweep while --json output stays byte-identical for every N.
//
// Observability flags:
//   --metrics          collect per-trial latency / μ / bins-touched
//                      histograms (obs/metrics.h); printed as a table per
//                      sweep, or embedded per point under --json. The value
//                      histograms are thread-count-invariant; latency is
//                      wall-clock and is not.
//   --trace-out=FILE   span-trace the run and write Chrome trace-event JSON
//                      (open in Perfetto; see EXPERIMENTS.md).
#include <fstream>
#include <iostream>

#include "fedcons/engine/registry.h"
#include "fedcons/expr/acceptance.h"
#include "fedcons/expr/reports.h"
#include "fedcons/obs/metrics.h"
#include "fedcons/obs/span_tracer.h"
#include "fedcons/sim/global_edf_sim.h"
#include "fedcons/util/flags.h"

using namespace fedcons;

namespace {

/// Optimistic empirical bracket for the global approach: survive a
/// synchronous-periodic WCET global-EDF simulation over a bounded horizon.
/// NOT a schedulability proof (see baselines/global_edf.h) — listed last and
/// flagged in the caption. Registered as an ad-hoc engine test (experiment
/// binaries can extend the registry without touching the library).
AlgorithmSpec gedf_simulation_bracket() {
  return make_algorithm_spec(make_function_test(
      "GEDF-sim*",
      "empirical survival of a synchronous-periodic global-EDF simulation "
      "(optimistic bracket, not a proof)",
      [](const TaskSystem& s, int m) {
        if (s.empty()) return true;
        SimConfig cfg;
        Time max_period = 1;
        for (const auto& t : s) max_period = std::max(max_period, t.period());
        cfg.horizon = checked_mul(4, max_period);
        std::vector<std::vector<DagJobRelease>> releases;
        Rng rng(12345);
        for (const auto& t : s) {
          Rng child = rng.split();
          releases.push_back(generate_releases(t, cfg, child));
        }
        return simulate_global_edf(s, releases, m, cfg).deadline_misses == 0;
      }));
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool csv = flags.get_bool("csv", false);
  const bool json = flags.get_bool("json", false);
  const int trials = static_cast<int>(flags.get_int("trials", 150));
  const int threads = static_cast<int>(flags.get_int("threads", 0));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 42));
  const bool metrics = flags.get_bool("metrics", false);
  if (metrics) obs::set_metrics_enabled(true);
  const std::string trace_out = flags.get_string("trace-out", "");
  if (!trace_out.empty()) obs::set_tracing_enabled(true);

  auto algorithms = standard_algorithms();
  algorithms.push_back(gedf_simulation_bracket());
  std::vector<SweepSection> sections;
  for (int m : {4, 8, 16}) {
    SweepConfig cfg;
    cfg.m = m;
    cfg.trials = trials;
    cfg.seed = seed + static_cast<std::uint64_t>(m);
    cfg.num_threads = threads;
    cfg.normalized_utils = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0};
    cfg.base.num_tasks = 2 * m;  // standard n = 2m convention
    cfg.base.period_min = 100;
    cfg.base.period_max = 50000;
    cfg.base.topology = DagTopology::kMixed;
    cfg.collect_metrics = metrics;
    auto points = run_acceptance_sweep(cfg, algorithms);
    if (json) {
      sections.push_back({"m=" + std::to_string(m), m, std::move(points)});
      continue;
    }
    const bool with_ci = flags.get_bool("ci", false);
    print_report(std::cout,
                 "E3: acceptance ratio vs U_sum/m  (m = " + std::to_string(m) +
                     ", n = " + std::to_string(cfg.base.num_tasks) +
                     " tasks, " + std::to_string(trials) + " systems/point)",
                 acceptance_table(points, algorithms, with_ci), csv);
    if (metrics) {
      obs::MetricsRegistry merged;
      for (const auto& p : points) merged.merge(p.metrics);
      print_report(std::cout,
                   "E3 metrics (m = " + std::to_string(m) +
                       "): per-trial latency and algorithm-shape histograms",
                   merged.to_table(), csv);
    }
  }
  if (json) {
    std::cout << sweep_report_json("e3_acceptance_vs_util", seed, algorithms,
                                   sections);
  }
  if (!trace_out.empty()) {
    std::ofstream out(trace_out);
    if (!out) {
      std::cerr << "error: cannot write trace to '" << trace_out << "'\n";
      return 2;
    }
    obs::write_chrome_trace(out);
  }
  if (json) return 0;
  std::cout << "Columns: NEC-upper = necessary-feasibility proxy (upper "
               "bounds every algorithm); GEDF-sim* = empirical survival of a "
               "synchronous-periodic global-EDF simulation — an OPTIMISTIC "
               "bracket, not a proof. Expected shape: FEDCONS ≈ 1 at low "
               "load, degrades near U/m → 1; P-SEQ collapses when "
               "high-density tasks appear; GEDF-density is the most "
               "pessimistic analytical test, GEDF-sim* the loosest upper "
               "indicator.\n";
  return 0;
}
