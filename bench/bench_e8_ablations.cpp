// Experiment E8 — ablations over the design choices DESIGN.md calls out.
//
//  (a) PARTITION variant: paper-literal Fig. 4 (demand check only) vs the
//      full Baruah–Fisher predicate. For constrained-deadline systems under
//      deadline-monotonic order the demand check at every deadline point
//      implies Σu ≤ 1, so the two are expected to COINCIDE — an interesting
//      fact the bench verifies empirically (the variants differ only for
//      non-DM placement orders or arbitrary deadlines).
//  (b) Fit strategy and placement order inside PARTITION.
//  (c) List policy inside MINPROCS.
//  (d) Phase bottleneck: which FEDCONS phase rejects, as load grows —
//      reproducing the paper's §III observation that the PARTITION phase is
//      the constrained-deadline bottleneck.
//
// All ablation entries are engine adapters (make_fedcons_test) evaluated on
// the deterministic batch runner; --threads=N parallelizes every section
// without changing any count.
#include <iostream>

#include "fedcons/engine/adapters.h"
#include "fedcons/engine/batch_runner.h"
#include "fedcons/expr/acceptance.h"
#include "fedcons/expr/reports.h"
#include "fedcons/federated/fedcons_algorithm.h"
#include "fedcons/gen/taskset_gen.h"
#include "fedcons/util/flags.h"

using namespace fedcons;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool csv = flags.get_bool("csv", false);
  const int trials = static_cast<int>(flags.get_int("trials", 120));
  const int threads = static_cast<int>(flags.get_int("threads", 0));

  SweepConfig cfg;
  cfg.m = 8;
  cfg.trials = trials;
  cfg.seed = 4242;
  cfg.num_threads = threads;
  cfg.normalized_utils = {0.3, 0.5, 0.7, 0.9};
  cfg.base.num_tasks = 16;
  cfg.base.period_min = 100;
  cfg.base.period_max = 50000;
  cfg.base.topology = DagTopology::kMixed;

  // (a)+(b): partition variants, fits, orders.
  std::vector<AlgorithmSpec> partition_ablation;
  {
    FedconsOptions base;
    partition_ablation.push_back(
        make_algorithm_spec(make_fedcons_test("full/FF/DM", base)));
    FedconsOptions lit = base;
    lit.partition.variant = PartitionVariant::kPaperLiteral;
    partition_ablation.push_back(
        make_algorithm_spec(make_fedcons_test("literal/FF/DM", lit)));
    FedconsOptions bf = base;
    bf.partition.fit = FitStrategy::kBestFit;
    partition_ablation.push_back(
        make_algorithm_spec(make_fedcons_test("full/BF/DM", bf)));
    FedconsOptions wf = base;
    wf.partition.fit = FitStrategy::kWorstFit;
    partition_ablation.push_back(
        make_algorithm_spec(make_fedcons_test("full/WF/DM", wf)));
    FedconsOptions dens = base;
    dens.partition.order = PartitionOrder::kDensityDescending;
    partition_ablation.push_back(
        make_algorithm_spec(make_fedcons_test("full/FF/density", dens)));
    FedconsOptions util = base;
    util.partition.order = PartitionOrder::kUtilizationDescending;
    partition_ablation.push_back(
        make_algorithm_spec(make_fedcons_test("full/FF/util", util)));
  }
  print_report(std::cout,
               "E8a/b: PARTITION ablation (variant / fit / order)",
               acceptance_table(run_acceptance_sweep(cfg, partition_ablation),
                                partition_ablation),
               csv);

  // (c): list policy in MINPROCS.
  std::vector<AlgorithmSpec> policy_ablation;
  for (auto policy : {ListPolicy::kVertexOrder, ListPolicy::kCriticalPath,
                      ListPolicy::kLongestWcet}) {
    FedconsOptions opt;
    opt.list_policy = policy;
    policy_ablation.push_back(make_algorithm_spec(
        make_fedcons_test(std::string("LS:") + to_string(policy), opt)));
  }
  SweepConfig heavy = cfg;
  heavy.base.utilization_cap = 8.0;  // encourage high-density tasks
  heavy.base.deadline_ratio_min = 0.3;
  print_report(std::cout, "E8c: MINPROCS list-policy ablation",
               acceptance_table(run_acceptance_sweep(heavy, policy_ablation),
                                policy_ablation),
               csv);

  // (d): phase bottleneck — why does FEDCONS reject? Each grid point's
  // trials run in parallel; the per-phase tallies aggregate in trial order.
  std::cout << "== E8d: rejection breakdown by FEDCONS phase\n";
  Table t({"U/m", "accepted", "rejected: high-density phase",
           "rejected: partition phase"});
  BatchRunner runner(threads);
  for (std::size_t pi = 0; pi < cfg.normalized_utils.size(); ++pi) {
    const double nu = cfg.normalized_utils[pi];
    TaskSetParams params = cfg.base;
    params.total_utilization = nu * cfg.m;
    params.utilization_cap = cfg.m;
    const std::function<FedconsFailure(std::size_t, Rng&)> trial =
        [&](std::size_t, Rng& rng) {
          TaskSystem sys = generate_task_system(rng, params);
          return fedcons_schedule(sys, cfg.m).failure;
        };
    auto failures = runner.run_trials<FedconsFailure>(
        static_cast<std::size_t>(trials), trial_seed(999, pi), trial);
    int acc = 0, high = 0, part = 0;
    for (FedconsFailure f : failures) {
      if (f == FedconsFailure::kNone) ++acc;
      else if (f == FedconsFailure::kHighDensityPhase) ++high;
      else ++part;
    }
    t.add_row({fmt_double(nu, 1), fmt_int(acc), fmt_int(high),
               fmt_int(part)});
  }
  t.print(std::cout);
  if (csv) t.print_csv(std::cout);
  std::cout << "\nExpected shape: E8a literal == full under DM order "
               "(constrained deadlines make the utilization check "
               "redundant); E8d rejections concentrate in the PARTITION "
               "phase — the paper's constrained-deadline bottleneck.\n";
  return 0;
}
