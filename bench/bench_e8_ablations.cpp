// Experiment E8 — ablations over the design choices DESIGN.md calls out.
//
//  (a) PARTITION variant: paper-literal Fig. 4 (demand check only) vs the
//      full Baruah–Fisher predicate. For constrained-deadline systems under
//      deadline-monotonic order the demand check at every deadline point
//      implies Σu ≤ 1, so the two are expected to COINCIDE — an interesting
//      fact the bench verifies empirically (the variants differ only for
//      non-DM placement orders or arbitrary deadlines).
//  (b) Fit strategy and placement order inside PARTITION.
//  (c) List policy inside MINPROCS.
//  (d) Phase bottleneck: which FEDCONS phase rejects, as load grows —
//      reproducing the paper's §III observation that the PARTITION phase is
//      the constrained-deadline bottleneck.
#include <iostream>

#include "fedcons/expr/acceptance.h"
#include "fedcons/expr/reports.h"
#include "fedcons/federated/fedcons_algorithm.h"
#include "fedcons/gen/taskset_gen.h"
#include "fedcons/util/flags.h"

using namespace fedcons;

namespace {

AlgorithmSpec fedcons_with(const std::string& name, FedconsOptions opt) {
  return {name, [opt](const TaskSystem& s, int m) {
            return fedcons_schedulable(s, m, opt);
          }};
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool csv = flags.get_bool("csv", false);
  const int trials = static_cast<int>(flags.get_int("trials", 120));

  SweepConfig cfg;
  cfg.m = 8;
  cfg.trials = trials;
  cfg.seed = 4242;
  cfg.normalized_utils = {0.3, 0.5, 0.7, 0.9};
  cfg.base.num_tasks = 16;
  cfg.base.period_min = 100;
  cfg.base.period_max = 50000;
  cfg.base.topology = DagTopology::kMixed;

  // (a)+(b): partition variants, fits, orders.
  std::vector<AlgorithmSpec> partition_ablation;
  {
    FedconsOptions base;
    partition_ablation.push_back(fedcons_with("full/FF/DM", base));
    FedconsOptions lit = base;
    lit.partition.variant = PartitionVariant::kPaperLiteral;
    partition_ablation.push_back(fedcons_with("literal/FF/DM", lit));
    FedconsOptions bf = base;
    bf.partition.fit = FitStrategy::kBestFit;
    partition_ablation.push_back(fedcons_with("full/BF/DM", bf));
    FedconsOptions wf = base;
    wf.partition.fit = FitStrategy::kWorstFit;
    partition_ablation.push_back(fedcons_with("full/WF/DM", wf));
    FedconsOptions dens = base;
    dens.partition.order = PartitionOrder::kDensityDescending;
    partition_ablation.push_back(fedcons_with("full/FF/density", dens));
    FedconsOptions util = base;
    util.partition.order = PartitionOrder::kUtilizationDescending;
    partition_ablation.push_back(fedcons_with("full/FF/util", util));
  }
  print_report(std::cout,
               "E8a/b: PARTITION ablation (variant / fit / order)",
               acceptance_table(run_acceptance_sweep(cfg, partition_ablation),
                                partition_ablation),
               csv);

  // (c): list policy in MINPROCS.
  std::vector<AlgorithmSpec> policy_ablation;
  for (auto policy : {ListPolicy::kVertexOrder, ListPolicy::kCriticalPath,
                      ListPolicy::kLongestWcet}) {
    FedconsOptions opt;
    opt.list_policy = policy;
    policy_ablation.push_back(
        fedcons_with(std::string("LS:") + to_string(policy), opt));
  }
  SweepConfig heavy = cfg;
  heavy.base.utilization_cap = 8.0;  // encourage high-density tasks
  heavy.base.deadline_ratio_min = 0.3;
  print_report(std::cout, "E8c: MINPROCS list-policy ablation",
               acceptance_table(run_acceptance_sweep(heavy, policy_ablation),
                                policy_ablation),
               csv);

  // (d): phase bottleneck — why does FEDCONS reject?
  std::cout << "== E8d: rejection breakdown by FEDCONS phase\n";
  Table t({"U/m", "accepted", "rejected: high-density phase",
           "rejected: partition phase"});
  Rng rng(999);
  for (double nu : cfg.normalized_utils) {
    TaskSetParams params = cfg.base;
    params.total_utilization = nu * cfg.m;
    params.utilization_cap = cfg.m;
    int acc = 0, high = 0, part = 0;
    for (int i = 0; i < trials; ++i) {
      Rng sys_rng = rng.split();
      TaskSystem sys = generate_task_system(sys_rng, params);
      auto r = fedcons_schedule(sys, cfg.m);
      if (r.success) ++acc;
      else if (r.failure == FedconsFailure::kHighDensityPhase) ++high;
      else ++part;
    }
    t.add_row({fmt_double(nu, 1), fmt_int(acc), fmt_int(high),
               fmt_int(part)});
  }
  t.print(std::cout);
  if (csv) t.print_csv(std::cout);
  std::cout << "\nExpected shape: E8a literal == full under DM order "
               "(constrained deadlines make the utilization check "
               "redundant); E8d rejections concentrate in the PARTITION "
               "phase — the paper's constrained-deadline bottleneck.\n";
  return 0;
}
