// Experiment E4 — empirical speedup vs the Theorem-1 bound (3 − 1/m).
//
// Draws systems passing the necessary-feasibility proxy and measures the
// minimum processor speed at which FEDCONS accepts each. The paper's claim:
// the worst-case bound "is conservative" — empirical minimum speeds cluster
// far below 3 − 1/m.
//
// The measured algorithm is selected by engine-registry name (--algo=...),
// and candidate attempts are evaluated in parallel (--threads=N) with
// results independent of the thread count.
#include <iostream>

#include "fedcons/expr/reports.h"
#include "fedcons/expr/speedup_experiment.h"
#include "fedcons/util/flags.h"
#include "fedcons/util/stats.h"

using namespace fedcons;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool csv = flags.get_bool("csv", false);
  const bool json = flags.get_bool("json", false);
  const int samples = static_cast<int>(flags.get_int("samples", 60));
  const int threads = static_cast<int>(flags.get_int("threads", 0));
  const std::string algo = flags.get_string("algo", "FEDCONS");

  bool first_json = true;
  if (json) std::cout << "[\n";
  for (int m : {4, 8}) {
    for (double nu : {0.4, 0.6, 0.8}) {
      SpeedupExperimentConfig cfg;
      cfg.m = m;
      cfg.normalized_util = nu;
      cfg.samples = samples;
      cfg.max_attempts = samples * 30;
      cfg.seed = 7 + static_cast<std::uint64_t>(m * 100 + int(nu * 10));
      cfg.algorithm = algo;
      cfg.num_threads = threads;
      cfg.base.num_tasks = 2 * m;
      cfg.base.period_min = 100;
      cfg.base.period_max = 20000;
      auto result = run_speedup_experiment(cfg);
      if (json) {
        if (!first_json) std::cout << ",\n";
        first_json = false;
        std::cout << speedup_report_json("e4_empirical_speedup", cfg, result);
        continue;
      }
      print_report(std::cout,
                   "E4: empirical " + algo + " speedup distribution (m = " +
                       std::to_string(m) + ", U/m = " + fmt_double(nu, 1) +
                       ")",
                   speedup_table(result, m), csv);
    }
  }
  if (json) {
    std::cout << "]\n";
    return 0;
  }
  std::cout << "Expected shape: p95 and even max empirical speeds sit well "
               "below the theoretical 3 − 1/m row.\n";
  return 0;
}
