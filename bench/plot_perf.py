#!/usr/bin/env python3
"""Render the recorded BENCH_*.json artifacts as one throughput trajectory.

Four generations of recording live at the repo root:

  * BENCH_PR2.json — google-benchmark output of bench_perf_algorithms at the
    PR-2 optimization (bound-guided MINPROCS + workspace LS core).
  * BENCH_PR6.json — the custom document bench_online writes (steady-state
    online churn: admissions/sec, memo hit rate, per-event latency split by
    class, and the from-scratch re-analysis contrast per level).
  * BENCH_PR7.json — the wrapper document bench/run_perf.sh writes at the
    PR-7 optimization (data-parallel analysis core): the same
    bench_perf_algorithms grid re-recorded, plus the per-kernel
    scalar-vs-AVX2 microbenchmarks from bench_simd_kernels.
  * BENCH_SERVE.json — the admission-control-service document
    bench/run_perf.sh writes at PR 8: a live fedcons_serve daemon on a unix
    socket driven by the closed-loop fedcons_loadgen, one run per
    resident-set size (verdicts/sec + the log2-bucket latency histogram),
    plus the PR-9 observability on/off contrast (obs_overhead_pct).

The script overlays the PR-2 and PR-7 batch curves per benchmark family
(analyses/sec by task count — the across-PRs throughput trajectory), draws
the online curve (admissions/sec by resident count) beside them, and lists
each SIMD kernel's scalar-vs-AVX2 contrast. With matplotlib available it
writes bench/perf_curves.png; otherwise it falls back to an ASCII rendering
on stdout (the container image carries no plotting stack, and installing
one is out of scope).

Usage: plot_perf.py [--repo-root DIR] [--out PNG]
"""

import argparse
import json
import os
import sys


def load_json(path):
    if not os.path.exists(path):
        return None
    with open(path) as fh:
        return json.load(fh)


def batch_series(doc):
    """google-benchmark doc -> {family: [(tasks, analyses_per_sec)]}."""
    if doc is None:
        return {}
    series = {}
    for bench in doc.get("benchmarks", []):
        # Prefer the _mean aggregate when repetitions were recorded; plain
        # runs have no aggregate_name.
        if bench.get("run_type") == "aggregate":
            if bench.get("aggregate_name") != "mean":
                continue
        name = bench.get("run_name", bench.get("name", ""))
        if "/" not in name:
            continue
        family, _, arg = name.partition("/")
        try:
            tasks = int(arg)
        except ValueError:
            continue
        ns = float(bench.get("real_time", 0.0))
        if ns <= 0:
            continue
        unit = bench.get("time_unit", "ns")
        scale = {"ns": 1e9, "us": 1e6, "ms": 1e3, "s": 1.0}.get(unit, 1e9)
        per_sec = scale / ns
        series.setdefault(family, {})[tasks] = per_sec
    return {
        family: sorted(points.items())
        for family, points in series.items()
    }


def overlay_batch(pr2_doc, pr7_doc):
    """Merge the two generations into {family: {gen: points}} for overlay."""
    merged = {}
    for gen, doc in (("PR2", pr2_doc), ("PR7", pr7_doc)):
        for family, points in batch_series(doc).items():
            merged.setdefault(family, {})[gen] = points
    return merged


def kernel_series(doc):
    """bench_simd_kernels doc -> {instance: {backend_label: ns}}.

    Backend instances carry a 'scalar'/'avx2' label (state.SetLabel); the
    instance key is the run name with its trailing backend selector dropped,
    so BM_DbfProbeScan/512/0 and /512/1 pair up. Unlabeled benchmarks (the
    serial contrast lines) key under their own name with label 'serial'.
    """
    if doc is None:
        return {}
    series = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("run_name", bench.get("name", ""))
        label = bench.get("label", "")
        ns = float(bench.get("real_time", 0.0))
        if ns <= 0:
            continue
        if label in ("scalar", "avx2"):
            instance = name.rsplit("/", 1)[0]
            series.setdefault(instance, {})[label] = ns
        else:
            series.setdefault(name, {})["serial"] = ns
    return series


def ascii_curve(title, points, unit):
    if not points:
        return ["  %s: (no recording)" % title]
    width = 46
    top = max(v for _, v in points)
    lines = ["  %s" % title]
    for x, v in points:
        bar = "#" * max(1, int(round(width * v / top))) if top > 0 else ""
        lines.append("    %6d  %-*s %12.0f %s" % (x, width, bar, v, unit))
    return lines


def ascii_overlay(family, gens):
    """One family's PR2-vs-PR7 curves on a shared scale."""
    all_points = [v for pts in gens.values() for _, v in pts]
    if not all_points:
        return []
    width = 46
    top = max(all_points)
    lines = ["  %s (analyses/sec by task count)" % family]
    for gen in sorted(gens):
        for x, v in gens[gen]:
            bar = "#" * max(1, int(round(width * v / top))) if top > 0 else ""
            lines.append("    %s %6d  %-*s %12.0f /s"
                         % (gen, x, width, bar, v))
        lines.append("")
    return lines


def ascii_kernels(kernels):
    if not kernels:
        return []
    out = ["  SIMD kernels, scalar vs AVX2 (BENCH_PR7; lower ns is better)"]
    for instance in sorted(kernels):
        backends = kernels[instance]
        parts = []
        for label in ("scalar", "avx2", "serial"):
            if label in backends:
                parts.append("%s %10.0f ns" % (label, backends[label]))
        line = "    %-28s %s" % (instance, "   ".join(parts))
        if "scalar" in backends and "avx2" in backends and backends["avx2"]:
            line += "   (%.2fx)" % (backends["scalar"] / backends["avx2"])
        out.append(line)
    return out


def online_series(doc):
    """BENCH_PR6: bench_online levels -> [(residents, admissions_per_sec)]."""
    if doc is None:
        return []
    return sorted(
        (int(level["residents"]), float(level["admissions_per_sec"]))
        for level in doc.get("levels", [])
    )


def serve_rows(doc):
    """BENCH_SERVE: runs -> [(label, residents, qps, p50, p99, p999)]."""
    if doc is None:
        return []
    rows = []
    for run in doc.get("runs", []):
        lg = run.get("loadgen", {})
        lat = lg.get("latency_us", {})
        rows.append((run.get("label", "?"), int(lg.get("residents", 0)),
                     float(lg.get("qps", 0.0)), int(lat.get("p50", 0)),
                     int(lat.get("p99", 0)), int(lat.get("p999", 0))))
    return rows


def ascii_serve(rows):
    if not rows:
        return []
    out = ["  admission service, closed loop over a unix socket "
           "(BENCH_SERVE)"]
    width = 46
    top = max(qps for _, _, qps, _, _, _ in rows)
    for label, residents, qps, p50, p99, p999 in rows:
        bar = "#" * max(1, int(round(width * qps / top))) if top > 0 else ""
        out.append("    residents=%-2d %-*s %9.0f verdicts/s" %
                   (residents, width, bar, qps))
        out.append("    %14s p50=%dus p99=%dus p999=%dus  (%s)" %
                   ("", p50, p99, p999, label))
    return out


def obs_overhead(doc):
    """BENCH_SERVE -> (obs_off_qps, obs_on_qps, overhead_pct) or None."""
    if doc is None or "obs_overhead_pct" not in doc:
        return None
    return (float(doc.get("obs_off_qps", 0.0)),
            float(doc.get("obs_on_qps", 0.0)),
            float(doc["obs_overhead_pct"]))


def ascii_obs(overhead):
    if overhead is None:
        return []
    off_qps, on_qps, pct = overhead
    return ["  observability overhead at residents=4 (default 1/256 "
            "sampling + 250ms series ring):",
            "    obs off %9.0f verdicts/s   obs on %9.0f verdicts/s   "
            "-> %.2f%% (bar: <=3%%)" % (off_qps, on_qps, pct)]


def render_ascii(batch_overlay_data, online, pr6, kernels, pr7, serve,
                 overhead):
    out = ["perf trajectory (ASCII fallback — matplotlib not available)", ""]
    for family in sorted(batch_overlay_data):
        out.extend(ascii_overlay(family, batch_overlay_data[family]))
    out.extend(ascii_curve(
        "bench_online (admissions/sec by resident count)", online, "/s"))
    if pr6 is not None:
        out.append("")
        out.append("  online flat-latency check: low-class admission ratio "
                   "at 10x residents = %sx"
                   % pr6.get("latency_ratio_10x", "?"))
    out.append("")
    out.extend(ascii_kernels(kernels))
    if pr7 is not None and "fedcons_full_128_speedup_vs_pr2" in pr7:
        out.append("")
        out.append("  BM_FedconsFullTest/128 speedup vs PR2 recording: %sx "
                   "(build=%s backend=%s)"
                   % (pr7["fedcons_full_128_speedup_vs_pr2"],
                      pr7.get("cmake_build_type", "?"),
                      pr7.get("simd_backend", "?")))
    if serve:
        out.append("")
        out.extend(ascii_serve(serve))
    if overhead is not None:
        out.append("")
        out.extend(ascii_obs(overhead))
    return "\n".join(out)


def render_png(batch_overlay_data, online, kernels, serve, overhead,
               out_path):
    import matplotlib
    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    fig, (ax_batch, ax_online, ax_kern, ax_serve, ax_obs) = plt.subplots(
        1, 5, figsize=(23, 4.2))
    styles = {"PR2": "--", "PR7": "-"}
    for family in sorted(batch_overlay_data):
        for gen, points in sorted(batch_overlay_data[family].items()):
            xs = [x for x, _ in points]
            ys = [y for _, y in points]
            ax_batch.plot(xs, ys, styles.get(gen, "-"), marker="o",
                          label="%s (%s)" % (family, gen))
    ax_batch.set_title("batch analyses/sec (PR2 vs PR7)")
    ax_batch.set_xlabel("tasks")
    ax_batch.set_ylabel("analyses/sec")
    ax_batch.set_xscale("log", base=2)
    ax_batch.set_yscale("log")
    ax_batch.legend(fontsize=7)

    if online:
        xs = [x for x, _ in online]
        ys = [y for _, y in online]
        ax_online.plot(xs, ys, marker="s", color="tab:green")
    ax_online.set_title("online admissions/sec (BENCH_PR6)")
    ax_online.set_xlabel("residents")
    ax_online.set_ylabel("admissions/sec")

    paired = {k: v for k, v in kernels.items()
              if "scalar" in v and "avx2" in v}
    if paired:
        names = sorted(paired)
        ratios = [paired[n]["scalar"] / paired[n]["avx2"] for n in names]
        ax_kern.barh(range(len(names)), ratios, color="tab:blue")
        ax_kern.set_yticks(range(len(names)))
        ax_kern.set_yticklabels(names, fontsize=7)
        ax_kern.axvline(1.0, color="gray", linewidth=0.8)
        ax_kern.set_title("kernel AVX2 speedup (BENCH_PR7)")
        ax_kern.set_xlabel("scalar time / avx2 time")

    # The residents curve uses only the resident-sweep runs; the obs_* pair
    # repeats residents=4 and lives in its own panel.
    sweep = [row for row in serve if not row[0].startswith("obs_")]
    if sweep:
        xs = [residents for _, residents, _, _, _, _ in sweep]
        ys = [qps for _, _, qps, _, _, _ in sweep]
        ax_serve.plot(xs, ys, marker="D", color="tab:red")
        for _, residents, qps, _, p99, _ in sweep:
            ax_serve.annotate("p99=%dus" % p99, (residents, qps),
                              textcoords="offset points", xytext=(4, 4),
                              fontsize=7)
    ax_serve.set_title("service verdicts/sec (BENCH_SERVE)")
    ax_serve.set_xlabel("residents")
    ax_serve.set_ylabel("verdicts/sec")

    if overhead is not None:
        off_qps, on_qps, pct = overhead
        ax_obs.bar(["obs off", "obs on"], [off_qps, on_qps],
                   color=["tab:gray", "tab:purple"])
        ax_obs.set_title("observability overhead: %.2f%% (bar <=3%%)" % pct)
        ax_obs.set_ylabel("verdicts/sec")
    else:
        ax_obs.set_title("observability overhead (no recording)")

    fig.tight_layout()
    fig.savefig(out_path, dpi=120)
    return out_path


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repo-root",
                        default=os.path.dirname(os.path.dirname(
                            os.path.abspath(__file__))))
    parser.add_argument("--out", default=None,
                        help="PNG path (default <repo>/bench/perf_curves.png)")
    args = parser.parse_args()

    pr2 = load_json(os.path.join(args.repo_root, "BENCH_PR2.json"))
    pr6 = load_json(os.path.join(args.repo_root, "BENCH_PR6.json"))
    pr7 = load_json(os.path.join(args.repo_root, "BENCH_PR7.json"))
    serve_doc = load_json(os.path.join(args.repo_root, "BENCH_SERVE.json"))
    if pr2 is None and pr6 is None and pr7 is None and serve_doc is None:
        print("no BENCH_*.json recordings under %s" % args.repo_root,
              file=sys.stderr)
        return 2

    pr7_algo = pr7.get("perf_algorithms") if pr7 else None
    batch = overlay_batch(pr2, pr7_algo)
    online = online_series(pr6)
    kernels = kernel_series(pr7.get("simd_kernels") if pr7 else None)
    serve = serve_rows(serve_doc)
    overhead = obs_overhead(serve_doc)

    try:
        out_path = args.out or os.path.join(args.repo_root, "bench",
                                            "perf_curves.png")
        print("wrote %s" % render_png(batch, online, kernels, serve,
                                      overhead, out_path))
    except ImportError:
        print(render_ascii(batch, online, pr6, kernels, pr7, serve,
                           overhead))
    return 0


if __name__ == "__main__":
    sys.exit(main())
