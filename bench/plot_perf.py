#!/usr/bin/env python3
"""Render the recorded BENCH_*.json artifacts as one throughput picture.

Two generations of recording live at the repo root:

  * BENCH_PR2.json — google-benchmark output of bench_perf_algorithms
    (batch-analysis latency: MINPROCS scan and the full FEDCONS test at
    several task-set sizes; see bench/run_perf.sh).
  * BENCH_PR6.json — the custom document bench_online writes (steady-state
    online churn: admissions/sec, memo hit rate, per-event latency split by
    class, and the from-scratch re-analysis contrast per level).

The script draws the batch curve (analyses/sec by task count) next to the
online curve (admissions/sec by resident count) so the PR-2 → PR-6 story —
throughput moving from per-batch to per-event — is one figure. With
matplotlib available it writes bench/perf_curves.png; otherwise it falls
back to an ASCII rendering on stdout (the container image carries no
plotting stack, and installing one is out of scope).

Usage: plot_perf.py [--repo-root DIR] [--out PNG]
"""

import argparse
import json
import os
import sys


def load_json(path):
    if not os.path.exists(path):
        return None
    with open(path) as fh:
        return json.load(fh)


def batch_series(doc):
    """BENCH_PR2: google-benchmark -> [(tasks, analyses_per_sec)] per family."""
    if doc is None:
        return {}
    series = {}
    for bench in doc.get("benchmarks", []):
        # Prefer the _mean aggregate when repetitions were recorded; plain
        # runs have no aggregate_name.
        if bench.get("run_type") == "aggregate":
            if bench.get("aggregate_name") != "mean":
                continue
        name = bench.get("run_name", bench.get("name", ""))
        if "/" not in name:
            continue
        family, _, arg = name.partition("/")
        try:
            tasks = int(arg)
        except ValueError:
            continue
        ns = float(bench.get("real_time", 0.0))
        if ns <= 0:
            continue
        unit = bench.get("time_unit", "ns")
        scale = {"ns": 1e9, "us": 1e6, "ms": 1e3, "s": 1.0}.get(unit, 1e9)
        per_sec = scale / ns
        series.setdefault(family, {})[tasks] = per_sec
    return {
        family: sorted(points.items())
        for family, points in series.items()
    }


def online_series(doc):
    """BENCH_PR6: bench_online levels -> [(residents, admissions_per_sec)]."""
    if doc is None:
        return []
    return sorted(
        (int(level["residents"]), float(level["admissions_per_sec"]))
        for level in doc.get("levels", [])
    )


def ascii_curve(title, points, unit):
    if not points:
        return ["  %s: (no recording)" % title]
    width = 46
    top = max(v for _, v in points)
    lines = ["  %s" % title]
    for x, v in points:
        bar = "#" * max(1, int(round(width * v / top))) if top > 0 else ""
        lines.append("    %6d  %-*s %12.0f %s" % (x, width, bar, v, unit))
    return lines


def render_ascii(batch, online, pr6):
    out = ["perf curves (ASCII fallback — matplotlib not available)", ""]
    for family, points in sorted(batch.items()):
        out.extend(ascii_curve("%s (batch analyses/sec by task count)"
                               % family, points, "/s"))
        out.append("")
    out.extend(ascii_curve(
        "bench_online (admissions/sec by resident count)", online, "/s"))
    if pr6 is not None:
        out.append("")
        out.append("  online flat-latency check: low-class admission ratio "
                   "at 10x residents = %sx"
                   % pr6.get("latency_ratio_10x", "?"))
        contrast = [(int(l["residents"]),
                     float(l.get("full_reanalysis_us", 0)),
                     float(l.get("admit_mean_latency_us", 0)))
                    for l in pr6.get("levels", [])]
        for residents, full_us, event_us in sorted(contrast):
            out.append("    %3d residents: full re-analysis %8.0f us, "
                       "per-event %6.1f us" % (residents, full_us, event_us))
    return "\n".join(out)


def render_png(batch, online, out_path):
    import matplotlib
    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    fig, (ax_batch, ax_online) = plt.subplots(1, 2, figsize=(11, 4.2))
    for family, points in sorted(batch.items()):
        xs = [x for x, _ in points]
        ys = [y for _, y in points]
        ax_batch.plot(xs, ys, marker="o", label=family)
    ax_batch.set_title("batch analyses/sec (BENCH_PR2)")
    ax_batch.set_xlabel("tasks")
    ax_batch.set_ylabel("analyses/sec")
    ax_batch.set_xscale("log", base=2)
    ax_batch.set_yscale("log")
    ax_batch.legend(fontsize=8)

    if online:
        xs = [x for x, _ in online]
        ys = [y for _, y in online]
        ax_online.plot(xs, ys, marker="s", color="tab:green")
    ax_online.set_title("online admissions/sec (BENCH_PR6)")
    ax_online.set_xlabel("residents")
    ax_online.set_ylabel("admissions/sec")

    fig.tight_layout()
    fig.savefig(out_path, dpi=120)
    return out_path


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repo-root",
                        default=os.path.dirname(os.path.dirname(
                            os.path.abspath(__file__))))
    parser.add_argument("--out", default=None,
                        help="PNG path (default <repo>/bench/perf_curves.png)")
    args = parser.parse_args()

    pr2 = load_json(os.path.join(args.repo_root, "BENCH_PR2.json"))
    pr6 = load_json(os.path.join(args.repo_root, "BENCH_PR6.json"))
    if pr2 is None and pr6 is None:
        print("no BENCH_*.json recordings under %s" % args.repo_root,
              file=sys.stderr)
        return 2

    batch = batch_series(pr2)
    online = online_series(pr6)

    try:
        out_path = args.out or os.path.join(args.repo_root, "bench",
                                            "perf_curves.png")
        print("wrote %s" % render_png(batch, online, out_path))
    except ImportError:
        print(render_ascii(batch, online, pr6))
    return 0


if __name__ == "__main__":
    sys.exit(main())
