// bench_online — sustained admission throughput of the AdmissionSession.
//
// The O(changed-task) claim (DESIGN.md §12): per-event cost scales with the
// placements the event actually changes, not with the resident count —
// phase 1 through the content-addressed memo, phase 2 through the per-bin
// aggregate replay. The workload is built so the changed set stays bounded
// while residents grow 10×: the stable population is high (dedicated-
// cluster) tasks that never enter the shared partition, plus a fixed-size
// set of low tasks on the shared bins; churn releases one random resident
// and admits a same-class replacement, so the partition delta never exceeds
// the low set. Note the converse is also real: first-fit equivalence makes
// some events genuinely global (admitting into a packed bin prefix dominoes
// displacements through every bin — the batch partitioner relocates Θ(n)
// placements and so must we), which is why the claim is O(changed-task),
// not O(1) unconditionally.
//
// Each level also times one from-scratch full re-analysis (fresh session,
// re-admit every resident) — the O(n) cost every event would pay without
// the incremental engine.
//
// Usage: bench_online [--out=BENCH_PR6.json] [--seed=1] [--events=400]
//
// The latency fields are wall-clock measurements: the JSON is a recording,
// not a byte-stable document. The flat-latency acceptance check is the
// RATIO of mean admission latencies between the largest and smallest level.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "fedcons/online/admission_session.h"
#include "fedcons/util/check.h"
#include "fedcons/util/flags.h"
#include "fedcons/util/mini_json.h"
#include "fedcons/util/rng.h"
#include "fedcons/util/table.h"

using namespace fedcons;

namespace {

// Distinct task contents the churn draws from with repetition, so the
// MINPROCS memo sees realistic re-admission of known content. Low tasks are
// single-vertex (utilization ≈ 0.1) and share a handful of bins; high tasks
// are 4-wide parallel blocks needing μ = 2 dedicated processors each — they
// carry the resident-count growth without touching the partition.
std::vector<DagTask> make_low_pool() {
  std::vector<DagTask> pool;
  for (int v = 0; v < 10; ++v) {
    Dag g;
    g.add_vertex(10 + v % 3);
    pool.emplace_back(g, /*deadline=*/90 + v, /*period=*/100 + v,
                      "low" + std::to_string(v));
  }
  return pool;
}

std::vector<DagTask> make_high_pool() {
  std::vector<DagTask> pool;
  for (int v = 0; v < 6; ++v) {
    Dag g;
    for (int i = 0; i < 4; ++i) g.add_vertex(10);
    pool.emplace_back(g, /*deadline=*/20 + v, /*period=*/30,
                      "high" + std::to_string(v));
  }
  return pool;
}

// μ = 2 per high content above, verified by the session itself; the shared
// pool keeps a fixed headroom for the low set.
constexpr int kMuHigh = 2;
constexpr std::size_t kLowResidents = 6;
constexpr int kSharedBins = 4;

struct LatencyStats {
  double mean_us = 0;
  std::uint64_t p95_us = 0;
  std::uint64_t max_us = 0;
  double bins_per_event = 0;
};

LatencyStats summarize(std::vector<std::uint64_t> latencies,
                       std::uint64_t bins) {
  LatencyStats s;
  if (latencies.empty()) return s;
  std::sort(latencies.begin(), latencies.end());
  std::uint64_t total = 0;
  for (std::uint64_t l : latencies) total += l;
  s.mean_us = static_cast<double>(total) /
              static_cast<double>(latencies.size());
  s.p95_us = latencies[latencies.size() * 95 / 100];
  s.max_us = latencies.back();
  s.bins_per_event =
      static_cast<double>(bins) / static_cast<double>(latencies.size());
  return s;
}

struct LevelResult {
  std::size_t residents = 0;
  int m = 0;
  std::size_t churn_admits = 0;
  std::size_t churn_rejected = 0;
  double admissions_per_sec = 0;
  double memo_hit_rate = 0;
  LatencyStats admit;    // the flat-latency acceptance target
  // Per-class views of the same admissions: the class mix shifts with the
  // level (bigger levels churn mostly highs), so flatness is judged within
  // each class, not on the blended mean.
  LatencyStats admit_low;
  LatencyStats admit_high;
  LatencyStats release;  // inherently O(suffix): freed capacity is re-offered
  double full_reanalysis_us = 0;  // from-scratch cost of the same residents
};

struct Resident {
  SessionTaskId id;
  std::size_t pool_index;  // into the class's content pool
  bool high;
};

LevelResult run_level(std::size_t residents, std::size_t churn_events,
                      std::uint64_t seed, const std::vector<DagTask>& lows,
                      const std::vector<DagTask>& highs) {
  using Clock = std::chrono::steady_clock;
  LevelResult out;
  out.residents = residents;
  FEDCONS_EXPECTS(residents > kLowResidents);
  const std::size_t high_residents = residents - kLowResidents;
  // Exactly the dedicated demand plus fixed shared headroom: admissions must
  // succeed (a rejection would measure rejection replay, not steady-state
  // admission; the count is recorded so a non-zero value shows in the JSON).
  out.m = kMuHigh * static_cast<int>(high_residents) + kSharedBins;

  AdmissionSession::Config config;
  config.processors = out.m;
  AdmissionSession session(config);
  Rng rng(seed);

  std::vector<Resident> alive;
  auto draw_index = [&](const std::vector<DagTask>& pool) {
    return static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1));
  };
  auto admit_class = [&](bool high) {
    const std::vector<DagTask>& pool = high ? highs : lows;
    const std::size_t idx = draw_index(pool);
    const EventOutcome o = session.admit(pool[idx]);
    if (o.applied) alive.push_back({o.admitted_ids[0], idx, high});
    return o;
  };
  for (std::size_t i = 0; i < kLowResidents; ++i) {
    while (!admit_class(false).applied) {}
  }
  while (session.num_residents() < residents) {
    while (!admit_class(true).applied) {}
  }

  std::vector<std::uint64_t> admit_lat;
  std::vector<std::uint64_t> admit_low_lat;
  std::vector<std::uint64_t> admit_high_lat;
  std::vector<std::uint64_t> release_lat;
  admit_lat.reserve(churn_events);
  release_lat.reserve(churn_events);
  std::uint64_t admit_bins = 0;
  std::uint64_t release_bins = 0;
  std::uint64_t admit_ns = 0;
  for (std::size_t e = 0; e < churn_events; ++e) {
    const auto pick = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(alive.size()) - 1));
    const Resident victim = alive[pick];
    alive.erase(alive.begin() + static_cast<std::ptrdiff_t>(pick));
    const std::vector<DagTask>& pool = victim.high ? highs : lows;
    const std::size_t idx = draw_index(pool);
    auto start = Clock::now();
    const EventOutcome rel = session.release(victim.id);
    auto mid = Clock::now();
    const EventOutcome adm = session.admit(pool[idx]);
    auto end = Clock::now();
    if (adm.applied) {
      alive.push_back({adm.admitted_ids[0], idx, victim.high});
      ++out.churn_admits;
    } else {
      ++out.churn_rejected;
      // Keep the composition constant: re-admit until one sticks.
      while (!admit_class(victim.high).applied) {}
    }
    const auto us = [](Clock::duration d) {
      return static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(d).count());
    };
    release_lat.push_back(us(mid - start));
    admit_lat.push_back(us(end - mid));
    (victim.high ? admit_high_lat : admit_low_lat).push_back(us(end - mid));
    admit_ns += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - mid)
            .count());
    release_bins += rel.bins_revalidated;
    admit_bins += adm.bins_revalidated;
  }

  out.admit = summarize(std::move(admit_lat), admit_bins);
  out.admit_low = summarize(std::move(admit_low_lat), 0);
  out.admit_high = summarize(std::move(admit_high_lat), 0);
  out.release = summarize(std::move(release_lat), release_bins);
  const MinprocsMemoStats memo = session.memo_stats();
  const std::uint64_t lookups = memo.hits + memo.misses;
  out.memo_hit_rate = lookups == 0 ? 0.0
                                   : static_cast<double>(memo.hits) /
                                         static_cast<double>(lookups);
  out.admissions_per_sec =
      admit_ns == 0 ? 0.0
                    : static_cast<double>(out.churn_admits) * 1e9 /
                          static_cast<double>(admit_ns);

  // The contrast curve: what every event would cost without the engine —
  // a fresh session re-admitting the whole resident set (cold memo, full
  // MINPROCS scan per task, partition built from scratch).
  {
    AdmissionSession fresh(config);
    auto start = Clock::now();
    for (const Resident& r : alive) {
      (void)fresh.admit(r.high ? highs[r.pool_index] : lows[r.pool_index]);
    }
    auto end = Clock::now();
    out.full_reanalysis_us = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
            .count()) / 1e3;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::string out_path = flags.get_string("out", "BENCH_PR6.json");
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const auto events =
      static_cast<std::size_t>(flags.get_int("events", 400));

  const std::vector<DagTask> lows = make_low_pool();
  const std::vector<DagTask> highs = make_high_pool();
  const std::vector<std::size_t> scales = {8, 20, 40, 80};
  std::vector<LevelResult> levels;
  for (std::size_t n : scales) {
    levels.push_back(run_level(n, events, seed + n, lows, highs));
  }

  Table table({"residents", "m", "admissions/sec", "memo-hit", "admit-us",
               "adm-low", "adm-high", "adm-bins", "release-us", "full-us"});
  for (const LevelResult& l : levels) {
    table.add_row({std::to_string(l.residents), std::to_string(l.m),
                   fmt_double(l.admissions_per_sec, 0),
                   fmt_double(l.memo_hit_rate * 100.0, 1) + "%",
                   fmt_double(l.admit.mean_us, 1),
                   fmt_double(l.admit_low.mean_us, 1),
                   fmt_double(l.admit_high.mean_us, 1),
                   fmt_double(l.admit.bins_per_event, 1),
                   fmt_double(l.release.mean_us, 1),
                   fmt_double(l.full_reanalysis_us, 0)});
  }
  table.print(std::cout);
  const auto ratio_of = [&](double last, double first) {
    return first == 0 ? 0.0 : last / first;
  };
  // The stringent flatness check is per class (the blended mean shifts with
  // the churn mix); low admissions are the ones that touch the partition.
  const double ratio =
      ratio_of(levels.back().admit_low.mean_us,
               levels.front().admit_low.mean_us);
  std::cout << "mean admission-latency ratio at 10x residents ("
            << levels.back().residents << " vs " << levels.front().residents
            << "): low-class " << fmt_double(ratio, 2) << "x, high-class "
            << fmt_double(ratio_of(levels.back().admit_high.mean_us,
                                   levels.front().admit_high.mean_us), 2)
            << "x, blended "
            << fmt_double(ratio_of(levels.back().admit.mean_us,
                                   levels.front().admit.mean_us), 2)
            << "x\n";

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "error: cannot write '" << out_path << "'\n";
    return 2;
  }
  out << "{\n";
  out << "  \"schema_version\": 1,\n";
  out << "  \"benchmark\": \"bench_online\",\n";
  out << "  \"seed\": " << seed << ",\n";
  out << "  \"churn_events\": " << events << ",\n";
  out << "  \"latency_ratio_10x\": " << format_double(ratio) << ",\n";
  out << "  \"levels\": [\n";
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const LevelResult& l = levels[i];
    out << "    {\"residents\": " << l.residents << ", \"m\": " << l.m
        << ", \"churn_admits\": " << l.churn_admits
        << ", \"churn_rejected\": " << l.churn_rejected
        << ", \"admissions_per_sec\": " << format_double(l.admissions_per_sec)
        << ", \"memo_hit_rate\": " << format_double(l.memo_hit_rate)
        << ", \"admit_mean_latency_us\": " << format_double(l.admit.mean_us)
        << ", \"admit_p95_latency_us\": " << l.admit.p95_us
        << ", \"admit_max_latency_us\": " << l.admit.max_us
        << ", \"admit_low_mean_latency_us\": "
        << format_double(l.admit_low.mean_us)
        << ", \"admit_high_mean_latency_us\": "
        << format_double(l.admit_high.mean_us)
        << ", \"admit_bins_per_event\": "
        << format_double(l.admit.bins_per_event)
        << ", \"release_mean_latency_us\": "
        << format_double(l.release.mean_us)
        << ", \"release_p95_latency_us\": " << l.release.p95_us
        << ", \"release_max_latency_us\": " << l.release.max_us
        << ", \"release_bins_per_event\": "
        << format_double(l.release.bins_per_event)
        << ", \"full_reanalysis_us\": "
        << format_double(l.full_reanalysis_us) << "}"
        << (i + 1 < levels.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
