file(REMOVE_RECURSE
  "../bench/bench_e12_implicit_bottleneck"
  "../bench/bench_e12_implicit_bottleneck.pdb"
  "CMakeFiles/bench_e12_implicit_bottleneck.dir/bench_e12_implicit_bottleneck.cpp.o"
  "CMakeFiles/bench_e12_implicit_bottleneck.dir/bench_e12_implicit_bottleneck.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_implicit_bottleneck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
