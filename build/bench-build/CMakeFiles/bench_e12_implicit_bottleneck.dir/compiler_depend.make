# Empty compiler generated dependencies file for bench_e12_implicit_bottleneck.
# This may be replaced when dependencies are built.
