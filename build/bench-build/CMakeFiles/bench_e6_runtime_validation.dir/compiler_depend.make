# Empty compiler generated dependencies file for bench_e6_runtime_validation.
# This may be replaced when dependencies are built.
