file(REMOVE_RECURSE
  "../bench/bench_e6_runtime_validation"
  "../bench/bench_e6_runtime_validation.pdb"
  "CMakeFiles/bench_e6_runtime_validation.dir/bench_e6_runtime_validation.cpp.o"
  "CMakeFiles/bench_e6_runtime_validation.dir/bench_e6_runtime_validation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_runtime_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
