# Empty compiler generated dependencies file for bench_e9_arbitrary_deadline.
# This may be replaced when dependencies are built.
