file(REMOVE_RECURSE
  "../bench/bench_e9_arbitrary_deadline"
  "../bench/bench_e9_arbitrary_deadline.pdb"
  "CMakeFiles/bench_e9_arbitrary_deadline.dir/bench_e9_arbitrary_deadline.cpp.o"
  "CMakeFiles/bench_e9_arbitrary_deadline.dir/bench_e9_arbitrary_deadline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_arbitrary_deadline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
