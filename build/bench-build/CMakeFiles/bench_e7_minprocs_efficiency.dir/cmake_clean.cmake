file(REMOVE_RECURSE
  "../bench/bench_e7_minprocs_efficiency"
  "../bench/bench_e7_minprocs_efficiency.pdb"
  "CMakeFiles/bench_e7_minprocs_efficiency.dir/bench_e7_minprocs_efficiency.cpp.o"
  "CMakeFiles/bench_e7_minprocs_efficiency.dir/bench_e7_minprocs_efficiency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_minprocs_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
