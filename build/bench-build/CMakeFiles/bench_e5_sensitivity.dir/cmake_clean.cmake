file(REMOVE_RECURSE
  "../bench/bench_e5_sensitivity"
  "../bench/bench_e5_sensitivity.pdb"
  "CMakeFiles/bench_e5_sensitivity.dir/bench_e5_sensitivity.cpp.o"
  "CMakeFiles/bench_e5_sensitivity.dir/bench_e5_sensitivity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
