# Empty dependencies file for bench_e5_sensitivity.
# This may be replaced when dependencies are built.
