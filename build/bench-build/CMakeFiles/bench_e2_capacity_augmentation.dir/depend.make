# Empty dependencies file for bench_e2_capacity_augmentation.
# This may be replaced when dependencies are built.
