file(REMOVE_RECURSE
  "../bench/bench_e2_capacity_augmentation"
  "../bench/bench_e2_capacity_augmentation.pdb"
  "CMakeFiles/bench_e2_capacity_augmentation.dir/bench_e2_capacity_augmentation.cpp.o"
  "CMakeFiles/bench_e2_capacity_augmentation.dir/bench_e2_capacity_augmentation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_capacity_augmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
