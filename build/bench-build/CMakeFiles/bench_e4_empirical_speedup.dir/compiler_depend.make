# Empty compiler generated dependencies file for bench_e4_empirical_speedup.
# This may be replaced when dependencies are built.
