file(REMOVE_RECURSE
  "../bench/bench_e4_empirical_speedup"
  "../bench/bench_e4_empirical_speedup.pdb"
  "CMakeFiles/bench_e4_empirical_speedup.dir/bench_e4_empirical_speedup.cpp.o"
  "CMakeFiles/bench_e4_empirical_speedup.dir/bench_e4_empirical_speedup.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_empirical_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
