file(REMOVE_RECURSE
  "../bench/bench_e1_example_task"
  "../bench/bench_e1_example_task.pdb"
  "CMakeFiles/bench_e1_example_task.dir/bench_e1_example_task.cpp.o"
  "CMakeFiles/bench_e1_example_task.dir/bench_e1_example_task.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_example_task.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
