# Empty compiler generated dependencies file for bench_e1_example_task.
# This may be replaced when dependencies are built.
