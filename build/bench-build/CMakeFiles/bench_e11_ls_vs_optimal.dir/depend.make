# Empty dependencies file for bench_e11_ls_vs_optimal.
# This may be replaced when dependencies are built.
