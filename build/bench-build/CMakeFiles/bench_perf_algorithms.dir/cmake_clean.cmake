file(REMOVE_RECURSE
  "../bench/bench_perf_algorithms"
  "../bench/bench_perf_algorithms.pdb"
  "CMakeFiles/bench_perf_algorithms.dir/bench_perf_algorithms.cpp.o"
  "CMakeFiles/bench_perf_algorithms.dir/bench_perf_algorithms.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
