# Empty compiler generated dependencies file for bench_e10_dbf_refinement.
# This may be replaced when dependencies are built.
