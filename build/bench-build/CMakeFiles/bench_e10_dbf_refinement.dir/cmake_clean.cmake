file(REMOVE_RECURSE
  "../bench/bench_e10_dbf_refinement"
  "../bench/bench_e10_dbf_refinement.pdb"
  "CMakeFiles/bench_e10_dbf_refinement.dir/bench_e10_dbf_refinement.cpp.o"
  "CMakeFiles/bench_e10_dbf_refinement.dir/bench_e10_dbf_refinement.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_dbf_refinement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
