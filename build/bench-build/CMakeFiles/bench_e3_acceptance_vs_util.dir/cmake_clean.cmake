file(REMOVE_RECURSE
  "../bench/bench_e3_acceptance_vs_util"
  "../bench/bench_e3_acceptance_vs_util.pdb"
  "CMakeFiles/bench_e3_acceptance_vs_util.dir/bench_e3_acceptance_vs_util.cpp.o"
  "CMakeFiles/bench_e3_acceptance_vs_util.dir/bench_e3_acceptance_vs_util.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_acceptance_vs_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
