# Empty compiler generated dependencies file for bench_e3_acceptance_vs_util.
# This may be replaced when dependencies are built.
