file(REMOVE_RECURSE
  "CMakeFiles/avionics_case_study.dir/avionics_case_study.cpp.o"
  "CMakeFiles/avionics_case_study.dir/avionics_case_study.cpp.o.d"
  "avionics_case_study"
  "avionics_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avionics_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
