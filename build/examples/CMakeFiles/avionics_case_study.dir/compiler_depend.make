# Empty compiler generated dependencies file for avionics_case_study.
# This may be replaced when dependencies are built.
