# Empty dependencies file for platform_sizing.
# This may be replaced when dependencies are built.
