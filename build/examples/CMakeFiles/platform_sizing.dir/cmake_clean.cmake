file(REMOVE_RECURSE
  "CMakeFiles/platform_sizing.dir/platform_sizing.cpp.o"
  "CMakeFiles/platform_sizing.dir/platform_sizing.cpp.o.d"
  "platform_sizing"
  "platform_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platform_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
