# Empty compiler generated dependencies file for capacity_augmentation_demo.
# This may be replaced when dependencies are built.
