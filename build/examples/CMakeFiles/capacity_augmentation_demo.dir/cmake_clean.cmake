file(REMOVE_RECURSE
  "CMakeFiles/capacity_augmentation_demo.dir/capacity_augmentation_demo.cpp.o"
  "CMakeFiles/capacity_augmentation_demo.dir/capacity_augmentation_demo.cpp.o.d"
  "capacity_augmentation_demo"
  "capacity_augmentation_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capacity_augmentation_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
