file(REMOVE_RECURSE
  "CMakeFiles/arbitrary_deadline_demo.dir/arbitrary_deadline_demo.cpp.o"
  "CMakeFiles/arbitrary_deadline_demo.dir/arbitrary_deadline_demo.cpp.o.d"
  "arbitrary_deadline_demo"
  "arbitrary_deadline_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arbitrary_deadline_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
