# Empty dependencies file for arbitrary_deadline_demo.
# This may be replaced when dependencies are built.
