# Empty dependencies file for dag_task_test.
# This may be replaced when dependencies are built.
