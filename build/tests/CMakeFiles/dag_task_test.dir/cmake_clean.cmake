file(REMOVE_RECURSE
  "CMakeFiles/dag_task_test.dir/dag_task_test.cpp.o"
  "CMakeFiles/dag_task_test.dir/dag_task_test.cpp.o.d"
  "dag_task_test"
  "dag_task_test.pdb"
  "dag_task_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dag_task_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
