file(REMOVE_RECURSE
  "CMakeFiles/taskset_gen_test.dir/taskset_gen_test.cpp.o"
  "CMakeFiles/taskset_gen_test.dir/taskset_gen_test.cpp.o.d"
  "taskset_gen_test"
  "taskset_gen_test.pdb"
  "taskset_gen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taskset_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
