file(REMOVE_RECURSE
  "CMakeFiles/arbitrary_test.dir/arbitrary_test.cpp.o"
  "CMakeFiles/arbitrary_test.dir/arbitrary_test.cpp.o.d"
  "arbitrary_test"
  "arbitrary_test.pdb"
  "arbitrary_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arbitrary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
