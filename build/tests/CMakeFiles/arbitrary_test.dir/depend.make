# Empty dependencies file for arbitrary_test.
# This may be replaced when dependencies are built.
