file(REMOVE_RECURSE
  "CMakeFiles/fedcons_algorithm_test.dir/fedcons_algorithm_test.cpp.o"
  "CMakeFiles/fedcons_algorithm_test.dir/fedcons_algorithm_test.cpp.o.d"
  "fedcons_algorithm_test"
  "fedcons_algorithm_test.pdb"
  "fedcons_algorithm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedcons_algorithm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
