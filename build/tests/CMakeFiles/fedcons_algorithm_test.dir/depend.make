# Empty dependencies file for fedcons_algorithm_test.
# This may be replaced when dependencies are built.
