file(REMOVE_RECURSE
  "CMakeFiles/acceptance_test.dir/acceptance_test.cpp.o"
  "CMakeFiles/acceptance_test.dir/acceptance_test.cpp.o.d"
  "acceptance_test"
  "acceptance_test.pdb"
  "acceptance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acceptance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
