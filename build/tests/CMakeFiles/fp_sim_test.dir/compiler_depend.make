# Empty compiler generated dependencies file for fp_sim_test.
# This may be replaced when dependencies are built.
