file(REMOVE_RECURSE
  "CMakeFiles/fp_sim_test.dir/fp_sim_test.cpp.o"
  "CMakeFiles/fp_sim_test.dir/fp_sim_test.cpp.o.d"
  "fp_sim_test"
  "fp_sim_test.pdb"
  "fp_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
