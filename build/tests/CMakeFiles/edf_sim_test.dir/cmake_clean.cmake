file(REMOVE_RECURSE
  "CMakeFiles/edf_sim_test.dir/edf_sim_test.cpp.o"
  "CMakeFiles/edf_sim_test.dir/edf_sim_test.cpp.o.d"
  "edf_sim_test"
  "edf_sim_test.pdb"
  "edf_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edf_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
