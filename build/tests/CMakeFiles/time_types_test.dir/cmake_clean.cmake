file(REMOVE_RECURSE
  "CMakeFiles/time_types_test.dir/time_types_test.cpp.o"
  "CMakeFiles/time_types_test.dir/time_types_test.cpp.o.d"
  "time_types_test"
  "time_types_test.pdb"
  "time_types_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/time_types_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
