# Empty dependencies file for federated_implicit_test.
# This may be replaced when dependencies are built.
