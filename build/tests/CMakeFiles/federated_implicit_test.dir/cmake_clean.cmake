file(REMOVE_RECURSE
  "CMakeFiles/federated_implicit_test.dir/federated_implicit_test.cpp.o"
  "CMakeFiles/federated_implicit_test.dir/federated_implicit_test.cpp.o.d"
  "federated_implicit_test"
  "federated_implicit_test.pdb"
  "federated_implicit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/federated_implicit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
