
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/gantt_test.cpp" "tests/CMakeFiles/gantt_test.dir/gantt_test.cpp.o" "gcc" "tests/CMakeFiles/gantt_test.dir/gantt_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fedcons/sim/CMakeFiles/fedcons_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fedcons/federated/CMakeFiles/fedcons_federated.dir/DependInfo.cmake"
  "/root/repo/build/src/fedcons/listsched/CMakeFiles/fedcons_listsched.dir/DependInfo.cmake"
  "/root/repo/build/src/fedcons/analysis/CMakeFiles/fedcons_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/fedcons/core/CMakeFiles/fedcons_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fedcons/util/CMakeFiles/fedcons_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
