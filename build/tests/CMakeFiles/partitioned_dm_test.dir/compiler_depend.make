# Empty compiler generated dependencies file for partitioned_dm_test.
# This may be replaced when dependencies are built.
