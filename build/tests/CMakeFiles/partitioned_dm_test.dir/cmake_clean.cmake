file(REMOVE_RECURSE
  "CMakeFiles/partitioned_dm_test.dir/partitioned_dm_test.cpp.o"
  "CMakeFiles/partitioned_dm_test.dir/partitioned_dm_test.cpp.o.d"
  "partitioned_dm_test"
  "partitioned_dm_test.pdb"
  "partitioned_dm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partitioned_dm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
