file(REMOVE_RECURSE
  "CMakeFiles/dag_gen_test.dir/dag_gen_test.cpp.o"
  "CMakeFiles/dag_gen_test.dir/dag_gen_test.cpp.o.d"
  "dag_gen_test"
  "dag_gen_test.pdb"
  "dag_gen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dag_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
