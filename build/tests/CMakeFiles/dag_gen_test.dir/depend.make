# Empty dependencies file for dag_gen_test.
# This may be replaced when dependencies are built.
