file(REMOVE_RECURSE
  "CMakeFiles/task_system_test.dir/task_system_test.cpp.o"
  "CMakeFiles/task_system_test.dir/task_system_test.cpp.o.d"
  "task_system_test"
  "task_system_test.pdb"
  "task_system_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/task_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
