# Empty dependencies file for task_system_test.
# This may be replaced when dependencies are built.
