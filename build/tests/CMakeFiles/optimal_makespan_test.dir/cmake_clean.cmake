file(REMOVE_RECURSE
  "CMakeFiles/optimal_makespan_test.dir/optimal_makespan_test.cpp.o"
  "CMakeFiles/optimal_makespan_test.dir/optimal_makespan_test.cpp.o.d"
  "optimal_makespan_test"
  "optimal_makespan_test.pdb"
  "optimal_makespan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimal_makespan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
