# Empty dependencies file for optimal_makespan_test.
# This may be replaced when dependencies are built.
