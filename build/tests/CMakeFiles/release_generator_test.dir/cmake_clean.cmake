file(REMOVE_RECURSE
  "CMakeFiles/release_generator_test.dir/release_generator_test.cpp.o"
  "CMakeFiles/release_generator_test.dir/release_generator_test.cpp.o.d"
  "release_generator_test"
  "release_generator_test.pdb"
  "release_generator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/release_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
