# Empty dependencies file for edf_uniproc_test.
# This may be replaced when dependencies are built.
