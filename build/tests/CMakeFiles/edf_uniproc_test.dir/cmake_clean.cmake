file(REMOVE_RECURSE
  "CMakeFiles/edf_uniproc_test.dir/edf_uniproc_test.cpp.o"
  "CMakeFiles/edf_uniproc_test.dir/edf_uniproc_test.cpp.o.d"
  "edf_uniproc_test"
  "edf_uniproc_test.pdb"
  "edf_uniproc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edf_uniproc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
