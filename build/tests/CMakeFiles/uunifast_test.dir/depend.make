# Empty dependencies file for uunifast_test.
# This may be replaced when dependencies are built.
