file(REMOVE_RECURSE
  "CMakeFiles/uunifast_test.dir/uunifast_test.cpp.o"
  "CMakeFiles/uunifast_test.dir/uunifast_test.cpp.o.d"
  "uunifast_test"
  "uunifast_test.pdb"
  "uunifast_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uunifast_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
