file(REMOVE_RECURSE
  "CMakeFiles/global_edf_sim_test.dir/global_edf_sim_test.cpp.o"
  "CMakeFiles/global_edf_sim_test.dir/global_edf_sim_test.cpp.o.d"
  "global_edf_sim_test"
  "global_edf_sim_test.pdb"
  "global_edf_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/global_edf_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
