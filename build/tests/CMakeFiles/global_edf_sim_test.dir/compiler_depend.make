# Empty compiler generated dependencies file for global_edf_sim_test.
# This may be replaced when dependencies are built.
