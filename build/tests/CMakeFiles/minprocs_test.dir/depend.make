# Empty dependencies file for minprocs_test.
# This may be replaced when dependencies are built.
