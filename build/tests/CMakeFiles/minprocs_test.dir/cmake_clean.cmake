file(REMOVE_RECURSE
  "CMakeFiles/minprocs_test.dir/minprocs_test.cpp.o"
  "CMakeFiles/minprocs_test.dir/minprocs_test.cpp.o.d"
  "minprocs_test"
  "minprocs_test.pdb"
  "minprocs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minprocs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
