
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/fedcons_cli.cpp" "tools/CMakeFiles/fedcons_cli.dir/fedcons_cli.cpp.o" "gcc" "tools/CMakeFiles/fedcons_cli.dir/fedcons_cli.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fedcons/sim/CMakeFiles/fedcons_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fedcons/federated/CMakeFiles/fedcons_federated.dir/DependInfo.cmake"
  "/root/repo/build/src/fedcons/analysis/CMakeFiles/fedcons_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/fedcons/core/CMakeFiles/fedcons_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fedcons/listsched/CMakeFiles/fedcons_listsched.dir/DependInfo.cmake"
  "/root/repo/build/src/fedcons/util/CMakeFiles/fedcons_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
