# Empty dependencies file for fedcons_cli.
# This may be replaced when dependencies are built.
