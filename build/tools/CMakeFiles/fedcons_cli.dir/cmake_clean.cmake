file(REMOVE_RECURSE
  "CMakeFiles/fedcons_cli.dir/fedcons_cli.cpp.o"
  "CMakeFiles/fedcons_cli.dir/fedcons_cli.cpp.o.d"
  "fedcons_cli"
  "fedcons_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedcons_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
