# Empty dependencies file for fedcons_gen_tool.
# This may be replaced when dependencies are built.
