file(REMOVE_RECURSE
  "CMakeFiles/fedcons_gen_tool.dir/fedcons_gen.cpp.o"
  "CMakeFiles/fedcons_gen_tool.dir/fedcons_gen.cpp.o.d"
  "fedcons_gen"
  "fedcons_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedcons_gen_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
