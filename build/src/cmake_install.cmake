# Install script for directory: /root/repo/src

# Set the install prefix
if(NOT DEFINED CMAKE_INSTALL_PREFIX)
  set(CMAKE_INSTALL_PREFIX "/usr/local")
endif()
string(REGEX REPLACE "/$" "" CMAKE_INSTALL_PREFIX "${CMAKE_INSTALL_PREFIX}")

# Set the install configuration name.
if(NOT DEFINED CMAKE_INSTALL_CONFIG_NAME)
  if(BUILD_TYPE)
    string(REGEX REPLACE "^[^A-Za-z0-9_]+" ""
           CMAKE_INSTALL_CONFIG_NAME "${BUILD_TYPE}")
  else()
    set(CMAKE_INSTALL_CONFIG_NAME "Release")
  endif()
  message(STATUS "Install configuration: \"${CMAKE_INSTALL_CONFIG_NAME}\"")
endif()

# Set the component getting installed.
if(NOT CMAKE_INSTALL_COMPONENT)
  if(COMPONENT)
    message(STATUS "Install component: \"${COMPONENT}\"")
    set(CMAKE_INSTALL_COMPONENT "${COMPONENT}")
  else()
    set(CMAKE_INSTALL_COMPONENT)
  endif()
endif()

# Install shared libraries without execute permission?
if(NOT DEFINED CMAKE_INSTALL_SO_NO_EXE)
  set(CMAKE_INSTALL_SO_NO_EXE "1")
endif()

# Is this installation the result of a crosscompile?
if(NOT DEFINED CMAKE_CROSSCOMPILING)
  set(CMAKE_CROSSCOMPILING "FALSE")
endif()

# Set default install directory permissions.
if(NOT DEFINED CMAKE_OBJDUMP)
  set(CMAKE_OBJDUMP "/usr/bin/objdump")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include" TYPE DIRECTORY FILES "/root/repo/src/fedcons" FILES_MATCHING REGEX "/[^/]*\\.h$")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  if(EXISTS "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/fedcons/fedconsTargets.cmake")
    file(DIFFERENT _cmake_export_file_changed FILES
         "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/fedcons/fedconsTargets.cmake"
         "/root/repo/build/src/CMakeFiles/Export/7e554a661ddff4e9093b550a2812d24f/fedconsTargets.cmake")
    if(_cmake_export_file_changed)
      file(GLOB _cmake_old_config_files "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/fedcons/fedconsTargets-*.cmake")
      if(_cmake_old_config_files)
        string(REPLACE ";" ", " _cmake_old_config_files_text "${_cmake_old_config_files}")
        message(STATUS "Old export file \"$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/fedcons/fedconsTargets.cmake\" will be replaced.  Removing files [${_cmake_old_config_files_text}].")
        unset(_cmake_old_config_files_text)
        file(REMOVE ${_cmake_old_config_files})
      endif()
      unset(_cmake_old_config_files)
    endif()
    unset(_cmake_export_file_changed)
  endif()
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib/cmake/fedcons" TYPE FILE FILES "/root/repo/build/src/CMakeFiles/Export/7e554a661ddff4e9093b550a2812d24f/fedconsTargets.cmake")
  if(CMAKE_INSTALL_CONFIG_NAME MATCHES "^([Rr][Ee][Ll][Ee][Aa][Ss][Ee])$")
    file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib/cmake/fedcons" TYPE FILE FILES "/root/repo/build/src/CMakeFiles/Export/7e554a661ddff4e9093b550a2812d24f/fedconsTargets-release.cmake")
  endif()
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/fedcons/util/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/fedcons/core/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/fedcons/listsched/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/fedcons/analysis/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/fedcons/gen/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/fedcons/federated/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/fedcons/baselines/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/fedcons/sim/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/fedcons/expr/cmake_install.cmake")
endif()

