#----------------------------------------------------------------
# Generated CMake target import file for configuration "Release".
#----------------------------------------------------------------

# Commands may need to know the format version.
set(CMAKE_IMPORT_FILE_VERSION 1)

# Import target "fedcons::fedcons_util" for configuration "Release"
set_property(TARGET fedcons::fedcons_util APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(fedcons::fedcons_util PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libfedcons_util.a"
  )

list(APPEND _cmake_import_check_targets fedcons::fedcons_util )
list(APPEND _cmake_import_check_files_for_fedcons::fedcons_util "${_IMPORT_PREFIX}/lib/libfedcons_util.a" )

# Import target "fedcons::fedcons_core" for configuration "Release"
set_property(TARGET fedcons::fedcons_core APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(fedcons::fedcons_core PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libfedcons_core.a"
  )

list(APPEND _cmake_import_check_targets fedcons::fedcons_core )
list(APPEND _cmake_import_check_files_for_fedcons::fedcons_core "${_IMPORT_PREFIX}/lib/libfedcons_core.a" )

# Import target "fedcons::fedcons_listsched" for configuration "Release"
set_property(TARGET fedcons::fedcons_listsched APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(fedcons::fedcons_listsched PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libfedcons_listsched.a"
  )

list(APPEND _cmake_import_check_targets fedcons::fedcons_listsched )
list(APPEND _cmake_import_check_files_for_fedcons::fedcons_listsched "${_IMPORT_PREFIX}/lib/libfedcons_listsched.a" )

# Import target "fedcons::fedcons_analysis" for configuration "Release"
set_property(TARGET fedcons::fedcons_analysis APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(fedcons::fedcons_analysis PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libfedcons_analysis.a"
  )

list(APPEND _cmake_import_check_targets fedcons::fedcons_analysis )
list(APPEND _cmake_import_check_files_for_fedcons::fedcons_analysis "${_IMPORT_PREFIX}/lib/libfedcons_analysis.a" )

# Import target "fedcons::fedcons_gen" for configuration "Release"
set_property(TARGET fedcons::fedcons_gen APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(fedcons::fedcons_gen PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libfedcons_gen.a"
  )

list(APPEND _cmake_import_check_targets fedcons::fedcons_gen )
list(APPEND _cmake_import_check_files_for_fedcons::fedcons_gen "${_IMPORT_PREFIX}/lib/libfedcons_gen.a" )

# Import target "fedcons::fedcons_federated" for configuration "Release"
set_property(TARGET fedcons::fedcons_federated APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(fedcons::fedcons_federated PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libfedcons_federated.a"
  )

list(APPEND _cmake_import_check_targets fedcons::fedcons_federated )
list(APPEND _cmake_import_check_files_for_fedcons::fedcons_federated "${_IMPORT_PREFIX}/lib/libfedcons_federated.a" )

# Import target "fedcons::fedcons_baselines" for configuration "Release"
set_property(TARGET fedcons::fedcons_baselines APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(fedcons::fedcons_baselines PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libfedcons_baselines.a"
  )

list(APPEND _cmake_import_check_targets fedcons::fedcons_baselines )
list(APPEND _cmake_import_check_files_for_fedcons::fedcons_baselines "${_IMPORT_PREFIX}/lib/libfedcons_baselines.a" )

# Import target "fedcons::fedcons_sim" for configuration "Release"
set_property(TARGET fedcons::fedcons_sim APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(fedcons::fedcons_sim PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libfedcons_sim.a"
  )

list(APPEND _cmake_import_check_targets fedcons::fedcons_sim )
list(APPEND _cmake_import_check_files_for_fedcons::fedcons_sim "${_IMPORT_PREFIX}/lib/libfedcons_sim.a" )

# Import target "fedcons::fedcons_expr" for configuration "Release"
set_property(TARGET fedcons::fedcons_expr APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(fedcons::fedcons_expr PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libfedcons_expr.a"
  )

list(APPEND _cmake_import_check_targets fedcons::fedcons_expr )
list(APPEND _cmake_import_check_files_for_fedcons::fedcons_expr "${_IMPORT_PREFIX}/lib/libfedcons_expr.a" )

# Commands beyond this point should not need to know the version.
set(CMAKE_IMPORT_FILE_VERSION)
