file(REMOVE_RECURSE
  "libfedcons_listsched.a"
)
