file(REMOVE_RECURSE
  "CMakeFiles/fedcons_listsched.dir/anomaly.cpp.o"
  "CMakeFiles/fedcons_listsched.dir/anomaly.cpp.o.d"
  "CMakeFiles/fedcons_listsched.dir/list_scheduler.cpp.o"
  "CMakeFiles/fedcons_listsched.dir/list_scheduler.cpp.o.d"
  "CMakeFiles/fedcons_listsched.dir/optimal_makespan.cpp.o"
  "CMakeFiles/fedcons_listsched.dir/optimal_makespan.cpp.o.d"
  "CMakeFiles/fedcons_listsched.dir/schedule.cpp.o"
  "CMakeFiles/fedcons_listsched.dir/schedule.cpp.o.d"
  "libfedcons_listsched.a"
  "libfedcons_listsched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedcons_listsched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
