# Empty dependencies file for fedcons_listsched.
# This may be replaced when dependencies are built.
