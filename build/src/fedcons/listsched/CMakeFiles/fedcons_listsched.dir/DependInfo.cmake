
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fedcons/listsched/anomaly.cpp" "src/fedcons/listsched/CMakeFiles/fedcons_listsched.dir/anomaly.cpp.o" "gcc" "src/fedcons/listsched/CMakeFiles/fedcons_listsched.dir/anomaly.cpp.o.d"
  "/root/repo/src/fedcons/listsched/list_scheduler.cpp" "src/fedcons/listsched/CMakeFiles/fedcons_listsched.dir/list_scheduler.cpp.o" "gcc" "src/fedcons/listsched/CMakeFiles/fedcons_listsched.dir/list_scheduler.cpp.o.d"
  "/root/repo/src/fedcons/listsched/optimal_makespan.cpp" "src/fedcons/listsched/CMakeFiles/fedcons_listsched.dir/optimal_makespan.cpp.o" "gcc" "src/fedcons/listsched/CMakeFiles/fedcons_listsched.dir/optimal_makespan.cpp.o.d"
  "/root/repo/src/fedcons/listsched/schedule.cpp" "src/fedcons/listsched/CMakeFiles/fedcons_listsched.dir/schedule.cpp.o" "gcc" "src/fedcons/listsched/CMakeFiles/fedcons_listsched.dir/schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fedcons/core/CMakeFiles/fedcons_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fedcons/util/CMakeFiles/fedcons_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
