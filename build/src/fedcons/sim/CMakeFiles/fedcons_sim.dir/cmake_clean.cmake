file(REMOVE_RECURSE
  "CMakeFiles/fedcons_sim.dir/cluster_sim.cpp.o"
  "CMakeFiles/fedcons_sim.dir/cluster_sim.cpp.o.d"
  "CMakeFiles/fedcons_sim.dir/edf_sim.cpp.o"
  "CMakeFiles/fedcons_sim.dir/edf_sim.cpp.o.d"
  "CMakeFiles/fedcons_sim.dir/gantt.cpp.o"
  "CMakeFiles/fedcons_sim.dir/gantt.cpp.o.d"
  "CMakeFiles/fedcons_sim.dir/global_edf_sim.cpp.o"
  "CMakeFiles/fedcons_sim.dir/global_edf_sim.cpp.o.d"
  "CMakeFiles/fedcons_sim.dir/release_generator.cpp.o"
  "CMakeFiles/fedcons_sim.dir/release_generator.cpp.o.d"
  "CMakeFiles/fedcons_sim.dir/system_sim.cpp.o"
  "CMakeFiles/fedcons_sim.dir/system_sim.cpp.o.d"
  "CMakeFiles/fedcons_sim.dir/trace.cpp.o"
  "CMakeFiles/fedcons_sim.dir/trace.cpp.o.d"
  "libfedcons_sim.a"
  "libfedcons_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedcons_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
