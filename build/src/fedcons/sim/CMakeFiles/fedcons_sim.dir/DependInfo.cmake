
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fedcons/sim/cluster_sim.cpp" "src/fedcons/sim/CMakeFiles/fedcons_sim.dir/cluster_sim.cpp.o" "gcc" "src/fedcons/sim/CMakeFiles/fedcons_sim.dir/cluster_sim.cpp.o.d"
  "/root/repo/src/fedcons/sim/edf_sim.cpp" "src/fedcons/sim/CMakeFiles/fedcons_sim.dir/edf_sim.cpp.o" "gcc" "src/fedcons/sim/CMakeFiles/fedcons_sim.dir/edf_sim.cpp.o.d"
  "/root/repo/src/fedcons/sim/gantt.cpp" "src/fedcons/sim/CMakeFiles/fedcons_sim.dir/gantt.cpp.o" "gcc" "src/fedcons/sim/CMakeFiles/fedcons_sim.dir/gantt.cpp.o.d"
  "/root/repo/src/fedcons/sim/global_edf_sim.cpp" "src/fedcons/sim/CMakeFiles/fedcons_sim.dir/global_edf_sim.cpp.o" "gcc" "src/fedcons/sim/CMakeFiles/fedcons_sim.dir/global_edf_sim.cpp.o.d"
  "/root/repo/src/fedcons/sim/release_generator.cpp" "src/fedcons/sim/CMakeFiles/fedcons_sim.dir/release_generator.cpp.o" "gcc" "src/fedcons/sim/CMakeFiles/fedcons_sim.dir/release_generator.cpp.o.d"
  "/root/repo/src/fedcons/sim/system_sim.cpp" "src/fedcons/sim/CMakeFiles/fedcons_sim.dir/system_sim.cpp.o" "gcc" "src/fedcons/sim/CMakeFiles/fedcons_sim.dir/system_sim.cpp.o.d"
  "/root/repo/src/fedcons/sim/trace.cpp" "src/fedcons/sim/CMakeFiles/fedcons_sim.dir/trace.cpp.o" "gcc" "src/fedcons/sim/CMakeFiles/fedcons_sim.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fedcons/core/CMakeFiles/fedcons_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fedcons/listsched/CMakeFiles/fedcons_listsched.dir/DependInfo.cmake"
  "/root/repo/build/src/fedcons/federated/CMakeFiles/fedcons_federated.dir/DependInfo.cmake"
  "/root/repo/build/src/fedcons/analysis/CMakeFiles/fedcons_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/fedcons/util/CMakeFiles/fedcons_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
