# Empty dependencies file for fedcons_sim.
# This may be replaced when dependencies are built.
