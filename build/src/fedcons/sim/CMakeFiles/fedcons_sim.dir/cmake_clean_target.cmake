file(REMOVE_RECURSE
  "libfedcons_sim.a"
)
