
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fedcons/gen/dag_gen.cpp" "src/fedcons/gen/CMakeFiles/fedcons_gen.dir/dag_gen.cpp.o" "gcc" "src/fedcons/gen/CMakeFiles/fedcons_gen.dir/dag_gen.cpp.o.d"
  "/root/repo/src/fedcons/gen/presets.cpp" "src/fedcons/gen/CMakeFiles/fedcons_gen.dir/presets.cpp.o" "gcc" "src/fedcons/gen/CMakeFiles/fedcons_gen.dir/presets.cpp.o.d"
  "/root/repo/src/fedcons/gen/taskset_gen.cpp" "src/fedcons/gen/CMakeFiles/fedcons_gen.dir/taskset_gen.cpp.o" "gcc" "src/fedcons/gen/CMakeFiles/fedcons_gen.dir/taskset_gen.cpp.o.d"
  "/root/repo/src/fedcons/gen/uunifast.cpp" "src/fedcons/gen/CMakeFiles/fedcons_gen.dir/uunifast.cpp.o" "gcc" "src/fedcons/gen/CMakeFiles/fedcons_gen.dir/uunifast.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fedcons/core/CMakeFiles/fedcons_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fedcons/util/CMakeFiles/fedcons_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
