# Empty compiler generated dependencies file for fedcons_gen.
# This may be replaced when dependencies are built.
