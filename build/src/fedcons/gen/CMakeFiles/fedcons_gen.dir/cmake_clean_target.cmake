file(REMOVE_RECURSE
  "libfedcons_gen.a"
)
