file(REMOVE_RECURSE
  "CMakeFiles/fedcons_gen.dir/dag_gen.cpp.o"
  "CMakeFiles/fedcons_gen.dir/dag_gen.cpp.o.d"
  "CMakeFiles/fedcons_gen.dir/presets.cpp.o"
  "CMakeFiles/fedcons_gen.dir/presets.cpp.o.d"
  "CMakeFiles/fedcons_gen.dir/taskset_gen.cpp.o"
  "CMakeFiles/fedcons_gen.dir/taskset_gen.cpp.o.d"
  "CMakeFiles/fedcons_gen.dir/uunifast.cpp.o"
  "CMakeFiles/fedcons_gen.dir/uunifast.cpp.o.d"
  "libfedcons_gen.a"
  "libfedcons_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedcons_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
