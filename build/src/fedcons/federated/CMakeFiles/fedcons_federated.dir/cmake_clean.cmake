file(REMOVE_RECURSE
  "CMakeFiles/fedcons_federated.dir/arbitrary.cpp.o"
  "CMakeFiles/fedcons_federated.dir/arbitrary.cpp.o.d"
  "CMakeFiles/fedcons_federated.dir/fedcons_algorithm.cpp.o"
  "CMakeFiles/fedcons_federated.dir/fedcons_algorithm.cpp.o.d"
  "CMakeFiles/fedcons_federated.dir/federated_implicit.cpp.o"
  "CMakeFiles/fedcons_federated.dir/federated_implicit.cpp.o.d"
  "CMakeFiles/fedcons_federated.dir/minprocs.cpp.o"
  "CMakeFiles/fedcons_federated.dir/minprocs.cpp.o.d"
  "CMakeFiles/fedcons_federated.dir/partition.cpp.o"
  "CMakeFiles/fedcons_federated.dir/partition.cpp.o.d"
  "CMakeFiles/fedcons_federated.dir/sensitivity.cpp.o"
  "CMakeFiles/fedcons_federated.dir/sensitivity.cpp.o.d"
  "CMakeFiles/fedcons_federated.dir/speedup.cpp.o"
  "CMakeFiles/fedcons_federated.dir/speedup.cpp.o.d"
  "libfedcons_federated.a"
  "libfedcons_federated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedcons_federated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
