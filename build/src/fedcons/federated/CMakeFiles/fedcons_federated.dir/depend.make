# Empty dependencies file for fedcons_federated.
# This may be replaced when dependencies are built.
