file(REMOVE_RECURSE
  "libfedcons_federated.a"
)
