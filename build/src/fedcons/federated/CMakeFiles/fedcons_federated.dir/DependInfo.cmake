
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fedcons/federated/arbitrary.cpp" "src/fedcons/federated/CMakeFiles/fedcons_federated.dir/arbitrary.cpp.o" "gcc" "src/fedcons/federated/CMakeFiles/fedcons_federated.dir/arbitrary.cpp.o.d"
  "/root/repo/src/fedcons/federated/fedcons_algorithm.cpp" "src/fedcons/federated/CMakeFiles/fedcons_federated.dir/fedcons_algorithm.cpp.o" "gcc" "src/fedcons/federated/CMakeFiles/fedcons_federated.dir/fedcons_algorithm.cpp.o.d"
  "/root/repo/src/fedcons/federated/federated_implicit.cpp" "src/fedcons/federated/CMakeFiles/fedcons_federated.dir/federated_implicit.cpp.o" "gcc" "src/fedcons/federated/CMakeFiles/fedcons_federated.dir/federated_implicit.cpp.o.d"
  "/root/repo/src/fedcons/federated/minprocs.cpp" "src/fedcons/federated/CMakeFiles/fedcons_federated.dir/minprocs.cpp.o" "gcc" "src/fedcons/federated/CMakeFiles/fedcons_federated.dir/minprocs.cpp.o.d"
  "/root/repo/src/fedcons/federated/partition.cpp" "src/fedcons/federated/CMakeFiles/fedcons_federated.dir/partition.cpp.o" "gcc" "src/fedcons/federated/CMakeFiles/fedcons_federated.dir/partition.cpp.o.d"
  "/root/repo/src/fedcons/federated/sensitivity.cpp" "src/fedcons/federated/CMakeFiles/fedcons_federated.dir/sensitivity.cpp.o" "gcc" "src/fedcons/federated/CMakeFiles/fedcons_federated.dir/sensitivity.cpp.o.d"
  "/root/repo/src/fedcons/federated/speedup.cpp" "src/fedcons/federated/CMakeFiles/fedcons_federated.dir/speedup.cpp.o" "gcc" "src/fedcons/federated/CMakeFiles/fedcons_federated.dir/speedup.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fedcons/core/CMakeFiles/fedcons_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fedcons/listsched/CMakeFiles/fedcons_listsched.dir/DependInfo.cmake"
  "/root/repo/build/src/fedcons/analysis/CMakeFiles/fedcons_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/fedcons/util/CMakeFiles/fedcons_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
