file(REMOVE_RECURSE
  "CMakeFiles/fedcons_baselines.dir/global_edf.cpp.o"
  "CMakeFiles/fedcons_baselines.dir/global_edf.cpp.o.d"
  "CMakeFiles/fedcons_baselines.dir/partitioned_dm.cpp.o"
  "CMakeFiles/fedcons_baselines.dir/partitioned_dm.cpp.o.d"
  "CMakeFiles/fedcons_baselines.dir/partitioned_seq.cpp.o"
  "CMakeFiles/fedcons_baselines.dir/partitioned_seq.cpp.o.d"
  "libfedcons_baselines.a"
  "libfedcons_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedcons_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
