file(REMOVE_RECURSE
  "libfedcons_baselines.a"
)
