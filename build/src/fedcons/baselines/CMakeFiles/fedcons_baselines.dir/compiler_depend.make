# Empty compiler generated dependencies file for fedcons_baselines.
# This may be replaced when dependencies are built.
