file(REMOVE_RECURSE
  "libfedcons_expr.a"
)
