file(REMOVE_RECURSE
  "CMakeFiles/fedcons_expr.dir/acceptance.cpp.o"
  "CMakeFiles/fedcons_expr.dir/acceptance.cpp.o.d"
  "CMakeFiles/fedcons_expr.dir/reports.cpp.o"
  "CMakeFiles/fedcons_expr.dir/reports.cpp.o.d"
  "CMakeFiles/fedcons_expr.dir/speedup_experiment.cpp.o"
  "CMakeFiles/fedcons_expr.dir/speedup_experiment.cpp.o.d"
  "libfedcons_expr.a"
  "libfedcons_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedcons_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
