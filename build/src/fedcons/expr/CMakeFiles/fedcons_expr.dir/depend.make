# Empty dependencies file for fedcons_expr.
# This may be replaced when dependencies are built.
