# Empty dependencies file for fedcons_util.
# This may be replaced when dependencies are built.
