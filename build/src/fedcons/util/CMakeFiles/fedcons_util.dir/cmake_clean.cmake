file(REMOVE_RECURSE
  "CMakeFiles/fedcons_util.dir/bigint.cpp.o"
  "CMakeFiles/fedcons_util.dir/bigint.cpp.o.d"
  "CMakeFiles/fedcons_util.dir/flags.cpp.o"
  "CMakeFiles/fedcons_util.dir/flags.cpp.o.d"
  "CMakeFiles/fedcons_util.dir/log.cpp.o"
  "CMakeFiles/fedcons_util.dir/log.cpp.o.d"
  "CMakeFiles/fedcons_util.dir/rational.cpp.o"
  "CMakeFiles/fedcons_util.dir/rational.cpp.o.d"
  "CMakeFiles/fedcons_util.dir/rng.cpp.o"
  "CMakeFiles/fedcons_util.dir/rng.cpp.o.d"
  "CMakeFiles/fedcons_util.dir/stats.cpp.o"
  "CMakeFiles/fedcons_util.dir/stats.cpp.o.d"
  "CMakeFiles/fedcons_util.dir/table.cpp.o"
  "CMakeFiles/fedcons_util.dir/table.cpp.o.d"
  "libfedcons_util.a"
  "libfedcons_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedcons_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
