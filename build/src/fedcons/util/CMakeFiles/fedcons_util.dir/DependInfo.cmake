
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fedcons/util/bigint.cpp" "src/fedcons/util/CMakeFiles/fedcons_util.dir/bigint.cpp.o" "gcc" "src/fedcons/util/CMakeFiles/fedcons_util.dir/bigint.cpp.o.d"
  "/root/repo/src/fedcons/util/flags.cpp" "src/fedcons/util/CMakeFiles/fedcons_util.dir/flags.cpp.o" "gcc" "src/fedcons/util/CMakeFiles/fedcons_util.dir/flags.cpp.o.d"
  "/root/repo/src/fedcons/util/log.cpp" "src/fedcons/util/CMakeFiles/fedcons_util.dir/log.cpp.o" "gcc" "src/fedcons/util/CMakeFiles/fedcons_util.dir/log.cpp.o.d"
  "/root/repo/src/fedcons/util/rational.cpp" "src/fedcons/util/CMakeFiles/fedcons_util.dir/rational.cpp.o" "gcc" "src/fedcons/util/CMakeFiles/fedcons_util.dir/rational.cpp.o.d"
  "/root/repo/src/fedcons/util/rng.cpp" "src/fedcons/util/CMakeFiles/fedcons_util.dir/rng.cpp.o" "gcc" "src/fedcons/util/CMakeFiles/fedcons_util.dir/rng.cpp.o.d"
  "/root/repo/src/fedcons/util/stats.cpp" "src/fedcons/util/CMakeFiles/fedcons_util.dir/stats.cpp.o" "gcc" "src/fedcons/util/CMakeFiles/fedcons_util.dir/stats.cpp.o.d"
  "/root/repo/src/fedcons/util/table.cpp" "src/fedcons/util/CMakeFiles/fedcons_util.dir/table.cpp.o" "gcc" "src/fedcons/util/CMakeFiles/fedcons_util.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
