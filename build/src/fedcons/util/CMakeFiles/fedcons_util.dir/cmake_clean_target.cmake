file(REMOVE_RECURSE
  "libfedcons_util.a"
)
