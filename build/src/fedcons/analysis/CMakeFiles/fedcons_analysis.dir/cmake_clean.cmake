file(REMOVE_RECURSE
  "CMakeFiles/fedcons_analysis.dir/dbf.cpp.o"
  "CMakeFiles/fedcons_analysis.dir/dbf.cpp.o.d"
  "CMakeFiles/fedcons_analysis.dir/density.cpp.o"
  "CMakeFiles/fedcons_analysis.dir/density.cpp.o.d"
  "CMakeFiles/fedcons_analysis.dir/edf_uniproc.cpp.o"
  "CMakeFiles/fedcons_analysis.dir/edf_uniproc.cpp.o.d"
  "CMakeFiles/fedcons_analysis.dir/feasibility.cpp.o"
  "CMakeFiles/fedcons_analysis.dir/feasibility.cpp.o.d"
  "CMakeFiles/fedcons_analysis.dir/rta.cpp.o"
  "CMakeFiles/fedcons_analysis.dir/rta.cpp.o.d"
  "libfedcons_analysis.a"
  "libfedcons_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedcons_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
