
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fedcons/analysis/dbf.cpp" "src/fedcons/analysis/CMakeFiles/fedcons_analysis.dir/dbf.cpp.o" "gcc" "src/fedcons/analysis/CMakeFiles/fedcons_analysis.dir/dbf.cpp.o.d"
  "/root/repo/src/fedcons/analysis/density.cpp" "src/fedcons/analysis/CMakeFiles/fedcons_analysis.dir/density.cpp.o" "gcc" "src/fedcons/analysis/CMakeFiles/fedcons_analysis.dir/density.cpp.o.d"
  "/root/repo/src/fedcons/analysis/edf_uniproc.cpp" "src/fedcons/analysis/CMakeFiles/fedcons_analysis.dir/edf_uniproc.cpp.o" "gcc" "src/fedcons/analysis/CMakeFiles/fedcons_analysis.dir/edf_uniproc.cpp.o.d"
  "/root/repo/src/fedcons/analysis/feasibility.cpp" "src/fedcons/analysis/CMakeFiles/fedcons_analysis.dir/feasibility.cpp.o" "gcc" "src/fedcons/analysis/CMakeFiles/fedcons_analysis.dir/feasibility.cpp.o.d"
  "/root/repo/src/fedcons/analysis/rta.cpp" "src/fedcons/analysis/CMakeFiles/fedcons_analysis.dir/rta.cpp.o" "gcc" "src/fedcons/analysis/CMakeFiles/fedcons_analysis.dir/rta.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fedcons/core/CMakeFiles/fedcons_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fedcons/util/CMakeFiles/fedcons_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
