# Empty compiler generated dependencies file for fedcons_analysis.
# This may be replaced when dependencies are built.
