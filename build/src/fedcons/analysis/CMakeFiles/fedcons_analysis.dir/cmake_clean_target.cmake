file(REMOVE_RECURSE
  "libfedcons_analysis.a"
)
