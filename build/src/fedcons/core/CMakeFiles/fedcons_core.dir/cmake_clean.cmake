file(REMOVE_RECURSE
  "CMakeFiles/fedcons_core.dir/builders.cpp.o"
  "CMakeFiles/fedcons_core.dir/builders.cpp.o.d"
  "CMakeFiles/fedcons_core.dir/dag.cpp.o"
  "CMakeFiles/fedcons_core.dir/dag.cpp.o.d"
  "CMakeFiles/fedcons_core.dir/dag_task.cpp.o"
  "CMakeFiles/fedcons_core.dir/dag_task.cpp.o.d"
  "CMakeFiles/fedcons_core.dir/io.cpp.o"
  "CMakeFiles/fedcons_core.dir/io.cpp.o.d"
  "CMakeFiles/fedcons_core.dir/task_system.cpp.o"
  "CMakeFiles/fedcons_core.dir/task_system.cpp.o.d"
  "CMakeFiles/fedcons_core.dir/transform.cpp.o"
  "CMakeFiles/fedcons_core.dir/transform.cpp.o.d"
  "libfedcons_core.a"
  "libfedcons_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedcons_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
