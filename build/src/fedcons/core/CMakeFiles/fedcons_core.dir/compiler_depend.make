# Empty compiler generated dependencies file for fedcons_core.
# This may be replaced when dependencies are built.
