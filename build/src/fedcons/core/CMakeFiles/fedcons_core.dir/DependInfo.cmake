
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fedcons/core/builders.cpp" "src/fedcons/core/CMakeFiles/fedcons_core.dir/builders.cpp.o" "gcc" "src/fedcons/core/CMakeFiles/fedcons_core.dir/builders.cpp.o.d"
  "/root/repo/src/fedcons/core/dag.cpp" "src/fedcons/core/CMakeFiles/fedcons_core.dir/dag.cpp.o" "gcc" "src/fedcons/core/CMakeFiles/fedcons_core.dir/dag.cpp.o.d"
  "/root/repo/src/fedcons/core/dag_task.cpp" "src/fedcons/core/CMakeFiles/fedcons_core.dir/dag_task.cpp.o" "gcc" "src/fedcons/core/CMakeFiles/fedcons_core.dir/dag_task.cpp.o.d"
  "/root/repo/src/fedcons/core/io.cpp" "src/fedcons/core/CMakeFiles/fedcons_core.dir/io.cpp.o" "gcc" "src/fedcons/core/CMakeFiles/fedcons_core.dir/io.cpp.o.d"
  "/root/repo/src/fedcons/core/task_system.cpp" "src/fedcons/core/CMakeFiles/fedcons_core.dir/task_system.cpp.o" "gcc" "src/fedcons/core/CMakeFiles/fedcons_core.dir/task_system.cpp.o.d"
  "/root/repo/src/fedcons/core/transform.cpp" "src/fedcons/core/CMakeFiles/fedcons_core.dir/transform.cpp.o" "gcc" "src/fedcons/core/CMakeFiles/fedcons_core.dir/transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fedcons/util/CMakeFiles/fedcons_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
