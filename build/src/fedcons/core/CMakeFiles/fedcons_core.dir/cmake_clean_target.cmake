file(REMOVE_RECURSE
  "libfedcons_core.a"
)
